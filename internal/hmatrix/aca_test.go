package hmatrix

import (
	"testing"

	"h2ds/internal/core"
	"h2ds/internal/kernel"
	"h2ds/internal/pointset"
)

func TestACACompressorAccuracy(t *testing.T) {
	pts := pointset.Cube(2000, 3, 20)
	b := randVec(2000, 21)
	want := core.DirectApply(pts, kernel.Coulomb{}, b, 0)
	m, err := Build(pts, kernel.Coulomb{}, Config{Tol: 1e-7, LeafSize: 64, Compressor: "aca"})
	if err != nil {
		t.Fatal(err)
	}
	if e := relErr(m.Apply(b), want); e > 1e-5 {
		t.Fatalf("ACA compressor error %g", e)
	}
}

func TestACAAndIDAgree(t *testing.T) {
	// At equal tolerance the two compressors approximate the same blocks;
	// their products must agree to roughly that tolerance.
	pts := pointset.Sphere(1500, 22)
	b := randVec(1500, 23)
	tol := 1e-8
	mid, err := Build(pts, kernel.Exponential{}, Config{Tol: tol, LeafSize: 50, Compressor: "id"})
	if err != nil {
		t.Fatal(err)
	}
	maca, err := Build(pts, kernel.Exponential{}, Config{Tol: tol, LeafSize: 50, Compressor: "aca"})
	if err != nil {
		t.Fatal(err)
	}
	if e := relErr(maca.Apply(b), mid.Apply(b)); e > 1e-6 {
		t.Fatalf("compressors disagree by %g", e)
	}
}

func TestACARanksComparable(t *testing.T) {
	// ACA's adaptive ranks should land in the same ballpark as the ID path
	// on smooth kernels (both near-optimal for these blocks).
	pts := pointset.Cube(1500, 3, 24)
	mid, err := Build(pts, kernel.Coulomb{}, Config{Tol: 1e-6, LeafSize: 50, Compressor: "id"})
	if err != nil {
		t.Fatal(err)
	}
	maca, err := Build(pts, kernel.Coulomb{}, Config{Tol: 1e-6, LeafSize: 50, Compressor: "aca"})
	if err != nil {
		t.Fatal(err)
	}
	si, sa := mid.ComputeStats(), maca.ComputeStats()
	if sa.AvgRank > 3*si.AvgRank+5 {
		t.Fatalf("ACA avg rank %.1f far above ID %.1f", sa.AvgRank, si.AvgRank)
	}
}

func TestUnknownCompressorRejected(t *testing.T) {
	if _, err := Build(pointset.Cube(100, 3, 25), kernel.Coulomb{}, Config{Compressor: "svd"}); err == nil {
		t.Fatal("unknown compressor accepted")
	}
}
