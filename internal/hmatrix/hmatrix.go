// Package hmatrix implements the simpler, non-nested H-matrix format the
// paper contrasts with H² (§I-B1): every admissible block is compressed
// independently as a low-rank product with no basis sharing between levels,
// giving O(n log n) storage and matvec instead of H²'s O(n).
//
// It exists as an ablation baseline: comparing it with internal/core
// quantifies what the nested-basis property buys. Block compression reuses
// the same data-driven machinery (anchor-net column sampling + row
// interpolative decomposition), so the comparison isolates the format, not
// the compression algorithm.
package hmatrix

import (
	"fmt"

	"h2ds/internal/kernel"
	"h2ds/internal/mat"
	"h2ds/internal/par"
	"h2ds/internal/pointset"
	"h2ds/internal/sample"
	"h2ds/internal/tree"
)

// Config tunes an H-matrix build.
type Config struct {
	// Tol is the per-block ID truncation tolerance (default 1e-8).
	Tol float64
	// SampleBudget bounds the column samples per admissible block
	// (0 = derived from Tol).
	SampleBudget int
	// LeafSize, Eta, Workers as in the H² configuration.
	LeafSize int
	Eta      float64
	Workers  int
	// Sampler picks the column sampler (nil = anchor net).
	Sampler sample.Sampler
	// Compressor selects the low-rank block algorithm: "id" (default, the
	// sampling + interpolative-decomposition path shared with the H² core)
	// or "aca" (adaptive cross approximation, the paper's §VII algebraic
	// baseline — faster per block but heuristic).
	Compressor string
}

// lowRankBlock is one compressed admissible block
//
//	K(X_i, X_j) ≈ T · B,   B = K(S_i, X_j)
//
// with T carrying an identity on the skeleton rows S_i ⊂ X_i. The reverse
// block K(X_j, X_i) is applied as Bᵀ Tᵀ.
type lowRankBlock struct {
	i, j int // node ids, i < j
	t    *mat.Dense
	b    *mat.Dense
}

// Matrix is a non-nested H approximation of a kernel matrix.
type Matrix struct {
	Cfg  Config
	Kern kernel.Pairwise
	Tree *tree.Tree
	N    int

	// blocksOf[i] indexes into blocks: the low-rank blocks whose row
	// cluster is i (direct orientation) and whose column cluster is i
	// (transposed orientation), kept separate so the matvec can process
	// all writes to a node's output range on a single worker.
	blocks      []lowRankBlock
	directOf    [][]int
	transposeOf [][]int
	near        [][]*mat.Dense // per leaf list position, aligned with Node.Near
	allIdx      []int
}

// Build constructs the H-matrix. Only symmetric kernels are supported:
// the format stores one factorization per undirected admissible pair and
// applies the reverse direction transposed.
func Build(pts *pointset.Points, k kernel.Pairwise, cfg Config) (*Matrix, error) {
	if pts.Len() == 0 {
		return nil, fmt.Errorf("hmatrix: empty point set")
	}
	if !k.Symmetric() {
		return nil, fmt.Errorf("hmatrix: unsymmetric kernel %q not supported (each admissible block is stored once and applied transposed; use the H² core, which carries separate row/column bases)", k.Name())
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 1e-8
	}
	if cfg.SampleBudget <= 0 {
		cfg.SampleBudget = hBudget(cfg.Tol)
	}
	if cfg.Sampler == nil {
		cfg.Sampler = sample.AnchorNet{}
	}
	switch cfg.Compressor {
	case "", "id", "aca":
	default:
		return nil, fmt.Errorf("hmatrix: unknown compressor %q (want id or aca)", cfg.Compressor)
	}
	m := &Matrix{Cfg: cfg, Kern: k, N: pts.Len()}
	m.Tree = tree.New(pts, tree.Config{LeafSize: cfg.LeafSize, Eta: cfg.Eta, Workers: cfg.Workers})
	m.allIdx = make([]int, m.N)
	for i := range m.allIdx {
		m.allIdx[i] = i
	}

	// Collect the undirected admissible pairs.
	type pair struct{ i, j int }
	var pairs []pair
	for i := range m.Tree.Nodes {
		for _, j := range m.Tree.Nodes[i].Interaction {
			if i < j {
				pairs = append(pairs, pair{i, j})
			}
		}
	}
	m.blocks = make([]lowRankBlock, len(pairs))
	par.For(cfg.Workers, len(pairs), func(k2 int) {
		p := pairs[k2]
		m.blocks[k2] = m.compressBlock(p.i, p.j)
	})
	m.directOf = make([][]int, len(m.Tree.Nodes))
	m.transposeOf = make([][]int, len(m.Tree.Nodes))
	for bi := range m.blocks {
		b := &m.blocks[bi]
		m.directOf[b.i] = append(m.directOf[b.i], bi)
		m.transposeOf[b.j] = append(m.transposeOf[b.j], bi)
	}

	// Nearfield blocks, dense, aligned with each leaf's Near list.
	m.near = make([][]*mat.Dense, len(m.Tree.Nodes))
	par.For(cfg.Workers, len(m.Tree.Leaves), func(k2 int) {
		id := m.Tree.Leaves[k2]
		nd := &m.Tree.Nodes[id]
		m.near[id] = make([]*mat.Dense, len(nd.Near))
		for p, j := range nd.Near {
			nj := &m.Tree.Nodes[j]
			m.near[id][p] = kernel.NewBlock(k, m.Tree.Points,
				m.allIdx[nd.Start:nd.End], m.Tree.Points, m.allIdx[nj.Start:nj.End])
		}
	})
	return m, nil
}

// hBudget mirrors the H² default sample budget for 3-D problems.
func hBudget(tol float64) int {
	digits := 0
	for t := tol; t < 1 && digits < 16; t *= 10 {
		digits++
	}
	return 10 + 11*digits
}

// compressBlock builds the low-rank factors for the admissible pair (i, j)
// with the configured compressor.
func (m *Matrix) compressBlock(i, j int) lowRankBlock {
	ni, nj := &m.Tree.Nodes[i], &m.Tree.Nodes[j]
	rows := m.allIdx[ni.Start:ni.End]
	cols := m.allIdx[nj.Start:nj.End]
	if m.Cfg.Compressor == "aca" {
		return m.compressACA(i, j, rows, cols)
	}
	// Default "id" path: sample columns of the block via the point sampler
	// on X_j, row-ID the sampled panel to pick skeleton rows in X_i, then
	// evaluate the full skeleton rows.
	csample := m.Cfg.Sampler.Sample(m.Tree.Points, cols, m.Cfg.SampleBudget)
	panel := kernel.NewBlock(m.Kern, m.Tree.Points, rows, m.Tree.Points, csample)
	id := mat.NewRowID(panel, m.Cfg.Tol, 0)
	skel := make([]int, id.Rank)
	for s, loc := range id.Skel {
		skel[s] = rows[loc]
	}
	b := kernel.NewBlock(m.Kern, m.Tree.Points, skel, m.Tree.Points, cols)
	return lowRankBlock{i: i, j: j, t: id.T, b: b}
}

// compressACA factorizes the admissible block K(X_i, X_j) with adaptive
// cross approximation over an entry oracle — no panel is ever formed.
func (m *Matrix) compressACA(i, j int, rows, cols []int) lowRankBlock {
	pts := m.Tree.Points
	d := pts.Dim
	entry := func(r, c int) float64 {
		ri := rows[r]
		cj := cols[c]
		return m.Kern.EvalPair(pts.Coords[ri*d:ri*d+d], pts.Coords[cj*d:cj*d+d])
	}
	u, v := mat.ACA(len(rows), len(cols), entry, m.Cfg.Tol, m.Cfg.SampleBudget)
	return lowRankBlock{i: i, j: j, t: u, b: v.T()}
}

// Apply computes y = Â b in the caller's original point ordering.
func (m *Matrix) Apply(b []float64) []float64 {
	y := make([]float64, m.N)
	m.ApplyTo(y, b)
	return y
}

// ApplyTo computes y = Â b; y and b must have length N and not alias.
func (m *Matrix) ApplyTo(y, b []float64) {
	if len(y) != m.N || len(b) != m.N {
		panic(fmt.Sprintf("hmatrix: apply length mismatch y=%d b=%d n=%d", len(y), len(b), m.N))
	}
	bp := make([]float64, m.N)
	yp := make([]float64, m.N)
	m.Tree.PermuteVec(bp, b)
	m.applyPermuted(yp, bp)
	m.Tree.UnpermuteVec(y, yp)
}

// applyPermuted evaluates all blocks. Each node's output range is written
// by exactly one loop iteration (node-major), so the parallel result is
// deterministic.
func (m *Matrix) applyPermuted(yp, bp []float64) {
	for i := range yp {
		yp[i] = 0
	}
	nodes := m.Tree.Nodes
	par.For(m.Cfg.Workers, len(nodes), func(id int) {
		nd := &nodes[id]
		yi := yp[nd.Start:nd.End]
		// Direct low-rank blocks: y_i += T (B b_j).
		for _, bi := range m.directOf[id] {
			blk := &m.blocks[bi]
			nj := &nodes[blk.j]
			tmp := make([]float64, blk.b.Rows)
			mat.MulVecAdd(tmp, blk.b, bp[nj.Start:nj.End])
			mat.MulVecAdd(yi, blk.t, tmp)
		}
		// Transposed blocks: y_j += Bᵀ (Tᵀ b_i).
		for _, bi := range m.transposeOf[id] {
			blk := &m.blocks[bi]
			niNode := &nodes[blk.i]
			tmp := make([]float64, blk.t.Cols)
			mat.MulTVecAdd(tmp, blk.t, bp[niNode.Start:niNode.End])
			mat.MulTVecAdd(yi, blk.b, tmp)
		}
		// Nearfield (leaves only).
		if nd.IsLeaf {
			for p, j := range nd.Near {
				nj := &nodes[j]
				mat.MulVecAdd(yi, m.near[id][p], bp[nj.Start:nj.End])
			}
		}
	})
}

// Stats summarizes the representation.
type Stats struct {
	LowRankBlocks int
	NearBlocks    int
	MaxRank       int
	AvgRank       float64
}

// ComputeStats returns block counts and rank statistics.
func (m *Matrix) ComputeStats() Stats {
	s := Stats{LowRankBlocks: len(m.blocks)}
	sum := 0
	for i := range m.blocks {
		r := m.blocks[i].t.Cols
		sum += r
		if r > s.MaxRank {
			s.MaxRank = r
		}
	}
	if len(m.blocks) > 0 {
		s.AvgRank = float64(sum) / float64(len(m.blocks))
	}
	for _, id := range m.Tree.Leaves {
		s.NearBlocks += len(m.near[id])
	}
	return s
}

// Bytes returns the deterministic memory footprint of the stored factors,
// nearfield blocks, and tree.
func (m *Matrix) Bytes() int64 {
	var total int64
	for i := range m.blocks {
		total += int64(len(m.blocks[i].t.Data)+len(m.blocks[i].b.Data))*8 + 48
	}
	for _, id := range m.Tree.Leaves {
		for _, blk := range m.near[id] {
			total += int64(len(blk.Data))*8 + 24
		}
	}
	total += m.Tree.Bytes()
	return total
}
