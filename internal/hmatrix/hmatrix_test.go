package hmatrix

import (
	"math"
	"math/rand"
	"testing"

	"h2ds/internal/core"
	"h2ds/internal/kernel"
	"h2ds/internal/pointset"
)

func randVec(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func relErr(y, want []float64) float64 {
	num, den := 0.0, 0.0
	for i := range y {
		d := y[i] - want[i]
		num += d * d
		den += want[i] * want[i]
	}
	return math.Sqrt(num / den)
}

func TestHMatrixAccuracy(t *testing.T) {
	pts := pointset.Cube(2500, 3, 1)
	b := randVec(2500, 2)
	want := core.DirectApply(pts, kernel.Coulomb{}, b, 0)
	for _, tol := range []float64{1e-4, 1e-7} {
		m, err := Build(pts, kernel.Coulomb{}, Config{Tol: tol, LeafSize: 64})
		if err != nil {
			t.Fatal(err)
		}
		if e := relErr(m.Apply(b), want); e > 10*tol {
			t.Fatalf("tol %g: error %g", tol, e)
		}
	}
}

func TestHMatrixKernels(t *testing.T) {
	pts := pointset.Sphere(1500, 3)
	b := randVec(1500, 4)
	for _, k := range []kernel.Kernel{kernel.Exponential{}, kernel.Gaussian{Scale: 0.1}} {
		want := core.DirectApply(pts, k, b, 0)
		m, err := Build(pts, k, Config{Tol: 1e-6, LeafSize: 50})
		if err != nil {
			t.Fatal(err)
		}
		if e := relErr(m.Apply(b), want); e > 1e-5 {
			t.Fatalf("%s: error %g", k.Name(), e)
		}
	}
}

func TestHMatrixDeterministicAcrossWorkers(t *testing.T) {
	pts := pointset.Cube(1500, 3, 5)
	b := randVec(1500, 6)
	m1, err := Build(pts, kernel.Coulomb{}, Config{Tol: 1e-6, LeafSize: 60, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	m4, err := Build(pts, kernel.Coulomb{}, Config{Tol: 1e-6, LeafSize: 60, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	y1 := m1.Apply(b)
	y4 := m4.Apply(b)
	for i := range y1 {
		if y1[i] != y4[i] {
			t.Fatalf("worker count changed H-matrix result at %d", i)
		}
	}
}

func TestHMatrixStatsAndBytes(t *testing.T) {
	pts := pointset.Cube(2000, 3, 7)
	m, err := Build(pts, kernel.Coulomb{}, Config{Tol: 1e-6, LeafSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	st := m.ComputeStats()
	if st.LowRankBlocks == 0 || st.NearBlocks == 0 || st.MaxRank == 0 || st.AvgRank <= 0 {
		t.Fatalf("stats not populated: %+v", st)
	}
	if m.Bytes() <= m.Tree.Bytes() {
		t.Fatal("Bytes must include block storage")
	}
}

func TestHMatrixVsH2MemoryAblation(t *testing.T) {
	// The nested-basis ablation: at equal tolerance the H-matrix stores
	// every admissible block independently, so its farfield storage should
	// exceed the H² matrix's basis+transfer+coupling storage once the tree
	// is deep enough.
	pts := pointset.Cube(6000, 3, 8)
	tol := 1e-6
	hm, err := Build(pts, kernel.Coulomb{}, Config{Tol: tol, LeafSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	h2, err := core.Build(pts, kernel.Coulomb{}, core.Config{Kind: core.DataDriven, Mode: core.Normal, Tol: tol, LeafSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	b := randVec(6000, 9)
	want := core.DirectApply(pts, kernel.Coulomb{}, b, 0)
	if e := relErr(hm.Apply(b), want); e > 1e-4 {
		t.Fatalf("H accuracy %g", e)
	}
	if e := relErr(h2.Apply(b), want); e > 1e-4 {
		t.Fatalf("H² accuracy %g", e)
	}
	mem := h2.Memory()
	h2Far := mem.Basis + mem.Transfer + mem.Coupling + mem.Skeletons
	hFar := hm.Bytes() - hm.Tree.Bytes()
	// Subtract the (identical) nearfield storage from the H side.
	hFar -= mem.Nearfield
	if hFar <= h2Far/2 {
		t.Fatalf("expected H farfield storage (%d) to be comparable to or above H² (%d)", hFar, h2Far)
	}
}

func TestHMatrixSingleLeaf(t *testing.T) {
	pts := pointset.Cube(40, 3, 10)
	b := randVec(40, 11)
	m, err := Build(pts, kernel.Coulomb{}, Config{LeafSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	want := core.DirectApply(pts, kernel.Coulomb{}, b, 0)
	if e := relErr(m.Apply(b), want); e > 1e-13 {
		t.Fatalf("single leaf must be exact, got %g", e)
	}
	if _, err := Build(pointset.New(0, 3), kernel.Coulomb{}, Config{}); err == nil {
		t.Fatal("empty point set must error")
	}
}

// unsym is a minimal unsymmetric kernel for the rejection test.
type unsym struct{}

func (unsym) EvalPair(x, y []float64) float64 { return x[0] - y[0] }
func (unsym) Symmetric() bool                 { return false }
func (unsym) Name() string                    { return "unsym" }

func TestHMatrixRejectsUnsymmetric(t *testing.T) {
	if _, err := Build(pointset.Cube(100, 3, 1), unsym{}, Config{}); err == nil {
		t.Fatal("unsymmetric kernel must be rejected (transposed-block reuse would be wrong)")
	}
}
