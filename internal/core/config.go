// Package core implements the paper's primary contribution: H² hierarchical
// matrices with nested bases, built either by the new data-driven sampling
// method (hierarchical anchor-net Nyström + interpolative decomposition,
// §II-A) or by the tensor-grid Chebyshev interpolation baseline (§I-B2),
// applied to vectors with the five-sweep parallel matvec of Algorithm 2 in
// either the normal memory mode (all coupling/nearfield blocks stored) or
// the on-the-fly mode (blocks regenerated from indices at application time,
// §II-B).
//
// Any kernel.Pairwise kernel is accepted. Symmetric kernels (all radial
// kernels in internal/kernel) share row and column bases (V = U, W = R)
// and store one coupling triangle; unsymmetric kernels get the paper's
// general formulation with separate column-side generators and directed
// coupling storage.
package core

import (
	"fmt"
	"math"

	"h2ds/internal/interp"
	"h2ds/internal/sample"
	"h2ds/internal/tree"
)

// BasisKind selects the construction method.
type BasisKind int

const (
	// DataDriven is the paper's new method: hierarchical sampling followed
	// by per-node interpolative decompositions of kernel submatrices.
	DataDriven BasisKind = iota
	// Interpolation is the tensor-grid Chebyshev baseline.
	Interpolation
)

// String implements fmt.Stringer.
func (k BasisKind) String() string {
	switch k {
	case DataDriven:
		return "data-driven"
	case Interpolation:
		return "interpolation"
	default:
		return fmt.Sprintf("BasisKind(%d)", int(k))
	}
}

// MemoryMode selects how coupling and nearfield blocks are handled.
type MemoryMode int

const (
	// Normal stores every coupling and nearfield block at construction
	// time (the conventional hierarchical-matrix approach).
	Normal MemoryMode = iota
	// OnTheFly stores only index sets; blocks are assembled into
	// per-worker scratch during each matvec and discarded (§II-B).
	OnTheFly
	// Hybrid stores the most application-cost-per-byte-effective blocks up
	// to Config.StorageBudget bytes at construction time and evaluates the
	// rest on the fly — a continuum between Normal and OnTheFly that a
	// serving layer's memory budget can tune.
	Hybrid
)

// String implements fmt.Stringer.
func (m MemoryMode) String() string {
	switch m {
	case Normal:
		return "normal"
	case OnTheFly:
		return "on-the-fly"
	case Hybrid:
		return "hybrid"
	default:
		return fmt.Sprintf("MemoryMode(%d)", int(m))
	}
}

// Config selects and tunes a construction. The zero value requests a
// data-driven, normal-memory build at the default tolerance.
type Config struct {
	Kind BasisKind
	Mode MemoryMode

	// Tol is the target relative accuracy (default 1e-8, the paper's
	// standard setting). For the data-driven method it is the ID truncation
	// tolerance; for interpolation it calibrates the grid size.
	Tol float64

	// RelTol, when positive, requests an error-controlled build (the
	// Cai–Huang–Chow–Xi formalization of the paper's construction): it
	// overrides Tol as the accuracy target, the anchor-net sample size is
	// derived from the tolerance via the interpolation calibration
	// (RelTolSampleBudget), per-node ranks fall out of the ID truncation at
	// the tolerance rather than any fixed rank parameter, and Build finishes
	// with an a-posteriori sampled error estimate recorded in
	// BuildStats.EstRelErr. Must be in (0, 1); zero selects the
	// fixed-parameter build driven by Tol/SampleBudget.
	RelTol float64

	// SampleBudget is the per-node sample size m for the data-driven
	// method; 0 derives it from Tol and the dimension.
	SampleBudget int

	// P is the interpolation points per direction; 0 derives it from Tol.
	P int

	// StorageBudget caps the bytes spent on stored coupling/nearfield
	// blocks in Hybrid mode (ignored otherwise). Blocks are selected
	// greedily by assembly-savings-per-byte, top tree levels first; the
	// remainder is evaluated on the fly. 0 stores nothing (pure on-the-fly
	// evaluation with hybrid bookkeeping).
	StorageBudget int64

	// LeafSize caps points per leaf (0 = tree.DefaultLeafSize).
	LeafSize int

	// Eta is the admissibility parameter (0 = tree.DefaultEta, the paper's
	// 0.7).
	Eta float64

	// Workers bounds parallelism for construction and matvec
	// (0 = GOMAXPROCS).
	Workers int

	// Sampler picks the point sampler for the data-driven method
	// (nil = sample.AnchorNet).
	Sampler sample.Sampler

	// MaxRank caps per-node ID ranks for the data-driven method (0 = no
	// cap beyond SampleBudget).
	MaxRank int

	// ReuseTree, when non-nil, skips tree construction and uses this tree
	// (which must have been built over the same point set). Combined with
	// ReuseHierarchy it implements the paper's sampling amortization
	// (§VI-A): the hierarchical sampling depends only on the points, so one
	// sweep serves any number of kernels.
	ReuseTree *tree.Tree

	// ReuseHierarchy, when non-nil, skips the Algorithm 1 sweeps for the
	// data-driven construction and uses these sample sets (which must have
	// been produced on ReuseTree).
	ReuseHierarchy *sample.Hierarchy

	// Cache, when non-nil, consults and feeds a construction cache: before
	// building, the point geometry and tree/sampling parameters are
	// fingerprinted and a hit supplies ReuseTree+ReuseHierarchy
	// automatically (observable as Phases.CacheHit with SampleNS == 0); a
	// miss inserts the freshly built pair. Only data-driven builds without
	// explicit Reuse* settings participate. The registry shares one cache
	// across tenants so geometries repeated under different kernels or
	// tolerances skip Algorithm 1 entirely.
	Cache *BuildCache

	// FastMath relaxes the on-the-fly fused kernels to fused multiply-add
	// accumulation (one rounding per multiply-add instead of two). Results
	// stay within rounding distance of the default path — the FastMath
	// equivalence test pins a 1e-12 relative tolerance — but are NOT bitwise
	// identical, so the hybrid ≡ on-the-fly bitwise guarantee only holds with
	// FastMath off. Stored-block (Normal/Hybrid-resident) arithmetic is
	// unaffected. Off by default.
	FastMath bool

	// SeedConstruction forces construction down the pre-acceleration paths
	// (unblocked CPQR, per-entry panel assembly, reference sampler scans).
	// Every path pair produces identical matrices — this knob only selects
	// the slow implementations. It exists for the build bench's baseline
	// rows and the equivalence suites; serving code should leave it false.
	SeedConstruction bool
}

// withDefaults returns cfg with zero fields resolved.
func (cfg Config) withDefaults(dim int) Config {
	if cfg.RelTol > 0 {
		// Error-controlled build: the tolerance is the single knob. It
		// replaces Tol as the truncation/calibration target, and the sample
		// budget default comes from the tolerance-rank calibration instead of
		// the fixed-parameter table.
		cfg.Tol = cfg.RelTol
		if cfg.SampleBudget <= 0 {
			cfg.SampleBudget = RelTolSampleBudget(cfg.RelTol, dim)
		}
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 1e-8
	}
	if cfg.LeafSize <= 0 {
		cfg.LeafSize = tree.DefaultLeafSize
	}
	if cfg.Eta <= 0 {
		cfg.Eta = tree.DefaultEta
	}
	if cfg.Sampler == nil {
		cfg.Sampler = sample.AnchorNet{}
	}
	if cfg.P <= 0 {
		cfg.P = interp.PFromTol(cfg.Tol)
	}
	if cfg.SampleBudget <= 0 {
		cfg.SampleBudget = DefaultSampleBudget(cfg.Tol, dim)
	}
	return cfg
}

// DefaultSampleBudget returns the per-node sample size m used when the
// caller does not set one: it grows with the requested accuracy (more
// digits need larger surrogate farfields) and mildly with the dimension.
// The calibration sweep behind these constants is recorded in
// EXPERIMENTS.md.
func DefaultSampleBudget(tol float64, dim int) int {
	if tol <= 0 {
		tol = 1e-8
	}
	digits := -math.Log10(tol)
	if digits < 1 {
		digits = 1
	}
	m := 16 + 14*digits
	if dim > 3 {
		m *= 1 + 0.4*float64(dim-3)
	}
	return int(math.Ceil(m))
}

// RelTolSampleBudget derives the per-node anchor-net size for an
// error-controlled (RelTol) build by reusing the interpolation calibration:
// interp.PFromTol gives the points-per-direction p that reaches the
// tolerance at the default separation, a well-separated interaction in d
// dimensions then has numerical rank on the order of the boundary grid
// p^(d-1), and the sample set must oversample that rank so the ID
// truncation — not the sample size — decides each node's rank. The
// boundary-grid exponent is capped at two (the 3-D surface case): the
// anchor net is a low-discrepancy lattice whose coverage does not degrade
// with dimension, so beyond 3-D the fixed-parameter growth rule is the
// better model and the result never falls below DefaultSampleBudget.
func RelTolSampleBudget(reltol float64, dim int) int {
	p := interp.PFromTol(reltol)
	d := dim
	if d > 3 {
		d = 3
	}
	r := 1
	for i := 0; i < d-1; i++ {
		r *= p
	}
	m := 2*r + 10
	if def := DefaultSampleBudget(reltol, dim); m < def {
		m = def
	}
	return m
}
