package core

import (
	"math"
	"testing"

	"h2ds/internal/kernel"
	"h2ds/internal/pointset"
)

func TestBlockJacobiSolvesLeafSystems(t *testing.T) {
	pts := pointset.Cube(1200, 3, 100)
	sigma := 0.5
	m, err := Build(pts, kernel.Gaussian{Scale: 0.5}, Config{Kind: DataDriven, Tol: 1e-6, LeafSize: 60})
	if err != nil {
		t.Fatal(err)
	}
	bj, err := m.BlockJacobi(sigma)
	if err != nil {
		t.Fatal(err)
	}
	if bj.Bytes() <= 0 {
		t.Fatal("preconditioner bytes must be positive")
	}
	// M(M⁻¹ b) == b where M is the block-diagonal operator: verify by
	// applying the inverse then multiplying each leaf block back.
	b := randVec(1200, 101)
	z := make([]float64, 1200)
	bj.ApplyTo(z, b)
	// Rebuild M z leaf by leaf.
	zp := make([]float64, 1200)
	m.Tree.PermuteVec(zp, z)
	bp := make([]float64, 1200)
	m.Tree.PermuteVec(bp, b)
	for _, id := range m.Tree.Leaves {
		nd := &m.Tree.Nodes[id]
		blk := kernel.NewBlock(m.Kern, m.Tree.Points, m.leafRange(id), m.Tree.Points, m.leafRange(id))
		for i := 0; i < blk.Rows; i++ {
			blk.Set(i, i, blk.At(i, i)+sigma)
		}
		for i := 0; i < blk.Rows; i++ {
			s := 0.0
			for j := 0; j < blk.Cols; j++ {
				s += blk.At(i, j) * zp[nd.Start+j]
			}
			if math.Abs(s-bp[nd.Start+i]) > 1e-8 {
				t.Fatalf("leaf %d row %d: Mz=%g want %g", id, i, s, bp[nd.Start+i])
			}
		}
	}
}

func TestBlockJacobiRejectsIndefiniteShift(t *testing.T) {
	pts := pointset.Cube(400, 3, 102)
	m, err := Build(pts, kernel.Coulomb{}, Config{Kind: DataDriven, Tol: 1e-5, LeafSize: 50})
	if err != nil {
		t.Fatal(err)
	}
	// The Coulomb leaf block with a large negative shift is indefinite.
	if _, err := m.BlockJacobi(-1e6); err == nil {
		t.Fatal("expected Cholesky failure for indefinite shift")
	}
}
