package core

import (
	"fmt"

	"h2ds/internal/kernel"
	"h2ds/internal/mat"
	"h2ds/internal/par"
)

// ApplyTranspose computes y = Âᵀ b in the caller's original point
// ordering. For symmetric kernels Âᵀ = Â and this is identical to Apply;
// for unsymmetric kernels the five sweeps run with the row/column roles
// exchanged: the upward sweep goes through U/R, couplings apply B_{j,i}
// transposed, and the downward/leaf sweeps go through V/W.
func (m *Matrix) ApplyTranspose(b []float64) []float64 {
	y := make([]float64, m.N)
	m.ApplyTransposeTo(y, b)
	return y
}

// ApplyTransposeTo computes y = Âᵀ b into y. y and b must both have length
// N and must not alias.
func (m *Matrix) ApplyTransposeTo(y, b []float64) {
	if len(y) != m.N || len(b) != m.N {
		panic(fmt.Sprintf("core: applyTranspose length mismatch y=%d b=%d n=%d", len(y), len(b), m.N))
	}
	bp := make([]float64, m.N)
	yp := make([]float64, m.N)
	m.Tree.PermuteVec(bp, b)
	m.applyTransposePermuted(yp, bp)
	m.Tree.UnpermuteVec(y, yp)
}

// applyTransposePermuted is Algorithm 2 on Âᵀ: since
// Â|_{ij} = U_i B_{ij} V_jᵀ, the transpose carries V_j B_{ij}ᵀ U_iᵀ — the
// same sweep structure with U and V exchanged and every coupling applied
// through its transpose (for node i, the sum runs over B_{j,i}ᵀ q_j).
func (m *Matrix) applyTransposePermuted(yp, bp []float64) {
	workers := par.Resolve(m.Cfg.Workers)
	nodes := m.Tree.Nodes
	q := make([][]float64, len(nodes))
	g := make([][]float64, len(nodes))

	// Upward sweep through the ROW generators (U, R).
	for l := m.Tree.Depth() - 1; l >= 0; l-- {
		level := m.Tree.Levels[l]
		par.For(workers, len(level), func(k int) {
			id := level[k]
			nd := &nodes[id]
			qi := make([]float64, m.ranks[id])
			if nd.IsLeaf {
				if m.ranks[id] > 0 {
					mat.MulTVecAdd(qi, m.u[id], bp[nd.Start:nd.End])
				}
			} else if m.ranks[id] > 0 {
				off := 0
				for _, c := range nd.Children {
					rc := m.ranks[c]
					if rc > 0 {
						mat.MulTVecAddRange(qi, m.trans[id], off, off+rc, q[c])
					}
					off += rc
				}
			}
			q[id] = qi
		})
	}

	// Horizontal sweep: g_i = Σ_j B_{j,i}ᵀ q_j over j in IL(i). The
	// interaction lists are symmetric as sets, so iterating i's own list
	// covers exactly the blocks whose transpose writes into i.
	scratch := make([]*mat.Dense, workers)
	for w := range scratch {
		scratch[w] = mat.NewDense(0, 0)
	}
	par.ForWorker(workers, len(nodes), func(w, id int) {
		gi := make([]float64, m.colRank(id))
		g[id] = gi
		if m.colRank(id) == 0 {
			return
		}
		for _, j := range nodes[id].Interaction {
			if m.ranks[j] == 0 {
				continue
			}
			if m.Cfg.Mode == Normal {
				// g_i += B_{j,i}ᵀ q_j. In triangular (symmetric) storage,
				// Apply(g, i, j, q) already computes B_{i,j} q = B_{j,i}ᵀ q.
				// In directed storage we must transpose the stored (j, i)
				// block explicitly.
				if m.coup.directed {
					if blk := m.coup.Get(j, id); blk != nil {
						mat.MulTVecAdd(gi, blk, q[j])
					}
				} else {
					m.coup.Apply(gi, id, j, q[j])
				}
				continue
			}
			// OTF: assemble B_{j,i} = K(S^row_j, S^col_i) and apply its
			// transpose.
			tile := kernel.Assemble(scratch[w], m.Kern, m.skelPts[j], m.skel[j], m.skelPts[id], m.colSkeleton(id))
			mat.MulTVecAdd(gi, tile, q[j])
		}
	})

	// Downward sweep through the COLUMN generators (V, W).
	for l := 0; l < m.Tree.Depth(); l++ {
		level := m.Tree.Levels[l]
		par.For(workers, len(level), func(k int) {
			id := level[k]
			nd := &nodes[id]
			if nd.IsLeaf || m.colRank(id) == 0 {
				return
			}
			off := 0
			for _, c := range nd.Children {
				rc := m.colRank(c)
				if rc > 0 {
					mat.MulVecAddRange(g[c], m.colTrans(id), off, off+rc, g[id])
				}
				off += rc
			}
		})
	}

	// Leaf sweep: y_i = V_i g_i + Σ_j K(X_j, X_i)ᵀ b_j.
	par.ForWorker(workers, len(m.Tree.Leaves), func(w, k int) {
		id := m.Tree.Leaves[k]
		nd := &nodes[id]
		yi := yp[nd.Start:nd.End]
		for p := range yi {
			yi[p] = 0
		}
		if m.colRank(id) > 0 {
			mat.MulVecAdd(yi, m.colBasis(id), g[id])
		}
		for _, j := range nd.Near {
			nj := &nodes[j]
			bj := bp[nj.Start:nj.End]
			if m.Cfg.Mode == Normal {
				if m.near.directed {
					if blk := m.near.Get(j, id); blk != nil {
						mat.MulTVecAdd(yi, blk, bj)
					}
				} else {
					m.near.Apply(yi, id, j, bj)
				}
				continue
			}
			tile := kernel.Assemble(scratch[w], m.Kern, m.Tree.Points, m.leafRange(j), m.Tree.Points, m.leafRange(id))
			mat.MulTVecAdd(yi, tile, bj)
		}
	})
}

// ApplyBatch computes Y = Â B for a batch of k column vectors stored as an
// N-by-k matrix in the caller's original point ordering. The five sweeps
// run once with matrix-valued node states, so every coupling and nearfield
// block — in on-the-fly mode, every tile assembly — is visited once for the
// whole batch instead of once per column. This is the natural kernel for
// block iterative methods (multiple right-hand sides).
func (m *Matrix) ApplyBatch(b *mat.Dense) *mat.Dense {
	if b.Rows != m.N {
		panic(fmt.Sprintf("core: applyBatch rows %d want %d", b.Rows, m.N))
	}
	k := b.Cols
	workers := par.Resolve(m.Cfg.Workers)
	nodes := m.Tree.Nodes

	// Permute the batch rows.
	bp := mat.NewDense(m.N, k)
	for row, orig := range m.Tree.Perm {
		copy(bp.Row(row), b.Row(orig))
	}

	q := make([]*mat.Dense, len(nodes))
	g := make([]*mat.Dense, len(nodes))

	// Upward sweep: q_i = V_iᵀ B_i for leaves, q_i = Σ_c W_cᵀ q_c above.
	for l := m.Tree.Depth() - 1; l >= 0; l-- {
		level := m.Tree.Levels[l]
		par.For(workers, len(level), func(kk int) {
			id := level[kk]
			nd := &nodes[id]
			rank := m.colRank(id)
			qi := mat.NewDense(rank, k)
			if nd.IsLeaf {
				if rank > 0 {
					sub := bp.SubCopy(nd.Start, nd.End, 0, k)
					mat.MulTo(qi, m.colBasis(id).T(), sub)
				}
			} else if rank > 0 {
				off := 0
				w := m.colTrans(id)
				for _, c := range nd.Children {
					rc := m.colRank(c)
					if rc > 0 {
						// q_i += W_cᵀ q_c with W_c the row block of the stack.
						wc := w.SubCopy(off, off+rc, 0, rank)
						qi.Add(mat.Mul(wc.T(), q[c]))
					}
					off += rc
				}
			}
			q[id] = qi
		})
	}

	// Horizontal coupling sweep: one tile assembly per block for all k
	// columns.
	scratch := make([]*mat.Dense, workers)
	for w := range scratch {
		scratch[w] = mat.NewDense(0, 0)
	}
	par.ForWorker(workers, len(nodes), func(w, id int) {
		gi := mat.NewDense(m.ranks[id], k)
		g[id] = gi
		if m.ranks[id] == 0 {
			return
		}
		for _, j := range nodes[id].Interaction {
			if m.colRank(j) == 0 {
				continue
			}
			if m.Cfg.Mode == Normal {
				if m.coup.directed || id <= j {
					if blk := m.coup.Get(id, j); blk != nil {
						gi.Add(mat.Mul(blk, q[j]))
					}
				} else if blk := m.coup.Get(j, id); blk != nil {
					gi.Add(mat.Mul(blk.T(), q[j]))
				}
				continue
			}
			tile := kernel.Assemble(scratch[w], m.Kern, m.skelPts[id], m.skel[id], m.skelPts[j], m.colSkeleton(j))
			gi.Add(mat.Mul(tile, q[j]))
		}
	})

	// Downward sweep: g_c += R_c g_i.
	for l := 0; l < m.Tree.Depth(); l++ {
		level := m.Tree.Levels[l]
		par.For(workers, len(level), func(kk int) {
			id := level[kk]
			nd := &nodes[id]
			if nd.IsLeaf || m.ranks[id] == 0 {
				return
			}
			off := 0
			for _, c := range nd.Children {
				rc := m.ranks[c]
				if rc > 0 {
					rcBlock := m.trans[id].SubCopy(off, off+rc, 0, m.ranks[id])
					g[c].Add(mat.Mul(rcBlock, g[id]))
				}
				off += rc
			}
		})
	}

	// Leaf sweep.
	yp := mat.NewDense(m.N, k)
	par.ForWorker(workers, len(m.Tree.Leaves), func(w, kk int) {
		id := m.Tree.Leaves[kk]
		nd := &nodes[id]
		var yi *mat.Dense
		if m.ranks[id] > 0 {
			yi = mat.Mul(m.u[id], g[id])
		} else {
			yi = mat.NewDense(nd.Size(), k)
		}
		for _, j := range nd.Near {
			nj := &nodes[j]
			bj := bp.SubCopy(nj.Start, nj.End, 0, k)
			if m.Cfg.Mode == Normal {
				if m.near.directed {
					if blk := m.near.Get(id, j); blk != nil {
						yi.Add(mat.Mul(blk, bj))
					}
					continue
				}
				if id <= j {
					if blk := m.near.Get(id, j); blk != nil {
						yi.Add(mat.Mul(blk, bj))
					}
				} else if blk := m.near.Get(j, id); blk != nil {
					yi.Add(mat.Mul(blk.T(), bj))
				}
				continue
			}
			tile := kernel.Assemble(scratch[w], m.Kern, m.Tree.Points, m.leafRange(id), m.Tree.Points, m.leafRange(j))
			yi.Add(mat.Mul(tile, bj))
		}
		for r := 0; r < nd.Size(); r++ {
			copy(yp.Row(nd.Start+r), yi.Row(r))
		}
	})

	// Un-permute rows.
	y := mat.NewDense(m.N, k)
	for row, orig := range m.Tree.Perm {
		copy(y.Row(orig), yp.Row(row))
	}
	return y
}
