package core

import (
	"fmt"

	"h2ds/internal/mat"
)

// ApplyTranspose computes y = Âᵀ b in the caller's original point
// ordering. For symmetric kernels Âᵀ = Â and this is identical to Apply;
// for unsymmetric kernels the five sweeps run with the row/column roles
// exchanged: the upward sweep goes through U/R, couplings apply B_{j,i}
// transposed, and the downward/leaf sweeps go through V/W.
func (m *Matrix) ApplyTranspose(b []float64) []float64 {
	y := make([]float64, m.N)
	m.ApplyTransposeTo(y, b)
	return y
}

// ApplyTransposeTo computes y = Âᵀ b into y. y and b must both have length
// N; they may alias (see ApplyTo). Uses the internal workspace pool.
func (m *Matrix) ApplyTransposeTo(y, b []float64) {
	ws := m.getWorkspace()
	m.ApplyTransposeToWith(ws, y, b)
	m.putWorkspace(ws)
}

// ApplyBatch computes Y = Â B for a batch of k column vectors stored as an
// N-by-k matrix in the caller's original point ordering and returns the
// N-by-k result. See ApplyBatchTo.
func (m *Matrix) ApplyBatch(b *mat.Dense) *mat.Dense {
	if b.Rows != m.N {
		panic(fmt.Sprintf("core: applyBatch rows %d want %d", b.Rows, m.N))
	}
	y := mat.NewDense(m.N, b.Cols)
	m.ApplyBatchTo(y, b)
	return y
}

// ApplyBatchTo computes Y = Â B for k right-hand sides (the columns of the
// N-by-k matrix B) into Y, which is reshaped to N-by-k. Y and B may alias.
// The five sweeps run once with matrix-valued node states, so every
// coupling and nearfield block — in on-the-fly mode, every kernel tile
// assembly, the dominant cost — is visited once for the whole batch instead
// of once per column, and each stage is a small GEMM. This is the natural
// kernel for block iterative methods (multiple right-hand sides, paper
// §VI-B). Uses the internal workspace pool; batch buffers are retained and
// reused across calls.
func (m *Matrix) ApplyBatchTo(y, b *mat.Dense) {
	ws := m.getWorkspace()
	m.ApplyBatchToWith(ws, y, b)
	m.putWorkspace(ws)
}
