package core

import (
	"math"
	"sync"
	"testing"

	"h2ds/internal/mat"
)

func TestBlockStorePutGet(t *testing.T) {
	s := NewBlockStore()
	b1 := mat.NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	s.Put(1, 5, b1)
	if got := s.Get(1, 5); got != b1 {
		t.Fatal("Get did not return stored block")
	}
	if s.Get(5, 1) != nil {
		t.Fatal("reversed key must miss (caller handles transpose)")
	}
	if s.Get(2, 3) != nil {
		t.Fatal("missing key must return nil")
	}
	if s.Len() != 1 {
		t.Fatalf("Len %d", s.Len())
	}
}

func TestBlockStorePutOrderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for i > j")
		}
	}()
	NewBlockStore().Put(3, 1, mat.NewDense(1, 1))
}

func TestBlockStoreApplyDirectAndTransposed(t *testing.T) {
	s := NewBlockStore()
	b := mat.NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	s.Put(1, 5, b)
	q := []float64{1, -1, 2}
	g := make([]float64, 2)
	if !s.Apply(g, 1, 5, q) {
		t.Fatal("apply missed stored block")
	}
	if g[0] != 1*1-2+3*2 || g[1] != 4-5+6*2 {
		t.Fatalf("direct apply wrong: %v", g)
	}
	// Transposed: B_{5,1} = Bᵀ.
	q2 := []float64{1, 1}
	g2 := make([]float64, 3)
	if !s.Apply(g2, 5, 1, q2) {
		t.Fatal("transposed apply missed")
	}
	want := []float64{5, 7, 9}
	for i := range want {
		if math.Abs(g2[i]-want[i]) > 1e-15 {
			t.Fatalf("transposed apply wrong: %v", g2)
		}
	}
	// Missing block reports false and leaves g untouched.
	g3 := []float64{7}
	if s.Apply(g3, 9, 9, []float64{1}) {
		t.Fatal("apply on missing block must return false")
	}
	if g3[0] != 7 {
		t.Fatal("missing apply must not modify g")
	}
}

func TestBlockStoreConcurrentPut(t *testing.T) {
	s := NewBlockStore()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < 50; k++ {
				i := w*50 + k
				s.Put(i, i+1, mat.NewDense(1, 1))
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 400 {
		t.Fatalf("Len %d want 400", s.Len())
	}
	for i := 0; i < 400; i++ {
		if s.Get(i, i+1) == nil {
			t.Fatalf("lost block (%d,%d)", i, i+1)
		}
	}
}

func TestBlockStoreConcurrentPutGet(t *testing.T) {
	// Readers overlap writers during the construction phase — this is the
	// race the RWMutex closes; run with -race to verify.
	s := NewBlockStore()
	var wg sync.WaitGroup
	const writers, perWriter = 4, 100
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for k := 0; k < perWriter; k++ {
				i := w*perWriter + k
				s.Put(i, i+1, mat.NewDenseData(1, 1, []float64{float64(i)}))
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g := make([]float64, 1)
			for k := 0; k < 2000; k++ {
				i := k % (writers * perWriter)
				if b := s.Get(i, i+1); b != nil && b.Data[0] != float64(i) {
					t.Errorf("block (%d,%d) has wrong payload %g", i, i+1, b.Data[0])
					return
				}
				s.Apply(g, i, i+1, []float64{1})
				_ = s.Len()
				_ = s.Bytes()
				_ = s.MaxBlockBytes()
			}
		}()
	}
	wg.Wait()
	if s.Len() != writers*perWriter {
		t.Fatalf("Len %d want %d", s.Len(), writers*perWriter)
	}
}

func TestBlockStoreFreeze(t *testing.T) {
	s := NewBlockStore()
	s.Put(0, 1, mat.NewDenseData(1, 1, []float64{2}))
	s.Freeze()
	if s.Get(0, 1) == nil || s.Len() != 1 {
		t.Fatal("frozen reads must still see stored blocks")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Put after Freeze")
		}
	}()
	s.Put(0, 2, mat.NewDense(1, 1))
}

func TestBlockStoreApplyBatch(t *testing.T) {
	s := NewBlockStore()
	b := mat.NewDenseData(2, 3, []float64{1, 2, 3, 4, 5, 6})
	s.Put(1, 5, b)
	q := mat.NewDenseData(3, 2, []float64{1, 0, -1, 1, 2, -2})
	g := mat.NewDense(2, 2)
	if !s.ApplyBatch(g, 1, 5, q) {
		t.Fatal("batch apply missed stored block")
	}
	want := mat.Mul(b, q)
	for i := range want.Data {
		if math.Abs(g.Data[i]-want.Data[i]) > 1e-15 {
			t.Fatalf("batch apply wrong: %v want %v", g.Data, want.Data)
		}
	}
	// Transposed direction.
	q2 := mat.NewDenseData(2, 2, []float64{1, -1, 1, 2})
	g2 := mat.NewDense(3, 2)
	if !s.ApplyBatch(g2, 5, 1, q2) {
		t.Fatal("transposed batch apply missed")
	}
	wantT := mat.Mul(b.T(), q2)
	for i := range wantT.Data {
		if math.Abs(g2.Data[i]-wantT.Data[i]) > 1e-15 {
			t.Fatalf("transposed batch apply wrong: %v want %v", g2.Data, wantT.Data)
		}
	}
	if s.ApplyBatch(mat.NewDense(1, 2), 9, 9, mat.NewDense(1, 2)) {
		t.Fatal("batch apply on missing block must return false")
	}
}

func TestBlockStoreBytes(t *testing.T) {
	s := NewBlockStore()
	if s.Bytes() != 0 || s.MaxBlockBytes() != 0 {
		t.Fatal("empty store must report zero")
	}
	s.Put(0, 1, mat.NewDense(10, 10))
	s.Put(0, 2, mat.NewDense(5, 4))
	if s.Bytes() < 120*8 {
		t.Fatalf("Bytes %d too small", s.Bytes())
	}
	if s.MaxBlockBytes() != 100*8 {
		t.Fatalf("MaxBlockBytes %d want %d", s.MaxBlockBytes(), 100*8)
	}
}
