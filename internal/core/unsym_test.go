package core

import (
	"math"
	"testing"

	"h2ds/internal/kernel"
	"h2ds/internal/mat"
	"h2ds/internal/pointset"
)

// driftKernel is a genuinely unsymmetric smooth kernel:
// K(x, y) = exp(-||x - y - shift||). Because the shift breaks the
// x <-> y exchange symmetry, K(x, y) != K(y, x), which forces the H²
// construction onto the general U/V, R/W path of the paper's Algorithm 2.
type driftKernel struct {
	shift []float64
}

func (d driftKernel) EvalPair(x, y []float64) float64 {
	s := 0.0
	for i := range x {
		v := x[i] - y[i] - d.shift[i]
		s += v * v
	}
	return math.Exp(-math.Sqrt(s))
}

func (driftKernel) Symmetric() bool { return false }
func (driftKernel) Name() string    { return "drift-exp" }

func drift3() driftKernel { return driftKernel{shift: []float64{0.15, -0.08, 0.05}} }

func TestUnsymmetricKernelIsActuallyUnsymmetric(t *testing.T) {
	k := drift3()
	x := []float64{0.1, 0.2, 0.3}
	y := []float64{0.7, 0.5, 0.9}
	if k.EvalPair(x, y) == k.EvalPair(y, x) {
		t.Fatal("test kernel failed to be unsymmetric")
	}
}

func TestUnsymmetricAccuracyDataDriven(t *testing.T) {
	pts := pointset.Cube(2000, 3, 70)
	b := randVec(2000, 71)
	k := drift3()
	want := DirectApply(pts, k, b, 0)
	for _, tol := range []float64{1e-4, 1e-7} {
		for _, mode := range []MemoryMode{Normal, OnTheFly} {
			m, err := Build(pts, k, Config{Kind: DataDriven, Mode: mode, Tol: tol, LeafSize: 80})
			if err != nil {
				t.Fatal(err)
			}
			if e := relErr(m.Apply(b), want); e > 10*tol {
				t.Fatalf("tol %g mode %v: error %g", tol, mode, e)
			}
		}
	}
}

func TestUnsymmetricAccuracyInterpolation(t *testing.T) {
	// Interpolation's polynomial bases are kernel independent, so the
	// unsymmetric kernel only changes the (directed) coupling blocks.
	pts := pointset.Cube(1500, 3, 72)
	b := randVec(1500, 73)
	k := drift3()
	want := DirectApply(pts, k, b, 0)
	for _, mode := range []MemoryMode{Normal, OnTheFly} {
		m, err := Build(pts, k, Config{Kind: Interpolation, Mode: mode, Tol: 1e-5, LeafSize: 100})
		if err != nil {
			t.Fatal(err)
		}
		if e := relErr(m.Apply(b), want); e > 1e-4 {
			t.Fatalf("mode %v: error %g", mode, e)
		}
	}
}

func TestUnsymmetricOTFMatchesNormal(t *testing.T) {
	pts := pointset.Cube(1800, 3, 74)
	b := randVec(1800, 75)
	k := drift3()
	mn, err := Build(pts, k, Config{Kind: DataDriven, Mode: Normal, Tol: 1e-6, LeafSize: 80})
	if err != nil {
		t.Fatal(err)
	}
	mo, err := Build(pts, k, Config{Kind: DataDriven, Mode: OnTheFly, Tol: 1e-6, LeafSize: 80})
	if err != nil {
		t.Fatal(err)
	}
	yn := mn.Apply(b)
	yo := mo.Apply(b)
	// Directed storage applies identical blocks in identical order: the
	// two modes must agree bitwise for unsymmetric kernels.
	for i := range yn {
		if yn[i] != yo[i] {
			t.Fatalf("OTF differs from normal at %d: %g vs %g", i, yn[i], yo[i])
		}
	}
}

func TestUnsymmetricSeparateBases(t *testing.T) {
	pts := pointset.Cube(1500, 3, 76)
	m, err := Build(pts, drift3(), Config{Kind: DataDriven, Tol: 1e-6, LeafSize: 80})
	if err != nil {
		t.Fatal(err)
	}
	if m.sharedBasis {
		t.Fatal("unsymmetric kernel must not share bases")
	}
	// Row and column skeletons must both be populated and (generically)
	// differ somewhere.
	differ := false
	for id := range m.Tree.Nodes {
		if m.ranks[id] != len(m.skel[id]) || m.colRanks[id] != len(m.colSkel[id]) {
			t.Fatalf("node %d: rank/skeleton inconsistency", id)
		}
		if len(m.skel[id]) != len(m.colSkel[id]) {
			differ = true
			continue
		}
		for s := range m.skel[id] {
			if m.skel[id][s] != m.colSkel[id][s] {
				differ = true
				break
			}
		}
	}
	if !differ {
		t.Fatal("row and column skeletons identical everywhere; column path likely not running")
	}
	// Memory accounting must include both sides.
	mem := m.Memory()
	if mem.Basis <= 0 || mem.Transfer <= 0 {
		t.Fatalf("memory stats missing: %+v", mem)
	}
}

func TestSymmetricKernelsShareBases(t *testing.T) {
	pts := pointset.Cube(800, 3, 77)
	m, err := Build(pts, kernel.Coulomb{}, Config{Kind: DataDriven, Tol: 1e-5, LeafSize: 60})
	if err != nil {
		t.Fatal(err)
	}
	if !m.sharedBasis {
		t.Fatal("symmetric kernel must share bases")
	}
	if m.v != nil || m.wTrans != nil {
		t.Fatal("symmetric build must not allocate column-side arrays")
	}
}

func TestUnsymmetricErrorEstimator(t *testing.T) {
	pts := pointset.Cube(1200, 3, 78)
	b := randVec(1200, 79)
	k := drift3()
	m, err := Build(pts, k, Config{Kind: DataDriven, Mode: OnTheFly, Tol: 1e-7, LeafSize: 80})
	if err != nil {
		t.Fatal(err)
	}
	y := m.Apply(b)
	est := m.RelErrorVs(b, y, 32, 80)
	want := DirectApply(pts, k, b, 0)
	truth := relErr(y, want)
	if est > 100*truth+1e-14 || truth > 100*est+1e-14 {
		t.Fatalf("estimator %g vs true %g", est, truth)
	}
}

func TestDirectedBlockStore(t *testing.T) {
	s := NewDirectedBlockStore()
	b := mat.NewDenseData(3, 2, []float64{1, 2, 3, 4, 5, 6})
	s.Put(5, 1, b) // reversed order allowed in directed mode
	if s.Get(5, 1) != b || s.Get(1, 5) != nil {
		t.Fatal("directed store key handling wrong")
	}
	g := make([]float64, 3)
	if !s.Apply(g, 5, 1, []float64{1, 2}) {
		t.Fatal("directed apply missed")
	}
	if s.Apply(g, 1, 5, []float64{1, 2, 3}) {
		t.Fatal("directed apply must not transpose")
	}
}
