package core

import (
	"bytes"
	"math"
	"testing"

	"h2ds/internal/kernel"
	"h2ds/internal/pointset"
)

// relTolSweep is the tolerance axis of the error-controlled build tests:
// loose enough to keep builds fast, tight enough to exercise rank growth.
var relTolSweep = []float64{1e-2, 1e-4, 1e-6}

// TestRelTolBuildErrorControlled checks the error-controlled contract: at
// every requested tolerance the a-posteriori estimate and an independent
// 12-row measurement both land within 10x of the request, and the estimate
// is recorded in BuildStats.
func TestRelTolBuildErrorControlled(t *testing.T) {
	pts := pointset.Cube(2000, 3, 11)
	b := randVec(2000, 12)
	for _, rt := range relTolSweep {
		m, err := Build(pts, kernel.Coulomb{}, Config{Kind: DataDriven, Mode: OnTheFly, RelTol: rt, LeafSize: 60})
		if err != nil {
			t.Fatal(err)
		}
		st := m.Stats()
		if st.RelTol != rt {
			t.Fatalf("reltol %g: stats report %g", rt, st.RelTol)
		}
		if st.EstRelErr <= 0 || st.EstRelErr > 10*rt {
			t.Fatalf("reltol %g: a-posteriori estimate %g outside (0, %g]", rt, st.EstRelErr, 10*rt)
		}
		y := m.Apply(b)
		if got := m.RelErrorVs(b, y, DefaultErrorRows, 13); got > 10*rt {
			t.Fatalf("reltol %g: measured error %g > 10x request", rt, got)
		}
		if len(st.LevelRanks) == 0 || st.LevelRanks[len(st.LevelRanks)-1].MaxRank == 0 {
			t.Fatalf("reltol %g: missing level rank summary: %+v", rt, st.LevelRanks)
		}
	}
}

// TestRelTolRanksAndMemoryMonotone tightens the tolerance and checks ranks
// and stored memory grow monotonically — the dial the registry's memory
// budget and the fused flop count both ride on.
func TestRelTolRanksAndMemoryMonotone(t *testing.T) {
	pts := pointset.Cube(2000, 3, 21)
	var prevRank int
	var prevMem int64
	for _, rt := range relTolSweep {
		m, err := Build(pts, kernel.Coulomb{}, Config{Kind: DataDriven, Mode: Normal, RelTol: rt, LeafSize: 60})
		if err != nil {
			t.Fatal(err)
		}
		st := m.Stats()
		mem := m.Memory().Total()
		if st.MaxRank < prevRank {
			t.Fatalf("reltol %g: max rank %d shrank below %d at looser tolerance", rt, st.MaxRank, prevRank)
		}
		if mem < prevMem {
			t.Fatalf("reltol %g: memory %d shrank below %d at looser tolerance", rt, mem, prevMem)
		}
		prevRank, prevMem = st.MaxRank, mem
	}
}

// TestRelTolSampleBudgetMonotone pins the tolerance -> anchor-net size
// calibration: tighter tolerances never sample less, and the derived budget
// never falls below the fixed-parameter default.
func TestRelTolSampleBudgetMonotone(t *testing.T) {
	for _, dim := range []int{2, 3, 6} {
		prev := 0
		for _, rt := range []float64{1e-1, 1e-2, 1e-4, 1e-6, 1e-8} {
			m := RelTolSampleBudget(rt, dim)
			if m < prev {
				t.Fatalf("dim %d: budget %d at reltol %g below %d at looser tolerance", dim, m, rt, prev)
			}
			if def := DefaultSampleBudget(rt, dim); m < def {
				t.Fatalf("dim %d reltol %g: budget %d below fixed-parameter default %d", dim, rt, m, def)
			}
			prev = m
		}
	}
}

// TestRelTolSerializeV3RoundTrip checks that a reltol-built matrix
// round-trips bitwise through the v3 stream: write -> read -> write yields
// identical bytes, and the error-controlled metadata survives.
func TestRelTolSerializeV3RoundTrip(t *testing.T) {
	pts := pointset.Cube(1200, 3, 31)
	m, err := Build(pts, kernel.Coulomb{}, Config{Kind: DataDriven, Mode: Normal, RelTol: 1e-5, LeafSize: 60})
	if err != nil {
		t.Fatal(err)
	}
	var buf1 bytes.Buffer
	if _, err := m.WriteTo(&buf1); err != nil {
		t.Fatal(err)
	}
	m2, err := Read(bytes.NewReader(buf1.Bytes()), kernel.Coulomb{})
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if _, err := m2.WriteTo(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatalf("v3 round trip not bitwise: %d vs %d bytes", buf1.Len(), buf2.Len())
	}
	st, st2 := m.Stats(), m2.Stats()
	if st2.RelTol != st.RelTol || st2.EstRelErr != st.EstRelErr {
		t.Fatalf("reltol metadata lost: %g/%g vs %g/%g", st2.RelTol, st2.EstRelErr, st.RelTol, st.EstRelErr)
	}
	if len(st2.LevelRanks) != len(st.LevelRanks) {
		t.Fatalf("level ranks lost: %d vs %d levels", len(st2.LevelRanks), len(st.LevelRanks))
	}
	for i := range st.LevelRanks {
		if st2.LevelRanks[i] != st.LevelRanks[i] {
			t.Fatalf("level %d rank summary differs: %+v vs %+v", i, st2.LevelRanks[i], st.LevelRanks[i])
		}
	}
	b := randVec(1200, 32)
	y1, y2 := m.Apply(b), m2.Apply(b)
	for i := range y1 {
		if y1[i] != y2[i] {
			t.Fatalf("loaded reltol matrix differs at %d", i)
		}
	}
}

// TestReadV2StreamCompat hand-writes a version-2 stream (the v3 layout minus
// the RelTol/EstRelErr fields) and checks it still loads, with the
// error-controlled metadata zeroed.
func TestReadV2StreamCompat(t *testing.T) {
	pts := pointset.Cube(600, 3, 41)
	m, err := Build(pts, kernel.Coulomb{}, Config{Kind: DataDriven, Mode: OnTheFly, Tol: 1e-4, LeafSize: 50})
	if err != nil {
		t.Fatal(err)
	}
	var v3 bytes.Buffer
	if _, err := m.WriteTo(&v3); err != nil {
		t.Fatal(err)
	}
	// Surgically downgrade the stream: patch the version word and excise the
	// two float64s v3 inserted after StorageBudget. Layout up to there:
	// magic (8-byte length + 4 bytes), version (4), kernel name (8 + len),
	// kind (1), mode (1), Tol (8), LeafSize (8), Eta (8), SampleBudget (8),
	// P (8), StorageBudget (8).
	raw := v3.Bytes()
	nameLen := len(m.Kern.Name())
	verOff := 8 + 4
	raw[verOff] = 2 // little-endian uint32 version 3 -> 2
	cut := verOff + 4 + 8 + nameLen + 1 + 1 + 8 + 8 + 8 + 8 + 8 + 8
	v2 := append(append([]byte(nil), raw[:cut]...), raw[cut+16:]...)

	m2, err := Read(bytes.NewReader(v2), kernel.Coulomb{})
	if err != nil {
		t.Fatalf("v2 stream rejected: %v", err)
	}
	if st := m2.Stats(); st.RelTol != 0 || st.EstRelErr != 0 {
		t.Fatalf("v2 stream produced reltol metadata: %+v", st)
	}
	b := randVec(600, 42)
	y1, y2 := m.Apply(b), m2.Apply(b)
	for i := range y1 {
		if y1[i] != y2[i] {
			t.Fatalf("v2-loaded matrix differs at %d", i)
		}
	}
}

// TestRelTolRejectsBadValues checks Build fails fast on out-of-range RelTol.
func TestRelTolRejectsBadValues(t *testing.T) {
	pts := pointset.Cube(100, 3, 51)
	for _, rt := range []float64{-1e-3, 1, 2.5, math.NaN()} {
		if _, err := Build(pts, kernel.Coulomb{}, Config{RelTol: rt, LeafSize: 50}); err == nil {
			t.Fatalf("RelTol %g accepted", rt)
		}
	}
}
