package core

import (
	"runtime"
	"sync/atomic"

	"h2ds/internal/tree"
)

// Barrier-free sweep scheduling.
//
// The seed apply path runs Algorithm 2 as five level-synchronous sweeps:
// every tree level is a fork/barrier on the worker pool, so workers idle at
// each barrier and starve near the root where levels hold fewer nodes than
// workers. The scheduler here replaces the barriers with a dependency-driven
// task graph: one task per (node, stage), released the moment its inputs are
// final. Upward tasks release their parent as soon as the last child lands,
// coupling tasks fire as soon as their interaction partners' upward partials
// exist (long before the full upward sweep finishes), and leaf tasks — which
// carry the nearfield block rows — interleave with everything else, filling
// the idle time the barriers used to burn.
//
// Bitwise contract: every output slot (a node's q segment, g segment, or a
// leaf's y range) is written by exactly one task, and each task's internal
// arithmetic is the unchanged per-node kernel of the seed sweeps. The graph
// edges reproduce the seed ordering wherever two tasks touch the same slot
// (coupling zero+accumulate before the parent's downward add, downward add
// before the leaf expansion reads), so the result is bitwise-identical to
// the level-synchronous path at every worker count — there is no merge step
// to make deterministic because no slot ever has two writers.
//
// Task id layout for a tree with nNodes nodes (total = 3*nNodes tasks):
//
//	[0, nNodes)            up(id)    upward sweep, one per node
//	[nNodes, 2*nNodes)     coup(id)  coupling sweep, one per node
//	[2*nNodes, 3*nNodes)   down(id)  downward sweep for internal nodes;
//	                                 leaf nodes have no downward task, so
//	                                 their slot holds the leaf sweep task
//	                                 (leafIdx maps node id -> leaf index)
//
// Edges (dependency -> dependent):
//
//	up(c)    -> up(parent(c))        children before the stacked transfer
//	up(j)    -> coup(i)  ∀ j∈IL(i)   partials before the coupling reads them
//	coup(i)  -> down(i)              down reads g_i after coupling filled it
//	coup(c)  -> down(parent(c))      down adds into g_c after coup zeroed it
//	down(p)  -> down(i)              g_i is final only after p's contribution
//	coup(l)  -> leaf(l)              leaf reads g_l after coupling
//	down(p)  -> leaf(l)              ... and after the parent's add
//
// The same graph serves the forward, transpose, and batched applies: the
// stages swap which generator they read (U/R vs V/W) but touch the same
// slots in the same node topology.
type taskGraph struct {
	nNodes  int
	total   int32
	initCnt []int32 // initial dependency count per task id
	depOff  []int32 // CSR offsets into depList per task id
	depList []int32 // dependent task ids
	ready0  []int32 // zero-dependency tasks in deterministic seed order
	leafIdx []int32 // node id -> index into Tree.Leaves, -1 for internal
}

// schedGraph lazily builds the matrix's task graph (the tree is immutable
// after construction, so one graph serves every workspace and apply kind).
func (m *Matrix) schedGraph() *taskGraph {
	m.schedOnce.Do(func() { m.sched = buildTaskGraph(m.Tree) })
	return m.sched
}

func buildTaskGraph(t *tree.Tree) *taskGraph {
	nN := len(t.Nodes)
	g := &taskGraph{nNodes: nN, total: int32(3 * nN)}
	up := func(id int) int32 { return int32(id) }
	coup := func(id int) int32 { return int32(nN + id) }
	down := func(id int) int32 { return int32(2*nN + id) }
	g.leafIdx = make([]int32, nN)
	for i := range g.leafIdx {
		g.leafIdx[i] = -1
	}
	for k, id := range t.Leaves {
		g.leafIdx[id] = int32(k)
	}

	// Two passes over the same edge enumeration: count out-degrees, then fill.
	deg := make([]int32, 3*nN)
	g.initCnt = make([]int32, 3*nN)
	edges := func(emit func(from, to int32)) {
		for id := range t.Nodes {
			nd := &t.Nodes[id]
			if nd.Parent >= 0 {
				emit(up(id), up(nd.Parent))
				emit(coup(id), down(nd.Parent))
			}
			for _, j := range nd.Interaction {
				emit(up(j), coup(id))
			}
			// down(id) doubles as the leaf task when id is a leaf; the
			// dependencies are the same shape either way.
			emit(coup(id), down(id))
			if nd.Parent >= 0 {
				emit(down(nd.Parent), down(id))
			}
		}
	}
	edges(func(from, to int32) { deg[from]++; g.initCnt[to]++ })
	g.depOff = make([]int32, 3*nN+1)
	for i := 0; i < 3*nN; i++ {
		g.depOff[i+1] = g.depOff[i] + deg[i]
	}
	g.depList = make([]int32, g.depOff[3*nN])
	fill := make([]int32, 3*nN)
	edges(func(from, to int32) {
		g.depList[g.depOff[from]+fill[from]] = to
		fill[from]++
	})

	// Initial frontier, deepest level first: leaf up tasks feed the longest
	// dependency chains, so they go ahead of the isolated zero-interaction
	// coupling tasks.
	for l := len(t.Levels) - 1; l >= 0; l-- {
		for _, id := range t.Levels[l] {
			if t.Nodes[id].IsLeaf {
				g.ready0 = append(g.ready0, up(id))
			}
		}
	}
	for id := range t.Nodes {
		if len(t.Nodes[id].Interaction) == 0 {
			g.ready0 = append(g.ready0, coup(id))
		}
	}
	return g
}

// scheduler is the per-workspace runtime state of one scheduled apply: a
// resettable dependency-count array and a bounded MPMC ready ring. Slots are
// claimed in push order via two atomic cursors; a claimed-but-unfilled slot
// is guaranteed to fill because every task is pushed exactly once (the graph
// is a DAG covering all tasks), so claimants spin-yield instead of parking.
type scheduler struct {
	g     *taskGraph
	cnt   []int32
	queue []int32 // task id + 1; 0 = not yet pushed
	_     [40]byte
	head  atomic.Int64 // next slot to claim
	_     [56]byte
	tail  atomic.Int64 // next slot to fill
	_     [56]byte
}

// reset prepares the scheduler for one apply and seeds the initial frontier.
func (s *scheduler) reset(g *taskGraph) {
	s.g = g
	n := len(g.initCnt)
	if cap(s.cnt) < n {
		s.cnt = make([]int32, n)
		s.queue = make([]int32, n)
	}
	s.cnt = s.cnt[:n]
	s.queue = s.queue[:n]
	copy(s.cnt, g.initCnt)
	for i := range s.queue {
		s.queue[i] = 0
	}
	s.head.Store(0)
	for i, t := range g.ready0 {
		s.queue[i] = t + 1
	}
	s.tail.Store(int64(len(g.ready0)))
}

// runSched is one worker slot's scheduling loop: claim the next ready task
// slot, execute its task, release dependents, repeat until every task is
// claimed. The pool runs one loop per slot (par.Pool.Run); the pool phase
// (and hence the apply) completes only when every loop returns, and a loop
// returns only after finishing the decrements of its last claimed task — so
// loop exit implies every task has fully executed.
func (ws *Workspace) runSched(w int) {
	s := &ws.sched
	g := s.g
	total := int64(g.total)
	for {
		idx := s.head.Add(1) - 1
		if idx >= total {
			return
		}
		var task int32
		for {
			task = atomic.LoadInt32(&s.queue[idx])
			if task != 0 {
				break
			}
			runtime.Gosched()
		}
		task--
		ws.execTask(w, task)
		for _, d := range g.depList[g.depOff[task]:g.depOff[task+1]] {
			if atomic.AddInt32(&s.cnt[d], -1) == 0 {
				slot := s.tail.Add(1) - 1
				atomic.StoreInt32(&s.queue[slot], d+1)
			}
		}
	}
}

// execTask dispatches one task to the current apply variant's per-node
// kernel and charges its wall time to the worker's per-stage counter line.
func (ws *Workspace) execTask(w int, t int32) {
	g := ws.sched.g
	nN := int32(g.nNodes)
	t0 := nowNS()
	base := w * ctrStride
	switch {
	case t < nN:
		ws.schedUp(w, int(t))
		ws.ctr[base+ctrUpNS] += nowNS() - t0
	case t < 2*nN:
		ws.schedCoup(w, int(t-nN))
		ws.ctr[base+ctrCoupNS] += nowNS() - t0
	default:
		id := int(t - 2*nN)
		if k := g.leafIdx[id]; k >= 0 {
			ws.schedLeaf(w, int(k))
			ws.ctr[base+ctrLeafNS] += nowNS() - t0
		} else {
			ws.schedDown(w, id)
			ws.ctr[base+ctrDownNS] += nowNS() - t0
		}
	}
}

// useSched reports whether this apply should run on the dependency-driven
// scheduler: it needs the persistent pool (the fork-join fallback is the
// seed reference path the equivalence suites pin against) and more than one
// worker (a single worker has no barrier idle time to reclaim).
func (ws *Workspace) useSched() bool {
	return ws.pool != nil && ws.workers > 1
}

// runScheduled executes one full apply (all five sweeps) as a single
// barrier-free pool phase using the previously assigned sched* kernels.
// useSched guarantees a live pool, so the drain runs via par.Pool.Run: one
// runSched loop per worker slot, each with a distinct per-worker counter and
// scratch line.
func (ws *Workspace) runScheduled() {
	ws.sched.reset(ws.m.schedGraph())
	ws.pool.Run(ws.schedRunFn)
	ws.m.sweeps.applies.Add(1)
}
