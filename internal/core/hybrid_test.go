package core

import (
	"bytes"
	"math"
	"sync"
	"testing"

	"h2ds/internal/kernel"
	"h2ds/internal/mat"
	"h2ds/internal/pointset"
)

// bitsEqualVec fails unless got and want are identical float64 bit patterns.
func bitsEqualVec(t *testing.T, tag string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d want %d", tag, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: element %d = %v want %v", tag, i, got[i], want[i])
		}
	}
}

// storedBytes is the hybrid budget that stores every block: the footprint the
// candidate cost model assigns to the full set.
func (m *Matrix) storedBytesForTest() int64 {
	var total int64
	for _, c := range m.blockCandidates() {
		total += storedBlockBytes(c.elems)
	}
	return total
}

// TestFusedOTFMatchesSeedBitwise pins the fused on-the-fly sweeps (vector,
// transpose, batch) against the seed assemble-then-multiply path on the same
// matrix, bitwise, for a symmetric and an unsymmetric kernel.
func TestFusedOTFMatchesSeedBitwise(t *testing.T) {
	pts := pointset.Cube(3000, 3, 91)
	b := randVec(3000, 92)
	B := mat.NewDenseData(3000, 3, randVec(9000, 93))
	kernels := []kernel.Pairwise{kernel.Coulomb{}, kernel.Gaussian{}, drift3()}
	for _, k := range kernels {
		m, err := Build(pts, k, Config{Kind: DataDriven, Mode: OnTheFly, Tol: 1e-6, LeafSize: 60})
		if err != nil {
			t.Fatal(err)
		}
		m.seedOTF = true
		wantY := m.Apply(b)
		wantT := m.ApplyTranspose(b)
		wantB := m.ApplyBatch(B)
		m.seedOTF = false
		bitsEqualVec(t, k.Name()+"/apply", m.Apply(b), wantY)
		bitsEqualVec(t, k.Name()+"/transpose", m.ApplyTranspose(b), wantT)
		bitsEqualVec(t, k.Name()+"/batch", m.ApplyBatch(B).Data, wantB.Data)
	}
}

// TestHybridMatchesOTFBitwise pins hybrid mode at 0%, 50%, and 100% of the
// full block footprint against the pure on-the-fly path: the order-preserving
// store appliers must make stored and fused results indistinguishable.
func TestHybridMatchesOTFBitwise(t *testing.T) {
	pts := pointset.Cube(3000, 3, 95)
	b := randVec(3000, 96)
	B := mat.NewDenseData(3000, 3, randVec(9000, 97))
	kernels := []kernel.Pairwise{kernel.Coulomb{}, drift3()}
	for _, k := range kernels {
		otf, err := Build(pts, k, Config{Kind: DataDriven, Mode: OnTheFly, Tol: 1e-6, LeafSize: 60})
		if err != nil {
			t.Fatal(err)
		}
		wantY := otf.Apply(b)
		wantT := otf.ApplyTranspose(b)
		wantB := otf.ApplyBatch(B)
		full := otf.storedBytesForTest()
		for _, frac := range []float64{0, 0.5, 1} {
			budget := int64(frac * float64(full))
			cfg := Config{Kind: DataDriven, Mode: Hybrid, StorageBudget: budget, Tol: 1e-6, LeafSize: 60}
			h, err := Build(pts, k, cfg)
			if err != nil {
				t.Fatal(err)
			}
			tag := k.Name() + "/" + cfg.Mode.String()
			bitsEqualVec(t, tag+"/apply", h.Apply(b), wantY)
			bitsEqualVec(t, tag+"/transpose", h.ApplyTranspose(b), wantT)
			bitsEqualVec(t, tag+"/batch", h.ApplyBatch(B).Data, wantB.Data)

			ss := h.SweepStats()
			switch frac {
			case 0:
				if ss.HybridHits != 0 || ss.HybridMisses == 0 {
					t.Fatalf("%s: 0%% budget hits=%d misses=%d", tag, ss.HybridHits, ss.HybridMisses)
				}
			case 1:
				if ss.HybridMisses != 0 || ss.HybridHits == 0 {
					t.Fatalf("%s: 100%% budget hits=%d misses=%d", tag, ss.HybridHits, ss.HybridMisses)
				}
				if stored := h.coup.Len() + h.near.Len(); stored == 0 {
					t.Fatalf("%s: full budget stored no blocks", tag)
				}
			default:
				if ss.HybridHits == 0 || ss.HybridMisses == 0 {
					t.Fatalf("%s: 50%% budget hits=%d misses=%d (want both nonzero)", tag, ss.HybridHits, ss.HybridMisses)
				}
			}
			mem := h.Memory()
			if frac > 0 && mem.Coupling+mem.Nearfield == 0 {
				t.Fatalf("%s: hybrid MemoryStats reports no stored blocks", tag)
			}
			// Bytes() carries a few bytes of fixed CSR-index overhead per
			// store even when empty; allow that floor over the budget.
			if got := mem.Coupling + mem.Nearfield; frac < 1 && got > budget+128 {
				t.Fatalf("%s: stored %d bytes exceeds budget %d", tag, got, budget)
			}
		}
	}
}

// TestWithStorageBudgetMatchesHybridBuild checks the registry downgrade path:
// deriving a hybrid view from a Normal build must behave exactly like a
// from-scratch hybrid build at the same budget, and must not disturb the
// parent.
func TestWithStorageBudgetMatchesHybridBuild(t *testing.T) {
	pts := pointset.Cube(2500, 3, 101)
	b := randVec(2500, 102)
	m, err := Build(pts, kernel.Exponential{}, Config{Kind: DataDriven, Mode: Normal, Tol: 1e-6, LeafSize: 60})
	if err != nil {
		t.Fatal(err)
	}
	parentWant := m.Apply(b)
	full := m.storedBytesForTest()
	budget := full / 2
	down := m.WithStorageBudget(budget)
	if down.Cfg.Mode != Hybrid || down.Cfg.StorageBudget != budget {
		t.Fatalf("downgrade config = %v/%d", down.Cfg.Mode, down.Cfg.StorageBudget)
	}
	ref, err := Build(pts, kernel.Exponential{}, Config{Kind: DataDriven, Mode: Hybrid, StorageBudget: budget, Tol: 1e-6, LeafSize: 60})
	if err != nil {
		t.Fatal(err)
	}
	bitsEqualVec(t, "downgrade/apply", down.Apply(b), ref.Apply(b))
	bitsEqualVec(t, "downgrade/parent-intact", m.Apply(b), parentWant)
	if got, want := down.Memory().Coupling+down.Memory().Nearfield, ref.Memory().Coupling+ref.Memory().Nearfield; got != want {
		t.Fatalf("downgrade stored %d bytes, fresh hybrid build stored %d", got, want)
	}
}

// TestHybridConcurrentApplyStress drives concurrent vector, transpose, and
// batch applies through a half-budget hybrid matrix; run under -race this
// checks the hybrid counters and shared frozen stores for data races.
func TestHybridConcurrentApplyStress(t *testing.T) {
	pts := pointset.Cube(1500, 3, 111)
	m, err := Build(pts, kernel.Coulomb{}, Config{Kind: DataDriven, Mode: Hybrid, StorageBudget: 1 << 18, Tol: 1e-5, LeafSize: 50})
	if err != nil {
		t.Fatal(err)
	}
	b := randVec(1500, 112)
	want := m.Apply(b)
	wantT := m.ApplyTranspose(b)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			B := mat.NewDenseData(1500, 2, randVec(3000, int64(200+g)))
			for it := 0; it < 4; it++ {
				switch (g + it) % 3 {
				case 0:
					bitsEqualVec(t, "stress/apply", m.Apply(b), want)
				case 1:
					bitsEqualVec(t, "stress/transpose", m.ApplyTranspose(b), wantT)
				default:
					m.ApplyBatch(B)
				}
			}
		}(g)
	}
	wg.Wait()
	ss := m.SweepStats()
	if ss.Applies == 0 || ss.HybridHits+ss.HybridMisses == 0 {
		t.Fatalf("stress recorded no hybrid traffic: %+v", ss)
	}
}

// TestHybridSerializeRoundTrip checks a hybrid matrix survives WriteTo/Read
// with its budget, mode, and bitwise apply results intact.
func TestHybridSerializeRoundTrip(t *testing.T) {
	pts := pointset.Cube(1800, 3, 121)
	b := randVec(1800, 122)
	m, err := Build(pts, kernel.Matern32{}, Config{Kind: DataDriven, Mode: Hybrid, StorageBudget: 1 << 19, Tol: 1e-6, LeafSize: 60})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := Read(&buf, kernel.Matern32{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Cfg.Mode != Hybrid || r.Cfg.StorageBudget != m.Cfg.StorageBudget {
		t.Fatalf("round-trip config %v/%d want %v/%d", r.Cfg.Mode, r.Cfg.StorageBudget, m.Cfg.Mode, m.Cfg.StorageBudget)
	}
	if got, want := r.coup.Len()+r.near.Len(), m.coup.Len()+m.near.Len(); got != want {
		t.Fatalf("round-trip stored %d blocks want %d", got, want)
	}
	bitsEqualVec(t, "roundtrip/apply", r.Apply(b), m.Apply(b))
	bitsEqualVec(t, "roundtrip/transpose", r.ApplyTranspose(b), m.ApplyTranspose(b))
}

// TestOtfAssemblyStatsRecorded checks the new SweepStats fields: on-the-fly
// applies must accumulate assembly time, Normal-mode applies must not.
func TestOtfAssemblyStatsRecorded(t *testing.T) {
	pts := pointset.Cube(1200, 3, 131)
	b := randVec(1200, 132)
	otf, err := Build(pts, kernel.Coulomb{}, Config{Kind: DataDriven, Mode: OnTheFly, Tol: 1e-5, LeafSize: 50})
	if err != nil {
		t.Fatal(err)
	}
	otf.Apply(b)
	if ss := otf.SweepStats(); ss.OtfAssemblyNS == 0 {
		t.Fatalf("on-the-fly apply recorded no assembly time: %+v", ss)
	} else if ss.HybridHits != 0 || ss.HybridMisses != 0 {
		t.Fatalf("on-the-fly apply recorded hybrid counters: %+v", ss)
	}
	norm, err := Build(pts, kernel.Coulomb{}, Config{Kind: DataDriven, Mode: Normal, Tol: 1e-5, LeafSize: 50})
	if err != nil {
		t.Fatal(err)
	}
	norm.Apply(b)
	if ss := norm.SweepStats(); ss.OtfAssemblyNS != 0 || ss.HybridHits != 0 || ss.HybridMisses != 0 {
		t.Fatalf("normal-mode apply recorded otf stats: %+v", ss)
	}
}
