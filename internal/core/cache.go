package core

import (
	"math"
	"sync"

	"h2ds/internal/pointset"
	"h2ds/internal/sample"
	"h2ds/internal/tree"
)

// DefaultBuildCacheEntries is the construction-cache capacity used when a
// caller asks for one without sizing it. Trees and hierarchies are index
// structures (a few MB at n=20k), so a handful of geometries is cheap to
// retain.
const DefaultBuildCacheEntries = 4

// BuildCache shares the kernel-independent half of a data-driven build —
// the spatial tree (point ordering) and the Algorithm 1 sampling hierarchy —
// across builds over the same geometry: other tenants on the same point
// set, hot-swap rebuilds of one tenant, and reltol re-builds that keep the
// sampling parameters. Both cached structures are immutable after
// construction (they are the same objects Config.ReuseTree /
// Config.ReuseHierarchy already share), so a hit costs no copying.
//
// Entries are keyed by a fingerprint of everything Algorithm 1's output
// depends on: the point coordinate bytes (order included), dimension, leaf
// size, admissibility parameter, sampler identity (sample.Key, which folds
// in sampler seeds), and sample budget. The kernel is deliberately absent —
// sampling never evaluates it (paper §VI-A), which is what makes the cache
// valid across tenants with different kernels.
//
// The zero value is not usable; construct with NewBuildCache. All methods
// are safe for concurrent use.
type BuildCache struct {
	mu      sync.Mutex
	cap     int
	order   []uint64 // LRU order, most recently used last
	entries map[uint64]*buildCacheEntry
	hits    int64
	misses  int64
}

type buildCacheEntry struct {
	n, dim int
	tree   *tree.Tree
	hier   *sample.Hierarchy
}

// NewBuildCache returns a cache retaining up to entries geometries
// (entries <= 0 means DefaultBuildCacheEntries).
func NewBuildCache(entries int) *BuildCache {
	if entries <= 0 {
		entries = DefaultBuildCacheEntries
	}
	return &BuildCache{cap: entries, entries: make(map[uint64]*buildCacheEntry)}
}

// Stats reports cumulative hit/miss counts and the current entry count.
func (c *BuildCache) Stats() (hits, misses int64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, len(c.entries)
}

func (c *BuildCache) lookup(fp uint64, n, dim int) (*tree.Tree, *sample.Hierarchy, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[fp]
	if !ok || e.n != n || e.dim != dim {
		c.misses++
		return nil, nil, false
	}
	c.hits++
	c.touch(fp)
	return e.tree, e.hier, true
}

func (c *BuildCache) insert(fp uint64, n, dim int, tr *tree.Tree, h *sample.Hierarchy) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[fp]; ok {
		c.touch(fp)
		return
	}
	for len(c.entries) >= c.cap && len(c.order) > 0 {
		old := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, old)
	}
	c.entries[fp] = &buildCacheEntry{n: n, dim: dim, tree: tr, hier: h}
	c.order = append(c.order, fp)
}

// touch moves fp to the most-recently-used position. Callers hold mu.
func (c *BuildCache) touch(fp uint64) {
	for i, v := range c.order {
		if v == fp {
			c.order = append(append(c.order[:i:i], c.order[i+1:]...), fp)
			return
		}
	}
}

// constructionFingerprint hashes (FNV-1a, 64-bit) every input the
// tree+sampling half of a build depends on. Worker count is excluded: the
// sweep's output is deterministic regardless of parallelism.
func constructionFingerprint(pts *pointset.Points, cfg Config) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	word := func(v uint64) {
		for s := 0; s < 64; s += 8 {
			h ^= (v >> s) & 0xff
			h *= prime64
		}
	}
	word(uint64(pts.Dim))
	word(uint64(pts.Len()))
	for _, v := range pts.Coords {
		word(math.Float64bits(v))
	}
	word(uint64(cfg.LeafSize))
	word(math.Float64bits(cfg.Eta))
	word(uint64(cfg.SampleBudget))
	key := sample.Key(cfg.Sampler)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return h
}
