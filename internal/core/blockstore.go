package core

import (
	"sync"
	"sync/atomic"

	"h2ds/internal/mat"
)

// blockKey identifies a stored coupling or nearfield block by its node-id
// pair. Only keys with I <= J are stored (symmetric kernel); the transposed
// block is applied on the fly.
type blockKey struct{ I, J int }

// BlockStore is the paper's coupling-block container (§III-A): a sparse
// integer index ("the value of the element at (i,j) providing the linear
// index into a vector of dense matrices") plus the dense block slab. The
// matrix-free Apply interface means callers are oblivious to whether blocks
// were stored at construction (normal mode) or are absent (on-the-fly mode
// bypasses the store entirely).
//
// Concurrency: Put is safe for concurrent use during parallel construction,
// and all read methods (Get, Apply, ApplyBatch, Len, Bytes, MaxBlockBytes)
// take a read lock, so concurrent Put+Get during the build phase is safe.
// Once the store is complete, Freeze switches reads to a lock-free fast
// path; Put after Freeze panics.
type BlockStore struct {
	mu       sync.RWMutex
	frozen   atomic.Bool
	index    map[blockKey]int32
	blocks   []*mat.Dense
	directed bool
}

// NewBlockStore returns an empty triangular store for symmetric kernels:
// only pairs with i <= j may be stored and the (j, i) block is applied as
// the transpose.
func NewBlockStore() *BlockStore {
	return &BlockStore{index: make(map[blockKey]int32)}
}

// NewDirectedBlockStore returns an empty store for unsymmetric kernels:
// every directed pair is stored and applied verbatim.
func NewDirectedBlockStore() *BlockStore {
	return &BlockStore{index: make(map[blockKey]int32), directed: true}
}

// Put stores block b for the node pair (i, j); in triangular mode i <= j is
// required. It is safe for concurrent use during parallel construction and
// panics after Freeze.
func (s *BlockStore) Put(i, j int, b *mat.Dense) {
	if !s.directed && i > j {
		panic("core: BlockStore.Put requires i <= j (symmetric storage)")
	}
	if s.frozen.Load() {
		panic("core: BlockStore.Put after Freeze")
	}
	s.mu.Lock()
	s.index[blockKey{i, j}] = int32(len(s.blocks))
	s.blocks = append(s.blocks, b)
	s.mu.Unlock()
}

// Freeze marks construction as complete: subsequent reads skip locking
// entirely (the matvec hot path) and further Puts panic. All Puts must
// happen-before Freeze (the builder's parallel-for barrier guarantees this).
func (s *BlockStore) Freeze() { s.frozen.Store(true) }

// Get returns the block stored for exactly (i, j), or nil.
func (s *BlockStore) Get(i, j int) *mat.Dense {
	if !s.frozen.Load() {
		s.mu.RLock()
		defer s.mu.RUnlock()
	}
	k, ok := s.index[blockKey{i, j}]
	if !ok {
		return nil
	}
	return s.blocks[k]
}

// Apply accumulates g += B_{i,j} q. In triangular mode the (j, i) block is
// applied transposed when i > j; in directed mode only exact keys hit. It
// reports whether a block was found.
func (s *BlockStore) Apply(g []float64, i, j int, q []float64) bool {
	if s.directed || i <= j {
		b := s.Get(i, j)
		if b == nil {
			return false
		}
		mat.MulVecAdd(g, b, q)
		return true
	}
	b := s.Get(j, i)
	if b == nil {
		return false
	}
	mat.MulTVecAdd(g, b, q)
	return true
}

// ApplyBatch accumulates g += B_{i,j} q for a block of right-hand sides
// (q is rank_j x k, g is rank_i x k), with the same triangular-transpose
// convention as Apply. It reports whether a block was found.
func (s *BlockStore) ApplyBatch(g *mat.Dense, i, j int, q *mat.Dense) bool {
	if s.directed || i <= j {
		b := s.Get(i, j)
		if b == nil {
			return false
		}
		mat.MulAddTo(g, b, q)
		return true
	}
	b := s.Get(j, i)
	if b == nil {
		return false
	}
	mat.MulTAddTo(g, b, q)
	return true
}

// Len returns the number of stored blocks.
func (s *BlockStore) Len() int {
	if !s.frozen.Load() {
		s.mu.RLock()
		defer s.mu.RUnlock()
	}
	return len(s.blocks)
}

// Bytes returns the memory footprint: dense payloads plus index entries
// (key, value, and map bucket overhead estimated at 8 bytes per entry).
func (s *BlockStore) Bytes() int64 {
	if !s.frozen.Load() {
		s.mu.RLock()
		defer s.mu.RUnlock()
	}
	var b int64
	for _, blk := range s.blocks {
		b += int64(len(blk.Data))*8 + 24
	}
	b += int64(len(s.index)) * (16 + 4 + 8)
	return b
}

// MaxBlockBytes returns the size of the largest stored block, the quantity
// that bounds per-worker scratch in on-the-fly mode.
func (s *BlockStore) MaxBlockBytes() int64 {
	if !s.frozen.Load() {
		s.mu.RLock()
		defer s.mu.RUnlock()
	}
	var m int64
	for _, blk := range s.blocks {
		if b := int64(len(blk.Data)) * 8; b > m {
			m = b
		}
	}
	return m
}
