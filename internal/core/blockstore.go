package core

import (
	"sort"
	"sync"
	"sync/atomic"

	"h2ds/internal/mat"
)

// blockKey identifies a stored coupling or nearfield block by its node-id
// pair. Only keys with I <= J are stored (symmetric kernel); the transposed
// block is applied on the fly.
type blockKey struct{ I, J int }

// BlockStore is the paper's coupling-block container (§III-A): a sparse
// integer index ("the value of the element at (i,j) providing the linear
// index into a vector of dense matrices") plus the dense block slab. The
// matrix-free Apply interface means callers are oblivious to whether blocks
// were stored at construction (normal mode) or are absent (on-the-fly mode
// bypasses the store entirely).
//
// The store has two representations. During the build phase it is a
// map[blockKey] index over individually-allocated blocks — cheap to insert
// concurrently. Freeze compacts it into a frozen CSR layout: a per-node
// offset array (rowPtr) over sorted column ids (colIdx) resolving each
// (i, j) to a block header in one contiguous header array, with every block
// payload copied into a single []float64 slab in traversal (row-major
// (i, j)) order. The frozen read path therefore does no map lookups and no
// per-block pointer-chases, and the coupling sweep streams the slab in apply
// order; the map and the scattered build-phase blocks are released.
//
// Concurrency: Put is safe for concurrent use during parallel construction,
// and all read methods (Get, Apply, ApplyBatch, Len, Bytes, MaxBlockBytes)
// take a read lock, so concurrent Put+Get during the build phase is safe.
// Once the store is complete, Freeze switches reads to the lock-free compact
// fast path; Put after Freeze panics.
type BlockStore struct {
	mu       sync.RWMutex
	frozen   atomic.Bool
	index    map[blockKey]int32
	blocks   []*mat.Dense
	directed bool

	// Frozen CSR form (nil until Freeze). hdr[k]'s Data aliases slab; the
	// block for (i, j) is hdr[blockAt(i, j)].
	rowPtr []int32
	colIdx []int32
	hdr    []mat.Dense
	slab   []float64

	// Byte accounting memoized at Freeze time: Bytes and MaxBlockBytes are
	// O(blocks) walks before Freeze and O(1) after (MemoryStats reads them
	// repeatedly).
	frozenBytes  int64
	frozenMaxBlk int64
}

// NewBlockStore returns an empty triangular store for symmetric kernels:
// only pairs with i <= j may be stored and the (j, i) block is applied as
// the transpose.
func NewBlockStore() *BlockStore {
	return &BlockStore{index: make(map[blockKey]int32)}
}

// NewDirectedBlockStore returns an empty store for unsymmetric kernels:
// every directed pair is stored and applied verbatim.
func NewDirectedBlockStore() *BlockStore {
	return &BlockStore{index: make(map[blockKey]int32), directed: true}
}

// Put stores block b for the node pair (i, j); in triangular mode i <= j is
// required. It is safe for concurrent use during parallel construction and
// panics after Freeze.
func (s *BlockStore) Put(i, j int, b *mat.Dense) {
	if !s.directed && i > j {
		panic("core: BlockStore.Put requires i <= j (symmetric storage)")
	}
	if s.frozen.Load() {
		panic("core: BlockStore.Put after Freeze")
	}
	s.mu.Lock()
	s.index[blockKey{i, j}] = int32(len(s.blocks))
	s.blocks = append(s.blocks, b)
	s.mu.Unlock()
}

// Freeze marks construction as complete and compacts the store into its
// frozen CSR form: subsequent reads are lock-free, map-free, and stream one
// contiguous payload slab; further Puts panic. All Puts must happen-before
// Freeze (the builder's parallel-for barrier guarantees this). Stores laid
// out by Preallocate are already in CSR form — Freeze then only flips the
// frozen bit. Freeze is idempotent.
func (s *BlockStore) Freeze() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.frozen.Load() {
		return
	}
	if s.rowPtr == nil {
		s.compact()
	}
	s.frozen.Store(true)
}

// PutSpec describes one block of a Preallocate layout: its store key and
// payload shape.
type PutSpec struct {
	I, J       int
	Rows, Cols int
}

// Preallocate lays out the frozen CSR form for exactly the given blocks and
// returns one slab-backed view per spec, parallel to specs: callers
// assemble each payload directly into its view (the views are
// write-disjoint, so parallel assembly is safe) and then call Freeze, which
// only flips the frozen bit. This skips the build-phase map and the
// Freeze-time compact copy entirely — the accelerated normal-mode build
// path. The resulting layout is identical to Put+Freeze: blocks sorted by
// (i, j) in one contiguous slab.
//
// Must be called once, on an empty store; Put may not be mixed with it.
func (s *BlockStore) Preallocate(specs []PutSpec) []*mat.Dense {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.rowPtr != nil || len(s.blocks) > 0 {
		panic("core: BlockStore.Preallocate on a non-empty store")
	}
	ord := make([]int, len(specs))
	for i := range ord {
		ord[i] = i
	}
	sort.Slice(ord, func(a, b int) bool {
		sa, sb := specs[ord[a]], specs[ord[b]]
		if sa.I != sb.I {
			return sa.I < sb.I
		}
		return sa.J < sb.J
	})
	maxI := -1
	var slabLen, maxBlk int64
	for _, sp := range specs {
		if !s.directed && sp.I > sp.J {
			panic("core: BlockStore.Preallocate requires i <= j (symmetric storage)")
		}
		if sp.I > maxI {
			maxI = sp.I
		}
		sz := int64(sp.Rows) * int64(sp.Cols)
		slabLen += sz
		if bb := sz * 8; bb > maxBlk {
			maxBlk = bb
		}
	}

	s.rowPtr = make([]int32, maxI+2)
	s.colIdx = make([]int32, len(specs))
	s.hdr = make([]mat.Dense, len(specs))
	s.slab = make([]float64, slabLen)
	out := make([]*mat.Dense, len(specs))
	var off int64
	for k, oi := range ord {
		sp := specs[oi]
		sz := int64(sp.Rows) * int64(sp.Cols)
		s.hdr[k] = mat.Dense{Rows: sp.Rows, Cols: sp.Cols, Data: s.slab[off : off+sz]}
		s.colIdx[k] = int32(sp.J)
		s.rowPtr[sp.I+1]++
		out[oi] = &s.hdr[k]
		off += sz
	}
	for i := 1; i < len(s.rowPtr); i++ {
		s.rowPtr[i] += s.rowPtr[i-1]
	}
	s.frozenBytes = slabLen*8 + int64(len(s.hdr))*40 + int64(len(s.rowPtr)+len(s.colIdx))*4
	s.frozenMaxBlk = maxBlk
	s.index = nil
	s.blocks = nil
	return out
}

// compact builds the CSR index and payload slab from the build-phase map and
// releases the map-backed representation. Caller holds mu.
func (s *BlockStore) compact() {
	nBlocks := len(s.blocks)
	keys := make([]blockKey, 0, nBlocks)
	maxI := -1
	var slabLen int64
	var maxBlk int64
	for k := range s.index {
		keys = append(keys, k)
		if k.I > maxI {
			maxI = k.I
		}
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].I != keys[b].I {
			return keys[a].I < keys[b].I
		}
		return keys[a].J < keys[b].J
	})
	for _, k := range keys {
		b := s.blocks[s.index[k]]
		sz := int64(len(b.Data))
		slabLen += sz
		if bb := sz * 8; bb > maxBlk {
			maxBlk = bb
		}
	}

	s.rowPtr = make([]int32, maxI+2)
	s.colIdx = make([]int32, len(keys))
	s.hdr = make([]mat.Dense, len(keys))
	s.slab = make([]float64, slabLen)
	var off int64
	for k, key := range keys {
		b := s.blocks[s.index[key]]
		seg := s.slab[off : off+int64(len(b.Data))]
		copy(seg, b.Data)
		s.hdr[k] = mat.Dense{Rows: b.Rows, Cols: b.Cols, Data: seg}
		s.colIdx[k] = int32(key.J)
		s.rowPtr[key.I+1]++
		off += int64(len(b.Data))
	}
	for i := 1; i < len(s.rowPtr); i++ {
		s.rowPtr[i] += s.rowPtr[i-1]
	}

	// Memoized accounting: slab payload, header array, and index arrays.
	s.frozenBytes = slabLen*8 + int64(len(s.hdr))*40 + int64(len(s.rowPtr)+len(s.colIdx))*4
	s.frozenMaxBlk = maxBlk

	// Release the build-phase representation (the scattered blocks and the
	// map are the last references to the original payload allocations).
	s.index = nil
	s.blocks = nil
}

// blockAt resolves (i, j) in the frozen CSR index to a header position, or
// -1. Rows are interaction/nearfield lists — a few dozen entries — so a
// branch-light binary search beats hashing without any pointer-chasing.
func (s *BlockStore) blockAt(i, j int) int {
	if i < 0 || i+1 >= len(s.rowPtr) {
		return -1
	}
	lo, hi := int(s.rowPtr[i]), int(s.rowPtr[i+1])
	jj := int32(j)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.colIdx[mid] < jj {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < int(s.rowPtr[i+1]) && s.colIdx[lo] == jj {
		return lo
	}
	return -1
}

// Get returns the block stored for exactly (i, j), or nil. After Freeze the
// returned header aliases the compact slab.
func (s *BlockStore) Get(i, j int) *mat.Dense {
	if s.frozen.Load() {
		if k := s.blockAt(i, j); k >= 0 {
			return &s.hdr[k]
		}
		// Frozen without a CSR index only happens for stores frozen through
		// the test-only freezeNoCompact path; fall through to the map.
		if s.index == nil {
			return nil
		}
		k, ok := s.index[blockKey{i, j}]
		if !ok {
			return nil
		}
		return s.blocks[k]
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	k, ok := s.index[blockKey{i, j}]
	if !ok {
		return nil
	}
	return s.blocks[k]
}

// Apply accumulates g += B_{i,j} q. In triangular mode the (j, i) block is
// applied transposed when i > j; in directed mode only exact keys hit. It
// reports whether a block was found.
func (s *BlockStore) Apply(g []float64, i, j int, q []float64) bool {
	if s.directed || i <= j {
		b := s.Get(i, j)
		if b == nil {
			return false
		}
		mat.MulVecAdd(g, b, q)
		return true
	}
	b := s.Get(j, i)
	if b == nil {
		return false
	}
	mat.MulTVecAdd(g, b, q)
	return true
}

// ApplyBatch accumulates g += B_{i,j} q for a block of right-hand sides
// (q is rank_j x k, g is rank_i x k), with the same triangular-transpose
// convention as Apply. It reports whether a block was found.
func (s *BlockStore) ApplyBatch(g *mat.Dense, i, j int, q *mat.Dense) bool {
	if s.directed || i <= j {
		b := s.Get(i, j)
		if b == nil {
			return false
		}
		mat.MulAddTo(g, b, q)
		return true
	}
	b := s.Get(j, i)
	if b == nil {
		return false
	}
	mat.MulTAddTo(g, b, q)
	return true
}

// applyOTFOrder accumulates g += B_{i,j} q using the summation order of the
// on-the-fly path, which always evaluates the (i, j) orientation and applies
// it forward with dot-grouped row products. For a stored (i, j) block that is
// plain MulVecAdd; for a triangular-transpose hit the stored (j, i) block is
// B_{i,j}ᵀ element-for-element (symmetric kernel), so MulTVecAddDot — a
// column walk with the same dot grouping — reproduces the on-the-fly result
// bitwise. It reports whether a block was found.
func (s *BlockStore) applyOTFOrder(g []float64, i, j int, q []float64) bool {
	if s.directed || i <= j {
		b := s.Get(i, j)
		if b == nil {
			return false
		}
		mat.MulVecAdd(g, b, q)
		return true
	}
	b := s.Get(j, i)
	if b == nil {
		return false
	}
	mat.MulTVecAddDot(g, b, q)
	return true
}

// applyTransposeOTFOrder accumulates g += B_{j,i}ᵀ q in the on-the-fly
// transpose order, which evaluates the (j, i) orientation and applies it with
// MulTVecAdd's sequential, zero-skipping accumulation. A stored (j, i) block
// gets exactly that; a triangular hit on (i, j) (= B_{j,i}ᵀ for symmetric
// kernels) is applied forward with the matching sequential order
// (MulVecAddSeq). It reports whether a block was found.
func (s *BlockStore) applyTransposeOTFOrder(g []float64, i, j int, q []float64) bool {
	if s.directed || j <= i {
		b := s.Get(j, i)
		if b == nil {
			return false
		}
		mat.MulTVecAdd(g, b, q)
		return true
	}
	b := s.Get(i, j)
	if b == nil {
		return false
	}
	mat.MulVecAddSeq(g, b, q)
	return true
}

// applyBatchOTFOrder is the multi-RHS analogue of applyOTFOrder: the
// on-the-fly batch path evaluates the (i, j) orientation and runs MulAddTo
// (per-element dot-grouped column strides), so triangular-transpose hits use
// MulTAddToDot to preserve that order over the stored (j, i) payload. It
// reports whether a block was found.
func (s *BlockStore) applyBatchOTFOrder(g *mat.Dense, i, j int, q *mat.Dense) bool {
	if s.directed || i <= j {
		b := s.Get(i, j)
		if b == nil {
			return false
		}
		mat.MulAddTo(g, b, q)
		return true
	}
	b := s.Get(j, i)
	if b == nil {
		return false
	}
	mat.MulTAddToDot(g, b, q)
	return true
}

// Len returns the number of stored blocks.
func (s *BlockStore) Len() int {
	if s.frozen.Load() {
		if s.rowPtr != nil {
			return len(s.hdr)
		}
		return len(s.blocks)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.blocks)
}

// Bytes returns the memory footprint. Frozen stores answer from the value
// memoized at Freeze time (slab payload + header array + CSR index);
// build-phase stores walk the blocks and charge dense payloads plus index
// entries (key, value, and map bucket overhead estimated at 8 bytes per
// entry).
func (s *BlockStore) Bytes() int64 {
	if s.frozen.Load() && s.rowPtr != nil {
		return s.frozenBytes
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	var b int64
	for _, blk := range s.blocks {
		b += int64(len(blk.Data))*8 + 24
	}
	b += int64(len(s.index)) * (16 + 4 + 8)
	return b
}

// MaxBlockBytes returns the size of the largest stored block, the quantity
// that bounds per-worker scratch in on-the-fly mode. Frozen stores answer
// from the memoized Freeze-time value.
func (s *BlockStore) MaxBlockBytes() int64 {
	if s.frozen.Load() && s.rowPtr != nil {
		return s.frozenMaxBlk
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	var m int64
	for _, blk := range s.blocks {
		if b := int64(len(blk.Data)) * 8; b > m {
			m = b
		}
	}
	return m
}

// freezeNoCompact freezes the store while keeping the build-phase map
// representation — the seed read path. It exists for the equivalence tests
// that check the compacted layout is bit-identical to the map-backed one.
func (s *BlockStore) freezeNoCompact() { s.frozen.Store(true) }

// uncompacted returns a map-backed clone of a frozen compacted store, frozen
// without compaction — the seed (fork-join era) read path over identical
// payload values. Test helper for bitwise-equivalence checks.
func (s *BlockStore) uncompacted() *BlockStore {
	if s.rowPtr == nil {
		panic("core: uncompacted needs a compacted store")
	}
	c := &BlockStore{index: make(map[blockKey]int32), directed: s.directed}
	for i := 0; i+1 < len(s.rowPtr); i++ {
		for k := s.rowPtr[i]; k < s.rowPtr[i+1]; k++ {
			c.Put(i, int(s.colIdx[k]), s.hdr[k].Clone())
		}
	}
	c.freezeNoCompact()
	return c
}
