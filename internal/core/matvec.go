package core

import (
	"fmt"

	"h2ds/internal/kernel"
	"h2ds/internal/mat"
	"h2ds/internal/par"
)

// Apply computes y = Â b for a vector b in the caller's original point
// ordering and returns y in the same ordering.
func (m *Matrix) Apply(b []float64) []float64 {
	y := make([]float64, m.N)
	m.ApplyTo(y, b)
	return y
}

// ApplyTo computes y = Â b into y (original point ordering). y and b must
// both have length N and must not alias.
func (m *Matrix) ApplyTo(y, b []float64) {
	if len(y) != m.N || len(b) != m.N {
		panic(fmt.Sprintf("core: apply length mismatch y=%d b=%d n=%d", len(y), len(b), m.N))
	}
	bp := make([]float64, m.N)
	yp := make([]float64, m.N)
	m.Tree.PermuteVec(bp, b)
	m.ApplyPermuted(yp, bp)
	m.Tree.UnpermuteVec(y, yp)
}

// ApplyPermuted runs Algorithm 2 on vectors in the tree's permuted point
// ordering. This is the core five-sweep product:
//
//  1. leaf horizontal sweep    q_i = U_iᵀ b_i
//  2. bottom-to-top sweep      q_i = Σ_c R_cᵀ q_c
//  3. horizontal coupling      g_i = Σ_{j ∈ IL(i)} B_{i,j} q_j
//  4. top-to-bottom sweep      g_c += R_c g_i
//  5. leaf horizontal sweep    y_i = U_i g_i + Σ_{j ∈ near(i)} K(X_i,X_j) b_j
//
// Nodes on a level are processed in parallel; each output slot is written
// by exactly one worker in a fixed order, so the result is independent of
// the worker count.
func (m *Matrix) ApplyPermuted(yp, bp []float64) {
	if len(yp) != m.N || len(bp) != m.N {
		panic(fmt.Sprintf("core: applyPermuted length mismatch y=%d b=%d n=%d", len(yp), len(bp), m.N))
	}
	workers := par.Resolve(m.Cfg.Workers)
	nodes := m.Tree.Nodes
	q := make([][]float64, len(nodes))
	g := make([][]float64, len(nodes))

	// Stages 1+2: upward sweep, level by level from the deepest, through
	// the column-side generators (V, W; identical to U, R for symmetric
	// kernels). Leaves project their input slice; internal nodes combine
	// children through the stacked transfer blocks.
	for l := m.Tree.Depth() - 1; l >= 0; l-- {
		level := m.Tree.Levels[l]
		par.For(workers, len(level), func(k int) {
			id := level[k]
			nd := &nodes[id]
			qi := make([]float64, m.colRank(id))
			if nd.IsLeaf {
				if m.colRank(id) > 0 {
					mat.MulTVecAdd(qi, m.colBasis(id), bp[nd.Start:nd.End])
				}
			} else if m.colRank(id) > 0 {
				off := 0
				for _, c := range nd.Children {
					rc := m.colRank(c)
					if rc > 0 {
						mat.MulTVecAddRange(qi, m.colTrans(id), off, off+rc, q[c])
					}
					off += rc
				}
			}
			q[id] = qi
		})
	}

	// Stage 3: horizontal coupling sweep over every node with an
	// interaction list. In normal mode the stored triangle is applied; in
	// on-the-fly mode each worker assembles B_{i,j} into its scratch tile,
	// applies it, and moves on (concurrent memory = workers x tile).
	scratch := make([]*mat.Dense, workers)
	for w := range scratch {
		scratch[w] = mat.NewDense(0, 0)
	}
	par.ForWorker(workers, len(nodes), func(w, id int) {
		gi := make([]float64, m.ranks[id])
		g[id] = gi
		if m.ranks[id] == 0 {
			return
		}
		for _, j := range nodes[id].Interaction {
			if m.colRank(j) == 0 {
				continue
			}
			if m.Cfg.Mode == Normal {
				m.coup.Apply(gi, id, j, q[j])
				continue
			}
			tile := kernel.Assemble(scratch[w], m.Kern, m.skelPts[id], m.skel[id], m.skelPts[j], m.colSkeleton(j))
			mat.MulVecAdd(gi, tile, q[j])
		}
	})

	// Stage 4: downward sweep propagating farfield contributions to
	// children. Parents at level l write only their own children's g, so
	// each level is embarrassingly parallel.
	for l := 0; l < m.Tree.Depth(); l++ {
		level := m.Tree.Levels[l]
		par.For(workers, len(level), func(k int) {
			id := level[k]
			nd := &nodes[id]
			if nd.IsLeaf || m.ranks[id] == 0 {
				return
			}
			off := 0
			for _, c := range nd.Children {
				rc := m.ranks[c]
				if rc > 0 {
					mat.MulVecAddRange(g[c], m.trans[id], off, off+rc, g[id])
				}
				off += rc
			}
		})
	}

	// Stage 5: leaf horizontal sweep — expand the farfield result through
	// the leaf basis and add the dense nearfield interactions.
	par.ForWorker(workers, len(m.Tree.Leaves), func(w, k int) {
		id := m.Tree.Leaves[k]
		nd := &nodes[id]
		yi := yp[nd.Start:nd.End]
		for p := range yi {
			yi[p] = 0
		}
		if m.ranks[id] > 0 {
			mat.MulVecAdd(yi, m.u[id], g[id])
		}
		for _, j := range nd.Near {
			nj := &nodes[j]
			bj := bp[nj.Start:nj.End]
			if m.Cfg.Mode == Normal {
				m.near.Apply(yi, id, j, bj)
				continue
			}
			tile := kernel.Assemble(scratch[w], m.Kern, m.Tree.Points, m.leafRange(id), m.Tree.Points, m.leafRange(j))
			mat.MulVecAdd(yi, tile, bj)
		}
	})
}
