package core

import (
	"fmt"
)

// Apply computes y = Â b for a vector b in the caller's original point
// ordering and returns y in the same ordering.
func (m *Matrix) Apply(b []float64) []float64 {
	y := make([]float64, m.N)
	m.ApplyTo(y, b)
	return y
}

// ApplyTo computes y = Â b into y (original point ordering). y and b must
// both have length N; they may alias (the product round-trips through
// internal permutation buffers, so ApplyTo(v, v) is well defined). The
// workspace comes from an internal pool, so repeated calls are
// allocation-free in steady state; callers that want explicit control over
// buffer ownership use NewWorkspace + ApplyToWith.
func (m *Matrix) ApplyTo(y, b []float64) {
	ws := m.getWorkspace()
	m.ApplyToWith(ws, y, b)
	m.putWorkspace(ws)
}

// ApplyPermuted runs Algorithm 2 on vectors in the tree's permuted point
// ordering. yp and bp must not alias (the leaf sweep reads bp's nearfield
// neighbours while writing yp). This is the core five-sweep product:
//
//  1. leaf horizontal sweep    q_i = U_iᵀ b_i
//  2. bottom-to-top sweep      q_i = Σ_c R_cᵀ q_c
//  3. horizontal coupling      g_i = Σ_{j ∈ IL(i)} B_{i,j} q_j
//  4. top-to-bottom sweep      g_c += R_c g_i
//  5. leaf horizontal sweep    y_i = U_i g_i + Σ_{j ∈ near(i)} K(X_i,X_j) b_j
//
// Nodes on a level are processed in parallel; each output slot is written
// by exactly one worker in a fixed order, so the result is independent of
// the worker count.
func (m *Matrix) ApplyPermuted(yp, bp []float64) {
	if len(yp) != m.N || len(bp) != m.N {
		panic(fmt.Sprintf("core: applyPermuted length mismatch y=%d b=%d n=%d", len(yp), len(bp), m.N))
	}
	ws := m.getWorkspace()
	m.applyPermutedWith(ws, yp, bp)
	m.putWorkspace(ws)
}
