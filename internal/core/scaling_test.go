package core

import (
	"testing"

	"h2ds/internal/kernel"
	"h2ds/internal/pointset"
)

// TestLinearComplexityScaling checks the paper's central complexity claim
// structurally (no timers): as n doubles, the H² representation's memory
// and block counts must grow close to linearly — far below the quadratic
// growth of the dense matrix. Deterministic accounting makes this a stable
// assertion.
func TestLinearComplexityScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	type point struct {
		n      int
		mem    int64
		blocks int
	}
	var pointsMeasured []point
	for _, n := range []int{4000, 8000, 16000} {
		pts := pointset.Cube(n, 3, 300)
		m, err := Build(pts, kernel.Coulomb{}, Config{Kind: DataDriven, Mode: OnTheFly, Tol: 1e-6, LeafSize: 100})
		if err != nil {
			t.Fatal(err)
		}
		st := m.Stats()
		pointsMeasured = append(pointsMeasured, point{
			n:      n,
			mem:    m.Memory().Total(),
			blocks: st.InteractionBlocks + st.NearBlocks,
		})
	}
	for i := 1; i < len(pointsMeasured); i++ {
		prev, cur := pointsMeasured[i-1], pointsMeasured[i]
		memRatio := float64(cur.mem) / float64(prev.mem)
		blockRatio := float64(cur.blocks) / float64(prev.blocks)
		// Doubling n must grow memory and blocks by clearly less than 4x
		// (quadratic); near-linear growth with log-factor slack is < 3.
		if memRatio > 3 {
			t.Fatalf("memory grew %gx when n doubled (%d -> %d): not near-linear", memRatio, prev.n, cur.n)
		}
		if blockRatio > 3.5 {
			t.Fatalf("block count grew %gx when n doubled: not near-linear", blockRatio)
		}
	}
	// And the absolute constant: far below dense storage at the largest n.
	last := pointsMeasured[len(pointsMeasured)-1]
	dense := int64(last.n) * int64(last.n) * 8
	if last.mem*10 > dense {
		t.Fatalf("H² memory %d within 10x of dense %d at n=%d", last.mem, dense, last.n)
	}
}

// TestRankSaturationAcrossN checks the nested-basis premise: per-node ranks
// are set by the kernel and tolerance, not by n, so the maximum rank must
// stay essentially flat as the problem grows.
func TestRankSaturationAcrossN(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var ranks []int
	for _, n := range []int{4000, 16000} {
		pts := pointset.Cube(n, 3, 301)
		m, err := Build(pts, kernel.Coulomb{}, Config{Kind: DataDriven, Mode: OnTheFly, Tol: 1e-6, LeafSize: 100})
		if err != nil {
			t.Fatal(err)
		}
		ranks = append(ranks, m.Stats().MaxRank)
	}
	if float64(ranks[1]) > 1.6*float64(ranks[0])+5 {
		t.Fatalf("max rank grew from %d to %d when n quadrupled; ranks should saturate", ranks[0], ranks[1])
	}
}
