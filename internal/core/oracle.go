package core

import (
	"fmt"

	"h2ds/internal/oracle"
)

// BuildOracle constructs an H² matrix from entry access alone — the
// geometry-oblivious path (GOFMM, arXiv:1707.00164). The oracle's
// entry-induced distances are embedded into a low-dimensional point set
// (oracle.Embed), and the ordinary data-driven build runs on those points
// with an oracle-backed kernel: tree partition, anchor-net samples, row-ID
// skeletons, and the reltol a-posteriori certificate all work unchanged.
//
// Oracle builds are stored-only: entries are data, not code, so the
// on-the-fly and hybrid memory modes (which re-evaluate blocks at apply
// time, potentially after a save/load cycle that cannot ship the oracle)
// are rejected with an error, as is the interpolation basis (Chebyshev
// grids sit at coordinates the oracle cannot answer). cfg.Kind and cfg.Mode
// zero values are exactly the supported DataDriven/Normal pair.
func BuildOracle(src oracle.Source, cfg Config) (*Matrix, error) {
	if src == nil || src.N() == 0 {
		return nil, fmt.Errorf("core: empty oracle source")
	}
	if cfg.Mode != Normal {
		return nil, fmt.Errorf("core: oracle builds are stored-only: mode %v re-evaluates blocks at apply time, which needs a kernel formula; use Normal", cfg.Mode)
	}
	if cfg.Kind != DataDriven {
		return nil, fmt.Errorf("core: oracle builds require the data-driven basis: %v evaluates the kernel at grid coordinates an entry oracle cannot answer", cfg.Kind)
	}
	pts := oracle.Embed(src)
	return Build(pts, oracle.NewEntryKernel(src), cfg)
}

// storedOnlyKernel is the placeholder installed when a kernel-less stream is
// loaded: the oracle that produced the entries is gone, so only the stored
// representation (generators + serialized blocks) can be applied. Any
// attempt to evaluate a fresh entry is a programming error and panics with
// a message naming the cause.
type storedOnlyKernel struct{ sym bool }

func (storedOnlyKernel) EvalPair(_, _ []float64) float64 {
	panic("core: kernel-less matrix: entries came from an oracle consumed at build time; only the stored representation can be applied")
}

func (k storedOnlyKernel) Symmetric() bool { return k.sym }
func (storedOnlyKernel) Name() string      { return "" }

// KernelLess reports whether the matrix was built through an entry oracle
// (no named kernel): its serialized form carries the stored blocks verbatim
// and storage-mode downgrades are impossible.
func (m *Matrix) KernelLess() bool { return m.Kern.Name() == "" }

// HasKernel reports whether the matrix can evaluate fresh kernel entries —
// false only for kernel-less matrices loaded from a stream, whose oracle is
// gone. Error estimation against exact rows (RelErrorVs, EstimateRelError)
// requires it.
func (m *Matrix) HasKernel() bool {
	_, stored := m.Kern.(storedOnlyKernel)
	return !stored
}
