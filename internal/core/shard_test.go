package core

import (
	"testing"

	"h2ds/internal/kernel"
	"h2ds/internal/mat"
	"h2ds/internal/pointset"
)

// TestShardPlanPartitionsTree checks the structural invariants every
// participant relies on: the shard node sets plus the coordinator set
// partition the tree, shard roots cover all points exactly once, and the
// same parameters derive the same plan twice.
func TestShardPlanPartitionsTree(t *testing.T) {
	pts := pointset.Cube(2000, 3, 90)
	m, err := Build(pts, kernel.Coulomb{}, Config{Kind: DataDriven, Mode: Normal, Tol: 1e-5, LeafSize: 60})
	if err != nil {
		t.Fatal(err)
	}
	for _, nshards := range []int{1, 2, 3, 5} {
		p, err := m.PlanShards(nshards, 0)
		if err != nil {
			t.Fatal(err)
		}
		if p.NShards != len(p.Nodes) || p.NShards != len(p.Roots) {
			t.Fatalf("nshards=%d: inconsistent plan sizes %d/%d/%d", nshards, p.NShards, len(p.Nodes), len(p.Roots))
		}
		seen := make([]int, len(m.Tree.Nodes))
		for _, nodes := range p.Nodes {
			for _, id := range nodes {
				seen[id]++
			}
		}
		for _, id := range p.Coord {
			seen[id]++
		}
		for id, c := range seen {
			if c != 1 {
				t.Fatalf("nshards=%d: node %d covered %d times", nshards, id, c)
			}
		}
		points := 0
		for _, roots := range p.Roots {
			for _, id := range roots {
				points += m.Tree.Nodes[id].Size()
			}
		}
		if points != m.N {
			t.Fatalf("nshards=%d: roots own %d points want %d", nshards, points, m.N)
		}
		q, err := m.PlanShards(nshards, 0)
		if err != nil {
			t.Fatal(err)
		}
		for s := range p.Nodes {
			if len(q.Nodes[s]) != len(p.Nodes[s]) {
				t.Fatalf("nshards=%d: non-deterministic plan", nshards)
			}
			for i := range p.Nodes[s] {
				if q.Nodes[s][i] != p.Nodes[s][i] {
					t.Fatalf("nshards=%d: non-deterministic plan", nshards)
				}
			}
		}
	}
}

// TestShardedApplyBitwiseEqual is the distributed-correctness cornerstone:
// scatter/gather through ApplyShard + ApplyGather must reproduce the
// single-node product BITWISE for symmetric and unsymmetric kernels, in
// plain, transpose, and batch form, at several shard counts — including the
// coordinator's local-recompute fallback for a missing shard.
func TestShardedApplyBitwiseEqual(t *testing.T) {
	pts := pointset.Cube(1800, 3, 91)
	n := pts.Len()
	b := randVec(n, 92)
	kerns := []kernel.Pairwise{kernel.Coulomb{}, drift3()}
	for _, k := range kerns {
		for _, mode := range []MemoryMode{Normal, OnTheFly} {
			m, err := Build(pts, k, Config{Kind: DataDriven, Mode: mode, Tol: 1e-6, LeafSize: 50, Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			want := m.Apply(b)
			wantT := m.ApplyTranspose(b)
			B := mat.NewDense(n, 3)
			for j := 0; j < 3; j++ {
				col := randVec(n, 93+int64(j))
				for i := 0; i < n; i++ {
					B.Row(i)[j] = col[i]
				}
			}
			wantB := m.ApplyBatch(B)

			for _, nshards := range []int{1, 2, 4} {
				p, err := m.PlanShards(nshards, 0)
				if err != nil {
					t.Fatal(err)
				}
				parts := make([][]float64, p.NShards)
				partsT := make([][]float64, p.NShards)
				partsB := make([][]float64, p.NShards)
				for s := 0; s < p.NShards; s++ {
					if parts[s], err = m.ApplyShard(p, s, b, false); err != nil {
						t.Fatal(err)
					}
					if partsT[s], err = m.ApplyShard(p, s, b, true); err != nil {
						t.Fatal(err)
					}
					if partsB[s], err = m.ApplyBatchShard(p, s, B); err != nil {
						t.Fatal(err)
					}
				}
				got, err := m.ApplyGather(p, b, parts, false)
				if err != nil {
					t.Fatal(err)
				}
				gotT, err := m.ApplyGather(p, b, partsT, true)
				if err != nil {
					t.Fatal(err)
				}
				gotB := mat.NewDense(0, 0)
				if err := m.ApplyBatchGather(p, gotB, B, partsB); err != nil {
					t.Fatal(err)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s/%v nshards=%d: apply differs at %d: %g != %g", k.Name(), mode, nshards, i, got[i], want[i])
					}
					if gotT[i] != wantT[i] {
						t.Fatalf("%s/%v nshards=%d: transpose differs at %d: %g != %g", k.Name(), mode, nshards, i, gotT[i], wantT[i])
					}
				}
				for i := range wantB.Data {
					if gotB.Data[i] != wantB.Data[i] {
						t.Fatalf("%s/%v nshards=%d: batch differs at flat %d", k.Name(), mode, nshards, i)
					}
				}

				// Shard-failure fallback: dropping one partial must still be
				// bitwise-exact (the coordinator recomputes it locally).
				if p.NShards > 1 {
					parts[0] = nil
					got, err = m.ApplyGather(p, b, parts, false)
					if err != nil {
						t.Fatal(err)
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("%s/%v nshards=%d: fallback apply differs at %d", k.Name(), mode, nshards, i)
						}
					}
				}
			}
		}
	}
}

// TestShardPartialValidation checks the defensive paths: bad shard index,
// wrong input length, wrong partial length.
func TestShardPartialValidation(t *testing.T) {
	pts := pointset.Cube(900, 3, 94)
	m, err := Build(pts, kernel.Coulomb{}, Config{Kind: DataDriven, Mode: Normal, Tol: 1e-5, LeafSize: 50})
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.PlanShards(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	b := randVec(m.N, 95)
	if _, err := m.ApplyShard(p, p.NShards, b, false); err == nil {
		t.Fatal("out-of-range shard index accepted")
	}
	if _, err := m.ApplyShard(p, 0, b[:10], false); err == nil {
		t.Fatal("short input accepted")
	}
	parts := make([][]float64, p.NShards)
	parts[0] = make([]float64, 1)
	if _, err := m.ApplyGather(p, b, parts, false); err == nil {
		t.Fatal("wrong partial length accepted")
	}
	if _, err := m.ApplyGather(p, b, parts[:1], false); err == nil {
		t.Fatal("wrong partial count accepted")
	}
}

// TestTreeCutInvariants validates the subtree-cut helper directly: every
// point is owned by exactly one cut node at every level.
func TestTreeCutInvariants(t *testing.T) {
	pts := pointset.Cube(1200, 3, 96)
	m, err := Build(pts, kernel.Coulomb{}, Config{Kind: DataDriven, Mode: Normal, Tol: 1e-4, LeafSize: 40})
	if err != nil {
		t.Fatal(err)
	}
	for l := 0; l < m.Tree.Depth(); l++ {
		cut := m.Tree.Cut(l)
		covered := 0
		prevEnd := 0
		for _, id := range cut {
			nd := &m.Tree.Nodes[id]
			if nd.Start != prevEnd {
				t.Fatalf("level %d: cut not contiguous at node %d (start %d, want %d)", l, id, nd.Start, prevEnd)
			}
			prevEnd = nd.End
			covered += nd.Size()
		}
		if covered != m.N {
			t.Fatalf("level %d: cut covers %d points want %d", l, covered, m.N)
		}
	}
}
