package core

import (
	"fmt"

	"h2ds/internal/par"
)

// MemoryStats is the deterministic byte accounting of an H² matrix, broken
// down by generator class as in the paper's Table I and memory figures.
// All counts are exact payload sizes (8 bytes per float64 / index) plus
// small fixed per-object overheads; they deliberately exclude Go runtime
// allocator slack so that runs are reproducible.
type MemoryStats struct {
	Basis     int64 // leaf U matrices
	Transfer  int64 // stacked R matrices
	Coupling  int64 // stored B_{i,j} blocks (zero in on-the-fly mode)
	Nearfield int64 // stored dense leaf blocks (zero in on-the-fly mode)
	Skeletons int64 // skeleton index sets + sampling surrogates
	Grids     int64 // interpolation grid point storage
	Tree      int64 // tree metadata + permuted coordinates

	// Workspace is the payload of one pooled matvec workspace (two N-length
	// permutation buffers plus the per-node q/g rank slabs; see
	// core.Workspace). The pool holds one workspace per in-flight apply, so
	// concurrent callers multiply this figure by their concurrency.
	Workspace int64

	// ScratchPerWorker bounds the per-worker tile buffer used by the
	// on-the-fly mode: the largest coupling or nearfield block. Concurrent
	// usage is Workers x ScratchPerWorker (paper Fig 7c).
	ScratchPerWorker int64
	Workers          int
}

// Total returns the resident bytes: stored generators plus one pooled
// workspace plus, in on-the-fly mode, the concurrent scratch tiles.
func (s MemoryStats) Total() int64 {
	t := s.Basis + s.Transfer + s.Coupling + s.Nearfield + s.Skeletons + s.Grids + s.Tree + s.Workspace
	t += int64(s.Workers) * s.ScratchPerWorker
	return t
}

// KiB returns the total in KiB, the unit of the paper's Table I.
func (s MemoryStats) KiB() float64 { return float64(s.Total()) / 1024 }

// String renders a short human-readable breakdown.
func (s MemoryStats) String() string {
	return fmt.Sprintf("total %.2f KiB (basis %.2f, transfer %.2f, coupling %.2f, nearfield %.2f, skeletons %.2f, grids %.2f, tree %.2f, workspace %.2f, scratch %dx%.2f)",
		s.KiB(), kib(s.Basis), kib(s.Transfer), kib(s.Coupling), kib(s.Nearfield),
		kib(s.Skeletons), kib(s.Grids), kib(s.Tree), kib(s.Workspace), s.Workers, kib(s.ScratchPerWorker))
}

func kib(b int64) float64 { return float64(b) / 1024 }

// Memory computes the matrix's memory statistics.
func (m *Matrix) Memory() MemoryStats {
	var s MemoryStats
	s.Workers = par.Resolve(m.Cfg.Workers)
	for id := range m.Tree.Nodes {
		if u := m.u[id]; u != nil {
			s.Basis += int64(len(u.Data))*8 + 24
		}
		if t := m.trans[id]; t != nil {
			s.Transfer += int64(len(t.Data))*8 + 24
		}
		s.Skeletons += int64(len(m.skel[id])) * 8
		if !m.sharedBasis {
			if v := m.v[id]; v != nil {
				s.Basis += int64(len(v.Data))*8 + 24
			}
			if w := m.wTrans[id]; w != nil {
				s.Transfer += int64(len(w.Data))*8 + 24
			}
			s.Skeletons += int64(len(m.colSkel[id])) * 8
		}
		if m.Cfg.Kind == Interpolation && m.skelPts[id] != nil {
			s.Grids += m.skelPts[id].Bytes()
		}
	}
	if m.hier != nil {
		s.Skeletons += m.hier.Bytes()
	}
	s.Tree = m.Tree.Bytes()
	s.Workspace = m.workspaceBytes()
	switch m.Cfg.Mode {
	case Normal:
		s.Coupling = m.coup.Bytes()
		s.Nearfield = m.near.Bytes()
	case Hybrid:
		// Hybrid pays for both the stored subset and the on-the-fly
		// scratch bound for the blocks it left unstored.
		s.Coupling = m.coup.Bytes()
		s.Nearfield = m.near.Bytes()
		s.ScratchPerWorker = m.maxTileBytes()
	default:
		s.ScratchPerWorker = m.maxTileBytes()
	}
	return s
}

// maxTileBytes returns the size of the largest block the on-the-fly sweeps
// will assemble, computed from ranks and leaf sizes without assembling
// anything.
func (m *Matrix) maxTileBytes() int64 {
	var maxElems int64
	for i := range m.Tree.Nodes {
		ri := int64(m.ranks[i])
		for _, j := range m.Tree.Nodes[i].Interaction {
			if e := ri * int64(m.colRank(j)); e > maxElems {
				maxElems = e
			}
		}
	}
	for _, i := range m.Tree.Leaves {
		si := int64(m.Tree.Nodes[i].Size())
		for _, j := range m.Tree.Nodes[i].Near {
			if e := si * int64(m.Tree.Nodes[j].Size()); e > maxElems {
				maxElems = e
			}
		}
	}
	return maxElems * 8
}
