package core

import (
	"bytes"
	"strings"
	"testing"

	"h2ds/internal/kernel"
	"h2ds/internal/pointset"
)

func roundTrip(t *testing.T, m *Matrix, k kernel.Pairwise) *Matrix {
	t.Helper()
	var buf bytes.Buffer
	n, err := m.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	m2, err := Read(&buf, k)
	if err != nil {
		t.Fatal(err)
	}
	return m2
}

func TestSerializeRoundTripDataDriven(t *testing.T) {
	pts := pointset.Cube(1500, 3, 90)
	b := randVec(1500, 91)
	for _, mode := range []MemoryMode{Normal, OnTheFly} {
		m, err := Build(pts, kernel.Coulomb{}, Config{Kind: DataDriven, Mode: mode, Tol: 1e-6, LeafSize: 60})
		if err != nil {
			t.Fatal(err)
		}
		m2 := roundTrip(t, m, kernel.Coulomb{})
		y1 := m.Apply(b)
		y2 := m2.Apply(b)
		for i := range y1 {
			if y1[i] != y2[i] {
				t.Fatalf("mode %v: loaded matrix differs at %d: %g vs %g", mode, i, y1[i], y2[i])
			}
		}
		if m2.Stats().MaxRank != m.Stats().MaxRank || m2.Stats().Leaves != m.Stats().Leaves {
			t.Fatalf("mode %v: stats differ after round trip", mode)
		}
		if m2.Hierarchy() == nil {
			t.Fatal("hierarchy lost in round trip")
		}
	}
}

func TestSerializeRoundTripInterpolation(t *testing.T) {
	pts := pointset.Cube(1000, 2, 92)
	b := randVec(1000, 93)
	m, err := Build(pts, kernel.Exponential{}, Config{Kind: Interpolation, Mode: OnTheFly, Tol: 1e-5, LeafSize: 80})
	if err != nil {
		t.Fatal(err)
	}
	m2 := roundTrip(t, m, kernel.Exponential{})
	y1 := m.Apply(b)
	y2 := m2.Apply(b)
	for i := range y1 {
		if y1[i] != y2[i] {
			t.Fatalf("loaded interpolation matrix differs at %d", i)
		}
	}
}

func TestSerializeRoundTripUnsymmetric(t *testing.T) {
	pts := pointset.Cube(900, 3, 94)
	b := randVec(900, 95)
	k := drift3()
	m, err := Build(pts, k, Config{Kind: DataDriven, Mode: OnTheFly, Tol: 1e-5, LeafSize: 60})
	if err != nil {
		t.Fatal(err)
	}
	m2 := roundTrip(t, m, k)
	y1 := m.Apply(b)
	y2 := m2.Apply(b)
	for i := range y1 {
		if y1[i] != y2[i] {
			t.Fatalf("loaded unsymmetric matrix differs at %d", i)
		}
	}
}

func TestReadAnyResolvesKernel(t *testing.T) {
	pts := pointset.Cube(800, 3, 89)
	b := randVec(800, 88)
	m, err := Build(pts, kernel.Gaussian{Scale: 0.1}, Config{Kind: DataDriven, Mode: OnTheFly, Tol: 1e-5, LeafSize: 60})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := ReadAny(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := m2.Kern.Name(); got != "gaussian" {
		t.Fatalf("resolved kernel %q, want gaussian", got)
	}
	y1, y2 := m.Apply(b), m2.Apply(b)
	for i := range y1 {
		if y1[i] != y2[i] {
			t.Fatalf("ReadAny matrix differs at %d: %g vs %g", i, y1[i], y2[i])
		}
	}
}

func TestReadAnyUnknownKernel(t *testing.T) {
	pts := pointset.Cube(300, 3, 87)
	// An unregistered kernel serializes fine but cannot be resolved by name.
	m, err := Build(pts, drift3(), Config{Kind: DataDriven, Mode: OnTheFly, Tol: 1e-4, LeafSize: 50})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadAny(&buf); err == nil || !strings.Contains(err.Error(), "unknown kernel") {
		t.Fatalf("expected unknown-kernel error, got %v", err)
	}
}

func TestSerializeKernelMismatch(t *testing.T) {
	pts := pointset.Cube(300, 3, 96)
	m, err := Build(pts, kernel.Coulomb{}, Config{Tol: 1e-4, LeafSize: 50})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf, kernel.Gaussian{Scale: 0.1}); err == nil || !strings.Contains(err.Error(), "kernel") {
		t.Fatalf("expected kernel mismatch error, got %v", err)
	}
}

func TestSerializeRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not an h2ds file at all")), kernel.Coulomb{}); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Read(bytes.NewReader(nil), kernel.Coulomb{}); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestSerializeTruncatedStream(t *testing.T) {
	pts := pointset.Cube(400, 3, 97)
	m, err := Build(pts, kernel.Coulomb{}, Config{Tol: 1e-4, LeafSize: 50})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, frac := range []int{2, 4, 10} {
		cut := full[:len(full)/frac]
		if _, err := Read(bytes.NewReader(cut), kernel.Coulomb{}); err == nil {
			t.Fatalf("truncated stream (1/%d) accepted", frac)
		}
	}
}

// TestSerializeDetectsFlippedBytes is the torn/corrupt-transfer test for the
// v4 checksum footer: flipping any single byte of a valid stream — including
// deep inside the float payload, where every pre-v4 format version would
// deserialize silently — must be rejected.
func TestSerializeDetectsFlippedBytes(t *testing.T) {
	pts := pointset.Cube(500, 3, 99)
	m, err := Build(pts, kernel.Coulomb{}, Config{Kind: DataDriven, Mode: OnTheFly, Tol: 1e-4, LeafSize: 50})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// A spread of offsets across the stream: the version word, coordinate
	// float payload (offsets 200 and 1000 sit inside the 12000-byte coords
	// block, low-order mantissa bytes a value check can never catch), and
	// both halves of the footer. Offsets inside length headers are avoided —
	// they fail too, but via over-long reads rather than the CRC.
	offsets := []int{13, 200, 1000, len(full) - 6, len(full) - 3}
	for _, off := range offsets {
		corrupt := append([]byte(nil), full...)
		corrupt[off] ^= 0x01
		if _, err := Read(bytes.NewReader(corrupt), kernel.Coulomb{}); err == nil {
			t.Fatalf("flipped byte at offset %d/%d accepted", off, len(full))
		}
	}
	// Dropping the footer (a torn write that lost the tail) must also fail.
	if _, err := Read(bytes.NewReader(full[:len(full)-8]), kernel.Coulomb{}); err == nil {
		t.Fatal("stream with missing footer accepted")
	}
	// The untouched stream still loads.
	if _, err := Read(bytes.NewReader(full), kernel.Coulomb{}); err != nil {
		t.Fatalf("pristine stream rejected: %v", err)
	}
}

// TestReadV3StreamCompat strips the v4 footer and patches the version word
// down to 3: pre-checksum streams (existing spill files) must keep loading,
// just without integrity verification.
func TestReadV3StreamCompat(t *testing.T) {
	pts := pointset.Cube(400, 3, 100)
	b := randVec(400, 101)
	m, err := Build(pts, kernel.Coulomb{}, Config{Kind: DataDriven, Mode: OnTheFly, Tol: 1e-4, LeafSize: 50})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	v3 := append([]byte(nil), raw[:len(raw)-8]...)
	v3[8+4] = 3 // little-endian uint32 version 4 -> 3 (after 8+4 byte magic string)
	m2, err := Read(bytes.NewReader(v3), kernel.Coulomb{})
	if err != nil {
		t.Fatalf("v3 stream rejected: %v", err)
	}
	y1, y2 := m.Apply(b), m2.Apply(b)
	for i := range y1 {
		if y1[i] != y2[i] {
			t.Fatalf("v3-compat matrix differs at %d", i)
		}
	}
}

func TestSerializeCorruptPermutation(t *testing.T) {
	pts := pointset.Cube(200, 2, 98)
	m, err := Build(pts, kernel.Coulomb{}, Config{Tol: 1e-4, LeafSize: 50})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a permutation entry in the live structure and re-serialize:
	// Read must reject it.
	m.Tree.Perm[0] = 999999
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf, kernel.Coulomb{}); err == nil {
		t.Fatal("corrupt permutation accepted")
	}
}
