package core

import (
	"fmt"

	"h2ds/internal/kernel"
	"h2ds/internal/mat"
	"h2ds/internal/par"
)

// BlockJacobi is a block-Jacobi preconditioner for regularized kernel
// systems (K + σI): one Cholesky factorization per leaf diagonal block.
// Applying it solves each leaf system independently — embarrassingly
// parallel, and the diagonal blocks are exactly the nearfield self-blocks
// the H² representation already identifies.
//
// It implements the solver package's Operator interface (ApplyTo), so it
// can be passed to solver.PCG directly.
type BlockJacobi struct {
	m       *Matrix
	leaves  []int
	factors []*mat.Cholesky
	workers int
}

// BlockJacobi builds the preconditioner for (K + sigma I). It fails if any
// leaf block is not positive definite at this shift (increase sigma, or use
// an SPD kernel).
func (m *Matrix) BlockJacobi(sigma float64) (*BlockJacobi, error) {
	bj := &BlockJacobi{m: m, leaves: m.Tree.Leaves, workers: m.Cfg.Workers}
	bj.factors = make([]*mat.Cholesky, len(bj.leaves))
	errs := make([]error, len(bj.leaves))
	par.For(m.Cfg.Workers, len(bj.leaves), func(k int) {
		id := bj.leaves[k]
		nd := &m.Tree.Nodes[id]
		blk := kernel.NewBlock(m.Kern, m.Tree.Points, m.leafRange(id), m.Tree.Points, m.leafRange(id))
		for i := 0; i < blk.Rows; i++ {
			blk.Set(i, i, blk.At(i, i)+sigma)
		}
		ch, err := mat.NewCholesky(blk)
		if err != nil {
			errs[k] = fmt.Errorf("core: leaf %d (size %d): %w", id, nd.Size(), err)
			return
		}
		bj.factors[k] = ch
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return bj, nil
}

// ApplyTo solves the block-diagonal system: y = M⁻¹ b with
// M = blockdiag(K_leaf + σI). y and b are in the caller's original point
// ordering, matching Matrix.ApplyTo; they may alias. It draws its
// permutation buffers from the matrix's workspace pool and solves each leaf
// in place, so repeated applications inside PCG are allocation-free in
// steady state.
func (bj *BlockJacobi) ApplyTo(y, b []float64) {
	m := bj.m
	if len(y) != m.N || len(b) != m.N {
		panic(fmt.Sprintf("core: blockjacobi length mismatch y=%d b=%d n=%d", len(y), len(b), m.N))
	}
	ws := m.getWorkspace()
	ws.check(m, par.Resolve(bj.workers))
	m.Tree.PermuteVec(ws.bp, b)
	ws.forWorker(len(bj.leaves), func(_, k int) {
		nd := &m.Tree.Nodes[bj.leaves[k]]
		bj.factors[k].SolveTo(ws.yp[nd.Start:nd.End], ws.bp[nd.Start:nd.End])
	})
	m.Tree.UnpermuteVec(y, ws.yp)
	m.putWorkspace(ws)
}

// Bytes returns the preconditioner's deterministic memory footprint.
func (bj *BlockJacobi) Bytes() int64 {
	var b int64
	for _, ch := range bj.factors {
		b += int64(len(ch.L.Data))*8 + 24
	}
	return b
}
