package core

import (
	"testing"

	"h2ds/internal/kernel"
	"h2ds/internal/pointset"
)

func TestReuseTreeAndHierarchyAcrossKernels(t *testing.T) {
	// Paper §VI-A: the hierarchical sampling depends only on the points, so
	// one sweep can be amortized across kernels. Reused builds must produce
	// the same results as fresh builds.
	pts := pointset.Cube(2000, 3, 40)
	b := randVec(2000, 41)
	first, err := Build(pts, kernel.Coulomb{}, Config{Kind: DataDriven, Mode: OnTheFly, Tol: 1e-6, LeafSize: 80})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []kernel.Kernel{kernel.Exponential{}, kernel.Gaussian{Scale: 0.1}} {
		fresh, err := Build(pts, k, Config{Kind: DataDriven, Mode: OnTheFly, Tol: 1e-6, LeafSize: 80})
		if err != nil {
			t.Fatal(err)
		}
		reused, err := Build(pts, k, Config{Kind: DataDriven, Mode: OnTheFly, Tol: 1e-6, LeafSize: 80,
			ReuseTree: first.Tree, ReuseHierarchy: first.Hierarchy()})
		if err != nil {
			t.Fatal(err)
		}
		yf := fresh.Apply(b)
		yr := reused.Apply(b)
		for i := range yf {
			if yf[i] != yr[i] {
				t.Fatalf("%s: reused build differs at %d: %g vs %g", k.Name(), i, yf[i], yr[i])
			}
		}
	}
	if first.Hierarchy() == nil {
		t.Fatal("data-driven build must expose its hierarchy")
	}
	ip, err := Build(pts, kernel.Coulomb{}, Config{Kind: Interpolation, Tol: 1e-3, LeafSize: 80})
	if err != nil {
		t.Fatal(err)
	}
	if ip.Hierarchy() != nil {
		t.Fatal("interpolation build must not expose a hierarchy")
	}
}

func TestReuseTreeShapeMismatch(t *testing.T) {
	a, err := Build(pointset.Cube(500, 3, 42), kernel.Coulomb{}, Config{LeafSize: 60})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(pointset.Cube(600, 3, 43), kernel.Coulomb{}, Config{ReuseTree: a.Tree}); err == nil {
		t.Fatal("expected shape-mismatch error")
	}
	if _, err := Build(pointset.Cube(500, 2, 44), kernel.Coulomb{}, Config{ReuseTree: a.Tree}); err == nil {
		t.Fatal("expected dim-mismatch error")
	}
}
