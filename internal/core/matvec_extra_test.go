package core

import (
	"math"
	"testing"

	"h2ds/internal/kernel"
	"h2ds/internal/mat"
	"h2ds/internal/pointset"
)

func TestApplyTransposeSymmetricEqualsApply(t *testing.T) {
	pts := pointset.Cube(1500, 3, 110)
	b := randVec(1500, 111)
	for _, mode := range []MemoryMode{Normal, OnTheFly} {
		m, err := Build(pts, kernel.Coulomb{}, Config{Kind: DataDriven, Mode: mode, Tol: 1e-6, LeafSize: 70})
		if err != nil {
			t.Fatal(err)
		}
		y := m.Apply(b)
		yt := m.ApplyTranspose(b)
		for i := range y {
			if math.Abs(y[i]-yt[i]) > 1e-12*(1+math.Abs(y[i])) {
				t.Fatalf("mode %v: symmetric transpose differs at %d: %g vs %g", mode, i, y[i], yt[i])
			}
		}
	}
}

func TestApplyTransposeUnsymmetricVsDense(t *testing.T) {
	pts := pointset.Cube(1500, 3, 112)
	b := randVec(1500, 113)
	k := drift3()
	// Exact Aᵀ b: row i of Aᵀ is column i of A, i.e. Σ_j K(x_j, x_i) b_j.
	want := make([]float64, 1500)
	for j := 0; j < 1500; j++ {
		if b[j] == 0 {
			continue
		}
		for i := 0; i < 1500; i++ {
			want[i] += k.EvalPair(pts.At(j), pts.At(i)) * b[j]
		}
	}
	for _, mode := range []MemoryMode{Normal, OnTheFly} {
		m, err := Build(pts, k, Config{Kind: DataDriven, Mode: mode, Tol: 1e-7, LeafSize: 70})
		if err != nil {
			t.Fatal(err)
		}
		if e := relErr(m.ApplyTranspose(b), want); e > 1e-5 {
			t.Fatalf("mode %v: transpose error %g", mode, e)
		}
	}
}

func TestApplyTransposeAdjointIdentity(t *testing.T) {
	// ⟨Âx, y⟩ == ⟨x, Âᵀy⟩ must hold exactly for the same representation.
	pts := pointset.Cube(1200, 3, 114)
	k := drift3()
	m, err := Build(pts, k, Config{Kind: DataDriven, Mode: OnTheFly, Tol: 1e-6, LeafSize: 60})
	if err != nil {
		t.Fatal(err)
	}
	x := randVec(1200, 115)
	y := randVec(1200, 116)
	ax := m.Apply(x)
	aty := m.ApplyTranspose(y)
	lhs := mat.Dot(ax, y)
	rhs := mat.Dot(x, aty)
	if math.Abs(lhs-rhs) > 1e-9*(math.Abs(lhs)+math.Abs(rhs)) {
		t.Fatalf("adjoint identity violated: %g vs %g", lhs, rhs)
	}
}

func TestApplyBatchMatchesColumnwise(t *testing.T) {
	pts := pointset.Dino(1500, 117)
	for _, tc := range []struct {
		kern kernel.Pairwise
		mode MemoryMode
	}{
		{kernel.Coulomb{}, Normal},
		{kernel.Coulomb{}, OnTheFly},
		{drift3(), Normal},
		{drift3(), OnTheFly},
	} {
		m, err := Build(pts, tc.kern, Config{Kind: DataDriven, Mode: tc.mode, Tol: 1e-6, LeafSize: 60})
		if err != nil {
			t.Fatal(err)
		}
		const k = 4
		b := mat.NewDense(1500, k)
		for j := 0; j < k; j++ {
			col := randVec(1500, int64(120+j))
			for i := 0; i < 1500; i++ {
				b.Set(i, j, col[i])
			}
		}
		y := m.ApplyBatch(b)
		for j := 0; j < k; j++ {
			col := make([]float64, 1500)
			for i := range col {
				col[i] = b.At(i, j)
			}
			want := m.Apply(col)
			for i := range want {
				if math.Abs(y.At(i, j)-want[i]) > 1e-10*(1+math.Abs(want[i])) {
					t.Fatalf("%s/%v: batch column %d differs at %d: %g vs %g",
						tc.kern.Name(), tc.mode, j, i, y.At(i, j), want[i])
				}
			}
		}
	}
}

func TestApplyBatchShapePanics(t *testing.T) {
	pts := pointset.Cube(200, 3, 130)
	m, err := Build(pts, kernel.Coulomb{}, Config{Tol: 1e-4, LeafSize: 50})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.ApplyBatch(mat.NewDense(100, 2))
}
