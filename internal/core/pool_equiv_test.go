package core

import (
	"bytes"
	"sync"
	"testing"

	"h2ds/internal/kernel"
	"h2ds/internal/mat"
	"h2ds/internal/pointset"
)

// seedPaths temporarily reverts m to the seed hot path — map-backed frozen
// block stores — and returns a workspace whose pool has been released, so
// sweeps run on the fork-join runtime. The returned restore func reinstates
// the compacted stores.
func seedPaths(t *testing.T, m *Matrix) (*Workspace, func()) {
	t.Helper()
	coup, near := m.coup, m.near
	m.coup, m.near = coup.uncompacted(), near.uncompacted()
	ws := m.NewWorkspace()
	ws.Close() // nil pool: forWorker falls back to par.ForWorker
	return ws, func() { m.coup, m.near = coup, near }
}

// TestPooledCompactedMatchesSeedBitwise checks the full modernized hot path
// — persistent worker pool plus CSR-compacted block stores — against the
// seed configuration (fork-join runtime, map-backed frozen stores) for
// bitwise-identical results on the apply, transpose-apply, and batched
// paths, for a symmetric kernel (shared bases, triangular stores) and an
// unsymmetric one (separate bases, directed stores).
func TestPooledCompactedMatchesSeedBitwise(t *testing.T) {
	pts := pointset.Cube(2000, 3, 301)
	b := randVec(2000, 302)
	kernels := []kernel.Pairwise{kernel.Coulomb{}, drift3()}
	for _, k := range kernels {
		t.Run(k.Name(), func(t *testing.T) {
			m, err := Build(pts, k, Config{Kind: DataDriven, Mode: Normal, Tol: 1e-6, Workers: 3, LeafSize: 60})
			if err != nil {
				t.Fatal(err)
			}
			if m.coup.rowPtr == nil || m.near.rowPtr == nil {
				t.Fatal("stores not compacted after Build")
			}

			wsNew := m.NewWorkspace()
			defer wsNew.Close()
			yNew := make([]float64, m.N)
			ytNew := make([]float64, m.N)
			m.ApplyToWith(wsNew, yNew, b)
			m.ApplyTransposeToWith(wsNew, ytNew, b)
			BNew := mat.NewDense(m.N, 3)
			for i := 0; i < m.N; i++ {
				for j := 0; j < 3; j++ {
					BNew.Set(i, j, b[(i+j*7)%m.N])
				}
			}
			YNew := mat.NewDense(0, 0)
			m.ApplyBatchToWith(wsNew, YNew, BNew)

			wsSeed, restore := seedPaths(t, m)
			defer restore()
			ySeed := make([]float64, m.N)
			ytSeed := make([]float64, m.N)
			m.ApplyToWith(wsSeed, ySeed, b)
			m.ApplyTransposeToWith(wsSeed, ytSeed, b)
			YSeed := mat.NewDense(0, 0)
			m.ApplyBatchToWith(wsSeed, YSeed, BNew)

			for i := range yNew {
				if yNew[i] != ySeed[i] {
					t.Fatalf("apply differs at %d: pooled %g vs seed %g", i, yNew[i], ySeed[i])
				}
				if ytNew[i] != ytSeed[i] {
					t.Fatalf("transpose apply differs at %d: pooled %g vs seed %g", i, ytNew[i], ytSeed[i])
				}
			}
			for i := range YNew.Data {
				if YNew.Data[i] != YSeed.Data[i] {
					t.Fatalf("batch apply differs at flat %d: pooled %g vs seed %g", i, YNew.Data[i], YSeed.Data[i])
				}
			}
		})
	}
}

// TestConcurrentApplyToWithPools drives concurrent ApplyToWith calls, each
// goroutine cycling workspaces through the matrix's internal pool — the
// steady-state pattern of the serve layer, where every checked-out workspace
// carries its own persistent worker pool. Run under -race this covers
// pool handoff between goroutines (sync.Pool migration) and the lock-free
// frozen CSR reads.
func TestConcurrentApplyToWithPools(t *testing.T) {
	pts := pointset.Cube(1200, 3, 303)
	m, err := Build(pts, kernel.Coulomb{}, Config{Kind: DataDriven, Mode: Normal, Tol: 1e-5, Workers: 2, LeafSize: 50})
	if err != nil {
		t.Fatal(err)
	}
	b := randVec(m.N, 304)
	ref := make([]float64, m.N)
	m.ApplyToWith(m.NewWorkspace(), ref, b)

	const goroutines = 6
	var wg sync.WaitGroup
	errCh := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			y := make([]float64, m.N)
			for it := 0; it < 8; it++ {
				ws := m.getWorkspace()
				m.ApplyToWith(ws, y, b)
				m.putWorkspace(ws)
				for i := range y {
					if y[i] != ref[i] {
						errCh <- "concurrent ApplyToWith diverged from reference"
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for msg := range errCh {
		t.Fatal(msg)
	}
}

// TestSerializeRoundTripCompacted checks that deserialization lands back in
// the compacted representation with identical accounting and bitwise-equal
// products.
func TestSerializeRoundTripCompacted(t *testing.T) {
	pts := pointset.Cube(1500, 3, 305)
	m, err := Build(pts, kernel.Coulomb{}, Config{Kind: DataDriven, Mode: Normal, Tol: 1e-6, LeafSize: 60})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Read(&buf, kernel.Coulomb{})
	if err != nil {
		t.Fatal(err)
	}
	if m2.coup.rowPtr == nil || m2.near.rowPtr == nil {
		t.Fatal("loaded stores not compacted")
	}
	if m2.coup.Len() != m.coup.Len() || m2.near.Len() != m.near.Len() {
		t.Fatalf("block counts differ after round trip: coup %d vs %d, near %d vs %d",
			m2.coup.Len(), m.coup.Len(), m2.near.Len(), m.near.Len())
	}
	if m2.coup.Bytes() != m.coup.Bytes() || m2.near.Bytes() != m.near.Bytes() {
		t.Fatal("memoized byte accounting differs after round trip")
	}
	b := randVec(m.N, 306)
	y1, y2 := m.Apply(b), m2.Apply(b)
	for i := range y1 {
		if y1[i] != y2[i] {
			t.Fatalf("loaded compacted matrix differs at %d: %g vs %g", i, y1[i], y2[i])
		}
	}
}

// TestWorkspaceCloseFallback checks a closed workspace keeps producing
// bitwise-identical results on the fork-join fallback.
func TestWorkspaceCloseFallback(t *testing.T) {
	pts := pointset.Cube(900, 3, 307)
	m, err := Build(pts, kernel.Coulomb{}, Config{Kind: DataDriven, Mode: Normal, Tol: 1e-5, Workers: 3, LeafSize: 50})
	if err != nil {
		t.Fatal(err)
	}
	b := randVec(m.N, 308)
	ws := m.NewWorkspace()
	y1 := make([]float64, m.N)
	m.ApplyToWith(ws, y1, b)
	ws.Close()
	ws.Close() // idempotent
	y2 := make([]float64, m.N)
	m.ApplyToWith(ws, y2, b)
	for i := range y1 {
		if y1[i] != y2[i] {
			t.Fatalf("closed-workspace apply differs at %d", i)
		}
	}
}

// TestSweepStatsAccumulate checks the per-stage timing counters move with
// every apply variant.
func TestSweepStatsAccumulate(t *testing.T) {
	pts := pointset.Cube(800, 3, 309)
	m, err := Build(pts, kernel.Coulomb{}, Config{Kind: DataDriven, Mode: Normal, Tol: 1e-5, LeafSize: 50})
	if err != nil {
		t.Fatal(err)
	}
	b := randVec(m.N, 310)
	m.Apply(b)
	m.ApplyTranspose(b)
	B := mat.NewDense(m.N, 2)
	copy(B.Data[:m.N], b)
	m.ApplyBatchTo(mat.NewDense(0, 0), B)
	st := m.SweepStats()
	if st.Applies != 3 {
		t.Fatalf("Applies = %d, want 3", st.Applies)
	}
	if st.UpNS < 0 || st.CouplingNS <= 0 || st.DownNS < 0 || st.LeafNS <= 0 {
		t.Fatalf("stage timings not accumulating: %+v", st)
	}
}
