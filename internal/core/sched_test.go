package core

import (
	"math"
	"sync"
	"testing"

	"h2ds/internal/kernel"
	"h2ds/internal/mat"
	"h2ds/internal/pointset"
)

// TestTaskGraphInvariants checks the structural properties the scheduler's
// deadlock-freedom argument rests on: one task per (node, stage) slot, edge
// endpoints in range, dependency counts consistent with the edge list, and a
// non-empty initial frontier.
func TestTaskGraphInvariants(t *testing.T) {
	for _, tc := range []struct {
		n, leaf int
	}{
		{40, 50},  // single leaf: the root is the only node
		{130, 50}, // depth 1: root plus one level of leaves
		{1500, 25},
	} {
		m, err := Build(pointset.Cube(tc.n, 3, 401), kernel.Coulomb{},
			Config{Kind: DataDriven, Mode: Normal, Tol: 1e-5, LeafSize: tc.leaf})
		if err != nil {
			t.Fatal(err)
		}
		g := m.schedGraph()
		nN := len(m.Tree.Nodes)
		if g.total != int32(3*nN) {
			t.Fatalf("n=%d: total %d want %d", tc.n, g.total, 3*nN)
		}
		var deps int32
		for id, c := range g.initCnt {
			if c < 0 {
				t.Fatalf("n=%d: negative init count at task %d", tc.n, id)
			}
			deps += c
		}
		if int(deps) != len(g.depList) {
			t.Fatalf("n=%d: Σ initCnt %d != |depList| %d", tc.n, deps, len(g.depList))
		}
		for _, d := range g.depList {
			if d < 0 || d >= g.total {
				t.Fatalf("n=%d: dependent %d out of range", tc.n, d)
			}
		}
		if len(g.ready0) == 0 {
			t.Fatalf("n=%d: empty initial frontier", tc.n)
		}
		zero := 0
		for _, c := range g.initCnt {
			if c == 0 {
				zero++
			}
		}
		if zero != len(g.ready0) {
			t.Fatalf("n=%d: %d zero-dependency tasks but frontier has %d", tc.n, zero, len(g.ready0))
		}
	}
}

// schedRefApply computes the level-synchronous reference results (apply,
// transpose apply, batch apply) on a closed-pool workspace — the seed
// fork-join path the scheduler must match bitwise.
func schedRefApply(t *testing.T, m *Matrix, b []float64, B *mat.Dense) (y, yt []float64, Y *mat.Dense) {
	t.Helper()
	ws := m.NewWorkspace()
	ws.Close() // fork-join level-synchronous fallback
	y = make([]float64, m.N)
	yt = make([]float64, m.N)
	Y = mat.NewDense(0, 0)
	m.ApplyToWith(ws, y, b)
	m.ApplyTransposeToWith(ws, yt, b)
	m.ApplyBatchToWith(ws, Y, B)
	return y, yt, Y
}

// TestScheduledMatchesSeedEdgeShapes runs the barrier-free scheduler over
// degenerate and adversarial tree shapes — a single-leaf tree (root only),
// a depth-1 tree, and a tree whose leaf level is far wider than the worker
// count — at worker counts 1/2/3/7, in Normal and OnTheFly modes, and
// demands bitwise equality with the level-synchronous seed path for the
// apply, transpose, and batched variants.
func TestScheduledMatchesSeedEdgeShapes(t *testing.T) {
	shapes := []struct {
		name    string
		n, leaf int
	}{
		{"single-leaf", 40, 50},
		{"depth-1", 130, 50},
		{"wide-level", 1500, 25},
	}
	for _, sh := range shapes {
		for _, mode := range []MemoryMode{Normal, OnTheFly} {
			t.Run(sh.name+"/"+mode.String(), func(t *testing.T) {
				pts := pointset.Cube(sh.n, 3, 402)
				m, err := Build(pts, kernel.Coulomb{},
					Config{Kind: DataDriven, Mode: mode, Tol: 1e-5, LeafSize: sh.leaf})
				if err != nil {
					t.Fatal(err)
				}
				b := randVec(m.N, 403)
				B := mat.NewDense(m.N, 3)
				for i := 0; i < m.N; i++ {
					for j := 0; j < 3; j++ {
						B.Set(i, j, b[(i+j*11)%m.N])
					}
				}
				yRef, ytRef, YRef := schedRefApply(t, m, b, B)

				for _, w := range []int{1, 2, 3, 7} {
					m.Cfg.Workers = w
					ws := m.NewWorkspace()
					if w > 1 && !ws.useSched() {
						t.Fatalf("w=%d: scheduler not selected", w)
					}
					y := make([]float64, m.N)
					yt := make([]float64, m.N)
					Y := mat.NewDense(0, 0)
					m.ApplyToWith(ws, y, b)
					m.ApplyTransposeToWith(ws, yt, b)
					m.ApplyBatchToWith(ws, Y, B)
					ws.Close()
					for i := range y {
						if y[i] != yRef[i] {
							t.Fatalf("w=%d apply differs at %d: %g vs %g", w, i, y[i], yRef[i])
						}
						if yt[i] != ytRef[i] {
							t.Fatalf("w=%d transpose differs at %d: %g vs %g", w, i, yt[i], ytRef[i])
						}
					}
					for i := range Y.Data {
						if Y.Data[i] != YRef.Data[i] {
							t.Fatalf("w=%d batch differs at flat %d: %g vs %g", w, i, Y.Data[i], YRef.Data[i])
						}
					}
				}
			})
		}
	}
}

// TestScheduledMatchesSeedUnsymmetric covers the directed-storage transpose
// coupling (the one scheduler stage whose kernel differs most from the
// forward sweep) under an unsymmetric kernel at several worker counts.
func TestScheduledMatchesSeedUnsymmetric(t *testing.T) {
	pts := pointset.Cube(1100, 3, 404)
	m, err := Build(pts, drift3(),
		Config{Kind: DataDriven, Mode: Normal, Tol: 1e-5, LeafSize: 40})
	if err != nil {
		t.Fatal(err)
	}
	b := randVec(m.N, 405)
	B := mat.NewDense(m.N, 2)
	copy(B.Data[:m.N], b)
	yRef, ytRef, YRef := schedRefApply(t, m, b, B)

	for _, w := range []int{2, 3, 7} {
		m.Cfg.Workers = w
		ws := m.NewWorkspace()
		y := make([]float64, m.N)
		yt := make([]float64, m.N)
		Y := mat.NewDense(0, 0)
		m.ApplyToWith(ws, y, b)
		m.ApplyTransposeToWith(ws, yt, b)
		m.ApplyBatchToWith(ws, Y, B)
		ws.Close()
		for i := range y {
			if y[i] != yRef[i] || yt[i] != ytRef[i] {
				t.Fatalf("w=%d unsymmetric apply/transpose differs at %d", w, i)
			}
		}
		for i := range Y.Data {
			if Y.Data[i] != YRef.Data[i] {
				t.Fatalf("w=%d unsymmetric batch differs at flat %d", w, i)
			}
		}
	}
}

// TestFastMathWithinTolerance checks the opt-in FMA accumulation: an
// on-the-fly apply under Config.FastMath must agree with the default
// (bitwise-pinned) path to rounding accuracy across all three apply variants.
func TestFastMathWithinTolerance(t *testing.T) {
	pts := pointset.Cube(1200, 3, 408)
	m, err := Build(pts, kernel.Coulomb{},
		Config{Kind: DataDriven, Mode: OnTheFly, Tol: 1e-5, LeafSize: 40, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	b := randVec(m.N, 409)
	B := mat.NewDense(m.N, 2)
	copy(B.Data[:m.N], b)
	copy(B.Data[m.N:], b)
	y, yt := make([]float64, m.N), make([]float64, m.N)
	Y := mat.NewDense(0, 0)
	m.ApplyTo(y, b)
	m.ApplyTransposeTo(yt, b)
	m.ApplyBatchTo(Y, B)

	m.Cfg.FastMath = true
	yF, ytF := make([]float64, m.N), make([]float64, m.N)
	YF := mat.NewDense(0, 0)
	m.ApplyTo(yF, b)
	m.ApplyTransposeTo(ytF, b)
	m.ApplyBatchTo(YF, B)
	m.Cfg.FastMath = false

	scale := 0.0
	for _, v := range y {
		if a := math.Abs(v); a > scale {
			scale = a
		}
	}
	const tol = 1e-12
	for i := range y {
		if math.Abs(y[i]-yF[i]) > tol*scale {
			t.Fatalf("FastMath apply diverged at %d: %g vs %g", i, y[i], yF[i])
		}
		if math.Abs(yt[i]-ytF[i]) > tol*scale {
			t.Fatalf("FastMath transpose diverged at %d: %g vs %g", i, yt[i], ytF[i])
		}
	}
	for i := range Y.Data {
		if math.Abs(Y.Data[i]-YF.Data[i]) > tol*scale {
			t.Fatalf("FastMath batch diverged at flat %d: %g vs %g", i, Y.Data[i], YF.Data[i])
		}
	}
}

// TestSweepStatsConcurrentAppliers overlaps scheduled applies on distinct
// workspaces of one matrix and checks the aggregated sweep stats count every
// apply exactly once with positive stage times. Under -race this pins the
// atomicity of the per-apply counter flush (per-worker lines folded into the
// matrix atomics) that overlapping ApplyToWith calls exercise.
func TestSweepStatsConcurrentAppliers(t *testing.T) {
	pts := pointset.Cube(900, 3, 406)
	m, err := Build(pts, kernel.Coulomb{},
		Config{Kind: DataDriven, Mode: Hybrid, StorageBudget: 1 << 18, Tol: 1e-5, LeafSize: 40, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	b := randVec(m.N, 407)
	const goroutines, iters = 4, 6
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			y := make([]float64, m.N)
			for it := 0; it < iters; it++ {
				ws := m.getWorkspace()
				m.ApplyToWith(ws, y, b)
				m.putWorkspace(ws)
			}
		}()
	}
	wg.Wait()
	st := m.SweepStats()
	if st.Applies != goroutines*iters {
		t.Fatalf("Applies = %d, want %d", st.Applies, goroutines*iters)
	}
	if st.UpNS <= 0 || st.CouplingNS <= 0 || st.DownNS <= 0 || st.LeafNS <= 0 {
		t.Fatalf("scheduled stage timings not accumulating: %+v", st)
	}
	if st.HybridHits+st.HybridMisses == 0 {
		t.Fatalf("hybrid counters not accumulating: %+v", st)
	}
}
