package core

import (
	"fmt"
	"sort"

	"h2ds/internal/mat"
	"h2ds/internal/par"
)

// ShardPlan partitions one operator's tree at a subtree cut so the five-sweep
// apply can run as a two-stage scatter/gather across nodes: each shard owns
// the subtrees under a contiguous slice of the cut and computes the coupling
// sweep for exactly those nodes; the coordinator owns every node above the
// cut and finishes the product. The plan is a pure function of the tree shape
// and the (nshards, cut level) parameters, so every participant derives an
// identical plan from its own replica of the matrix — the wire protocol only
// carries the two integers, never the node sets.
//
// Bitwise contract: every g_i is computed by exactly one party using the same
// per-node kernel and the same interaction-list order as the single-node
// sweep, and shard partials are merged by placement (copy), never by
// summation. Combined with the full upward sweep running identically on every
// party, the distributed result is bitwise-equal to the single-node apply.
type ShardPlan struct {
	// NShards is the effective shard count (clamped to the cut width).
	NShards int
	// CutLevel is the tree level of the cut.
	CutLevel int
	// Roots[s] lists shard s's cut nodes, ascending by point range.
	Roots [][]int
	// Nodes[s] lists every node in shard s's subtrees, ascending by id.
	Nodes [][]int
	// Coord lists the coordinator-owned nodes (strict ancestors of the
	// cut), ascending by id.
	Coord []int
}

// AutoCutLevel picks the shallowest level whose subtree cut is wide enough to
// give every shard at least one root, capped at the deepest level.
func (m *Matrix) AutoCutLevel(nshards int) int {
	depth := m.Tree.Depth()
	for l := 1; l < depth; l++ {
		if len(m.Tree.Cut(l)) >= nshards {
			return l
		}
	}
	if depth > 1 {
		return depth - 1
	}
	return 0
}

// PlanShards derives the shard plan for nshards shards cutting the tree at
// cutLevel (<= 0 selects AutoCutLevel). The cut nodes, ordered by point
// range, are grouped into contiguous point-balanced slices; a cut narrower
// than nshards clamps the shard count rather than failing, so the effective
// partition is always total. The same (nshards, cutLevel) pair yields the
// same plan on every replica of the same build.
func (m *Matrix) PlanShards(nshards, cutLevel int) (*ShardPlan, error) {
	if nshards < 1 {
		return nil, fmt.Errorf("core: PlanShards nshards %d < 1", nshards)
	}
	if cutLevel <= 0 {
		cutLevel = m.AutoCutLevel(nshards)
	}
	if cutLevel < 0 || cutLevel >= m.Tree.Depth() {
		return nil, fmt.Errorf("core: PlanShards cut level %d outside tree depth %d", cutLevel, m.Tree.Depth())
	}
	cut := m.Tree.Cut(cutLevel)
	if len(cut) == 0 {
		return nil, fmt.Errorf("core: empty subtree cut at level %d", cutLevel)
	}
	if nshards > len(cut) {
		nshards = len(cut)
	}
	p := &ShardPlan{NShards: nshards, CutLevel: cutLevel}

	// Greedy contiguous grouping balanced by owned point count: each shard
	// takes cut nodes until it reaches the ceiling share of the remaining
	// points, always leaving one node for every shard still to come.
	remainingPts := m.N
	idx := 0
	for s := 0; s < nshards; s++ {
		target := (remainingPts + nshards - s - 1) / (nshards - s)
		maxTake := len(cut) - idx - (nshards - 1 - s)
		var grp []int
		pts := 0
		for idx < len(cut) && len(grp) < maxTake && (len(grp) == 0 || pts < target) {
			grp = append(grp, cut[idx])
			pts += m.Tree.Nodes[cut[idx]].Size()
			idx++
		}
		remainingPts -= pts
		p.Roots = append(p.Roots, grp)
		var nodes []int
		for _, root := range grp {
			nodes = append(nodes, m.Tree.Subtree(root)...)
		}
		// Subtrees of distinct cut nodes are disjoint; the sort fixes the
		// interleaving across subtrees into the ascending-id packing order.
		sort.Ints(nodes)
		p.Nodes = append(p.Nodes, nodes)
	}

	sharded := make([]bool, len(m.Tree.Nodes))
	for _, nodes := range p.Nodes {
		for _, id := range nodes {
			sharded[id] = true
		}
	}
	for id := range m.Tree.Nodes {
		if !sharded[id] {
			p.Coord = append(p.Coord, id)
		}
	}
	return p, nil
}

// PartialLen returns the packed partial length for one shard (or the
// coordinator set): the sum of the g-side ranks of its nodes — row ranks for
// the plain apply, column ranks for the transpose.
func (m *Matrix) PartialLen(nodes []int, transpose bool) int {
	total := 0
	for _, id := range nodes {
		if transpose {
			total += m.colRank(id)
		} else {
			total += m.ranks[id]
		}
	}
	return total
}

// ApplyShard runs the scatter half of the distributed apply for shard s: the
// full upward sweep (identical on every party) followed by the coupling
// sweep restricted to the shard's subtree nodes, returning the g segments
// packed in ascending node-id order. b is in original point ordering.
func (m *Matrix) ApplyShard(p *ShardPlan, s int, b []float64, transpose bool) ([]float64, error) {
	if s < 0 || s >= len(p.Nodes) {
		return nil, fmt.Errorf("core: ApplyShard shard %d outside plan of %d", s, len(p.Nodes))
	}
	if len(b) != m.N {
		return nil, fmt.Errorf("core: ApplyShard input length %d want %d", len(b), m.N)
	}
	ws := m.getWorkspace()
	defer m.putWorkspace(ws)
	m.Tree.PermuteVec(ws.bp, b)
	return m.applyShardPermuted(ws, ws.bp, p.Nodes[s], transpose), nil
}

// applyShardPermuted computes the packed coupling partials for one node set.
func (m *Matrix) applyShardPermuted(ws *Workspace, bp []float64, nodes []int, transpose bool) []float64 {
	ws.check(m, par.Resolve(m.Cfg.Workers))
	ws.curB = bp
	upFn, coupSel := ws.upFn, ws.coupSelFn
	if transpose {
		ws.q, ws.qOff = ws.rowSlab, ws.rowOff
		ws.g, ws.gOff = ws.colSlab, ws.colOff
		upFn, coupSel = ws.upTFn, ws.coupTSelFn
	} else {
		ws.q, ws.qOff = ws.colSlab, ws.colOff
		ws.g, ws.gOff = ws.rowSlab, ws.rowOff
	}
	for l := m.Tree.Depth() - 1; l >= 0; l-- {
		ws.level = m.Tree.Levels[l]
		ws.forWorker(len(ws.level), upFn)
	}
	ws.level = nodes
	ws.forWorker(len(nodes), coupSel)
	ws.flushCounters()

	out := make([]float64, 0, m.PartialLen(nodes, transpose))
	for _, id := range nodes {
		out = append(out, seg(ws.g, ws.gOff, id)...)
	}
	ws.curB = nil
	return out
}

// ApplyGather runs the gather half: its own upward sweep, the coupling sweep
// for the coordinator-owned nodes, overlay of the shard partials (any nil
// entry is recomputed locally — the coordinator's shard-failure fallback),
// then the downward and leaf/nearfield sweeps. The result is bitwise-equal
// to m.ApplyTo (or ApplyTransposeTo) on the same inputs.
func (m *Matrix) ApplyGather(p *ShardPlan, b []float64, parts [][]float64, transpose bool) ([]float64, error) {
	if len(b) != m.N {
		return nil, fmt.Errorf("core: ApplyGather input length %d want %d", len(b), m.N)
	}
	if len(parts) != len(p.Nodes) {
		return nil, fmt.Errorf("core: ApplyGather got %d partials want %d", len(parts), len(p.Nodes))
	}
	ws := m.getWorkspace()
	defer m.putWorkspace(ws)
	m.Tree.PermuteVec(ws.bp, b)
	if err := m.applyGatherPermuted(ws, ws.yp, ws.bp, p, parts, transpose); err != nil {
		return nil, err
	}
	y := make([]float64, m.N)
	m.Tree.UnpermuteVec(y, ws.yp)
	return y, nil
}

func (m *Matrix) applyGatherPermuted(ws *Workspace, yp, bp []float64, p *ShardPlan, parts [][]float64, transpose bool) error {
	ws.check(m, par.Resolve(m.Cfg.Workers))
	ws.curB, ws.curY = bp, yp
	upFn, coupSel, downFn, leafFn := ws.upFn, ws.coupSelFn, ws.downFn, ws.leafFn
	if transpose {
		ws.q, ws.qOff = ws.rowSlab, ws.rowOff
		ws.g, ws.gOff = ws.colSlab, ws.colOff
		upFn, coupSel, downFn, leafFn = ws.upTFn, ws.coupTSelFn, ws.downTFn, ws.leafTFn
	} else {
		ws.q, ws.qOff = ws.colSlab, ws.colOff
		ws.g, ws.gOff = ws.rowSlab, ws.rowOff
	}

	t0 := nowNS()
	for l := m.Tree.Depth() - 1; l >= 0; l-- {
		ws.level = m.Tree.Levels[l]
		ws.forWorker(len(ws.level), upFn)
	}
	t1 := nowNS()
	ws.level = p.Coord
	ws.forWorker(len(p.Coord), coupSel)
	for s, part := range parts {
		if part == nil {
			ws.level = p.Nodes[s]
			ws.forWorker(len(ws.level), coupSel)
			continue
		}
		if want := m.PartialLen(p.Nodes[s], transpose); len(part) != want {
			ws.curB, ws.curY = nil, nil
			return fmt.Errorf("core: shard %d partial length %d want %d", s, len(part), want)
		}
		off := 0
		for _, id := range p.Nodes[s] {
			gi := seg(ws.g, ws.gOff, id)
			copy(gi, part[off:off+len(gi)])
			off += len(gi)
		}
	}
	t2 := nowNS()
	for l := 0; l < m.Tree.Depth(); l++ {
		ws.level = m.Tree.Levels[l]
		ws.forWorker(len(ws.level), downFn)
	}
	t3 := nowNS()
	ws.forWorker(len(m.Tree.Leaves), leafFn)
	m.sweeps.record(t0, t1, t2, t3, nowNS())
	ws.flushCounters()
	ws.curB, ws.curY = nil, nil
	return nil
}

// ApplyBatchShard is the multi-RHS scatter half: packed per-node g panels
// (rank × k, row-major) in ascending node-id order for shard s. Batch sharding
// covers the plain product only, matching the single-node batch surface.
func (m *Matrix) ApplyBatchShard(p *ShardPlan, s int, B *mat.Dense) ([]float64, error) {
	if s < 0 || s >= len(p.Nodes) {
		return nil, fmt.Errorf("core: ApplyBatchShard shard %d outside plan of %d", s, len(p.Nodes))
	}
	if B.Rows != m.N {
		return nil, fmt.Errorf("core: ApplyBatchShard rows %d want %d", B.Rows, m.N)
	}
	k := B.Cols
	ws := m.getWorkspace()
	defer m.putWorkspace(ws)
	ws.check(m, par.Resolve(m.Cfg.Workers))
	ws.ensureBatch(k)
	for row, orig := range m.Tree.Perm {
		copy(ws.bpB.Row(row), B.Row(orig))
	}
	for l := m.Tree.Depth() - 1; l >= 0; l-- {
		ws.level = m.Tree.Levels[l]
		ws.forWorker(len(ws.level), ws.bUpFn)
	}
	nodes := p.Nodes[s]
	ws.level = nodes
	ws.forWorker(len(nodes), ws.bCoupSelFn)
	ws.flushCounters()

	out := make([]float64, 0, m.PartialLen(nodes, false)*k)
	for _, id := range nodes {
		out = append(out, ws.gB[id].Data...)
	}
	return out, nil
}

// ApplyBatchGather is the multi-RHS gather half, bitwise-equal to
// m.ApplyBatchTo on the same inputs. Nil partials are recomputed locally.
func (m *Matrix) ApplyBatchGather(p *ShardPlan, Y, B *mat.Dense, parts [][]float64) error {
	if B.Rows != m.N {
		return fmt.Errorf("core: ApplyBatchGather rows %d want %d", B.Rows, m.N)
	}
	if len(parts) != len(p.Nodes) {
		return fmt.Errorf("core: ApplyBatchGather got %d partials want %d", len(parts), len(p.Nodes))
	}
	k := B.Cols
	ws := m.getWorkspace()
	defer m.putWorkspace(ws)
	ws.check(m, par.Resolve(m.Cfg.Workers))
	ws.ensureBatch(k)
	for row, orig := range m.Tree.Perm {
		copy(ws.bpB.Row(row), B.Row(orig))
	}

	t0 := nowNS()
	for l := m.Tree.Depth() - 1; l >= 0; l-- {
		ws.level = m.Tree.Levels[l]
		ws.forWorker(len(ws.level), ws.bUpFn)
	}
	t1 := nowNS()
	ws.level = p.Coord
	ws.forWorker(len(p.Coord), ws.bCoupSelFn)
	for s, part := range parts {
		if part == nil {
			ws.level = p.Nodes[s]
			ws.forWorker(len(ws.level), ws.bCoupSelFn)
			continue
		}
		if want := m.PartialLen(p.Nodes[s], false) * k; len(part) != want {
			return fmt.Errorf("core: shard %d batch partial length %d want %d", s, len(part), want)
		}
		off := 0
		for _, id := range p.Nodes[s] {
			gi := ws.gB[id].Data
			copy(gi, part[off:off+len(gi)])
			off += len(gi)
		}
	}
	t2 := nowNS()
	for l := 0; l < m.Tree.Depth(); l++ {
		ws.level = m.Tree.Levels[l]
		ws.forWorker(len(ws.level), ws.bDownFn)
	}
	t3 := nowNS()
	ws.forWorker(len(m.Tree.Leaves), ws.bLeafFn)
	m.sweeps.record(t0, t1, t2, t3, nowNS())
	ws.flushCounters()

	Y.Reshape(m.N, k)
	for row, orig := range m.Tree.Perm {
		copy(Y.Row(orig), ws.ypB.Row(row))
	}
	return nil
}
