package core

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"h2ds/internal/kernel"
	"h2ds/internal/oracle"
	"h2ds/internal/pointset"
)

// testGram assembles the dense matrix of kernel name on pts, row-major.
func testGram(t *testing.T, pts *pointset.Points, name string) (kernel.Kernel, []float64) {
	t.Helper()
	k, err := kernel.ByName(name)
	if err != nil {
		t.Fatalf("kernel: %v", err)
	}
	n := pts.Len()
	data := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			data[i*n+j] = k.EvalPair(pts.At(i), pts.At(j))
		}
	}
	return k, data
}

func denseMulVec(n int, data, b []float64) []float64 {
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := data[i*n : (i+1)*n]
		var s float64
		for j, v := range row {
			s += v * b[j]
		}
		y[i] = s
	}
	return y
}

func testRandVec(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func relDiff(a, b []float64) float64 {
	var num, den float64
	for i := range a {
		d := a[i] - b[i]
		num += d * d
		den += b[i] * b[i]
	}
	if den == 0 {
		return math.Sqrt(num)
	}
	return math.Sqrt(num / den)
}

// TestOracleCrossValidation builds the same Gram matrix twice — through the
// kernel path on coordinates and geometry-obliviously through the dense
// entry oracle — at reltol 1e-6, and checks both error certificates land
// under the tolerance and the two applies agree on random vectors to the
// same order.
func TestOracleCrossValidation(t *testing.T) {
	const (
		n      = 700
		reltol = 1e-6
	)
	pts := pointset.Cube(n, 3, 21)
	k, data := testGram(t, pts, "gaussian")
	cfg := Config{Kind: DataDriven, Mode: Normal, RelTol: reltol, LeafSize: 50, Workers: 4}

	mk, err := Build(pts, k, cfg)
	if err != nil {
		t.Fatalf("kernel build: %v", err)
	}
	src, err := oracle.NewDense(n, data, true)
	if err != nil {
		t.Fatal(err)
	}
	mo, err := BuildOracle(src, cfg)
	if err != nil {
		t.Fatalf("oracle build: %v", err)
	}

	if got := mk.Stats().EstRelErr; got > reltol {
		t.Errorf("kernel path certificate %.3e above reltol %g", got, reltol)
	}
	if got := mo.Stats().EstRelErr; got > reltol {
		t.Errorf("oracle path certificate %.3e above reltol %g", got, reltol)
	}

	for trial := int64(0); trial < 3; trial++ {
		b := testRandVec(n, 100+trial)
		yref := denseMulVec(n, data, b)
		yk := mk.Apply(b)
		yo := mo.Apply(b)
		if e := relDiff(yk, yref); e > 10*reltol {
			t.Errorf("trial %d: kernel apply off dense reference by %.3e", trial, e)
		}
		if e := relDiff(yo, yref); e > 10*reltol {
			t.Errorf("trial %d: oracle apply off dense reference by %.3e", trial, e)
		}
		if e := relDiff(yo, yk); e > 20*reltol {
			t.Errorf("trial %d: paths disagree by %.3e", trial, e)
		}
	}
}

// TestOracleKernelLessSerialize checks the v5 stored-block stream: a
// kernel-less matrix round-trips through WriteTo/ReadAny with bitwise-equal
// applies, twice (a replica of a replica stays bitwise equal too), and the
// loaded matrix reports itself kernel-less.
func TestOracleKernelLessSerialize(t *testing.T) {
	const n = 400
	pts := pointset.Cube(n, 3, 33)
	_, data := testGram(t, pts, "gaussian")
	src, _ := oracle.NewDense(n, data, true)
	m, err := BuildOracle(src, Config{Tol: 1e-6, LeafSize: 40, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !m.KernelLess() || !m.HasKernel() {
		t.Fatalf("fresh oracle build: KernelLess=%v HasKernel=%v, want true/true", m.KernelLess(), m.HasKernel())
	}

	b := testRandVec(n, 7)
	y1 := m.Apply(b)

	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	stream := buf.Bytes()
	m2, err := ReadAny(bytes.NewReader(stream))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !m2.KernelLess() || m2.HasKernel() {
		t.Fatalf("loaded: KernelLess=%v HasKernel=%v, want true/false", m2.KernelLess(), m2.HasKernel())
	}
	y2 := m2.Apply(b)
	for i := range y1 {
		if y1[i] != y2[i] {
			t.Fatalf("apply differs at %d after load: %g vs %g", i, y1[i], y2[i])
		}
	}

	// Replica of a replica: the blocks travel verbatim, so the second hop is
	// bitwise identical as well — and so is the re-serialized stream.
	var buf2 bytes.Buffer
	if _, err := m2.WriteTo(&buf2); err != nil {
		t.Fatalf("re-write: %v", err)
	}
	if !bytes.Equal(stream, buf2.Bytes()) {
		t.Fatal("re-serialized kernel-less stream is not byte-identical")
	}
	m3, err := ReadAny(&buf2)
	if err != nil {
		t.Fatalf("re-read: %v", err)
	}
	y3 := m3.Apply(b)
	for i := range y1 {
		if y1[i] != y3[i] {
			t.Fatalf("apply differs at %d after second hop", i)
		}
	}
}

// TestOracleUnsymmetric drives the directed-store path: an unsymmetric
// compressible matrix (a kernel between two different point clouds) built
// through the oracle applies close to the dense reference.
func TestOracleUnsymmetric(t *testing.T) {
	const n = 400
	xs := pointset.Cube(n, 3, 41)
	ys := pointset.Cube(n, 3, 42)
	k, err := kernel.ByName("gaussian")
	if err != nil {
		t.Fatal(err)
	}
	data := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			data[i*n+j] = k.EvalPair(xs.At(i), ys.At(j))
		}
	}
	src, _ := oracle.NewDense(n, data, false)
	m, err := BuildOracle(src, Config{Tol: 1e-8, LeafSize: 40, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	b := testRandVec(n, 9)
	y := m.Apply(b)
	yref := denseMulVec(n, data, b)
	if e := relDiff(y, yref); e > 1e-4 {
		t.Fatalf("unsymmetric oracle apply off dense reference by %.3e", e)
	}
}

// TestOracleBuildRejectsModes: the oracle path is stored-only data-driven;
// everything else errors clearly instead of building something that panics
// at apply or load time.
func TestOracleBuildRejectsModes(t *testing.T) {
	src, _ := oracle.NewDense(2, []float64{2, 1, 1, 2}, true)
	if _, err := BuildOracle(src, Config{Mode: OnTheFly}); err == nil {
		t.Error("on-the-fly accepted")
	}
	if _, err := BuildOracle(src, Config{Mode: Hybrid}); err == nil {
		t.Error("hybrid accepted")
	}
	if _, err := BuildOracle(src, Config{Kind: Interpolation}); err == nil {
		t.Error("interpolation accepted")
	}
	if _, err := BuildOracle(nil, Config{}); err == nil {
		t.Error("nil source accepted")
	}
}

// TestKernelLessHybridWriteRejected: derived hybrid views of an oracle build
// cannot serialize (their apply would need the oracle after load).
func TestKernelLessHybridWriteRejected(t *testing.T) {
	const n = 300
	pts := pointset.Cube(n, 3, 55)
	_, data := testGram(t, pts, "gaussian")
	src, _ := oracle.NewDense(n, data, true)
	m, err := BuildOracle(src, Config{Tol: 1e-5, LeafSize: 40, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	h := m.WithStorageBudget(1024)
	if _, err := h.WriteTo(&bytes.Buffer{}); err == nil {
		t.Fatal("hybrid kernel-less stream accepted")
	}
}
