package core

import (
	"sync/atomic"
	"time"
)

// sweepEpoch anchors the monotonic sweep-stage timestamps.
var sweepEpoch = time.Now()

// nowNS returns a monotonic nanosecond timestamp for the sweep timers. One
// call is ~tens of nanoseconds; an apply takes five, which is noise against
// even the smallest sweep.
func nowNS() int64 { return int64(time.Since(sweepEpoch)) }

// sweepTimers accumulates cumulative per-stage wall time across every apply
// (vector, transpose, and batch) of a Matrix. Concurrent applies each add
// their own stage durations, so under concurrency the sums can exceed wall
// time — they are CPU-style cumulative stage costs, intended for relative
// stage breakdowns (the serve layer's /stats endpoint reports them).
type sweepTimers struct {
	applies  atomic.Int64
	up       atomic.Int64
	coupling atomic.Int64
	down     atomic.Int64
	leaf     atomic.Int64

	// On-the-fly instrumentation: cumulative nanoseconds spent in fused
	// block evaluation (the former assemble-then-multiply cost), and hybrid
	// store hit/miss counts. Workers accumulate into padded per-worker
	// counters during a sweep and flush here once per apply, so the hot
	// path performs no atomic operations per block.
	otfAssembly  atomic.Int64
	hybridHits   atomic.Int64
	hybridMisses atomic.Int64
}

// record credits one apply given the five stage boundary timestamps.
func (t *sweepTimers) record(t0, t1, t2, t3, t4 int64) {
	t.applies.Add(1)
	t.up.Add(t1 - t0)
	t.coupling.Add(t2 - t1)
	t.down.Add(t3 - t2)
	t.leaf.Add(t4 - t3)
}

// recordStages credits per-stage durations measured task-by-task under the
// barrier-free scheduler (cumulative across workers, so the four stage sums
// are CPU time, consistent with the documented semantics under concurrency).
// Each total lands with one atomic add per stage; the apply itself is
// counted separately by the scheduled path.
func (t *sweepTimers) recordStages(up, coupling, down, leaf int64) {
	t.up.Add(up)
	t.coupling.Add(coupling)
	t.down.Add(down)
	t.leaf.Add(leaf)
}

// SweepStats is a snapshot of the cumulative per-stage sweep timings: how
// the matvec time splits across the upward (leaf projection + bottom-to-top
// transfer), coupling, downward (top-to-bottom transfer), and leaf
// (expansion + nearfield) stages of Algorithm 2.
type SweepStats struct {
	Applies    int64 `json:"applies"`
	UpNS       int64 `json:"up_ns"`
	CouplingNS int64 `json:"coupling_ns"`
	DownNS     int64 `json:"down_ns"`
	LeafNS     int64 `json:"leaf_ns"`

	// OtfAssemblyNS is the cumulative time spent evaluating coupling and
	// nearfield blocks on the fly (fused kernel evaluation); zero in
	// Normal mode. HybridHits/HybridMisses count block applications served
	// from the hybrid store versus evaluated on the fly; zero outside
	// Hybrid mode.
	OtfAssemblyNS int64 `json:"otf_assembly_ns"`
	HybridHits    int64 `json:"hybrid_hits"`
	HybridMisses  int64 `json:"hybrid_misses"`
}

// SweepStats returns the cumulative stage timings recorded since the matrix
// was built. Safe for concurrent use.
func (m *Matrix) SweepStats() SweepStats {
	return SweepStats{
		Applies:       m.sweeps.applies.Load(),
		UpNS:          m.sweeps.up.Load(),
		CouplingNS:    m.sweeps.coupling.Load(),
		DownNS:        m.sweeps.down.Load(),
		LeafNS:        m.sweeps.leaf.Load(),
		OtfAssemblyNS: m.sweeps.otfAssembly.Load(),
		HybridHits:    m.sweeps.hybridHits.Load(),
		HybridMisses:  m.sweeps.hybridMisses.Load(),
	}
}
