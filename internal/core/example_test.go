package core_test

import (
	"fmt"
	"math/rand"

	"h2ds/internal/core"
	"h2ds/internal/kernel"
	"h2ds/internal/pointset"
	"h2ds/internal/solver"
)

// ExampleBuild shows the standard workflow: construct a data-driven H²
// matrix in on-the-fly mode, apply it, and check the accuracy with the
// 12-row estimator.
func ExampleBuild() {
	pts := pointset.Cube(3000, 3, 1)
	m, err := core.Build(pts, kernel.Coulomb{}, core.Config{
		Kind: core.DataDriven,
		Mode: core.OnTheFly,
		Tol:  1e-6,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	rng := rand.New(rand.NewSource(2))
	b := make([]float64, 3000)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	y := m.Apply(b)
	relErr := m.RelErrorVs(b, y, core.DefaultErrorRows, 3)
	fmt.Println("error below 1e-5:", relErr < 1e-5)
	fmt.Println("stores coupling blocks:", m.Memory().Coupling > 0)
	// Output:
	// error below 1e-5: true
	// stores coupling blocks: false
}

// ExampleMatrix_BlockJacobi solves a regularized kernel system with
// preconditioned conjugate gradients on the H² operator.
func ExampleMatrix_BlockJacobi() {
	pts := pointset.Cube(2000, 3, 4)
	m, err := core.Build(pts, kernel.Gaussian{Scale: 0.5}, core.Config{
		Kind: core.DataDriven,
		Mode: core.Normal, // many matvecs ahead: store the blocks
		Tol:  1e-7,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	const sigma = 1.0
	pre, err := m.BlockJacobi(sigma)
	if err != nil {
		fmt.Println(err)
		return
	}
	rng := rand.New(rand.NewSource(5))
	b := make([]float64, 2000)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	res := solver.PCG(solver.Shifted{Op: m, Sigma: sigma}, pre, b, 1e-8, 400)
	fmt.Println("converged:", res.Converged)
	// Output:
	// converged: true
}
