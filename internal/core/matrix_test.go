package core

import (
	"math"
	"math/rand"
	"testing"

	"h2ds/internal/kernel"
	"h2ds/internal/pointset"
	"h2ds/internal/sample"
)

// randVec returns a deterministic random vector of length n.
func randVec(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// relErr returns ||y-want|| / ||want||.
func relErr(y, want []float64) float64 {
	num, den := 0.0, 0.0
	for i := range y {
		d := y[i] - want[i]
		num += d * d
		den += want[i] * want[i]
	}
	if den == 0 {
		return math.Sqrt(num)
	}
	return math.Sqrt(num / den)
}

func TestAccuracyMatchesToleranceDataDriven(t *testing.T) {
	pts := pointset.Cube(2000, 3, 1)
	b := randVec(2000, 2)
	want := DirectApply(pts, kernel.Coulomb{}, b, 0)
	for _, tol := range []float64{1e-4, 1e-6, 1e-8} {
		m, err := Build(pts, kernel.Coulomb{}, Config{Kind: DataDriven, Tol: tol, LeafSize: 100})
		if err != nil {
			t.Fatal(err)
		}
		e := relErr(m.Apply(b), want)
		if e > 10*tol {
			t.Fatalf("tol %g: relative error %g", tol, e)
		}
	}
}

func TestAccuracyMatchesToleranceInterpolation(t *testing.T) {
	pts := pointset.Cube(1500, 3, 3)
	b := randVec(1500, 4)
	want := DirectApply(pts, kernel.Coulomb{}, b, 0)
	for _, tol := range []float64{1e-3, 1e-6} {
		m, err := Build(pts, kernel.Coulomb{}, Config{Kind: Interpolation, Tol: tol, LeafSize: 100})
		if err != nil {
			t.Fatal(err)
		}
		e := relErr(m.Apply(b), want)
		if e > 10*tol {
			t.Fatalf("tol %g: relative error %g", tol, e)
		}
	}
}

func TestAccuracyAllKernels(t *testing.T) {
	pts := pointset.Cube(1200, 3, 5)
	b := randVec(1200, 6)
	for _, k := range []kernel.Kernel{kernel.Coulomb{}, kernel.CoulombCubed{}, kernel.Exponential{}, kernel.Gaussian{Scale: 0.1}} {
		want := DirectApply(pts, k, b, 0)
		m, err := Build(pts, k, Config{Kind: DataDriven, Mode: OnTheFly, Tol: 1e-7, LeafSize: 80})
		if err != nil {
			t.Fatal(err)
		}
		e := relErr(m.Apply(b), want)
		if e > 1e-6 {
			t.Fatalf("%s: relative error %g", k.Name(), e)
		}
	}
}

func TestAccuracyDistributions(t *testing.T) {
	for _, tc := range []struct {
		name string
		pts  *pointset.Points
	}{
		{"sphere", pointset.Sphere(1500, 7)},
		{"dino", pointset.Dino(1500, 8)},
		{"annulus2d", pointset.Annulus(1200, 0.2, 1, 9)},
	} {
		b := randVec(tc.pts.Len(), 10)
		want := DirectApply(tc.pts, kernel.Coulomb{}, b, 0)
		m, err := Build(tc.pts, kernel.Coulomb{}, Config{Kind: DataDriven, Mode: OnTheFly, Tol: 1e-6, LeafSize: 60})
		if err != nil {
			t.Fatal(err)
		}
		e := relErr(m.Apply(b), want)
		if e > 1e-5 {
			t.Fatalf("%s: relative error %g", tc.name, e)
		}
	}
}

func TestAccuracyHighDimensions(t *testing.T) {
	// The data-driven method's selling point: it keeps working beyond 3-D.
	for _, d := range []int{4, 5} {
		pts := pointset.Cube(1500, d, int64(d))
		b := randVec(1500, 11)
		want := DirectApply(pts, kernel.Gaussian{Scale: 0.5}, b, 0)
		m, err := Build(pts, kernel.Gaussian{Scale: 0.5}, Config{Kind: DataDriven, Mode: OnTheFly, Tol: 1e-6, LeafSize: 100})
		if err != nil {
			t.Fatal(err)
		}
		e := relErr(m.Apply(b), want)
		if e > 1e-5 {
			t.Fatalf("d=%d: relative error %g", d, e)
		}
	}
}

func TestOnTheFlyMatchesNormal(t *testing.T) {
	pts := pointset.Cube(2500, 3, 13)
	b := randVec(2500, 14)
	for _, kind := range []BasisKind{DataDriven, Interpolation} {
		tol := 1e-6
		normal, err := Build(pts, kernel.Coulomb{}, Config{Kind: kind, Mode: Normal, Tol: tol, LeafSize: 100})
		if err != nil {
			t.Fatal(err)
		}
		otf, err := Build(pts, kernel.Coulomb{}, Config{Kind: kind, Mode: OnTheFly, Tol: tol, LeafSize: 100})
		if err != nil {
			t.Fatal(err)
		}
		yn := normal.Apply(b)
		yo := otf.Apply(b)
		// Same generators, same blocks; only accumulation order differs for
		// transposed stored blocks, so agreement is to roundoff.
		if e := relErr(yo, yn); e > 1e-13 {
			t.Fatalf("%v: OTF vs normal differ by %g", kind, e)
		}
	}
}

func TestParallelMatchesSerialBitwise(t *testing.T) {
	pts := pointset.Dino(3000, 15)
	b := randVec(3000, 16)
	m1, err := Build(pts, kernel.Coulomb{}, Config{Kind: DataDriven, Mode: OnTheFly, Tol: 1e-6, Workers: 1, LeafSize: 90})
	if err != nil {
		t.Fatal(err)
	}
	m4, err := Build(pts, kernel.Coulomb{}, Config{Kind: DataDriven, Mode: OnTheFly, Tol: 1e-6, Workers: 4, LeafSize: 90})
	if err != nil {
		t.Fatal(err)
	}
	y1 := m1.Apply(b)
	y4 := m4.Apply(b)
	for i := range y1 {
		if y1[i] != y4[i] {
			t.Fatalf("worker-count changed result at %d: %g vs %g", i, y1[i], y4[i])
		}
	}
	// Also: the same matrix applied with different worker settings must be
	// bitwise identical (each output slot has a fixed accumulation order).
	m4.Cfg.Workers = 1
	y4b := m4.Apply(b)
	m4.Cfg.Workers = 4
	y4c := m4.Apply(b)
	for i := range y4b {
		if y4b[i] != y4c[i] {
			t.Fatalf("matvec not deterministic across worker counts at %d", i)
		}
	}
}

func TestLinearityProperty(t *testing.T) {
	pts := pointset.Cube(1000, 3, 17)
	m, err := Build(pts, kernel.Exponential{}, Config{Kind: DataDriven, Tol: 1e-7, LeafSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	x := randVec(1000, 18)
	y := randVec(1000, 19)
	alpha := 0.37
	xy := make([]float64, 1000)
	for i := range xy {
		xy[i] = alpha*x[i] + y[i]
	}
	lhs := m.Apply(xy)
	ax := m.Apply(x)
	ay := m.Apply(y)
	for i := range lhs {
		want := alpha*ax[i] + ay[i]
		if math.Abs(lhs[i]-want) > 1e-10*(1+math.Abs(want)) {
			t.Fatalf("linearity violated at %d: %g vs %g", i, lhs[i], want)
		}
	}
}

func TestSymmetryProperty(t *testing.T) {
	// For a symmetric kernel, xᵀ(Ây) == yᵀ(Âx) up to the approximation's
	// own asymmetry, which is bounded by the construction tolerance.
	pts := pointset.Sphere(1200, 20)
	m, err := Build(pts, kernel.Coulomb{}, Config{Kind: DataDriven, Tol: 1e-8, LeafSize: 80})
	if err != nil {
		t.Fatal(err)
	}
	x := randVec(1200, 21)
	y := randVec(1200, 22)
	ax := m.Apply(x)
	ay := m.Apply(y)
	dot := func(a, b []float64) float64 {
		s := 0.0
		for i := range a {
			s += a[i] * b[i]
		}
		return s
	}
	lhs, rhs := dot(x, ay), dot(y, ax)
	scale := math.Abs(lhs) + math.Abs(rhs)
	if math.Abs(lhs-rhs) > 1e-7*scale {
		t.Fatalf("symmetry violated: %g vs %g", lhs, rhs)
	}
}

func TestDataDrivenRanksBelowInterpolation(t *testing.T) {
	// The paper's Fig 2: same accuracy, lower data-driven ranks.
	pts := pointset.Cube(2000, 3, 23)
	tol := 1e-7
	dd, err := Build(pts, kernel.Coulomb{}, Config{Kind: DataDriven, Tol: tol, LeafSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	ip, err := Build(pts, kernel.Coulomb{}, Config{Kind: Interpolation, Tol: tol, LeafSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	if dd.Stats().MaxRank >= ip.Stats().MaxRank {
		t.Fatalf("data-driven max rank %d not below interpolation %d", dd.Stats().MaxRank, ip.Stats().MaxRank)
	}
	if dd.Stats().SumLeafRank >= ip.Stats().SumLeafRank {
		t.Fatalf("data-driven total leaf rank %d not below interpolation %d",
			dd.Stats().SumLeafRank, ip.Stats().SumLeafRank)
	}
}

func TestMemoryStats(t *testing.T) {
	pts := pointset.Cube(3000, 3, 24)
	tol := 1e-6
	normal, err := Build(pts, kernel.Coulomb{}, Config{Kind: DataDriven, Mode: Normal, Tol: tol, Workers: 2, LeafSize: 60})
	if err != nil {
		t.Fatal(err)
	}
	otf, err := Build(pts, kernel.Coulomb{}, Config{Kind: DataDriven, Mode: OnTheFly, Tol: tol, Workers: 2, LeafSize: 60})
	if err != nil {
		t.Fatal(err)
	}
	mn := normal.Memory()
	mo := otf.Memory()
	if mn.Coupling <= 0 || mn.Nearfield <= 0 {
		t.Fatalf("normal mode must store blocks: %+v", mn)
	}
	if mo.Coupling != 0 || mo.Nearfield != 0 {
		t.Fatalf("on-the-fly mode must not store blocks: %+v", mo)
	}
	if mo.ScratchPerWorker <= 0 || mo.Workers != 2 {
		t.Fatalf("on-the-fly scratch accounting wrong: %+v", mo)
	}
	if mo.Total() >= mn.Total() {
		t.Fatalf("OTF total %d not below normal total %d", mo.Total(), mn.Total())
	}
	if mn.KiB() <= 0 {
		t.Fatal("KiB must be positive")
	}
	if mn.String() == "" || mo.String() == "" {
		t.Fatal("String must render")
	}
	// The scratch bound must cover the largest stored block of the
	// equivalent normal build.
	if mo.ScratchPerWorker < normal.near.MaxBlockBytes() && mo.ScratchPerWorker < normal.coup.MaxBlockBytes() {
		t.Fatalf("scratch bound %d below both max stored blocks (%d near, %d coup)",
			mo.ScratchPerWorker, normal.near.MaxBlockBytes(), normal.coup.MaxBlockBytes())
	}
}

func TestErrorEstimatorTracksTrueError(t *testing.T) {
	pts := pointset.Cube(1500, 3, 25)
	b := randVec(1500, 26)
	m, err := Build(pts, kernel.Coulomb{}, Config{Kind: DataDriven, Tol: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	y := m.Apply(b)
	want := DirectApply(pts, kernel.Coulomb{}, b, 0)
	trueErr := relErr(y, want)
	est := m.RelErrorVs(b, y, 64, 1)
	if est > 100*trueErr+1e-14 || trueErr > 100*est+1e-14 {
		t.Fatalf("estimator %g far from true %g", est, trueErr)
	}
	est2 := m.EstimateRelError(b, DefaultErrorRows, 2)
	if est2 > 1e-4 {
		t.Fatalf("EstimateRelError %g unexpectedly large", est2)
	}
}

func TestSingleLeafTree(t *testing.T) {
	// n <= LeafSize: the whole matrix is one nearfield block and the
	// product must be exact to machine precision.
	pts := pointset.Cube(50, 3, 27)
	b := randVec(50, 28)
	for _, mode := range []MemoryMode{Normal, OnTheFly} {
		m, err := Build(pts, kernel.Coulomb{}, Config{Kind: DataDriven, Mode: mode, LeafSize: 100})
		if err != nil {
			t.Fatal(err)
		}
		want := DirectApply(pts, kernel.Coulomb{}, b, 0)
		if e := relErr(m.Apply(b), want); e > 1e-13 {
			t.Fatalf("mode %v: single-leaf error %g", mode, e)
		}
		if m.Stats().InteractionBlocks != 0 {
			t.Fatal("single leaf cannot have interaction blocks")
		}
	}
}

func TestBuildRejectsEmpty(t *testing.T) {
	if _, err := Build(pointset.New(0, 3), kernel.Coulomb{}, Config{}); err == nil {
		t.Fatal("expected error for empty point set")
	}
	if _, err := Build(pointset.Cube(10, 2, 1), kernel.Coulomb{}, Config{Kind: BasisKind(99)}); err == nil {
		t.Fatal("expected error for unknown basis kind")
	}
}

func TestApplyShapePanics(t *testing.T) {
	pts := pointset.Cube(100, 3, 29)
	m, err := Build(pts, kernel.Coulomb{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	m.ApplyTo(make([]float64, 99), make([]float64, 100))
}

func TestSamplerChoicesAllWork(t *testing.T) {
	pts := pointset.Cube(1200, 3, 30)
	b := randVec(1200, 31)
	want := DirectApply(pts, kernel.Coulomb{}, b, 0)
	for _, s := range []sample.Sampler{sample.AnchorNet{}, sample.FarthestPoint{}, sample.Random{Seed: 5}} {
		m, err := Build(pts, kernel.Coulomb{}, Config{Kind: DataDriven, Tol: 1e-6, Sampler: s})
		if err != nil {
			t.Fatal(err)
		}
		if e := relErr(m.Apply(b), want); e > 1e-4 {
			t.Fatalf("sampler %s: error %g", s.Name(), e)
		}
	}
}

func TestNodeRanksAndSkeletons(t *testing.T) {
	pts := pointset.Cube(1000, 3, 32)
	m, err := Build(pts, kernel.Coulomb{}, Config{Kind: DataDriven, Tol: 1e-6, LeafSize: 60})
	if err != nil {
		t.Fatal(err)
	}
	ranks := m.NodeRanks()
	if len(ranks) != len(m.Tree.Nodes) {
		t.Fatal("NodeRanks length mismatch")
	}
	for id := range m.Tree.Nodes {
		if ranks[id] != m.Rank(id) {
			t.Fatal("NodeRanks disagrees with Rank")
		}
		sk := m.Skeleton(id)
		if len(sk) != ranks[id] {
			t.Fatalf("node %d: skeleton size %d != rank %d", id, len(sk), ranks[id])
		}
		// Data-driven skeletons must be points owned by the node.
		nd := &m.Tree.Nodes[id]
		for _, s := range sk {
			if s < nd.Start || s >= nd.End {
				t.Fatalf("node %d skeleton point %d outside [%d,%d)", id, s, nd.Start, nd.End)
			}
		}
	}
}

func TestNestedBasisConsistency(t *testing.T) {
	// For every internal node p with children c1, c2: the stacked transfer
	// rows must be conformal ((r_c1 + r_c2) x r_p) and the parent skeleton
	// must be a subset of the children skeleton union.
	pts := pointset.Cube(2000, 3, 33)
	m, err := Build(pts, kernel.Coulomb{}, Config{Kind: DataDriven, Tol: 1e-6, LeafSize: 80})
	if err != nil {
		t.Fatal(err)
	}
	for id := range m.Tree.Nodes {
		nd := &m.Tree.Nodes[id]
		if nd.IsLeaf {
			if m.u[id] == nil || m.u[id].Rows != nd.Size() || m.u[id].Cols != m.ranks[id] {
				t.Fatalf("leaf %d basis shape wrong", id)
			}
			continue
		}
		sum := 0
		inChildSkel := map[int]bool{}
		for _, c := range nd.Children {
			sum += m.ranks[c]
			for _, s := range m.skel[c] {
				inChildSkel[s] = true
			}
		}
		if m.trans[id] == nil || m.trans[id].Rows != sum || m.trans[id].Cols != m.ranks[id] {
			t.Fatalf("internal %d transfer shape %dx%d want %dx%d",
				id, m.trans[id].Rows, m.trans[id].Cols, sum, m.ranks[id])
		}
		for _, s := range m.skel[id] {
			if !inChildSkel[s] {
				t.Fatalf("internal %d skeleton point %d not in children skeletons", id, s)
			}
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults(3)
	if cfg.Tol != 1e-8 || cfg.LeafSize <= 0 || cfg.Eta != 0.7 || cfg.Sampler == nil {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
	if cfg.P <= 0 || cfg.SampleBudget <= 0 {
		t.Fatalf("derived parameters missing: %+v", cfg)
	}
	if DefaultSampleBudget(1e-2, 3) >= DefaultSampleBudget(1e-10, 3) {
		t.Fatal("budget must grow with accuracy")
	}
	if DefaultSampleBudget(1e-6, 3) >= DefaultSampleBudget(1e-6, 6) {
		t.Fatal("budget must grow with dimension")
	}
	if DefaultSampleBudget(0, 3) != DefaultSampleBudget(1e-8, 3) {
		t.Fatal("tol<=0 must default")
	}
	if BasisKind(7).String() == "" || MemoryMode(7).String() == "" {
		t.Fatal("String must render unknown values")
	}
}

func TestBuildStatsPopulated(t *testing.T) {
	pts := pointset.Cube(2000, 3, 34)
	m, err := Build(pts, kernel.Coulomb{}, Config{Kind: DataDriven, Mode: Normal, Tol: 1e-6, LeafSize: 60})
	if err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Total <= 0 || st.TreeTime <= 0 || st.SampleTime <= 0 || st.BasisTime <= 0 || st.CouplingTime <= 0 {
		t.Fatalf("timings not populated: %+v", st)
	}
	if st.Nodes == 0 || st.Leaves == 0 || st.Depth == 0 || st.MaxRank == 0 {
		t.Fatalf("counters not populated: %+v", st)
	}
	if st.InteractionBlocks == 0 || st.NearBlocks == 0 {
		t.Fatalf("block counts not populated: %+v", st)
	}
}
