package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"h2ds/internal/interp"
	"h2ds/internal/kernel"
	"h2ds/internal/mat"
	"h2ds/internal/par"
	"h2ds/internal/pointset"
	"h2ds/internal/sample"
	"h2ds/internal/tree"
)

// Serialization lets a constructed H² matrix be persisted and reloaded —
// construction is the expensive phase (paper §I-A), so saving the
// generators extends the amortization story across processes. The format
// stores the tree, permutation, per-node generators, skeleton indices, and
// sampling hierarchy; stored coupling/nearfield blocks (normal mode) are
// re-assembled from the kernel at load time, since they are pure kernel
// submatrices.

// serialMagic identifies the file format; serialVersion is bumped on any
// incompatible change. Version 2 added Config.StorageBudget (hybrid mode);
// version 3 added Config.RelTol and the a-posteriori error estimate of
// error-controlled builds (per-level ranks are recomputed from the per-node
// ranks at load); version 4 appended an integrity footer (magic + CRC32-IEEE
// of every preceding byte) so spill rehydration and cluster replication
// transfers detect torn or corrupted payloads instead of mis-deserializing;
// version 5 added a stored-block section for kernel-less matrices (entry
// oracles, internal/oracle): their coupling/nearfield blocks are data the
// load side cannot re-derive, so they travel in the stream verbatim.
// Versions 1–4 are still readable; they imply zero budget / fixed-parameter
// build / no checksum verification / no stored-block section respectively.
const (
	serialMagic       = "H2DS"
	serialFooterMagic = "H2CK"
	serialVersion     = uint32(5)
	serialVersionMin  = uint32(1)
)

// crcWriter tees everything written through it into a running CRC32-IEEE.
// It sits between the buffered serializer and the destination so the footer
// checksum covers the exact bytes that reach the stream.
type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p[:n])
	return n, err
}

// crcReader mirrors crcWriter on the load side: every body byte the
// deserializer consumes updates the running checksum. The footer itself is
// read from the underlying buffered reader, bypassing the checksum.
type crcReader struct {
	r   io.Reader
	crc uint32
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p[:n])
	return n, err
}

type serialWriter struct {
	w   *bufio.Writer
	n   int64
	err error
}

func (s *serialWriter) write(v any) {
	if s.err != nil {
		return
	}
	s.err = binary.Write(s.w, binary.LittleEndian, v)
	if s.err == nil {
		s.n += int64(binary.Size(v))
	}
}

func (s *serialWriter) writeI64(v int) { s.write(int64(v)) }

func (s *serialWriter) writeString(v string) {
	s.writeI64(len(v))
	if s.err != nil {
		return
	}
	var n int
	n, s.err = s.w.WriteString(v)
	s.n += int64(n)
}

func (s *serialWriter) writeIntSlice(v []int) {
	s.writeI64(len(v))
	for _, x := range v {
		s.writeI64(x)
	}
}

func (s *serialWriter) writeF64Slice(v []float64) {
	s.writeI64(len(v))
	if s.err != nil || len(v) == 0 {
		return
	}
	s.write(v)
}

func (s *serialWriter) writeDense(d *mat.Dense) {
	if d == nil {
		s.writeI64(-1)
		return
	}
	s.writeI64(d.Rows)
	s.writeI64(d.Cols)
	s.writeF64Slice(d.Data)
}

type serialReader struct {
	// r delivers body bytes through the checksum; br is the underlying
	// buffered reader the footer is read from directly.
	r   io.Reader
	br  *bufio.Reader
	crc *crcReader
	err error
}

func newSerialReader(r io.Reader) *serialReader {
	br := bufio.NewReader(r)
	cr := &crcReader{r: br}
	return &serialReader{r: cr, br: br, crc: cr}
}

// verifyFooter consumes the version-4 integrity footer and compares it with
// the checksum accumulated over every body byte read so far.
func (s *serialReader) verifyFooter() error {
	if s.err != nil {
		return s.err
	}
	sum := s.crc.crc
	var foot [8]byte
	if _, err := io.ReadFull(s.br, foot[:]); err != nil {
		return fmt.Errorf("core: truncated stream: missing checksum footer: %w", err)
	}
	if string(foot[:4]) != serialFooterMagic {
		return fmt.Errorf("core: corrupt stream: bad checksum footer magic %q", foot[:4])
	}
	if stored := binary.LittleEndian.Uint32(foot[4:]); stored != sum {
		return fmt.Errorf("core: corrupt stream: checksum mismatch (stored %08x computed %08x)", stored, sum)
	}
	return nil
}

func (s *serialReader) read(v any) {
	if s.err != nil {
		return
	}
	s.err = binary.Read(s.r, binary.LittleEndian, v)
}

func (s *serialReader) readI64() int {
	var v int64
	s.read(&v)
	return int(v)
}

// maxSliceLen guards against corrupt headers allocating absurd amounts.
const maxSliceLen = 1 << 33

func (s *serialReader) checkLen(n int) bool {
	if s.err != nil {
		return false
	}
	if n < 0 || int64(n) > maxSliceLen {
		s.err = fmt.Errorf("core: corrupt stream (length %d)", n)
		return false
	}
	return true
}

func (s *serialReader) readString() string {
	n := s.readI64()
	if !s.checkLen(n) {
		return ""
	}
	buf := make([]byte, n)
	if s.err == nil {
		_, s.err = io.ReadFull(s.r, buf)
	}
	return string(buf)
}

func (s *serialReader) readIntSlice() []int {
	n := s.readI64()
	if !s.checkLen(n) {
		return nil
	}
	v := make([]int, n)
	for i := range v {
		v[i] = s.readI64()
	}
	return v
}

func (s *serialReader) readF64Slice() []float64 {
	n := s.readI64()
	if !s.checkLen(n) {
		return nil
	}
	v := make([]float64, n)
	if n > 0 {
		s.read(v)
	}
	return v
}

func (s *serialReader) readDense() *mat.Dense {
	rows := s.readI64()
	if rows == -1 {
		return nil
	}
	cols := s.readI64()
	data := s.readF64Slice()
	if s.err != nil {
		return nil
	}
	if len(data) != rows*cols {
		s.err = fmt.Errorf("core: corrupt dense block %dx%d with %d values", rows, cols, len(data))
		return nil
	}
	return mat.NewDenseData(rows, cols, data)
}

// writeBlockStore serializes a frozen store's compact CSR form: the index
// arrays, per-block shapes, and the contiguous payload slab. Only frozen
// stores are serialized (construction completes before WriteTo).
func writeBlockStore(s *serialWriter, bs *BlockStore) {
	if bs == nil || !bs.frozen.Load() || bs.rowPtr == nil {
		s.write(false)
		return
	}
	s.write(true)
	s.write(bs.directed)
	s.writeI64(len(bs.rowPtr))
	for _, v := range bs.rowPtr {
		s.writeI64(int(v))
	}
	s.writeI64(len(bs.hdr))
	for k := range bs.hdr {
		s.writeI64(int(bs.colIdx[k]))
		s.writeI64(bs.hdr[k].Rows)
		s.writeI64(bs.hdr[k].Cols)
	}
	s.writeF64Slice(bs.slab)
}

// readBlockStore reconstructs a frozen store from writeBlockStore's layout,
// re-aliasing each block header into the single payload slab exactly as
// Freeze's compaction does.
func readBlockStore(s *serialReader) *BlockStore {
	var present bool
	s.read(&present)
	if s.err != nil || !present {
		return nil
	}
	bs := &BlockStore{}
	s.read(&bs.directed)
	nRows := s.readI64()
	if !s.checkLen(nRows) {
		return nil
	}
	bs.rowPtr = make([]int32, nRows)
	for i := range bs.rowPtr {
		bs.rowPtr[i] = int32(s.readI64())
	}
	nBlocks := s.readI64()
	if !s.checkLen(nBlocks) {
		return nil
	}
	bs.colIdx = make([]int32, nBlocks)
	bs.hdr = make([]mat.Dense, nBlocks)
	var need int64
	var maxBlk int64
	for k := 0; k < nBlocks; k++ {
		bs.colIdx[k] = int32(s.readI64())
		rows, cols := s.readI64(), s.readI64()
		if s.err != nil {
			return nil
		}
		if rows < 0 || cols < 0 || int64(rows)*int64(cols) > maxSliceLen {
			s.err = fmt.Errorf("core: corrupt stored block %dx%d", rows, cols)
			return nil
		}
		bs.hdr[k] = mat.Dense{Rows: rows, Cols: cols}
		need += int64(rows) * int64(cols)
		if bb := int64(rows) * int64(cols) * 8; bb > maxBlk {
			maxBlk = bb
		}
	}
	bs.slab = s.readF64Slice()
	if s.err != nil {
		return nil
	}
	if int64(len(bs.slab)) != need || (nRows == 0 && nBlocks > 0) ||
		(nRows > 0 && int(bs.rowPtr[nRows-1]) != nBlocks) {
		s.err = fmt.Errorf("core: corrupt block store section (%d blocks, slab %d, need %d)", nBlocks, len(bs.slab), need)
		return nil
	}
	var off int64
	for k := 0; k < nBlocks; k++ {
		sz := int64(bs.hdr[k].Rows) * int64(bs.hdr[k].Cols)
		bs.hdr[k].Data = bs.slab[off : off+sz]
		off += sz
	}
	bs.frozenBytes = need*8 + int64(len(bs.hdr))*40 + int64(len(bs.rowPtr)+len(bs.colIdx))*4
	bs.frozenMaxBlk = maxBlk
	bs.frozen.Store(true)
	return bs
}

// WriteTo serializes the matrix generators (not the kernel, which is code).
// Kernel-less matrices (built through an entry oracle; Name() == "") also
// carry their stored coupling/nearfield blocks, since the load side has no
// kernel to re-assemble them from; they must be in Normal mode — the only
// mode whose apply never evaluates fresh entries.
// It implements io.WriterTo.
func (m *Matrix) WriteTo(w io.Writer) (int64, error) {
	kernelLess := m.Kern.Name() == ""
	if kernelLess && (m.Cfg.Mode != Normal || m.coup == nil || m.near == nil) {
		return 0, fmt.Errorf("core: kernel-less matrix must be in normal mode with stored blocks to serialize (mode %v)", m.Cfg.Mode)
	}
	cw := &crcWriter{w: w}
	s := &serialWriter{w: bufio.NewWriter(cw)}
	s.writeString(serialMagic)
	s.write(serialVersion)
	s.writeString(m.Kern.Name())

	// Configuration subset needed to reconstruct behavior.
	s.write(uint8(m.Cfg.Kind))
	s.write(uint8(m.Cfg.Mode))
	s.write(m.Cfg.Tol)
	s.writeI64(m.Cfg.LeafSize)
	s.write(m.Cfg.Eta)
	s.writeI64(m.Cfg.SampleBudget)
	s.writeI64(m.Cfg.P)
	s.write(m.Cfg.StorageBudget)
	s.write(m.Cfg.RelTol)
	s.write(m.stats.EstRelErr)
	s.write(m.sharedBasis)
	s.writeI64(m.N)
	s.writeI64(m.Dim)

	// Tree.
	t := m.Tree
	s.writeF64Slice(t.Points.Coords)
	s.writeIntSlice(t.Perm)
	s.writeI64(t.LeafSize)
	s.write(t.Eta)
	s.writeI64(len(t.Nodes))
	for i := range t.Nodes {
		nd := &t.Nodes[i]
		s.writeI64(nd.Parent)
		s.writeI64(nd.Level)
		s.writeI64(nd.Start)
		s.writeI64(nd.End)
		s.write(nd.IsLeaf)
		s.writeIntSlice(nd.Children)
		s.writeIntSlice(nd.Interaction)
		s.writeIntSlice(nd.Near)
		s.writeF64Slice(nd.Box.Min)
		s.writeF64Slice(nd.Box.Max)
	}

	// Generators.
	for id := range t.Nodes {
		s.writeI64(m.ranks[id])
		s.writeIntSlice(m.skel[id])
		s.writeDense(m.u[id])
		s.writeDense(m.trans[id])
		if !m.sharedBasis {
			s.writeI64(m.colRanks[id])
			s.writeIntSlice(m.colSkel[id])
			s.writeDense(m.v[id])
			s.writeDense(m.wTrans[id])
		}
	}

	// Sampling hierarchy (data-driven only).
	if m.hier != nil {
		s.write(true)
		for id := range t.Nodes {
			s.writeIntSlice(m.hier.XStar[id])
			s.writeIntSlice(m.hier.YStar[id])
		}
	} else {
		s.write(false)
	}

	// Version 5: kernel-less matrices ship their frozen block stores
	// verbatim — the payload is oracle data the reader cannot recompute, and
	// shipping the exact slabs makes a save/load round trip (and therefore
	// every cluster replica) bitwise-identical in apply.
	if kernelLess {
		s.write(uint8(1))
		s.write(m.Kern.Symmetric())
		writeBlockStore(s, m.coup)
		writeBlockStore(s, m.near)
	} else {
		s.write(uint8(0))
	}

	if s.err == nil {
		s.err = s.w.Flush()
	}
	if s.err == nil {
		// The footer goes to the raw destination: the checksum covers every
		// byte before it, and the footer itself stays outside the sum.
		var foot [8]byte
		copy(foot[:4], serialFooterMagic)
		binary.LittleEndian.PutUint32(foot[4:], cw.crc)
		var n int
		n, s.err = w.Write(foot[:])
		s.n += int64(n)
	}
	return s.n, s.err
}

// readHeader consumes the magic, version, and recorded kernel name and
// returns the kernel name and stream version.
func readHeader(s *serialReader) (string, uint32, error) {
	if magic := s.readString(); s.err == nil && magic != serialMagic {
		return "", 0, fmt.Errorf("core: not an h2ds stream (magic %q)", magic)
	}
	var version uint32
	s.read(&version)
	if s.err == nil && (version < serialVersionMin || version > serialVersion) {
		return "", 0, fmt.Errorf("core: unsupported stream version %d (want %d..%d)", version, serialVersionMin, serialVersion)
	}
	kname := s.readString()
	return kname, version, s.err
}

// Read deserializes a matrix written by WriteTo. The kernel function is not
// stored (it is code); the caller supplies it and its Name must match the
// one recorded at save time. For normal memory mode the coupling and
// nearfield blocks are re-assembled from the kernel (they are kernel
// submatrices, so this is exact).
func Read(r io.Reader, k kernel.Pairwise) (*Matrix, error) {
	s := newSerialReader(r)
	kname, version, err := readHeader(s)
	if err != nil {
		return nil, err
	}
	if kname != k.Name() {
		return nil, fmt.Errorf("core: stream was built with kernel %q, got %q", kname, k.Name())
	}
	return readBody(s, k, version)
}

// ReadAny deserializes a matrix written by WriteTo, resolving the kernel
// from the name recorded in the stream via kernel.ByName. An empty kernel
// name marks a kernel-less stream (entry-oracle build): no lookup happens,
// the stored blocks are taken from the stream, and the loaded matrix gets a
// placeholder kernel that refuses fresh evaluations. Streams built with a
// named kernel outside the name registry (custom or parameterized kernels)
// fail with the registry's unknown-kernel error; use Read with the explicit
// kernel for those.
func ReadAny(r io.Reader) (*Matrix, error) {
	s := newSerialReader(r)
	kname, version, err := readHeader(s)
	if err != nil {
		return nil, err
	}
	var k kernel.Pairwise
	if kname != "" {
		k, err = kernel.ByName(kname)
		if err != nil {
			return nil, fmt.Errorf("core: cannot resolve stream kernel: %w", err)
		}
	}
	return readBody(s, k, version)
}

// readBody deserializes everything after the header under the given kernel.
func readBody(s *serialReader, k kernel.Pairwise, version uint32) (*Matrix, error) {
	m := &Matrix{Kern: k}
	var kind, mode uint8
	s.read(&kind)
	s.read(&mode)
	m.Cfg.Kind = BasisKind(kind)
	m.Cfg.Mode = MemoryMode(mode)
	s.read(&m.Cfg.Tol)
	m.Cfg.LeafSize = s.readI64()
	s.read(&m.Cfg.Eta)
	m.Cfg.SampleBudget = s.readI64()
	m.Cfg.P = s.readI64()
	if version >= 2 {
		s.read(&m.Cfg.StorageBudget)
	}
	if version >= 3 {
		s.read(&m.Cfg.RelTol)
		s.read(&m.stats.EstRelErr)
		m.stats.RelTol = m.Cfg.RelTol
	}
	s.read(&m.sharedBasis)
	m.N = s.readI64()
	m.Dim = s.readI64()
	if s.err != nil {
		return nil, s.err
	}
	if m.N <= 0 || m.Dim <= 0 || m.N > maxSliceLen || m.Dim > 64 {
		return nil, fmt.Errorf("core: corrupt header n=%d dim=%d", m.N, m.Dim)
	}

	// Tree.
	t := &tree.Tree{}
	coords := s.readF64Slice()
	t.Points = &pointset.Points{Dim: m.Dim, Coords: coords}
	t.Perm = s.readIntSlice()
	t.LeafSize = s.readI64()
	s.read(&t.Eta)
	nNodes := s.readI64()
	if s.err != nil {
		return nil, s.err
	}
	if !s.checkLen(nNodes) || len(coords) != m.N*m.Dim || len(t.Perm) != m.N {
		return nil, fmt.Errorf("core: corrupt tree section")
	}
	t.InvPerm = make([]int, m.N)
	for kk, orig := range t.Perm {
		if orig < 0 || orig >= m.N {
			return nil, fmt.Errorf("core: corrupt permutation entry %d", orig)
		}
		t.InvPerm[orig] = kk
	}
	t.Nodes = make([]tree.Node, nNodes)
	for i := 0; i < nNodes; i++ {
		nd := &t.Nodes[i]
		nd.ID = i
		nd.Parent = s.readI64()
		nd.Level = s.readI64()
		nd.Start = s.readI64()
		nd.End = s.readI64()
		s.read(&nd.IsLeaf)
		nd.Children = s.readIntSlice()
		nd.Interaction = s.readIntSlice()
		nd.Near = s.readIntSlice()
		nd.Box.Min = s.readF64Slice()
		nd.Box.Max = s.readF64Slice()
		if s.err != nil {
			return nil, s.err
		}
		for len(t.Levels) <= nd.Level {
			t.Levels = append(t.Levels, nil)
		}
		t.Levels[nd.Level] = append(t.Levels[nd.Level], i)
		if nd.IsLeaf {
			t.Leaves = append(t.Leaves, i)
		}
	}
	m.Tree = t

	// Generators.
	m.u = make([]*mat.Dense, nNodes)
	m.trans = make([]*mat.Dense, nNodes)
	m.ranks = make([]int, nNodes)
	m.skel = make([][]int, nNodes)
	m.skelPts = make([]*pointset.Points, nNodes)
	if !m.sharedBasis {
		m.v = make([]*mat.Dense, nNodes)
		m.wTrans = make([]*mat.Dense, nNodes)
		m.colRanks = make([]int, nNodes)
		m.colSkel = make([][]int, nNodes)
	}
	for id := 0; id < nNodes; id++ {
		m.ranks[id] = s.readI64()
		m.skel[id] = s.readIntSlice()
		m.u[id] = s.readDense()
		m.trans[id] = s.readDense()
		if !m.sharedBasis {
			m.colRanks[id] = s.readI64()
			m.colSkel[id] = s.readIntSlice()
			m.v[id] = s.readDense()
			m.wTrans[id] = s.readDense()
		}
		if s.err != nil {
			return nil, s.err
		}
	}

	// Sampling hierarchy.
	var hasHier bool
	s.read(&hasHier)
	if hasHier {
		m.hier = &sample.Hierarchy{XStar: make([][]int, nNodes), YStar: make([][]int, nNodes)}
		for id := 0; id < nNodes; id++ {
			m.hier.XStar[id] = s.readIntSlice()
			m.hier.YStar[id] = s.readIntSlice()
		}
	}
	if s.err != nil {
		return nil, s.err
	}

	// Version 5: stored-block section (kernel-less streams only). The blocks
	// arrive verbatim, so no kernel is needed to serve the matrix; a loaded
	// kernel-less matrix gets a placeholder kernel that refuses fresh
	// evaluations but answers Symmetric for the apply's triangular logic.
	blocksFromStream := false
	if version >= 5 {
		var hasBlocks uint8
		s.read(&hasBlocks)
		if hasBlocks == 1 {
			var sym bool
			s.read(&sym)
			coup := readBlockStore(s)
			near := readBlockStore(s)
			if s.err != nil {
				return nil, s.err
			}
			if coup == nil || near == nil {
				return nil, fmt.Errorf("core: kernel-less stream missing stored blocks")
			}
			m.coup, m.near = coup, near
			blocksFromStream = true
			if m.Kern == nil {
				m.Kern = storedOnlyKernel{sym: sym}
			}
		}
	}
	if m.Kern == nil {
		return nil, fmt.Errorf("core: stream names no kernel and carries no stored blocks")
	}

	if version >= 4 {
		if err := s.verifyFooter(); err != nil {
			return nil, err
		}
	}

	// Rebuild derived state: identity index, skeleton point sets, grids.
	m.allIdx = make([]int, m.N)
	for i := range m.allIdx {
		m.allIdx[i] = i
	}
	if m.Cfg.Kind == Interpolation {
		for id := range t.Nodes {
			m.skelPts[id] = interp.NewGrid(t.Nodes[id].Box, m.Cfg.P).Points()
		}
	} else {
		for id := range t.Nodes {
			m.skelPts[id] = t.Points
		}
	}
	if err := m.validateLoaded(); err != nil {
		return nil, err
	}
	if (m.Cfg.Mode == Normal || m.Cfg.Mode == Hybrid) && !blocksFromStream {
		// Reassemble the stored blocks on a transient build pool, exactly as
		// Build does. Hybrid selection is deterministic, so a round-trip
		// stores the identical block subset. Kernel-less streams skip this:
		// their blocks came off the wire verbatim above.
		m.buildPool = par.NewPool(m.Cfg.Workers)
		if m.Cfg.Mode == Normal {
			m.storeBlocks()
		} else {
			m.storeBlocksHybrid(m.Cfg.StorageBudget)
		}
		m.buildPool.Close()
		m.buildPool = nil
	}
	m.finishStats()
	return m, nil
}

// validateLoaded sanity-checks cross-references after deserialization so a
// corrupt stream fails loudly instead of panicking later.
func (m *Matrix) validateLoaded() error {
	if v := m.Cfg.RelTol; math.IsNaN(v) || v < 0 || v >= 1 {
		return fmt.Errorf("core: corrupt reltol %g", v)
	}
	nNodes := len(m.Tree.Nodes)
	for id := 0; id < nNodes; id++ {
		nd := &m.Tree.Nodes[id]
		if nd.Start < 0 || nd.End > m.N || nd.Start > nd.End {
			return fmt.Errorf("core: corrupt node %d range [%d,%d)", id, nd.Start, nd.End)
		}
		for _, c := range nd.Children {
			if c < 0 || c >= nNodes {
				return fmt.Errorf("core: corrupt child id %d", c)
			}
		}
		for _, j := range append(append([]int(nil), nd.Interaction...), nd.Near...) {
			if j < 0 || j >= nNodes {
				return fmt.Errorf("core: corrupt list entry %d at node %d", j, id)
			}
		}
		limit := m.skelPts[id].Len()
		for _, p := range m.skel[id] {
			if p < 0 || p >= limit {
				return fmt.Errorf("core: corrupt skeleton index %d at node %d", p, id)
			}
		}
		if len(m.skel[id]) != m.ranks[id] {
			return fmt.Errorf("core: node %d skeleton/rank mismatch", id)
		}
		if v := m.Cfg.Tol; math.IsNaN(v) || v <= 0 {
			return fmt.Errorf("core: corrupt tolerance %g", v)
		}
	}
	return nil
}
