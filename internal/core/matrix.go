package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"h2ds/internal/kernel"
	"h2ds/internal/mat"
	"h2ds/internal/par"
	"h2ds/internal/pointset"
	"h2ds/internal/sample"
	"h2ds/internal/tree"
)

// Matrix is an H² approximation of the kernel matrix A = [K(x_i, x_j)] over
// a point set. It is produced by Build and applied to vectors with Apply.
type Matrix struct {
	Cfg  Config
	Kern kernel.Pairwise
	Tree *tree.Tree
	N    int
	Dim  int

	// Per-node row-side generators. For leaves, u[i] holds the basis U_i
	// (|X_i| x rank); for internal nodes, trans[i] stacks the children
	// transfer blocks R_c ((Σ_c rank_c) x rank) in child order. ranks[i]
	// is the node's row basis rank.
	u     []*mat.Dense
	trans []*mat.Dense
	ranks []int

	// Column-side generators (the paper's V and W). They are populated
	// only for unsymmetric kernels under the data-driven construction;
	// otherwise sharedBasis is true and the row-side generators serve both
	// roles (V = U, W = R).
	v           []*mat.Dense
	wTrans      []*mat.Dense
	colRanks    []int
	colSkel     [][]int
	sharedBasis bool

	// Skeletons: block B_{i,j} is the kernel evaluated between the row
	// skeleton of i and the column skeleton of j. For the data-driven
	// method skelPts[i] aliases Tree.Points and skel[i] holds selected
	// (permuted) point indices; for interpolation skelPts[i] holds the
	// node's Chebyshev grid and skel[i] is the full index range.
	skel    [][]int
	skelPts []*pointset.Points

	// hier retains the sampling output for diagnostics (data-driven only).
	hier *sample.Hierarchy

	// Stored blocks (normal mode); nil in on-the-fly mode.
	coup *BlockStore
	near *BlockStore

	// allIdx is the shared identity index [0, n) into the permuted points;
	// leaf ranges are subslices.
	allIdx []int

	// wsPool recycles matvec workspaces so the convenience entry points
	// (ApplyTo, ApplyTranspose, ApplyBatchTo, BlockJacobi.ApplyTo) are
	// allocation-free in steady state. See Workspace.
	wsPool sync.Pool

	// buildPool is the transient persistent worker pool active during Build
	// and deserialization (nil otherwise); parFor runs on it.
	buildPool *par.Pool

	// seedOTF forces the on-the-fly sweeps down the seed
	// assemble-then-multiply path instead of the fused primitives. It
	// exists only for the bitwise-equivalence tests.
	seedOTF bool

	// sched is the lazily built barrier-free apply task graph (see
	// schedule.go); it depends only on the immutable tree topology, so one
	// graph serves every workspace and apply variant.
	schedOnce sync.Once
	sched     *taskGraph

	// Construction-phase attribution (ns), accumulated across pool workers
	// during the basis sweep: farfield panel assembly, leaf-node IDs, and
	// internal-node (transfer) IDs. Because workers run concurrently, the
	// summed counters can exceed the wall-clock BasisTime.
	phaseAssembly atomic.Int64
	phaseID       atomic.Int64
	phaseTransfer atomic.Int64

	stats  BuildStats
	sweeps sweepTimers
}

// BuildStats records construction timings and counters for the bench
// harness (the paper's T_const breakdown).
type BuildStats struct {
	TreeTime     time.Duration
	SampleTime   time.Duration
	BasisTime    time.Duration
	CouplingTime time.Duration
	Total        time.Duration

	Nodes, Leaves, Depth int
	InteractionBlocks    int // undirected coupling blocks represented
	NearBlocks           int // undirected nearfield blocks represented
	MaxRank              int
	SumLeafRank          int

	// LevelRanks summarizes the achieved row-basis ranks per tree level —
	// the observable output of the rank-selection rule (ID truncation at
	// the tolerance), reported by h2info and the serving /stats endpoints.
	LevelRanks []LevelRank

	// RelTol is the requested error-controlled tolerance (zero for
	// fixed-parameter builds) and EstRelErr the a-posteriori sampled
	// relative error ‖Ax − K̃x‖/‖Kx‖ measured against dense reference rows
	// right after construction. EstRelErr is only computed for RelTol
	// builds; it rides through serialization so a loaded matrix still
	// reports the accuracy it was verified at.
	RelTol    float64
	EstRelErr float64

	// Phases is the per-phase construction breakdown, surfaced by h2info
	// and the serving /stats and /matrices/{name} endpoints. It is not
	// serialized; a loaded matrix reports zero phases.
	Phases BuildPhases
}

// BuildPhases attributes construction time (nanoseconds) to pipeline
// phases. TreeNS, SampleNS, CouplingNS, and TotalNS are wall-clock;
// AssemblyNS, IDNS, and TransferNS are summed across construction workers
// and can exceed the wall-clock basis time. On a construction-cache hit
// (CacheHit true) the tree and hierarchy are reused, so SampleNS is zero —
// the observable receipt that Algorithm 1 was skipped.
type BuildPhases struct {
	TreeNS     int64 `json:"tree_ns"`
	SampleNS   int64 `json:"sample_ns"`
	AssemblyNS int64 `json:"assembly_ns"`
	IDNS       int64 `json:"id_ns"`
	TransferNS int64 `json:"transfer_ns"`
	CouplingNS int64 `json:"coupling_ns"`
	TotalNS    int64 `json:"total_ns"`
	CacheHit   bool  `json:"cache_hit"`
}

// LevelRank is the achieved rank summary of one tree level.
type LevelRank struct {
	Level   int     `json:"level"`
	Nodes   int     `json:"nodes"`
	MinRank int     `json:"min_rank"`
	MaxRank int     `json:"max_rank"`
	AvgRank float64 `json:"avg_rank"`
}

// Build constructs an H² representation of the kernel matrix over pts.
// pts is copied; the caller's slice is not retained. Any Pairwise kernel is
// accepted; unsymmetric kernels get separate row and column bases (the
// paper's general U/V, R/W formulation) under the data-driven construction,
// while interpolation shares its kernel-independent polynomial bases.
func Build(pts *pointset.Points, k kernel.Pairwise, cfg Config) (*Matrix, error) {
	if pts.Len() == 0 {
		return nil, fmt.Errorf("core: empty point set")
	}
	if v := cfg.RelTol; v != 0 && (math.IsNaN(v) || v < 0 || v >= 1) {
		return nil, fmt.Errorf("core: RelTol must be in (0, 1), got %g", v)
	}
	cfg = cfg.withDefaults(pts.Dim)
	start := time.Now()

	// Construction cache: a fingerprint hit supplies the tree and sampling
	// hierarchy of an earlier build over the same geometry+parameters, so
	// Algorithm 1 (and the tree partition) are skipped entirely. Explicit
	// Reuse* settings take precedence and bypass the cache.
	var cacheFP uint64
	cacheable := cfg.Cache != nil && cfg.Kind == DataDriven &&
		cfg.ReuseTree == nil && cfg.ReuseHierarchy == nil
	cacheHit := false
	if cacheable {
		cacheFP = constructionFingerprint(pts, cfg)
		if tr, hr, ok := cfg.Cache.lookup(cacheFP, pts.Len(), pts.Dim); ok {
			cfg.ReuseTree, cfg.ReuseHierarchy = tr, hr
			cacheHit = true
		}
	}

	m := &Matrix{Cfg: cfg, Kern: k, N: pts.Len(), Dim: pts.Dim}
	m.buildPool = par.NewPool(cfg.Workers)
	defer func() {
		m.buildPool.Close()
		m.buildPool = nil
	}()

	t0 := time.Now()
	if cfg.ReuseTree != nil {
		if cfg.ReuseTree.Points.Len() != pts.Len() || cfg.ReuseTree.Points.Dim != pts.Dim {
			return nil, fmt.Errorf("core: ReuseTree shape %dx%d does not match points %dx%d",
				cfg.ReuseTree.Points.Len(), cfg.ReuseTree.Points.Dim, pts.Len(), pts.Dim)
		}
		m.Tree = cfg.ReuseTree
	} else {
		m.Tree = tree.New(pts, tree.Config{LeafSize: cfg.LeafSize, Eta: cfg.Eta, Workers: cfg.Workers})
	}
	m.stats.TreeTime = time.Since(t0)

	nNodes := len(m.Tree.Nodes)
	m.u = make([]*mat.Dense, nNodes)
	m.trans = make([]*mat.Dense, nNodes)
	m.ranks = make([]int, nNodes)
	m.skel = make([][]int, nNodes)
	m.skelPts = make([]*pointset.Points, nNodes)
	m.sharedBasis = k.Symmetric() || cfg.Kind == Interpolation
	if !m.sharedBasis {
		m.v = make([]*mat.Dense, nNodes)
		m.wTrans = make([]*mat.Dense, nNodes)
		m.colRanks = make([]int, nNodes)
		m.colSkel = make([][]int, nNodes)
	}
	m.allIdx = make([]int, m.N)
	for i := range m.allIdx {
		m.allIdx[i] = i
	}

	switch cfg.Kind {
	case DataDriven:
		m.buildDataDriven()
	case Interpolation:
		m.buildInterpolation()
	default:
		return nil, fmt.Errorf("core: unknown basis kind %v", cfg.Kind)
	}

	switch cfg.Mode {
	case Normal:
		t2 := time.Now()
		m.storeBlocks()
		m.stats.CouplingTime = time.Since(t2)
	case Hybrid:
		t2 := time.Now()
		m.storeBlocksHybrid(cfg.StorageBudget)
		m.stats.CouplingTime = time.Since(t2)
	}

	m.finishStats()
	if cfg.RelTol > 0 {
		m.stats.RelTol = cfg.RelTol
		m.stats.EstRelErr = m.aPosterioriError()
	}
	if cacheable && !cacheHit {
		cfg.Cache.insert(cacheFP, pts.Len(), pts.Dim, m.Tree, m.hier)
	}
	m.stats.Total = time.Since(start)
	m.stats.Phases = BuildPhases{
		TreeNS:     m.stats.TreeTime.Nanoseconds(),
		SampleNS:   m.stats.SampleTime.Nanoseconds(),
		AssemblyNS: m.phaseAssembly.Load(),
		IDNS:       m.phaseID.Load(),
		TransferNS: m.phaseTransfer.Load(),
		CouplingNS: m.stats.CouplingTime.Nanoseconds(),
		TotalNS:    m.stats.Total.Nanoseconds(),
		CacheHit:   cacheHit,
	}
	return m, nil
}

// relTolProbeSeed drives the deterministic probe vector and row choice of
// the a-posteriori estimate, so identical builds report identical errors.
const relTolProbeSeed = 0x5eed

// aPosterioriError runs the paper's sampled error estimator against the
// freshly built matrix: apply Â to a deterministic Gaussian probe vector and
// compare a handful of entries against exact dense kernel rows. This is the
// error-controlled build's receipt — the achieved accuracy for the requested
// RelTol, at the cost of DefaultErrorRows dense rows (O(rows·n) kernel
// evaluations).
func (m *Matrix) aPosterioriError() float64 {
	rng := rand.New(rand.NewSource(relTolProbeSeed))
	b := make([]float64, m.N)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	return m.EstimateRelError(b, DefaultErrorRows, relTolProbeSeed+1)
}

// finishStats fills the structural counters after construction.
func (m *Matrix) finishStats() {
	ts := m.Tree.ComputeStats()
	m.stats.Nodes = ts.Nodes
	m.stats.Leaves = ts.Leaves
	m.stats.Depth = ts.Depth
	m.stats.InteractionBlocks = ts.InteractionPairs / 2
	// NearPairs counts directed pairs including self; undirected count is
	// self pairs + (others)/2.
	self := ts.Leaves
	m.stats.NearBlocks = self + (ts.NearPairs-self)/2
	for i := range m.Tree.Nodes {
		if m.ranks[i] > m.stats.MaxRank {
			m.stats.MaxRank = m.ranks[i]
		}
		if m.Tree.Nodes[i].IsLeaf {
			m.stats.SumLeafRank += m.ranks[i]
		}
	}
	m.stats.LevelRanks = m.levelRanks()
}

// levelRanks summarizes the achieved row-basis ranks per tree level.
func (m *Matrix) levelRanks() []LevelRank {
	out := make([]LevelRank, 0, len(m.Tree.Levels))
	for l, level := range m.Tree.Levels {
		if len(level) == 0 {
			continue
		}
		lr := LevelRank{Level: l, Nodes: len(level), MinRank: m.ranks[level[0]]}
		sum := 0
		for _, id := range level {
			r := m.ranks[id]
			sum += r
			if r < lr.MinRank {
				lr.MinRank = r
			}
			if r > lr.MaxRank {
				lr.MaxRank = r
			}
		}
		lr.AvgRank = float64(sum) / float64(len(level))
		out = append(out, lr)
	}
	return out
}

// Stats returns the construction statistics.
func (m *Matrix) Stats() BuildStats { return m.stats }

// NodeRanks returns a copy of the per-node basis ranks (indexed by tree
// node id); the Fig 2 rank-comparison experiment reads these.
func (m *Matrix) NodeRanks() []int { return append([]int(nil), m.ranks...) }

// Rank returns the rank of node id's basis.
func (m *Matrix) Rank(id int) int { return m.ranks[id] }

// Skeleton returns the skeleton index set of node id (data-driven: permuted
// point indices; interpolation: grid indices).
func (m *Matrix) Skeleton(id int) []int { return m.skel[id] }

// Hierarchy returns the data-driven sampling output (nil for interpolation
// builds). Pass it, together with Tree, through Config.ReuseHierarchy /
// Config.ReuseTree to amortize the kernel-independent sampling across
// builds for different kernels on the same points (paper §VI-A).
func (m *Matrix) Hierarchy() *sample.Hierarchy { return m.hier }

// colRank returns node id's column basis rank (the row rank when bases are
// shared).
func (m *Matrix) colRank(id int) int {
	if m.sharedBasis {
		return m.ranks[id]
	}
	return m.colRanks[id]
}

// colSkeleton returns node id's column skeleton.
func (m *Matrix) colSkeleton(id int) []int {
	if m.sharedBasis {
		return m.skel[id]
	}
	return m.colSkel[id]
}

// colBasis returns node id's leaf column basis (V_i).
func (m *Matrix) colBasis(id int) *mat.Dense {
	if m.sharedBasis {
		return m.u[id]
	}
	return m.v[id]
}

// colTrans returns node id's stacked column transfer blocks (W).
func (m *Matrix) colTrans(id int) *mat.Dense {
	if m.sharedBasis {
		return m.trans[id]
	}
	return m.wTrans[id]
}

// storeBlocks assembles and stores every coupling block (one triangle for
// symmetric kernels, every directed pair otherwise) and every nearfield
// block — the normal memory mode. Assembly is parallel over blocks.
func (m *Matrix) storeBlocks() {
	sym := m.Kern.Symmetric()
	if sym {
		m.coup = NewBlockStore()
		m.near = NewBlockStore()
	} else {
		m.coup = NewDirectedBlockStore()
		m.near = NewDirectedBlockStore()
	}

	type pair struct{ i, j int }
	var coupPairs []pair
	for i := range m.Tree.Nodes {
		for _, j := range m.Tree.Nodes[i].Interaction {
			if !sym || i < j {
				coupPairs = append(coupPairs, pair{i, j})
			}
		}
	}
	var nearPairs []pair
	for _, i := range m.Tree.Leaves {
		for _, j := range m.Tree.Nodes[i].Near {
			if !sym || i <= j {
				nearPairs = append(nearPairs, pair{i, j})
			}
		}
	}

	if m.Cfg.SeedConstruction {
		// Seed-era flow: individually allocated blocks into the build-phase
		// map, copied into the CSR slab at Freeze.
		buildPhase("coupling", func() {
			m.parFor(len(coupPairs), func(k int) {
				p := coupPairs[k]
				if m.ranks[p.i] == 0 || m.colRank(p.j) == 0 {
					return
				}
				b := m.newBlock(m.Kern, m.skelPts[p.i], m.skel[p.i], m.skelPts[p.j], m.colSkeleton(p.j))
				m.coup.Put(p.i, p.j, b)
			})
		})
		buildPhase("nearfield", func() {
			m.parFor(len(nearPairs), func(k int) {
				p := nearPairs[k]
				ni, nj := &m.Tree.Nodes[p.i], &m.Tree.Nodes[p.j]
				b := m.newBlock(m.Kern, m.Tree.Points, m.allIdx[ni.Start:ni.End], m.Tree.Points, m.allIdx[nj.Start:nj.End])
				m.near.Put(p.i, p.j, b)
			})
		})
		m.coup.Freeze()
		m.near.Freeze()
		return
	}

	// Accelerated flow: block shapes are known before assembly, so lay out
	// the frozen CSR slab first and assemble every payload in place through
	// the fused tile path — no per-block allocations, no Freeze-time copy.
	coupKeep := coupPairs[:0]
	for _, p := range coupPairs {
		if m.ranks[p.i] > 0 && m.colRank(p.j) > 0 {
			coupKeep = append(coupKeep, p)
		}
	}
	coupSpecs := make([]PutSpec, len(coupKeep))
	for k, p := range coupKeep {
		coupSpecs[k] = PutSpec{I: p.i, J: p.j, Rows: len(m.skel[p.i]), Cols: len(m.colSkeleton(p.j))}
	}
	coupDst := m.coup.Preallocate(coupSpecs)
	buildPhase("coupling", func() {
		m.parFor(len(coupKeep), func(k int) {
			p := coupKeep[k]
			kernel.Assemble(coupDst[k], m.Kern, m.skelPts[p.i], m.skel[p.i], m.skelPts[p.j], m.colSkeleton(p.j))
		})
	})
	nearSpecs := make([]PutSpec, len(nearPairs))
	for k, p := range nearPairs {
		nearSpecs[k] = PutSpec{I: p.i, J: p.j, Rows: m.Tree.Nodes[p.i].Size(), Cols: m.Tree.Nodes[p.j].Size()}
	}
	nearDst := m.near.Preallocate(nearSpecs)
	buildPhase("nearfield", func() {
		m.parFor(len(nearPairs), func(k int) {
			p := nearPairs[k]
			ni, nj := &m.Tree.Nodes[p.i], &m.Tree.Nodes[p.j]
			kernel.Assemble(nearDst[k], m.Kern, m.Tree.Points, m.allIdx[ni.Start:ni.End], m.Tree.Points, m.allIdx[nj.Start:nj.End])
		})
	})
	// Construction is complete: switch both stores to lock-free reads for
	// the matvec hot path.
	m.coup.Freeze()
	m.near.Freeze()
}

// blockCand describes one storable coupling or nearfield block for the
// hybrid selection pass.
type blockCand struct {
	near  bool // nearfield (leaf dense) block vs coupling block
	i, j  int  // store key (i <= j for symmetric kernels)
	level int  // tree level of node i (selection tie-break: top levels first)
	elems int64
	uses  int8 // block applications per matvec this storage saves
}

// storedBlockBytes is the frozen-store footprint of one block: payload plus
// header plus CSR index entry (mirrors BlockStore.Bytes accounting).
func storedBlockBytes(elems int64) int64 { return elems*8 + 48 }

// blockCandidates enumerates every block the normal mode would store,
// annotated for the hybrid cost model. A symmetric off-diagonal block is
// applied twice per matvec (once forward, once transposed), so storing it
// saves two on-the-fly evaluations; diagonal and directed blocks save one.
func (m *Matrix) blockCandidates() []blockCand {
	sym := m.Kern.Symmetric()
	var cands []blockCand
	for i := range m.Tree.Nodes {
		ri := int64(m.ranks[i])
		if ri == 0 {
			continue
		}
		for _, j := range m.Tree.Nodes[i].Interaction {
			if sym && i >= j {
				continue
			}
			rj := int64(m.colRank(j))
			if rj == 0 {
				continue
			}
			uses := int8(1)
			if sym {
				uses = 2
			}
			cands = append(cands, blockCand{
				near: false, i: i, j: j, level: m.Tree.Nodes[i].Level,
				elems: ri * rj, uses: uses,
			})
		}
	}
	for _, i := range m.Tree.Leaves {
		si := int64(m.Tree.Nodes[i].Size())
		for _, j := range m.Tree.Nodes[i].Near {
			if sym && i > j {
				continue
			}
			uses := int8(1)
			if sym && i != j {
				uses = 2
			}
			cands = append(cands, blockCand{
				near: true, i: i, j: j, level: m.Tree.Nodes[i].Level,
				elems: si * int64(m.Tree.Nodes[j].Size()), uses: uses,
			})
		}
	}
	return cands
}

// storeBlocksHybrid assembles and stores the best-value blocks under a byte
// budget and leaves the rest for fused on-the-fly evaluation. Value is
// assembly savings per byte: kernel-evaluation cost is proportional to the
// element count (= bytes), so savings/byte reduces to the per-matvec use
// count, with top tree levels first as the tie-break (their blocks sit on
// every interaction list and stay hot), then a deterministic kind/i/j order
// so equal-budget builds always select identical sets. Selection is greedy
// and keeps scanning past blocks that no longer fit.
func (m *Matrix) storeBlocksHybrid(budget int64) {
	sym := m.Kern.Symmetric()
	if sym {
		m.coup = NewBlockStore()
		m.near = NewBlockStore()
	} else {
		m.coup = NewDirectedBlockStore()
		m.near = NewDirectedBlockStore()
	}

	cands := m.blockCandidates()
	sort.Slice(cands, func(a, b int) bool {
		ca, cb := &cands[a], &cands[b]
		if ca.uses != cb.uses {
			return ca.uses > cb.uses
		}
		if ca.level != cb.level {
			return ca.level < cb.level
		}
		if ca.near != cb.near {
			return !ca.near
		}
		if ca.i != cb.i {
			return ca.i < cb.i
		}
		return ca.j < cb.j
	})
	var used int64
	selected := cands[:0]
	for _, c := range cands {
		cost := storedBlockBytes(c.elems)
		if used+cost > budget {
			continue
		}
		selected = append(selected, c)
		used += cost
	}

	buildPhase("coupling", func() {
		m.parFor(len(selected), func(k int) {
			c := selected[k]
			if c.near {
				ni, nj := &m.Tree.Nodes[c.i], &m.Tree.Nodes[c.j]
				b := m.newBlock(m.Kern, m.Tree.Points, m.allIdx[ni.Start:ni.End], m.Tree.Points, m.allIdx[nj.Start:nj.End])
				m.near.Put(c.i, c.j, b)
				return
			}
			b := m.newBlock(m.Kern, m.skelPts[c.i], m.skel[c.i], m.skelPts[c.j], m.colSkeleton(c.j))
			m.coup.Put(c.i, c.j, b)
		})
	})
	m.coup.Freeze()
	m.near.Freeze()
}

// WithStorageBudget derives a Hybrid-mode view of m under the given block
// storage budget: it shares every immutable generator (tree, bases,
// transfers, skeletons) with m and builds only its own block stores, so a
// registry can downgrade a resident Normal-mode instance to a fraction of
// its footprint without re-running construction. The result is an
// independent Matrix with fresh sweep counters and its own workspace pool;
// m is not modified and both remain safe for concurrent use.
func (m *Matrix) WithStorageBudget(budget int64) *Matrix {
	c := &Matrix{
		Cfg: m.Cfg, Kern: m.Kern, Tree: m.Tree, N: m.N, Dim: m.Dim,
		u: m.u, trans: m.trans, ranks: m.ranks,
		v: m.v, wTrans: m.wTrans, colRanks: m.colRanks, colSkel: m.colSkel,
		sharedBasis: m.sharedBasis,
		skel:        m.skel, skelPts: m.skelPts,
		hier: m.hier, allIdx: m.allIdx,
		stats: m.stats,
	}
	c.Cfg.Mode = Hybrid
	c.Cfg.StorageBudget = budget
	c.buildPool = par.NewPool(c.Cfg.Workers)
	t0 := time.Now()
	c.storeBlocksHybrid(budget)
	c.stats.CouplingTime = time.Since(t0)
	c.buildPool.Close()
	c.buildPool = nil
	return c
}

// leafRange returns the permuted index slice owned by node id.
func (m *Matrix) leafRange(id int) []int {
	nd := &m.Tree.Nodes[id]
	return m.allIdx[nd.Start:nd.End]
}
