package core

import (
	"math"
	"math/rand"

	"h2ds/internal/kernel"
	"h2ds/internal/mat"
	"h2ds/internal/par"
	"h2ds/internal/pointset"
)

// DefaultErrorRows is the number of sampled rows in the paper's relative
// error estimator (§IV).
const DefaultErrorRows = 12

// RelErrorVs estimates the relative error of a computed product y ≈ A b by
// the paper's protocol: sample `rows` random rows, evaluate them exactly
// against the dense kernel matrix, and return ||z - ẑ||₂ / ||z||₂ over the
// sampled entries. b and y are in the caller's original point ordering.
func (m *Matrix) RelErrorVs(b, y []float64, rows int, seed int64) float64 {
	if rows <= 0 {
		rows = DefaultErrorRows
	}
	if rows > m.N {
		rows = m.N
	}
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(m.N)[:rows]

	bp := make([]float64, m.N)
	m.Tree.PermuteVec(bp, b)

	exact := make([]float64, rows)
	par.For(m.Cfg.Workers, rows, func(k int) {
		// Row for original point idx[k] lives at its permuted position.
		pos := m.Tree.InvPerm[idx[k]]
		exact[k] = kernel.RowApply(m.Kern, m.Tree.Points, pos, bp)
	})
	var num, den float64
	for k, i := range idx {
		d := exact[k] - y[i]
		num += d * d
		den += exact[k] * exact[k]
	}
	if den == 0 {
		if num == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Sqrt(num / den)
}

// EstimateRelError applies the matrix to b and estimates the relative error
// of the product with the 12-row protocol.
func (m *Matrix) EstimateRelError(b []float64, rows int, seed int64) float64 {
	y := m.Apply(b)
	return m.RelErrorVs(b, y, rows, seed)
}

// RowSample pairs a row index with its exact dense matvec value.
type RowSample struct {
	Row   int
	Exact float64
}

// DirectRows computes `rows` exact rows of the dense product A b, with the
// row choice driven by seed exactly as in RelErrorVs. It lets other
// representations (e.g. the non-nested H-matrix baseline) share the paper's
// 12-row estimator without an H² build.
func DirectRows(pts *pointset.Points, k kernel.Pairwise, b []float64, rows int, seed int64) []RowSample {
	n := pts.Len()
	if rows <= 0 {
		rows = DefaultErrorRows
	}
	if rows > n {
		rows = n
	}
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(n)[:rows]
	out := make([]RowSample, rows)
	par.For(0, rows, func(kk int) {
		out[kk] = RowSample{Row: idx[kk], Exact: kernel.RowApply(k, pts, idx[kk], b)}
	})
	return out
}

// DirectApply computes the exact dense product y = A b by brute force
// (O(n²)); the reference for tests and small-scale validation. b and y are
// in the ordering of pts.
func DirectApply(pts *pointset.Points, k kernel.Pairwise, b []float64, workers int) []float64 {
	y := make([]float64, pts.Len())
	par.For(workers, pts.Len(), func(i int) {
		y[i] = kernel.RowApply(k, pts, i, b)
	})
	return y
}

// DenseMatrix assembles the full kernel matrix over pts; tests only — it is
// O(n²) memory.
func DenseMatrix(pts *pointset.Points, k kernel.Pairwise) *mat.Dense {
	n := pts.Len()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return kernel.NewBlock(k, pts, idx, pts, idx)
}
