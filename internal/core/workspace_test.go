package core

import (
	"bytes"
	"math"
	"runtime"
	"testing"

	"h2ds/internal/kernel"
	"h2ds/internal/mat"
	"h2ds/internal/pointset"
)

func buildBoth(t *testing.T, pts *pointset.Points, k kernel.Pairwise, leaf int) map[MemoryMode]*Matrix {
	t.Helper()
	out := map[MemoryMode]*Matrix{}
	for _, mode := range []MemoryMode{Normal, OnTheFly} {
		m, err := Build(pts, k, Config{Kind: DataDriven, Mode: mode, Tol: 1e-6, LeafSize: leaf})
		if err != nil {
			t.Fatal(err)
		}
		out[mode] = m
	}
	return out
}

func TestApplyToWithMatchesApplyTo(t *testing.T) {
	pts := pointset.Cube(1500, 3, 200)
	b := randVec(1500, 201)
	for mode, m := range buildBoth(t, pts, kernel.Coulomb{}, 70) {
		want := m.Apply(b)
		ws := m.NewWorkspace()
		got := make([]float64, m.N)
		for rep := 0; rep < 3; rep++ { // reuse must not degrade results
			m.ApplyToWith(ws, got, b)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("mode %v rep %d: workspace path differs at %d: %g vs %g", mode, rep, i, got[i], want[i])
				}
			}
		}
		m.ApplyTransposeToWith(ws, got, b)
		wantT := m.ApplyTranspose(b)
		for i := range wantT {
			if got[i] != wantT[i] {
				t.Fatalf("mode %v: workspace transpose differs at %d", mode, i)
			}
		}
	}
}

func TestApplyToAliasSafe(t *testing.T) {
	// The doc contract: y and b may alias. ApplyTo(v, v) must equal Apply(b).
	pts := pointset.Cube(1200, 3, 210)
	b := randVec(1200, 211)
	for mode, m := range buildBoth(t, pts, kernel.Coulomb{}, 60) {
		want := m.Apply(b)
		v := append([]float64(nil), b...)
		m.ApplyTo(v, v)
		for i := range want {
			if v[i] != want[i] {
				t.Fatalf("mode %v: aliased ApplyTo differs at %d: %g vs %g", mode, i, v[i], want[i])
			}
		}
		wantT := m.ApplyTranspose(b)
		v = append([]float64(nil), b...)
		m.ApplyTransposeTo(v, v)
		for i := range wantT {
			if v[i] != wantT[i] {
				t.Fatalf("mode %v: aliased ApplyTransposeTo differs at %d", mode, i)
			}
		}
		// Batch: Y and B may be the same matrix.
		const k = 3
		bm := mat.NewDense(1200, k)
		for j := 0; j < k; j++ {
			col := randVec(1200, int64(212+j))
			for i := 0; i < 1200; i++ {
				bm.Set(i, j, col[i])
			}
		}
		wantB := m.ApplyBatch(bm)
		m.ApplyBatchTo(bm, bm)
		for i, v := range wantB.Data {
			if bm.Data[i] != v {
				t.Fatalf("mode %v: aliased ApplyBatchTo differs at flat index %d", mode, i)
			}
		}
	}
}

func TestApplyDeterministicAcrossWorkers(t *testing.T) {
	// The matvec promises results independent of the worker count: each
	// output slot is written by exactly one worker in a fixed order, so the
	// outputs must be bitwise identical for any Workers setting.
	pts := pointset.Cube(2000, 3, 220)
	b := randVec(2000, 221)
	counts := []int{1, 4, runtime.GOMAXPROCS(0)}
	for mode, m := range buildBoth(t, pts, kernel.Coulomb{}, 60) {
		var ref, refT []float64
		for _, w := range counts {
			m.Cfg.Workers = w
			y := m.Apply(b)
			yt := m.ApplyTranspose(b)
			if ref == nil {
				ref, refT = y, yt
				continue
			}
			for i := range ref {
				if y[i] != ref[i] {
					t.Fatalf("mode %v: Apply differs bitwise at %d with workers=%d: %x vs %x",
						mode, i, w, math.Float64bits(y[i]), math.Float64bits(ref[i]))
				}
				if yt[i] != refT[i] {
					t.Fatalf("mode %v: ApplyTranspose differs bitwise at %d with workers=%d", mode, i, w)
				}
			}
		}
	}
}

func TestApplyBatchToMatchesSequentialTightly(t *testing.T) {
	// The batched sweeps use GEMM kernels whose per-element summation order
	// mirrors the vector kernels, so each batch column must agree with the
	// sequential product to ~1 ulp (acceptance bound: 1e-14 relative).
	pts := pointset.Cube(2000, 3, 230)
	const k = 8
	for mode, m := range buildBoth(t, pts, kernel.Coulomb{}, 70) {
		bm := mat.NewDense(2000, k)
		for j := 0; j < k; j++ {
			col := randVec(2000, int64(231+j))
			for i := 0; i < 2000; i++ {
				bm.Set(i, j, col[i])
			}
		}
		y := m.ApplyBatch(bm)
		for j := 0; j < k; j++ {
			col := make([]float64, 2000)
			for i := range col {
				col[i] = bm.At(i, j)
			}
			want := m.Apply(col)
			for i := range want {
				if d := math.Abs(y.At(i, j) - want[i]); d > 1e-14*(1+math.Abs(want[i])) {
					t.Fatalf("mode %v: batch column %d differs at %d beyond 1e-14: %g vs %g",
						mode, j, i, y.At(i, j), want[i])
				}
			}
		}
	}
}

func TestApplyBatchWidthChangesReuseWorkspace(t *testing.T) {
	pts := pointset.Cube(900, 3, 240)
	m, err := Build(pts, kernel.Coulomb{}, Config{Kind: DataDriven, Mode: OnTheFly, Tol: 1e-5, LeafSize: 60})
	if err != nil {
		t.Fatal(err)
	}
	ws := m.NewWorkspace()
	for _, k := range []int{4, 1, 8, 2} {
		bm := mat.NewDense(900, k)
		for j := 0; j < k; j++ {
			col := randVec(900, int64(241+j))
			for i := 0; i < 900; i++ {
				bm.Set(i, j, col[i])
			}
		}
		y := mat.NewDense(0, 0)
		m.ApplyBatchToWith(ws, y, bm)
		for j := 0; j < k; j++ {
			col := make([]float64, 900)
			for i := range col {
				col[i] = bm.At(i, j)
			}
			want := m.Apply(col)
			for i := range want {
				if d := math.Abs(y.At(i, j) - want[i]); d > 1e-12*(1+math.Abs(want[i])) {
					t.Fatalf("k=%d: column %d differs at %d", k, j, i)
				}
			}
		}
	}
}

func TestSerializeRoundTripBatchEquivalence(t *testing.T) {
	// A deserialized matrix re-assembles its stored blocks from the kernel,
	// so the batch product must reproduce the original bitwise.
	pts := pointset.Cube(1200, 3, 250)
	m, err := Build(pts, kernel.Coulomb{}, Config{Kind: DataDriven, Mode: Normal, Tol: 1e-6, LeafSize: 60})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Read(&buf, kernel.Coulomb{})
	if err != nil {
		t.Fatal(err)
	}
	const k = 5
	bm := mat.NewDense(1200, k)
	for j := 0; j < k; j++ {
		col := randVec(1200, int64(251+j))
		for i := 0; i < 1200; i++ {
			bm.Set(i, j, col[i])
		}
	}
	y1 := m.ApplyBatch(bm)
	y2 := m2.ApplyBatch(bm)
	for i, v := range y1.Data {
		if y2.Data[i] != v {
			t.Fatalf("deserialized batch product differs at flat index %d: %g vs %g", i, y2.Data[i], v)
		}
	}
}

func TestApplyToWithZeroAllocSteadyState(t *testing.T) {
	// With a caller-owned workspace and serial sweeps, the steady-state
	// matvec must not touch the allocator at all.
	pts := pointset.Cube(1000, 3, 260)
	for _, mode := range []MemoryMode{Normal, OnTheFly} {
		m, err := Build(pts, kernel.Coulomb{}, Config{Kind: DataDriven, Mode: mode, Tol: 1e-5, LeafSize: 60, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		b := randVec(1000, 261)
		y := make([]float64, 1000)
		ws := m.NewWorkspace()
		m.ApplyToWith(ws, y, b) // warm-up: grows the OTF scratch tile
		allocs := testing.AllocsPerRun(10, func() {
			m.ApplyToWith(ws, y, b)
		})
		if allocs != 0 {
			t.Fatalf("mode %v: ApplyToWith allocates %.1f objects/op in steady state", mode, allocs)
		}
		m.ApplyTransposeToWith(ws, y, b)
		allocs = testing.AllocsPerRun(10, func() {
			m.ApplyTransposeToWith(ws, y, b)
		})
		if allocs != 0 {
			t.Fatalf("mode %v: ApplyTransposeToWith allocates %.1f objects/op", mode, allocs)
		}
	}
}

func TestBlockJacobiPooledBuffersStayCorrect(t *testing.T) {
	pts := pointset.Cube(800, 3, 270)
	m, err := Build(pts, kernel.Gaussian{Scale: 0.5}, Config{Kind: DataDriven, Mode: Normal, Tol: 1e-6, LeafSize: 50, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	bj, err := m.BlockJacobi(1.0)
	if err != nil {
		t.Fatal(err)
	}
	b := randVec(800, 271)
	y1 := make([]float64, 800)
	bj.ApplyTo(y1, b)
	// Aliased application must match.
	v := append([]float64(nil), b...)
	bj.ApplyTo(v, v)
	for i := range y1 {
		if v[i] != y1[i] {
			t.Fatalf("aliased BlockJacobi.ApplyTo differs at %d", i)
		}
	}
	// Interleave with matvecs drawing from the same pool.
	yv := m.Apply(b)
	y2 := make([]float64, 800)
	bj.ApplyTo(y2, b)
	for i := range y1 {
		if y2[i] != y1[i] {
			t.Fatalf("pool interleaving corrupted BlockJacobi result at %d", i)
		}
	}
	_ = yv
}

func TestWorkspaceWrongMatrixPanics(t *testing.T) {
	a, err := Build(pointset.Cube(300, 3, 280), kernel.Coulomb{}, Config{Tol: 1e-4, LeafSize: 50})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(pointset.Cube(300, 3, 281), kernel.Coulomb{}, Config{Tol: 1e-4, LeafSize: 50})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for foreign workspace")
		}
	}()
	ws := a.NewWorkspace()
	v := make([]float64, 300)
	b.ApplyToWith(ws, v, v)
}

func TestMemoryCountsWorkspace(t *testing.T) {
	pts := pointset.Cube(1000, 3, 290)
	m, err := Build(pts, kernel.Coulomb{}, Config{Kind: DataDriven, Mode: Normal, Tol: 1e-6, LeafSize: 60})
	if err != nil {
		t.Fatal(err)
	}
	mem := m.Memory()
	if mem.Workspace <= 0 {
		t.Fatalf("MemoryStats must count the pooled workspace slabs: %+v", mem)
	}
	ws := m.NewWorkspace()
	if ws.Bytes() != mem.Workspace {
		t.Fatalf("workspace accounting mismatch: live %d vs stats %d", ws.Bytes(), mem.Workspace)
	}
}
