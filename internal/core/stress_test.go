package core

import (
	"math"
	"runtime"
	"sync"
	"testing"

	"h2ds/internal/kernel"
	"h2ds/internal/mat"
	"h2ds/internal/pointset"
)

// TestConcurrentApplyStress hammers one shared frozen Matrix with GOMAXPROCS
// goroutines mixing ApplyTo and ApplyBatchTo, in both memory modes, and
// checks every result against a sequential reference. Under -race this
// guards the pooled-workspace path end to end: workspace checkout/return,
// the frozen BlockStore reads, and the per-worker scratch tiles of the
// on-the-fly mode.
func TestConcurrentApplyStress(t *testing.T) {
	pts := pointset.Cube(1500, 3, 17)
	for _, mode := range []MemoryMode{Normal, OnTheFly} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			m, err := Build(pts, kernel.Coulomb{},
				Config{Kind: DataDriven, Mode: mode, Tol: 1e-6, LeafSize: 60})
			if err != nil {
				t.Fatal(err)
			}
			const vecs = 5
			ins := make([][]float64, vecs)
			refs := make([][]float64, vecs)
			ws := m.NewWorkspace()
			for v := range ins {
				ins[v] = randVec(m.N, int64(200+v))
				refs[v] = make([]float64, m.N)
				m.ApplyToWith(ws, refs[v], ins[v])
			}

			check := func(v int, y []float64) bool {
				for i, want := range refs[v] {
					if d := math.Abs(y[i]-want) / (1 + math.Abs(want)); d > 1e-13 {
						return false
					}
				}
				return true
			}

			workers := runtime.GOMAXPROCS(0)
			if workers < 4 {
				workers = 4
			}
			errCh := make(chan string, workers)
			var wg sync.WaitGroup
			for g := 0; g < workers; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					y := make([]float64, m.N)
					for it := 0; it < 10; it++ {
						v := (g + it) % vecs
						if it%2 == 0 {
							// Pooled single-vector path.
							m.ApplyTo(y, ins[v])
							if !check(v, y) {
								errCh <- "ApplyTo diverged under concurrency"
								return
							}
							continue
						}
						// Pooled batch path: three columns, distinct vectors.
						k := 3
						B := mat.NewDense(m.N, k)
						cols := make([]int, k)
						for j := 0; j < k; j++ {
							cols[j] = (v + j) % vecs
							for i := 0; i < m.N; i++ {
								B.Set(i, j, ins[cols[j]][i])
							}
						}
						Y := mat.NewDense(m.N, k)
						m.ApplyBatchTo(Y, B)
						for j := 0; j < k; j++ {
							for i := 0; i < m.N; i++ {
								y[i] = Y.At(i, j)
							}
							if !check(cols[j], y) {
								errCh <- "ApplyBatchTo diverged under concurrency"
								return
							}
						}
					}
				}(g)
			}
			wg.Wait()
			select {
			case msg := <-errCh:
				t.Fatal(msg)
			default:
			}
		})
	}
}

// TestWorkspaceBatchWidth pins the accessor serving layers report from.
func TestWorkspaceBatchWidth(t *testing.T) {
	pts := pointset.Cube(400, 3, 19)
	m, err := Build(pts, kernel.Coulomb{},
		Config{Kind: DataDriven, Mode: OnTheFly, Tol: 1e-5, LeafSize: 50})
	if err != nil {
		t.Fatal(err)
	}
	ws := m.NewWorkspace()
	if got := ws.BatchWidth(); got != 0 {
		t.Fatalf("fresh workspace BatchWidth = %d, want 0", got)
	}
	B := mat.NewDense(m.N, 4)
	Y := mat.NewDense(m.N, 4)
	m.ApplyBatchToWith(ws, Y, B)
	if got := ws.BatchWidth(); got != 4 {
		t.Fatalf("BatchWidth after k=4 batch = %d, want 4", got)
	}
	m.ApplyBatchToWith(ws, Y.Reshape(m.N, 2), B.Reshape(m.N, 2))
	if got := ws.BatchWidth(); got != 2 {
		t.Fatalf("BatchWidth tracks the most recent batch: got %d, want 2", got)
	}
}
