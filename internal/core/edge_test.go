package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"h2ds/internal/kernel"
	"h2ds/internal/pointset"
)

func TestSinglePoint(t *testing.T) {
	pts := pointset.Cube(1, 3, 50)
	for _, kind := range []BasisKind{DataDriven, Interpolation} {
		m, err := Build(pts, kernel.Gaussian{Scale: 0.1}, Config{Kind: kind, Tol: 1e-6})
		if err != nil {
			t.Fatal(err)
		}
		y := m.Apply([]float64{2})
		// A 1x1 Gaussian matrix has K(x,x)=1 on the diagonal.
		if math.Abs(y[0]-2) > 1e-14 {
			t.Fatalf("%v: single point apply got %g want 2", kind, y[0])
		}
	}
}

func TestDuplicatePointsBuild(t *testing.T) {
	// Coincident points are legal input (singular kernels use the
	// zero-diagonal convention); the build must not blow up and must agree
	// with the dense reference.
	pts := pointset.New(0, 2)
	rng := rand.New(rand.NewSource(51))
	for i := 0; i < 300; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		pts.Append(x)
		if i%3 == 0 {
			pts.Append(x) // exact duplicate
		}
	}
	b := randVec(pts.Len(), 52)
	want := DirectApply(pts, kernel.Coulomb{}, b, 0)
	m, err := Build(pts, kernel.Coulomb{}, Config{Kind: DataDriven, Mode: OnTheFly, Tol: 1e-6, LeafSize: 30})
	if err != nil {
		t.Fatal(err)
	}
	if e := relErr(m.Apply(b), want); e > 1e-5 {
		t.Fatalf("duplicates: error %g", e)
	}
}

func TestRepeatedApplyIsStable(t *testing.T) {
	// Scratch reuse across applies must not contaminate results.
	pts := pointset.Cube(1500, 3, 53)
	m, err := Build(pts, kernel.Coulomb{}, Config{Kind: DataDriven, Mode: OnTheFly, Tol: 1e-6, LeafSize: 60, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	b := randVec(1500, 54)
	first := m.Apply(b)
	for trial := 0; trial < 3; trial++ {
		again := m.Apply(b)
		for i := range first {
			if first[i] != again[i] {
				t.Fatalf("apply %d differs at %d", trial, i)
			}
		}
		// Interleave a different vector to dirty the scratch buffers.
		m.Apply(randVec(1500, int64(60+trial)))
	}
}

func TestBasisVectorColumns(t *testing.T) {
	// Applying to unit vectors extracts matrix columns; spot-check a few
	// against direct kernel evaluation.
	pts := pointset.Cube(800, 3, 55)
	m, err := Build(pts, kernel.Exponential{}, Config{Kind: DataDriven, Tol: 1e-8, LeafSize: 50})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range []int{0, 399, 799} {
		e := make([]float64, 800)
		e[j] = 1
		col := m.Apply(e)
		for _, i := range []int{5, 200, 795} {
			want := kernel.Eval(kernel.Exponential{}, pts.At(i), pts.At(j))
			if i == j {
				want = 1 // exp(-0)
			}
			if math.Abs(col[i]-want) > 1e-6 {
				t.Fatalf("column %d row %d: got %g want %g", j, i, col[i], want)
			}
		}
	}
}

func TestQuickRandomWorkloads(t *testing.T) {
	// Property: for random small workloads across kinds/modes/dims, the H²
	// product agrees with the dense product to within 100x the tolerance.
	f := func(seed int64, pick uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 300 + rng.Intn(500)
		d := 2 + rng.Intn(3)
		pts := pointset.Cube(n, d, seed)
		kind := DataDriven
		if pick&1 != 0 {
			kind = Interpolation
		}
		mode := Normal
		if pick&2 != 0 {
			mode = OnTheFly
		}
		tol := 1e-5
		m, err := Build(pts, kernel.Exponential{}, Config{Kind: kind, Mode: mode, Tol: tol, LeafSize: 40})
		if err != nil {
			return false
		}
		b := randVec(n, seed+1)
		want := DirectApply(pts, kernel.Exponential{}, b, 0)
		return relErr(m.Apply(b), want) < 100*tol
	}
	cfg := &quick.Config{MaxCount: 8, Rand: rand.New(rand.NewSource(99))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestClusteredDistribution(t *testing.T) {
	// Two tight, well-separated clusters: stresses admissibility at the top
	// of the tree and near-duplicate sampling.
	pts := pointset.New(0, 3)
	rng := rand.New(rand.NewSource(56))
	for i := 0; i < 600; i++ {
		base := 0.0
		if i%2 == 1 {
			base = 20
		}
		pts.Append([]float64{base + rng.Float64(), rng.Float64(), rng.Float64()})
	}
	b := randVec(600, 57)
	want := DirectApply(pts, kernel.Coulomb{}, b, 0)
	m, err := Build(pts, kernel.Coulomb{}, Config{Kind: DataDriven, Mode: OnTheFly, Tol: 1e-7, LeafSize: 40})
	if err != nil {
		t.Fatal(err)
	}
	if e := relErr(m.Apply(b), want); e > 1e-6 {
		t.Fatalf("clustered: error %g", e)
	}
	// The two clusters must interact through a coupling block high in the
	// tree, not through dense nearfield.
	if m.Stats().InteractionBlocks == 0 {
		t.Fatal("well-separated clusters must produce interaction blocks")
	}
}

func TestSignChangingAndFlatKernels(t *testing.T) {
	// The thin-plate spline grows with distance and changes sign — a
	// stress test for the sign-oblivious sampling and pivoted
	// factorizations; the inverse multiquadric is smooth at the origin.
	pts := pointset.Cube(1200, 2, 200)
	b := randVec(1200, 201)
	for _, k := range []kernel.Kernel{kernel.ThinPlate{}, kernel.InverseMultiquadric{C: 0.5}, kernel.Matern52{Length: 1}} {
		want := DirectApply(pts, k, b, 0)
		m, err := Build(pts, k, Config{Kind: DataDriven, Mode: OnTheFly, Tol: 1e-7, LeafSize: 60})
		if err != nil {
			t.Fatal(err)
		}
		if e := relErr(m.Apply(b), want); e > 1e-5 {
			t.Fatalf("%s: relative error %g", k.Name(), e)
		}
	}
}

func TestZeroInputVector(t *testing.T) {
	pts := pointset.Cube(500, 3, 58)
	m, err := Build(pts, kernel.Coulomb{}, Config{Kind: DataDriven, Tol: 1e-6, LeafSize: 50})
	if err != nil {
		t.Fatal(err)
	}
	y := m.Apply(make([]float64, 500))
	for i, v := range y {
		if v != 0 {
			t.Fatalf("A*0 != 0 at %d: %g", i, v)
		}
	}
}

func TestOneDimensionalPoints(t *testing.T) {
	pts := pointset.Cube(1000, 1, 59)
	b := randVec(1000, 60)
	want := DirectApply(pts, kernel.Exponential{}, b, 0)
	for _, kind := range []BasisKind{DataDriven, Interpolation} {
		m, err := Build(pts, kernel.Exponential{}, Config{Kind: kind, Mode: OnTheFly, Tol: 1e-7, LeafSize: 40})
		if err != nil {
			t.Fatal(err)
		}
		if e := relErr(m.Apply(b), want); e > 1e-6 {
			t.Fatalf("%v 1-D: error %g", kind, e)
		}
	}
}
