package core

import (
	"fmt"

	"h2ds/internal/kernel"
	"h2ds/internal/mat"
	"h2ds/internal/par"
)

// Workspace holds every buffer a matvec needs, so repeated products — the
// iterative-solve workload the paper motivates the normal mode with (§VI-B)
// — touch the allocator only on the first call. It carves per-node q/g
// segments out of two flat slabs via prefix sums over the node ranks
// (contiguous by construction, one cache-friendly block per level), keeps
// the two N-length permutation buffers, and owns the per-worker scratch
// tiles of the on-the-fly mode.
//
// Concurrency contract: a Workspace may be used by ONE goroutine at a time.
// Concurrent callers either create one workspace each (NewWorkspace) or use
// the convenience entry points (ApplyTo, ApplyTranspose, ApplyBatchTo),
// which draw from an internal sync.Pool — concurrent requests then cost at
// most one workspace per in-flight call, reused across calls.
//
// The sweep kernels are bound to the workspace as method-value closures at
// construction time; per-call parameters travel through workspace fields.
// This keeps the steady-state matvec at zero allocations per operation: the
// serial path runs inline, and the parallel sweeps run on the workspace's
// persistent par.Pool — the same long-lived worker goroutines across all
// five sweeps and across successive applies — instead of forking and
// joining fresh goroutines per tree level.
type Workspace struct {
	m *Matrix

	// pool is the workspace's persistent parallel runtime. Workspaces are
	// checked out by one goroutine at a time (the pool's contract), so
	// concurrent applies each drive their own pool. A nil pool falls back
	// to the fork-join par.ForWorker — the seed runtime, kept for the
	// equivalence tests.
	pool    *par.Pool
	workers int

	// Permutation buffers (length N).
	bp, yp []float64

	// Prefix sums over the row-side and column-side ranks, indexed by node
	// id; node i's segment is slab[off[i]:off[i+1]]. For shared bases the
	// two offset tables are the same slice; the slabs are always distinct
	// because q and g live simultaneously.
	rowOff, colOff   []int
	rowSlab, colSlab []float64

	// Per-worker tile buffers for on-the-fly assembly (grown on demand when
	// the configured worker count rises). The fused on-the-fly path only
	// uses them as one-row panels in the batch sweeps; the seed path (and
	// seedOTF test mode) reshapes them to full tiles.
	scratch []*mat.Dense

	// ctr holds per-worker on-the-fly instrumentation, padded to ctrStride
	// int64s per worker to keep workers off each other's cache lines:
	// [w*ctrStride+ctrOtfNS] fused-evaluation nanoseconds,
	// [.. +ctrHit] hybrid store hits, [.. +ctrMiss] hybrid misses. Flushed
	// into the matrix's atomics once per apply.
	ctr []int64

	// ---- per-call state consumed by the prebuilt sweep closures ----
	curB, curY []float64 // permuted input/output vectors
	level      []int     // node ids of the level being swept
	q, g       []float64 // slab aliases for the call's q/g roles
	qOff, gOff []int     // matching offset tables

	upFn, coupFn, downFn, leafFn     func(w, i int)
	upTFn, coupTFn, downTFn, leafTFn func(w, i int)

	// ID-based method values for the barrier-free scheduler (the level sweep
	// closures above route through ws.level; the scheduler addresses nodes by
	// id). Prebuilt so selecting a variant per apply is a field copy, not a
	// closure allocation.
	upIDFn, downIDFn   func(w, i int)
	upTIDFn, downTIDFn func(w, i int)
	bUpIDFn, bDownIDFn func(w, i int)

	// Scheduler state: the current apply variant's per-stage kernels, the
	// worker loop method value, and the resettable task-queue state.
	schedUp, schedCoup, schedDown, schedLeaf func(w, i int)
	schedRunFn                               func(slot int)
	sched                                    scheduler

	// Coupling selectors for the sharded scatter/gather apply: identical
	// per-node arithmetic to coupFn/coupTFn/bCoupFn, but indexed through
	// ws.level so a sweep can cover an arbitrary node subset instead of all
	// nodes. Restricting the set never changes a g_i that is computed, which
	// is what keeps the distributed apply bitwise-equal to the single-node
	// one.
	coupSelFn, coupTSelFn, bCoupSelFn func(w, i int)

	// ---- batch (multi-RHS) state ----
	k                  int // current batch width
	bpB, ypB           *mat.Dense
	rowSlabB, colSlabB []float64
	qB, gB             []*mat.Dense // per-node headers re-pointed into the slabs
	viewIn, viewOut    []*mat.Dense // per-worker leaf-range views

	bUpFn, bCoupFn, bDownFn, bLeafFn func(w, i int)
}

// NewWorkspace allocates a workspace sized for m's tree and ranks. Reuse it
// across products from a single goroutine; for ad-hoc calls prefer ApplyTo,
// which pools workspaces internally.
func (m *Matrix) NewWorkspace() *Workspace {
	nNodes := len(m.Tree.Nodes)
	ws := &Workspace{m: m}
	ws.bp = make([]float64, m.N)
	ws.yp = make([]float64, m.N)
	ws.rowOff = make([]int, nNodes+1)
	for i := 0; i < nNodes; i++ {
		ws.rowOff[i+1] = ws.rowOff[i] + m.ranks[i]
	}
	if m.sharedBasis {
		ws.colOff = ws.rowOff
	} else {
		ws.colOff = make([]int, nNodes+1)
		for i := 0; i < nNodes; i++ {
			ws.colOff[i+1] = ws.colOff[i] + m.colRank(i)
		}
	}
	ws.rowSlab = make([]float64, ws.rowOff[nNodes])
	ws.colSlab = make([]float64, ws.colOff[nNodes])
	ws.workers = par.Resolve(m.Cfg.Workers)
	ws.pool = par.NewPool(ws.workers)
	ws.growScratch(ws.workers)

	ws.upFn = ws.upLevel
	ws.coupFn = ws.coupNode
	ws.downFn = ws.downLevel
	ws.leafFn = ws.leafNode
	ws.upTFn = ws.upLevelT
	ws.coupTFn = ws.coupNodeT
	ws.downTFn = ws.downLevelT
	ws.leafTFn = ws.leafNodeT
	ws.bUpFn = ws.upLevelB
	ws.bCoupFn = ws.coupNodeB
	ws.bDownFn = ws.downLevelB
	ws.bLeafFn = ws.leafNodeB
	ws.coupSelFn = ws.coupNodeSel
	ws.coupTSelFn = ws.coupNodeTSel
	ws.bCoupSelFn = ws.coupNodeBSel
	ws.upIDFn = ws.upNode
	ws.downIDFn = ws.downNode
	ws.upTIDFn = ws.upNodeT
	ws.downTIDFn = ws.downNodeT
	ws.bUpIDFn = ws.upNodeB
	ws.bDownIDFn = ws.downNodeB
	ws.schedRunFn = ws.runSched
	return ws
}

// upLevel and friends route the level-synchronous sweeps (which index the
// current ws.level slice) to the ID-based per-node kernels shared with the
// barrier-free scheduler.
func (ws *Workspace) upLevel(w, k int)    { ws.upNode(w, ws.level[k]) }
func (ws *Workspace) downLevel(w, k int)  { ws.downNode(w, ws.level[k]) }
func (ws *Workspace) upLevelT(w, k int)   { ws.upNodeT(w, ws.level[k]) }
func (ws *Workspace) downLevelT(w, k int) { ws.downNodeT(w, ws.level[k]) }
func (ws *Workspace) upLevelB(w, k int)   { ws.upNodeB(w, ws.level[k]) }
func (ws *Workspace) downLevelB(w, k int) { ws.downNodeB(w, ws.level[k]) }

// coupNodeSel and friends route a subset coupling sweep (node ids in
// ws.level) to the full-sweep per-node kernels.
func (ws *Workspace) coupNodeSel(w, k int)  { ws.coupNode(w, ws.level[k]) }
func (ws *Workspace) coupNodeTSel(w, k int) { ws.coupNodeT(w, ws.level[k]) }
func (ws *Workspace) coupNodeBSel(w, k int) { ws.coupNodeB(w, ws.level[k]) }

// Per-worker counter layout within Workspace.ctr. The first three slots are
// the on-the-fly instrumentation; the last four accumulate per-stage task
// nanoseconds under the barrier-free scheduler (the level-synchronous path
// times stages by wall clock instead and leaves them zero).
const (
	ctrOtfNS  = 0
	ctrHit    = 1
	ctrMiss   = 2
	ctrUpNS   = 3
	ctrCoupNS = 4
	ctrDownNS = 5
	ctrLeafNS = 6
	ctrStride = 8 // one 64-byte cache line per worker
)

// growScratch ensures at least n per-worker tile buffers and counter lines
// exist.
func (ws *Workspace) growScratch(n int) {
	for len(ws.scratch) < n {
		ws.scratch = append(ws.scratch, mat.NewDense(0, 0))
	}
	if len(ws.ctr) < n*ctrStride {
		ws.ctr = append(ws.ctr, make([]int64, n*ctrStride-len(ws.ctr))...)
	}
}

// flushCounters folds the per-worker counters into the matrix's cumulative
// sweep stats and zeroes them for the next apply. Each total lands in its
// destination with a single atomic add, so overlapping applies on distinct
// workspaces of one matrix interleave whole-apply contributions, never
// partial ones.
func (ws *Workspace) flushCounters() {
	var ns, hit, miss, up, coup, down, leaf int64
	for base := 0; base < len(ws.ctr); base += ctrStride {
		ns += ws.ctr[base+ctrOtfNS]
		hit += ws.ctr[base+ctrHit]
		miss += ws.ctr[base+ctrMiss]
		up += ws.ctr[base+ctrUpNS]
		coup += ws.ctr[base+ctrCoupNS]
		down += ws.ctr[base+ctrDownNS]
		leaf += ws.ctr[base+ctrLeafNS]
		for s := ctrOtfNS; s <= ctrLeafNS; s++ {
			ws.ctr[base+s] = 0
		}
	}
	if ns != 0 {
		ws.m.sweeps.otfAssembly.Add(ns)
	}
	if hit != 0 {
		ws.m.sweeps.hybridHits.Add(hit)
	}
	if miss != 0 {
		ws.m.sweeps.hybridMisses.Add(miss)
	}
	if up|coup|down|leaf != 0 {
		ws.m.sweeps.recordStages(up, coup, down, leaf)
	}
}

// check validates the workspace against the matrix it is about to serve and
// adapts to a changed worker count (resizing the pool if the resolved count
// moved, e.g. under a GOMAXPROCS change).
func (ws *Workspace) check(m *Matrix, workers int) {
	if ws.m != m {
		panic("core: workspace used with a different Matrix than it was created for")
	}
	ws.workers = workers
	if ws.pool != nil && ws.pool.Workers() != workers {
		ws.pool.Close()
		ws.pool = par.NewPool(workers)
	}
	ws.growScratch(workers)
}

// forWorker runs one sweep phase on the workspace's persistent pool, or on
// the fork-join runtime when the pool has been released (nil).
func (ws *Workspace) forWorker(n int, fn func(w, i int)) {
	if ws.pool != nil {
		ws.pool.ForWorker(n, fn)
		return
	}
	par.ForWorker(ws.workers, n, fn)
}

// Close releases the workspace's persistent worker goroutines. It is safe
// to keep using the workspace afterwards (sweeps fall back to the fork-join
// runtime); unclosed workspaces release their goroutines via a finalizer
// when garbage-collected, so Close is an optimization for deterministic
// teardown, not a correctness requirement.
func (ws *Workspace) Close() {
	if ws.pool != nil {
		ws.pool.Close()
		ws.pool = nil
	}
}

// BatchWidth returns the multi-RHS width the batch buffers are currently
// shaped for: the k of the most recent ApplyBatchToWith call, or 0 before
// the first one. Serving layers read it to report the effective coalescing
// width a reused workspace is operating at.
func (ws *Workspace) BatchWidth() int { return ws.k }

// Bytes returns the deterministic payload size of the vector-path buffers
// (permute buffers plus both rank slabs). Scratch tiles are accounted
// separately (MemoryStats.ScratchPerWorker); batch slabs grow with the
// batch width and are excluded.
func (ws *Workspace) Bytes() int64 {
	return int64(len(ws.bp)+len(ws.yp)+len(ws.rowSlab)+len(ws.colSlab)) * 8
}

// getWorkspace draws a workspace from the matrix's pool, creating one on
// first use.
func (m *Matrix) getWorkspace() *Workspace {
	if ws, ok := m.wsPool.Get().(*Workspace); ok {
		return ws
	}
	return m.NewWorkspace()
}

// putWorkspace returns a workspace to the pool.
func (m *Matrix) putWorkspace(ws *Workspace) { m.wsPool.Put(ws) }

// workspaceBytes is the deterministic size of one vector-path workspace,
// computed from the representation shape without allocating one.
func (m *Matrix) workspaceBytes() int64 {
	var rows, cols int
	for i := range m.Tree.Nodes {
		rows += m.ranks[i]
		cols += m.colRank(i)
	}
	return int64(2*m.N+rows+cols) * 8
}

// ApplyToWith computes y = Â b into y (original point ordering) using the
// caller-owned workspace: zero allocations in steady state. y and b must
// both have length N; they may alias (the product round-trips through the
// workspace's permutation buffers).
func (m *Matrix) ApplyToWith(ws *Workspace, y, b []float64) {
	if len(y) != m.N || len(b) != m.N {
		panic(fmt.Sprintf("core: apply length mismatch y=%d b=%d n=%d", len(y), len(b), m.N))
	}
	m.Tree.PermuteVec(ws.bp, b)
	m.applyPermutedWith(ws, ws.yp, ws.bp)
	m.Tree.UnpermuteVec(y, ws.yp)
}

// ApplyTransposeToWith computes y = Âᵀ b into y using the caller-owned
// workspace. y and b must both have length N; they may alias.
func (m *Matrix) ApplyTransposeToWith(ws *Workspace, y, b []float64) {
	if len(y) != m.N || len(b) != m.N {
		panic(fmt.Sprintf("core: applyTranspose length mismatch y=%d b=%d n=%d", len(y), len(b), m.N))
	}
	m.Tree.PermuteVec(ws.bp, b)
	m.applyTransposePermutedWith(ws, ws.yp, ws.bp)
	m.Tree.UnpermuteVec(y, ws.yp)
}

// applyPermutedWith runs the five sweeps of Algorithm 2 on permuted vectors
// with all state drawn from ws. yp and bp must not alias (stage 5 reads
// bp's nearfield neighbours while writing yp).
func (m *Matrix) applyPermutedWith(ws *Workspace, yp, bp []float64) {
	ws.check(m, par.Resolve(m.Cfg.Workers))
	ws.curB, ws.curY = bp, yp
	// Apply role assignment: q carries column-side coefficients, g row-side.
	ws.q, ws.qOff = ws.colSlab, ws.colOff
	ws.g, ws.gOff = ws.rowSlab, ws.rowOff

	if ws.useSched() {
		ws.schedUp, ws.schedCoup = ws.upIDFn, ws.coupFn
		ws.schedDown, ws.schedLeaf = ws.downIDFn, ws.leafFn
		ws.runScheduled()
	} else {
		t0 := nowNS()
		for l := m.Tree.Depth() - 1; l >= 0; l-- {
			ws.level = m.Tree.Levels[l]
			ws.forWorker(len(ws.level), ws.upFn)
		}
		t1 := nowNS()
		ws.forWorker(len(m.Tree.Nodes), ws.coupFn)
		t2 := nowNS()
		for l := 0; l < m.Tree.Depth(); l++ {
			ws.level = m.Tree.Levels[l]
			ws.forWorker(len(ws.level), ws.downFn)
		}
		t3 := nowNS()
		ws.forWorker(len(m.Tree.Leaves), ws.leafFn)
		m.sweeps.record(t0, t1, t2, t3, nowNS())
	}
	ws.flushCounters()
	ws.curB, ws.curY = nil, nil
}

// applyTransposePermutedWith is the transpose product with the q/g roles
// exchanged: the upward sweep goes through U/R, couplings apply B_{j,i}ᵀ,
// and the downward/leaf sweeps go through V/W.
func (m *Matrix) applyTransposePermutedWith(ws *Workspace, yp, bp []float64) {
	ws.check(m, par.Resolve(m.Cfg.Workers))
	ws.curB, ws.curY = bp, yp
	ws.q, ws.qOff = ws.rowSlab, ws.rowOff
	ws.g, ws.gOff = ws.colSlab, ws.colOff

	if ws.useSched() {
		ws.schedUp, ws.schedCoup = ws.upTIDFn, ws.coupTFn
		ws.schedDown, ws.schedLeaf = ws.downTIDFn, ws.leafTFn
		ws.runScheduled()
	} else {
		t0 := nowNS()
		for l := m.Tree.Depth() - 1; l >= 0; l-- {
			ws.level = m.Tree.Levels[l]
			ws.forWorker(len(ws.level), ws.upTFn)
		}
		t1 := nowNS()
		ws.forWorker(len(m.Tree.Nodes), ws.coupTFn)
		t2 := nowNS()
		for l := 0; l < m.Tree.Depth(); l++ {
			ws.level = m.Tree.Levels[l]
			ws.forWorker(len(ws.level), ws.downTFn)
		}
		t3 := nowNS()
		ws.forWorker(len(m.Tree.Leaves), ws.leafTFn)
		m.sweeps.record(t0, t1, t2, t3, nowNS())
	}
	ws.flushCounters()
	ws.curB, ws.curY = nil, nil
}

// seg returns node id's segment of the given slab.
func seg(slab []float64, off []int, id int) []float64 { return slab[off[id]:off[id+1]] }

// zero clears a segment in place.
func zero(s []float64) {
	for i := range s {
		s[i] = 0
	}
}

// upNode is stage 1+2 for Apply: leaves project their input slice through
// the column basis; internal nodes combine children through the stacked
// column transfer blocks.
func (ws *Workspace) upNode(_, id int) {
	m := ws.m
	nd := &m.Tree.Nodes[id]
	qi := seg(ws.q, ws.qOff, id)
	zero(qi)
	if len(qi) == 0 {
		return
	}
	if nd.IsLeaf {
		mat.MulTVecAdd(qi, m.colBasis(id), ws.curB[nd.Start:nd.End])
		return
	}
	off := 0
	for _, c := range nd.Children {
		rc := m.colRank(c)
		if rc > 0 {
			mat.MulTVecAddRange(qi, m.colTrans(id), off, off+rc, seg(ws.q, ws.qOff, c))
		}
		off += rc
	}
}

// coupNode is stage 3 for Apply: g_i = Σ_{j ∈ IL(i)} B_{i,j} q_j, with
// on-the-fly assembly into the worker's scratch tile when no blocks are
// stored.
func (ws *Workspace) coupNode(w, id int) {
	m := ws.m
	gi := seg(ws.g, ws.gOff, id)
	zero(gi)
	if len(gi) == 0 {
		return
	}
	for _, j := range m.Tree.Nodes[id].Interaction {
		if m.colRank(j) == 0 {
			continue
		}
		qj := seg(ws.q, ws.qOff, j)
		switch m.Cfg.Mode {
		case Normal:
			m.coup.Apply(gi, id, j, qj)
			continue
		case Hybrid:
			if m.coup.applyOTFOrder(gi, id, j, qj) {
				ws.ctr[w*ctrStride+ctrHit]++
				continue
			}
			ws.ctr[w*ctrStride+ctrMiss]++
		}
		t := nowNS()
		if m.seedOTF {
			tile := kernel.Assemble(ws.scratch[w], m.Kern, m.skelPts[id], m.skel[id], m.skelPts[j], m.colSkeleton(j))
			mat.MulVecAdd(gi, tile, qj)
		} else if m.Cfg.FastMath {
			kernel.BlockVecAddFMA(gi, m.Kern, m.skelPts[id], m.skel[id], m.skelPts[j], m.colSkeleton(j), qj)
		} else {
			kernel.BlockVecAdd(gi, m.Kern, m.skelPts[id], m.skel[id], m.skelPts[j], m.colSkeleton(j), qj)
		}
		ws.ctr[w*ctrStride+ctrOtfNS] += nowNS() - t
	}
}

// downNode is stage 4 for Apply: g_c += R_c g_i, parents writing only their
// own children's segments.
func (ws *Workspace) downNode(_, id int) {
	m := ws.m
	nd := &m.Tree.Nodes[id]
	if nd.IsLeaf || m.ranks[id] == 0 {
		return
	}
	gi := seg(ws.g, ws.gOff, id)
	off := 0
	for _, c := range nd.Children {
		rc := m.ranks[c]
		if rc > 0 {
			mat.MulVecAddRange(seg(ws.g, ws.gOff, c), m.trans[id], off, off+rc, gi)
		}
		off += rc
	}
}

// leafNode is stage 5 for Apply: expand the farfield result through the
// leaf basis and add the dense nearfield interactions.
func (ws *Workspace) leafNode(w, k int) {
	m := ws.m
	id := m.Tree.Leaves[k]
	nd := &m.Tree.Nodes[id]
	yi := ws.curY[nd.Start:nd.End]
	zero(yi)
	if m.ranks[id] > 0 {
		mat.MulVecAdd(yi, m.u[id], seg(ws.g, ws.gOff, id))
	}
	for _, j := range nd.Near {
		nj := &m.Tree.Nodes[j]
		bj := ws.curB[nj.Start:nj.End]
		switch m.Cfg.Mode {
		case Normal:
			m.near.Apply(yi, id, j, bj)
			continue
		case Hybrid:
			if m.near.applyOTFOrder(yi, id, j, bj) {
				ws.ctr[w*ctrStride+ctrHit]++
				continue
			}
			ws.ctr[w*ctrStride+ctrMiss]++
		}
		t := nowNS()
		if m.seedOTF {
			tile := kernel.Assemble(ws.scratch[w], m.Kern, m.Tree.Points, m.leafRange(id), m.Tree.Points, m.leafRange(j))
			mat.MulVecAdd(yi, tile, bj)
		} else if m.Cfg.FastMath {
			kernel.BlockVecAddFMA(yi, m.Kern, m.Tree.Points, m.leafRange(id), m.Tree.Points, m.leafRange(j), bj)
		} else {
			kernel.BlockVecAdd(yi, m.Kern, m.Tree.Points, m.leafRange(id), m.Tree.Points, m.leafRange(j), bj)
		}
		ws.ctr[w*ctrStride+ctrOtfNS] += nowNS() - t
	}
}

// upNodeT is the transpose upward sweep through the ROW generators (U, R).
func (ws *Workspace) upNodeT(_, id int) {
	m := ws.m
	nd := &m.Tree.Nodes[id]
	qi := seg(ws.q, ws.qOff, id)
	zero(qi)
	if len(qi) == 0 {
		return
	}
	if nd.IsLeaf {
		mat.MulTVecAdd(qi, m.u[id], ws.curB[nd.Start:nd.End])
		return
	}
	off := 0
	for _, c := range nd.Children {
		rc := m.ranks[c]
		if rc > 0 {
			mat.MulTVecAddRange(qi, m.trans[id], off, off+rc, seg(ws.q, ws.qOff, c))
		}
		off += rc
	}
}

// coupNodeT is the transpose coupling sweep: g_i = Σ_j B_{j,i}ᵀ q_j. The
// interaction lists are symmetric as sets, so iterating i's own list covers
// exactly the blocks whose transpose writes into i.
func (ws *Workspace) coupNodeT(w, id int) {
	m := ws.m
	gi := seg(ws.g, ws.gOff, id)
	zero(gi)
	if len(gi) == 0 {
		return
	}
	for _, j := range m.Tree.Nodes[id].Interaction {
		if m.ranks[j] == 0 {
			continue
		}
		qj := seg(ws.q, ws.qOff, j)
		switch m.Cfg.Mode {
		case Normal:
			// g_i += B_{j,i}ᵀ q_j. In triangular (symmetric) storage,
			// Apply(g, i, j, q) already computes B_{i,j} q = B_{j,i}ᵀ q.
			// In directed storage we must transpose the stored (j, i)
			// block explicitly.
			if m.coup.directed {
				if blk := m.coup.Get(j, id); blk != nil {
					mat.MulTVecAdd(gi, blk, qj)
				}
			} else {
				m.coup.Apply(gi, id, j, qj)
			}
			continue
		case Hybrid:
			if m.coup.applyTransposeOTFOrder(gi, id, j, qj) {
				ws.ctr[w*ctrStride+ctrHit]++
				continue
			}
			ws.ctr[w*ctrStride+ctrMiss]++
		}
		t := nowNS()
		if m.seedOTF {
			tile := kernel.Assemble(ws.scratch[w], m.Kern, m.skelPts[j], m.skel[j], m.skelPts[id], m.colSkeleton(id))
			mat.MulTVecAdd(gi, tile, qj)
		} else if m.Cfg.FastMath {
			kernel.BlockTVecAddFMA(gi, m.Kern, m.skelPts[j], m.skel[j], m.skelPts[id], m.colSkeleton(id), qj)
		} else {
			kernel.BlockTVecAdd(gi, m.Kern, m.skelPts[j], m.skel[j], m.skelPts[id], m.colSkeleton(id), qj)
		}
		ws.ctr[w*ctrStride+ctrOtfNS] += nowNS() - t
	}
}

// downNodeT is the transpose downward sweep through the COLUMN generators.
func (ws *Workspace) downNodeT(_, id int) {
	m := ws.m
	nd := &m.Tree.Nodes[id]
	if nd.IsLeaf || m.colRank(id) == 0 {
		return
	}
	gi := seg(ws.g, ws.gOff, id)
	off := 0
	for _, c := range nd.Children {
		rc := m.colRank(c)
		if rc > 0 {
			mat.MulVecAddRange(seg(ws.g, ws.gOff, c), m.colTrans(id), off, off+rc, gi)
		}
		off += rc
	}
}

// leafNodeT is the transpose leaf sweep: y_i = V_i g_i + Σ_j K(X_j, X_i)ᵀ b_j.
func (ws *Workspace) leafNodeT(w, k int) {
	m := ws.m
	id := m.Tree.Leaves[k]
	nd := &m.Tree.Nodes[id]
	yi := ws.curY[nd.Start:nd.End]
	zero(yi)
	if m.colRank(id) > 0 {
		mat.MulVecAdd(yi, m.colBasis(id), seg(ws.g, ws.gOff, id))
	}
	for _, j := range nd.Near {
		nj := &m.Tree.Nodes[j]
		bj := ws.curB[nj.Start:nj.End]
		switch m.Cfg.Mode {
		case Normal:
			if m.near.directed {
				if blk := m.near.Get(j, id); blk != nil {
					mat.MulTVecAdd(yi, blk, bj)
				}
			} else {
				m.near.Apply(yi, id, j, bj)
			}
			continue
		case Hybrid:
			if m.near.applyTransposeOTFOrder(yi, id, j, bj) {
				ws.ctr[w*ctrStride+ctrHit]++
				continue
			}
			ws.ctr[w*ctrStride+ctrMiss]++
		}
		t := nowNS()
		if m.seedOTF {
			tile := kernel.Assemble(ws.scratch[w], m.Kern, m.Tree.Points, m.leafRange(j), m.Tree.Points, m.leafRange(id))
			mat.MulTVecAdd(yi, tile, bj)
		} else if m.Cfg.FastMath {
			kernel.BlockTVecAddFMA(yi, m.Kern, m.Tree.Points, m.leafRange(j), m.Tree.Points, m.leafRange(id), bj)
		} else {
			kernel.BlockTVecAdd(yi, m.Kern, m.Tree.Points, m.leafRange(j), m.Tree.Points, m.leafRange(id), bj)
		}
		ws.ctr[w*ctrStride+ctrOtfNS] += nowNS() - t
	}
}

// ---- batched multi-RHS path ----

// ensureBatch sizes the batch buffers for width k: the N-by-k permutation
// buffers, one slab per rank side, and per-node matrix headers re-pointed
// into the slabs. Everything is reused across calls; buffers only grow.
func (ws *Workspace) ensureBatch(k int) {
	m := ws.m
	nNodes := len(m.Tree.Nodes)
	if ws.bpB == nil {
		ws.bpB = mat.NewDense(0, 0)
		ws.ypB = mat.NewDense(0, 0)
		ws.qB = make([]*mat.Dense, nNodes)
		ws.gB = make([]*mat.Dense, nNodes)
		for i := 0; i < nNodes; i++ {
			ws.qB[i] = &mat.Dense{}
			ws.gB[i] = &mat.Dense{}
		}
	}
	for len(ws.viewIn) < len(ws.scratch) {
		ws.viewIn = append(ws.viewIn, &mat.Dense{})
		ws.viewOut = append(ws.viewOut, &mat.Dense{})
	}
	ws.bpB.Reshape(m.N, k)
	ws.ypB.Reshape(m.N, k)
	if need := ws.rowOff[nNodes] * k; cap(ws.rowSlabB) < need {
		ws.rowSlabB = make([]float64, need)
	}
	if need := ws.colOff[nNodes] * k; cap(ws.colSlabB) < need {
		ws.colSlabB = make([]float64, need)
	}
	for id := 0; id < nNodes; id++ {
		g := ws.gB[id]
		g.Rows, g.Cols = ws.rowOff[id+1]-ws.rowOff[id], k
		g.Data = ws.rowSlabB[ws.rowOff[id]*k : ws.rowOff[id+1]*k]
		q := ws.qB[id]
		q.Rows, q.Cols = ws.colOff[id+1]-ws.colOff[id], k
		q.Data = ws.colSlabB[ws.colOff[id]*k : ws.colOff[id+1]*k]
	}
	ws.k = k
}

// rowsView points header v at rows [r0, r1) of the row-major matrix a
// (shared backing, no copy).
func rowsView(v, a *mat.Dense, r0, r1 int) *mat.Dense {
	v.Rows, v.Cols = r1-r0, a.Cols
	v.Data = a.Data[r0*a.Cols : r1*a.Cols]
	return v
}

// ApplyBatchToWith computes Y = Â B for k right-hand sides stored as the
// columns of the N-by-k matrix B, using the caller-owned workspace. Y is
// reshaped to N-by-k; Y and B may alias. The five sweeps run once with
// matrix-valued node states, so every coupling and nearfield block — in
// on-the-fly mode, every tile assembly — is visited once for the whole
// batch instead of once per column, and each stage is a small blocked GEMM.
func (m *Matrix) ApplyBatchToWith(ws *Workspace, Y, B *mat.Dense) {
	if B.Rows != m.N {
		panic(fmt.Sprintf("core: applyBatch rows %d want %d", B.Rows, m.N))
	}
	k := B.Cols
	ws.check(m, par.Resolve(m.Cfg.Workers))
	ws.ensureBatch(k)

	// Permute the batch rows.
	for row, orig := range m.Tree.Perm {
		copy(ws.bpB.Row(row), B.Row(orig))
	}

	if ws.useSched() {
		ws.schedUp, ws.schedCoup = ws.bUpIDFn, ws.bCoupFn
		ws.schedDown, ws.schedLeaf = ws.bDownIDFn, ws.bLeafFn
		ws.runScheduled()
	} else {
		t0 := nowNS()
		for l := m.Tree.Depth() - 1; l >= 0; l-- {
			ws.level = m.Tree.Levels[l]
			ws.forWorker(len(ws.level), ws.bUpFn)
		}
		t1 := nowNS()
		ws.forWorker(len(m.Tree.Nodes), ws.bCoupFn)
		t2 := nowNS()
		for l := 0; l < m.Tree.Depth(); l++ {
			ws.level = m.Tree.Levels[l]
			ws.forWorker(len(ws.level), ws.bDownFn)
		}
		t3 := nowNS()
		ws.forWorker(len(m.Tree.Leaves), ws.bLeafFn)
		m.sweeps.record(t0, t1, t2, t3, nowNS())
	}
	ws.flushCounters()

	// Un-permute rows into the caller's output.
	Y.Reshape(m.N, k)
	for row, orig := range m.Tree.Perm {
		copy(Y.Row(orig), ws.ypB.Row(row))
	}
}

// upNodeB is the batched upward sweep: q_i = V_iᵀ B_i for leaves,
// q_i = Σ_c W_cᵀ q_c above.
func (ws *Workspace) upNodeB(w, id int) {
	m := ws.m
	nd := &m.Tree.Nodes[id]
	qi := ws.qB[id]
	zero(qi.Data)
	if qi.Rows == 0 {
		return
	}
	if nd.IsLeaf {
		mat.MulTAddTo(qi, m.colBasis(id), rowsView(ws.viewIn[w], ws.bpB, nd.Start, nd.End))
		return
	}
	off := 0
	for _, c := range nd.Children {
		rc := m.colRank(c)
		if rc > 0 {
			mat.MulTRangeAddTo(qi, m.colTrans(id), off, off+rc, ws.qB[c])
		}
		off += rc
	}
}

// coupNodeB is the batched coupling sweep: one stored-block application or
// tile assembly per block for all k columns.
func (ws *Workspace) coupNodeB(w, id int) {
	m := ws.m
	gi := ws.gB[id]
	zero(gi.Data)
	if gi.Rows == 0 {
		return
	}
	for _, j := range m.Tree.Nodes[id].Interaction {
		if m.colRank(j) == 0 {
			continue
		}
		switch m.Cfg.Mode {
		case Normal:
			m.coup.ApplyBatch(gi, id, j, ws.qB[j])
			continue
		case Hybrid:
			if m.coup.applyBatchOTFOrder(gi, id, j, ws.qB[j]) {
				ws.ctr[w*ctrStride+ctrHit]++
				continue
			}
			ws.ctr[w*ctrStride+ctrMiss]++
		}
		t := nowNS()
		if m.seedOTF {
			tile := kernel.Assemble(ws.scratch[w], m.Kern, m.skelPts[id], m.skel[id], m.skelPts[j], m.colSkeleton(j))
			mat.MulAddTo(gi, tile, ws.qB[j])
		} else if m.Cfg.FastMath {
			kernel.BlockMulAddFMA(gi, m.Kern, m.skelPts[id], m.skel[id], m.skelPts[j], m.colSkeleton(j), ws.qB[j], ws.scratch[w])
		} else {
			kernel.BlockMulAdd(gi, m.Kern, m.skelPts[id], m.skel[id], m.skelPts[j], m.colSkeleton(j), ws.qB[j], ws.scratch[w])
		}
		ws.ctr[w*ctrStride+ctrOtfNS] += nowNS() - t
	}
}

// downNodeB is the batched downward sweep: g_c += R_c g_i.
func (ws *Workspace) downNodeB(_, id int) {
	m := ws.m
	nd := &m.Tree.Nodes[id]
	if nd.IsLeaf || m.ranks[id] == 0 {
		return
	}
	gi := ws.gB[id]
	off := 0
	for _, c := range nd.Children {
		rc := m.ranks[c]
		if rc > 0 {
			mat.MulRangeAddTo(ws.gB[c], m.trans[id], off, off+rc, gi)
		}
		off += rc
	}
}

// leafNodeB is the batched leaf sweep.
func (ws *Workspace) leafNodeB(w, k int) {
	m := ws.m
	id := m.Tree.Leaves[k]
	nd := &m.Tree.Nodes[id]
	yi := rowsView(ws.viewOut[w], ws.ypB, nd.Start, nd.End)
	zero(yi.Data)
	if m.ranks[id] > 0 {
		mat.MulAddTo(yi, m.u[id], ws.gB[id])
	}
	for _, j := range nd.Near {
		nj := &m.Tree.Nodes[j]
		bj := rowsView(ws.viewIn[w], ws.bpB, nj.Start, nj.End)
		switch m.Cfg.Mode {
		case Normal:
			m.near.ApplyBatch(yi, id, j, bj)
			continue
		case Hybrid:
			if m.near.applyBatchOTFOrder(yi, id, j, bj) {
				ws.ctr[w*ctrStride+ctrHit]++
				continue
			}
			ws.ctr[w*ctrStride+ctrMiss]++
		}
		t := nowNS()
		if m.seedOTF {
			tile := kernel.Assemble(ws.scratch[w], m.Kern, m.Tree.Points, m.leafRange(id), m.Tree.Points, m.leafRange(j))
			mat.MulAddTo(yi, tile, bj)
		} else if m.Cfg.FastMath {
			kernel.BlockMulAddFMA(yi, m.Kern, m.Tree.Points, m.leafRange(id), m.Tree.Points, m.leafRange(j), bj, ws.scratch[w])
		} else {
			kernel.BlockMulAdd(yi, m.Kern, m.Tree.Points, m.leafRange(id), m.Tree.Points, m.leafRange(j), bj, ws.scratch[w])
		}
		ws.ctr[w*ctrStride+ctrOtfNS] += nowNS() - t
	}
}
