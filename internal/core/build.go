package core

import (
	"context"
	"runtime/pprof"
	"time"

	"h2ds/internal/interp"
	"h2ds/internal/kernel"
	"h2ds/internal/mat"
	"h2ds/internal/par"
	"h2ds/internal/pointset"
	"h2ds/internal/sample"
)

// parFor is the package's parallel-for for the construction phase. Build and
// deserialization own a transient persistent pool for their duration, so the
// many level-by-level construction phases reuse one set of worker
// goroutines; outside an active build it falls back to the fork-join
// runtime.
func (m *Matrix) parFor(n int, fn func(i int)) {
	if m.buildPool != nil {
		m.buildPool.For(n, fn)
		return
	}
	par.For(m.Cfg.Workers, n, fn)
}

// swapped reverses a kernel's arguments: swapped{k}(x, y) = k(y, x). The
// unsymmetric construction uses it to assemble transposed farfield panels
// for the column-basis IDs.
type swapped struct{ k kernel.Pairwise }

func (s swapped) EvalPair(x, y []float64) float64 { return s.k.EvalPair(y, x) }
func (s swapped) Symmetric() bool                 { return s.k.Symmetric() }
func (s swapped) Name() string                    { return s.k.Name() + "-swapped" }

// newBlock assembles a kernel tile on the fused chunked path, or the
// per-entry seed path under Cfg.SeedConstruction (bench baseline /
// equivalence suites only — the two are bitwise identical).
func (m *Matrix) newBlock(k kernel.Pairwise, x *pointset.Points, rows []int, y *pointset.Points, cols []int) *mat.Dense {
	if m.Cfg.SeedConstruction {
		return kernel.NewBlockSeed(k, x, rows, y, cols)
	}
	return kernel.NewBlock(k, x, rows, y, cols)
}

// buildPhase runs fn with a pprof label attributing its CPU samples to the
// named construction phase, so -pprof profiles of a serving process split
// build cost by phase. Labels attach to the calling goroutine (which
// participates in every pool loop as worker 0); pool workers spawned before
// the phase keep their own labels.
func buildPhase(name string, fn func()) {
	pprof.Do(context.Background(), pprof.Labels("h2phase", name), func(context.Context) { fn() })
}

// buildDataDriven runs the paper's new construction (§II-A): hierarchical
// sampling (Algorithm 1) followed by a bottom-to-top sweep of row
// interpolative decompositions that yields nested bases whose skeletons are
// actual dataset points — making every coupling block a kernel submatrix.
func (m *Matrix) buildDataDriven() {
	if m.Cfg.ReuseHierarchy != nil {
		// Shared hierarchy (library-level Reuse* or a construction-cache
		// hit): no sampling runs, so no sample time is charged.
		m.hier = m.Cfg.ReuseHierarchy
	} else {
		smp := m.Cfg.Sampler
		if m.Cfg.SeedConstruction {
			// A/B baseline: the pre-acceleration candidate scans, same output.
			smp = sample.Reference(smp)
		}
		t0 := time.Now()
		buildPhase("sample", func() {
			m.hier = sample.Run(m.Tree, smp, m.Cfg.SampleBudget, m.Cfg.Workers)
		})
		m.stats.SampleTime = time.Since(t0)
	}

	t1 := time.Now()
	maxRank := m.Cfg.MaxRank
	// Per-node truncation runs tighter than the target accuracy because
	// truncation errors accumulate across tree levels and interaction
	// blocks; the factor is calibrated so the 12-row estimate lands around
	// Tol (see EXPERIMENTS.md).
	idTol := m.Cfg.Tol / 20
	// Bottom-to-top: leaves compress their own points; internal nodes
	// compress the union of their children's skeletons. Nodes on a level
	// are independent. For unsymmetric kernels a second ID on the
	// transposed farfield panel produces the column-side generators
	// (V, W); for symmetric kernels the row side serves both roles.
	buildPhase("basis", func() {
		for l := m.Tree.Depth() - 1; l >= 0; l-- {
			level := m.Tree.Levels[l]
			node := func(k int, pool *par.Pool) {
				id := level[k]
				nd := &m.Tree.Nodes[id]
				m.skelPts[id] = m.Tree.Points
				ystar := m.hier.YStar[id]

				m.buildNodeSide(id, nd.IsLeaf, ystar, m.Kern, idTol, maxRank,
					m.skel, m.ranks, m.u, m.trans, pool)
				if !m.sharedBasis {
					m.buildNodeSide(id, nd.IsLeaf, ystar, swapped{m.Kern}, idTol, maxRank,
						m.colSkel, m.colRanks, m.v, m.wTrans, pool)
				}
			}
			if m.buildPool != nil && len(level)*2 <= m.buildPool.Workers() {
				// Near the root there are fewer nodes than workers, so
				// per-node parallelism starves the pool exactly where the
				// panels are largest. Iterate the nodes sequentially and
				// hand the whole pool to each node's blocked CPQR instead
				// (par.Pool serves one client at a time, so the pool must
				// never be passed down from inside m.parFor).
				for k := range level {
					node(k, m.buildPool)
				}
			} else {
				m.parFor(len(level), func(k int) { node(k, nil) })
			}
		}
	})
	m.stats.BasisTime = time.Since(t1)
}

// buildNodeSide runs one side (row or column) of the data-driven node
// compression: assemble the farfield panel K(candidates, Y*) under kern
// (the swapped kernel for the column side), row-ID it, and record the
// skeleton, rank, and basis/transfer factor into the given side arrays.
// Assembly and factorization time land in the matrix's phase counters
// (assembly everywhere, ID for leaves, transfer for internal nodes).
func (m *Matrix) buildNodeSide(id int, isLeaf bool, ystar []int, kern kernel.Pairwise,
	idTol float64, maxRank int, skel [][]int, ranks []int, basis, trans []*mat.Dense,
	pool *par.Pool) {

	var cand []int
	if isLeaf {
		cand = m.leafRange(id)
	} else {
		for _, c := range m.Tree.Nodes[id].Children {
			cand = append(cand, skel[c]...)
		}
	}
	if len(ystar) == 0 {
		// No farfield anywhere above this node: rank 0 basis.
		ranks[id] = 0
		skel[id] = nil
		if isLeaf {
			basis[id] = mat.NewDense(len(cand), 0)
		} else {
			trans[id] = mat.NewDense(len(cand), 0)
		}
		return
	}
	ta := time.Now()
	a := m.newBlock(kern, m.Tree.Points, cand, m.Tree.Points, ystar)
	ti := time.Now()
	m.phaseAssembly.Add(ti.Sub(ta).Nanoseconds())
	var id2 *mat.RowID
	if m.Cfg.SeedConstruction {
		id2 = mat.NewRowIDUnblocked(a, idTol, maxRank)
	} else {
		id2 = mat.NewRowIDPool(a, idTol, maxRank, pool)
	}
	if isLeaf {
		m.phaseID.Add(time.Since(ti).Nanoseconds())
	} else {
		m.phaseTransfer.Add(time.Since(ti).Nanoseconds())
	}
	sel := make([]int, id2.Rank)
	for s, loc := range id2.Skel {
		sel[s] = cand[loc]
	}
	skel[id] = sel
	ranks[id] = id2.Rank
	if isLeaf {
		basis[id] = id2.T
	} else {
		trans[id] = id2.T
	}
}

// buildInterpolation runs the tensor-grid Chebyshev baseline (§I-B2):
// every node gets a p-per-direction grid over its bounding box; leaf bases
// are Lagrange evaluations at the node's points and transfers re-evaluate
// the parent's polynomials on the child grids (exact, preserving nesting).
// The rank is p^d for every node — the curse of dimensionality.
func (m *Matrix) buildInterpolation() {
	t1 := time.Now()
	p := m.Cfg.P
	grids := make([]*interp.Grid, len(m.Tree.Nodes))
	// Grids first (needed by both leaf bases and parent transfers).
	m.parFor(len(m.Tree.Nodes), func(id int) {
		grids[id] = interp.NewGrid(m.Tree.Nodes[id].Box, p)
	})
	rank := grids[0].Rank()
	gridIdx := make([]int, rank)
	for i := range gridIdx {
		gridIdx[i] = i
	}
	m.parFor(len(m.Tree.Nodes), func(id int) {
		nd := &m.Tree.Nodes[id]
		m.ranks[id] = rank
		m.skel[id] = gridIdx
		m.skelPts[id] = grids[id].Points()
		if nd.IsLeaf {
			m.u[id] = grids[id].BasisMatrix(m.Tree.Points, m.leafRange(id))
			return
		}
		// Stack the children transfer blocks in child order.
		tr := mat.NewDense(len(nd.Children)*rank, rank)
		for c, cid := range nd.Children {
			tm := interp.TransferMatrix(grids[id], grids[cid])
			for r := 0; r < rank; r++ {
				copy(tr.Row(c*rank+r), tm.Row(r))
			}
		}
		m.trans[id] = tr
	})
	m.stats.BasisTime = time.Since(t1)
}
