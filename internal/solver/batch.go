package solver

import (
	"math"

	"h2ds/internal/mat"
)

// BatchOperator is an operator that can apply itself to a block of
// right-hand sides at once (Y = A B for N-by-k matrices). core.Matrix
// satisfies it via ApplyBatchTo; the batched product visits every coupling
// and nearfield block — in on-the-fly mode, every kernel tile assembly —
// once for the whole block instead of once per column.
type BatchOperator interface {
	ApplyBatchTo(y, b *mat.Dense)
}

// ShiftedBatch wraps a batch operator as A + σI, the multi-RHS twin of
// Shifted.
type ShiftedBatch struct {
	Op    BatchOperator
	Sigma float64
}

// ApplyBatchTo implements BatchOperator.
func (s ShiftedBatch) ApplyBatchTo(y, b *mat.Dense) {
	s.Op.ApplyBatchTo(y, b)
	if s.Sigma != 0 {
		for i, v := range b.Data {
			y.Data[i] += s.Sigma * v
		}
	}
}

// CGMulti solves A X = B column by column for symmetric positive definite A
// with conjugate gradients, sharing one batched matrix-vector product per
// iteration across all k right-hand sides. Each column runs the exact CG
// recurrence it would run alone (its own alpha/beta and stopping test), so
// the returned per-column results match k independent CG solves; the
// batching only amortizes the operator applications. Columns that converge
// early have their search direction zeroed and stop updating while the rest
// finish.
func CGMulti(a BatchOperator, B *mat.Dense, tol float64, maxIter int) []Result {
	n, k := B.Rows, B.Cols
	if maxIter <= 0 {
		maxIter = n
	}
	if tol <= 0 {
		tol = 1e-10
	}
	x := mat.NewDense(n, k)
	r := B.Clone()
	p := B.Clone()
	ap := mat.NewDense(n, k)

	results := make([]Result, k)
	done := make([]bool, k)
	bnorm := make([]float64, k)
	rr := make([]float64, k)
	active := 0
	for j := 0; j < k; j++ {
		bnorm[j] = colNorm2(B, j)
		rr[j] = colDot(r, r, j)
		if bnorm[j] == 0 {
			results[j].Converged = true
			done[j] = true
			zeroCol(p, j)
			continue
		}
		active++
	}

	for it := 0; it < maxIter && active > 0; it++ {
		a.ApplyBatchTo(ap, p)
		for j := 0; j < k; j++ {
			if done[j] {
				continue
			}
			pap := colDot(p, ap, j)
			if pap <= 0 {
				// Not SPD (or numerically singular): stop with best iterate.
				results[j].Residual = math.Sqrt(rr[j]) / bnorm[j]
				done[j] = true
				active--
				zeroCol(p, j)
				continue
			}
			alpha := rr[j] / pap
			colAxpy(alpha, p, x, j)
			colAxpy(-alpha, ap, r, j)
			rrNew := colDot(r, r, j)
			results[j].Iterations = it + 1
			if math.Sqrt(rrNew) <= tol*bnorm[j] {
				results[j].Residual = math.Sqrt(rrNew) / bnorm[j]
				results[j].Converged = true
				done[j] = true
				active--
				zeroCol(p, j)
				continue
			}
			beta := rrNew / rr[j]
			for i := 0; i < n; i++ {
				p.Data[i*k+j] = r.Data[i*k+j] + beta*p.Data[i*k+j]
			}
			rr[j] = rrNew
		}
	}

	for j := 0; j < k; j++ {
		xj := make([]float64, n)
		for i := 0; i < n; i++ {
			xj[i] = x.At(i, j)
		}
		results[j].X = xj
		if !done[j] && bnorm[j] > 0 {
			results[j].Residual = math.Sqrt(rr[j]) / bnorm[j]
		}
	}
	return results
}

// colDot returns the dot product of column j of a and b.
func colDot(a, b *mat.Dense, j int) float64 {
	k := a.Cols
	s := 0.0
	for i := 0; i < a.Rows; i++ {
		s += a.Data[i*k+j] * b.Data[i*k+j]
	}
	return s
}

// colNorm2 returns the Euclidean norm of column j of a, with overflow
// guarding.
func colNorm2(a *mat.Dense, j int) float64 {
	k := a.Cols
	maxAbs := 0.0
	for i := 0; i < a.Rows; i++ {
		if w := math.Abs(a.Data[i*k+j]); w > maxAbs {
			maxAbs = w
		}
	}
	if maxAbs == 0 {
		return 0
	}
	sum := 0.0
	for i := 0; i < a.Rows; i++ {
		w := a.Data[i*k+j] / maxAbs
		sum += w * w
	}
	return maxAbs * math.Sqrt(sum)
}

// colAxpy computes column j of y += alpha * column j of x.
func colAxpy(alpha float64, x, y *mat.Dense, j int) {
	k := x.Cols
	for i := 0; i < x.Rows; i++ {
		y.Data[i*k+j] += alpha * x.Data[i*k+j]
	}
}

// zeroCol clears column j of a so a converged column contributes nothing to
// subsequent batched products.
func zeroCol(a *mat.Dense, j int) {
	k := a.Cols
	for i := 0; i < a.Rows; i++ {
		a.Data[i*k+j] = 0
	}
}
