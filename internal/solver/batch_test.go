package solver

import (
	"math"
	"math/rand"
	"testing"

	"h2ds/internal/mat"
)

// denseBatchOp wraps a dense matrix as both an Operator and a BatchOperator
// so CGMulti results can be checked against independent CG runs.
type denseBatchOp struct{ a *mat.Dense }

func (d denseBatchOp) ApplyTo(y, b []float64) { mat.MulVecTo(y, d.a, b) }

func (d denseBatchOp) ApplyBatchTo(y, b *mat.Dense) {
	y.Reshape(d.a.Rows, b.Cols)
	y.Reset()
	mat.MulAddTo(y, d.a, b)
}

func TestCGMultiMatchesCG(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const n, k = 60, 5
	op := denseBatchOp{randSPD(rng, n)}
	B := mat.NewDense(n, k)
	for i := range B.Data {
		B.Data[i] = rng.NormFloat64()
	}
	res := CGMulti(op, B, 1e-10, 0)
	if len(res) != k {
		t.Fatalf("got %d results want %d", len(res), k)
	}
	for j := 0; j < k; j++ {
		if !res[j].Converged {
			t.Fatalf("column %d did not converge: %+v", j, res[j])
		}
		col := make([]float64, n)
		for i := 0; i < n; i++ {
			col[i] = B.At(i, j)
		}
		if r := residual(op, res[j].X, col); r > 1e-8 {
			t.Fatalf("column %d residual %g", j, r)
		}
		// Columnwise recurrences are exactly independent CG: same iterate.
		single := CG(op, col, 1e-10, 0)
		if single.Iterations != res[j].Iterations {
			t.Fatalf("column %d: %d iterations vs single CG's %d", j, res[j].Iterations, single.Iterations)
		}
		for i := range single.X {
			if math.Abs(res[j].X[i]-single.X[i]) > 1e-12 {
				t.Fatalf("column %d iterate differs from single CG at %d", j, i)
			}
		}
	}
}

func TestCGMultiEarlyConvergence(t *testing.T) {
	// One trivially easy column (a scaled eigenvector-free zero RHS) must
	// converge immediately without disturbing the others.
	rng := rand.New(rand.NewSource(22))
	const n, k = 40, 3
	op := denseBatchOp{randSPD(rng, n)}
	B := mat.NewDense(n, k)
	for i := 0; i < n; i++ {
		B.Set(i, 0, rng.NormFloat64())
		// column 1 stays zero
		B.Set(i, 2, rng.NormFloat64())
	}
	res := CGMulti(op, B, 1e-10, 0)
	if !res[1].Converged || res[1].Iterations != 0 {
		t.Fatalf("zero column must converge in 0 iterations: %+v", res[1])
	}
	for i := range res[1].X {
		if res[1].X[i] != 0 {
			t.Fatalf("zero RHS must yield zero solution at %d", i)
		}
	}
	for _, j := range []int{0, 2} {
		col := make([]float64, n)
		for i := 0; i < n; i++ {
			col[i] = B.At(i, j)
		}
		if !res[j].Converged || residual(op, res[j].X, col) > 1e-8 {
			t.Fatalf("column %d: %+v", j, res[j])
		}
	}
}

func TestShiftedBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const n, k = 30, 4
	a := randSPD(rng, n)
	op := ShiftedBatch{Op: denseBatchOp{a}, Sigma: 2.5}
	B := mat.NewDense(n, k)
	for i := range B.Data {
		B.Data[i] = rng.NormFloat64()
	}
	Y := mat.NewDense(n, k)
	op.ApplyBatchTo(Y, B)
	scalar := Shifted{Op: denseBatchOp{a}, Sigma: 2.5}
	for j := 0; j < k; j++ {
		col := make([]float64, n)
		for i := 0; i < n; i++ {
			col[i] = B.At(i, j)
		}
		y := make([]float64, n)
		scalar.ApplyTo(y, col)
		for i := range y {
			if math.Abs(Y.At(i, j)-y[i]) > 1e-13 {
				t.Fatalf("ShiftedBatch column %d differs at %d", j, i)
			}
		}
	}
}
