// Package solver provides matrix-free iterative solvers (conjugate
// gradients and restarted GMRES) over a linear-operator interface. The
// paper motivates the normal memory mode with exactly this workload: the
// iterative solution of kernel systems performs many matrix-vector products
// per construction (§I-A, §VI-B).
package solver

import (
	"fmt"
	"math"

	"h2ds/internal/mat"
)

// Operator is anything that can apply itself to a vector. h2ds matrices
// (core.Matrix) satisfy it via their ApplyTo method.
type Operator interface {
	ApplyTo(y, b []float64)
}

// Func adapts a function to the Operator interface.
type Func func(y, b []float64)

// ApplyTo implements Operator.
func (f Func) ApplyTo(y, b []float64) { f(y, b) }

// Shifted wraps an operator as A + σI, the standard regularized form for
// kernel ridge regression / Gaussian-process systems.
type Shifted struct {
	Op    Operator
	Sigma float64
}

// ApplyTo implements Operator.
func (s Shifted) ApplyTo(y, b []float64) {
	s.Op.ApplyTo(y, b)
	if s.Sigma != 0 {
		for i := range y {
			y[i] += s.Sigma * b[i]
		}
	}
}

// Result reports the outcome of an iterative solve.
type Result struct {
	X          []float64
	Iterations int
	Residual   float64 // final relative residual ||b - A x|| / ||b||
	Converged  bool
}

// CG solves A x = b for symmetric positive definite A with the conjugate
// gradient method, starting from x = 0, stopping when the relative residual
// drops below tol or after maxIter iterations.
func CG(a Operator, b []float64, tol float64, maxIter int) Result {
	n := len(b)
	if maxIter <= 0 {
		maxIter = n
	}
	if tol <= 0 {
		tol = 1e-10
	}
	x := make([]float64, n)
	r := append([]float64(nil), b...)
	p := append([]float64(nil), b...)
	ap := make([]float64, n)
	bnorm := mat.Norm2(b)
	if bnorm == 0 {
		return Result{X: x, Converged: true}
	}
	rr := mat.Dot(r, r)
	res := Result{X: x}
	for k := 0; k < maxIter; k++ {
		a.ApplyTo(ap, p)
		pap := mat.Dot(p, ap)
		if pap <= 0 {
			// Not SPD (or numerically singular): stop with best iterate.
			res.Iterations = k
			res.Residual = math.Sqrt(rr) / bnorm
			return res
		}
		alpha := rr / pap
		mat.Axpy(alpha, p, x)
		mat.Axpy(-alpha, ap, r)
		rrNew := mat.Dot(r, r)
		res.Iterations = k + 1
		if math.Sqrt(rrNew) <= tol*bnorm {
			res.Residual = math.Sqrt(rrNew) / bnorm
			res.Converged = true
			return res
		}
		beta := rrNew / rr
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
		rr = rrNew
	}
	res.Residual = math.Sqrt(rr) / bnorm
	return res
}

// PCG solves A x = b for symmetric positive definite A with conjugate
// gradients preconditioned by M (an approximation of A⁻¹, e.g. the H²
// matrix's block-Jacobi preconditioner). It stops when the relative
// residual drops below tol or after maxIter iterations.
func PCG(a, m Operator, b []float64, tol float64, maxIter int) Result {
	n := len(b)
	if maxIter <= 0 {
		maxIter = n
	}
	if tol <= 0 {
		tol = 1e-10
	}
	x := make([]float64, n)
	r := append([]float64(nil), b...)
	z := make([]float64, n)
	ap := make([]float64, n)
	bnorm := mat.Norm2(b)
	if bnorm == 0 {
		return Result{X: x, Converged: true}
	}
	m.ApplyTo(z, r)
	p := append([]float64(nil), z...)
	rz := mat.Dot(r, z)
	res := Result{X: x}
	for k := 0; k < maxIter; k++ {
		a.ApplyTo(ap, p)
		pap := mat.Dot(p, ap)
		if pap <= 0 || rz <= 0 {
			res.Iterations = k
			res.Residual = mat.Norm2(r) / bnorm
			return res
		}
		alpha := rz / pap
		mat.Axpy(alpha, p, x)
		mat.Axpy(-alpha, ap, r)
		rn := mat.Norm2(r)
		res.Iterations = k + 1
		if rn <= tol*bnorm {
			res.Residual = rn / bnorm
			res.Converged = true
			return res
		}
		m.ApplyTo(z, r)
		rzNew := mat.Dot(r, z)
		beta := rzNew / rz
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
		rz = rzNew
	}
	res.Residual = mat.Norm2(r) / bnorm
	return res
}

// GMRES solves A x = b with restarted GMRES(restart), starting from x = 0.
// It stops when the relative residual drops below tol or after maxIter
// total inner iterations.
func GMRES(a Operator, b []float64, restart int, tol float64, maxIter int) Result {
	n := len(b)
	if restart <= 0 {
		restart = 30
	}
	if restart > n {
		restart = n
	}
	if maxIter <= 0 {
		maxIter = 10 * n
	}
	if tol <= 0 {
		tol = 1e-10
	}
	bnorm := mat.Norm2(b)
	x := make([]float64, n)
	if bnorm == 0 {
		return Result{X: x, Converged: true}
	}

	r := make([]float64, n)
	w := make([]float64, n)
	// Krylov basis (restart+1 vectors) and Hessenberg factors.
	v := make([][]float64, restart+1)
	for i := range v {
		v[i] = make([]float64, n)
	}
	h := mat.NewDense(restart+1, restart)
	cs := make([]float64, restart)
	sn := make([]float64, restart)
	s := make([]float64, restart+1)

	total := 0
	res := Result{}
	for total < maxIter {
		// r = b - A x
		a.ApplyTo(r, x)
		for i := range r {
			r[i] = b[i] - r[i]
		}
		beta := mat.Norm2(r)
		res.Residual = beta / bnorm
		if beta <= tol*bnorm {
			res.Converged = true
			break
		}
		inv := 1 / beta
		for i := range r {
			v[0][i] = r[i] * inv
		}
		for i := range s {
			s[i] = 0
		}
		s[0] = beta
		h.Reset()

		k := 0
		for ; k < restart && total < maxIter; k++ {
			total++
			a.ApplyTo(w, v[k])
			// Modified Gram-Schmidt.
			for i := 0; i <= k; i++ {
				hik := mat.Dot(w, v[i])
				h.Set(i, k, hik)
				mat.Axpy(-hik, v[i], w)
			}
			wn := mat.Norm2(w)
			h.Set(k+1, k, wn)
			if wn > 0 {
				invw := 1 / wn
				for i := range w {
					v[k+1][i] = w[i] * invw
				}
			}
			// Apply the accumulated Givens rotations to the new column.
			for i := 0; i < k; i++ {
				t1 := cs[i]*h.At(i, k) + sn[i]*h.At(i+1, k)
				t2 := -sn[i]*h.At(i, k) + cs[i]*h.At(i+1, k)
				h.Set(i, k, t1)
				h.Set(i+1, k, t2)
			}
			// New rotation annihilating h[k+1][k].
			hk, hk1 := h.At(k, k), h.At(k+1, k)
			d := math.Hypot(hk, hk1)
			if d == 0 {
				cs[k], sn[k] = 1, 0
			} else {
				cs[k], sn[k] = hk/d, hk1/d
			}
			h.Set(k, k, cs[k]*hk+sn[k]*hk1)
			h.Set(k+1, k, 0)
			s[k+1] = -sn[k] * s[k]
			s[k] = cs[k] * s[k]
			res.Iterations = total
			res.Residual = math.Abs(s[k+1]) / bnorm
			if res.Residual <= tol {
				k++
				break
			}
			if wn == 0 {
				// Lucky breakdown: the Krylov space is invariant.
				k++
				break
			}
		}
		// Back-substitute y from the k-by-k triangle and update x.
		y := make([]float64, k)
		for i := k - 1; i >= 0; i-- {
			sum := s[i]
			for j := i + 1; j < k; j++ {
				sum -= h.At(i, j) * y[j]
			}
			y[i] = sum / h.At(i, i)
		}
		for j := 0; j < k; j++ {
			mat.Axpy(y[j], v[j], x)
		}
		if res.Residual <= tol {
			// Recompute the true residual once for an honest report.
			a.ApplyTo(r, x)
			for i := range r {
				r[i] = b[i] - r[i]
			}
			res.Residual = mat.Norm2(r) / bnorm
			res.Converged = res.Residual <= 10*tol
			break
		}
	}
	res.X = x
	return res
}

// Validate panics unless the operator maps length-n vectors to length-n
// vectors; a cheap guard used by examples.
func Validate(a Operator, n int) {
	y := make([]float64, n)
	b := make([]float64, n)
	a.ApplyTo(y, b)
	if len(y) != n {
		panic(fmt.Sprintf("solver: operator changed vector length to %d", len(y)))
	}
}
