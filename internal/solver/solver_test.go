package solver

import (
	"math"
	"math/rand"
	"testing"

	"h2ds/internal/mat"
)

// denseOp wraps a dense matrix as an Operator.
type denseOp struct{ a *mat.Dense }

func (d denseOp) ApplyTo(y, b []float64) { mat.MulVecTo(y, d.a, b) }

func randSPD(rng *rand.Rand, n int) *mat.Dense {
	b := mat.NewDense(n, n)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	a := mat.Mul(b, b.T())
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+float64(n))
	}
	return a
}

func residual(a Operator, x, b []float64) float64 {
	r := make([]float64, len(b))
	a.ApplyTo(r, x)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	return mat.Norm2(r) / mat.Norm2(b)
}

func TestCGSolvesSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{5, 40, 120} {
		a := denseOp{randSPD(rng, n)}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		res := CG(a, b, 1e-10, 0)
		if !res.Converged {
			t.Fatalf("n=%d: CG did not converge (res %g after %d iters)", n, res.Residual, res.Iterations)
		}
		if r := residual(a, res.X, b); r > 1e-9 {
			t.Fatalf("n=%d: true residual %g", n, r)
		}
	}
}

func TestCGZeroRHS(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := denseOp{randSPD(rng, 10)}
	res := CG(a, make([]float64, 10), 1e-10, 0)
	if !res.Converged || mat.Norm2(res.X) != 0 {
		t.Fatal("zero RHS must give zero solution immediately")
	}
}

func TestCGIterationCap(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := denseOp{randSPD(rng, 60)}
	b := make([]float64, 60)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	res := CG(a, b, 1e-14, 2)
	if res.Converged || res.Iterations != 2 {
		t.Fatalf("cap ignored: %+v", res.Iterations)
	}
}

func TestCGNonSPDStops(t *testing.T) {
	// Indefinite matrix: CG must stop gracefully rather than diverge.
	a := mat.NewDense(2, 2)
	a.Set(0, 0, 1)
	a.Set(1, 1, -1)
	res := CG(denseOp{a}, []float64{0, 1}, 1e-10, 50)
	if res.Converged {
		t.Fatal("CG claimed convergence on an indefinite system it stopped early on")
	}
}

func TestGMRESSolvesNonsymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{5, 40, 90} {
		a := mat.Eye(n)
		for i := range a.Data {
			a.Data[i] += 0.3 * rng.NormFloat64() / math.Sqrt(float64(n))
		}
		op := denseOp{a}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		res := GMRES(op, b, 20, 1e-10, 0)
		if !res.Converged {
			t.Fatalf("n=%d: GMRES did not converge (res %g, iters %d)", n, res.Residual, res.Iterations)
		}
		if r := residual(op, res.X, b); r > 1e-8 {
			t.Fatalf("n=%d: true residual %g", n, r)
		}
	}
}

func TestGMRESRestartsWork(t *testing.T) {
	// Force multiple restart cycles with a small restart length.
	rng := rand.New(rand.NewSource(5))
	n := 50
	a := mat.Eye(n)
	for i := range a.Data {
		a.Data[i] += 0.2 * rng.NormFloat64() / math.Sqrt(float64(n))
	}
	op := denseOp{a}
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	res := GMRES(op, b, 5, 1e-9, 0)
	if !res.Converged {
		t.Fatalf("restarted GMRES failed: res %g iters %d", res.Residual, res.Iterations)
	}
	if res.Iterations <= 5 {
		t.Fatalf("expected multiple cycles, converged in %d inner iterations", res.Iterations)
	}
}

func TestGMRESZeroRHSAndIdentity(t *testing.T) {
	res := GMRES(Func(func(y, b []float64) { copy(y, b) }), make([]float64, 7), 5, 1e-10, 0)
	if !res.Converged {
		t.Fatal("zero RHS")
	}
	b := []float64{1, 2, 3}
	res2 := GMRES(Func(func(y, x []float64) { copy(y, x) }), b, 3, 1e-12, 0)
	if !res2.Converged {
		t.Fatal("identity solve failed")
	}
	for i := range b {
		if math.Abs(res2.X[i]-b[i]) > 1e-10 {
			t.Fatalf("identity solution wrong at %d", i)
		}
	}
}

func TestShifted(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 20
	a := randSPD(rng, n)
	op := Shifted{Op: denseOp{a}, Sigma: 2.5}
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y := make([]float64, n)
	op.ApplyTo(y, x)
	want := mat.MulVec(a, x)
	for i := range want {
		want[i] += 2.5 * x[i]
	}
	for i := range y {
		if math.Abs(y[i]-want[i]) > 1e-12 {
			t.Fatalf("shifted apply wrong at %d", i)
		}
	}
	// Zero shift is a no-op wrapper.
	op0 := Shifted{Op: denseOp{a}}
	op0.ApplyTo(y, x)
	w := mat.MulVec(a, x)
	for i := range y {
		if y[i] != w[i] {
			t.Fatal("sigma=0 must not perturb")
		}
	}
}

func TestFuncAdapterAndValidate(t *testing.T) {
	f := Func(func(y, b []float64) {
		for i := range y {
			y[i] = 2 * b[i]
		}
	})
	y := make([]float64, 3)
	f.ApplyTo(y, []float64{1, 2, 3})
	if y[1] != 4 {
		t.Fatal("Func adapter broken")
	}
	Validate(f, 3) // must not panic
}
