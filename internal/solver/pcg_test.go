package solver

import (
	"math/rand"
	"testing"

	"h2ds/internal/mat"
)

// jacobiOp is a diagonal preconditioner for the dense test operator.
type jacobiOp struct{ inv []float64 }

func (j jacobiOp) ApplyTo(y, b []float64) {
	for i := range y {
		y[i] = j.inv[i] * b[i]
	}
}

// identityOp is the trivial preconditioner.
type identityOp struct{}

func (identityOp) ApplyTo(y, b []float64) { copy(y, b) }

func TestPCGSolvesSPD(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	n := 80
	a := randSPD(rng, n)
	inv := make([]float64, n)
	for i := 0; i < n; i++ {
		inv[i] = 1 / a.At(i, i)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	res := PCG(denseOp{a}, jacobiOp{inv}, b, 1e-10, 0)
	if !res.Converged {
		t.Fatalf("PCG did not converge: %g after %d", res.Residual, res.Iterations)
	}
	if r := residual(denseOp{a}, res.X, b); r > 1e-9 {
		t.Fatalf("true residual %g", r)
	}
}

func TestPCGWithIdentityMatchesCG(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 50
	a := randSPD(rng, n)
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	cg := CG(denseOp{a}, b, 1e-10, 0)
	pcg := PCG(denseOp{a}, identityOp{}, b, 1e-10, 0)
	if !cg.Converged || !pcg.Converged {
		t.Fatal("both must converge")
	}
	// Identity-preconditioned PCG is mathematically CG: iteration counts
	// should match exactly (same recurrence) up to the slightly different
	// stopping checks.
	if diff := cg.Iterations - pcg.Iterations; diff > 1 || diff < -1 {
		t.Fatalf("iteration counts diverge: CG %d vs PCG %d", cg.Iterations, pcg.Iterations)
	}
}

func TestPCGPreconditioningHelpsIllConditioned(t *testing.T) {
	// Strongly diagonal-dominant but badly scaled system: Jacobi
	// preconditioning should slash the iteration count.
	rng := rand.New(rand.NewSource(12))
	n := 120
	// A = D + 0.001 M Mᵀ with a diagonal spanning six orders of magnitude:
	// guaranteed SPD, terribly scaled without preconditioning.
	m0 := mat.NewDense(n, n)
	for i := range m0.Data {
		m0.Data[i] = rng.NormFloat64()
	}
	a := mat.Mul(m0, m0.T()).Scale(0.001)
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+1e-3*float64(i+1)*float64(i+1)*float64(i+1))
	}
	inv := make([]float64, n)
	for i := range inv {
		inv[i] = 1 / a.At(i, i)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	plain := CG(denseOp{a}, b, 1e-8, 5000)
	pre := PCG(denseOp{a}, jacobiOp{inv}, b, 1e-8, 5000)
	if !pre.Converged {
		t.Fatalf("preconditioned solve failed: %g", pre.Residual)
	}
	if plain.Converged && plain.Iterations <= pre.Iterations {
		t.Fatalf("preconditioning did not help: plain %d vs pcg %d", plain.Iterations, pre.Iterations)
	}
}

func TestPCGZeroRHS(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randSPD(rng, 10)
	res := PCG(denseOp{a}, identityOp{}, make([]float64, 10), 1e-10, 0)
	if !res.Converged || mat.Norm2(res.X) != 0 {
		t.Fatal("zero RHS must short-circuit")
	}
}
