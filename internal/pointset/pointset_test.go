package pointset

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLenAtSubset(t *testing.T) {
	p := Cube(10, 3, 1)
	if p.Len() != 10 || p.Dim != 3 {
		t.Fatalf("Len=%d Dim=%d", p.Len(), p.Dim)
	}
	s := p.Subset([]int{7, 2})
	if s.Len() != 2 {
		t.Fatalf("subset len %d", s.Len())
	}
	for j := 0; j < 3; j++ {
		if s.At(0)[j] != p.At(7)[j] || s.At(1)[j] != p.At(2)[j] {
			t.Fatal("subset copied wrong coordinates")
		}
	}
}

func TestAppend(t *testing.T) {
	p := New(0, 2)
	p.Append([]float64{1, 2})
	p.Append([]float64{3, 4})
	if p.Len() != 2 || p.At(1)[0] != 3 {
		t.Fatal("append broken")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected dim-mismatch panic")
		}
	}()
	p.Append([]float64{1})
}

func TestDist(t *testing.T) {
	x := []float64{0, 0, 0}
	y := []float64{1, 2, 2}
	if got := Dist(x, y); math.Abs(got-3) > 1e-15 {
		t.Fatalf("Dist=%g want 3", got)
	}
	if got := Dist2(x, y); math.Abs(got-9) > 1e-15 {
		t.Fatalf("Dist2=%g want 9", got)
	}
}

func TestBBox(t *testing.T) {
	p := New(0, 2)
	p.Append([]float64{0, 1})
	p.Append([]float64{2, -1})
	p.Append([]float64{1, 0})
	b := NewBBox(p, nil)
	if b.Min[0] != 0 || b.Min[1] != -1 || b.Max[0] != 2 || b.Max[1] != 1 {
		t.Fatalf("bbox %v", b)
	}
	c := b.Center()
	if c[0] != 1 || c[1] != 0 {
		t.Fatalf("center %v", c)
	}
	if math.Abs(b.Diameter()-math.Sqrt(8)) > 1e-15 {
		t.Fatalf("diameter %g", b.Diameter())
	}
	axis, w := b.LongestAxis()
	if axis != 0 || w != 2 {
		t.Fatalf("longest axis %d width %g", axis, w)
	}
	if !b.Contains([]float64{1, 0}) || b.Contains([]float64{3, 0}) {
		t.Fatal("contains wrong")
	}
	// Subset bbox.
	bs := NewBBox(p, []int{0, 2})
	if bs.Max[0] != 1 {
		t.Fatalf("subset bbox %v", bs)
	}
	// Empty box is degenerate but valid.
	be := NewBBox(New(0, 2), nil)
	if be.Diameter() != 0 {
		t.Fatal("empty bbox diameter != 0")
	}
}

func TestCubeInUnitBox(t *testing.T) {
	for _, d := range []int{1, 2, 3, 5} {
		p := Cube(200, d, 42)
		if p.Len() != 200 || p.Dim != d {
			t.Fatalf("d=%d: bad shape", d)
		}
		for i := 0; i < p.Len(); i++ {
			for _, v := range p.At(i) {
				if v < 0 || v >= 1 {
					t.Fatalf("d=%d: coordinate %g outside [0,1)", d, v)
				}
			}
		}
	}
}

func TestCubeDeterministic(t *testing.T) {
	a := Cube(50, 3, 7)
	b := Cube(50, 3, 7)
	for i := range a.Coords {
		if a.Coords[i] != b.Coords[i] {
			t.Fatal("same seed must give same points")
		}
	}
	c := Cube(50, 3, 8)
	same := true
	for i := range a.Coords {
		if a.Coords[i] != c.Coords[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds gave identical points")
	}
}

func TestSphereOnSurface(t *testing.T) {
	p := Sphere(500, 3)
	for i := 0; i < p.Len(); i++ {
		r := Dist(p.At(i), []float64{0, 0, 0})
		if math.Abs(r-1) > 1e-12 {
			t.Fatalf("point %d radius %g", i, r)
		}
	}
	// Rough isotropy: mean of each coordinate near zero.
	for j := 0; j < 3; j++ {
		s := 0.0
		for i := 0; i < p.Len(); i++ {
			s += p.At(i)[j]
		}
		if math.Abs(s/float64(p.Len())) > 0.15 {
			t.Fatalf("coordinate %d mean %g suggests non-uniform sphere", j, s/float64(p.Len()))
		}
	}
}

func TestDinoShape(t *testing.T) {
	p := Dino(2000, 5)
	if p.Len() != 2000 || p.Dim != 3 {
		t.Fatal("dino shape wrong")
	}
	b := NewBBox(p, nil)
	// Elongated: x-extent (nose to tail) clearly exceeds y-extent (width).
	if (b.Max[0] - b.Min[0]) < 1.5*(b.Max[1]-b.Min[1]) {
		t.Fatalf("dino not elongated: extents %v %v", b.Max[0]-b.Min[0], b.Max[1]-b.Min[1])
	}
	// Non-uniformity: the bounding box volume is mostly empty. Check that a
	// central cavity (interior of the body) still contains few points
	// relative to uniform density.
	vol := 1.0
	for j := 0; j < 3; j++ {
		vol *= b.Max[j] - b.Min[j]
	}
	if vol < 0.5 {
		t.Fatalf("dino bounding volume suspiciously small: %g", vol)
	}
}

func TestAnnulusRadii(t *testing.T) {
	p := Annulus(300, 0.5, 1.0, 9)
	for i := 0; i < p.Len(); i++ {
		r := math.Hypot(p.At(i)[0], p.At(i)[1])
		if r < 0.5-1e-12 || r > 1.0+1e-12 {
			t.Fatalf("annulus point radius %g", r)
		}
	}
}

func TestCircle(t *testing.T) {
	p := Circle(4)
	want := [][2]float64{{1, 0}, {0, 1}, {-1, 0}, {0, -1}}
	for i, w := range want {
		if math.Abs(p.At(i)[0]-w[0]) > 1e-12 || math.Abs(p.At(i)[1]-w[1]) > 1e-12 {
			t.Fatalf("circle point %d = %v want %v", i, p.At(i), w)
		}
	}
}

func TestGrid(t *testing.T) {
	p := Grid(3, 2)
	if p.Len() != 9 {
		t.Fatalf("grid len %d", p.Len())
	}
	// Corners present.
	found := 0
	for i := 0; i < 9; i++ {
		x := p.At(i)
		if (x[0] == 0 || x[0] == 1) && (x[1] == 0 || x[1] == 1) {
			found++
		}
	}
	if found != 4 {
		t.Fatalf("found %d corners", found)
	}
	// Degenerate single-point grid.
	if Grid(1, 3).Len() != 1 {
		t.Fatal("grid(1,3) size")
	}
}

func TestNamed(t *testing.T) {
	for _, name := range []string{"cube", "sphere", "dino", "ball", "mixture"} {
		p, ok := Named(name, 100, 3, 1)
		if !ok || p.Len() != 100 {
			t.Fatalf("Named(%q) failed", name)
		}
	}
	if _, ok := Named("klein-bottle", 10, 3, 1); ok {
		t.Fatal("unknown name accepted")
	}
}

func TestBallInUnitBall(t *testing.T) {
	for _, d := range []int{2, 3, 5} {
		p := Ball(400, d, 11)
		origin := make([]float64, d)
		interior := 0
		for i := 0; i < p.Len(); i++ {
			r := Dist(p.At(i), origin)
			if r > 1+1e-12 {
				t.Fatalf("d=%d: point radius %g outside unit ball", d, r)
			}
			if r < 0.5 {
				interior++
			}
		}
		// Volume fraction inside r=0.5 is (1/2)^d; check the sampler is not
		// surface-biased (allow generous slack).
		want := math.Pow(0.5, float64(d)) * 400
		if float64(interior) < want/3-3 || float64(interior) > 3*want+10 {
			t.Fatalf("d=%d: %d interior points, expected about %.0f", d, interior, want)
		}
	}
}

func TestGaussianMixtureClusters(t *testing.T) {
	p := GaussianMixture(1000, 3, 5, 0.02, 13)
	if p.Len() != 1000 || p.Dim != 3 {
		t.Fatal("mixture shape wrong")
	}
	// Strong non-uniformity: the average nearest-of-100 sampled pairwise
	// distance must be far below the uniform-cube scale.
	small := 0
	for i := 0; i < 100; i++ {
		best := math.Inf(1)
		for j := 0; j < 1000; j++ {
			if i == j {
				continue
			}
			if d := Dist(p.At(i), p.At(j)); d < best {
				best = d
			}
		}
		if best < 0.02 {
			small++
		}
	}
	if small < 50 {
		t.Fatalf("only %d of 100 points have a very close neighbor; not clustered", small)
	}
}

func TestDistSymmetryProperty(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := []float64{ax, ay, az}
		b := []float64{bx, by, bz}
		d1 := Dist(a, b)
		d2 := Dist(b, a)
		return d1 == d2 && d1 >= 0 && Dist(a, a) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
