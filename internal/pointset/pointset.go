// Package pointset provides the point-cloud substrate for the hierarchical
// matrix library: a compact d-dimensional point container, bounding boxes,
// and the synthetic dataset generators used throughout the paper's
// evaluation (cube volume, sphere surface, d-dimensional hypercube, and a
// procedural "dino"-like non-uniform surface cloud).
package pointset

import (
	"fmt"
	"math"
)

// Points is a set of n points in d dimensions stored row-major: point i
// occupies Coords[i*Dim : (i+1)*Dim].
type Points struct {
	Dim    int
	Coords []float64
}

// New returns an empty point set with capacity for n points in d dimensions.
func New(n, d int) *Points {
	return &Points{Dim: d, Coords: make([]float64, n*d)}
}

// Len returns the number of points.
func (p *Points) Len() int {
	if p.Dim == 0 {
		return 0
	}
	return len(p.Coords) / p.Dim
}

// At returns a slice aliasing the coordinates of point i.
func (p *Points) At(i int) []float64 {
	return p.Coords[i*p.Dim : (i+1)*p.Dim]
}

// Subset returns a new point set containing the points selected by idx, in
// order.
func (p *Points) Subset(idx []int) *Points {
	s := New(len(idx), p.Dim)
	for k, i := range idx {
		copy(s.At(k), p.At(i))
	}
	return s
}

// Append copies point x (length Dim) onto the end of p.
func (p *Points) Append(x []float64) {
	if len(x) != p.Dim {
		panic(fmt.Sprintf("pointset: append dim %d want %d", len(x), p.Dim))
	}
	p.Coords = append(p.Coords, x...)
}

// Bytes returns the memory footprint of the coordinate storage.
func (p *Points) Bytes() int64 { return int64(len(p.Coords)) * 8 }

// Dist returns the Euclidean distance between points x and y (equal length).
func Dist(x, y []float64) float64 {
	return math.Sqrt(Dist2(x, y))
}

// Dist2 returns the squared Euclidean distance between x and y.
func Dist2(x, y []float64) float64 {
	s := 0.0
	for i, v := range x {
		d := v - y[i]
		s += d * d
	}
	return s
}

// BBox is an axis-aligned bounding box.
type BBox struct {
	Min, Max []float64
}

// NewBBox computes the bounding box of the points selected by idx (or of all
// points when idx is nil). An empty selection yields a degenerate box at the
// origin.
func NewBBox(p *Points, idx []int) BBox {
	d := p.Dim
	b := BBox{Min: make([]float64, d), Max: make([]float64, d)}
	n := p.Len()
	if idx != nil {
		n = len(idx)
	}
	if n == 0 {
		return b
	}
	first := 0
	if idx != nil {
		first = idx[0]
	}
	copy(b.Min, p.At(first))
	copy(b.Max, p.At(first))
	for k := 1; k < n; k++ {
		i := k
		if idx != nil {
			i = idx[k]
		}
		x := p.At(i)
		for j, v := range x {
			if v < b.Min[j] {
				b.Min[j] = v
			}
			if v > b.Max[j] {
				b.Max[j] = v
			}
		}
	}
	return b
}

// Center returns the box midpoint.
func (b BBox) Center() []float64 {
	c := make([]float64, len(b.Min))
	for i := range c {
		c[i] = 0.5 * (b.Min[i] + b.Max[i])
	}
	return c
}

// Diameter returns the length of the box diagonal.
func (b BBox) Diameter() float64 {
	s := 0.0
	for i := range b.Min {
		d := b.Max[i] - b.Min[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// LongestAxis returns the index of the widest box dimension and its width.
func (b BBox) LongestAxis() (axis int, width float64) {
	for i := range b.Min {
		if w := b.Max[i] - b.Min[i]; w > width {
			axis, width = i, w
		}
	}
	return axis, width
}

// Contains reports whether x lies inside the (closed) box.
func (b BBox) Contains(x []float64) bool {
	for i, v := range x {
		if v < b.Min[i] || v > b.Max[i] {
			return false
		}
	}
	return true
}
