// Package api is the single-node HTTP surface over a registry: the
// /matrices lifecycle endpoints, the default-instance aliases, and the
// health/readiness probes. cmd/h2serve mounts it directly; internal/cluster
// mounts the same surface on every node so the router can speak one wire
// protocol to owners and replicas alike.
package api

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"time"

	"h2ds/internal/core"
	"h2ds/internal/oracle"
	"h2ds/internal/par"
	"h2ds/internal/registry"
	"h2ds/internal/serve"
)

// DefaultInstance is the registry name the bare /apply and /stats endpoints
// alias, preserving the single-matrix wire protocol of earlier h2serve
// versions.
const DefaultInstance = "default"

// CreateRequest is the POST /matrices wire format: a name plus the same
// build knobs as the command line, or a path to load from.
type CreateRequest struct {
	Name string             `json:"name"`
	Spec registry.BuildSpec `json:"spec"`
}

// ApplyRequest and ApplyResponse are the apply wire format.
type ApplyRequest struct {
	B []float64 `json:"b"`
}

type ApplyResponse struct {
	Y []float64 `json:"y"`
}

// Limits bounds request bodies and places uploaded matrix data. Zero fields
// take the defaults below; every h2serve/h2cluster endpoint reads its body
// through http.MaxBytesReader with one of these caps and answers 413 when a
// client exceeds it.
type Limits struct {
	// JSONBody caps JSON request bodies (create, apply, cluster control).
	// Default 64 MiB — a full apply vector for n≈4M in decimal JSON.
	JSONBody int64

	// Upload caps raw dense-matrix uploads (POST /matrices/{name}/data)
	// and serialized-stream installs. Default 8 GiB (a 32768² float64
	// matrix).
	Upload int64

	// DataDir is where uploaded matrix files land (fsynced, then handed to
	// the registry build as a BuildSpec data_path). Default os.TempDir();
	// h2serve points it at the spill directory when one is configured so
	// uploads share the durable volume.
	DataDir string
}

// WithDefaults resolves zero fields to the serving defaults.
func (l Limits) WithDefaults() Limits {
	if l.JSONBody <= 0 {
		l.JSONBody = 64 << 20
	}
	if l.Upload <= 0 {
		l.Upload = 8 << 30
	}
	if l.DataDir == "" {
		l.DataDir = os.TempDir()
	}
	return l
}

// Readiness is the GET /readyz wire format: a coarse ok bit plus the full
// registry snapshot (build-queue depth, instance counts by state, memory
// headroom). The cluster router reads it when selecting replicas, preferring
// nodes with spare build capacity.
type Readiness struct {
	OK       bool           `json:"ok"`
	Registry registry.Stats `json:"registry"`
}

// Mount registers the registry endpoints on mux with default Limits.
// timeout bounds each apply request (0 = none, beyond the client's own
// context).
func Mount(mux *http.ServeMux, reg *registry.Registry, timeout time.Duration) {
	MountLimits(mux, reg, timeout, Limits{})
}

// MountLimits registers the registry endpoints on mux. Every body read is
// bounded by lim (413 over the cap).
//
//	POST   /matrices              create or rebuild (hot-swap) an instance
//	GET    /matrices              list instances with state and counters
//	GET    /matrices/{name}       one instance
//	POST   /matrices/{name}/data  upload a dense matrix (raw float64) and build
//	POST   /matrices/{name}/apply y = A b through the instance's batcher
//	DELETE /matrices/{name}       remove an instance
//	POST   /apply                 alias: apply on "default"
//	GET    /stats                 alias: "default" shape + registry counters
//	GET    /healthz               liveness
//	GET    /readyz                readiness: queue depth, states, headroom
func MountLimits(mux *http.ServeMux, reg *registry.Registry, timeout time.Duration, lim Limits) {
	lim = lim.WithDefaults()
	mux.HandleFunc("POST /matrices", CreateHandler(reg, lim.JSONBody))
	mux.HandleFunc("GET /matrices", ListHandler(reg))
	mux.HandleFunc("GET /matrices/{name}", GetHandler(reg))
	mux.HandleFunc("POST /matrices/{name}/data", UploadHandler(reg, lim))
	mux.HandleFunc("POST /matrices/{name}/apply", func(w http.ResponseWriter, r *http.Request) {
		ApplyTo(reg, r.PathValue("name"), timeout, lim.JSONBody, w, r)
	})
	mux.HandleFunc("DELETE /matrices/{name}", DeleteHandler(reg))
	mux.HandleFunc("POST /apply", func(w http.ResponseWriter, r *http.Request) {
		ApplyTo(reg, DefaultInstance, timeout, lim.JSONBody, w, r)
	})
	mux.HandleFunc("GET /stats", StatsHandler(reg))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /readyz", ReadyzHandler(reg))
}

// DecodeJSON decodes r's body into v, reading at most limit bytes. On
// failure it writes the response itself — 413 when the body exceeds the
// limit, 400 otherwise — and returns false.
func DecodeJSON(w http.ResponseWriter, r *http.Request, limit int64, v any) bool {
	body := http.MaxBytesReader(w, r.Body, limit)
	if err := json.NewDecoder(body).Decode(v); err != nil {
		if mbe := (*http.MaxBytesError)(nil); errors.As(err, &mbe) {
			http.Error(w, fmt.Sprintf("request body exceeds %d byte limit", mbe.Limit), http.StatusRequestEntityTooLarge)
			return false
		}
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

// WriteJSON writes v as a JSON response with the given status code.
func WriteJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// Error maps registry sentinel errors onto HTTP statuses.
func Error(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, registry.ErrInvalidSpec):
		// Synchronous spec rejection (bad name, NaN/out-of-range tolerance,
		// unknown enum): the body carries the specific validation failure.
		http.Error(w, err.Error(), http.StatusBadRequest)
	case errors.Is(err, registry.ErrNotFound):
		http.Error(w, err.Error(), http.StatusNotFound)
	case errors.Is(err, registry.ErrBusy):
		http.Error(w, err.Error(), http.StatusConflict)
	case errors.Is(err, registry.ErrQueueFull),
		errors.Is(err, registry.ErrClosed),
		errors.Is(err, serve.ErrQueueFull),
		errors.Is(err, serve.ErrClosed):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.Is(err, registry.ErrNotReady):
		// Failed build or spill-less eviction: the client must fix the spec
		// or re-create, so a conflict rather than a retryable 503.
		http.Error(w, err.Error(), http.StatusConflict)
	case errors.Is(err, context.DeadlineExceeded):
		http.Error(w, err.Error(), http.StatusGatewayTimeout)
	default:
		http.Error(w, err.Error(), http.StatusBadRequest)
	}
}

// CreateHandler serves POST /matrices. maxBody caps the request body.
func CreateHandler(reg *registry.Registry, maxBody int64) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req CreateRequest
		if !DecodeJSON(w, r, maxBody, &req) {
			return
		}
		if err := reg.Create(req.Name, req.Spec); err != nil {
			Error(w, err)
			return
		}
		inf, _ := reg.Get(req.Name)
		WriteJSON(w, http.StatusAccepted, inf)
	}
}

// ListHandler serves GET /matrices.
func ListHandler(reg *registry.Registry) http.HandlerFunc {
	return func(w http.ResponseWriter, _ *http.Request) {
		WriteJSON(w, http.StatusOK, struct {
			Instances []registry.Info `json:"instances"`
			Registry  registry.Stats  `json:"registry"`
		}{reg.List(), reg.Stats()})
	}
}

// GetHandler serves GET /matrices/{name}.
func GetHandler(reg *registry.Registry) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		inf, ok := reg.Get(r.PathValue("name"))
		if !ok {
			http.Error(w, "no such instance", http.StatusNotFound)
			return
		}
		WriteJSON(w, http.StatusOK, inf)
	}
}

// DeleteHandler serves DELETE /matrices/{name}.
func DeleteHandler(reg *registry.Registry) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if err := reg.Delete(r.PathValue("name")); err != nil {
			Error(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	}
}

// UploadHandler serves POST /matrices/{name}/data: the body is a raw dense
// matrix — n·n row-major little-endian float64 values, no header, n inferred
// from the byte count — and the response is 202 with the instance Info once
// the geometry-oblivious build is queued. Build knobs ride in the query
// string: sym, reltol, tol, leaf, sampler, seed, workers.
//
// The body streams to a uniquely-named file in lim.DataDir, is fsynced, and
// the directory synced — the same durability discipline as the registry's
// eviction spill — before the build is submitted pointing at it.
// Bodies over lim.Upload answer 413; byte counts that are not 8·n² answer
// 400 before any build starts.
func UploadHandler(reg *registry.Registry, lim Limits) http.HandlerFunc {
	lim = lim.WithDefaults()
	return func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		spec, ok := uploadSpec(w, r)
		if !ok {
			return
		}

		// The data directory is shared with the registry's spill files, which
		// are also created lazily — the directory may not exist yet.
		if err := os.MkdirAll(lim.DataDir, 0o755); err != nil {
			http.Error(w, "upload store: "+err.Error(), http.StatusInternalServerError)
			return
		}
		tmp, err := os.CreateTemp(lim.DataDir, "h2upload-*.h2data")
		if err != nil {
			http.Error(w, "upload store: "+err.Error(), http.StatusInternalServerError)
			return
		}
		tmpName := tmp.Name()
		drop := func() { tmp.Close(); os.Remove(tmpName) }

		nBytes, err := io.Copy(tmp, http.MaxBytesReader(w, r.Body, lim.Upload))
		if err != nil {
			drop()
			if mbe := (*http.MaxBytesError)(nil); errors.As(err, &mbe) {
				http.Error(w, fmt.Sprintf("upload exceeds %d byte limit", mbe.Limit), http.StatusRequestEntityTooLarge)
				return
			}
			http.Error(w, "upload read: "+err.Error(), http.StatusBadRequest)
			return
		}
		n, err := oracle.DenseSize(nBytes)
		if err != nil {
			drop()
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := tmp.Sync(); err != nil {
			drop()
			http.Error(w, "upload sync: "+err.Error(), http.StatusInternalServerError)
			return
		}
		if err := tmp.Close(); err != nil {
			os.Remove(tmpName)
			http.Error(w, "upload close: "+err.Error(), http.StatusInternalServerError)
			return
		}
		if err := syncDir(lim.DataDir); err != nil {
			os.Remove(tmpName)
			http.Error(w, "upload dir sync: "+err.Error(), http.StatusInternalServerError)
			return
		}

		spec.Source = "dense"
		spec.DataPath = tmpName
		spec.N = n
		if err := reg.Create(name, spec); err != nil {
			os.Remove(tmpName)
			Error(w, err)
			return
		}
		inf, _ := reg.Get(name)
		WriteJSON(w, http.StatusAccepted, inf)
	}
}

// uploadSpec parses the upload endpoint's query-string build knobs into a
// dense BuildSpec skeleton (source, data path, and n are filled in by the
// caller). Answers 400 and returns false on a malformed value.
func uploadSpec(w http.ResponseWriter, r *http.Request) (registry.BuildSpec, bool) {
	var sp registry.BuildSpec
	q := r.URL.Query()
	bad := func(key, val string, err error) (registry.BuildSpec, bool) {
		http.Error(w, fmt.Sprintf("bad query parameter %s=%q: %v", key, val, err), http.StatusBadRequest)
		return sp, false
	}
	if v := q.Get("sym"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return bad("sym", v, err)
		}
		sp.Sym = b
	}
	if v := q.Get("reltol"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return bad("reltol", v, err)
		}
		sp.RelTol = f
	}
	if v := q.Get("tol"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return bad("tol", v, err)
		}
		sp.Tol = f
	}
	if v := q.Get("leaf"); v != "" {
		i, err := strconv.Atoi(v)
		if err != nil {
			return bad("leaf", v, err)
		}
		sp.Leaf = i
	}
	if v := q.Get("workers"); v != "" {
		i, err := strconv.Atoi(v)
		if err != nil {
			return bad("workers", v, err)
		}
		sp.Workers = i
	}
	if v := q.Get("seed"); v != "" {
		i, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return bad("seed", v, err)
		}
		sp.Seed = i
	}
	sp.Sampler = q.Get("sampler")
	return sp, true
}

// syncDir fsyncs a directory so a preceding rename/create in it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// ApplyTo serves one product through the named instance. The registry waits
// out Pending/Building states (bounded by the request deadline), so a client
// may POST right after creating an instance and block until it serves.
func ApplyTo(reg *registry.Registry, name string, timeout time.Duration, maxBody int64, w http.ResponseWriter, r *http.Request) {
	var req ApplyRequest
	if !DecodeJSON(w, r, maxBody, &req) {
		return
	}
	ctx := r.Context()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	y, err := reg.Apply(ctx, name, req.B)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			return // client went away; nothing useful to write
		}
		Error(w, err)
		return
	}
	WriteJSON(w, http.StatusOK, ApplyResponse{Y: y})
}

// ReadyzHandler serves GET /readyz: always 200 while the process can answer,
// with the registry snapshot for routers to rank nodes by. A node that is
// down simply fails the request — that, not a status code, is the
// not-ready signal.
func ReadyzHandler(reg *registry.Registry) http.HandlerFunc {
	return func(w http.ResponseWriter, _ *http.Request) {
		WriteJSON(w, http.StatusOK, Readiness{OK: true, Registry: reg.Stats()})
	}
}

// StatsHandler reports the default instance's matrix shape, serve counters
// (kernel and shape read from the instance's own matrix, so a hot-swap is
// reflected immediately), the cumulative per-sweep stage timings of its
// matvecs, and the registry counters.
func StatsHandler(reg *registry.Registry) http.HandlerFunc {
	type matrixInfo struct {
		N      int    `json:"n"`
		Dim    int    `json:"dim"`
		Kernel string `json:"kernel"`
		Mode   string `json:"mode"`
		Basis  string `json:"basis"`

		// Workers is the resolved apply parallelism of the live matrix (the
		// configured count with 0 resolved to GOMAXPROCS), so scaling runs
		// can be attributed to a worker count from the wire.
		Workers int `json:"workers"`

		// Error-controlled build reporting (reltol builds only).
		RelTol     float64          `json:"reltol,omitempty"`
		EstRelErr  float64          `json:"est_relerr,omitempty"`
		MaxRank    int              `json:"max_rank,omitempty"`
		LevelRanks []core.LevelRank `json:"level_ranks,omitempty"`

		// Phases is the construction-phase breakdown of the live build
		// (absent for loaded matrices); cache_hit with sample_ns == 0 marks
		// a construction-cache reuse.
		Phases *core.BuildPhases `json:"phases,omitempty"`
	}
	return func(w http.ResponseWriter, _ *http.Request) {
		out := struct {
			Matrix   *matrixInfo      `json:"matrix,omitempty"`
			Serve    *serve.Stats     `json:"serve,omitempty"`
			Sweeps   *core.SweepStats `json:"sweeps,omitempty"`
			Registry registry.Stats   `json:"registry"`
		}{Registry: reg.Stats()}
		if inf, ok := reg.Get(DefaultInstance); ok && inf.Serve != nil {
			out.Matrix = &matrixInfo{
				N: inf.N, Dim: inf.Dim, Kernel: inf.Kernel,
				Mode: inf.Mode, Basis: inf.Basis,
				RelTol: inf.RelTol, EstRelErr: inf.EstRelErr,
				MaxRank: inf.MaxRank, LevelRanks: inf.LevelRanks,
				Phases: inf.Phases,
			}
			out.Serve = inf.Serve
			if m, ok := reg.Matrix(DefaultInstance); ok {
				out.Matrix.Workers = par.Resolve(m.Cfg.Workers)
				sw := m.SweepStats()
				out.Sweeps = &sw
			}
		}
		WriteJSON(w, http.StatusOK, out)
	}
}
