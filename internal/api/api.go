// Package api is the single-node HTTP surface over a registry: the
// /matrices lifecycle endpoints, the default-instance aliases, and the
// health/readiness probes. cmd/h2serve mounts it directly; internal/cluster
// mounts the same surface on every node so the router can speak one wire
// protocol to owners and replicas alike.
package api

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"h2ds/internal/core"
	"h2ds/internal/registry"
	"h2ds/internal/serve"
)

// DefaultInstance is the registry name the bare /apply and /stats endpoints
// alias, preserving the single-matrix wire protocol of earlier h2serve
// versions.
const DefaultInstance = "default"

// CreateRequest is the POST /matrices wire format: a name plus the same
// build knobs as the command line, or a path to load from.
type CreateRequest struct {
	Name string             `json:"name"`
	Spec registry.BuildSpec `json:"spec"`
}

// ApplyRequest and ApplyResponse are the apply wire format.
type ApplyRequest struct {
	B []float64 `json:"b"`
}

type ApplyResponse struct {
	Y []float64 `json:"y"`
}

// Readiness is the GET /readyz wire format: a coarse ok bit plus the full
// registry snapshot (build-queue depth, instance counts by state, memory
// headroom). The cluster router reads it when selecting replicas, preferring
// nodes with spare build capacity.
type Readiness struct {
	OK       bool           `json:"ok"`
	Registry registry.Stats `json:"registry"`
}

// Mount registers the registry endpoints on mux. timeout bounds each apply
// request (0 = none, beyond the client's own context).
//
//	POST   /matrices              create or rebuild (hot-swap) an instance
//	GET    /matrices              list instances with state and counters
//	GET    /matrices/{name}       one instance
//	POST   /matrices/{name}/apply y = A b through the instance's batcher
//	DELETE /matrices/{name}       remove an instance
//	POST   /apply                 alias: apply on "default"
//	GET    /stats                 alias: "default" shape + registry counters
//	GET    /healthz               liveness
//	GET    /readyz                readiness: queue depth, states, headroom
func Mount(mux *http.ServeMux, reg *registry.Registry, timeout time.Duration) {
	mux.HandleFunc("POST /matrices", CreateHandler(reg))
	mux.HandleFunc("GET /matrices", ListHandler(reg))
	mux.HandleFunc("GET /matrices/{name}", GetHandler(reg))
	mux.HandleFunc("POST /matrices/{name}/apply", func(w http.ResponseWriter, r *http.Request) {
		ApplyTo(reg, r.PathValue("name"), timeout, w, r)
	})
	mux.HandleFunc("DELETE /matrices/{name}", DeleteHandler(reg))
	mux.HandleFunc("POST /apply", func(w http.ResponseWriter, r *http.Request) {
		ApplyTo(reg, DefaultInstance, timeout, w, r)
	})
	mux.HandleFunc("GET /stats", StatsHandler(reg))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /readyz", ReadyzHandler(reg))
}

// WriteJSON writes v as a JSON response with the given status code.
func WriteJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// Error maps registry sentinel errors onto HTTP statuses.
func Error(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, registry.ErrInvalidSpec):
		// Synchronous spec rejection (bad name, NaN/out-of-range tolerance,
		// unknown enum): the body carries the specific validation failure.
		http.Error(w, err.Error(), http.StatusBadRequest)
	case errors.Is(err, registry.ErrNotFound):
		http.Error(w, err.Error(), http.StatusNotFound)
	case errors.Is(err, registry.ErrBusy):
		http.Error(w, err.Error(), http.StatusConflict)
	case errors.Is(err, registry.ErrQueueFull),
		errors.Is(err, registry.ErrClosed),
		errors.Is(err, serve.ErrQueueFull),
		errors.Is(err, serve.ErrClosed):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.Is(err, registry.ErrNotReady):
		// Failed build or spill-less eviction: the client must fix the spec
		// or re-create, so a conflict rather than a retryable 503.
		http.Error(w, err.Error(), http.StatusConflict)
	case errors.Is(err, context.DeadlineExceeded):
		http.Error(w, err.Error(), http.StatusGatewayTimeout)
	default:
		http.Error(w, err.Error(), http.StatusBadRequest)
	}
}

// CreateHandler serves POST /matrices.
func CreateHandler(reg *registry.Registry) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req CreateRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
			return
		}
		if err := reg.Create(req.Name, req.Spec); err != nil {
			Error(w, err)
			return
		}
		inf, _ := reg.Get(req.Name)
		WriteJSON(w, http.StatusAccepted, inf)
	}
}

// ListHandler serves GET /matrices.
func ListHandler(reg *registry.Registry) http.HandlerFunc {
	return func(w http.ResponseWriter, _ *http.Request) {
		WriteJSON(w, http.StatusOK, struct {
			Instances []registry.Info `json:"instances"`
			Registry  registry.Stats  `json:"registry"`
		}{reg.List(), reg.Stats()})
	}
}

// GetHandler serves GET /matrices/{name}.
func GetHandler(reg *registry.Registry) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		inf, ok := reg.Get(r.PathValue("name"))
		if !ok {
			http.Error(w, "no such instance", http.StatusNotFound)
			return
		}
		WriteJSON(w, http.StatusOK, inf)
	}
}

// DeleteHandler serves DELETE /matrices/{name}.
func DeleteHandler(reg *registry.Registry) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if err := reg.Delete(r.PathValue("name")); err != nil {
			Error(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	}
}

// ApplyTo serves one product through the named instance. The registry waits
// out Pending/Building states (bounded by the request deadline), so a client
// may POST right after creating an instance and block until it serves.
func ApplyTo(reg *registry.Registry, name string, timeout time.Duration, w http.ResponseWriter, r *http.Request) {
	var req ApplyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	ctx := r.Context()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	y, err := reg.Apply(ctx, name, req.B)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			return // client went away; nothing useful to write
		}
		Error(w, err)
		return
	}
	WriteJSON(w, http.StatusOK, ApplyResponse{Y: y})
}

// ReadyzHandler serves GET /readyz: always 200 while the process can answer,
// with the registry snapshot for routers to rank nodes by. A node that is
// down simply fails the request — that, not a status code, is the
// not-ready signal.
func ReadyzHandler(reg *registry.Registry) http.HandlerFunc {
	return func(w http.ResponseWriter, _ *http.Request) {
		WriteJSON(w, http.StatusOK, Readiness{OK: true, Registry: reg.Stats()})
	}
}

// StatsHandler reports the default instance's matrix shape, serve counters
// (kernel and shape read from the instance's own matrix, so a hot-swap is
// reflected immediately), the cumulative per-sweep stage timings of its
// matvecs, and the registry counters.
func StatsHandler(reg *registry.Registry) http.HandlerFunc {
	type matrixInfo struct {
		N      int    `json:"n"`
		Dim    int    `json:"dim"`
		Kernel string `json:"kernel"`
		Mode   string `json:"mode"`
		Basis  string `json:"basis"`

		// Error-controlled build reporting (reltol builds only).
		RelTol     float64          `json:"reltol,omitempty"`
		EstRelErr  float64          `json:"est_relerr,omitempty"`
		MaxRank    int              `json:"max_rank,omitempty"`
		LevelRanks []core.LevelRank `json:"level_ranks,omitempty"`
	}
	return func(w http.ResponseWriter, _ *http.Request) {
		out := struct {
			Matrix   *matrixInfo      `json:"matrix,omitempty"`
			Serve    *serve.Stats     `json:"serve,omitempty"`
			Sweeps   *core.SweepStats `json:"sweeps,omitempty"`
			Registry registry.Stats   `json:"registry"`
		}{Registry: reg.Stats()}
		if inf, ok := reg.Get(DefaultInstance); ok && inf.Serve != nil {
			out.Matrix = &matrixInfo{
				N: inf.N, Dim: inf.Dim, Kernel: inf.Kernel,
				Mode: inf.Mode, Basis: inf.Basis,
				RelTol: inf.RelTol, EstRelErr: inf.EstRelErr,
				MaxRank: inf.MaxRank, LevelRanks: inf.LevelRanks,
			}
			out.Serve = inf.Serve
			if m, ok := reg.Matrix(DefaultInstance); ok {
				sw := m.SweepStats()
				out.Sweeps = &sw
			}
		}
		WriteJSON(w, http.StatusOK, out)
	}
}
