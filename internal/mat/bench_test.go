package mat

import (
	"math/rand"
	"testing"
)

// Micro-benchmarks for the dense substrate: these are the inner kernels of
// the H² construction (CPQR/ID per node) and matvec (GEMV per block).

func BenchmarkMul(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := randDense(rng, 200, 200)
	c := randDense(rng, 200, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mul(a, c)
	}
}

func BenchmarkMulVec(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	a := randDense(rng, 400, 400)
	x := make([]float64, 400)
	y := make([]float64, 400)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulVecTo(y, a, x)
	}
}

func BenchmarkCPQR(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	a := randDense(rng, 300, 120)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewCPQR(a, 1e-10, 0)
	}
}

func BenchmarkRowID(b *testing.B) {
	// The per-node compression of the data-driven construction: a leaf
	// panel of ~200 points against ~128 farfield samples.
	rng := rand.New(rand.NewSource(4))
	a := randLowRank(rng, 200, 128, 60)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewRowID(a, 1e-8, 0)
	}
}

func BenchmarkSVDJacobi(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	a := randDense(rng, 80, 80)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewSVD(a)
	}
}

func BenchmarkACA(b *testing.B) {
	entry := func(i, j int) float64 {
		return 1 / (3 + float64(i)/200 - float64(j)/200)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ACA(200, 200, entry, 1e-8, 0)
	}
}
