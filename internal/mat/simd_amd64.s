//go:build amd64 && !noasm

#include "textflag.h"

// AVX bodies for the mat vector primitives. Every routine here preserves the
// exact rounding sequence of its scalar counterpart in dense.go / simd.go:
// separate VMULPD/VADDPD (no FMA), one 4-lane accumulator for dots reduced
// as (s0+s1)+(s2+s3), and element-independent axpy loops. Lengths are
// multiples of 4 (wrappers handle tails).

DATA onef64<>+0(SB)/8, $0x3FF0000000000000 // 1.0
GLOBL onef64<>(SB), RODATA|NOPTR, $8

// func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func dotBody(row, x []float64) float64
// One ymm accumulator: lane l is the scalar accumulator s_l. Reduced as
// (s0+s1)+(s2+s3) via per-half horizontal adds — NOT a tree over extracted
// halves, which would regroup to (s0+s2)+(s1+s3).
TEXT ·dotBody(SB), NOSPLIT, $0-56
	MOVQ row_base+0(FP), SI
	MOVQ row_len+8(FP), CX
	MOVQ x_base+24(FP), DI
	VXORPD Y0, Y0, Y0
	XORQ AX, AX

dotloop:
	CMPQ AX, CX
	JGE  dotreduce
	VMOVUPD (SI)(AX*8), Y1
	VMULPD  (DI)(AX*8), Y1, Y1
	VADDPD  Y1, Y0, Y0
	ADDQ    $4, AX
	JMP     dotloop

dotreduce:
	VEXTRACTF128 $1, Y0, X1
	VHADDPD      X0, X0, X0 // s0+s1
	VHADDPD      X1, X1, X1 // s2+s3
	VADDSD       X1, X0, X0 // (s0+s1)+(s2+s3)
	MOVSD        X0, ret+48(FP)
	VZEROUPPER
	RET

// func dot2Body(r0, r1, x []float64) (float64, float64)
// Two row accumulators sharing each x load; per-row reduction identical to
// dotBody.
TEXT ·dot2Body(SB), NOSPLIT, $0-88
	MOVQ r0_base+0(FP), SI
	MOVQ r0_len+8(FP), CX
	MOVQ r1_base+24(FP), DI
	MOVQ x_base+48(FP), DX
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	XORQ AX, AX

dot2loop:
	CMPQ AX, CX
	JGE  dot2reduce
	VMOVUPD (DX)(AX*8), Y2
	VMULPD  (SI)(AX*8), Y2, Y3
	VADDPD  Y3, Y0, Y0
	VMULPD  (DI)(AX*8), Y2, Y3
	VADDPD  Y3, Y1, Y1
	ADDQ    $4, AX
	JMP     dot2loop

dot2reduce:
	VEXTRACTF128 $1, Y0, X2
	VHADDPD      X0, X0, X0
	VHADDPD      X2, X2, X2
	VADDSD       X2, X0, X0
	MOVSD        X0, ret+72(FP)
	VEXTRACTF128 $1, Y1, X2
	VHADDPD      X1, X1, X1
	VHADDPD      X2, X2, X2
	VADDSD       X2, X1, X1
	MOVSD        X1, ret1+80(FP)
	VZEROUPPER
	RET

// func dotAcc4Body(k, v []float64, acc *[4]float64)
// The accumulator lanes live in memory across chunk calls; each lane sees
// its partial sums in index order, as in the scalar 4-accumulator loop.
TEXT ·dotAcc4Body(SB), NOSPLIT, $0-56
	MOVQ k_base+0(FP), SI
	MOVQ v_base+24(FP), DI
	MOVQ v_len+32(FP), CX
	MOVQ acc+48(FP), DX
	VMOVUPD (DX), Y0
	XORQ AX, AX

acc4loop:
	CMPQ AX, CX
	JGE  acc4done
	VMOVUPD (SI)(AX*8), Y1
	VMULPD  (DI)(AX*8), Y1, Y1
	VADDPD  Y1, Y0, Y0
	ADDQ    $4, AX
	JMP     acc4loop

acc4done:
	VMOVUPD Y0, (DX)
	VZEROUPPER
	RET

// func axpyBody(y, x []float64, a float64)
// y[i] += a*x[i]; elements independent, multiply then add, no FMA.
TEXT ·axpyBody(SB), NOSPLIT, $0-56
	MOVQ y_base+0(FP), DI
	MOVQ y_len+8(FP), CX
	MOVQ x_base+24(FP), SI
	VBROADCASTSD a+48(FP), Y2
	XORQ AX, AX

axpyloop:
	CMPQ AX, CX
	JGE  axpydone
	VMULPD  (SI)(AX*8), Y2, Y1
	VADDPD  (DI)(AX*8), Y1, Y1
	VMOVUPD Y1, (DI)(AX*8)
	ADDQ    $4, AX
	JMP     axpyloop

axpydone:
	VZEROUPPER
	RET

// func axpy2Body(y, x0, x1 []float64, a0, a1 float64)
// y[i] = (y[i] + a0*x0[i]) + a1*x1[i]: two sequential rounded adds.
TEXT ·axpy2Body(SB), NOSPLIT, $0-88
	MOVQ y_base+0(FP), DI
	MOVQ y_len+8(FP), CX
	MOVQ x0_base+24(FP), SI
	MOVQ x1_base+48(FP), BX
	VBROADCASTSD a0+72(FP), Y2
	VBROADCASTSD a1+80(FP), Y3
	XORQ AX, AX

axpy2loop:
	CMPQ AX, CX
	JGE  axpy2done
	VMULPD  (SI)(AX*8), Y2, Y0
	VADDPD  (DI)(AX*8), Y0, Y0
	VMULPD  (BX)(AX*8), Y3, Y1
	VADDPD  Y1, Y0, Y0
	VMOVUPD Y0, (DI)(AX*8)
	ADDQ    $4, AX
	JMP     axpy2loop

axpy2done:
	VZEROUPPER
	RET

// func axpy4Body(y, x0, x1, x2, x3 []float64, a0, a1, a2, a3 float64)
// y[i] = (((y[i] + a0*x0[i]) + a1*x1[i]) + a2*x2[i]) + a3*x3[i].
TEXT ·axpy4Body(SB), NOSPLIT, $0-152
	MOVQ y_base+0(FP), DI
	MOVQ y_len+8(FP), CX
	MOVQ x0_base+24(FP), SI
	MOVQ x1_base+48(FP), BX
	MOVQ x2_base+72(FP), R8
	MOVQ x3_base+96(FP), R9
	VBROADCASTSD a0+120(FP), Y2
	VBROADCASTSD a1+128(FP), Y3
	VBROADCASTSD a2+136(FP), Y4
	VBROADCASTSD a3+144(FP), Y5
	XORQ AX, AX

axpy4loop:
	CMPQ AX, CX
	JGE  axpy4done
	VMULPD  (SI)(AX*8), Y2, Y0
	VADDPD  (DI)(AX*8), Y0, Y0
	VMULPD  (BX)(AX*8), Y3, Y1
	VADDPD  Y1, Y0, Y0
	VMULPD  (R8)(AX*8), Y4, Y1
	VADDPD  Y1, Y0, Y0
	VMULPD  (R9)(AX*8), Y5, Y1
	VADDPD  Y1, Y0, Y0
	VMOVUPD Y0, (DI)(AX*8)
	ADDQ    $4, AX
	JMP     axpy4loop

axpy4done:
	VZEROUPPER
	RET

// func recipSqrtBody(dst, r2 []float64)
// dst = 1/sqrt(r2), masked to 0 where r2 == 0. VSQRTPD and VDIVPD are
// correctly rounded (IEEE-754), hence bitwise-equal to math.Sqrt + divide.
TEXT ·recipSqrtBody(SB), NOSPLIT, $0-48
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	MOVQ r2_base+24(FP), SI
	VBROADCASTSD onef64<>(SB), Y3
	VXORPD Y4, Y4, Y4
	XORQ AX, AX

rsloop:
	CMPQ AX, CX
	JGE  rsdone
	VMOVUPD (SI)(AX*8), Y0
	VSQRTPD Y0, Y1
	VDIVPD  Y1, Y3, Y2        // 1.0 / sqrt(r2)
	VCMPPD  $4, Y4, Y0, Y5    // NEQ_UQ: lanes with r2 != 0
	VANDPD  Y5, Y2, Y2
	VMOVUPD Y2, (DI)(AX*8)
	ADDQ    $4, AX
	JMP     rsloop

rsdone:
	VZEROUPPER
	RET

// func recipCubeBody(dst, r2 []float64)
// dst = 1/(r*r*r) with r = sqrt(r2), masked to 0 where r2 == 0; the r*r then
// *r product order matches the scalar CoulombCubed evaluation.
TEXT ·recipCubeBody(SB), NOSPLIT, $0-48
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	MOVQ r2_base+24(FP), SI
	VBROADCASTSD onef64<>(SB), Y3
	VXORPD Y4, Y4, Y4
	XORQ AX, AX

rcloop:
	CMPQ AX, CX
	JGE  rcdone
	VMOVUPD (SI)(AX*8), Y0
	VSQRTPD Y0, Y1
	VMULPD  Y1, Y1, Y2        // r*r
	VMULPD  Y1, Y2, Y2        // (r*r)*r
	VDIVPD  Y2, Y3, Y5        // 1.0 / r^3
	VCMPPD  $4, Y4, Y0, Y6    // NEQ_UQ: lanes with r2 != 0
	VANDPD  Y6, Y5, Y5
	VMOVUPD Y5, (DI)(AX*8)
	ADDQ    $4, AX
	JMP     rcloop

rcdone:
	VZEROUPPER
	RET
