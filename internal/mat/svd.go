package mat

import (
	"math"
)

// SVD is a thin singular value decomposition A = U diag(S) Vᵀ with U m-by-k,
// V n-by-k, k = min(m, n), and S sorted in non-increasing order.
type SVD struct {
	U *Dense
	S []float64
	V *Dense
}

// jacobiSweepLimit bounds the number of one-sided Jacobi sweeps; convergence
// for the modest sizes used here is typically well under ten sweeps.
const jacobiSweepLimit = 60

// NewSVD computes a thin SVD of a using one-sided Jacobi rotations. The
// method is slow for very large matrices but simple, accurate, and entirely
// adequate for the per-node blocks (hundreds of rows) this library handles.
func NewSVD(a *Dense) *SVD {
	m, n := a.Rows, a.Cols
	if m < n {
		// Work on the transpose and swap the factors back.
		s := NewSVD(a.T())
		return &SVD{U: s.V, S: s.S, V: s.U}
	}
	// One-sided Jacobi: orthogonalize the columns of G = A·V.
	g := a.Clone()
	v := Eye(n)
	eps := 1e-15
	for sweep := 0; sweep < jacobiSweepLimit; sweep++ {
		off := 0.0
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				// Compute the 2x2 Gram entries for columns p, q.
				alpha, beta, gamma := 0.0, 0.0, 0.0
				for i := 0; i < m; i++ {
					gp := g.At(i, p)
					gq := g.At(i, q)
					alpha += gp * gp
					beta += gq * gq
					gamma += gp * gq
				}
				if math.Abs(gamma) <= eps*math.Sqrt(alpha*beta) || gamma == 0 {
					continue
				}
				off += math.Abs(gamma)
				// Jacobi rotation zeroing the off-diagonal Gram entry.
				zeta := (beta - alpha) / (2 * gamma)
				t := math.Copysign(1, zeta) / (math.Abs(zeta) + math.Sqrt(1+zeta*zeta))
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				for i := 0; i < m; i++ {
					gp := g.At(i, p)
					gq := g.At(i, q)
					g.Set(i, p, c*gp-s*gq)
					g.Set(i, q, s*gp+c*gq)
				}
				for i := 0; i < n; i++ {
					vp := v.At(i, p)
					vq := v.At(i, q)
					v.Set(i, p, c*vp-s*vq)
					v.Set(i, q, s*vp+c*vq)
				}
			}
		}
		if off == 0 {
			break
		}
	}
	// Column norms of G are the singular values.
	sv := make([]float64, n)
	for j := 0; j < n; j++ {
		s := 0.0
		for i := 0; i < m; i++ {
			w := g.At(i, j)
			s += w * w
		}
		sv[j] = math.Sqrt(s)
	}
	// Sort descending (selection sort keeps the column swaps simple).
	for p := 0; p < n; p++ {
		best := p
		for q := p + 1; q < n; q++ {
			if sv[q] > sv[best] {
				best = q
			}
		}
		if best != p {
			sv[p], sv[best] = sv[best], sv[p]
			swapColumns(g, p, best)
			swapColumns(v, p, best)
		}
	}
	// Normalize to obtain U.
	u := NewDense(m, n)
	for j := 0; j < n; j++ {
		if sv[j] > 0 {
			inv := 1 / sv[j]
			for i := 0; i < m; i++ {
				u.Set(i, j, g.At(i, j)*inv)
			}
		}
	}
	return &SVD{U: u, S: sv, V: v}
}

// Rank returns the number of singular values exceeding tol times the largest
// singular value.
func (s *SVD) Rank(tol float64) int {
	if len(s.S) == 0 || s.S[0] == 0 {
		return 0
	}
	r := 0
	for _, v := range s.S {
		if v > tol*s.S[0] {
			r++
		}
	}
	return r
}

// Norm2 returns the spectral norm (largest singular value).
func (s *SVD) Norm2() float64 {
	if len(s.S) == 0 {
		return 0
	}
	return s.S[0]
}

// PInv returns the Moore–Penrose pseudoinverse, truncating singular values
// at tol times the largest (tol <= 0 uses a machine-epsilon based cutoff).
func (s *SVD) PInv(tol float64) *Dense {
	k := len(s.S)
	if tol <= 0 {
		tol = 1e-14 * float64(max(s.U.Rows, s.V.Rows))
	}
	// pinv = V diag(1/s) Uᵀ over the retained spectrum.
	r := s.Rank(tol)
	n, m := s.V.Rows, s.U.Rows
	p := NewDense(n, m)
	for j := 0; j < r && j < k; j++ {
		inv := 1 / s.S[j]
		for i := 0; i < n; i++ {
			vij := s.V.At(i, j) * inv
			if vij == 0 {
				continue
			}
			for l := 0; l < m; l++ {
				p.Set(i, l, p.At(i, l)+vij*s.U.At(l, j))
			}
		}
	}
	return p
}

// Norm2 returns the spectral norm of a (via Jacobi SVD); intended for
// diagnostics and tests on small matrices.
func (a *Dense) Norm2() float64 {
	if a.Rows == 0 || a.Cols == 0 {
		return 0
	}
	return NewSVD(a).Norm2()
}
