package mat

import (
	"math"
	"math/rand"
	"testing"
)

func TestMulAddToMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, dims := range [][3]int{{1, 1, 1}, {3, 5, 2}, {8, 8, 8}, {17, 4, 9}, {4, 17, 1}} {
		m, n, k := dims[0], dims[1], dims[2]
		a := randDense(rng, m, n)
		b := randDense(rng, n, k)
		c := randDense(rng, m, k)
		want := Mul(a, b).Add(c.Clone())
		MulAddTo(c, a, b)
		for i := range want.Data {
			if math.Abs(c.Data[i]-want.Data[i]) > 1e-13 {
				t.Fatalf("%dx%dx%d: MulAddTo differs at %d: %g vs %g", m, n, k, i, c.Data[i], want.Data[i])
			}
		}
	}
}

func TestMulTAddToMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, dims := range [][3]int{{1, 1, 1}, {5, 3, 2}, {8, 8, 8}, {4, 17, 9}} {
		m, n, k := dims[0], dims[1], dims[2]
		a := randDense(rng, m, n) // c += aᵀ b : c is n x k, b is m x k
		b := randDense(rng, m, k)
		c := randDense(rng, n, k)
		want := Mul(a.T(), b).Add(c.Clone())
		MulTAddTo(c, a, b)
		for i := range want.Data {
			if math.Abs(c.Data[i]-want.Data[i]) > 1e-13 {
				t.Fatalf("%dx%dx%d: MulTAddTo differs at %d", m, n, k, i)
			}
		}
	}
}

func TestMulRangeAddToMatchesSubmatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randDense(rng, 12, 5)
	b := randDense(rng, 5, 3)
	r0, r1 := 4, 9
	c := randDense(rng, r1-r0, 3)
	want := Mul(a.SubCopy(r0, r1, 0, 5), b).Add(c.Clone())
	MulRangeAddTo(c, a, r0, r1, b)
	for i := range want.Data {
		if math.Abs(c.Data[i]-want.Data[i]) > 1e-13 {
			t.Fatalf("MulRangeAddTo differs at %d", i)
		}
	}
}

func TestMulTRangeAddToMatchesSubmatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := randDense(rng, 12, 5)
	r0, r1 := 3, 10
	b := randDense(rng, r1-r0, 3)
	c := randDense(rng, 5, 3)
	want := Mul(a.SubCopy(r0, r1, 0, 5).T(), b).Add(c.Clone())
	MulTRangeAddTo(c, a, r0, r1, b)
	for i := range want.Data {
		if math.Abs(c.Data[i]-want.Data[i]) > 1e-13 {
			t.Fatalf("MulTRangeAddTo differs at %d", i)
		}
	}
}

func TestBatchKernelsMatchVectorKernelsBitwise(t *testing.T) {
	// The batched sweeps promise results identical to the per-vector sweeps,
	// which requires each k=1 GEMM to reproduce the vector kernel bitwise
	// (same per-element summation order).
	rng := rand.New(rand.NewSource(11))
	a := randDense(rng, 9, 7)
	x := make([]float64, 7)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	yv := make([]float64, 9)
	MulVecAdd(yv, a, x)
	yb := NewDense(9, 1)
	MulAddTo(yb, a, NewDenseData(7, 1, append([]float64(nil), x...)))
	for i := range yv {
		if yb.Data[i] != yv[i] {
			t.Fatalf("MulAddTo k=1 not bitwise equal to MulVecAdd at %d", i)
		}
	}
	xt := make([]float64, 9)
	for i := range xt {
		xt[i] = rng.NormFloat64()
	}
	ytv := make([]float64, 7)
	MulTVecAdd(ytv, a, xt)
	ytb := NewDense(7, 1)
	MulTAddTo(ytb, a, NewDenseData(9, 1, append([]float64(nil), xt...)))
	for i := range ytv {
		if ytb.Data[i] != ytv[i] {
			t.Fatalf("MulTAddTo k=1 not bitwise equal to MulTVecAdd at %d", i)
		}
	}
	r0, r1 := 2, 7
	yv2 := make([]float64, r1-r0)
	MulVecAddRange(yv2, a, r0, r1, x)
	yb2 := NewDense(r1-r0, 1)
	MulRangeAddTo(yb2, a, r0, r1, NewDenseData(7, 1, append([]float64(nil), x...)))
	for i := range yv2 {
		if yb2.Data[i] != yv2[i] {
			t.Fatalf("MulRangeAddTo k=1 not bitwise equal at %d", i)
		}
	}
	xr := make([]float64, r1-r0)
	for i := range xr {
		xr[i] = rng.NormFloat64()
	}
	ytv2 := make([]float64, 7)
	MulTVecAddRange(ytv2, a, r0, r1, xr)
	ytb2 := NewDense(7, 1)
	MulTRangeAddTo(ytb2, a, r0, r1, NewDenseData(r1-r0, 1, append([]float64(nil), xr...)))
	for i := range ytv2 {
		if ytb2.Data[i] != ytv2[i] {
			t.Fatalf("MulTRangeAddTo k=1 not bitwise equal at %d", i)
		}
	}
}

func TestMulAddToShapePanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"MulAddTo":       func() { MulAddTo(NewDense(2, 2), NewDense(2, 3), NewDense(4, 2)) },
		"MulTAddTo":      func() { MulTAddTo(NewDense(3, 2), NewDense(2, 4), NewDense(2, 2)) },
		"MulRangeAddTo":  func() { MulRangeAddTo(NewDense(2, 2), NewDense(5, 3), 1, 4, NewDense(3, 2)) },
		"MulTRangeAddTo": func() { MulTRangeAddTo(NewDense(3, 2), NewDense(5, 3), 1, 4, NewDense(2, 2)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected shape panic", name)
				}
			}()
			fn()
		}()
	}
}
