package mat

import (
	"math"
	"math/rand"
	"testing"

	"h2ds/internal/par"
)

// gradedDense returns a random matrix whose column j is scaled by
// decay^j — the adversarial case for pivoted QR, where the norm downdate
// cancels catastrophically and the recompute trigger must fire.
func gradedDense(rng *rand.Rand, r, c int, decay float64) *Dense {
	a := randDense(rng, r, c)
	s := 1.0
	for j := 0; j < c; j++ {
		for i := 0; i < r; i++ {
			a.Set(i, j, a.At(i, j)*s)
		}
		s *= decay
	}
	return a
}

// shuffleCols permutes the columns of a in place with rng so graded norms
// are not already in pivot order.
func shuffleCols(rng *rand.Rand, a *Dense) {
	for j := a.Cols - 1; j > 0; j-- {
		k := rng.Intn(j + 1)
		if k != j {
			swapColumns(a, j, k)
		}
	}
}

func samePivots(t *testing.T, label string, b, u *CPQR) {
	t.Helper()
	if b.Rank != u.Rank {
		t.Fatalf("%s: blocked rank %d != unblocked rank %d", label, b.Rank, u.Rank)
	}
	for k := 0; k < b.Rank; k++ {
		if b.Perm[k] != u.Perm[k] {
			t.Fatalf("%s: pivot %d differs: blocked %d unblocked %d\nblocked %v\nunblocked %v",
				label, k, b.Perm[k], u.Perm[k], b.Perm[:b.Rank], u.Perm[:u.Rank])
		}
	}
}

// reconErr is the relative Frobenius error of the retained Q·R against the
// pivoted original.
func reconErr(a *Dense, c *CPQR) float64 {
	qr := Mul(c.Q(), c.R())
	ap := permuteCols(a, c.Perm)
	return qr.Sub(ap).FrobNorm() / math.Max(a.FrobNorm(), 1e-300)
}

func TestCPQRBlockedPivotsMatchRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	for _, sz := range [][2]int{{80, 120}, {120, 64}, {150, 150}, {48, 200}, {200, 48}} {
		a := randDense(rng, sz[0], sz[1])
		b := newCPQRBlocked(a.Clone(), 0, 0, nil)
		u := NewCPQRUnblocked(a, 0, 0)
		samePivots(t, "random", b, u)
		if eb, eu := reconErr(a, b), reconErr(a, u); eb > 2*eu+1e-14 {
			t.Fatalf("random %dx%d: blocked recon err %g > 2x unblocked %g", sz[0], sz[1], eb, eu)
		}
	}
}

func TestCPQRBlockedPivotsMatchRankDeficient(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for _, k := range []int{3, 12, 40} {
		a := randLowRank(rng, 120, 90, k)
		b := newCPQRBlocked(a.Clone(), 1e-10, 0, nil)
		u := NewCPQRUnblocked(a, 1e-10, 0)
		if b.Rank != k {
			t.Fatalf("rank-%d matrix: blocked detected rank %d", k, b.Rank)
		}
		samePivots(t, "rank-deficient", b, u)
		if eb, eu := reconErr(a, b), reconErr(a, u); eb > 2*eu+1e-12 {
			t.Fatalf("rank-%d: blocked recon err %g > 2x unblocked %g", k, eb, eu)
		}
	}
}

func TestCPQRBlockedPivotsMatchGradedNorms(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	// Norm profile spanning ~38 decades across the columns; the recompute
	// trigger fires repeatedly, exercising the early-panel-exit path.
	a := gradedDense(rng, 100, 128, 0.5)
	shuffleCols(rng, a)
	b := newCPQRBlocked(a.Clone(), 0, 0, nil)
	u := NewCPQRUnblocked(a, 0, 0)
	samePivots(t, "graded", b, u)

	// And with a tolerance stop partway down the grade.
	bt := newCPQRBlocked(a.Clone(), 1e-8, 0, nil)
	ut := NewCPQRUnblocked(a, 1e-8, 0)
	samePivots(t, "graded+tol", bt, ut)
	if bt.Rank >= 128 || bt.Rank == 0 {
		t.Fatalf("graded+tol expected partial rank, got %d", bt.Rank)
	}
}

func TestCPQRBlockedMaxRankCap(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	a := randDense(rng, 100, 100)
	b := newCPQRBlocked(a.Clone(), 0, 37, nil)
	u := NewCPQRUnblocked(a, 0, 37)
	if b.Rank != 37 {
		t.Fatalf("rank cap ignored: got %d", b.Rank)
	}
	samePivots(t, "maxrank", b, u)
}

func TestCPQRBlockedZeroAndTiny(t *testing.T) {
	if r := newCPQRBlocked(NewDense(60, 60), 1e-12, 0, nil).Rank; r != 0 {
		t.Fatalf("zero matrix rank %d", r)
	}
	rng := rand.New(rand.NewSource(94))
	// One nonzero column: rank must stop at 1 under any panel width.
	a := NewDense(60, 60)
	for i := 0; i < 60; i++ {
		a.Set(i, 17, rng.NormFloat64())
	}
	b := newCPQRBlocked(a.Clone(), 1e-12, 0, nil)
	if b.Rank != 1 || b.Perm[0] != 17 {
		t.Fatalf("single-column matrix: rank %d pivot %d", b.Rank, b.Perm[0])
	}
}

// TestCPQRBlockedDeterminism checks run-to-run and pool-size-independence
// bitwise determinism of the blocked factorization.
func TestCPQRBlockedDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	a := gradedDense(rng, 300, 200, 0.8)
	shuffleCols(rng, a)
	ref := newCPQRBlocked(a.Clone(), 1e-12, 0, nil)
	check := func(label string, c *CPQR) {
		t.Helper()
		if c.Rank != ref.Rank {
			t.Fatalf("%s: rank %d != %d", label, c.Rank, ref.Rank)
		}
		for i, v := range ref.Fac.Data {
			if c.Fac.Data[i] != v {
				t.Fatalf("%s: Fac differs at flat index %d: %g != %g", label, i, c.Fac.Data[i], v)
			}
		}
		for i, v := range ref.Tau {
			if c.Tau[i] != v {
				t.Fatalf("%s: Tau differs at %d", label, i)
			}
		}
		for i, v := range ref.Perm {
			if c.Perm[i] != v {
				t.Fatalf("%s: Perm differs at %d", label, i)
			}
		}
	}
	check("rerun", newCPQRBlocked(a.Clone(), 1e-12, 0, nil))
	for _, w := range []int{1, 2, 7} {
		pool := par.NewPool(w)
		check("pool", newCPQRBlocked(a.Clone(), 1e-12, 0, pool))
		pool.Close()
	}
}

// TestRowIDBlockedMatchesUnblocked pins the property construction actually
// relies on: identical skeleton selection through the RowID wrapper.
func TestRowIDBlockedMatchesUnblocked(t *testing.T) {
	rng := rand.New(rand.NewSource(96))
	a := randLowRank(rng, 90, 130, 25)
	b := NewRowID(a, 1e-9, 0)
	u := NewRowIDUnblocked(a, 1e-9, 0)
	if b.Rank != u.Rank {
		t.Fatalf("rank %d != %d", b.Rank, u.Rank)
	}
	for i := range b.Skel {
		if b.Skel[i] != u.Skel[i] {
			t.Fatalf("skeleton differs at %d: %d != %d", i, b.Skel[i], u.Skel[i])
		}
	}
	eb := b.Reconstruct(a).Sub(a).FrobNorm() / a.FrobNorm()
	eu := u.Reconstruct(a).Sub(a).FrobNorm() / a.FrobNorm()
	if eb > 2*eu+1e-12 {
		t.Fatalf("blocked RowID recon err %g > 2x unblocked %g", eb, eu)
	}
}
