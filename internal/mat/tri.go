package mat

import (
	"fmt"
	"math"
)

// Cholesky holds the lower-triangular factor L of a symmetric positive
// definite matrix A = L Lᵀ.
type Cholesky struct {
	L *Dense
}

// NewCholesky factorizes the symmetric positive definite matrix a. It
// returns an error if a is not square or a non-positive pivot is found.
func NewCholesky(a *Dense) (*Cholesky, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("mat: cholesky of non-square %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	l := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a.At(i, j)
			li := l.Row(i)
			lj := l.Row(j)
			for k := 0; k < j; k++ {
				s -= li[k] * lj[k]
			}
			if i == j {
				if s <= 0 {
					return nil, fmt.Errorf("mat: cholesky pivot %d not positive (%g)", i, s)
				}
				l.Set(i, i, math.Sqrt(s))
			} else {
				l.Set(i, j, s/l.At(j, j))
			}
		}
	}
	return &Cholesky{L: l}, nil
}

// Solve solves A x = b and returns x. b is not modified.
func (c *Cholesky) Solve(b []float64) []float64 {
	n := c.L.Rows
	if len(b) != n {
		panic(fmt.Sprintf("mat: cholesky solve length %d want %d", len(b), n))
	}
	x := make([]float64, n)
	copy(x, b)
	SolveLowerInPlace(c.L, x)
	SolveUpperTransposedInPlace(c.L, x)
	return x
}

// SolveTo solves A x = b into an existing x, which must have length n.
// x and b may alias (the solve copies b into x first and then works in
// place); it performs no allocation.
func (c *Cholesky) SolveTo(x, b []float64) {
	n := c.L.Rows
	if len(b) != n || len(x) != n {
		panic(fmt.Sprintf("mat: cholesky solveTo lengths x=%d b=%d want %d", len(x), len(b), n))
	}
	copy(x, b)
	SolveLowerInPlace(c.L, x)
	SolveUpperTransposedInPlace(c.L, x)
}

// SolveLowerInPlace solves L x = b in place for lower-triangular L.
func SolveLowerInPlace(l *Dense, x []float64) {
	n := len(x)
	for i := 0; i < n; i++ {
		s := x[i]
		row := l.Row(i)
		for j := 0; j < i; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
}

// SolveUpperTransposedInPlace solves Lᵀ x = b in place given lower L.
func SolveUpperTransposedInPlace(l *Dense, x []float64) {
	n := len(x)
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= l.At(j, i) * x[j]
		}
		x[i] = s / l.At(i, i)
	}
}

// SolveUpperInPlace solves U x = b in place for an upper-triangular matrix
// stored in (at least) the upper triangle of u. Exposed for tests.
func SolveUpperInPlace(u *Dense, x []float64) { solveUpperInPlace(u, x) }
