//go:build !amd64 || noasm

package mat

import "math"

// Non-amd64 (or noasm-tagged) fallbacks: the dispatch layer never selects
// these because hasAVX reports false, but they keep the package compiling
// with identical semantics everywhere.

func hasAVX() bool { return false }

func dotBody(row, x []float64) float64 {
	x = x[:len(row)]
	var s0, s1, s2, s3 float64
	for j := 0; j+4 <= len(row); j += 4 {
		s0 += row[j] * x[j]
		s1 += row[j+1] * x[j+1]
		s2 += row[j+2] * x[j+2]
		s3 += row[j+3] * x[j+3]
	}
	return (s0 + s1) + (s2 + s3)
}

func dot2Body(r0, r1, x []float64) (float64, float64) {
	x = x[:len(r0)]
	r1 = r1[:len(r0)]
	var a0, a1, a2, a3 float64
	var b0, b1, b2, b3 float64
	for j := 0; j+4 <= len(r0); j += 4 {
		x0, x1, x2, x3 := x[j], x[j+1], x[j+2], x[j+3]
		a0 += r0[j] * x0
		a1 += r0[j+1] * x1
		a2 += r0[j+2] * x2
		a3 += r0[j+3] * x3
		b0 += r1[j] * x0
		b1 += r1[j+1] * x1
		b2 += r1[j+2] * x2
		b3 += r1[j+3] * x3
	}
	return (a0 + a1) + (a2 + a3), (b0 + b1) + (b2 + b3)
}

func dotAcc4Body(k, v []float64, acc *[4]float64) {
	k = k[:len(v)]
	for t := 0; t+4 <= len(v); t += 4 {
		acc[0] += k[t] * v[t]
		acc[1] += k[t+1] * v[t+1]
		acc[2] += k[t+2] * v[t+2]
		acc[3] += k[t+3] * v[t+3]
	}
}

func axpyBody(y, x []float64, a float64) {
	y = y[:len(x)]
	for i, xv := range x {
		y[i] += a * xv
	}
}

func axpy2Body(y, x0, x1 []float64, a0, a1 float64) {
	y = y[:len(x0)]
	x1 = x1[:len(x0)]
	for i := range x0 {
		y[i] = (y[i] + a0*x0[i]) + a1*x1[i]
	}
}

func axpy4Body(y, x0, x1, x2, x3 []float64, a0, a1, a2, a3 float64) {
	y = y[:len(x0)]
	x1 = x1[:len(x0)]
	x2 = x2[:len(x0)]
	x3 = x3[:len(x0)]
	for i := range x0 {
		y[i] = (((y[i] + a0*x0[i]) + a1*x1[i]) + a2*x2[i]) + a3*x3[i]
	}
}

func recipSqrtBody(dst, r2 []float64) {
	dst = dst[:len(r2)]
	for t, v := range r2 {
		r := math.Sqrt(v)
		if r == 0 {
			dst[t] = 0
			continue
		}
		dst[t] = 1 / r
	}
}

func recipCubeBody(dst, r2 []float64) {
	dst = dst[:len(r2)]
	for t, v := range r2 {
		r := math.Sqrt(v)
		if r == 0 {
			dst[t] = 0
			continue
		}
		dst[t] = 1 / (r * r * r)
	}
}
