package mat

import (
	"fmt"
	"math"
)

// CPQR holds a truncated column-pivoted Householder QR factorization
//
//	A P ≈ Q [R11 R12]
//
// where R11 is Rank-by-Rank upper triangular with non-increasing diagonal
// magnitudes. Perm lists the column order (Perm[k] is the original index of
// the k-th pivoted column); the first Rank entries are the selected columns.
type CPQR struct {
	Fac  *Dense
	Tau  []float64
	Perm []int
	Rank int
}

// cpqrRecomputeTrigger controls when downdated column norms are recomputed
// from scratch to avoid catastrophic cancellation.
const cpqrRecomputeTrigger = 1e-6

// NewCPQR computes a column-pivoted QR of a (not modified), truncated at the
// first step k where the largest remaining column norm falls to
// tol * (largest initial pivot norm), or at maxRank columns, whichever comes
// first. maxRank <= 0 means no rank cap. tol <= 0 disables the tolerance
// stop. Works for any shape, including rows < cols.
func NewCPQR(a *Dense, tol float64, maxRank int) *CPQR {
	f := a.Clone()
	m, n := f.Rows, f.Cols
	kmax := min(m, n)
	if maxRank > 0 && maxRank < kmax {
		kmax = maxRank
	}
	tau := make([]float64, 0, kmax)
	perm := make([]int, n)
	for j := range perm {
		perm[j] = j
	}

	// Current (downdated) squared norms of the trailing column parts, plus
	// the exact values at the time of the last recompute for the
	// cancellation trigger.
	norms := make([]float64, n)
	normsRef := make([]float64, n)
	for j := 0; j < n; j++ {
		s := 0.0
		for i := 0; i < m; i++ {
			v := f.At(i, j)
			s += v * v
		}
		norms[j] = s
		normsRef[j] = s
	}

	firstPivot := 0.0
	rank := 0
	for k := 0; k < kmax; k++ {
		// Select pivot.
		p, best := k, norms[k]
		for j := k + 1; j < n; j++ {
			if norms[j] > best {
				p, best = j, norms[j]
			}
		}
		pivNorm := math.Sqrt(math.Max(best, 0))
		if k == 0 {
			firstPivot = pivNorm
		}
		if pivNorm == 0 || (tol > 0 && pivNorm <= tol*firstPivot) {
			break
		}
		if p != k {
			swapColumns(f, k, p)
			perm[k], perm[p] = perm[p], perm[k]
			norms[k], norms[p] = norms[p], norms[k]
			normsRef[k], normsRef[p] = normsRef[p], normsRef[k]
		}
		t := houseColumn(f, k, k)
		applyHouseLeft(f, k, k, t, k+1, n)
		tau = append(tau, t)
		rank++

		// Downdate trailing norms; recompute any that lost too many digits.
		for j := k + 1; j < n; j++ {
			r := f.At(k, j)
			norms[j] -= r * r
			if norms[j] < cpqrRecomputeTrigger*normsRef[j] || norms[j] < 0 {
				s := 0.0
				for i := k + 1; i < m; i++ {
					v := f.At(i, j)
					s += v * v
				}
				norms[j] = s
				normsRef[j] = s
			}
		}
	}
	return &CPQR{Fac: f, Tau: tau, Perm: perm, Rank: rank}
}

func swapColumns(f *Dense, a, b int) {
	for i := 0; i < f.Rows; i++ {
		row := f.Row(i)
		row[a], row[b] = row[b], row[a]
	}
}

// R returns the Rank-by-n upper-trapezoidal factor (in pivoted column order).
func (c *CPQR) R() *Dense {
	r := NewDense(c.Rank, c.Fac.Cols)
	for i := 0; i < c.Rank; i++ {
		for j := i; j < c.Fac.Cols; j++ {
			r.Set(i, j, c.Fac.At(i, j))
		}
	}
	return r
}

// Q returns the thin m-by-Rank orthonormal factor.
func (c *CPQR) Q() *Dense {
	m, r := c.Fac.Rows, c.Rank
	q := NewDense(m, r)
	for i := 0; i < r; i++ {
		q.Set(i, i, 1)
	}
	for k := r - 1; k >= 0; k-- {
		tau := c.Tau[k]
		if tau == 0 {
			continue
		}
		for j := 0; j < r; j++ {
			w := q.At(k, j)
			for i := k + 1; i < m; i++ {
				w += c.Fac.At(i, k) * q.At(i, j)
			}
			w *= tau
			q.Set(k, j, q.At(k, j)-w)
			for i := k + 1; i < m; i++ {
				q.Set(i, j, q.At(i, j)-w*c.Fac.At(i, k))
			}
		}
	}
	return q
}

// InterpCoeffs solves R11 X = R12 for the coefficient block that expresses
// the non-pivot columns in terms of the pivot columns. The result has shape
// Rank-by-(n-Rank); column k corresponds to original column Perm[Rank+k].
func (c *CPQR) InterpCoeffs() *Dense {
	r, n := c.Rank, c.Fac.Cols
	x := NewDense(r, n-r)
	col := make([]float64, r)
	for k := 0; k < n-r; k++ {
		for i := 0; i < r; i++ {
			col[i] = c.Fac.At(i, r+k)
		}
		solveUpperInPlace(c.Fac, col)
		for i := 0; i < r; i++ {
			x.Set(i, k, col[i])
		}
	}
	return x
}

// CheckShapes panics with a descriptive message if the factorization's
// internal invariants are violated. Used by tests.
func (c *CPQR) CheckShapes() {
	if len(c.Tau) != c.Rank {
		panic(fmt.Sprintf("mat: cpqr tau length %d != rank %d", len(c.Tau), c.Rank))
	}
	if len(c.Perm) != c.Fac.Cols {
		panic(fmt.Sprintf("mat: cpqr perm length %d != cols %d", len(c.Perm), c.Fac.Cols))
	}
}
