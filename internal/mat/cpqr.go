package mat

import (
	"fmt"
	"math"

	"h2ds/internal/par"
)

// CPQR holds a truncated column-pivoted Householder QR factorization
//
//	A P ≈ Q [R11 R12]
//
// where R11 is Rank-by-Rank upper triangular with non-increasing diagonal
// magnitudes. Perm lists the column order (Perm[k] is the original index of
// the k-th pivoted column); the first Rank entries are the selected columns.
type CPQR struct {
	Fac  *Dense
	Tau  []float64
	Perm []int
	Rank int
}

// cpqrRecomputeTrigger controls when downdated column norms are recomputed
// from scratch to avoid catastrophic cancellation.
const cpqrRecomputeTrigger = 1e-6

// cpqrPanel is the compact-WY panel width of the blocked path: this many
// reflectors are accumulated before their update of the trailing matrix is
// applied as one GEMM.
const cpqrPanel = 16

// Blocked-path dispatch thresholds: below these the panel bookkeeping costs
// more than the unblocked loop saves.
const (
	cpqrBlockMinCols = 48
	cpqrBlockMinRows = 16
)

// cpqrParMinWork is the minimum trailing-update element count before the
// optional par.Pool hook spreads GEMM rows across workers.
const cpqrParMinWork = 1 << 15

// NewCPQR computes a column-pivoted QR of a (not modified), truncated at the
// first step k where the largest remaining column norm falls to
// tol * (largest initial pivot norm), or at maxRank columns, whichever comes
// first. maxRank <= 0 means no rank cap. tol <= 0 disables the tolerance
// stop. Works for any shape, including rows < cols.
//
// Matrices large enough to amortize the panel bookkeeping take the blocked
// compact-WY path; both paths use the same pivot rule, tolerance trigger,
// and norm-downdate/recompute logic, so they select identical columns in
// exact arithmetic.
func NewCPQR(a *Dense, tol float64, maxRank int) *CPQR {
	return NewCPQRPool(a, tol, maxRank, nil)
}

// NewCPQRPool is NewCPQR with an optional worker pool: when pool is non-nil,
// large trailing-matrix updates of the blocked path are parallelized across
// its workers. Each GEMM row is claimed and written by exactly one worker
// with a fixed per-row operation order, so the factorization is
// bitwise-identical for any pool size (including none). The pool must not be
// serving another ForWorker call on the calling goroutine's behalf (par.Pool
// is single-client), which is why construction code passes it only on
// levels it iterates sequentially.
func NewCPQRPool(a *Dense, tol float64, maxRank int, pool *par.Pool) *CPQR {
	return newCPQRInPlace(a.Clone(), tol, maxRank, pool)
}

// newCPQRInPlace factors f directly (no defensive clone) — for callers that
// hand over a freshly built matrix, like the row-ID's transposed panel.
func newCPQRInPlace(f *Dense, tol float64, maxRank int, pool *par.Pool) *CPQR {
	if f.Cols >= cpqrBlockMinCols && f.Rows >= cpqrBlockMinRows {
		return newCPQRBlocked(f, tol, maxRank, pool)
	}
	return newCPQRUnblocked(f, tol, maxRank)
}

// NewCPQRUnblocked is the reference one-reflector-at-a-time factorization
// (the pre-blocking construction path). It is kept callable for the
// blocked-vs-unblocked property suites and the build bench's seed baseline.
func NewCPQRUnblocked(a *Dense, tol float64, maxRank int) *CPQR {
	return newCPQRUnblocked(a.Clone(), tol, maxRank)
}

func newCPQRUnblocked(f *Dense, tol float64, maxRank int) *CPQR {
	m, n := f.Rows, f.Cols
	kmax := min(m, n)
	if maxRank > 0 && maxRank < kmax {
		kmax = maxRank
	}
	tau := make([]float64, 0, kmax)
	perm := make([]int, n)
	for j := range perm {
		perm[j] = j
	}
	norms, normsRef := initColumnNorms(f)

	firstPivot := 0.0
	rank := 0
	for k := 0; k < kmax; k++ {
		// Select pivot.
		p, best := k, norms[k]
		for j := k + 1; j < n; j++ {
			if norms[j] > best {
				p, best = j, norms[j]
			}
		}
		pivNorm := math.Sqrt(math.Max(best, 0))
		if k == 0 {
			firstPivot = pivNorm
		}
		if pivNorm == 0 || (tol > 0 && pivNorm <= tol*firstPivot) {
			break
		}
		if p != k {
			swapColumns(f, k, p)
			perm[k], perm[p] = perm[p], perm[k]
			norms[k], norms[p] = norms[p], norms[k]
			normsRef[k], normsRef[p] = normsRef[p], normsRef[k]
		}
		t := houseColumn(f, k, k)
		applyHouseLeft(f, k, k, t, k+1, n)
		tau = append(tau, t)
		rank++

		// Downdate trailing norms; recompute any that lost too many digits.
		for j := k + 1; j < n; j++ {
			r := f.At(k, j)
			norms[j] -= r * r
			if norms[j] < cpqrRecomputeTrigger*normsRef[j] || norms[j] < 0 {
				s := 0.0
				for i := k + 1; i < m; i++ {
					v := f.At(i, j)
					s += v * v
				}
				norms[j] = s
				normsRef[j] = s
			}
		}
	}
	return &CPQR{Fac: f, Tau: tau, Perm: perm, Rank: rank}
}

// initColumnNorms computes the initial squared column norms in one row-major
// pass (each row read once, accumulating into every column), plus the
// reference copy for the cancellation trigger. Per-column accumulation order
// is row-ascending, the same as a per-column loop.
func initColumnNorms(f *Dense) (norms, normsRef []float64) {
	n := f.Cols
	norms = make([]float64, n)
	normsRef = make([]float64, n)
	for i := 0; i < f.Rows; i++ {
		row := f.Row(i)
		for j, v := range row {
			norms[j] += v * v
		}
	}
	copy(normsRef, norms)
	return norms, normsRef
}

// newCPQRBlocked is the compact-WY factorization (LAPACK dgeqp3's panel
// scheme): within a panel of cpqrPanel reflectors, only the pivot column and
// the pivot row of the trailing matrix are kept current — the pivot rule
// needs the downdated norms and the norms need the current pivot row — while
// the bulk of the update is deferred and applied once per panel as a GEMM on
// the unrolled dot/axpy primitives. Pivot selection, the tolerance stop, and
// the norm-downdate/recompute trigger are the unblocked path's exactly.
//
// Where dlaqps ends the panel on a tripped recompute trigger (LSTICC) —
// ruinous on kernel panels with fast spectral decay, which trip every few
// steps and so degenerate the blocked path into the unblocked one plus panel
// overhead — this materializes the pending panel update of the one affected
// column on the fly (O(m·t) with the same dot kernel the GEMM uses) and
// keeps the panel going, preserving full-width trailing updates.
func newCPQRBlocked(f *Dense, tol float64, maxRank int, pool *par.Pool) *CPQR {
	m, n := f.Rows, f.Cols
	kmax := min(m, n)
	if maxRank > 0 && maxRank < kmax {
		kmax = maxRank
	}
	tau := make([]float64, 0, kmax)
	perm := make([]int, n)
	for j := range perm {
		perm[j] = j
	}
	norms, normsRef := initColumnNorms(f)

	// wy accumulates the panel's compact-WY coefficients: wy.Row(j)[:t]
	// holds what the first t panel reflectors owe column j, so the pending
	// update of any column is a_j -= V(:, :t)·wy(j, :t)ᵀ. This is dlaqps's
	// auxiliary F matrix, stored row-major so the GEMM below runs on
	// contiguous slices of both operands.
	wy := NewDense(n, cpqrPanel)
	accPanel := make([]float64, cpqrPanel)
	accTrail := make([]float64, n)
	trig := make([]int, 0, n)
	trigAcc := make([]float64, n)

	firstPivot := 0.0
	rank := 0
	stop := false
	for k0 := 0; k0 < kmax && !stop; {
		nb := min(cpqrPanel, kmax-k0)
		kb := 0
		for t := 0; t < nb; t++ {
			k := k0 + t
			// Select pivot (largest downdated squared norm, first index wins
			// ties — identical to the unblocked rule).
			p, best := k, norms[k]
			for j := k + 1; j < n; j++ {
				if norms[j] > best {
					p, best = j, norms[j]
				}
			}
			pivNorm := math.Sqrt(math.Max(best, 0))
			if k == 0 {
				firstPivot = pivNorm
			}
			if pivNorm == 0 || (tol > 0 && pivNorm <= tol*firstPivot) {
				stop = true
				break
			}
			if p != k {
				swapColumns(f, k, p)
				perm[k], perm[p] = perm[p], perm[k]
				norms[k], norms[p] = norms[p], norms[k]
				normsRef[k], normsRef[p] = normsRef[p], normsRef[k]
				wk, wp := wy.Row(k), wy.Row(p)
				for c := 0; c < t; c++ {
					wk[c], wp[c] = wp[c], wk[c]
				}
			}
			// Catch column k up on the panel's pending reflectors over rows
			// k..m (rows k0..k-1 were finalized by the pivot-row updates of
			// earlier steps).
			if t > 0 {
				wk := wy.Row(k)[:t]
				for i := k; i < m; i++ {
					row := f.Row(i)
					row[k] -= dot(row[k0:k0+t], wk)
				}
			}
			tk := houseColumn(f, k, k)
			tau = append(tau, tk)
			rank++
			kb = t + 1

			// One row-major pass over rows k..m accumulates vᵀ·(panel V) and
			// vᵀ·(trailing A) together, with v[k] = 1 set in place for the
			// duration (dlaqps's AKK save/restore).
			akk := f.At(k, k)
			f.Set(k, k, 1)
			for c := 0; c < t; c++ {
				accPanel[c] = 0
			}
			for j := k + 1; j < n; j++ {
				accTrail[j] = 0
			}
			for i := k; i < m; i++ {
				row := f.Row(i)
				w := row[k]
				if w == 0 {
					continue
				}
				axpy(accPanel[:t], w, row[k0:k0+t])
				axpy(accTrail[k+1:n], w, row[k+1:n])
			}
			// New coefficient column: wy(j, t) = tk·(vᵀa_j) − tk·wy(j, :t)·(Vᵀv),
			// zero-based for the already-factored columns.
			for c := 0; c < t; c++ {
				accPanel[c] *= -tk
			}
			for j := k0; j <= k; j++ {
				wr := wy.Row(j)
				wr[t] = dot(wr[:t], accPanel[:t])
			}
			for j := k + 1; j < n; j++ {
				wr := wy.Row(j)
				wr[t] = tk*accTrail[j] + dot(wr[:t], accPanel[:t])
			}
			// Finalize the pivot row of the trailing matrix — the norm
			// downdate below needs it — using all t+1 panel reflectors.
			frow := f.Row(k)
			vk := frow[k0 : k0+t+1]
			for j := k + 1; j < n; j++ {
				frow[j] -= dot(vk, wy.Row(j)[:t+1])
			}
			f.Set(k, k, akk)

			// Same downdate rule and cancellation trigger as the unblocked
			// path. The exact recompute needs the current column, which the
			// deferred GEMM has not produced for rows below k — so apply the
			// panel's pending update to that one column on the fly rather
			// than ending the panel (see the function comment). Fast-decay
			// panels trip several columns per step, so the recomputes are
			// batched into one row-major sweep: each matrix row is streamed
			// once and serves every tripped column, instead of one strided
			// column walk per trip. Per-column accumulation order (ascending
			// rows) is unchanged, so the results are bit-identical to the
			// one-column-at-a-time form.
			trig = trig[:0]
			for j := k + 1; j < n; j++ {
				r := frow[j]
				norms[j] -= r * r
				if norms[j] < cpqrRecomputeTrigger*normsRef[j] || norms[j] < 0 {
					trig = append(trig, j)
					trigAcc[len(trig)-1] = 0
				}
			}
			if len(trig) > 0 {
				for i := k + 1; i < m; i++ {
					row := f.Row(i)
					pv := row[k0 : k0+t+1]
					for c, j := range trig {
						v := row[j] - dot(pv, wy.Row(j)[:t+1])
						trigAcc[c] += v * v
					}
				}
				for c, j := range trig {
					norms[j] = trigAcc[c]
					normsRef[j] = trigAcc[c]
				}
			}
		}
		if kb == 0 {
			break
		}
		cpqrTrailingUpdate(f, wy, k0, kb, pool)
		k0 += kb
	}
	return &CPQR{Fac: f, Tau: tau, Perm: perm, Rank: rank}
}

// cpqrTrailingUpdate applies the panel's accumulated block reflector to the
// part of the trailing matrix below the panel:
//
//	A(k0+kb:m, k0+kb:n) -= V(:, k0:k0+kb) · wyᵀ
//
// — the GEMM that makes blocking worthwhile. V lives in the panel columns of
// f (every used row is strictly below its pivot row, so no unit-diagonal
// fixups are needed); both V rows and wy rows are contiguous, so the kernel
// is dot/dot2 over kb-length slices. Rows are independent — each row's
// update reads only that row's V entries plus wy — so the optional pool
// spreads rows across workers without changing any result bit.
func cpqrTrailingUpdate(f, wy *Dense, k0, kb int, pool *par.Pool) {
	m, n := f.Rows, f.Cols
	r0 := k0 + kb
	if r0 >= m || r0 >= n {
		return
	}
	update := func(i int) {
		row := f.Row(i)
		v := row[k0 : k0+kb]
		j := r0
		for ; j+2 <= n; j += 2 {
			s0, s1 := dot2(wy.Row(j)[:kb], wy.Row(j + 1)[:kb], v)
			row[j] -= s0
			row[j+1] -= s1
		}
		if j < n {
			row[j] -= dot(v, wy.Row(j)[:kb])
		}
	}
	rows := m - r0
	if pool != nil && rows > 1 && int64(rows)*int64(n-r0) >= cpqrParMinWork {
		pool.For(rows, func(i int) { update(r0 + i) })
		return
	}
	for i := r0; i < m; i++ {
		update(i)
	}
}

func swapColumns(f *Dense, a, b int) {
	for i := 0; i < f.Rows; i++ {
		row := f.Row(i)
		row[a], row[b] = row[b], row[a]
	}
}

// R returns the Rank-by-n upper-trapezoidal factor (in pivoted column order).
func (c *CPQR) R() *Dense {
	r := NewDense(c.Rank, c.Fac.Cols)
	for i := 0; i < c.Rank; i++ {
		for j := i; j < c.Fac.Cols; j++ {
			r.Set(i, j, c.Fac.At(i, j))
		}
	}
	return r
}

// Q returns the thin m-by-Rank orthonormal factor.
func (c *CPQR) Q() *Dense {
	m, r := c.Fac.Rows, c.Rank
	q := NewDense(m, r)
	for i := 0; i < r; i++ {
		q.Set(i, i, 1)
	}
	for k := r - 1; k >= 0; k-- {
		tau := c.Tau[k]
		if tau == 0 {
			continue
		}
		for j := 0; j < r; j++ {
			w := q.At(k, j)
			for i := k + 1; i < m; i++ {
				w += c.Fac.At(i, k) * q.At(i, j)
			}
			w *= tau
			q.Set(k, j, q.At(k, j)-w)
			for i := k + 1; i < m; i++ {
				q.Set(i, j, q.At(i, j)-w*c.Fac.At(i, k))
			}
		}
	}
	return q
}

// InterpCoeffs solves R11 X = R12 for the coefficient block that expresses
// the non-pivot columns in terms of the pivot columns. The result has shape
// Rank-by-(n-Rank); column k corresponds to original column Perm[Rank+k].
//
// All right-hand sides are back-substituted together, one row-major axpy
// sweep per row of R11, instead of one strided triangular solve per column.
// Each element still receives its updates in ascending-j order followed by
// one division, so the result is bit-identical to the column-at-a-time form.
func (c *CPQR) InterpCoeffs() *Dense {
	r, n := c.Rank, c.Fac.Cols
	x := NewDense(r, n-r)
	for i := 0; i < r; i++ {
		copy(x.Row(i), c.Fac.Row(i)[r:n])
	}
	for i := r - 1; i >= 0; i-- {
		xi := x.Row(i)
		frow := c.Fac.Row(i)
		for j := i + 1; j < r; j++ {
			axpy(xi, -frow[j], x.Row(j))
		}
		if d := frow[i]; d == 0 {
			for k := range xi {
				xi[k] = 0
			}
		} else {
			for k := range xi {
				xi[k] /= d
			}
		}
	}
	return x
}

// CheckShapes panics with a descriptive message if the factorization's
// internal invariants are violated. Used by tests.
func (c *CPQR) CheckShapes() {
	if len(c.Tau) != c.Rank {
		panic(fmt.Sprintf("mat: cpqr tau length %d != rank %d", len(c.Tau), c.Rank))
	}
	if len(c.Perm) != c.Fac.Cols {
		panic(fmt.Sprintf("mat: cpqr perm length %d != cols %d", len(c.Perm), c.Fac.Cols))
	}
}
