package mat

import "math"

// ACA computes a low-rank approximation A ≈ U·Vᵀ of an m-by-n matrix given
// only through the entry oracle, using adaptive cross approximation with
// partial pivoting (Bebendorf; the paper's §VII algebraic baseline). U is
// m-by-r, V is n-by-r.
//
// The iteration stops when the estimated update norm ||u_k||·||v_k|| falls
// below tol times the running Frobenius-norm estimate of the approximation,
// or at maxRank (maxRank <= 0 caps at min(m, n)).
//
// ACA is heuristic: it inspects only the crosses it pivots through, so
// kernels whose blocks hide mass outside those crosses (zero sub-blocks,
// strongly localized supports) can terminate early with large error — the
// failure mode the paper cites when motivating interpolation and
// data-driven construction. TestACAZeroBlockFailure demonstrates it.
func ACA(m, n int, entry func(i, j int) float64, tol float64, maxRank int) (u, v *Dense) {
	kmax := min(m, n)
	if maxRank > 0 && maxRank < kmax {
		kmax = maxRank
	}
	if tol <= 0 {
		tol = 1e-14
	}
	us := make([][]float64, 0, 8)
	vs := make([][]float64, 0, 8)
	rowUsed := make([]bool, m)
	colUsed := make([]bool, n)

	// Frobenius estimate of the accumulated approximation:
	// ||A_r||² ≈ Σ_k ||u_k||²||v_k||² + 2 Σ_{k<l} (u_kᵀu_l)(v_kᵀv_l).
	frob2 := 0.0

	nextRow := 0
	for len(us) < kmax {
		// Residual row `nextRow`: a(i, :) - Σ u_k[i] v_k.
		i := nextRow
		if i < 0 || rowUsed[i] {
			i = -1
			for c := 0; c < m; c++ {
				if !rowUsed[c] {
					i = c
					break
				}
			}
			if i < 0 {
				break
			}
		}
		rowUsed[i] = true
		rrow := make([]float64, n)
		for j := 0; j < n; j++ {
			rrow[j] = entry(i, j)
		}
		for k, uk := range us {
			Axpy(-uk[i], vs[k], rrow)
		}
		// Column pivot: largest residual entry in the row among unused
		// columns.
		jp, best := -1, 0.0
		for j := 0; j < n; j++ {
			if colUsed[j] {
				continue
			}
			if a := math.Abs(rrow[j]); a > best {
				jp, best = j, a
			}
		}
		if jp < 0 || best == 0 {
			// Degenerate row; try another one (classic partial-pivot
			// fallback). If every row has been visited we are done.
			nextRow = -1
			allUsed := true
			for c := 0; c < m; c++ {
				if !rowUsed[c] {
					allUsed = false
					break
				}
			}
			if allUsed {
				break
			}
			continue
		}
		colUsed[jp] = true
		// Residual column jp.
		rcol := make([]float64, m)
		for r := 0; r < m; r++ {
			rcol[r] = entry(r, jp)
		}
		for k, uk := range us {
			Axpy(-vs[k][jp], uk, rcol)
		}
		pivot := rrow[jp]
		inv := 1 / pivot
		for j := range rrow {
			rrow[j] *= inv
		}
		// Cross update: u = residual column, v = scaled residual row.
		nu := Norm2(rcol)
		nv := Norm2(rrow)
		for k := range us {
			frob2 += 2 * Dot(us[k], rcol) * Dot(vs[k], rrow)
		}
		frob2 += nu * nu * nv * nv
		us = append(us, rcol)
		vs = append(vs, rrow)

		if nu*nv <= tol*math.Sqrt(math.Max(frob2, 0)) {
			break
		}
		// Next row pivot: largest entry of the new column outside used rows.
		nextRow = -1
		best = 0
		for r := 0; r < m; r++ {
			if rowUsed[r] {
				continue
			}
			if a := math.Abs(rcol[r]); a > best {
				nextRow, best = r, a
			}
		}
	}

	r := len(us)
	u = NewDense(m, r)
	v = NewDense(n, r)
	for k := 0; k < r; k++ {
		for i := 0; i < m; i++ {
			u.Set(i, k, us[k][i])
		}
		for j := 0; j < n; j++ {
			v.Set(j, k, vs[k][j])
		}
	}
	return u, v
}

// ACAApprox is a convenience wrapper returning the assembled approximation
// U·Vᵀ (tests and diagnostics; real callers keep the factors).
func ACAApprox(a *Dense, tol float64, maxRank int) *Dense {
	u, v := ACA(a.Rows, a.Cols, a.At, tol, maxRank)
	return Mul(u, v.T())
}
