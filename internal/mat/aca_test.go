package mat

import (
	"math"
	"math/rand"
	"testing"
)

func TestACAExactLowRank(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	for _, k := range []int{1, 3, 7} {
		a := randLowRank(rng, 40, 30, k)
		u, v := ACA(40, 30, a.At, 1e-12, 0)
		if u.Cols > k+1 {
			t.Fatalf("rank-%d matrix: ACA used rank %d", k, u.Cols)
		}
		rec := Mul(u, v.T())
		if relErr := rec.Sub(a).FrobNorm() / a.FrobNorm(); relErr > 1e-9 {
			t.Fatalf("rank-%d: reconstruction error %g", k, relErr)
		}
	}
}

func TestACADecayingSpectrum(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	n := 35
	uq := NewQR(randDense(rng, n, n)).Q()
	vq := NewQR(randDense(rng, n, n)).Q()
	d := NewDense(n, n)
	for i := 0; i < n; i++ {
		d.Set(i, i, math.Pow(10, -float64(i)/2))
	}
	a := Mul(Mul(uq, d), vq.T())
	for _, tol := range []float64{1e-3, 1e-6} {
		rec := ACAApprox(a, tol, 0)
		if relErr := rec.Sub(a).FrobNorm() / a.FrobNorm(); relErr > 100*tol {
			t.Fatalf("tol %g: error %g", tol, relErr)
		}
	}
}

func TestACASmoothKernelBlock(t *testing.T) {
	// The well-separated kernel-block case ACA is designed for: entries
	// 1/(3 + x_i - y_j) over two separated 1-D clusters.
	m, n := 50, 45
	entry := func(i, j int) float64 {
		return 1 / (3 + float64(i)/float64(m) - float64(j)/float64(n))
	}
	u, v := ACA(m, n, entry, 1e-10, 0)
	if u.Cols > 15 {
		t.Fatalf("smooth block needed rank %d", u.Cols)
	}
	rec := Mul(u, v.T())
	var num, den float64
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			d := rec.At(i, j) - entry(i, j)
			num += d * d
			den += entry(i, j) * entry(i, j)
		}
	}
	if math.Sqrt(num/den) > 1e-8 {
		t.Fatalf("smooth block error %g", math.Sqrt(num/den))
	}
}

func TestACAMaxRankCap(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	a := randDense(rng, 20, 20)
	u, _ := ACA(20, 20, a.At, 0, 5)
	if u.Cols != 5 {
		t.Fatalf("rank cap ignored: %d", u.Cols)
	}
}

func TestACAZeroMatrix(t *testing.T) {
	u, v := ACA(10, 8, func(i, j int) float64 { return 0 }, 1e-10, 0)
	if u.Cols != 0 || v.Cols != 0 {
		t.Fatalf("zero matrix got rank %d", u.Cols)
	}
}

// TestACAZeroBlockFailure demonstrates the heuristic failure mode the paper
// cites (§VII: "ACA may fail for general kernel functions and complex
// geometries"): a block-diagonal-like matrix whose second block is
// invisible from the crosses the pivoting walks first. With the row budget
// capped as a real implementation would (maxRank), the untouched block's
// mass is simply missing from the approximation, while the SVD-quality
// rank-capped error would be near zero.
func TestACAZeroBlockFailure(t *testing.T) {
	// A = [B 0; 0 tiny*C] with rank(B)=2: partial pivoting starting in the
	// B rows keeps finding structure there and stops when the residual
	// *it can see* underflows, never visiting the tiny block.
	rng := rand.New(rand.NewSource(73))
	n := 40
	b := randLowRank(rng, 20, 20, 2)
	c := randLowRank(rng, 20, 20, 2)
	a := NewDense(n, n)
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			a.Set(i, j, b.At(i, j))
			a.Set(20+i, 20+j, 1e-4*c.At(i, j))
		}
	}
	u, v := ACA(n, n, a.At, 1e-8, 0)
	rec := Mul(u, v.T())
	relErr := rec.Sub(a).FrobNorm() / a.FrobNorm()
	// The optimal rank-4 approximation is exact; ACA at tol 1e-8 should
	// have recovered everything if it were reliable. If this ever starts
	// passing with tiny error, the demonstration matrix needs sharpening —
	// assert the documented failure explicitly.
	if u.Cols >= 4 && relErr < 1e-8 {
		t.Skip("ACA happened to find the hidden block on this seed; failure demo not triggered")
	}
	if relErr < 1e-8 {
		t.Fatalf("expected visible ACA deficiency, got error %g at rank %d", relErr, u.Cols)
	}
}

func TestACAOracleCallCount(t *testing.T) {
	// ACA must stay O((m+n)·r) oracle calls — never touch all m*n entries.
	m, n := 200, 180
	calls := 0
	entry := func(i, j int) float64 {
		calls++
		return 1 / (4 + float64(i)/float64(m) + float64(j)/float64(n))
	}
	u, _ := ACA(m, n, entry, 1e-8, 0)
	budget := (m + n) * (u.Cols + 2)
	if calls > budget {
		t.Fatalf("oracle called %d times for rank %d (budget %d)", calls, u.Cols, budget)
	}
}
