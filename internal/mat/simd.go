package mat

import "math"

// SIMD dispatch layer.
//
// On amd64 with OS-enabled AVX, the hot vector primitives (dot, dot2, axpy,
// axpy2, axpy4) and the fused-kernel chunk helpers route their 4-aligned body
// through hand-written AVX assembly. The assembly is constructed to be
// bitwise-identical to the scalar loops, not merely close:
//
//   - dot keeps ONE 4-lane ymm accumulator whose lanes are exactly the four
//     scalar accumulators s0..s3, reduced as (s0+s1)+(s2+s3) via per-half
//     horizontal adds — the same rounding sequence as the scalar code. (This
//     also means the reduction chain, not the multiplies, bounds dot's
//     speedup; axpy-shaped loops with independent elements get the full
//     vector width.)
//   - the axpy family applies the same per-element multiply/add sequence with
//     separate VMULPD/VADDPD (never FMA), so each element sees the identical
//     roundings in the identical order.
//   - RecipSqrtChunk/RecipCubeChunk use VSQRTPD and VDIVPD, which IEEE-754
//     requires to be correctly rounded exactly like math.Sqrt and scalar
//     division.
//
// Scalar tails (length % 4) always run in Go, after the assembly body for
// dots (matching the scalar tail order) and element-wise for axpys.
//
// simdEnabled may be toggled by SetSIMD for A/B tests and micro-benchmarks;
// it is a plain bool read on every dispatch, so toggle it only from a single
// goroutine with no products in flight.
var simdEnabled = hasAVX()

// Dispatch thresholds: below these lengths the call overhead of the assembly
// body outstrips its gain. axpy-shaped loops win at the full vector width so
// they dispatch early; dot-shaped loops are reduction-latency-bound and need
// longer rows to amortize the extra reduce.
const (
	simdMinAxpy = 8
	simdMinDot  = 12
)

// SIMDAvailable reports whether the running CPU and OS support the AVX path.
func SIMDAvailable() bool { return hasAVX() }

// SIMDEnabled reports whether the AVX path is currently selected.
func SIMDEnabled() bool { return simdEnabled }

// SetSIMD enables or disables the AVX path (no-op enable when unavailable)
// and returns the previous setting. Not safe to call concurrently with
// running products; intended for equivalence tests and micro-benchmarks.
func SetSIMD(on bool) bool {
	prev := simdEnabled
	simdEnabled = on && hasAVX()
	return prev
}

// DotAcc4 accumulates acc[l] += Σ_{t ≡ l (mod 4)} k[t]*v[t] for the four
// dot-accumulator lanes — the chunk-resident core of the fused BlockVecAdd.
// len(v) must be a multiple of 4 and len(k) >= len(v); lane l sees its
// partial sums in index order, exactly as the scalar 4-accumulator loop.
func DotAcc4(k, v []float64, acc *[4]float64) {
	if simdEnabled && len(v) >= simdMinDot {
		dotAcc4Body(k[:len(v)], v, acc)
		return
	}
	k = k[:len(v)]
	for t := 0; t+4 <= len(v); t += 4 {
		acc[0] += k[t] * v[t]
		acc[1] += k[t+1] * v[t+1]
		acc[2] += k[t+2] * v[t+2]
		acc[3] += k[t+3] * v[t+3]
	}
}

// AxpyChunk computes y[i] += a*x[i] over len(x) elements — the exported form
// of axpy for the fused kernel primitives.
func AxpyChunk(y []float64, a float64, x []float64) { axpy(y, a, x) }

// Axpy2Chunk computes y[i] = (y[i] + a0*x0[i]) + a1*x1[i].
func Axpy2Chunk(y []float64, a0 float64, x0 []float64, a1 float64, x1 []float64) {
	axpy2(y, a0, x0, a1, x1)
}

// Axpy4Chunk fuses four sequential axpy passes with one rounding per add.
func Axpy4Chunk(y []float64, a0 float64, x0 []float64, a1 float64, x1 []float64, a2 float64, x2 []float64, a3 float64, x3 []float64) {
	axpy4(y, a0, x0, a1, x1, a2, x2, a3, x3)
}

// RecipSqrtChunk fills dst[t] = 1/sqrt(r2[t]), with 0 where r2[t] == 0 — the
// Coulomb kernel's chunk evaluation. Both the AVX body (VSQRTPD + VDIVPD,
// correctly rounded by IEEE-754) and the scalar loop reproduce
// math.Sqrt-then-divide bitwise.
func RecipSqrtChunk(dst, r2 []float64) {
	dst = dst[:len(r2)]
	t := 0
	if simdEnabled && len(r2) >= simdMinAxpy {
		u := len(r2) &^ 3
		recipSqrtBody(dst[:u], r2[:u])
		t = u
	}
	for ; t < len(r2); t++ {
		r := math.Sqrt(r2[t])
		if r == 0 {
			dst[t] = 0
			continue
		}
		dst[t] = 1 / r
	}
}

// RecipCubeChunk fills dst[t] = 1/r³ with r = sqrt(r2[t]), 0 where r2[t] == 0
// — the CoulombCubed chunk evaluation, multiplying r*r then *r before the
// divide exactly as the scalar code.
func RecipCubeChunk(dst, r2 []float64) {
	dst = dst[:len(r2)]
	t := 0
	if simdEnabled && len(r2) >= simdMinAxpy {
		u := len(r2) &^ 3
		recipCubeBody(dst[:u], r2[:u])
		t = u
	}
	for ; t < len(r2); t++ {
		r := math.Sqrt(r2[t])
		if r == 0 {
			dst[t] = 0
			continue
		}
		dst[t] = 1 / (r * r * r)
	}
}

// ---- FastMath (FMA) variants ----
//
// The FMA forms contract each multiply-add to one rounding via math.FMA
// (hardware-fused on amd64). They are NOT bitwise-compatible with the
// default path — core.Config.FastMath opts into them explicitly, and the
// equivalence guarantees between storage modes only hold with FastMath off.

// DotAcc4FMA is DotAcc4 with fused multiply-adds.
func DotAcc4FMA(k, v []float64, acc *[4]float64) {
	k = k[:len(v)]
	for t := 0; t+4 <= len(v); t += 4 {
		acc[0] = math.FMA(k[t], v[t], acc[0])
		acc[1] = math.FMA(k[t+1], v[t+1], acc[1])
		acc[2] = math.FMA(k[t+2], v[t+2], acc[2])
		acc[3] = math.FMA(k[t+3], v[t+3], acc[3])
	}
}

// AxpyChunkFMA is AxpyChunk with fused multiply-adds.
func AxpyChunkFMA(y []float64, a float64, x []float64) {
	y = y[:len(x)]
	for i, xv := range x {
		y[i] = math.FMA(a, xv, y[i])
	}
}

// Axpy2ChunkFMA fuses two axpy passes with one rounding per pass.
func Axpy2ChunkFMA(y []float64, a0 float64, x0 []float64, a1 float64, x1 []float64) {
	y = y[:len(x0)]
	x1 = x1[:len(x0)]
	for i := range x0 {
		y[i] = math.FMA(a1, x1[i], math.FMA(a0, x0[i], y[i]))
	}
}

// Axpy4ChunkFMA fuses four axpy passes with one rounding per pass.
func Axpy4ChunkFMA(y []float64, a0 float64, x0 []float64, a1 float64, x1 []float64, a2 float64, x2 []float64, a3 float64, x3 []float64) {
	y = y[:len(x0)]
	x1 = x1[:len(x0)]
	x2 = x2[:len(x0)]
	x3 = x3[:len(x0)]
	for i := range x0 {
		y[i] = math.FMA(a3, x3[i], math.FMA(a2, x2[i], math.FMA(a1, x1[i], math.FMA(a0, x0[i], y[i]))))
	}
}

// DotStrideFMA is DotStride with fused multiply-adds (one accumulator: the
// FMA path trades the 4-lane grouping for maximal contraction).
func DotStrideFMA(row, b []float64, j, n int) float64 {
	var s float64
	for k, rk := range row {
		s = math.FMA(rk, b[k*n+j], s)
	}
	return s
}
