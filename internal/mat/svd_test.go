package mat

import (
	"math"
	"math/rand"
	"testing"
)

func TestSVDReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	for trial := 0; trial < 8; trial++ {
		m := 2 + rng.Intn(25)
		n := 2 + rng.Intn(25)
		a := randDense(rng, m, n)
		s := NewSVD(a)
		k := min(m, n)
		if s.U.Cols != k || s.V.Cols != k || len(s.S) != k {
			t.Fatalf("thin shapes wrong: U %dx%d V %dx%d S %d", s.U.Rows, s.U.Cols, s.V.Rows, s.V.Cols, len(s.S))
		}
		// U diag(S) Vᵀ == A.
		us := s.U.Clone()
		for j := 0; j < k; j++ {
			for i := 0; i < m; i++ {
				us.Set(i, j, us.At(i, j)*s.S[j])
			}
		}
		rec := Mul(us, s.V.T())
		if !rec.Equal(a, 1e-10) {
			t.Fatalf("trial %d (%dx%d): SVD reconstruction error %g", trial, m, n, rec.Sub(a).MaxAbs())
		}
		// Singular values sorted, non-negative.
		for j := 1; j < k; j++ {
			if s.S[j] > s.S[j-1]+1e-12 || s.S[j] < 0 {
				t.Fatalf("singular values unsorted or negative: %v", s.S)
			}
		}
	}
}

func TestSVDOrthogonality(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	a := randDense(rng, 15, 9)
	s := NewSVD(a)
	if !Mul(s.U.T(), s.U).Equal(Eye(9), 1e-10) {
		t.Fatal("U columns not orthonormal")
	}
	if !Mul(s.V.T(), s.V).Equal(Eye(9), 1e-10) {
		t.Fatal("V columns not orthonormal")
	}
}

func TestSVDKnownValues(t *testing.T) {
	// diag(3, 2, 1) has singular values 3, 2, 1.
	a := NewDense(3, 3)
	a.Set(0, 0, 3)
	a.Set(1, 1, -2) // sign must not matter
	a.Set(2, 2, 1)
	s := NewSVD(a)
	want := []float64{3, 2, 1}
	for i, w := range want {
		if math.Abs(s.S[i]-w) > 1e-12 {
			t.Fatalf("S[%d]=%g want %g", i, s.S[i], w)
		}
	}
}

func TestSVDRankAndNorm2(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	a := randLowRank(rng, 20, 20, 4)
	s := NewSVD(a)
	if got := s.Rank(1e-10); got != 4 {
		t.Fatalf("Rank = %d want 4", got)
	}
	if s.Norm2() != s.S[0] {
		t.Fatal("Norm2 != largest singular value")
	}
	if NewDense(0, 3).Norm2() != 0 {
		t.Fatal("Norm2 of empty must be 0")
	}
}

func TestPInvProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	a := randDense(rng, 12, 7) // full column rank with probability 1
	p := NewSVD(a).PInv(0)
	// A⁺ A = I (n-by-n) for full column rank.
	if !Mul(p, a).Equal(Eye(7), 1e-9) {
		t.Fatal("pinv: A⁺A != I")
	}
	// Moore–Penrose: A A⁺ A = A.
	if !Mul(a, Mul(p, a)).Equal(a, 1e-9) {
		t.Fatal("pinv: A A⁺ A != A")
	}
}

func TestPInvRankDeficient(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	a := randLowRank(rng, 10, 10, 3)
	p := NewSVD(a).PInv(1e-10)
	if !Mul(a, Mul(p, a)).Equal(a, 1e-8) {
		t.Fatal("rank-deficient pinv: A A⁺ A != A")
	}
	if !Mul(p, Mul(a, p)).Equal(p, 1e-8) {
		t.Fatal("rank-deficient pinv: A⁺ A A⁺ != A⁺")
	}
}

func TestSVDWideMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	a := randDense(rng, 4, 17)
	s := NewSVD(a)
	us := s.U.Clone()
	for j := 0; j < 4; j++ {
		for i := 0; i < 4; i++ {
			us.Set(i, j, us.At(i, j)*s.S[j])
		}
	}
	if !Mul(us, s.V.T()).Equal(a, 1e-10) {
		t.Fatal("wide-matrix SVD reconstruction failed")
	}
}
