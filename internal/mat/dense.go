// Package mat provides the dense linear-algebra substrate used by the
// hierarchical-matrix construction: a row-major dense matrix type, blocked
// matrix multiplication, Householder QR, column-pivoted (rank-revealing) QR,
// row interpolative decomposition, one-sided Jacobi SVD, Cholesky, and
// triangular solves.
//
// The package is self-contained (standard library only) and tuned for the
// small-to-medium matrices that arise per tree node (tens to a few thousand
// rows): loops are cache-blocked and bounds checks hoisted. On amd64 the hot
// vector primitives dispatch to hand-written AVX assembly that preserves the
// scalar rounding order bitwise (see simd.go); everywhere else, and under
// the noasm build tag, pure Go runs. No unsafe code is used.
package mat

import (
	"fmt"
	"math"
)

// Dense is a row-major dense matrix. The zero value is an empty 0x0 matrix.
//
// Data is laid out so that element (i, j) lives at Data[i*Cols+j]. The
// backing slice is exactly Rows*Cols long; there are no strided views, which
// keeps aliasing rules trivial.
type Dense struct {
	Rows, Cols int
	Data       []float64
}

// NewDense returns a zeroed r-by-c matrix.
func NewDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", r, c))
	}
	return &Dense{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// NewDenseData wraps an existing backing slice as an r-by-c matrix.
// The slice is used directly, not copied; len(data) must be r*c.
func NewDenseData(r, c int, data []float64) *Dense {
	if len(data) != r*c {
		panic(fmt.Sprintf("mat: data length %d does not match %dx%d", len(data), r, c))
	}
	return &Dense{Rows: r, Cols: c, Data: data}
}

// At returns the element at row i, column j.
func (a *Dense) At(i, j int) float64 { return a.Data[i*a.Cols+j] }

// Set assigns v to the element at row i, column j.
func (a *Dense) Set(i, j int, v float64) { a.Data[i*a.Cols+j] = v }

// Row returns the slice backing row i (aliasing the matrix).
func (a *Dense) Row(i int) []float64 { return a.Data[i*a.Cols : (i+1)*a.Cols] }

// Clone returns a deep copy of a.
func (a *Dense) Clone() *Dense {
	b := NewDense(a.Rows, a.Cols)
	copy(b.Data, a.Data)
	return b
}

// Reset zeroes every element in place.
func (a *Dense) Reset() {
	for i := range a.Data {
		a.Data[i] = 0
	}
}

// Reshape reuses a's backing storage for an r-by-c matrix, growing the
// backing slice only when needed, and returns a. The element values after a
// reshape are unspecified; callers that need zeros should call Reset.
func (a *Dense) Reshape(r, c int) *Dense {
	n := r * c
	if cap(a.Data) < n {
		a.Data = make([]float64, n)
	}
	a.Data = a.Data[:n]
	a.Rows, a.Cols = r, c
	return a
}

// T returns a newly allocated transpose of a.
func (a *Dense) T() *Dense {
	t := NewDense(a.Cols, a.Rows)
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		for j, v := range row {
			t.Data[j*t.Cols+i] = v
		}
	}
	return t
}

// SubCopy returns a copy of the rectangle [r0, r1) x [c0, c1).
func (a *Dense) SubCopy(r0, r1, c0, c1 int) *Dense {
	if r0 < 0 || r1 > a.Rows || c0 < 0 || c1 > a.Cols || r0 > r1 || c0 > c1 {
		panic(fmt.Sprintf("mat: sub [%d:%d, %d:%d) out of range for %dx%d", r0, r1, c0, c1, a.Rows, a.Cols))
	}
	s := NewDense(r1-r0, c1-c0)
	for i := r0; i < r1; i++ {
		copy(s.Row(i-r0), a.Row(i)[c0:c1])
	}
	return s
}

// PickRows returns a copy of a's rows selected by idx, in order.
func (a *Dense) PickRows(idx []int) *Dense {
	p := NewDense(len(idx), a.Cols)
	for k, i := range idx {
		copy(p.Row(k), a.Row(i))
	}
	return p
}

// Scale multiplies every element by s in place and returns a.
func (a *Dense) Scale(s float64) *Dense {
	for i := range a.Data {
		a.Data[i] *= s
	}
	return a
}

// Add accumulates b into a element-wise in place and returns a.
func (a *Dense) Add(b *Dense) *Dense {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: add shape mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	for i, v := range b.Data {
		a.Data[i] += v
	}
	return a
}

// Sub subtracts b from a element-wise in place and returns a.
func (a *Dense) Sub(b *Dense) *Dense {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("mat: sub shape mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	for i, v := range b.Data {
		a.Data[i] -= v
	}
	return a
}

// Eye returns the n-by-n identity matrix.
func Eye(n int) *Dense {
	e := NewDense(n, n)
	for i := 0; i < n; i++ {
		e.Data[i*n+i] = 1
	}
	return e
}

// FrobNorm returns the Frobenius norm of a, guarding against overflow by
// scaling with the largest magnitude entry.
func (a *Dense) FrobNorm() float64 {
	maxAbs := 0.0
	for _, v := range a.Data {
		if w := math.Abs(v); w > maxAbs {
			maxAbs = w
		}
	}
	if maxAbs == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range a.Data {
		w := v / maxAbs
		sum += w * w
	}
	return maxAbs * math.Sqrt(sum)
}

// MaxAbs returns the largest absolute entry of a.
func (a *Dense) MaxAbs() float64 {
	m := 0.0
	for _, v := range a.Data {
		if w := math.Abs(v); w > m {
			m = w
		}
	}
	return m
}

// Equal reports whether a and b have the same shape and every pair of
// entries differs by at most tol.
func (a *Dense) Equal(b *Dense, tol float64) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i, v := range a.Data {
		if math.Abs(v-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders small matrices for debugging; large matrices are summarized.
func (a *Dense) String() string {
	if a.Rows*a.Cols > 100 {
		return fmt.Sprintf("Dense{%dx%d, |.|F=%.3g}", a.Rows, a.Cols, a.FrobNorm())
	}
	s := fmt.Sprintf("Dense %dx%d\n", a.Rows, a.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			s += fmt.Sprintf("% .4e ", a.At(i, j))
		}
		s += "\n"
	}
	return s
}

// mulBlock is the cache-block edge for Mul.
const mulBlock = 64

// Mul returns the product a*b as a new matrix.
//
// The kernel is the classic ikj loop order with row reuse: for each row of a
// it accumulates scaled rows of b, which keeps all inner accesses contiguous.
func Mul(a, b *Dense) *Dense {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("mat: mul shape mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := NewDense(a.Rows, b.Cols)
	MulTo(c, a, b)
	return c
}

// MulTo computes c = a*b into an existing matrix, which must have the right
// shape. c must not alias a or b.
func MulTo(c, a, b *Dense) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic(fmt.Sprintf("mat: mulTo shape mismatch c=%dx%d a=%dx%d b=%dx%d",
			c.Rows, c.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c.Reset()
	n := b.Cols
	for k0 := 0; k0 < a.Cols; k0 += mulBlock {
		k1 := min(k0+mulBlock, a.Cols)
		for i := 0; i < a.Rows; i++ {
			arow := a.Row(i)
			crow := c.Row(i)
			for k := k0; k < k1; k++ {
				aik := arow[k]
				if aik == 0 {
					continue
				}
				brow := b.Data[k*n : k*n+n]
				for j, v := range brow {
					crow[j] += aik * v
				}
			}
		}
	}
}

// MulVec returns a*x as a new vector.
func MulVec(a *Dense, x []float64) []float64 {
	y := make([]float64, a.Rows)
	MulVecTo(y, a, x)
	return y
}

// MulVecTo computes y = a*x. y must have length a.Rows and x length a.Cols;
// y must not alias x.
func MulVecTo(y []float64, a *Dense, x []float64) {
	if len(x) != a.Cols || len(y) != a.Rows {
		panic(fmt.Sprintf("mat: mulvec shape mismatch %dx%d * %d -> %d", a.Rows, a.Cols, len(x), len(y)))
	}
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
}

// MulVecAdd computes y += a*x with the same shape rules as MulVecTo.
func MulVecAdd(y []float64, a *Dense, x []float64) {
	if len(x) != a.Cols || len(y) != a.Rows {
		panic(fmt.Sprintf("mat: mulvecadd shape mismatch %dx%d * %d -> %d", a.Rows, a.Cols, len(x), len(y)))
	}
	i := 0
	for ; i+2 <= a.Rows; i += 2 {
		s0, s1 := dot2(a.Row(i), a.Row(i+1), x)
		y[i] += s0
		y[i+1] += s1
	}
	if i < a.Rows {
		y[i] += dot(a.Row(i), x)
	}
}

// dot is the shared row-dot kernel: four independent accumulators break the
// FMA dependency chain (the naive single-accumulator loop serializes on the
// ~4-cycle add latency), combined as (s0+s1)+(s2+s3) with a sequential tail.
// Every matrix product in this package — vector, strided-batch, serial or
// parallel — reduces through this exact grouping, which is what makes their
// results mutually bitwise-identical.
func dot(row, x []float64) float64 {
	x = x[:len(row)] // bounds-check elimination for the unrolled loads
	if simdEnabled && len(row) >= simdMinDot {
		u := len(row) &^ 3
		s := dotBody(row[:u], x[:u])
		for j := u; j < len(row); j++ {
			s += row[j] * x[j]
		}
		return s
	}
	var s0, s1, s2, s3 float64
	j := 0
	for ; j+4 <= len(row); j += 4 {
		s0 += row[j] * x[j]
		s1 += row[j+1] * x[j+1]
		s2 += row[j+2] * x[j+2]
		s3 += row[j+3] * x[j+3]
	}
	s := (s0 + s1) + (s2 + s3)
	for ; j < len(row); j++ {
		s += row[j] * x[j]
	}
	return s
}

// dot2 computes dot(r0, x) and dot(r1, x) in one pass, loading x once for
// both rows. Each row keeps its own four accumulators with dot's exact
// grouping, so the results are bitwise-identical to two dot calls.
func dot2(r0, r1, x []float64) (float64, float64) {
	x = x[:len(r0)]
	r1 = r1[:len(r0)]
	if simdEnabled && len(r0) >= simdMinDot {
		u := len(r0) &^ 3
		sa, sb := dot2Body(r0[:u], r1[:u], x[:u])
		for j := u; j < len(r0); j++ {
			sa += r0[j] * x[j]
			sb += r1[j] * x[j]
		}
		return sa, sb
	}
	var a0, a1, a2, a3 float64
	var b0, b1, b2, b3 float64
	j := 0
	for ; j+4 <= len(r0); j += 4 {
		x0, x1, x2, x3 := x[j], x[j+1], x[j+2], x[j+3]
		a0 += r0[j] * x0
		a1 += r0[j+1] * x1
		a2 += r0[j+2] * x2
		a3 += r0[j+3] * x3
		b0 += r1[j] * x0
		b1 += r1[j+1] * x1
		b2 += r1[j+2] * x2
		b3 += r1[j+3] * x3
	}
	sa := (a0 + a1) + (a2 + a3)
	sb := (b0 + b1) + (b2 + b3)
	for ; j < len(r0); j++ {
		sa += r0[j] * x[j]
		sb += r1[j] * x[j]
	}
	return sa, sb
}

// dotStride is dot against the virtual vector x[k] = b[k*n+j] (column j of
// a row-major matrix laid out in b). The accumulator grouping matches dot
// exactly, so batch products reproduce the vector products digit for digit.
func dotStride(row, b []float64, j, n int) float64 {
	var s0, s1, s2, s3 float64
	k := 0
	for ; k+4 <= len(row); k += 4 {
		p := k*n + j
		s0 += row[k] * b[p]
		s1 += row[k+1] * b[p+n]
		s2 += row[k+2] * b[p+2*n]
		s3 += row[k+3] * b[p+3*n]
	}
	s := (s0 + s1) + (s2 + s3)
	for ; k < len(row); k++ {
		s += row[k] * b[k*n+j]
	}
	return s
}

// DotStride is the exported form of dotStride for fused kernels outside
// this package (internal/kernel's evaluate-and-apply primitives) that must
// reproduce the batch summation order exactly.
func DotStride(row, b []float64, j, n int) float64 { return dotStride(row, b, j, n) }

// axpy computes y[i] += a*x[i], unrolled. Each output element receives
// exactly one add, so unrolling preserves per-element accumulation order.
func axpy(y []float64, a float64, x []float64) {
	y = y[:len(x)] // bounds-check elimination for the unrolled stores
	if simdEnabled && len(x) >= simdMinAxpy {
		u := len(x) &^ 3
		axpyBody(y[:u], x[:u], a)
		for i := u; i < len(x); i++ {
			y[i] += a * x[i]
		}
		return
	}
	i := 0
	for ; i+4 <= len(x); i += 4 {
		y[i] += a * x[i]
		y[i+1] += a * x[i+1]
		y[i+2] += a * x[i+2]
		y[i+3] += a * x[i+3]
	}
	for ; i < len(x); i++ {
		y[i] += a * x[i]
	}
}

// axpy2 computes y[i] = (y[i] + a0*x0[i]) + a1*x1[i]: two sequential
// per-element adds fused into one pass, bitwise-identical to axpy(y, a0, x0)
// followed by axpy(y, a1, x1) but with half the y stores and reloads.
func axpy2(y []float64, a0 float64, x0 []float64, a1 float64, x1 []float64) {
	y = y[:len(x0)]
	x1 = x1[:len(x0)]
	if simdEnabled && len(x0) >= simdMinAxpy {
		u := len(x0) &^ 3
		axpy2Body(y[:u], x0[:u], x1[:u], a0, a1)
		for i := u; i < len(x0); i++ {
			y[i] = (y[i] + a0*x0[i]) + a1*x1[i]
		}
		return
	}
	i := 0
	for ; i+4 <= len(x0); i += 4 {
		y[i] = (y[i] + a0*x0[i]) + a1*x1[i]
		y[i+1] = (y[i+1] + a0*x0[i+1]) + a1*x1[i+1]
		y[i+2] = (y[i+2] + a0*x0[i+2]) + a1*x1[i+2]
		y[i+3] = (y[i+3] + a0*x0[i+3]) + a1*x1[i+3]
	}
	for ; i < len(x0); i++ {
		y[i] = (y[i] + a0*x0[i]) + a1*x1[i]
	}
}

// axpy4 fuses four sequential axpy passes: per element the adds apply in
// row order with one rounding each, bitwise-identical to four axpy calls,
// with a quarter of the y stores and reloads.
func axpy4(y []float64, a0 float64, x0 []float64, a1 float64, x1 []float64, a2 float64, x2 []float64, a3 float64, x3 []float64) {
	y = y[:len(x0)]
	x1 = x1[:len(x0)]
	x2 = x2[:len(x0)]
	x3 = x3[:len(x0)]
	if simdEnabled && len(x0) >= simdMinAxpy {
		u := len(x0) &^ 3
		axpy4Body(y[:u], x0[:u], x1[:u], x2[:u], x3[:u], a0, a1, a2, a3)
		for i := u; i < len(x0); i++ {
			y[i] = (((y[i] + a0*x0[i]) + a1*x1[i]) + a2*x2[i]) + a3*x3[i]
		}
		return
	}
	for i := range x0 {
		y[i] = (((y[i] + a0*x0[i]) + a1*x1[i]) + a2*x2[i]) + a3*x3[i]
	}
}

// MulVecAddRange computes y += a[r0:r1, :] * x for the contiguous row block
// [r0, r1) of a. y must have length r1-r0 and x length a.Cols. It lets
// callers apply one child's transfer block without materializing a
// submatrix.
func MulVecAddRange(y []float64, a *Dense, r0, r1 int, x []float64) {
	if len(x) != a.Cols || len(y) != r1-r0 || r0 < 0 || r1 > a.Rows {
		panic(fmt.Sprintf("mat: mulvecaddrange shape mismatch rows [%d,%d) of %dx%d, x %d, y %d",
			r0, r1, a.Rows, a.Cols, len(x), len(y)))
	}
	for i := r0; i < r1; i++ {
		y[i-r0] += dot(a.Row(i), x)
	}
}

// MulTVecAddRange computes y += a[r0:r1, :]ᵀ * x for the contiguous row
// block [r0, r1) of a. y must have length a.Cols and x length r1-r0.
func MulTVecAddRange(y []float64, a *Dense, r0, r1 int, x []float64) {
	if len(y) != a.Cols || len(x) != r1-r0 || r0 < 0 || r1 > a.Rows {
		panic(fmt.Sprintf("mat: multvecaddrange shape mismatch rows [%d,%d) of %dx%d, x %d, y %d",
			r0, r1, a.Rows, a.Cols, len(x), len(y)))
	}
	for i := r0; i < r1; i++ {
		xi := x[i-r0]
		if xi == 0 {
			continue
		}
		axpy(y, xi, a.Row(i))
	}
}

// MulTVecAdd computes y += aᵀ*x, i.e. y[j] += Σ_i a[i,j] x[i], without
// materializing the transpose. y must have length a.Cols, x length a.Rows.
func MulTVecAdd(y []float64, a *Dense, x []float64) {
	if len(x) != a.Rows || len(y) != a.Cols {
		panic(fmt.Sprintf("mat: multvecadd shape mismatch %dx%d^T * %d -> %d", a.Rows, a.Cols, len(x), len(y)))
	}
	i := 0
	for ; i+4 <= a.Rows; i += 4 {
		x0, x1, x2, x3 := x[i], x[i+1], x[i+2], x[i+3]
		if x0 != 0 && x1 != 0 && x2 != 0 && x3 != 0 {
			axpy4(y, x0, a.Row(i), x1, a.Row(i+1), x2, a.Row(i+2), x3, a.Row(i+3))
			continue
		}
		axpyPair(y, a, i, x0, x1)
		axpyPair(y, a, i+2, x2, x3)
	}
	for ; i+2 <= a.Rows; i += 2 {
		axpyPair(y, a, i, x[i], x[i+1])
	}
	if i < a.Rows && x[i] != 0 {
		axpy(y, x[i], a.Row(i))
	}
}

// axpyPair applies rows i and i+1 of a scaled by x0 and x1, preserving the
// per-row zero skip of the seed kernel.
func axpyPair(y []float64, a *Dense, i int, x0, x1 float64) {
	switch {
	case x0 == 0 && x1 == 0:
	case x0 == 0:
		axpy(y, x1, a.Row(i+1))
	case x1 == 0:
		axpy(y, x0, a.Row(i))
	default:
		axpy2(y, x0, a.Row(i), x1, a.Row(i+1))
	}
}

// MulTVecAddDot computes y += aᵀ*x like MulTVecAdd, but with MulVecAdd's
// summation order: each output element accumulates a 4-accumulator strided
// dot over a's rows (dot's exact grouping), so the result is
// bitwise-identical to MulVecAdd(y, aT, x) on the materialized transpose aT.
// The hybrid storage mode uses it to apply a stored block transposed while
// reproducing the on-the-fly path's row-dot order digit for digit.
func MulTVecAddDot(y []float64, a *Dense, x []float64) {
	if len(x) != a.Rows || len(y) != a.Cols {
		panic(fmt.Sprintf("mat: multvecadddot shape mismatch %dx%d^T * %d -> %d", a.Rows, a.Cols, len(x), len(y)))
	}
	for c := range y {
		y[c] += dotStride(x, a.Data, c, a.Cols)
	}
}

// MulVecAddSeq computes y += a*x like MulVecAdd, but with MulTVecAdd's
// summation order: each output element accumulates strictly sequentially
// over the columns in order, skipping columns where x is zero — exactly the
// per-element operation sequence of MulTVecAdd(y, aT, x) on the materialized
// transpose aT (axpy4/axpy2 chains are sequential per element, and axpyPair
// skips zero multipliers). The hybrid storage mode uses it in the transpose
// sweep when the stored block has the opposite orientation.
func MulVecAddSeq(y []float64, a *Dense, x []float64) {
	if len(x) != a.Cols || len(y) != a.Rows {
		panic(fmt.Sprintf("mat: mulvecaddseq shape mismatch %dx%d * %d -> %d", a.Rows, a.Cols, len(x), len(y)))
	}
	for i := 0; i < a.Rows; i++ {
		row := a.Row(i)
		s := y[i]
		for j, v := range row {
			if x[j] != 0 {
				s += x[j] * v
			}
		}
		y[i] = s
	}
}

// MulTAddToDot computes c += aᵀ*b like MulTAddTo, but with MulAddTo's
// summation order: each output element accumulates a doubly-strided
// 4-accumulator dot (dotStride's exact grouping), bitwise-identical to
// MulAddTo(c, aT, b) on the materialized transpose aT. The hybrid storage
// mode uses it for transposed stored blocks on the batched sweep.
func MulTAddToDot(c, a, b *Dense) {
	if a.Rows != b.Rows || c.Rows != a.Cols || c.Cols != b.Cols {
		panic(fmt.Sprintf("mat: multaddtodot shape mismatch c=%dx%d a=%dx%d b=%dx%d",
			c.Rows, c.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	n := b.Cols
	for i := 0; i < a.Cols; i++ {
		crow := c.Row(i)
		for j := 0; j < n; j++ {
			crow[j] += dotStride2(a.Data, i, a.Cols, b.Data, j, n, a.Rows)
		}
	}
}

// dotStride2 is dot over two strided virtual vectors: Σ_k a[k*na+ja] *
// b[k*nb+jb] for k in [0, rows), with dot's exact 4-accumulator grouping.
func dotStride2(a []float64, ja, na int, b []float64, jb, nb, rows int) float64 {
	var s0, s1, s2, s3 float64
	k := 0
	for ; k+4 <= rows; k += 4 {
		pa := k*na + ja
		pb := k*nb + jb
		s0 += a[pa] * b[pb]
		s1 += a[pa+na] * b[pb+nb]
		s2 += a[pa+2*na] * b[pb+2*nb]
		s3 += a[pa+3*na] * b[pb+3*nb]
	}
	s := (s0 + s1) + (s2 + s3)
	for ; k < rows; k++ {
		s += a[k*na+ja] * b[k*nb+jb]
	}
	return s
}

// MulAddTo computes c += a*b. Shapes must agree (c is a.Rows x b.Cols); c
// must not alias a or b. Each output element accumulates its dot product in
// a scalar before the single in-place add, mirroring MulVecAdd's summation
// order so that applying a block to k stacked vectors reproduces the k
// vector products digit for digit.
func MulAddTo(c, a, b *Dense) {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		panic(fmt.Sprintf("mat: muladdto shape mismatch c=%dx%d a=%dx%d b=%dx%d",
			c.Rows, c.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	n := b.Cols
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		crow := c.Row(i)
		for j := 0; j < n; j++ {
			crow[j] += dotStride(arow, b.Data, j, n)
		}
	}
}

// MulTAddTo computes c += aᵀ*b without materializing the transpose. c is
// a.Cols x b.Cols and must not alias a or b. Accumulation runs over a's rows
// directly into c, mirroring MulTVecAdd's summation order.
func MulTAddTo(c, a, b *Dense) {
	if a.Rows != b.Rows || c.Rows != a.Cols || c.Cols != b.Cols {
		panic(fmt.Sprintf("mat: multaddto shape mismatch c=%dx%d a=%dx%d b=%dx%d",
			c.Rows, c.Cols, a.Rows, a.Cols, b.Rows, b.Cols))
	}
	n := b.Cols
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		brow := b.Row(i)
		for j, v := range arow {
			if v == 0 {
				continue
			}
			axpy(c.Data[j*n:j*n+n], v, brow)
		}
	}
}

// MulRangeAddTo computes c += a[r0:r1, :]*b for the contiguous row block
// [r0, r1) of a; c is (r1-r0) x b.Cols. It is MulVecAddRange lifted to k
// columns, with the same per-element summation order.
func MulRangeAddTo(c, a *Dense, r0, r1 int, b *Dense) {
	if a.Cols != b.Rows || c.Rows != r1-r0 || c.Cols != b.Cols || r0 < 0 || r1 > a.Rows {
		panic(fmt.Sprintf("mat: mulrangeaddto shape mismatch rows [%d,%d) of %dx%d, b %dx%d, c %dx%d",
			r0, r1, a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	n := b.Cols
	for i := r0; i < r1; i++ {
		arow := a.Row(i)
		crow := c.Row(i - r0)
		for j := 0; j < n; j++ {
			crow[j] += dotStride(arow, b.Data, j, n)
		}
	}
}

// MulTRangeAddTo computes c += a[r0:r1, :]ᵀ*b for the contiguous row block
// [r0, r1) of a; c is a.Cols x b.Cols and b is (r1-r0) x b.Cols. It is
// MulTVecAddRange lifted to k columns.
func MulTRangeAddTo(c, a *Dense, r0, r1 int, b *Dense) {
	if b.Rows != r1-r0 || c.Rows != a.Cols || c.Cols != b.Cols || r0 < 0 || r1 > a.Rows {
		panic(fmt.Sprintf("mat: multrangeaddto shape mismatch rows [%d,%d) of %dx%d, b %dx%d, c %dx%d",
			r0, r1, a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols))
	}
	n := b.Cols
	for i := r0; i < r1; i++ {
		arow := a.Row(i)
		brow := b.Row(i - r0)
		for j, v := range arow {
			if v == 0 {
				continue
			}
			axpy(c.Data[j*n:j*n+n], v, brow)
		}
	}
}

// Dot returns the inner product of x and y.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: dot length mismatch %d vs %d", len(x), len(y)))
	}
	s := 0.0
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x with overflow guarding.
func Norm2(x []float64) float64 {
	maxAbs := 0.0
	for _, v := range x {
		if w := math.Abs(v); w > maxAbs {
			maxAbs = w
		}
	}
	if maxAbs == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range x {
		w := v / maxAbs
		sum += w * w
	}
	return maxAbs * math.Sqrt(sum)
}

// Axpy computes y += alpha*x.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("mat: axpy length mismatch %d vs %d", len(x), len(y)))
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}
