package mat

import (
	"math"
	"math/rand"
	"testing"
)

func TestMulVecAddRange(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	a := randDense(rng, 9, 4)
	x := make([]float64, 4)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	full := MulVec(a, x)
	for _, rg := range [][2]int{{0, 9}, {2, 5}, {4, 4}, {8, 9}} {
		y := make([]float64, rg[1]-rg[0])
		for i := range y {
			y[i] = 1 // verify accumulation semantics
		}
		MulVecAddRange(y, a, rg[0], rg[1], x)
		for i := range y {
			if math.Abs(y[i]-(1+full[rg[0]+i])) > 1e-13 {
				t.Fatalf("range [%d,%d): row %d got %g want %g", rg[0], rg[1], i, y[i], 1+full[rg[0]+i])
			}
		}
	}
}

func TestMulTVecAddRange(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	a := randDense(rng, 9, 4)
	x := make([]float64, 9)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	for _, rg := range [][2]int{{0, 9}, {3, 7}, {5, 5}} {
		y := make([]float64, 4)
		MulTVecAddRange(y, a, rg[0], rg[1], x[rg[0]:rg[1]])
		// Reference: transpose of the sub-block times the sub-vector.
		want := make([]float64, 4)
		for i := rg[0]; i < rg[1]; i++ {
			for j := 0; j < 4; j++ {
				want[j] += a.At(i, j) * x[i]
			}
		}
		for j := range want {
			if math.Abs(y[j]-want[j]) > 1e-13 {
				t.Fatalf("range [%d,%d): col %d got %g want %g", rg[0], rg[1], j, y[j], want[j])
			}
		}
	}
}

func TestRangeShapePanics(t *testing.T) {
	a := NewDense(5, 3)
	for name, fn := range map[string]func(){
		"mulvecaddrange-rows":  func() { MulVecAddRange(make([]float64, 2), a, 0, 3, make([]float64, 3)) },
		"mulvecaddrange-x":     func() { MulVecAddRange(make([]float64, 3), a, 0, 3, make([]float64, 2)) },
		"mulvecaddrange-range": func() { MulVecAddRange(make([]float64, 3), a, 3, 6, make([]float64, 3)) },
		"multvecaddrange-y":    func() { MulTVecAddRange(make([]float64, 2), a, 0, 3, make([]float64, 3)) },
		"multvecaddrange-x":    func() { MulTVecAddRange(make([]float64, 3), a, 0, 3, make([]float64, 4)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
