package mat

import (
	"math"
	"math/rand"
	"testing"
)

func TestQRReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 10; trial++ {
		m := 5 + rng.Intn(40)
		n := 1 + rng.Intn(m)
		a := randDense(rng, m, n)
		qr := NewQR(a)
		q := qr.Q()
		r := qr.R()
		if !Mul(q, r).Equal(a, 1e-11) {
			t.Fatalf("trial %d: QR != A", trial)
		}
		// Orthonormality: QᵀQ = I.
		qtq := Mul(q.T(), q)
		if !qtq.Equal(Eye(n), 1e-12) {
			t.Fatalf("trial %d: Q not orthonormal, err %g", trial, qtq.Sub(Eye(n)).MaxAbs())
		}
		// R upper triangular.
		for i := 0; i < n; i++ {
			for j := 0; j < i; j++ {
				if r.At(i, j) != 0 {
					t.Fatalf("R not upper triangular at (%d,%d)", i, j)
				}
			}
		}
	}
}

func TestQRWideMatrixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for rows < cols")
		}
	}()
	NewQR(NewDense(2, 5))
}

func TestQMulVecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randDense(rng, 12, 5)
	qr := NewQR(a)
	x := make([]float64, 12)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y := append([]float64(nil), x...)
	qr.QTMulVec(y)
	qr.QMulVec(y)
	for i := range x {
		if math.Abs(x[i]-y[i]) > 1e-12 {
			t.Fatalf("Q Qᵀ x != x at %d: %g vs %g", i, x[i], y[i])
		}
	}
	// Norm preservation under Qᵀ.
	z := append([]float64(nil), x...)
	qr.QTMulVec(z)
	if math.Abs(Norm2(z)-Norm2(x)) > 1e-12 {
		t.Fatal("Qᵀ did not preserve norm")
	}
}

func TestSolveLSExact(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	// Square well-conditioned system: solution should be near exact.
	n := 8
	a := Eye(n)
	for i := range a.Data {
		a.Data[i] += 0.1 * rng.NormFloat64()
	}
	want := make([]float64, n)
	for i := range want {
		want[i] = rng.NormFloat64()
	}
	b := MulVec(a, want)
	qr := NewQR(a)
	got := qr.SolveLS(b)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-10 {
			t.Fatalf("SolveLS: x[%d]=%g want %g", i, got[i], want[i])
		}
	}
}

func TestSolveLSOverdetermined(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m, n := 30, 6
	a := randDense(rng, m, n)
	b := make([]float64, m)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := NewQR(a).SolveLS(b)
	// Residual must be orthogonal to the column space: Aᵀ(Ax - b) ≈ 0.
	res := MulVec(a, x)
	for i := range res {
		res[i] -= b[i]
	}
	grad := make([]float64, n)
	MulTVecAdd(grad, a, res)
	if Norm2(grad) > 1e-10 {
		t.Fatalf("normal equations residual %g", Norm2(grad))
	}
}

func TestQRZeroColumn(t *testing.T) {
	// A zero column must not crash (tau = 0 identity reflector path).
	a := NewDense(6, 3)
	for i := 0; i < 6; i++ {
		a.Set(i, 0, float64(i+1))
		a.Set(i, 2, float64(2*i+1))
	}
	qr := NewQR(a)
	if !Mul(qr.Q(), qr.R()).Equal(a, 1e-12) {
		t.Fatal("QR of matrix with zero column failed to reconstruct")
	}
}
