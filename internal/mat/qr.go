package mat

import (
	"fmt"
	"math"
)

// QR holds a Householder QR factorization A = Q*R of an m-by-n matrix with
// m >= n. The factors are stored compactly: R in the upper triangle of Fac,
// the Householder vectors below the diagonal, and the scalar coefficients in
// Tau.
type QR struct {
	Fac *Dense
	Tau []float64
}

// NewQR factorizes a (without modifying it) and returns the factorization.
// It requires a.Rows >= a.Cols.
func NewQR(a *Dense) *QR {
	if a.Rows < a.Cols {
		panic(fmt.Sprintf("mat: qr requires rows >= cols, got %dx%d", a.Rows, a.Cols))
	}
	f := a.Clone()
	n := f.Cols
	tau := make([]float64, n)
	for k := 0; k < n; k++ {
		tau[k] = houseColumn(f, k, k)
		applyHouseLeft(f, k, k, tau[k], k+1, n)
	}
	return &QR{Fac: f, Tau: tau}
}

// houseColumn computes the Householder reflector that annihilates
// f[r0+1:, c] against f[r0, c], stores the normalized vector below the
// diagonal in column c (with implicit v[0] = 1), stores the resulting R
// entry at (r0, c), and returns tau.
func houseColumn(f *Dense, r0, c int) float64 {
	m := f.Rows
	// Norm of the column segment.
	alpha := f.At(r0, c)
	sq := 0.0
	for i := r0 + 1; i < m; i++ {
		v := f.At(i, c)
		sq += v * v
	}
	if sq == 0 {
		// Already upper triangular in this column; identity reflector.
		return 0
	}
	norm := math.Sqrt(alpha*alpha + sq)
	var beta float64
	if alpha >= 0 {
		beta = -norm
	} else {
		beta = norm
	}
	v0 := alpha - beta
	tau := (beta - alpha) / beta // == -v0/beta
	inv := 1 / v0
	for i := r0 + 1; i < m; i++ {
		f.Set(i, c, f.At(i, c)*inv)
	}
	f.Set(r0, c, beta)
	return tau
}

// applyHouseLeft applies the reflector stored in column c (pivot row r0) to
// columns [c0, c1) of f: f <- (I - tau v vᵀ) f on rows r0..m.
func applyHouseLeft(f *Dense, r0, c int, tau float64, c0, c1 int) {
	if tau == 0 {
		return
	}
	m := f.Rows
	for j := c0; j < c1; j++ {
		// w = vᵀ f[:, j] with v[0] = 1.
		w := f.At(r0, j)
		for i := r0 + 1; i < m; i++ {
			w += f.At(i, c) * f.At(i, j)
		}
		w *= tau
		f.Set(r0, j, f.At(r0, j)-w)
		for i := r0 + 1; i < m; i++ {
			f.Set(i, j, f.At(i, j)-w*f.At(i, c))
		}
	}
}

// R returns the n-by-n upper-triangular factor.
func (qr *QR) R() *Dense {
	n := qr.Fac.Cols
	r := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			r.Set(i, j, qr.Fac.At(i, j))
		}
	}
	return r
}

// Q returns the thin m-by-n orthonormal factor.
func (qr *QR) Q() *Dense {
	m, n := qr.Fac.Rows, qr.Fac.Cols
	q := NewDense(m, n)
	for i := 0; i < n; i++ {
		q.Set(i, i, 1)
	}
	// Apply reflectors in reverse order to the identity block.
	for k := n - 1; k >= 0; k-- {
		tau := qr.Tau[k]
		if tau == 0 {
			continue
		}
		for j := 0; j < n; j++ {
			w := q.At(k, j)
			for i := k + 1; i < m; i++ {
				w += qr.Fac.At(i, k) * q.At(i, j)
			}
			w *= tau
			q.Set(k, j, q.At(k, j)-w)
			for i := k + 1; i < m; i++ {
				q.Set(i, j, q.At(i, j)-w*qr.Fac.At(i, k))
			}
		}
	}
	return q
}

// QMulVec applies the full orthogonal factor to x in place: x <- Q x.
// x must have length m.
func (qr *QR) QMulVec(x []float64) {
	m, n := qr.Fac.Rows, qr.Fac.Cols
	if len(x) != m {
		panic(fmt.Sprintf("mat: qmulvec length %d want %d", len(x), m))
	}
	for k := n - 1; k >= 0; k-- {
		tau := qr.Tau[k]
		if tau == 0 {
			continue
		}
		w := x[k]
		for i := k + 1; i < m; i++ {
			w += qr.Fac.At(i, k) * x[i]
		}
		w *= tau
		x[k] -= w
		for i := k + 1; i < m; i++ {
			x[i] -= w * qr.Fac.At(i, k)
		}
	}
}

// QTMulVec applies the transpose of the orthogonal factor in place: x <- Qᵀ x.
func (qr *QR) QTMulVec(x []float64) {
	m, n := qr.Fac.Rows, qr.Fac.Cols
	if len(x) != m {
		panic(fmt.Sprintf("mat: qtmulvec length %d want %d", len(x), m))
	}
	for k := 0; k < n; k++ {
		tau := qr.Tau[k]
		if tau == 0 {
			continue
		}
		w := x[k]
		for i := k + 1; i < m; i++ {
			w += qr.Fac.At(i, k) * x[i]
		}
		w *= tau
		x[k] -= w
		for i := k + 1; i < m; i++ {
			x[i] -= w * qr.Fac.At(i, k)
		}
	}
}

// SolveLS solves the least-squares problem min ||A x - b||₂ for the
// factorized A and returns x of length n. b must have length m.
func (qr *QR) SolveLS(b []float64) []float64 {
	m, n := qr.Fac.Rows, qr.Fac.Cols
	if len(b) != m {
		panic(fmt.Sprintf("mat: solvels length %d want %d", len(b), m))
	}
	y := make([]float64, m)
	copy(y, b)
	qr.QTMulVec(y)
	x := make([]float64, n)
	copy(x, y[:n])
	solveUpperInPlace(qr.Fac, x)
	return x
}

// solveUpperInPlace solves R x = b in place where R is the upper-left
// len(b)-by-len(b) upper triangle of f. Zero (or tiny) diagonal entries
// yield zero solution components, which is the pseudo-inverse convention.
func solveUpperInPlace(f *Dense, x []float64) {
	n := len(x)
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		row := f.Row(i)
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		d := row[i]
		if d == 0 {
			x[i] = 0
			continue
		}
		x[i] = s / d
	}
}
