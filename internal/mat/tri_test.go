package mat

import (
	"math"
	"math/rand"
	"testing"
)

// randSPD returns a random symmetric positive definite n-by-n matrix.
func randSPD(rng *rand.Rand, n int) *Dense {
	b := randDense(rng, n, n)
	a := Mul(b, b.T())
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+float64(n))
	}
	return a
}

func TestCholeskySolve(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	for trial := 0; trial < 6; trial++ {
		n := 2 + rng.Intn(20)
		a := randSPD(rng, n)
		ch, err := NewCholesky(a)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := MulVec(a, want)
		got := ch.Solve(b)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-8 {
				t.Fatalf("trial %d: x[%d]=%g want %g", trial, i, got[i], want[i])
			}
		}
		// L Lᵀ = A.
		if !Mul(ch.L, ch.L.T()).Equal(a, 1e-9*a.MaxAbs()) {
			t.Fatalf("trial %d: LLᵀ != A", trial)
		}
	}
}

func TestCholeskySolveTo(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	n := 15
	a := randSPD(rng, n)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, n)
	for i := range want {
		want[i] = rng.NormFloat64()
	}
	b := MulVec(a, want)
	// SolveTo must match Solve bitwise and work when x aliases b.
	ref := ch.Solve(b)
	x := make([]float64, n)
	ch.SolveTo(x, b)
	for i := range ref {
		if x[i] != ref[i] {
			t.Fatalf("SolveTo differs from Solve at %d", i)
		}
	}
	ch.SolveTo(b, b)
	for i := range ref {
		if b[i] != ref[i] {
			t.Fatalf("aliased SolveTo differs at %d", i)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for length mismatch")
		}
	}()
	ch.SolveTo(make([]float64, n-1), make([]float64, n))
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 2, 2, 1}) // eigenvalues 3, -1
	if _, err := NewCholesky(a); err == nil {
		t.Fatal("expected error for indefinite matrix")
	}
	if _, err := NewCholesky(NewDense(2, 3)); err == nil {
		t.Fatal("expected error for non-square matrix")
	}
}

func TestTriangularSolves(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	n := 9
	l := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			l.Set(i, j, rng.NormFloat64())
		}
		l.Set(i, i, 1+rng.Float64())
	}
	want := make([]float64, n)
	for i := range want {
		want[i] = rng.NormFloat64()
	}

	b := MulVec(l, want)
	SolveLowerInPlace(l, b)
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-10 {
			t.Fatalf("lower solve x[%d]=%g want %g", i, b[i], want[i])
		}
	}

	bt := MulVec(l.T(), want)
	SolveUpperTransposedInPlace(l, bt)
	for i := range want {
		if math.Abs(bt[i]-want[i]) > 1e-10 {
			t.Fatalf("upper-transposed solve x[%d]=%g want %g", i, bt[i], want[i])
		}
	}

	u := l.T()
	bu := MulVec(u, want)
	SolveUpperInPlace(u, bu)
	for i := range want {
		if math.Abs(bu[i]-want[i]) > 1e-10 {
			t.Fatalf("upper solve x[%d]=%g want %g", i, bu[i], want[i])
		}
	}
}
