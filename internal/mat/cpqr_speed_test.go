package mat

import (
	"math/rand"
	"testing"
)

func BenchmarkCPQRBlocked600(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	a := randDense(rng, 600, 400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		newCPQRBlocked(a, 1e-8, 0, nil)
	}
}

func BenchmarkCPQRUnblocked600(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	a := randDense(rng, 600, 400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewCPQRUnblocked(a, 1e-8, 0)
	}
}
