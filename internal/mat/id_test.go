package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRowIDExactLowRank(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	for _, k := range []int{1, 3, 6} {
		a := randLowRank(rng, 50, 20, k)
		id := NewRowID(a, 1e-11, 0)
		if id.Rank != k {
			t.Fatalf("rank-%d matrix: ID rank %d", k, id.Rank)
		}
		rec := id.Reconstruct(a)
		relErr := rec.Sub(a).FrobNorm() / a.FrobNorm()
		if relErr > 1e-9 {
			t.Fatalf("rank-%d: reconstruction error %g", k, relErr)
		}
	}
}

func TestRowIDIdentityOnSkeleton(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	a := randLowRank(rng, 30, 15, 5)
	id := NewRowID(a, 1e-11, 0)
	for k, row := range id.Skel {
		for j := 0; j < id.Rank; j++ {
			want := 0.0
			if j == k {
				want = 1
			}
			if id.T.At(row, j) != want {
				t.Fatalf("T[%d,%d]=%g want %g (skeleton row of skeleton index %d)",
					row, j, id.T.At(row, j), want, k)
			}
		}
	}
}

func TestRowIDSkeletonUniqueAndInRange(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 1 + r.Intn(25)
		n := 1 + r.Intn(25)
		a := randDense(r, m, n)
		id := NewRowID(a, 1e-8, 0)
		seen := map[int]bool{}
		for _, s := range id.Skel {
			if s < 0 || s >= m || seen[s] {
				return false
			}
			seen[s] = true
		}
		return id.Rank == len(id.Skel) && id.T.Rows == m && id.T.Cols == id.Rank
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestRowIDToleranceError(t *testing.T) {
	// Decaying-spectrum matrix: relative reconstruction error should track
	// the requested tolerance within a modest factor.
	rng := rand.New(rand.NewSource(32))
	n := 40
	u := NewQR(randDense(rng, n, n)).Q()
	v := NewQR(randDense(rng, n, n)).Q()
	d := NewDense(n, n)
	for i := 0; i < n; i++ {
		d.Set(i, i, math.Pow(10, -float64(i)/3))
	}
	a := Mul(Mul(u, d), v.T())
	for _, tol := range []float64{1e-3, 1e-6, 1e-9} {
		id := NewRowID(a, tol, 0)
		relErr := id.Reconstruct(a).Sub(a).FrobNorm() / a.FrobNorm()
		if relErr > 1000*tol {
			t.Fatalf("tol %g: error %g", tol, relErr)
		}
		if id.Rank == n && tol > 1e-12 {
			t.Fatalf("tol %g: no truncation happened", tol)
		}
	}
}

func TestRowIDMaxRankCap(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	a := randDense(rng, 20, 20)
	id := NewRowID(a, 0, 4)
	if id.Rank != 4 {
		t.Fatalf("rank cap ignored: %d", id.Rank)
	}
}

func TestRowIDEmptyAndZero(t *testing.T) {
	id := NewRowID(NewDense(0, 5), 1e-8, 0)
	if id.Rank != 0 || len(id.Skel) != 0 {
		t.Fatal("empty matrix should give empty ID")
	}
	idz := NewRowID(NewDense(6, 4), 1e-8, 0)
	if idz.Rank != 0 {
		t.Fatalf("zero matrix ID rank %d", idz.Rank)
	}
	if idz.T.Rows != 6 || idz.T.Cols != 0 {
		t.Fatalf("zero matrix T shape %dx%d", idz.T.Rows, idz.T.Cols)
	}
}

func TestRowIDTallThinFullRank(t *testing.T) {
	// More rows than columns: rank limited by columns; every selected
	// skeleton row must reproduce A to near machine precision.
	rng := rand.New(rand.NewSource(34))
	a := randDense(rng, 60, 7)
	id := NewRowID(a, 1e-13, 0)
	if id.Rank != 7 {
		t.Fatalf("rank %d want 7", id.Rank)
	}
	relErr := id.Reconstruct(a).Sub(a).FrobNorm() / a.FrobNorm()
	if relErr > 1e-9 {
		t.Fatalf("reconstruction error %g", relErr)
	}
}
