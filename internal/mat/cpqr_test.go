package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// permuteCols returns a with columns ordered by perm.
func permuteCols(a *Dense, perm []int) *Dense {
	p := NewDense(a.Rows, a.Cols)
	for j, src := range perm {
		for i := 0; i < a.Rows; i++ {
			p.Set(i, j, a.At(i, src))
		}
	}
	return p
}

func TestCPQRFullRankReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for trial := 0; trial < 10; trial++ {
		m := 4 + rng.Intn(30)
		n := 1 + rng.Intn(30)
		a := randDense(rng, m, n)
		c := NewCPQR(a, 0, 0)
		c.CheckShapes()
		if c.Rank != min(m, n) {
			t.Fatalf("trial %d: rank %d want %d", trial, c.Rank, min(m, n))
		}
		qrp := Mul(c.Q(), c.R())
		ap := permuteCols(a, c.Perm)
		if !qrp.Equal(ap, 1e-10) {
			t.Fatalf("trial %d: QR != AP, err %g", trial, qrp.Sub(ap).MaxAbs())
		}
	}
}

func TestCPQRRankDetection(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, k := range []int{1, 2, 5, 9} {
		a := randLowRank(rng, 40, 25, k)
		c := NewCPQR(a, 1e-10, 0)
		if c.Rank != k {
			t.Fatalf("rank-%d matrix detected as rank %d", k, c.Rank)
		}
	}
}

func TestCPQRMaxRankCap(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	a := randDense(rng, 20, 20)
	c := NewCPQR(a, 0, 7)
	if c.Rank != 7 {
		t.Fatalf("rank cap ignored: got %d", c.Rank)
	}
}

func TestCPQRZeroMatrix(t *testing.T) {
	c := NewCPQR(NewDense(5, 4), 1e-12, 0)
	if c.Rank != 0 {
		t.Fatalf("zero matrix rank %d", c.Rank)
	}
}

func TestCPQRDiagonalNonIncreasing(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	a := randDense(rng, 30, 18)
	c := NewCPQR(a, 0, 0)
	prev := math.Inf(1)
	for k := 0; k < c.Rank; k++ {
		d := math.Abs(c.Fac.At(k, k))
		// Pivoting guarantees this up to roundoff slack.
		if d > prev*(1+1e-8) {
			t.Fatalf("pivot magnitudes increase at %d: %g after %g", k, d, prev)
		}
		prev = d
	}
}

func TestCPQRTruncationErrorBound(t *testing.T) {
	// For a matrix with rapidly decaying singular values, truncating at tol
	// must produce an approximation error within a modest factor of
	// tol * ||A||.
	rng := rand.New(rand.NewSource(24))
	n := 30
	u := NewQR(randDense(rng, n, n)).Q()
	v := NewQR(randDense(rng, n, n)).Q()
	d := NewDense(n, n)
	for i := 0; i < n; i++ {
		d.Set(i, i, math.Pow(10, -float64(i)/2))
	}
	a := Mul(Mul(u, d), v.T())
	tol := 1e-6
	c := NewCPQR(a, tol, 0)
	// Approximation via retained factors.
	approxP := Mul(c.Q(), c.R())
	ap := permuteCols(a, c.Perm)
	err := approxP.Sub(ap).FrobNorm() / a.FrobNorm()
	if err > 100*tol {
		t.Fatalf("truncation error %g exceeds 100*tol=%g", err, 100*tol)
	}
	if c.Rank >= n {
		t.Fatalf("expected truncation, got full rank %d", c.Rank)
	}
}

func TestCPQRPermIsPermutationProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 1 + r.Intn(15)
		n := 1 + r.Intn(15)
		c := NewCPQR(randDense(r, m, n), 0, 0)
		seen := make([]bool, n)
		for _, p := range c.Perm {
			if p < 0 || p >= n || seen[p] {
				return false
			}
			seen[p] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
