package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randDense returns an r-by-c matrix with entries drawn from rng in [-1, 1).
func randDense(rng *rand.Rand, r, c int) *Dense {
	a := NewDense(r, c)
	for i := range a.Data {
		a.Data[i] = 2*rng.Float64() - 1
	}
	return a
}

// randLowRank returns an r-by-c matrix of exact rank k (given k <= min(r,c)).
func randLowRank(rng *rand.Rand, r, c, k int) *Dense {
	u := randDense(rng, r, k)
	v := randDense(rng, k, c)
	return Mul(u, v)
}

func TestNewDenseShapes(t *testing.T) {
	a := NewDense(3, 4)
	if a.Rows != 3 || a.Cols != 4 || len(a.Data) != 12 {
		t.Fatalf("bad shape: %dx%d len %d", a.Rows, a.Cols, len(a.Data))
	}
	b := NewDenseData(2, 2, []float64{1, 2, 3, 4})
	if b.At(1, 0) != 3 {
		t.Fatalf("At(1,0)=%g want 3", b.At(1, 0))
	}
	b.Set(0, 1, 9)
	if b.At(0, 1) != 9 {
		t.Fatalf("Set did not stick")
	}
}

func TestNewDenseDataLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad data length")
		}
	}()
	NewDenseData(2, 3, []float64{1, 2, 3})
}

func TestTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randDense(rng, 5, 3)
	at := a.T()
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if at.At(j, i) != a.At(i, j) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
	att := at.T()
	if !att.Equal(a, 0) {
		t.Fatal("double transpose is not identity")
	}
}

func TestSubCopyAndPickRows(t *testing.T) {
	a := NewDenseData(3, 3, []float64{1, 2, 3, 4, 5, 6, 7, 8, 9})
	s := a.SubCopy(1, 3, 0, 2)
	want := NewDenseData(2, 2, []float64{4, 5, 7, 8})
	if !s.Equal(want, 0) {
		t.Fatalf("SubCopy got %v", s)
	}
	p := a.PickRows([]int{2, 0})
	wantP := NewDenseData(2, 3, []float64{7, 8, 9, 1, 2, 3})
	if !p.Equal(wantP, 0) {
		t.Fatalf("PickRows got %v", p)
	}
}

func TestMulAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		m := 1 + rng.Intn(40)
		k := 1 + rng.Intn(90) // exceed mulBlock sometimes
		n := 1 + rng.Intn(40)
		a := randDense(rng, m, k)
		b := randDense(rng, k, n)
		got := Mul(a, b)
		want := NewDense(m, n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				s := 0.0
				for l := 0; l < k; l++ {
					s += a.At(i, l) * b.At(l, j)
				}
				want.Set(i, j, s)
			}
		}
		if !got.Equal(want, 1e-12*float64(k)) {
			t.Fatalf("trial %d: blocked mul disagrees with naive", trial)
		}
	}
}

func TestMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected shape panic")
		}
	}()
	Mul(NewDense(2, 3), NewDense(2, 3))
}

func TestMulVecVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randDense(rng, 7, 4)
	x := make([]float64, 4)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y := MulVec(a, x)
	// y2 via Mul with a column matrix.
	xc := NewDenseData(4, 1, append([]float64(nil), x...))
	y2 := Mul(a, xc)
	for i := range y {
		if math.Abs(y[i]-y2.At(i, 0)) > 1e-13 {
			t.Fatalf("MulVec mismatch at %d", i)
		}
	}
	// MulVecAdd accumulates.
	acc := make([]float64, 7)
	MulVecAdd(acc, a, x)
	MulVecAdd(acc, a, x)
	for i := range acc {
		if math.Abs(acc[i]-2*y[i]) > 1e-12 {
			t.Fatalf("MulVecAdd mismatch at %d", i)
		}
	}
	// MulTVecAdd equals transpose product.
	z := make([]float64, 7)
	for i := range z {
		z[i] = rng.NormFloat64()
	}
	gt := make([]float64, 4)
	MulTVecAdd(gt, a, z)
	want := MulVec(a.T(), z)
	for i := range gt {
		if math.Abs(gt[i]-want[i]) > 1e-12 {
			t.Fatalf("MulTVecAdd mismatch at %d: %g vs %g", i, gt[i], want[i])
		}
	}
}

func TestMatvecLinearityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 1 + r.Intn(20)
		n := 1 + r.Intn(20)
		a := randDense(r, m, n)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
			y[i] = r.NormFloat64()
		}
		alpha := r.NormFloat64()
		// A(alpha x + y) == alpha Ax + Ay
		xy := make([]float64, n)
		for i := range xy {
			xy[i] = alpha*x[i] + y[i]
		}
		lhs := MulVec(a, xy)
		ax := MulVec(a, x)
		ay := MulVec(a, y)
		for i := range lhs {
			if math.Abs(lhs[i]-(alpha*ax[i]+ay[i])) > 1e-10*(1+math.Abs(lhs[i])) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestNormsAndDot(t *testing.T) {
	x := []float64{3, 4}
	if got := Norm2(x); math.Abs(got-5) > 1e-15 {
		t.Fatalf("Norm2 = %g want 5", got)
	}
	if Norm2(nil) != 0 {
		t.Fatal("Norm2(nil) != 0")
	}
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %g want 32", got)
	}
	a := NewDenseData(1, 2, []float64{3, 4})
	if got := a.FrobNorm(); math.Abs(got-5) > 1e-15 {
		t.Fatalf("FrobNorm = %g want 5", got)
	}
	// Overflow guard: huge entries should not produce +Inf.
	h := NewDenseData(1, 2, []float64{1e300, 1e300})
	if math.IsInf(h.FrobNorm(), 0) {
		t.Fatal("FrobNorm overflowed")
	}
}

func TestAxpyAddSubScale(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 2, 3, 4})
	b := NewDenseData(2, 2, []float64{4, 3, 2, 1})
	c := a.Clone().Add(b)
	if !c.Equal(NewDenseData(2, 2, []float64{5, 5, 5, 5}), 0) {
		t.Fatal("Add wrong")
	}
	d := a.Clone().Sub(b)
	if !d.Equal(NewDenseData(2, 2, []float64{-3, -1, 1, 3}), 0) {
		t.Fatal("Sub wrong")
	}
	e := a.Clone().Scale(2)
	if !e.Equal(NewDenseData(2, 2, []float64{2, 4, 6, 8}), 0) {
		t.Fatal("Scale wrong")
	}
	y := []float64{1, 1}
	Axpy(2, []float64{1, 2}, y)
	if y[0] != 3 || y[1] != 5 {
		t.Fatalf("Axpy got %v", y)
	}
}

func TestReshapeReusesStorage(t *testing.T) {
	a := NewDense(4, 4)
	d := &a.Data[0]
	a.Reshape(2, 3)
	if a.Rows != 2 || a.Cols != 3 || len(a.Data) != 6 {
		t.Fatalf("reshape shape wrong: %dx%d", a.Rows, a.Cols)
	}
	if &a.Data[0] != d {
		t.Fatal("reshape should reuse storage when shrinking")
	}
	a.Reshape(10, 10)
	if len(a.Data) != 100 {
		t.Fatal("reshape failed to grow")
	}
}

func TestEye(t *testing.T) {
	e := Eye(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if e.At(i, j) != want {
				t.Fatalf("Eye(3)[%d,%d]=%g", i, j, e.At(i, j))
			}
		}
	}
}

func TestEqualShapeMismatch(t *testing.T) {
	if NewDense(2, 2).Equal(NewDense(2, 3), 1) {
		t.Fatal("Equal must reject shape mismatch")
	}
}
