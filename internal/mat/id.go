package mat

import "h2ds/internal/par"

// RowID is a row interpolative decomposition
//
//	A ≈ T · A[Skel, :]
//
// where Skel selects Rank rows of A ("skeleton" rows) and the m-by-Rank
// interpolation matrix T carries an identity on the skeleton rows:
// T[Skel[k], k] = 1 and T[Skel[k], j] = 0 for j != k.
//
// This is the structure the data-driven H² construction depends on: because
// the skeleton rows are actual rows of the kernel matrix, every coupling
// block downstream is a plain kernel submatrix and can be regenerated from
// indices alone (the on-the-fly mode).
type RowID struct {
	Skel []int
	T    *Dense
	Rank int
}

// NewRowID computes a row ID of a via a column-pivoted QR of aᵀ, truncated
// at relative tolerance tol (on the pivot column norms) and capped at
// maxRank rows (maxRank <= 0 means uncapped).
func NewRowID(a *Dense, tol float64, maxRank int) *RowID {
	return NewRowIDPool(a, tol, maxRank, nil)
}

// NewRowIDPool is NewRowID with an optional worker pool forwarded to the
// blocked CPQR's trailing updates (see NewCPQRPool for the determinism and
// single-client contracts).
func NewRowIDPool(a *Dense, tol float64, maxRank int, pool *par.Pool) *RowID {
	if a.Rows == 0 {
		return &RowID{Skel: nil, T: NewDense(0, 0), Rank: 0}
	}
	// a.T() is a fresh transposed copy, so the CPQR can consume it in place.
	return rowIDFromCPQR(newCPQRInPlace(a.T(), tol, maxRank, pool), a.Rows)
}

// NewRowIDUnblocked is NewRowID on the reference unblocked CPQR — the
// pre-blocking construction path, kept for equivalence suites and the build
// bench's seed baseline.
func NewRowIDUnblocked(a *Dense, tol float64, maxRank int) *RowID {
	if a.Rows == 0 {
		return &RowID{Skel: nil, T: NewDense(0, 0), Rank: 0}
	}
	return rowIDFromCPQR(newCPQRUnblocked(a.T(), tol, maxRank), a.Rows)
}

func rowIDFromCPQR(c *CPQR, m int) *RowID {
	r := c.Rank
	skel := make([]int, r)
	copy(skel, c.Perm[:r])

	t := NewDense(m, r)
	for k := 0; k < r; k++ {
		t.Set(skel[k], k, 1)
	}
	if r < m && r > 0 {
		// Non-skeleton row Perm[r+k] of a is approximated by X[:,k]ᵀ · a[skel,:].
		x := c.InterpCoeffs()
		for k := 0; k < m-r; k++ {
			row := c.Perm[r+k]
			for j := 0; j < r; j++ {
				t.Set(row, j, x.At(j, k))
			}
		}
	}
	return &RowID{Skel: skel, T: t, Rank: r}
}

// Reconstruct returns T · A[Skel, :], the ID's approximation of the original
// matrix a (useful for error checks in tests).
func (id *RowID) Reconstruct(a *Dense) *Dense {
	return Mul(id.T, a.PickRows(id.Skel))
}
