//go:build amd64 && !noasm

package mat

// hasAVX detects AVX support: the CPU must advertise AVX and OSXSAVE, and
// the OS must have enabled saving the ymm state (XCR0 bits 1 and 2).
func hasAVX() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 1 {
		return false
	}
	_, _, ecx, _ := cpuid(1, 0)
	const osxsaveBit = 1 << 27
	const avxBit = 1 << 28
	if ecx&osxsaveBit == 0 || ecx&avxBit == 0 {
		return false
	}
	xcr0, _ := xgetbv()
	return xcr0&0x6 == 0x6 // SSE and AVX state enabled
}

func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
func xgetbv() (eax, edx uint32)

// The *Body routines process 4-aligned lengths only (len % 4 == 0); the Go
// wrappers run the scalar tails. Each is bitwise-identical to its scalar
// counterpart (see simd.go).

//go:noescape
func dotBody(row, x []float64) float64

//go:noescape
func dot2Body(r0, r1, x []float64) (float64, float64)

//go:noescape
func dotAcc4Body(k, v []float64, acc *[4]float64)

//go:noescape
func axpyBody(y, x []float64, a float64)

//go:noescape
func axpy2Body(y, x0, x1 []float64, a0, a1 float64)

//go:noescape
func axpy4Body(y, x0, x1, x2, x3 []float64, a0, a1, a2, a3 float64)

//go:noescape
func recipSqrtBody(dst, r2 []float64)

//go:noescape
func recipCubeBody(dst, r2 []float64)
