package mat

import (
	"math"
	"math/rand"
	"testing"
)

// simdVec returns a deterministic random vector for the AVX-vs-scalar
// comparisons.
func simdVec(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// TestSIMDBitwiseScalar pins the central SIMD claim: with AVX on, every
// dispatched primitive returns results bitwise-identical to the scalar path,
// across lengths that cover below-threshold, 4-aligned, and ragged tails.
func TestSIMDBitwiseScalar(t *testing.T) {
	if !SIMDAvailable() {
		t.Skip("no AVX on this machine")
	}
	lengths := []int{1, 3, 4, 7, 8, 11, 12, 15, 16, 31, 64, 100, 257}
	for _, n := range lengths {
		row := simdVec(n, int64(1000+n))
		x := simdVec(n, int64(2000+n))
		x1 := simdVec(n, int64(3000+n))
		x2 := simdVec(n, int64(4000+n))
		x3 := simdVec(n, int64(5000+n))
		y0 := simdVec(n, int64(6000+n))

		SetSIMD(true)
		dotV := dot(row, x)
		d2a, d2b := dot2(row, x1, x)
		ya := append([]float64(nil), y0...)
		axpy(ya, 1.7, x)
		y2a := append([]float64(nil), y0...)
		axpy2(y2a, 1.7, x, -0.3, x1)
		y4a := append([]float64(nil), y0...)
		axpy4(y4a, 1.7, x, -0.3, x1, 0.9, x2, 2.2, x3)

		SetSIMD(false)
		dotS := dot(row, x)
		s2a, s2b := dot2(row, x1, x)
		ys := append([]float64(nil), y0...)
		axpy(ys, 1.7, x)
		y2s := append([]float64(nil), y0...)
		axpy2(y2s, 1.7, x, -0.3, x1)
		y4s := append([]float64(nil), y0...)
		axpy4(y4s, 1.7, x, -0.3, x1, 0.9, x2, 2.2, x3)
		SetSIMD(true)

		if dotV != dotS {
			t.Fatalf("n=%d: dot AVX %v != scalar %v", n, dotV, dotS)
		}
		if d2a != s2a || d2b != s2b {
			t.Fatalf("n=%d: dot2 AVX (%v,%v) != scalar (%v,%v)", n, d2a, d2b, s2a, s2b)
		}
		for i := range ya {
			if ya[i] != ys[i] {
				t.Fatalf("n=%d: axpy differs at %d", n, i)
			}
			if y2a[i] != y2s[i] {
				t.Fatalf("n=%d: axpy2 differs at %d", n, i)
			}
			if y4a[i] != y4s[i] {
				t.Fatalf("n=%d: axpy4 differs at %d", n, i)
			}
		}
	}
}

// TestSIMDChunkHelpersBitwise covers the exported fused-kernel helpers:
// DotAcc4 lane accumulation and the reciprocal chunk evaluations, including
// the zero-distance masking.
func TestSIMDChunkHelpersBitwise(t *testing.T) {
	if !SIMDAvailable() {
		t.Skip("no AVX on this machine")
	}
	for _, n := range []int{4, 8, 12, 16, 20, 64} {
		k := simdVec(n, int64(7000+n))
		v := simdVec(n, int64(8000+n))
		accA := [4]float64{0.1, -0.2, 0.3, -0.4}
		accS := accA
		SetSIMD(true)
		DotAcc4(k, v, &accA)
		SetSIMD(false)
		DotAcc4(k, v, &accS)
		SetSIMD(true)
		if accA != accS {
			t.Fatalf("n=%d: DotAcc4 AVX %v != scalar %v", n, accA, accS)
		}
	}
	for _, n := range []int{1, 4, 6, 8, 13, 64, 100} {
		r2 := make([]float64, n)
		rng := rand.New(rand.NewSource(int64(9000 + n)))
		for i := range r2 {
			r2[i] = rng.Float64() * 3
		}
		if n > 2 {
			r2[n/2] = 0 // exercise the zero-distance mask
		}
		dstA := make([]float64, n)
		dstS := make([]float64, n)
		cubeA := make([]float64, n)
		cubeS := make([]float64, n)
		SetSIMD(true)
		RecipSqrtChunk(dstA, r2)
		RecipCubeChunk(cubeA, r2)
		SetSIMD(false)
		RecipSqrtChunk(dstS, r2)
		RecipCubeChunk(cubeS, r2)
		SetSIMD(true)
		for i := range r2 {
			if dstA[i] != dstS[i] {
				t.Fatalf("n=%d: RecipSqrtChunk differs at %d: %v vs %v", n, i, dstA[i], dstS[i])
			}
			if cubeA[i] != cubeS[i] {
				t.Fatalf("n=%d: RecipCubeChunk differs at %d: %v vs %v", n, i, cubeA[i], cubeS[i])
			}
			want := 0.0
			if r := math.Sqrt(r2[i]); r != 0 {
				want = 1 / r
			}
			if dstS[i] != want {
				t.Fatalf("n=%d: scalar RecipSqrtChunk wrong at %d", n, i)
			}
		}
	}
}

// TestFMAVariantsClose checks the FastMath forms agree with the default path
// to rounding accuracy (they contract each multiply-add to one rounding, so
// exact equality is not expected, closeness is).
func TestFMAVariantsClose(t *testing.T) {
	n := 64
	k := simdVec(n, 1)
	v := simdVec(n, 2)
	var acc, accF [4]float64
	DotAcc4(k, v, &acc)
	DotAcc4FMA(k, v, &accF)
	for l := 0; l < 4; l++ {
		if math.Abs(acc[l]-accF[l]) > 1e-12*(1+math.Abs(acc[l])) {
			t.Fatalf("DotAcc4FMA lane %d diverged: %v vs %v", l, acc[l], accF[l])
		}
	}
	y := simdVec(n, 3)
	yF := append([]float64(nil), y...)
	AxpyChunk(y, 1.3, k)
	AxpyChunkFMA(yF, 1.3, k)
	for i := range y {
		if math.Abs(y[i]-yF[i]) > 1e-12*(1+math.Abs(y[i])) {
			t.Fatalf("AxpyChunkFMA diverged at %d", i)
		}
	}
}
