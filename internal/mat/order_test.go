package mat

import (
	"math"
	"math/rand"
	"testing"
)

// transpose materializes Aᵀ. The order-preserving primitives promise: applying
// a stored block with the *opposite* orientation's summation order is bitwise
// identical to materializing the transpose and using the normal primitive.
func transpose(a *Dense) *Dense {
	t := NewDense(a.Cols, a.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			t.Data[j*a.Rows+i] = a.Data[i*a.Cols+j]
		}
	}
	return t
}

func fillRand(rng *rand.Rand, xs []float64) {
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
}

func orderShapes() [][2]int {
	return [][2]int{{1, 1}, {2, 5}, {4, 4}, {5, 2}, {7, 3}, {16, 9}, {17, 33}, {63, 64}}
}

func TestMulTVecAddDotMatchesForwardOnTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, sh := range orderShapes() {
		a := NewDense(sh[0], sh[1])
		fillRand(rng, a.Data)
		x := make([]float64, sh[0])
		fillRand(rng, x)
		y := make([]float64, sh[1])
		want := make([]float64, sh[1])
		fillRand(rng, y)
		copy(want, y)
		MulVecAdd(want, transpose(a), x)
		MulTVecAddDot(y, a, x)
		for i := range y {
			if math.Float64bits(y[i]) != math.Float64bits(want[i]) {
				t.Fatalf("shape %v elem %d: %v want %v", sh, i, y[i], want[i])
			}
		}
	}
}

func TestMulVecAddSeqMatchesTransposeOnTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for _, sh := range orderShapes() {
		a := NewDense(sh[0], sh[1])
		fillRand(rng, a.Data)
		x := make([]float64, sh[1])
		fillRand(rng, x)
		// Inject zeros so the zero-skip structure of MulTVecAdd is exercised.
		for i := 0; i < len(x); i += 3 {
			x[i] = 0
		}
		y := make([]float64, sh[0])
		want := make([]float64, sh[0])
		fillRand(rng, y)
		copy(want, y)
		MulTVecAdd(want, transpose(a), x)
		MulVecAddSeq(y, a, x)
		for i := range y {
			if math.Float64bits(y[i]) != math.Float64bits(want[i]) {
				t.Fatalf("shape %v elem %d: %v want %v", sh, i, y[i], want[i])
			}
		}
	}
}

func TestMulTAddToDotMatchesBatchOnTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, sh := range orderShapes() {
		for _, nrhs := range []int{1, 2, 5} {
			a := NewDense(sh[0], sh[1])
			fillRand(rng, a.Data)
			b := NewDense(sh[0], nrhs)
			fillRand(rng, b.Data)
			c := NewDense(sh[1], nrhs)
			want := NewDense(sh[1], nrhs)
			fillRand(rng, c.Data)
			copy(want.Data, c.Data)
			MulAddTo(want, transpose(a), b)
			MulTAddToDot(c, a, b)
			for i := range c.Data {
				if math.Float64bits(c.Data[i]) != math.Float64bits(want.Data[i]) {
					t.Fatalf("shape %v nrhs=%d elem %d: %v want %v", sh, nrhs, i, c.Data[i], want.Data[i])
				}
			}
		}
	}
}
