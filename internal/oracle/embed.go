package oracle

import (
	"math"

	"h2ds/internal/pointset"
)

// EmbedDims is the number of FastMap projection axes. Three matches the
// ambient dimension of the geometric workloads the admissibility condition
// and leaf-size heuristics are tuned for; the entry-induced distances of a
// kernel matrix on a d≤3 manifold are recovered near-isometrically.
const EmbedDims = 3

// indexScale is the identity-coordinate unit: point i carries the extra
// coordinate i·2⁻³². The product is exact in float64 for any realistic n
// (i < 2⁵²), so the index survives tree permutation and serialization
// bitwise, and the coordinate's total extent n·2⁻³² is geometrically
// negligible against the unit-normalized projection axes.
const indexScale = 1.0 / (1 << 32)

// Embed derives a point set from matrix entries alone, the geometry-oblivious
// step of a GOFMM-style build. The entry-induced squared distance
//
//	d²(i,j) = K(i,i) + K(j,j) − K(i,j) − K(j,i)
//
// (the Gram-to-Euclidean identity for SPD K, symmetrized otherwise) is
// projected onto EmbedDims FastMap axes: each axis picks a far-apart pivot
// pair by two linear scans and places every point by the cosine-law
// coordinate, then recurses on the residual distances. The scan is
// O(EmbedDims²·n) entry accesses — rows and diagonal only, never the full
// matrix — and fully deterministic, so two builds of the same Source embed
// identically.
//
// The returned points have EmbedDims+1 coordinates: the projection axes,
// normalized by a power of two into [-1, 1] (exact division, so bitwise
// reproducible), plus the identity coordinate i·indexScale that EntryKernel
// decodes back to the original row index. A degenerate Source (all distances
// zero) leaves the projection axes zero and the tree splits on the identity
// coordinate — index order, still a valid partition.
func Embed(src Source) *pointset.Points {
	n := src.N()
	dim := EmbedDims + 1
	pts := pointset.New(n, dim)
	co := pts.Coords

	diag := make([]float64, n)
	for i := 0; i < n; i++ {
		diag[i] = src.At(i, i)
	}
	sym := src.Symmetric()

	// d2 is the residual squared distance after the first `axes` projections,
	// clamped at zero (floating-point residuals can go slightly negative).
	d2 := func(i, j int, axes int) float64 {
		var cross float64
		if sym {
			cross = 2 * src.At(i, j)
		} else {
			cross = src.At(i, j) + src.At(j, i)
		}
		v := diag[i] + diag[j] - cross
		for a := 0; a < axes; a++ {
			dx := co[i*dim+a] - co[j*dim+a]
			v -= dx * dx
		}
		if v < 0 {
			return 0
		}
		return v
	}
	farthest := func(from, axes int) int {
		best, bestD := from, -1.0
		for i := 0; i < n; i++ {
			if d := d2(from, i, axes); d > bestD {
				best, bestD = i, d
			}
		}
		return best
	}

	for axis := 0; axis < EmbedDims; axis++ {
		p := farthest(axis%n, axis)
		q := farthest(p, axis)
		dpq2 := d2(p, q, axis)
		if dpq2 <= 0 {
			break // residual space exhausted; remaining axes stay zero
		}
		dpq := math.Sqrt(dpq2)
		for i := 0; i < n; i++ {
			co[i*dim+axis] = (d2(p, i, axis) + dpq2 - d2(q, i, axis)) / (2 * dpq)
		}
	}

	// Normalize the projection axes into [-1, 1] by an exact power-of-two
	// scale so the identity coordinate's extent is negligible by
	// construction regardless of the matrix's magnitude.
	var maxAbs float64
	for i := 0; i < n; i++ {
		for a := 0; a < EmbedDims; a++ {
			if v := math.Abs(co[i*dim+a]); v > maxAbs {
				maxAbs = v
			}
		}
	}
	if maxAbs > 0 {
		scale := math.Exp2(math.Ceil(math.Log2(maxAbs)))
		for i := 0; i < n; i++ {
			for a := 0; a < EmbedDims; a++ {
				co[i*dim+a] /= scale
			}
		}
	}

	for i := 0; i < n; i++ {
		co[i*dim+EmbedDims] = float64(i) * indexScale
	}
	return pts
}

// Index decodes a point's original row index from its identity coordinate
// (the last coordinate of an Embed point).
func Index(coord []float64) int {
	return int(math.Round(coord[len(coord)-1] * (1 << 32)))
}
