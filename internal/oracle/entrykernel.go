package oracle

import (
	"h2ds/internal/mat"
	"h2ds/internal/pointset"
)

// EntryKernel presents a Source as a kernel.Pairwise over Embed's point set,
// which is what lets the existing tree/sample/core build run unchanged on a
// geometry-oblivious problem: wherever the builder evaluates "the kernel" at
// two points, EntryKernel decodes the points' identity coordinates back to
// row/column indices and reads the oracle.
//
// Its Name is the empty string — the kernel-less marker: serialization
// writes no kernel name and ships the stored blocks verbatim instead
// (entries are data, not code; they cannot be re-evaluated at load time).
//
// It also implements kernel.BlockAssembler so whole coupling/nearfield
// blocks are fetched with one Entry call instead of len(rows)·len(cols)
// pairwise evaluations.
type EntryKernel struct {
	src Source
}

// NewEntryKernel wraps src. The points passed to evaluation methods must
// come from Embed(src) (directly or through the tree's permuted copy).
func NewEntryKernel(src Source) *EntryKernel { return &EntryKernel{src: src} }

// Source returns the wrapped oracle.
func (e *EntryKernel) Source() Source { return e.src }

// EvalPair returns K(i, j) for the rows the two points encode.
func (e *EntryKernel) EvalPair(x, y []float64) float64 {
	return e.src.At(Index(x), Index(y))
}

// Symmetric reports the oracle's declared symmetry.
func (e *EntryKernel) Symmetric() bool { return e.src.Symmetric() }

// Name returns "" — the kernel-less marker; there is no formula to name.
func (e *EntryKernel) Name() string { return "" }

// AssembleBlock fills dst (already shaped len(rows)×len(cols)) with the
// oracle submatrix addressed by the points' identity coordinates. It always
// reports true: every block of an entry oracle is assembled this way.
func (e *EntryKernel) AssembleBlock(dst *mat.Dense, x *pointset.Points, rows []int, y *pointset.Points, cols []int) bool {
	ri := make([]int, len(rows))
	for a, r := range rows {
		ri[a] = Index(x.At(r))
	}
	cj := make([]int, len(cols))
	for b, c := range cols {
		cj[b] = Index(y.At(c))
	}
	e.src.Entry(ri, cj, dst.Data[:len(rows)*len(cols)])
	return true
}
