package oracle

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"h2ds/internal/kernel"
	"h2ds/internal/mat"
	"h2ds/internal/pointset"
)

// gram assembles the dense Gram matrix of kernel k on pts, row-major.
func gram(t *testing.T, pts *pointset.Points, name string) (kernel.Kernel, []float64) {
	t.Helper()
	k, err := kernel.ByName(name)
	if err != nil {
		t.Fatalf("kernel: %v", err)
	}
	n := pts.Len()
	data := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			data[i*n+j] = k.EvalPair(pts.At(i), pts.At(j))
		}
	}
	return k, data
}

func TestDenseBasics(t *testing.T) {
	d, err := NewDense(2, []float64{1, 2, 3, 4}, false)
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 2 || d.Symmetric() {
		t.Fatalf("n=%d sym=%v", d.N(), d.Symmetric())
	}
	if got := d.At(1, 0); got != 3 {
		t.Fatalf("At(1,0)=%g want 3", got)
	}
	out := make([]float64, 2)
	d.Entry([]int{1}, []int{1, 0}, out)
	if out[0] != 4 || out[1] != 3 {
		t.Fatalf("Entry=%v want [4 3]", out)
	}
	if _, err := NewDense(3, []float64{1}, false); err == nil {
		t.Fatal("want size mismatch error")
	}
	if _, err := NewDense(0, nil, false); err == nil {
		t.Fatal("want empty error")
	}
}

func TestDenseSize(t *testing.T) {
	for _, c := range []struct {
		bytes int64
		n     int
		ok    bool
	}{
		{8, 1, true}, {32, 2, true}, {8 * 9, 3, true}, {8 * 100 * 100, 100, true},
		{0, 0, false}, {7, 0, false}, {16, 0, false}, {8 * 10, 0, false},
	} {
		n, err := DenseSize(c.bytes)
		if c.ok && (err != nil || n != c.n) {
			t.Errorf("DenseSize(%d) = %d, %v; want %d", c.bytes, n, err, c.n)
		}
		if !c.ok && err == nil {
			t.Errorf("DenseSize(%d) accepted", c.bytes)
		}
	}
}

func TestPackLoadDenseRoundTrip(t *testing.T) {
	vals := []float64{1.5, -2.25, math.Pi, 0, 1e-300, -math.MaxFloat64, 7, 8, 9}
	path := filepath.Join(t.TempDir(), "m.h2data")
	if err := os.WriteFile(path, Pack(vals), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := LoadDense(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 3 || !d.Symmetric() {
		t.Fatalf("n=%d sym=%v", d.N(), d.Symmetric())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if got := d.At(i, j); got != vals[i*3+j] {
				t.Fatalf("At(%d,%d)=%g want %g", i, j, got, vals[i*3+j])
			}
		}
	}
	// Non-square payload is rejected.
	if err := os.WriteFile(path, Pack(vals[:5]), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadDense(path, false); err == nil {
		t.Fatal("want non-square error")
	}
}

func TestFromKernelMatchesDense(t *testing.T) {
	pts := pointset.Cube(40, 3, 3)
	k, data := gram(t, pts, "gaussian")
	src := FromKernel(pts, k)
	d, err := NewDense(40, data, true)
	if err != nil {
		t.Fatal(err)
	}
	if src.N() != 40 || !src.Symmetric() {
		t.Fatalf("adapter shape n=%d sym=%v", src.N(), src.Symmetric())
	}
	rows, cols := []int{0, 7, 39}, []int{3, 0, 11, 38}
	a := make([]float64, len(rows)*len(cols))
	b := make([]float64, len(rows)*len(cols))
	src.Entry(rows, cols, a)
	d.Entry(rows, cols, b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("entry %d: kernel %g dense %g", i, a[i], b[i])
		}
	}
}

func TestEmbedIdentityCoordinate(t *testing.T) {
	pts := pointset.Cube(200, 3, 5)
	k, data := gram(t, pts, "gaussian")
	_ = k
	src, err := NewDense(200, data, true)
	if err != nil {
		t.Fatal(err)
	}
	emb := Embed(src)
	if emb.Len() != 200 || emb.Dim != EmbedDims+1 {
		t.Fatalf("embed shape %dx%d", emb.Len(), emb.Dim)
	}
	for i := 0; i < 200; i++ {
		if got := Index(emb.At(i)); got != i {
			t.Fatalf("index %d decoded as %d", i, got)
		}
	}
	// The projection axes are normalized into [-1, 1] and not all zero for a
	// genuinely geometric source.
	var maxAbs float64
	for i := 0; i < 200; i++ {
		for a := 0; a < EmbedDims; a++ {
			if v := math.Abs(emb.At(i)[a]); v > maxAbs {
				maxAbs = v
			}
		}
	}
	if maxAbs == 0 || maxAbs > 1 {
		t.Fatalf("projection extent %g, want (0, 1]", maxAbs)
	}
}

func TestEmbedDeterministic(t *testing.T) {
	pts := pointset.Cube(120, 3, 9)
	_, data := gram(t, pts, "exp")
	src, _ := NewDense(120, data, true)
	a := Embed(src)
	b := Embed(src)
	for i := range a.Coords {
		if a.Coords[i] != b.Coords[i] {
			t.Fatalf("coord %d differs: %g vs %g", i, a.Coords[i], b.Coords[i])
		}
	}
}

func TestEmbedDegenerate(t *testing.T) {
	// Constant matrix: all entry-induced distances are zero. The projection
	// axes stay zero and the identity coordinate still orders the points.
	n := 30
	data := make([]float64, n*n)
	for i := range data {
		data[i] = 2.5
	}
	src, _ := NewDense(n, data, true)
	emb := Embed(src)
	for i := 0; i < n; i++ {
		c := emb.At(i)
		for a := 0; a < EmbedDims; a++ {
			if c[a] != 0 {
				t.Fatalf("degenerate axis %d of point %d = %g", a, i, c[a])
			}
		}
		if Index(c) != i {
			t.Fatalf("index %d decoded as %d", i, Index(c))
		}
	}
}

func TestEntryKernelAssembleBlock(t *testing.T) {
	pts := pointset.Cube(60, 3, 11)
	_, data := gram(t, pts, "gaussian")
	src, _ := NewDense(60, data, true)
	ek := NewEntryKernel(src)
	emb := Embed(src)

	rows, cols := []int{5, 0, 59, 17}, []int{2, 44, 8}
	blk := kernel.Assemble(&mat.Dense{}, ek, emb, rows, emb, cols)
	for a, i := range rows {
		for b, j := range cols {
			if got, want := blk.At(a, b), src.At(i, j); got != want {
				t.Fatalf("block (%d,%d) = %g want %g", a, b, got, want)
			}
		}
	}
	// EvalPair decodes the identity coordinates the same way.
	if got, want := ek.EvalPair(emb.At(13), emb.At(41)), src.At(13, 41); got != want {
		t.Fatalf("EvalPair %g want %g", got, want)
	}
	if ek.Name() != "" {
		t.Fatalf("entry kernel name %q, want empty (kernel-less marker)", ek.Name())
	}
	if !ek.Symmetric() {
		t.Fatal("gaussian gram adapter should be symmetric")
	}
}
