// Package oracle is the geometry-oblivious construction front-end: it lets
// the H² machinery compress matrices that exist only as entries, with no
// coordinates and no kernel formula. The model follows GOFMM (Yu et al.,
// arXiv:1707.00164): the only thing a caller must provide is block entry
// access K(rows, cols), and everything geometric the builder needs — the
// permutation/partition tree and the anchor-net samples — is derived from
// sampled entry-induced distances (see Embed). Cai–Huang–Chow–Xi
// (arXiv:2206.01885) formalizes the sampled-ID error control the core
// builder already ships (reltol) in exactly this entry-access setting, so
// error-controlled builds carry over unchanged.
//
// The package has three pieces:
//
//   - Source, the Entry(i, j) access interface, with Dense (an in-memory
//     row-major matrix, the upload serving path) and FromKernel (a
//     kernel-backed adapter used for cross-validation) implementations.
//   - Embed, which turns a Source into a low-dimensional point set by
//     FastMap projection of the entry-induced distances, with an appended
//     identity coordinate that encodes each point's original index exactly.
//   - EntryKernel, a kernel.Pairwise whose evaluations decode the identity
//     coordinates back to indices and read the oracle — so tree, sampler,
//     and core builder run unchanged on the embedded points.
package oracle

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"

	"h2ds/internal/kernel"
	"h2ds/internal/pointset"
)

// Source is block entry access to an n×n matrix: the complete construction
// interface of a geometry-oblivious build. Implementations must be safe for
// concurrent reads (the builder assembles blocks from many workers).
type Source interface {
	// N is the matrix dimension.
	N() int
	// Symmetric reports whether K(i,j) == K(j,i) for all pairs; symmetric
	// sources get the shared row/column basis and triangular block storage.
	Symmetric() bool
	// At returns the single entry K(i, j).
	At(i, j int) float64
	// Entry fills out, row-major len(rows)×len(cols), with the submatrix
	// K(rows, cols). len(out) must be at least len(rows)*len(cols).
	Entry(rows, cols []int, out []float64)
}

// Dense is an in-memory row-major n×n Source — the representation behind
// the dense-matrix upload endpoint.
type Dense struct {
	n    int
	sym  bool
	data []float64 // row-major, len n*n
}

// NewDense wraps a row-major n×n value slice (not copied). sym declares the
// matrix symmetric; it is trusted, not verified (verification is O(n²) and
// the caller often knows, e.g. a Gram matrix).
func NewDense(n int, data []float64, sym bool) (*Dense, error) {
	if n < 1 {
		return nil, fmt.Errorf("oracle: dense size must be positive, got %d", n)
	}
	if len(data) != n*n {
		return nil, fmt.Errorf("oracle: dense data has %d values, want %d (n=%d)", len(data), n*n, n)
	}
	return &Dense{n: n, sym: sym, data: data}, nil
}

// N returns the matrix dimension.
func (d *Dense) N() int { return d.n }

// Symmetric reports the symmetry declared at construction.
func (d *Dense) Symmetric() bool { return d.sym }

// At returns K(i, j).
func (d *Dense) At(i, j int) float64 { return d.data[i*d.n+j] }

// Entry fills out with the row-major submatrix K(rows, cols).
func (d *Dense) Entry(rows, cols []int, out []float64) {
	nc := len(cols)
	for a, i := range rows {
		src := d.data[i*d.n : (i+1)*d.n]
		dst := out[a*nc:]
		for b, j := range cols {
			dst[b] = src[j]
		}
	}
}

// LoadDense reads a dense matrix file: n*n row-major little-endian float64
// values with no header, the upload endpoint's on-disk format. n is inferred
// from the file size, which must be 8·n² for some positive integer n.
func LoadDense(path string, sym bool) (*Dense, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	n, err := DenseSize(int64(len(buf)))
	if err != nil {
		return nil, fmt.Errorf("oracle: %s: %w", path, err)
	}
	data := make([]float64, n*n)
	for i := range data {
		data[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	return NewDense(n, data, sym)
}

// DenseSize maps a raw dense payload size in bytes to the matrix dimension
// n, rejecting sizes that are not 8·n².
func DenseSize(bytes int64) (int, error) {
	if bytes <= 0 || bytes%8 != 0 {
		return 0, fmt.Errorf("oracle: dense payload of %d bytes is not a float64 matrix", bytes)
	}
	elems := bytes / 8
	n := int64(math.Sqrt(float64(elems)))
	for n > 0 && n*n > elems {
		n--
	}
	for (n+1)*(n+1) <= elems {
		n++
	}
	if n < 1 || n*n != elems {
		return 0, fmt.Errorf("oracle: dense payload of %d bytes (%d values) is not square", bytes, elems)
	}
	return int(n), nil
}

// Pack encodes values in the dense wire/file format (little-endian float64,
// no header). The inverse of LoadDense's decoding.
func Pack(vals []float64) []byte {
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
	}
	return buf
}

// kernelSource adapts a kernel on a point set to the Source interface — the
// cross-validation path: the same operator built geometry-obliviously through
// the oracle and geometrically through core.Build must agree.
type kernelSource struct {
	pts *pointset.Points
	k   kernel.Pairwise
}

// FromKernel returns a Source whose entries are k evaluated on pts:
// At(i, j) = k(pts[i], pts[j]).
func FromKernel(pts *pointset.Points, k kernel.Pairwise) Source {
	return &kernelSource{pts: pts, k: k}
}

func (s *kernelSource) N() int              { return s.pts.Len() }
func (s *kernelSource) Symmetric() bool     { return s.k.Symmetric() }
func (s *kernelSource) At(i, j int) float64 { return s.k.EvalPair(s.pts.At(i), s.pts.At(j)) }

func (s *kernelSource) Entry(rows, cols []int, out []float64) {
	nc := len(cols)
	for a, i := range rows {
		xi := s.pts.At(i)
		dst := out[a*nc:]
		for b, j := range cols {
			dst[b] = s.k.EvalPair(xi, s.pts.At(j))
		}
	}
}
