// Package interp implements tensor-grid Chebyshev interpolation, the
// paper's baseline construction for H² matrices (§I-B2): per-node
// interpolation grids, barycentric Lagrange basis evaluation, and the
// tolerance → points-per-direction calibration.
//
// In d dimensions a grid with p points per direction has rank p^d — the
// curse of dimensionality the data-driven method is designed to escape.
package interp

import (
	"math"

	"h2ds/internal/mat"
	"h2ds/internal/pointset"
)

// minHalfWidth keeps degenerate box axes (all points sharing a coordinate)
// from producing coincident interpolation nodes, which would break the
// barycentric weights.
const minHalfWidth = 1e-8

// Grid is a tensor-product Chebyshev grid over an axis-aligned box.
type Grid struct {
	Dim int
	P   int // points per direction
	// Nodes1D[j] holds the P Chebyshev nodes along axis j, mapped to the box.
	Nodes1D [][]float64
	// weights1D[j] holds the barycentric weights for axis j (shared across
	// axes up to the affine map, but stored per axis for clarity).
	weights1D [][]float64
}

// Rank returns the total number of grid points, p^d.
func (g *Grid) Rank() int {
	r := 1
	for i := 0; i < g.Dim; i++ {
		r *= g.P
	}
	return r
}

// NewGrid builds the Chebyshev grid of the box with p points per direction.
// First-kind Chebyshev points are used: x_k = cos((2k+1)π/(2p)) on [-1, 1],
// whose barycentric weights are (-1)^k sin((2k+1)π/(2p)).
func NewGrid(box pointset.BBox, p int) *Grid {
	d := len(box.Min)
	g := &Grid{Dim: d, P: p, Nodes1D: make([][]float64, d), weights1D: make([][]float64, d)}
	for j := 0; j < d; j++ {
		lo, hi := box.Min[j], box.Max[j]
		c := 0.5 * (lo + hi)
		h := 0.5 * (hi - lo)
		if h < minHalfWidth {
			h = minHalfWidth
		}
		nodes := make([]float64, p)
		w := make([]float64, p)
		for k := 0; k < p; k++ {
			theta := (2*float64(k) + 1) * math.Pi / (2 * float64(p))
			nodes[k] = c + h*math.Cos(theta)
			sign := 1.0
			if k%2 == 1 {
				sign = -1
			}
			w[k] = sign * math.Sin(theta)
		}
		g.Nodes1D[j] = nodes
		g.weights1D[j] = w
	}
	return g
}

// Point writes grid point k (0 <= k < Rank) into dst (length Dim). The
// index is decomposed with axis 0 fastest.
func (g *Grid) Point(k int, dst []float64) {
	for j := 0; j < g.Dim; j++ {
		dst[j] = g.Nodes1D[j][k%g.P]
		k /= g.P
	}
}

// Points returns all grid points as a point set (rank-many points).
func (g *Grid) Points() *pointset.Points {
	r := g.Rank()
	pts := pointset.New(r, g.Dim)
	for k := 0; k < r; k++ {
		g.Point(k, pts.At(k))
	}
	return pts
}

// lagrange1D evaluates all P Lagrange basis polynomials of axis j at x
// into out using the barycentric formula.
func (g *Grid) lagrange1D(j int, x float64, out []float64) {
	nodes := g.Nodes1D[j]
	w := g.weights1D[j]
	// Exact node hit: the basis is a Kronecker delta.
	for k, xk := range nodes {
		if x == xk {
			for i := range out {
				out[i] = 0
			}
			out[k] = 1
			return
		}
	}
	denom := 0.0
	for k := range nodes {
		out[k] = w[k] / (x - nodes[k])
		denom += out[k]
	}
	inv := 1 / denom
	for k := range out {
		out[k] *= inv
	}
}

// EvalBasisRow writes the rank-many tensor Lagrange basis values at point x
// into row (length Rank): row[k] = Π_j L_{k_j}(x_j).
func (g *Grid) EvalBasisRow(x []float64, row []float64, scratch []float64) {
	p, d := g.P, g.Dim
	// scratch holds the d*p one-dimensional basis values.
	for j := 0; j < d; j++ {
		g.lagrange1D(j, x[j], scratch[j*p:(j+1)*p])
	}
	r := len(row)
	for k := 0; k < r; k++ {
		v := 1.0
		idx := k
		for j := 0; j < d; j++ {
			v *= scratch[j*p+idx%p]
			idx /= p
		}
		row[k] = v
	}
}

// BasisMatrix returns the len(idx)-by-Rank matrix of tensor Lagrange basis
// values for the selected points of pts: row a holds the basis evaluated at
// pts.At(idx[a]). This is the interpolation construction's U (leaf) matrix.
func (g *Grid) BasisMatrix(pts *pointset.Points, idx []int) *mat.Dense {
	r := g.Rank()
	out := mat.NewDense(len(idx), r)
	scratch := make([]float64, g.Dim*g.P)
	for a, i := range idx {
		g.EvalBasisRow(pts.At(i), out.Row(a), scratch)
	}
	return out
}

// TransferMatrix returns the child-to-parent transfer block: the
// childRank-by-parentRank matrix of the parent grid's basis polynomials
// evaluated at the child's grid points. Because both grids use the same
// per-axis degree, re-interpolating the parent polynomials on the child
// grid is exact, which preserves the nested-basis property exactly.
func TransferMatrix(parent, child *Grid) *mat.Dense {
	cr := child.Rank()
	pr := parent.Rank()
	out := mat.NewDense(cr, pr)
	x := make([]float64, child.Dim)
	scratch := make([]float64, parent.Dim*parent.P)
	for k := 0; k < cr; k++ {
		child.Point(k, x)
		parent.EvalBasisRow(x, out.Row(k), scratch)
	}
	return out
}

// PFromTol returns the points-per-direction p for a requested relative
// tolerance, calibrated for the library's default separation parameter
// η = 0.7 on smooth radial kernels (see EXPERIMENTS.md for the calibration
// sweep). The interpolation error decays geometrically in p — roughly one
// decimal digit per added point per direction at this separation — so p
// grows with log10(1/tol) and is independent of the dimension; the
// dimension enters through the rank p^d instead.
func PFromTol(tol float64) int {
	if tol <= 0 {
		tol = 1e-8
	}
	p := int(math.Ceil(-math.Log10(tol))) + 1
	if p < 2 {
		p = 2
	}
	if p > 14 {
		p = 14
	}
	return p
}
