package interp

import (
	"math"
	"math/rand"
	"testing"

	"h2ds/internal/kernel"
	"h2ds/internal/mat"
	"h2ds/internal/pointset"
)

func unitBox(d int) pointset.BBox {
	b := pointset.BBox{Min: make([]float64, d), Max: make([]float64, d)}
	for i := 0; i < d; i++ {
		b.Max[i] = 1
	}
	return b
}

func TestGridRankAndPoints(t *testing.T) {
	g := NewGrid(unitBox(3), 4)
	if g.Rank() != 64 {
		t.Fatalf("rank %d want 64", g.Rank())
	}
	pts := g.Points()
	if pts.Len() != 64 {
		t.Fatalf("points %d", pts.Len())
	}
	for i := 0; i < pts.Len(); i++ {
		for _, v := range pts.At(i) {
			if v < 0 || v > 1 {
				t.Fatalf("grid point outside box: %g", v)
			}
		}
	}
	// Nodes along each axis are distinct and interior.
	for j := 0; j < 3; j++ {
		seen := map[float64]bool{}
		for _, v := range g.Nodes1D[j] {
			if seen[v] {
				t.Fatal("duplicate 1-D node")
			}
			seen[v] = true
		}
	}
}

func TestLagrangeCardinality(t *testing.T) {
	// Basis evaluated exactly at grid point k must be the unit vector e_k.
	g := NewGrid(unitBox(2), 5)
	r := g.Rank()
	x := make([]float64, 2)
	row := make([]float64, r)
	scratch := make([]float64, 2*5)
	for k := 0; k < r; k++ {
		g.Point(k, x)
		g.EvalBasisRow(x, row, scratch)
		for j := 0; j < r; j++ {
			want := 0.0
			if j == k {
				want = 1
			}
			if math.Abs(row[j]-want) > 1e-12 {
				t.Fatalf("basis at node %d: entry %d = %g want %g", k, j, row[j], want)
			}
		}
	}
}

func TestPartitionOfUnity(t *testing.T) {
	// Lagrange bases sum to one at any point (interpolation of f ≡ 1 is
	// exact).
	g := NewGrid(unitBox(3), 6)
	rng := rand.New(rand.NewSource(1))
	row := make([]float64, g.Rank())
	scratch := make([]float64, 3*6)
	for trial := 0; trial < 20; trial++ {
		x := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		g.EvalBasisRow(x, row, scratch)
		s := 0.0
		for _, v := range row {
			s += v
		}
		if math.Abs(s-1) > 1e-11 {
			t.Fatalf("partition of unity violated: sum %g", s)
		}
	}
}

func TestPolynomialExactness(t *testing.T) {
	// Interpolation with p points per direction reproduces polynomials of
	// per-axis degree < p exactly: f(x,y) = x²y - 3x + 2y² with p = 3.
	f := func(x []float64) float64 { return x[0]*x[0]*x[1] - 3*x[0] + 2*x[1]*x[1] }
	g := NewGrid(unitBox(2), 3)
	gp := g.Points()
	fvals := make([]float64, gp.Len())
	for i := range fvals {
		fvals[i] = f(gp.At(i))
	}
	rng := rand.New(rand.NewSource(2))
	row := make([]float64, g.Rank())
	scratch := make([]float64, 2*3)
	for trial := 0; trial < 20; trial++ {
		x := []float64{rng.Float64(), rng.Float64()}
		g.EvalBasisRow(x, row, scratch)
		got := mat.Dot(row, fvals)
		if math.Abs(got-f(x)) > 1e-12 {
			t.Fatalf("polynomial not reproduced: got %g want %g", got, f(x))
		}
	}
}

func TestInterpolationErrorDecay(t *testing.T) {
	// Interpolating the Coulomb kernel between two well-separated boxes:
	// the error must drop geometrically as p grows.
	src := unitBox(3)
	// Target point drawn from the box [3,4]x[0,1]x[0,1], well separated
	// from the source box.
	k := kernel.Coulomb{}
	rng := rand.New(rand.NewSource(3))
	y := []float64{3 + rng.Float64(), rng.Float64(), rng.Float64()}
	prevErr := math.Inf(1)
	for _, p := range []int{2, 4, 6, 8} {
		g := NewGrid(src, p)
		gp := g.Points()
		kv := make([]float64, gp.Len())
		for i := range kv {
			kv[i] = kernel.Eval(k, gp.At(i), y)
		}
		row := make([]float64, g.Rank())
		scratch := make([]float64, 3*p)
		maxErr := 0.0
		for trial := 0; trial < 30; trial++ {
			x := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
			g.EvalBasisRow(x, row, scratch)
			got := mat.Dot(row, kv)
			want := kernel.Eval(k, x, y)
			if e := math.Abs(got-want) / math.Abs(want); e > maxErr {
				maxErr = e
			}
		}
		if maxErr > prevErr {
			t.Fatalf("p=%d: error %g did not decrease from %g", p, maxErr, prevErr)
		}
		prevErr = maxErr
	}
	if prevErr > 1e-6 {
		t.Fatalf("p=8 error %g too large for well-separated boxes", prevErr)
	}
}

func TestTransferMatrixExactness(t *testing.T) {
	// Nested-basis identity: evaluating the parent basis directly at a
	// point must equal (child basis at the point) * TransferMatrix, because
	// the child grid reproduces the parent polynomials exactly.
	parentBox := unitBox(2)
	childBox := pointset.BBox{Min: []float64{0, 0}, Max: []float64{0.5, 1}}
	p := 5
	gp := NewGrid(parentBox, p)
	gc := NewGrid(childBox, p)
	tm := TransferMatrix(gp, gc)
	if tm.Rows != gc.Rank() || tm.Cols != gp.Rank() {
		t.Fatalf("transfer shape %dx%d", tm.Rows, tm.Cols)
	}
	rng := rand.New(rand.NewSource(4))
	rowP := make([]float64, gp.Rank())
	rowC := make([]float64, gc.Rank())
	sp := make([]float64, 2*p)
	for trial := 0; trial < 15; trial++ {
		x := []float64{0.5 * rng.Float64(), rng.Float64()} // inside child box
		gp.EvalBasisRow(x, rowP, sp)
		gc.EvalBasisRow(x, rowC, sp)
		// rowP ?= rowC * tm
		for j := 0; j < gp.Rank(); j++ {
			s := 0.0
			for i := 0; i < gc.Rank(); i++ {
				s += rowC[i] * tm.At(i, j)
			}
			if math.Abs(s-rowP[j]) > 1e-10 {
				t.Fatalf("transfer identity broken at basis %d: %g vs %g", j, s, rowP[j])
			}
		}
	}
}

func TestBasisMatrix(t *testing.T) {
	g := NewGrid(unitBox(3), 3)
	pts := pointset.Cube(10, 3, 5)
	b := g.BasisMatrix(pts, []int{2, 7})
	if b.Rows != 2 || b.Cols != 27 {
		t.Fatalf("basis matrix shape %dx%d", b.Rows, b.Cols)
	}
	row := make([]float64, 27)
	scratch := make([]float64, 9)
	g.EvalBasisRow(pts.At(7), row, scratch)
	for j := range row {
		if b.At(1, j) != row[j] {
			t.Fatal("BasisMatrix row disagrees with EvalBasisRow")
		}
	}
}

func TestDegenerateBoxAxis(t *testing.T) {
	// A box with zero width along one axis (e.g. points on a plane) must
	// still produce finite, distinct nodes and finite basis values.
	box := pointset.BBox{Min: []float64{0, 0.5, 0}, Max: []float64{1, 0.5, 1}}
	g := NewGrid(box, 4)
	row := make([]float64, g.Rank())
	scratch := make([]float64, 3*4)
	g.EvalBasisRow([]float64{0.3, 0.5, 0.9}, row, scratch)
	for _, v := range row {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("degenerate axis produced non-finite basis value")
		}
	}
}

func TestPFromTol(t *testing.T) {
	if PFromTol(1e-2) >= PFromTol(1e-8) {
		t.Fatal("p must grow as tolerance tightens")
	}
	if PFromTol(0) != PFromTol(1e-8) {
		t.Fatal("tol<=0 must default to 1e-8")
	}
	if PFromTol(1) < 2 {
		t.Fatal("p floor violated")
	}
	if PFromTol(1e-300) > 14 {
		t.Fatal("p cap violated")
	}
}
