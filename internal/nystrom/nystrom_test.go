package nystrom

import (
	"math"
	"math/rand"
	"testing"

	"h2ds/internal/kernel"
	"h2ds/internal/pointset"
	"h2ds/internal/sample"
)

func TestNystromApproximatesSmoothKernel(t *testing.T) {
	// A wide Gaussian over a modest cloud is globally low rank — the
	// setting global Nyström is designed for.
	pts := pointset.Cube(600, 3, 1)
	k := kernel.Gaussian{Scale: 2.0}
	a, err := New(pts, k, Config{Rank: 60})
	if err != nil {
		t.Fatal(err)
	}
	if e := a.RelError(pts, k, []int{0, 100, 300, 599}); e > 1e-4 {
		t.Fatalf("relative error %g", e)
	}
}

func TestNystromErrorDecreasesWithRank(t *testing.T) {
	pts := pointset.Cube(500, 2, 2)
	k := kernel.Gaussian{Scale: 1.0}
	rows := []int{0, 99, 250, 499}
	// Note: beyond the kernel's effective rank the landmark Gram matrix is
	// numerically singular and the error plateaus at the regularization
	// floor (a well-known Nyström effect), so we only require a large
	// improvement from small to large rank, not monotonicity.
	errs := map[int]float64{}
	for _, r := range []int{10, 30, 80} {
		a, err := New(pts, k, Config{Rank: r})
		if err != nil {
			t.Fatal(err)
		}
		errs[r] = a.RelError(pts, k, rows)
	}
	if errs[80] > errs[10]/10 {
		t.Fatalf("rank 80 error %g not well below rank 10 error %g", errs[80], errs[10])
	}
	if errs[80] > 1e-3 {
		t.Fatalf("rank-80 error still %g", errs[80])
	}
}

func TestNystromApplyMatchesExplicit(t *testing.T) {
	pts := pointset.Cube(300, 3, 3)
	k := kernel.Exponential{}
	a, err := New(pts, k, Config{Rank: 40})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	b := make([]float64, 300)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	y := a.Apply(b)
	// Explicit C W Cᵀ b.
	tmp := make([]float64, a.C.Cols)
	for j := 0; j < a.C.Cols; j++ {
		s := 0.0
		for i := 0; i < 300; i++ {
			s += a.C.At(i, j) * b[i]
		}
		tmp[j] = s
	}
	tmp2 := make([]float64, a.C.Cols)
	for i := 0; i < a.W.Rows; i++ {
		s := 0.0
		for j := 0; j < a.W.Cols; j++ {
			s += a.W.At(i, j) * tmp[j]
		}
		tmp2[i] = s
	}
	for i := 0; i < 300; i++ {
		s := 0.0
		for j := 0; j < a.C.Cols; j++ {
			s += a.C.At(i, j) * tmp2[j]
		}
		if math.Abs(s-y[i]) > 1e-10*(1+math.Abs(s)) {
			t.Fatalf("apply mismatch at %d: %g vs %g", i, y[i], s)
		}
	}
}

func TestNystromSamplerComparison(t *testing.T) {
	// Sampler quality is workload dependent (geometric spread vs density
	// following); the contract here is that every included sampler yields
	// a usable approximation on a non-uniform cloud at equal rank.
	pts := pointset.Dino(800, 5)
	k := kernel.Gaussian{Scale: 1.0}
	rows := []int{0, 199, 400, 777}
	for _, s := range []sample.Sampler{sample.AnchorNet{}, sample.FarthestPoint{}, sample.Random{Seed: 9}} {
		a, err := New(pts, k, Config{Rank: 50, Sampler: s})
		if err != nil {
			t.Fatal(err)
		}
		e := a.RelError(pts, k, rows)
		t.Logf("%s: %.3e", s.Name(), e)
		if e > 1e-3 {
			t.Fatalf("%s: error %g too large at rank 50", s.Name(), e)
		}
	}
}

func TestNystromValidation(t *testing.T) {
	pts := pointset.Cube(50, 2, 6)
	if _, err := New(pointset.New(0, 2), kernel.Coulomb{}, Config{Rank: 5}); err == nil {
		t.Fatal("empty point set accepted")
	}
	if _, err := New(pts, kernel.Coulomb{}, Config{Rank: 0}); err == nil {
		t.Fatal("zero rank accepted")
	}
	a, err := New(pts, kernel.Coulomb{}, Config{Rank: 500})
	if err != nil {
		t.Fatal(err)
	}
	if a.Rank() > 50 {
		t.Fatalf("rank exceeds candidate count: %d", a.Rank())
	}
	if a.Bytes() <= 0 {
		t.Fatal("bytes must be positive")
	}
}

func TestNystromApplyShapePanics(t *testing.T) {
	pts := pointset.Cube(30, 2, 7)
	a, err := New(pts, kernel.Coulomb{}, Config{Rank: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.ApplyTo(make([]float64, 29), make([]float64, 30))
}
