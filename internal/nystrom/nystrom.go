// Package nystrom implements the global Nyström low-rank approximation
// (paper §II-A2, Williams & Seeger):
//
//	K(X, X) ≈ C W Cᵀ,  C = K(X, S),  W = (K(S, S) + ridge·I)⁺
//
// for a landmark subset S selected by any point sampler. It is the
// background method the paper's hierarchical construction builds on: the
// data-driven H² matrix can be seen as applying this idea blockwise with
// hierarchically shared landmark sets. The package exists both as a usable
// global low-rank approximator (effective when the kernel matrix is
// globally low rank, e.g. wide Gaussians) and as the reference point for
// sampler-quality comparisons.
package nystrom

import (
	"fmt"
	"math"

	"h2ds/internal/kernel"
	"h2ds/internal/mat"
	"h2ds/internal/pointset"
	"h2ds/internal/sample"
)

// Approx is a rank-|S| global Nyström approximation of a kernel matrix.
type Approx struct {
	// Landmarks holds the selected point indices S.
	Landmarks []int
	// C is the n-by-|S| cross matrix K(X, S).
	C *mat.Dense
	// W is the |S|-by-|S| regularized pseudo-inverse of K(S, S).
	W *mat.Dense
}

// Config tunes the approximation.
type Config struct {
	// Rank is the number of landmarks m (required, > 0).
	Rank int
	// Sampler selects the landmarks (nil = anchor net).
	Sampler sample.Sampler
	// Ridge regularizes the landmark Gram matrix before inversion
	// (0 = 1e-12 relative to its largest entry).
	Ridge float64
	// PInvTol truncates the pseudo-inverse spectrum (0 = machine default).
	PInvTol float64
}

// New builds a Nyström approximation of K over pts.
func New(pts *pointset.Points, k kernel.Pairwise, cfg Config) (*Approx, error) {
	n := pts.Len()
	if n == 0 {
		return nil, fmt.Errorf("nystrom: empty point set")
	}
	if cfg.Rank <= 0 {
		return nil, fmt.Errorf("nystrom: rank must be positive, got %d", cfg.Rank)
	}
	if cfg.Sampler == nil {
		cfg.Sampler = sample.AnchorNet{}
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	s := cfg.Sampler.Sample(pts, all, cfg.Rank)
	if len(s) == 0 {
		return nil, fmt.Errorf("nystrom: sampler returned no landmarks")
	}

	c := kernel.NewBlock(k, pts, all, pts, s)
	kss := kernel.NewBlock(k, pts, s, pts, s)
	ridge := cfg.Ridge
	if ridge <= 0 {
		ridge = 1e-12 * kss.MaxAbs()
	}
	for i := 0; i < kss.Rows; i++ {
		kss.Set(i, i, kss.At(i, i)+ridge)
	}
	w := mat.NewSVD(kss).PInv(cfg.PInvTol)
	return &Approx{Landmarks: s, C: c, W: w}, nil
}

// Rank returns the number of landmarks actually selected.
func (a *Approx) Rank() int { return len(a.Landmarks) }

// Apply computes y = C W Cᵀ b — the approximate kernel matvec in
// O(n·rank).
func (a *Approx) Apply(b []float64) []float64 {
	y := make([]float64, a.C.Rows)
	a.ApplyTo(y, b)
	return y
}

// ApplyTo computes y = C W Cᵀ b into y.
func (a *Approx) ApplyTo(y, b []float64) {
	if len(y) != a.C.Rows || len(b) != a.C.Rows {
		panic(fmt.Sprintf("nystrom: apply length mismatch y=%d b=%d n=%d", len(y), len(b), a.C.Rows))
	}
	t1 := make([]float64, a.C.Cols)
	mat.MulTVecAdd(t1, a.C, b)
	t2 := mat.MulVec(a.W, t1)
	for i := range y {
		y[i] = 0
	}
	mat.MulVecAdd(y, a.C, t2)
}

// RelError estimates the relative Frobenius error of the approximation on
// `rows` exact rows (dense evaluation; intended for moderate n).
func (a *Approx) RelError(pts *pointset.Points, k kernel.Pairwise, rows []int) float64 {
	n := pts.Len()
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	var num, den float64
	t1 := make([]float64, a.C.Cols)
	for _, i := range rows {
		exact := kernel.NewBlock(k, pts, []int{i}, pts, all)
		// Approximate row i: C[i,:] W Cᵀ.
		for j := range t1 {
			t1[j] = 0
		}
		ci := a.C.Row(i)
		wci := mat.MulVec(a.W.T(), ci)
		approx := make([]float64, n)
		mat.MulVecAdd(approx, a.C, wci)
		for j := 0; j < n; j++ {
			d := exact.At(0, j) - approx[j]
			num += d * d
			den += exact.At(0, j) * exact.At(0, j)
		}
	}
	if den == 0 {
		return 0
	}
	return math.Sqrt(num / den)
}

// Bytes returns the deterministic memory footprint of the factors.
func (a *Approx) Bytes() int64 {
	return int64(len(a.C.Data)+len(a.W.Data)+len(a.Landmarks))*8 + 48
}
