package tree

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"h2ds/internal/pointset"
)

func buildSmall(t *testing.T, pts *pointset.Points, leaf int) *Tree {
	t.Helper()
	tr := New(pts, Config{LeafSize: leaf, Workers: 2})
	if len(tr.Nodes) == 0 {
		t.Fatal("empty tree")
	}
	return tr
}

func TestPermIsPermutation(t *testing.T) {
	pts := pointset.Cube(137, 3, 1)
	tr := buildSmall(t, pts, 10)
	seen := make([]bool, 137)
	for _, p := range tr.Perm {
		if p < 0 || p >= 137 || seen[p] {
			t.Fatalf("bad perm entry %d", p)
		}
		seen[p] = true
	}
	for orig, k := range tr.InvPerm {
		if tr.Perm[k] != orig {
			t.Fatalf("InvPerm inconsistent at %d", orig)
		}
	}
	// Permuted coordinates match the original points.
	for k, orig := range tr.Perm {
		for j := 0; j < 3; j++ {
			if tr.Points.At(k)[j] != pts.At(orig)[j] {
				t.Fatalf("coordinates not permuted consistently at %d", k)
			}
		}
	}
}

func TestNodeRangesTile(t *testing.T) {
	tr := buildSmall(t, pointset.Cube(200, 2, 2), 16)
	root := tr.Nodes[0]
	if root.Start != 0 || root.End != 200 || root.Parent != -1 || root.Level != 0 {
		t.Fatalf("bad root %+v", root)
	}
	for i := range tr.Nodes {
		nd := &tr.Nodes[i]
		if nd.IsLeaf {
			if len(nd.Children) != 0 {
				t.Fatalf("leaf %d has children", i)
			}
			if nd.Size() > 16 || nd.Size() < 1 {
				t.Fatalf("leaf %d size %d", i, nd.Size())
			}
			continue
		}
		// Children exactly tile the parent range, in order.
		if len(nd.Children) != 2 {
			t.Fatalf("internal node %d has %d children", i, len(nd.Children))
		}
		c0, c1 := &tr.Nodes[nd.Children[0]], &tr.Nodes[nd.Children[1]]
		if c0.Start != nd.Start || c0.End != c1.Start || c1.End != nd.End {
			t.Fatalf("children of %d do not tile parent: [%d,%d) [%d,%d) vs [%d,%d)",
				i, c0.Start, c0.End, c1.Start, c1.End, nd.Start, nd.End)
		}
		if c0.Parent != i || c1.Parent != i || c0.Level != nd.Level+1 {
			t.Fatalf("child bookkeeping wrong for node %d", i)
		}
	}
}

func TestLevelsConsistent(t *testing.T) {
	tr := buildSmall(t, pointset.Sphere(300, 3), 20)
	count := 0
	for l, ids := range tr.Levels {
		for _, id := range ids {
			if tr.Nodes[id].Level != l {
				t.Fatalf("node %d in level list %d but has level %d", id, l, tr.Nodes[id].Level)
			}
			count++
		}
	}
	if count != len(tr.Nodes) {
		t.Fatalf("level lists cover %d of %d nodes", count, len(tr.Nodes))
	}
	if !sort.IntsAreSorted(tr.Leaves) {
		t.Fatal("leaf ids not ascending")
	}
}

func TestBBoxContainsOwnedPoints(t *testing.T) {
	tr := buildSmall(t, pointset.Dino(400, 4), 25)
	for i := range tr.Nodes {
		nd := &tr.Nodes[i]
		for k := nd.Start; k < nd.End; k++ {
			if !nd.Box.Contains(tr.Points.At(k)) {
				t.Fatalf("node %d box does not contain its point %d", i, k)
			}
		}
	}
}

func TestGeometricSplit(t *testing.T) {
	// After partitioning, the two children of each internal node must be
	// separated along the split axis: max coordinate of the left child must
	// not exceed min coordinate of the right child (median split).
	tr := buildSmall(t, pointset.Cube(500, 3, 9), 30)
	for i := range tr.Nodes {
		nd := &tr.Nodes[i]
		if nd.IsLeaf {
			continue
		}
		axis, _ := nd.Box.LongestAxis()
		c0, c1 := &tr.Nodes[nd.Children[0]], &tr.Nodes[nd.Children[1]]
		maxLeft := math.Inf(-1)
		for k := c0.Start; k < c0.End; k++ {
			if v := tr.Points.At(k)[axis]; v > maxLeft {
				maxLeft = v
			}
		}
		minRight := math.Inf(1)
		for k := c1.Start; k < c1.End; k++ {
			if v := tr.Points.At(k)[axis]; v < minRight {
				minRight = v
			}
		}
		if maxLeft > minRight {
			t.Fatalf("node %d split axis %d not separated: maxLeft %g > minRight %g", i, axis, maxLeft, minRight)
		}
	}
}

func TestAdmissibilityCriterion(t *testing.T) {
	tr := buildSmall(t, pointset.Cube(300, 3, 11), 20)
	for i := range tr.Nodes {
		for _, j := range tr.Nodes[i].Interaction {
			if !tr.Admissible(i, j) {
				t.Fatalf("interaction pair (%d,%d) not admissible", i, j)
			}
		}
	}
	for _, li := range tr.Leaves {
		for _, lj := range tr.Nodes[li].Near {
			if li != lj && tr.Admissible(li, lj) {
				t.Fatalf("nearfield pair (%d,%d) is admissible", li, lj)
			}
			if !tr.Nodes[lj].IsLeaf {
				t.Fatalf("nearfield partner %d of %d is not a leaf", lj, li)
			}
		}
	}
}

func TestInteractionSymmetry(t *testing.T) {
	tr := buildSmall(t, pointset.Annulus(350, 0.3, 1, 12), 15)
	inIL := func(i, j int) bool {
		for _, v := range tr.Nodes[i].Interaction {
			if v == j {
				return true
			}
		}
		return false
	}
	for i := range tr.Nodes {
		for _, j := range tr.Nodes[i].Interaction {
			if !inIL(j, i) {
				t.Fatalf("interaction list asymmetric: %d has %d but not vice versa", i, j)
			}
		}
	}
}

// TestBlockCoverageExact is the load-bearing structural invariant: every
// ordered pair of points must be covered by exactly one block — either a
// nearfield leaf pair or one interaction-list pair of ancestors.
func TestBlockCoverageExact(t *testing.T) {
	for _, gen := range []struct {
		name string
		pts  *pointset.Points
	}{
		{"cube3d", pointset.Cube(220, 3, 21)},
		{"sphere", pointset.Sphere(200, 22)},
		{"dino", pointset.Dino(210, 23)},
		{"cube5d", pointset.Cube(160, 5, 24)},
		{"line1d", pointset.Cube(64, 1, 25)},
	} {
		tr := New(gen.pts, Config{LeafSize: 12})
		n := gen.pts.Len()
		cover := make([]int8, n*n)
		mark := func(i, j int) {
			ni, nj := &tr.Nodes[i], &tr.Nodes[j]
			for p := ni.Start; p < ni.End; p++ {
				row := cover[p*n : p*n+n]
				for q := nj.Start; q < nj.End; q++ {
					row[q]++
				}
			}
		}
		for i := range tr.Nodes {
			for _, j := range tr.Nodes[i].Interaction {
				mark(i, j)
			}
		}
		for _, li := range tr.Leaves {
			for _, lj := range tr.Nodes[li].Near {
				mark(li, lj)
			}
		}
		for p := 0; p < n; p++ {
			for q := 0; q < n; q++ {
				if cover[p*n+q] != 1 {
					t.Fatalf("%s: pair (%d,%d) covered %d times", gen.name, p, q, cover[p*n+q])
				}
			}
		}
	}
}

func TestPermuteRoundTrip(t *testing.T) {
	pts := pointset.Cube(99, 3, 31)
	tr := buildSmall(t, pts, 8)
	rng := rand.New(rand.NewSource(1))
	src := make([]float64, 99)
	for i := range src {
		src[i] = rng.NormFloat64()
	}
	perm := make([]float64, 99)
	back := make([]float64, 99)
	tr.PermuteVec(perm, src)
	tr.UnpermuteVec(back, perm)
	for i := range src {
		if src[i] != back[i] {
			t.Fatalf("permute round trip broke at %d", i)
		}
	}
}

func TestSinglePointAndTinyTrees(t *testing.T) {
	tr := New(pointset.Cube(1, 3, 1), Config{LeafSize: 10})
	if len(tr.Nodes) != 1 || !tr.Nodes[0].IsLeaf {
		t.Fatal("single point should be a lone leaf root")
	}
	if len(tr.Nodes[0].Near) != 1 || tr.Nodes[0].Near[0] != 0 {
		t.Fatal("lone leaf must be its own nearfield")
	}
	tr2 := New(pointset.Cube(2, 3, 1), Config{LeafSize: 1})
	if tr2.Depth() != 2 {
		t.Fatalf("two points leaf 1: depth %d", tr2.Depth())
	}
}

func TestDuplicatePointsTerminate(t *testing.T) {
	// All points identical: recursion must still terminate by size.
	pts := pointset.New(50, 2)
	for i := 0; i < 50; i++ {
		pts.At(i)[0], pts.At(i)[1] = 0.5, 0.5
	}
	tr := New(pts, Config{LeafSize: 4})
	st := tr.ComputeStats()
	if st.MaxLeafSize > 4 {
		t.Fatalf("leaf size %d exceeds cap", st.MaxLeafSize)
	}
	if st.InteractionPairs != 0 {
		t.Fatal("identical points cannot be well-separated")
	}
}

func TestStatsAndBytes(t *testing.T) {
	tr := buildSmall(t, pointset.Cube(400, 3, 41), 32)
	st := tr.ComputeStats()
	if st.Nodes != len(tr.Nodes) || st.Leaves != len(tr.Leaves) || st.Depth != tr.Depth() {
		t.Fatal("stats mismatch")
	}
	if st.MaxLeafSize > 32 || st.MinLeafSize < 1 {
		t.Fatalf("leaf size stats wrong: %+v", st)
	}
	if tr.Bytes() <= tr.Points.Bytes() {
		t.Fatal("Bytes() must include metadata beyond coordinates")
	}
}

func TestEtaAffectsAdmissibility(t *testing.T) {
	pts := pointset.Cube(300, 3, 51)
	loose := New(pts, Config{LeafSize: 16, Eta: 1.2})
	tight := New(pts, Config{LeafSize: 16, Eta: 0.4})
	sl := loose.ComputeStats()
	st := tight.ComputeStats()
	if sl.NearPairs <= 0 || st.NearPairs <= 0 {
		t.Fatal("no nearfield pairs")
	}
	// A looser criterion admits more pairs, so fewer nearfield blocks.
	if sl.NearPairs >= st.NearPairs {
		t.Fatalf("eta=1.2 near pairs %d should be < eta=0.4 near pairs %d", sl.NearPairs, st.NearPairs)
	}
}

func TestDeterministicConstruction(t *testing.T) {
	pts := pointset.Dino(500, 61)
	a := New(pts, Config{LeafSize: 20, Workers: 1})
	b := New(pts, Config{LeafSize: 20, Workers: 4})
	if len(a.Nodes) != len(b.Nodes) {
		t.Fatal("node count depends on workers")
	}
	for i := range a.Perm {
		if a.Perm[i] != b.Perm[i] {
			t.Fatalf("permutation depends on worker count at %d", i)
		}
	}
	for i := range a.Nodes {
		if a.Nodes[i].Start != b.Nodes[i].Start || a.Nodes[i].End != b.Nodes[i].End {
			t.Fatalf("node %d range differs between worker counts", i)
		}
	}
}
