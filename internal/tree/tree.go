// Package tree builds the adaptive geometric partition tree underlying the
// hierarchical matrix: recursive median bisection along the longest
// bounding-box axis, per-level node lists for level-parallel sweeps, and the
// well-separation machinery (interaction lists and nearfield lists) from the
// paper's §III-A.
//
// Points are permuted during construction so every node owns a contiguous
// index range [Start, End) of the permuted ordering; all downstream vectors
// (matvec inputs/outputs) live in that permuted order, and Perm maps back to
// the caller's original ordering.
package tree

import (
	"fmt"
	"sort"

	"h2ds/internal/par"
	"h2ds/internal/pointset"
)

// DefaultLeafSize is the default maximum number of points per leaf; the
// paper notes leaf populations "on the order of hundreds".
const DefaultLeafSize = 200

// DefaultEta is the paper's well-separation parameter: nodes i and j are
// admissible when max(diam(Xi), diam(Xj)) < 0.7 * dist(centers).
const DefaultEta = 0.7

// Node is one cluster in the partition tree.
type Node struct {
	ID       int
	Parent   int // -1 for the root
	Children []int
	Level    int
	// Start and End delimit this node's contiguous slice of the permuted
	// point ordering.
	Start, End int
	Box        pointset.BBox
	IsLeaf     bool
	// Interaction is the interaction list: admissible nodes whose parents
	// were not admissible with this node's ancestors (the farfield blocks
	// represented at this node).
	Interaction []int
	// Near lists the inadmissible leaf partners (only populated on leaves);
	// it always includes the leaf itself.
	Near []int
}

// Size returns the number of points owned by the node.
func (nd *Node) Size() int { return nd.End - nd.Start }

// Config controls tree construction.
type Config struct {
	// LeafSize is the maximum number of points in a leaf (0 = default).
	LeafSize int
	// Eta is the separation parameter (0 = default 0.7).
	Eta float64
	// Workers bounds construction parallelism (0 = GOMAXPROCS).
	Workers int
}

// Tree is the partition hierarchy over a (permuted) point set.
type Tree struct {
	// Points holds the permuted points; Points.At(k) is original point
	// Perm[k].
	Points *pointset.Points
	// Perm maps permuted position -> original index.
	Perm []int
	// InvPerm maps original index -> permuted position.
	InvPerm []int
	Nodes   []Node
	// Levels[l] lists the node ids at depth l, in id order.
	Levels [][]int
	// Leaves lists all leaf node ids.
	Leaves   []int
	LeafSize int
	Eta      float64
}

// New partitions pts (which is copied, not modified) and computes the
// interaction and nearfield lists.
func New(pts *pointset.Points, cfg Config) *Tree {
	if cfg.LeafSize <= 0 {
		cfg.LeafSize = DefaultLeafSize
	}
	if cfg.Eta <= 0 {
		cfg.Eta = DefaultEta
	}
	n := pts.Len()
	t := &Tree{
		Points:   &pointset.Points{Dim: pts.Dim, Coords: append([]float64(nil), pts.Coords...)},
		Perm:     make([]int, n),
		InvPerm:  make([]int, n),
		LeafSize: cfg.LeafSize,
		Eta:      cfg.Eta,
	}
	for i := range t.Perm {
		t.Perm[i] = i
	}

	t.buildStructure(n)
	t.partitionLevels(cfg.Workers)
	for k, orig := range t.Perm {
		t.InvPerm[orig] = k
	}
	t.buildLists()
	return t
}

// buildStructure allocates the node hierarchy. The tree shape (ranges,
// parents, levels) depends only on n and LeafSize because the split point is
// always the range midpoint; which points land where is decided later by the
// geometric partitioning pass.
func (t *Tree) buildStructure(n int) {
	type job struct{ start, end, level, parent int }
	queue := []job{{0, n, 0, -1}}
	for len(queue) > 0 {
		j := queue[0]
		queue = queue[1:]
		id := len(t.Nodes)
		nd := Node{
			ID:     id,
			Parent: j.parent,
			Level:  j.level,
			Start:  j.start,
			End:    j.end,
			IsLeaf: j.end-j.start <= t.LeafSize,
		}
		if j.parent >= 0 {
			t.Nodes[j.parent].Children = append(t.Nodes[j.parent].Children, id)
		}
		for len(t.Levels) <= j.level {
			t.Levels = append(t.Levels, nil)
		}
		t.Levels[j.level] = append(t.Levels[j.level], id)
		if !nd.IsLeaf {
			mid := (j.start + j.end) / 2
			queue = append(queue,
				job{j.start, mid, j.level + 1, id},
				job{mid, j.end, j.level + 1, id})
		} else {
			t.Leaves = append(t.Leaves, id)
		}
		t.Nodes = append(t.Nodes, nd)
	}
	// The BFS above appended children out of id order relative to Leaves
	// discovery; Leaves is already ascending because ids are assigned in BFS
	// order. Nothing further to fix up.
}

// partitionLevels settles the point permutation level by level: once a
// node's parent has partitioned its range, the node computes its bounding
// box and, if internal, splits its own range at the median of the longest
// box axis. Nodes on a level are independent (disjoint ranges), which gives
// the level-parallel construction the paper describes.
func (t *Tree) partitionLevels(workers int) {
	for _, level := range t.Levels {
		level := level
		par.For(workers, len(level), func(k int) {
			nd := &t.Nodes[level[k]]
			nd.Box = t.rangeBBox(nd.Start, nd.End)
			if nd.IsLeaf {
				return
			}
			axis, _ := nd.Box.LongestAxis()
			mid := (nd.Start + nd.End) / 2
			t.selectNth(nd.Start, nd.End, mid, axis)
		})
	}
}

func (t *Tree) rangeBBox(start, end int) pointset.BBox {
	d := t.Points.Dim
	b := pointset.BBox{Min: make([]float64, d), Max: make([]float64, d)}
	if start >= end {
		return b
	}
	copy(b.Min, t.Points.At(start))
	copy(b.Max, t.Points.At(start))
	for i := start + 1; i < end; i++ {
		x := t.Points.At(i)
		for j, v := range x {
			if v < b.Min[j] {
				b.Min[j] = v
			}
			if v > b.Max[j] {
				b.Max[j] = v
			}
		}
	}
	return b
}

// swapPoints exchanges permuted positions a and b (coordinates and perm).
func (t *Tree) swapPoints(a, b int) {
	if a == b {
		return
	}
	d := t.Points.Dim
	pa := t.Points.Coords[a*d : a*d+d]
	pb := t.Points.Coords[b*d : b*d+d]
	for j := 0; j < d; j++ {
		pa[j], pb[j] = pb[j], pa[j]
	}
	t.Perm[a], t.Perm[b] = t.Perm[b], t.Perm[a]
}

// coord returns the axis coordinate of permuted point i.
func (t *Tree) coord(i, axis int) float64 {
	return t.Points.Coords[i*t.Points.Dim+axis]
}

// selectNth partially sorts [start, end) along axis so that position nth
// holds the element of rank nth-start and everything below/above it is on
// the correct side (Hoare quickselect with median-of-three pivoting).
func (t *Tree) selectNth(start, end, nth, axis int) {
	lo, hi := start, end-1
	for lo < hi {
		// Median-of-three pivot.
		mid := lo + (hi-lo)/2
		a, b, c := t.coord(lo, axis), t.coord(mid, axis), t.coord(hi, axis)
		var pivot float64
		switch {
		case (a <= b && b <= c) || (c <= b && b <= a):
			pivot = b
		case (b <= a && a <= c) || (c <= a && a <= b):
			pivot = a
		default:
			pivot = c
		}
		i, j := lo, hi
		for i <= j {
			for t.coord(i, axis) < pivot {
				i++
			}
			for t.coord(j, axis) > pivot {
				j--
			}
			if i <= j {
				t.swapPoints(i, j)
				i++
				j--
			}
		}
		switch {
		case nth <= j:
			hi = j
		case nth >= i:
			lo = i
		default:
			return
		}
	}
}

// Admissible reports whether nodes i and j satisfy the paper's
// well-separation criterion: max diameter strictly less than Eta times the
// distance between the box centers.
func (t *Tree) Admissible(i, j int) bool {
	ni, nj := &t.Nodes[i], &t.Nodes[j]
	di := ni.Box.Diameter()
	if dj := nj.Box.Diameter(); dj > di {
		di = dj
	}
	dist := pointset.Dist(ni.Box.Center(), nj.Box.Center())
	return di < t.Eta*dist
}

// buildLists performs the recursive dual traversal from (root, root)
// described in §III-A, filling interaction lists and nearfield lists.
func (t *Tree) buildLists() {
	if len(t.Nodes) == 0 {
		return
	}
	var visit func(i, j int)
	visit = func(i, j int) {
		ni, nj := &t.Nodes[i], &t.Nodes[j]
		if i == j {
			if ni.IsLeaf {
				ni.Near = append(ni.Near, i)
				return
			}
			ch := ni.Children
			for a := 0; a < len(ch); a++ {
				for b := a; b < len(ch); b++ {
					visit(ch[a], ch[b])
				}
			}
			return
		}
		if t.Admissible(i, j) {
			ni.Interaction = append(ni.Interaction, j)
			nj.Interaction = append(nj.Interaction, i)
			return
		}
		switch {
		case ni.IsLeaf && nj.IsLeaf:
			ni.Near = append(ni.Near, j)
			nj.Near = append(nj.Near, i)
		case ni.IsLeaf:
			for _, c := range nj.Children {
				visit(i, c)
			}
		case nj.IsLeaf:
			for _, c := range ni.Children {
				visit(c, j)
			}
		case ni.Box.Diameter() >= nj.Box.Diameter():
			for _, c := range ni.Children {
				visit(c, j)
			}
		default:
			for _, c := range nj.Children {
				visit(i, c)
			}
		}
	}
	visit(0, 0)
}

// Root returns the root node id (always 0).
func (t *Tree) Root() int { return 0 }

// Cut returns the subtree cut at the given depth: every node at exactly
// that level plus every shallower leaf, ordered by point range. The cut is a
// partition of [0, n) — each point belongs to exactly one cut node — which
// is what makes it usable as a shard boundary for distributed sweeps.
func (t *Tree) Cut(level int) []int {
	var cut []int
	for i := range t.Nodes {
		nd := &t.Nodes[i]
		if nd.Level == level || (nd.IsLeaf && nd.Level < level) {
			cut = append(cut, nd.ID)
		}
	}
	sort.Slice(cut, func(a, b int) bool { return t.Nodes[cut[a]].Start < t.Nodes[cut[b]].Start })
	return cut
}

// Subtree returns root and all of its descendants in ascending id order.
func (t *Tree) Subtree(root int) []int {
	ids := []int{root}
	for k := 0; k < len(ids); k++ {
		ids = append(ids, t.Nodes[ids[k]].Children...)
	}
	sort.Ints(ids)
	return ids
}

// Depth returns the number of levels.
func (t *Tree) Depth() int { return len(t.Levels) }

// PermuteVec scatters a vector given in original point order into permuted
// order (dst[k] = src[Perm[k]]). dst must have the same length as src.
func (t *Tree) PermuteVec(dst, src []float64) {
	if len(dst) != len(src) || len(src) != len(t.Perm) {
		panic(fmt.Sprintf("tree: permute length mismatch %d %d %d", len(dst), len(src), len(t.Perm)))
	}
	for k, orig := range t.Perm {
		dst[k] = src[orig]
	}
}

// UnpermuteVec gathers a permuted-order vector back to original order
// (dst[Perm[k]] = src[k]).
func (t *Tree) UnpermuteVec(dst, src []float64) {
	if len(dst) != len(src) || len(src) != len(t.Perm) {
		panic(fmt.Sprintf("tree: unpermute length mismatch %d %d %d", len(dst), len(src), len(t.Perm)))
	}
	for k, orig := range t.Perm {
		dst[orig] = src[k]
	}
}

// Stats summarizes the tree for diagnostics and the bench harness.
type Stats struct {
	Nodes, Leaves, Depth     int
	MaxLeafSize, MinLeafSize int
	InteractionPairs         int // directed interaction-list entries
	NearPairs                int // directed nearfield entries (incl. self)
}

// ComputeStats walks the tree and returns summary statistics.
func (t *Tree) ComputeStats() Stats {
	s := Stats{Nodes: len(t.Nodes), Leaves: len(t.Leaves), Depth: t.Depth(), MinLeafSize: 1 << 30}
	for _, id := range t.Leaves {
		sz := t.Nodes[id].Size()
		if sz > s.MaxLeafSize {
			s.MaxLeafSize = sz
		}
		if sz < s.MinLeafSize {
			s.MinLeafSize = sz
		}
		s.NearPairs += len(t.Nodes[id].Near)
	}
	for i := range t.Nodes {
		s.InteractionPairs += len(t.Nodes[i].Interaction)
	}
	if s.Leaves == 0 {
		s.MinLeafSize = 0
	}
	return s
}

// Bytes returns the approximate memory footprint of the tree metadata
// (nodes, lists, permutations, boxes) plus the permuted coordinates; used by
// the deterministic memory accounting.
func (t *Tree) Bytes() int64 {
	var b int64
	b += t.Points.Bytes()
	b += int64(len(t.Perm)+len(t.InvPerm)) * 8
	for i := range t.Nodes {
		nd := &t.Nodes[i]
		b += 64 // fixed fields
		b += int64(len(nd.Children)+len(nd.Interaction)+len(nd.Near)) * 8
		b += int64(len(nd.Box.Min)+len(nd.Box.Max)) * 8
	}
	for _, l := range t.Levels {
		b += int64(len(l)) * 8
	}
	b += int64(len(t.Leaves)) * 8
	return b
}
