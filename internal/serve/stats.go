package serve

import (
	"context"
	"errors"
	"math/bits"
	"sync/atomic"
	"time"
)

// hist is a lock-free log₂-bucketed histogram. Bucket i counts observations
// v with 2^i <= v < 2^(i+1) (bucket 0 additionally absorbs v <= 1), so 32
// buckets cover any duration the service can plausibly see at microsecond
// resolution. Writers only Add; Snapshot reads are approximate under
// concurrent traffic, which is fine for monitoring.
type hist struct {
	buckets [32]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

// observe records one value in native units (>= 0).
func (h *hist) observe(v int64) {
	b := 0
	if v > 1 {
		b = bits.Len64(uint64(v)) - 1
	}
	if b >= len(h.buckets) {
		b = len(h.buckets) - 1
	}
	h.buckets[b].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// observeDur records a duration in microseconds.
func (h *hist) observeDur(d time.Duration) {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	h.observe(us)
}

// HistSnapshot is a point-in-time summary of one histogram. Values are in
// the histogram's native units (microseconds for the latency histograms,
// requests for the batch-occupancy histogram). Quantiles are upper bounds of
// the log₂ bucket containing the quantile, so they are accurate to within a
// factor of two.
type HistSnapshot struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P99   int64   `json:"p99"`
	Max   int64   `json:"max"`
}

// quantile returns the upper bound of the bucket holding quantile q given
// the total count; counts is a consistent-enough copy of the buckets.
func quantile(counts *[32]int64, total int64, q float64) int64 {
	if total == 0 {
		return 0
	}
	target := int64(q * float64(total))
	if target < 1 {
		target = 1
	}
	var seen int64
	for i, c := range counts {
		seen += c
		if seen >= target {
			return int64(1) << uint(i+1)
		}
	}
	return int64(1) << 32
}

func (h *hist) snapshot() HistSnapshot {
	var counts [32]int64
	var total int64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	s := HistSnapshot{
		Count: total,
		P50:   quantile(&counts, total, 0.50),
		P99:   quantile(&counts, total, 0.99),
		Max:   h.max.Load(),
	}
	if total > 0 {
		s.Mean = float64(h.sum.Load()) / float64(total)
	}
	return s
}

// stats is the Batcher's internal instrumentation: pure atomics on the hot
// path, aggregated into a Stats value on demand.
type stats struct {
	submitted atomic.Int64
	served    atomic.Int64
	batches   atomic.Int64
	pending   atomic.Int64 // admitted but not yet answered (queued or packed)

	dropQueueFull atomic.Int64
	dropDeadline  atomic.Int64
	dropCanceled  atomic.Int64
	dropClosed    atomic.Int64

	shardPartials atomic.Int64 // sharded-apply partial sweeps served
	gathers       atomic.Int64 // sharded-apply gather merges completed

	occupancy hist // requests per flushed batch
	queueWait hist // µs from enqueue to pack
	flushLat  hist // µs for one ApplyBatchTo flush
}

// drop classifies a context error into the deadline/cancel counters.
func (st *stats) drop(err error) {
	if errors.Is(err, context.DeadlineExceeded) {
		st.dropDeadline.Add(1)
		return
	}
	st.dropCanceled.Add(1)
}

// Stats is a point-in-time snapshot of the Batcher's counters. Drops by
// cause: QueueFull (fast-fail backpressure), Deadline and Canceled (request
// context expired before its slot was packed into a batch, or while
// blocking for queue space), Closed (arrived after Close).
type Stats struct {
	Submitted int64 `json:"submitted"` // requests accepted into the queue
	Served    int64 `json:"served"`    // requests whose result was computed
	Batches   int64 `json:"batches"`   // flushes executed

	DroppedQueueFull int64 `json:"dropped_queue_full"`
	DroppedDeadline  int64 `json:"dropped_deadline"`
	DroppedCanceled  int64 `json:"dropped_canceled"`
	DroppedClosed    int64 `json:"dropped_closed"`

	QueueDepth int   `json:"queue_depth"` // requests queued but not yet claimed by the dispatcher
	Pending    int64 `json:"pending"`     // requests admitted but not yet answered (queued or packed)

	ShardPartials int64 `json:"shard_partials,omitempty"` // cluster scatter partial sweeps served
	Gathers       int64 `json:"gathers,omitempty"`        // cluster gather merges completed

	BatchOccupancy HistSnapshot `json:"batch_occupancy"` // requests per batch
	QueueWaitUS    HistSnapshot `json:"queue_wait_us"`   // enqueue → pack
	FlushUS        HistSnapshot `json:"flush_us"`        // one batched apply
}

// Stats returns a snapshot of the batcher's counters and histograms. It is
// safe to call concurrently with traffic; the snapshot is approximate under
// load (counters are read individually, not atomically as a set).
func (s *Batcher) Stats() Stats {
	return Stats{
		Submitted:        s.st.submitted.Load(),
		Served:           s.st.served.Load(),
		Batches:          s.st.batches.Load(),
		DroppedQueueFull: s.st.dropQueueFull.Load(),
		DroppedDeadline:  s.st.dropDeadline.Load(),
		DroppedCanceled:  s.st.dropCanceled.Load(),
		DroppedClosed:    s.st.dropClosed.Load(),
		QueueDepth:       len(s.submit),
		Pending:          s.st.pending.Load(),
		ShardPartials:    s.st.shardPartials.Load(),
		Gathers:          s.st.gathers.Load(),
		BatchOccupancy:   s.st.occupancy.snapshot(),
		QueueWaitUS:      s.st.queueWait.snapshot(),
		FlushUS:          s.st.flushLat.snapshot(),
	}
}
