// Package serve turns the batched multi-RHS matvec into a request-level
// service primitive: a Batcher owns one frozen *core.Matrix, accepts
// concurrent Apply calls, and coalesces independent requests into single
// ApplyBatchTo flushes. Batching independent traffic over the shared
// hierarchical structure is the same locality lever the five-sweep batch
// path exploits per block — every coupling/nearfield block (in on-the-fly
// mode, every kernel tile assembly) is visited once per flush instead of
// once per request — lifted from the solver level to the serving level.
//
// Lifecycle: NewBatcher starts a dispatcher goroutine and a pool of flush
// workers. Apply enqueues a request into a bounded queue; the dispatcher
// packs pending requests into batches of at most MaxBatch, flushing early
// when a FlushWindow timer (armed at the batch's first request) expires.
// Close drains: every request admitted before Close is flushed and answered
// before Close returns.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"h2ds/internal/core"
	"h2ds/internal/mat"
)

var (
	// ErrQueueFull is returned by Apply in fast-fail mode (Config.Block
	// false) when the submission queue is at QueueLimit.
	ErrQueueFull = errors.New("serve: queue full")
	// ErrClosed is returned by Apply after Close has been called.
	ErrClosed = errors.New("serve: batcher closed")
)

// Config tunes a Batcher. The zero value is usable: every field has a
// sensible default applied by NewBatcher.
type Config struct {
	// MaxBatch is the flush width: a batch is dispatched as soon as this
	// many requests are pending (default 16). Larger widths amortize block
	// visits further but add queueing latency under light load.
	MaxBatch int

	// FlushWindow bounds the extra latency batching may add: a partial
	// batch is flushed this long after its first request arrived (default
	// 500µs).
	FlushWindow time.Duration

	// QueueLimit bounds requests that are enqueued but not yet claimed by
	// the dispatcher (default 4×MaxBatch). At the limit, Apply either
	// fast-fails with ErrQueueFull or blocks, per Block.
	QueueLimit int

	// Block selects the backpressure mode at QueueLimit: false (default)
	// fast-fails with ErrQueueFull so callers can shed load; true blocks
	// the caller until space frees or its context expires.
	Block bool

	// Flushers is the number of flush workers executing batches
	// concurrently (default 2). Each worker owns one core.Workspace reused
	// across flushes, so steady-state flushing does not allocate workspace
	// buffers.
	Flushers int
}

// withDefaults resolves zero fields.
func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 16
	}
	if c.FlushWindow <= 0 {
		c.FlushWindow = 500 * time.Microsecond
	}
	if c.QueueLimit <= 0 {
		c.QueueLimit = 4 * c.MaxBatch
	}
	if c.Flushers <= 0 {
		c.Flushers = 2
	}
	return c
}

// request is one in-flight Apply call.
type request struct {
	ctx      context.Context
	b        []float64
	enqueued time.Time
	done     chan result // buffered: a flush never blocks on an abandoned caller
}

type result struct {
	y   []float64
	err error
}

// Batcher coalesces concurrent matvec requests against one H² matrix into
// batched applies. All methods are safe for concurrent use.
type Batcher struct {
	m   *core.Matrix
	cfg Config

	// mu serializes admissions against Close: Apply holds the read side
	// from the closed check through the enqueue, so once Close's write lock
	// is acquired every admitted request is already in submit and the drain
	// below is complete.
	mu     sync.RWMutex
	closed bool

	submit  chan *request   // bounded admission queue (cap QueueLimit)
	flushCh chan []*request // dispatcher → flush workers (unbuffered)
	stopCh  chan struct{}   // closed by Close: dispatcher drains and exits
	doneCh  chan struct{}   // closed when the dispatcher has exited

	workers sync.WaitGroup

	st stats

	// testHookBeforeFlush, when non-nil, runs in the flush worker before a
	// batch is packed. Tests use it to stall the pipeline deterministically.
	testHookBeforeFlush func()
}

// NewBatcher starts a batching service over m. The matrix must be fully
// built (frozen); the Batcher never mutates it. Call Close to release the
// dispatcher and flush workers.
func NewBatcher(m *core.Matrix, cfg Config) *Batcher {
	cfg = cfg.withDefaults()
	s := &Batcher{
		m:       m,
		cfg:     cfg,
		submit:  make(chan *request, cfg.QueueLimit),
		flushCh: make(chan []*request),
		stopCh:  make(chan struct{}),
		doneCh:  make(chan struct{}),
	}
	s.workers.Add(cfg.Flushers)
	for i := 0; i < cfg.Flushers; i++ {
		go s.flushWorker()
	}
	go s.dispatch()
	return s
}

// Matrix returns the matrix the batcher serves.
func (s *Batcher) Matrix() *core.Matrix { return s.m }

// Apply computes y = Â b, coalescing the request with concurrent callers
// into one batched product. b must have length N and must not be modified
// until Apply returns; the returned slice is freshly allocated and owned by
// the caller.
//
// Deadline semantics: a request whose context expires while it waits in the
// queue is dropped at pack time — before its slot is packed into a batch,
// never after — and Apply returns ctx.Err(). Once packed, the product is
// computed even if the caller has gone; the caller still returns promptly
// with ctx.Err() and the result is discarded.
func (s *Batcher) Apply(ctx context.Context, b []float64) ([]float64, error) {
	if len(b) != s.m.N {
		return nil, fmt.Errorf("serve: apply length %d, matrix has n=%d", len(b), s.m.N)
	}
	req := &request{ctx: ctx, b: b, enqueued: time.Now(), done: make(chan result, 1)}

	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		s.st.dropClosed.Add(1)
		return nil, ErrClosed
	}
	if s.cfg.Block {
		select {
		case s.submit <- req:
		case <-ctx.Done():
			s.mu.RUnlock()
			s.st.drop(ctx.Err())
			return nil, ctx.Err()
		}
	} else {
		select {
		case s.submit <- req:
		default:
			s.mu.RUnlock()
			s.st.dropQueueFull.Add(1)
			return nil, ErrQueueFull
		}
	}
	s.st.submitted.Add(1)
	s.st.pending.Add(1)
	s.mu.RUnlock()

	select {
	case res := <-req.done:
		return res.y, res.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Close stops admissions, flushes every already-admitted request, waits for
// the flush workers to finish, and returns. It is idempotent; concurrent
// calls all return after the drain completes.
func (s *Batcher) Close() {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	s.mu.Unlock()
	if !already {
		close(s.stopCh)
	}
	<-s.doneCh
	s.workers.Wait()
}

// dispatch is the single consumer of the submission queue: it groups
// requests into batches of at most MaxBatch and hands them to the flush
// workers. A batch is dispatched when it is full or when FlushWindow has
// elapsed since its first request.
func (s *Batcher) dispatch() {
	defer close(s.doneCh)
	defer close(s.flushCh)
	for {
		var first *request
		select {
		case first = <-s.submit:
		case <-s.stopCh:
			s.drain(nil)
			return
		}
		batch := append(make([]*request, 0, s.cfg.MaxBatch), first)
		timer := time.NewTimer(s.cfg.FlushWindow)
	collect:
		for len(batch) < s.cfg.MaxBatch {
			select {
			case r := <-s.submit:
				batch = append(batch, r)
			case <-timer.C:
				break collect
			case <-s.stopCh:
				timer.Stop()
				s.drain(batch)
				return
			}
		}
		timer.Stop()
		s.flushCh <- batch
	}
}

// drain runs after Close: by the time stopCh is closed, every admitted
// request is already in submit (Close's write lock waits out in-flight
// admissions), so a non-blocking sweep flushes exactly the remaining work.
func (s *Batcher) drain(batch []*request) {
	for {
		select {
		case r := <-s.submit:
			batch = append(batch, r)
			if len(batch) == s.cfg.MaxBatch {
				s.flushCh <- batch
				batch = make([]*request, 0, s.cfg.MaxBatch)
			}
		default:
			if len(batch) > 0 {
				s.flushCh <- batch
			}
			return
		}
	}
}

// answer delivers one result and retires the request from the pending
// gauge. Every admitted request is answered exactly once, here.
func (s *Batcher) answer(r *request, res result) {
	s.st.pending.Add(-1)
	r.done <- res
}

// flushWorker executes batches. Each worker owns one workspace and one pair
// of batch matrices for its lifetime, so steady-state flushes reuse every
// buffer. Requests whose context has expired are dropped here, at pack
// time; live requests are packed column-wise and answered from the batched
// product (single-request batches take the cheaper vector path).
func (s *Batcher) flushWorker() {
	defer s.workers.Done()
	ws := s.m.NewWorkspace()
	defer ws.Close()
	B := mat.NewDense(0, 0)
	Y := mat.NewDense(0, 0)
	live := make([]*request, 0, s.cfg.MaxBatch)
	for batch := range s.flushCh {
		if s.testHookBeforeFlush != nil {
			s.testHookBeforeFlush()
		}
		now := time.Now()
		live = live[:0]
		for _, r := range batch {
			if err := r.ctx.Err(); err != nil {
				s.st.drop(err)
				s.answer(r, result{err: err})
				continue
			}
			s.st.queueWait.observeDur(now.Sub(r.enqueued))
			live = append(live, r)
		}
		if len(live) == 0 {
			continue
		}
		n, k := s.m.N, len(live)
		t0 := time.Now()
		if k == 1 {
			y := make([]float64, n)
			s.m.ApplyToWith(ws, y, live[0].b)
			s.st.flushLat.observeDur(time.Since(t0))
			s.answer(live[0], result{y: y})
		} else {
			B.Reshape(n, k)
			for j, r := range live {
				for i, v := range r.b {
					B.Data[i*k+j] = v
				}
			}
			s.m.ApplyBatchToWith(ws, Y, B)
			s.st.flushLat.observeDur(time.Since(t0))
			for j, r := range live {
				y := make([]float64, n)
				for i := range y {
					y[i] = Y.Data[i*k+j]
				}
				s.answer(r, result{y: y})
			}
		}
		s.st.batches.Add(1)
		s.st.served.Add(int64(k))
		s.st.occupancy.observe(int64(k))
	}
}
