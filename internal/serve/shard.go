package serve

// Sharded scatter/gather entry points. Unlike Apply, shard partials are not
// batched: each call is one subtree sweep for one in-flight distributed
// product, so coalescing across requests would serialize independent shards.
// Both paths bypass the dispatcher entirely and use the pooled workspaces
// inside core. The closed check still applies so a draining Batcher rejects
// new cluster work the same way it rejects new Apply traffic.

// ApplyShard runs the upward+coupling partial sweep for one shard of the
// scatter plan (nshards, cutLevel) and returns the packed coupling partials
// in ascending node-ID order. The plan is a pure function of the tree shape
// and the two integers, so coordinator and shard workers derive identical
// plans without shipping any structure over the wire.
func (s *Batcher) ApplyShard(nshards, cutLevel, shard int, b []float64, transpose bool) ([]float64, error) {
	if err := s.checkOpen(); err != nil {
		return nil, err
	}
	p, err := s.m.PlanShards(nshards, cutLevel)
	if err != nil {
		return nil, err
	}
	out, err := s.m.ApplyShard(p, shard, b, transpose)
	if err == nil {
		s.st.shardPartials.Add(1)
	}
	return out, err
}

// ApplyGather completes a sharded product on the coordinator: it runs the
// coordinator's own coupling set, overlays the shipped shard partials
// (recomputing locally for any nil entry), and finishes the downward and
// leaf sweeps. The result is bitwise identical to a single-node Apply.
func (s *Batcher) ApplyGather(nshards, cutLevel int, b []float64, parts [][]float64, transpose bool) ([]float64, error) {
	if err := s.checkOpen(); err != nil {
		return nil, err
	}
	p, err := s.m.PlanShards(nshards, cutLevel)
	if err != nil {
		return nil, err
	}
	out, err := s.m.ApplyGather(p, b, parts, transpose)
	if err == nil {
		s.st.gathers.Add(1)
	}
	return out, err
}

// checkOpen reports ErrClosed once Close has begun.
func (s *Batcher) checkOpen() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		s.st.dropClosed.Add(1)
		return ErrClosed
	}
	return nil
}
