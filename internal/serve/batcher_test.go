package serve

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"h2ds/internal/core"
	"h2ds/internal/kernel"
	"h2ds/internal/pointset"
)

var (
	testMatOnce sync.Once
	testMat     *core.Matrix
)

// testMatrix returns one shared small on-the-fly matrix: batcher tests only
// need a frozen matrix, and sharing it keeps the -race suite fast.
func testMatrix(t *testing.T) *core.Matrix {
	t.Helper()
	testMatOnce.Do(func() {
		pts := pointset.Cube(600, 3, 11)
		m, err := core.Build(pts, kernel.Coulomb{},
			core.Config{Kind: core.DataDriven, Mode: core.OnTheFly, Tol: 1e-6, LeafSize: 50})
		if err != nil {
			panic(err)
		}
		testMat = m
	})
	return testMat
}

func randVec(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func maxRelDiff(a, b []float64) float64 {
	d := 0.0
	for i, v := range a {
		if r := math.Abs(b[i]-v) / (1 + math.Abs(v)); r > d {
			d = r
		}
	}
	return d
}

// TestBatcherMatchesSequential hammers the batcher from many goroutines and
// checks every coalesced result against the sequential reference product.
func TestBatcherMatchesSequential(t *testing.T) {
	m := testMatrix(t)
	const vecs, perG = 8, 12
	refs := make([][]float64, vecs)
	ins := make([][]float64, vecs)
	for v := 0; v < vecs; v++ {
		ins[v] = randVec(m.N, int64(100+v))
		refs[v] = m.Apply(ins[v])
	}

	s := NewBatcher(m, Config{MaxBatch: 8, FlushWindow: 200 * time.Microsecond})
	defer s.Close()

	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	errCh := make(chan error, workers)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < perG; r++ {
				v := (g + r) % vecs
				y, err := s.Apply(context.Background(), ins[v])
				if err != nil {
					errCh <- err
					return
				}
				if d := maxRelDiff(refs[v], y); d > 1e-14 {
					errCh <- errors.New("batched result diverges from sequential reference")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	st := s.Stats()
	if st.Served != int64(workers*perG) {
		t.Fatalf("served %d, want %d", st.Served, workers*perG)
	}
	if st.Submitted != st.Served {
		t.Fatalf("submitted %d != served %d with no drops", st.Submitted, st.Served)
	}
	if st.Batches == 0 || st.Batches > st.Served {
		t.Fatalf("implausible batch count %d for %d requests", st.Batches, st.Served)
	}
	if st.BatchOccupancy.Count != st.Batches {
		t.Fatalf("occupancy count %d != batches %d", st.BatchOccupancy.Count, st.Batches)
	}
	if st.QueueWaitUS.Count != st.Served || st.FlushUS.Count != st.Batches {
		t.Fatalf("histogram counts inconsistent: %+v", st)
	}
	if st.QueueWaitUS.P50 > st.QueueWaitUS.P99 {
		t.Fatalf("p50 %d > p99 %d", st.QueueWaitUS.P50, st.QueueWaitUS.P99)
	}
}

// TestDeadlineDroppedBeforePack parks a request behind a long flush window,
// lets its deadline expire, and checks it is dropped at pack time: counted
// as a deadline drop, never served.
func TestDeadlineDroppedBeforePack(t *testing.T) {
	m := testMatrix(t)
	s := NewBatcher(m, Config{MaxBatch: 64, FlushWindow: 60 * time.Millisecond})
	defer s.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	b := randVec(m.N, 1)
	if _, err := s.Apply(ctx, b); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	// The flush fires well after the deadline; wait for it to account the drop.
	deadline := time.Now().Add(2 * time.Second)
	for {
		st := s.Stats()
		if st.DroppedDeadline == 1 {
			if st.Served != 0 || st.Batches != 0 {
				t.Fatalf("expired request was served: %+v", st)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("deadline drop never recorded: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCancellationDropsFromBatch cancels one of two queued requests before
// the window fires: the batch packs only the live one.
func TestCancellationDropsFromBatch(t *testing.T) {
	m := testMatrix(t)
	s := NewBatcher(m, Config{MaxBatch: 64, FlushWindow: 40 * time.Millisecond})
	defer s.Close()

	ctxDead, cancel := context.WithCancel(context.Background())
	cancel() // canceled before it can ever be packed
	b := randVec(m.N, 2)
	if _, err := s.Apply(ctxDead, b); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	want := m.Apply(b)
	got, err := s.Apply(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxRelDiff(want, got); d > 1e-14 {
		t.Fatalf("live request corrupted by canceled batchmate: reldiff %g", d)
	}
	st := s.Stats()
	if st.DroppedCanceled != 1 || st.Served != 1 {
		t.Fatalf("drops/served = %d/%d, want 1/1 (%+v)", st.DroppedCanceled, st.Served, st)
	}
}

// stallFlushes returns a batcher whose single flush worker blocks until
// release is called, making queue states deterministic.
func stallFlushes(m *core.Matrix, cfg Config) (s *Batcher, release func()) {
	gate := make(chan struct{})
	var once sync.Once
	cfg.Flushers = 1
	s = NewBatcher(m, cfg)
	s.testHookBeforeFlush = func() { <-gate }
	return s, func() { once.Do(func() { close(gate) }) }
}

// fillPipeline stalls the flush worker and fills every stage ahead of the
// queue: one batch in flush, one batch stuck on the worker handoff, and
// QueueLimit requests in the queue. Returns the drain for the in-flight
// requests.
func fillPipeline(t *testing.T, s *Batcher, b []float64) (inFlight *sync.WaitGroup) {
	t.Helper()
	var wg sync.WaitGroup
	// 1 request claimed into a flushing batch + 1 claimed into the next
	// batch (dispatcher blocked handing it to the busy worker) + QueueLimit
	// queued. MaxBatch must be 1.
	for i := 0; i < 2+s.cfg.QueueLimit; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Apply(context.Background(), b); err != nil {
				t.Error(err)
			}
		}()
		// Wait for this request to move past the queue where appropriate so
		// the fill is deterministic: the first two must be claimed by the
		// dispatcher before the queue can hold the rest.
		if i < 2 {
			deadline := time.Now().Add(2 * time.Second)
			for s.Stats().Submitted != int64(i+1) || len(s.submit) != 0 {
				if time.Now().After(deadline) {
					t.Fatal("pipeline fill stalled")
				}
				time.Sleep(100 * time.Microsecond)
			}
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for len(s.submit) != s.cfg.QueueLimit {
		if time.Now().After(deadline) {
			t.Fatalf("queue never filled: depth %d want %d", len(s.submit), s.cfg.QueueLimit)
		}
		time.Sleep(100 * time.Microsecond)
	}
	return &wg
}

// TestQueueFullFastFail fills the pipeline and checks the fast-fail
// backpressure mode rejects the overflow request with ErrQueueFull.
func TestQueueFullFastFail(t *testing.T) {
	m := testMatrix(t)
	s, release := stallFlushes(m, Config{MaxBatch: 1, FlushWindow: time.Hour, QueueLimit: 2})
	defer s.Close()
	b := randVec(m.N, 3)
	wg := fillPipeline(t, s, b)

	if _, err := s.Apply(context.Background(), b); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if st := s.Stats(); st.DroppedQueueFull != 1 || st.QueueDepth != s.cfg.QueueLimit {
		t.Fatalf("queue-full stats wrong: %+v", st)
	}
	// The rejected request never entered the pending gauge; the stalled
	// pipeline holds every admitted one.
	if st := s.Stats(); st.Pending != int64(2+s.cfg.QueueLimit) {
		t.Fatalf("pending %d while stalled, want %d", st.Pending, 2+s.cfg.QueueLimit)
	}
	release()
	wg.Wait()
	if st := s.Stats(); st.Served != int64(2+s.cfg.QueueLimit) {
		t.Fatalf("served %d after release, want %d", st.Served, 2+s.cfg.QueueLimit)
	}
	if st := s.Stats(); st.Pending != 0 {
		t.Fatalf("pending %d after drain, want 0", st.Pending)
	}
}

// TestQueueFullBlocking checks the blocking backpressure mode: a caller at
// QueueLimit waits (honoring its context) instead of failing, and proceeds
// once the pipeline drains.
func TestQueueFullBlocking(t *testing.T) {
	m := testMatrix(t)
	s, release := stallFlushes(m, Config{MaxBatch: 1, FlushWindow: time.Hour, QueueLimit: 2, Block: true})
	defer s.Close()
	b := randVec(m.N, 4)
	wg := fillPipeline(t, s, b)

	// A blocking Apply with a deadline gives up with ctx.Err while stalled.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := s.Apply(ctx, b); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blocked apply err = %v, want DeadlineExceeded", err)
	}
	if st := s.Stats(); st.DroppedDeadline != 1 || st.DroppedQueueFull != 0 {
		t.Fatalf("blocking mode must not count queue-full drops: %+v", st)
	}

	// Without a deadline it blocks until the stall lifts, then succeeds.
	done := make(chan error, 1)
	go func() {
		_, err := s.Apply(context.Background(), b)
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("blocking apply returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	release()
	wg.Wait()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestCloseDrains stalls the pipeline with queued requests, closes, and
// checks every admitted request is answered before Close returns and later
// calls fail fast with ErrClosed.
func TestCloseDrains(t *testing.T) {
	m := testMatrix(t)
	s, release := stallFlushes(m, Config{MaxBatch: 2, FlushWindow: time.Hour, QueueLimit: 8})
	b := randVec(m.N, 5)
	want := m.Apply(b)

	const k = 6
	results := make(chan result, k)
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			y, err := s.Apply(context.Background(), b)
			results <- result{y: y, err: err}
		}()
	}
	deadline := time.Now().Add(2 * time.Second)
	for s.Stats().Submitted != k {
		if time.Now().After(deadline) {
			t.Fatal("submissions stalled")
		}
		time.Sleep(100 * time.Microsecond)
	}

	closed := make(chan struct{})
	go func() {
		s.Close()
		close(closed)
	}()
	select {
	case <-closed:
		t.Fatal("Close returned while flushes were stalled")
	case <-time.After(20 * time.Millisecond):
	}
	release()
	<-closed
	wg.Wait()
	close(results)
	served := 0
	for r := range results {
		if r.err != nil {
			t.Fatalf("admitted request dropped by Close: %v", r.err)
		}
		if d := maxRelDiff(want, r.y); d > 1e-14 {
			t.Fatalf("drained result diverges: reldiff %g", d)
		}
		served++
	}
	if served != k {
		t.Fatalf("drained %d results, want %d", served, k)
	}
	if _, err := s.Apply(context.Background(), b); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close err = %v, want ErrClosed", err)
	}
	if st := s.Stats(); st.Served != k || st.DroppedClosed != 1 {
		t.Fatalf("post-close stats wrong: %+v", st)
	}
	s.Close() // idempotent
}

// TestApplyLengthMismatch rejects wrong-length inputs without touching the
// queue.
func TestApplyLengthMismatch(t *testing.T) {
	m := testMatrix(t)
	s := NewBatcher(m, Config{})
	defer s.Close()
	if _, err := s.Apply(context.Background(), make([]float64, m.N-1)); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if st := s.Stats(); st.Submitted != 0 {
		t.Fatalf("rejected request was counted: %+v", st)
	}
}

// TestHistQuantiles exercises the log₂ histogram directly.
func TestHistQuantiles(t *testing.T) {
	var h hist
	for i := 0; i < 99; i++ {
		h.observe(3) // bucket [2,4)
	}
	h.observe(1000) // bucket [512,1024)
	s := h.snapshot()
	if s.Count != 100 || s.Max != 1000 {
		t.Fatalf("count/max = %d/%d", s.Count, s.Max)
	}
	if s.P50 != 4 {
		t.Fatalf("p50 = %d, want 4 (upper bound of [2,4))", s.P50)
	}
	if s.P99 != 4 || quantile(&[32]int64{}, 0, 0.5) != 0 {
		t.Fatalf("p99 = %d", s.P99)
	}
	h2 := hist{}
	h2.observe(0)
	if got := h2.snapshot().P50; got != 2 {
		t.Fatalf("zero-value observation p50 = %d, want 2", got)
	}
}

// TestDeadlineExpiresBetweenPackAndFlush covers the window the deadline
// semantics doc promises is safe: a request whose batch has already been
// handed to a flush worker, whose deadline expires while the worker is
// stalled ahead of packing. The request must be dropped at pack time and
// counted in dropped_deadline exactly once, and the flush must still
// complete for its batch-mates.
func TestDeadlineExpiresBetweenPackAndFlush(t *testing.T) {
	m := testMatrix(t)
	s, release := stallFlushes(m, Config{MaxBatch: 2, FlushWindow: time.Hour})
	defer s.Close()
	b := randVec(m.N, 6)
	want := m.Apply(b)

	// Request 1: short deadline. Request 2: no deadline, same batch.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	expiredErr := make(chan error, 1)
	go func() {
		_, err := s.Apply(ctx, b)
		expiredErr <- err
	}()
	type liveRes struct {
		y   []float64
		err error
	}
	liveCh := make(chan liveRes, 1)
	go func() {
		y, err := s.Apply(context.Background(), b)
		liveCh <- liveRes{y, err}
	}()

	// The caller observes its deadline while the batch sits stalled in the
	// flush worker; only then is the worker released, so the expiry is
	// guaranteed to land between pack and flush.
	if err := <-expiredErr; !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired apply err = %v, want DeadlineExceeded", err)
	}
	release()

	res := <-liveCh
	if res.err != nil {
		t.Fatalf("batch-mate failed: %v", res.err)
	}
	if d := maxRelDiff(want, res.y); d > 1e-14 {
		t.Fatalf("batch-mate result corrupted: reldiff %g", d)
	}

	// The drop is accounted exactly once, after the flush drains.
	deadline := time.Now().Add(2 * time.Second)
	for {
		st := s.Stats()
		if st.Pending == 0 {
			if st.DroppedDeadline != 1 || st.Served != 1 || st.Batches != 1 || st.Submitted != 2 {
				t.Fatalf("pack-window drop accounting wrong: %+v", st)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pipeline never drained: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
}
