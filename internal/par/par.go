// Package par provides the shared-memory parallel runtime used by the
// hierarchical matrix code: a bounded parallel-for with explicit worker
// counts and per-worker identities (so workers can own scratch buffers, as
// in the paper's one-coupling-block-per-thread on-the-fly mode).
//
// The worker count is a first-class parameter rather than GOMAXPROCS so the
// thread-scaling experiment (paper Fig 7) can sweep it deterministically.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Resolve normalizes a worker-count request: values <= 0 mean "use
// GOMAXPROCS".
func Resolve(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// For runs fn(i) for every i in [0, n) using at most the given number of
// workers. Iterations are claimed in contiguous grains via an atomic
// counter, which balances irregular per-node work (tree nodes differ wildly
// in cost) without a scheduler.
func For(workers, n int, fn func(i int)) {
	ForWorker(workers, n, func(_, i int) { fn(i) })
}

// grainTarget is the desired number of grains per worker; larger values
// improve load balance for irregular work at slightly higher claim traffic.
const grainTarget = 8

// ForWorker is like For but also passes the worker id in [0, workers) so
// callers can maintain per-worker scratch state.
func ForWorker(workers, n int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	grain := n / (workers * grainTarget)
	if grain < 1 {
		grain = 1
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				start := int(atomic.AddInt64(&next, int64(grain))) - grain
				if start >= n {
					return
				}
				end := start + grain
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					fn(worker, i)
				}
			}
		}(w)
	}
	wg.Wait()
}

// Do runs the given tasks concurrently on at most workers goroutines and
// waits for all of them.
func Do(workers int, tasks ...func()) {
	For(workers, len(tasks), func(i int) { tasks[i]() })
}
