package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 100} {
		for _, n := range []int{0, 1, 7, 100, 1000} {
			hits := make([]int32, n)
			For(workers, n, func(i int) {
				atomic.AddInt32(&hits[i], 1)
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d hit %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestForWorkerIDsInRange(t *testing.T) {
	const workers = 4
	var bad int32
	ForWorker(workers, 200, func(w, i int) {
		if w < 0 || w >= workers {
			atomic.AddInt32(&bad, 1)
		}
	})
	if bad != 0 {
		t.Fatalf("%d out-of-range worker ids", bad)
	}
}

func TestForSingleWorkerIsSequential(t *testing.T) {
	// With one worker the iterations must arrive in order (the fast path).
	order := make([]int, 0, 50)
	For(1, 50, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential order violated at %d: %d", i, v)
		}
	}
}

func TestResolve(t *testing.T) {
	if Resolve(5) != 5 {
		t.Fatal("Resolve(5)")
	}
	if Resolve(0) != runtime.GOMAXPROCS(0) || Resolve(-1) != runtime.GOMAXPROCS(0) {
		t.Fatal("Resolve default")
	}
}

func TestDo(t *testing.T) {
	var a, b int32
	Do(2, func() { atomic.StoreInt32(&a, 1) }, func() { atomic.StoreInt32(&b, 2) })
	if a != 1 || b != 2 {
		t.Fatal("Do did not run all tasks")
	}
	Do(3) // zero tasks must not hang
}

func TestForMoreWorkersThanWork(t *testing.T) {
	var count int32
	For(64, 3, func(i int) { atomic.AddInt32(&count, 1) })
	if count != 3 {
		t.Fatalf("count %d", count)
	}
}
