package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestPoolForCoversAllIterations(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 7} {
		p := NewPool(workers)
		for _, n := range []int{0, 1, 2, 3, 17, 100, 1000} {
			var hits = make([]atomic.Int32, n)
			p.For(n, func(i int) { hits[i].Add(1) })
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: iteration %d ran %d times", workers, n, i, got)
				}
			}
		}
		p.Close()
	}
}

func TestPoolWorkerIDsInRange(t *testing.T) {
	const workers, n = 4, 500
	p := NewPool(workers)
	defer p.Close()
	var bad atomic.Int32
	seen := make([]atomic.Int32, workers)
	p.ForWorker(n, func(w, i int) {
		if w < 0 || w >= workers {
			bad.Add(1)
			return
		}
		seen[w].Add(1)
	})
	if bad.Load() != 0 {
		t.Fatalf("%d iterations saw out-of-range worker ids", bad.Load())
	}
	var total int32
	for w := range seen {
		total += seen[w].Load()
	}
	if total != n {
		t.Fatalf("credited %d iterations, want %d", total, n)
	}
}

// TestPoolReuseAcrossPhases drives many back-to-back phases through one pool
// — the matvec pattern (2·depth+2 phases per apply, many applies) — and
// checks every phase completes with the correct sum.
func TestPoolReuseAcrossPhases(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var acc atomic.Int64
	for phase := 0; phase < 500; phase++ {
		n := 1 + phase%97
		acc.Store(0)
		p.For(n, func(i int) { acc.Add(int64(i) + 1) })
		want := int64(n) * int64(n+1) / 2
		if got := acc.Load(); got != want {
			t.Fatalf("phase %d (n=%d): sum %d want %d", phase, n, got, want)
		}
	}
}

// TestPoolSideEffectsVisibleAfterReturn verifies the happens-before edge:
// every write performed inside the loop body is visible to the caller after
// ForWorker returns, through plain (non-atomic) memory.
func TestPoolSideEffectsVisibleAfterReturn(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	buf := make([]int, 10000)
	for rep := 0; rep < 50; rep++ {
		p.For(len(buf), func(i int) { buf[i] = i + rep })
		for i := range buf {
			if buf[i] != i+rep {
				t.Fatalf("rep %d: buf[%d] = %d, stale write", rep, i, buf[i])
			}
		}
	}
}

// TestPoolManyPoolsConcurrently exercises the workspace-checkout pattern:
// several goroutines each own a pool and run phases concurrently (run with
// -race).
func TestPoolManyPoolsConcurrently(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			p := NewPool(3)
			defer p.Close()
			local := make([]int, 400)
			for rep := 0; rep < 100; rep++ {
				p.For(len(local), func(i int) { local[i] = g + rep + i })
				if local[0] != g+rep || local[399] != g+rep+399 {
					t.Errorf("goroutine %d rep %d: bad results", g, rep)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestPoolCloseIdempotentAndFinalizer(t *testing.T) {
	p := NewPool(4)
	p.For(10, func(i int) {})
	p.Close()
	p.Close() // idempotent

	// Leaked pools must not leak goroutines: drop the handle and let the
	// finalizer release the helpers.
	before := runtime.NumGoroutine()
	for i := 0; i < 8; i++ {
		q := NewPool(4)
		q.For(4, func(int) {})
		_ = q
	}
	for i := 0; i < 20; i++ {
		runtime.GC()
		runtime.Gosched()
		if runtime.NumGoroutine() <= before+4 {
			return
		}
	}
	t.Fatalf("helper goroutines leaked: %d before, %d after GC", before, runtime.NumGoroutine())
}

func TestPoolResolveSizing(t *testing.T) {
	p := NewPool(0)
	defer p.Close()
	if p.Workers() != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers() = %d, want GOMAXPROCS = %d", p.Workers(), runtime.GOMAXPROCS(0))
	}
	q := NewPool(1)
	defer q.Close()
	ran := false
	q.ForWorker(1, func(w, i int) { ran = w == 0 && i == 0 })
	if !ran {
		t.Fatal("single-worker pool must run inline as worker 0")
	}
}

// TestPoolMatchesForkJoin checks the pool distributes identical iteration
// sets to the fork-join ForWorker (same grain policy, same coverage).
func TestPoolMatchesForkJoin(t *testing.T) {
	const workers, n = 4, 1037
	p := NewPool(workers)
	defer p.Close()
	got := make([]atomic.Int32, n)
	p.ForWorker(n, func(_, i int) { got[i].Add(1) })
	ref := make([]atomic.Int32, n)
	ForWorker(workers, n, func(_, i int) { ref[i].Add(1) })
	for i := 0; i < n; i++ {
		if got[i].Load() != ref[i].Load() {
			t.Fatalf("iteration %d: pool %d vs fork-join %d", i, got[i].Load(), ref[i].Load())
		}
	}
}

func BenchmarkPhaseDispatch(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(forkJoinName(workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ForWorker(workers, 64, func(_, _ int) {})
			}
		})
		b.Run(poolName(workers), func(b *testing.B) {
			p := NewPool(workers)
			defer p.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.ForWorker(64, func(_, _ int) {})
			}
		})
	}
}

func forkJoinName(w int) string { return "forkjoin/w" + string(rune('0'+w)) }
func poolName(w int) string     { return "pool/w" + string(rune('0'+w)) }

// TestPoolRunDistinctSlots pins Run's contract: fn is invoked exactly once
// per slot in [0, Workers()), with distinct ids — the property cooperative
// drains rely on to index per-worker scratch safely.
func TestPoolRunDistinctSlots(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7} {
		p := NewPool(workers)
		hits := make([]atomic.Int32, p.Workers())
		for rep := 0; rep < 50; rep++ {
			for i := range hits {
				hits[i].Store(0)
			}
			p.Run(func(slot int) {
				if slot < 0 || slot >= p.Workers() {
					t.Errorf("w=%d: slot %d out of range", workers, slot)
					return
				}
				hits[slot].Add(1)
			})
			for i := range hits {
				if hits[i].Load() != 1 {
					t.Fatalf("w=%d rep=%d: slot %d invoked %d times, want 1", workers, rep, i, hits[i].Load())
				}
			}
		}
		p.Close()
	}
}
