package par

import (
	"runtime"
	"sync/atomic"
)

// Pool is a persistent worker-pool runtime: the long-lived replacement for
// the fork-join ForWorker. A Pool owns workers-1 helper goroutines created
// once; each ForWorker call is a phase — the caller publishes the loop body,
// wakes the helpers, participates as worker 0, and waits on a completion
// counter. Across the five sweeps of a matvec (and across successive
// matvecs) the same goroutines are reused, so the per-phase cost is a few
// atomic operations and channel wakes instead of `workers` goroutine
// spawn/join pairs per tree level.
//
// Iterations are claimed in contiguous grains via an atomic counter, exactly
// like the fork-join ForWorker, so work distribution (and therefore the
// bitwise result of the sweeps, whose output slots are each written by one
// claimant in a fixed order) is unchanged.
//
// Concurrency contract: a Pool serves ONE client goroutine at a time —
// concurrent ForWorker calls on the same Pool race by design. Callers that
// apply concurrently check out one Pool each (core.Workspace owns one, and
// workspaces are pooled per in-flight apply). Close releases the helper
// goroutines; a finalizer releases them if a Pool is garbage-collected
// unclosed (e.g. dropped from a sync.Pool), so leaked Pools cannot leak
// goroutines.
type Pool struct {
	p *pool
}

// helperSpins bounds the optimistic spin a helper performs between finishing
// one phase and parking: back-to-back sweeps re-engage helpers without a
// channel round-trip. Each probe is one atomic load; every probe yields the
// processor, so on a loaded (or single-core) machine the spin degrades to a
// handful of scheduler yields before parking.
const helperSpins = 32

// callerSpins bounds the caller's spin while waiting for the last helpers to
// finish a phase before it parks on the completion channel.
const callerSpins = 128

// pool is the shared state helpers reference. It is split from the public
// handle so the finalizer on Pool can run while helpers still hold *pool.
type pool struct {
	workers int
	wakes   []chan struct{} // one buffered(1) wake token slot per helper

	// Phase state, written by the client between phases under the
	// gate/reading protocol below and read by helpers while participating.
	fn    func(worker, i int)
	n     int
	grain int

	next atomic.Int64 // next unclaimed iteration
	done atomic.Int64 // completed iterations; phase ends at n

	// phase is bumped (after publishing) to let spinning helpers detect new
	// work without consuming a wake token.
	phase atomic.Uint64

	// gate/reading close the publish race: a helper holds reading while it
	// examines phase state; the client raises gate, waits for reading to
	// drain, and only then overwrites the state. A helper that sees the gate
	// up backs off without touching the state.
	gate    atomic.Int32
	reading atomic.Int32

	callerWake chan struct{} // buffered(1): last finisher nudges a parked caller
	stop       atomic.Bool
}

// NewPool creates a pool with Resolve(workers) workers: the calling
// goroutine of each ForWorker acts as worker 0, and workers-1 persistent
// helpers are spawned now. A pool with one worker spawns nothing and runs
// phases inline. Close the pool to release the helpers; the finalizer covers
// pools that go out of scope unclosed.
func NewPool(workers int) *Pool {
	workers = Resolve(workers)
	p := &pool{
		workers:    workers,
		callerWake: make(chan struct{}, 1),
	}
	for h := 1; h < workers; h++ {
		w := make(chan struct{}, 1)
		p.wakes = append(p.wakes, w)
		go p.helper(h, w)
	}
	pub := &Pool{p: p}
	if workers > 1 {
		runtime.SetFinalizer(pub, func(pb *Pool) { pb.p.close() })
	}
	return pub
}

// Workers returns the pool's worker count (including the caller).
func (p *Pool) Workers() int { return p.p.workers }

// Close releases the helper goroutines. It is idempotent. The pool must not
// be used after Close; a phase must not be in flight.
func (p *Pool) Close() {
	runtime.SetFinalizer(p, nil)
	p.p.close()
}

func (p *pool) close() {
	if p.stop.Swap(true) {
		return
	}
	for _, w := range p.wakes {
		select {
		case w <- struct{}{}:
		default: // a pending token will deliver the wake
		}
	}
}

// For runs fn(i) for every i in [0, n) on the pool.
func (p *Pool) For(n int, fn func(i int)) {
	p.ForWorker(n, func(_, i int) { fn(i) })
}

// Run executes fn exactly once per worker slot in [0, Workers()),
// concurrently across the pool. It is the entry point for cooperative
// drains — fn is typically a loop that claims tasks from a shared queue
// until it runs dry, with the slot id indexing per-worker scratch. Unlike
// handing ForWorker a worker-indexed body, the slot argument is the claimed
// ITERATION, so every invocation gets a distinct id even when a late-waking
// helper lets one goroutine claim two slots (the two drains then run
// sequentially on that goroutine, each with its own scratch line). Not safe
// for concurrent use on one Pool.
func (p *Pool) Run(fn func(slot int)) {
	p.ForWorker(p.p.workers, func(_, i int) { fn(i) })
}

// ForWorker runs fn(worker, i) for every i in [0, n) on the pool, passing
// the claiming worker's id in [0, workers). It returns when every iteration
// has completed. Not safe for concurrent use on one Pool.
func (p *Pool) ForWorker(n int, fn func(worker, i int)) {
	in := p.p
	if n <= 0 {
		return
	}
	need := in.workers
	if need > n {
		need = n
	}
	if need == 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}

	// Publish the phase: raise the gate, wait out any helper still reading
	// the previous phase's state (normally none), overwrite, drop the gate.
	in.gate.Store(1)
	for in.reading.Load() != 0 {
		runtime.Gosched()
	}
	grain := n / (need * grainTarget)
	if grain < 1 {
		grain = 1
	}
	in.fn = fn
	in.n = n
	in.grain = grain
	in.next.Store(0)
	in.done.Store(0)
	in.gate.Store(0)
	in.phase.Add(1)

	// Wake enough helpers for the iteration count; the rest stay parked.
	for h := 0; h < need-1 && h < len(in.wakes); h++ {
		select {
		case in.wakes[h] <- struct{}{}:
		default: // already has a pending token
		}
	}

	// Participate as worker 0, then wait for the stragglers. The park
	// cannot deadlock: the loop exits solely on the completion counter, and
	// while done < n some claimant still owes a credit whose final Add
	// nudges callerWake — and if that nudge is dropped because the buffer
	// already holds a stale token, the stale token itself unparks the
	// caller for the recheck.
	in.run(0)
	for spin := 0; in.done.Load() < int64(n); spin++ {
		if spin < callerSpins {
			runtime.Gosched()
			continue
		}
		<-in.callerWake
	}
}

// run claims grains until the phase is exhausted, crediting completed
// iterations to the phase's completion counter. The last crediting claimant
// nudges a possibly-parked caller.
func (p *pool) run(worker int) {
	n, grain, fn := p.n, p.grain, p.fn
	for {
		start := int(p.next.Add(int64(grain))) - grain
		if start >= n {
			return
		}
		end := start + grain
		if end > n {
			end = n
		}
		for i := start; i < end; i++ {
			fn(worker, i)
		}
		if p.done.Add(int64(end-start)) == int64(n) {
			select {
			case p.callerWake <- struct{}{}:
			default:
			}
			return
		}
	}
}

// participate is a helper's guarded entry into the current phase. It holds
// reading while touching phase state so the client cannot republish
// mid-read; if the gate is up (client mid-publish) it backs off without
// participating — the client completes any phase by itself, so a missed
// helper costs parallelism for one phase, never correctness.
func (p *pool) participate(worker int) {
	p.reading.Add(1)
	if p.gate.Load() == 0 {
		p.run(worker)
	}
	p.reading.Add(-1)
}

// helper is the persistent worker loop: wait for a wake token (with a short
// optimistic spin on the phase counter first), participate, repeat.
func (p *pool) helper(worker int, wake <-chan struct{}) {
	var seen uint64
	for {
		// Optimistic: catch back-to-back phases without a channel round-trip.
		for spin := 0; spin < helperSpins; spin++ {
			if p.phase.Load() != seen || p.stop.Load() {
				break
			}
			runtime.Gosched()
		}
		if cur := p.phase.Load(); cur != seen {
			seen = cur
			p.participate(worker)
			continue
		}
		if p.stop.Load() {
			return
		}
		<-wake
		if p.stop.Load() {
			return
		}
		if cur := p.phase.Load(); cur != seen {
			seen = cur
			p.participate(worker)
		}
	}
}
