package kernel

import (
	"math/rand"
	"testing"

	"h2ds/internal/pointset"
)

// TestAssembleFusedBitwise pins the chunked fill-a-tile path (Assemble's
// radial dispatch) against the per-entry seed path, digit for digit, for
// every kernel, the 2-D, 3-D, and generic distance loops, and shapes
// straddling the 64-entry chunk boundary.
func TestAssembleFusedBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, d := range []int{2, 3, 5} {
		x := pointset.Cube(150, d, int64(d))
		y := pointset.Cube(130, d, int64(d+79))
		for _, k := range fusedKernels() {
			for _, sh := range fusedShapes {
				rows := randIdx(rng, x.Len(), sh.rows)
				cols := randIdx(rng, y.Len(), sh.cols)
				got := NewBlock(k, x, rows, y, cols)
				want := NewBlockSeed(k, x, rows, y, cols)
				bitsEqual(t, k.Name(), got.Data, want.Data)
			}
		}
	}
	// Consecutive column runs (nearfield tiles index whole leaf ranges) take
	// the gather-free sequential distance pass; cover it across chunk
	// boundaries and at offsets.
	for _, d := range []int{2, 3, 5} {
		x := pointset.Cube(150, d, int64(d))
		y := pointset.Cube(130, d, int64(d+79))
		for _, k := range fusedKernels() {
			for _, run := range []struct{ lo, n int }{{0, 130}, {7, 100}, {63, 66}, {5, 64}} {
				rows := randIdx(rng, x.Len(), 9)
				cols := make([]int, run.n)
				for t := range cols {
					cols[t] = run.lo + t
				}
				got := NewBlock(k, x, rows, y, cols)
				want := NewBlockSeed(k, x, rows, y, cols)
				bitsEqual(t, "seq-"+k.Name(), got.Data, want.Data)
			}
		}
	}
	// Coincident points: the r == 0 guards of the singular kernels must
	// agree between the two paths.
	x := pointset.Cube(40, 3, 5)
	rows := []int{0, 1, 2, 3, 4, 5, 6, 7}
	for _, k := range everyKernel() {
		got := NewBlock(k, x, rows, x, rows)
		want := NewBlockSeed(k, x, rows, x, rows)
		bitsEqual(t, "self-"+k.Name(), got.Data, want.Data)
	}
}
