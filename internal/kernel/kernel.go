// Package kernel defines the kernel functions evaluated between point pairs
// and the blocked batch-assembly routines that the construction, nearfield,
// and on-the-fly code paths share.
//
// The paper accelerates kernel evaluation with SIMD intrinsics (§III-C);
// here the equivalent substrate is cache-blocked assembly with hoisted
// bounds checks and fused distance/kernel inner loops, with specializations
// for the common 2-D and 3-D cases.
package kernel

import (
	"fmt"
	"math"
	"strings"

	"h2ds/internal/mat"
	"h2ds/internal/pointset"
)

// Pairwise is the general kernel interface: any (possibly unsymmetric)
// function K(x, y) of two d-dimensional points. The H² machinery accepts
// any Pairwise kernel; radial kernels additionally satisfy Kernel and get
// fused distance/evaluation assembly loops.
type Pairwise interface {
	// EvalPair returns K(x, y).
	EvalPair(x, y []float64) float64
	// Symmetric reports whether K(x, y) == K(y, x) for all inputs; the H²
	// construction shares bases and stores one coupling triangle when true.
	Symmetric() bool
	// Name returns a short identifier ("coulomb", "gaussian", ...).
	Name() string
}

// BlockAssembler is an optional Pairwise extension for kernels whose values
// come from a backing store rather than a coordinate formula (entry oracles:
// internal/oracle). Assemble consults it before its radial/pairwise
// dispatch, so such kernels fetch a whole submatrix in one call instead of
// len(rows)·len(cols) EvalPair round trips. AssembleBlock receives dst
// already shaped len(rows)×len(cols) and reports whether it handled the
// block; false falls back to the pairwise loop.
type BlockAssembler interface {
	AssembleBlock(dst *mat.Dense, x *pointset.Points, rows []int, y *pointset.Points, cols []int) bool
}

// Kernel is a radial, symmetric kernel function K(x, y) = f(||x-y||₂) on
// d-dimensional points.
//
// All kernels in this package depend on the points only through the
// Euclidean distance, so implementations provide EvalDist and the assembly
// loops compute the distance once per pair.
type Kernel interface {
	Pairwise
	// EvalDist returns K at distance r >= 0.
	EvalDist(r float64) float64
}

// Eval evaluates k between two coordinate slices of equal length.
func Eval(k Kernel, x, y []float64) float64 {
	return k.EvalDist(pointset.Dist(x, y))
}

// Coulomb is the kernel 1/r used for electrostatics and gravitation. The
// singular diagonal follows the fast-summation convention K(x, x) = 0
// (self-interaction excluded), matching what an FMM-style potential sum
// computes.
type Coulomb struct{}

// EvalDist implements Kernel.
func (Coulomb) EvalDist(r float64) float64 {
	if r == 0 {
		return 0
	}
	return 1 / r
}

// EvalPair implements Pairwise.
func (k Coulomb) EvalPair(x, y []float64) float64 { return k.EvalDist(pointset.Dist(x, y)) }

// Symmetric implements Pairwise; radial kernels are symmetric.
func (Coulomb) Symmetric() bool { return true }

// Name implements Kernel.
func (Coulomb) Name() string { return "coulomb" }

// CoulombCubed is the kernel 1/r³ from the paper's generality study (Fig 9),
// with the same zero-diagonal convention as Coulomb.
type CoulombCubed struct{}

// EvalDist implements Kernel.
func (CoulombCubed) EvalDist(r float64) float64 {
	if r == 0 {
		return 0
	}
	return 1 / (r * r * r)
}

// EvalPair implements Pairwise.
func (k CoulombCubed) EvalPair(x, y []float64) float64 { return k.EvalDist(pointset.Dist(x, y)) }

// Symmetric implements Pairwise; radial kernels are symmetric.
func (CoulombCubed) Symmetric() bool { return true }

// Name implements Kernel.
func (CoulombCubed) Name() string { return "coulomb3" }

// Exponential is the kernel exp(-r).
type Exponential struct{}

// EvalDist implements Kernel.
func (Exponential) EvalDist(r float64) float64 { return math.Exp(-r) }

// EvalPair implements Pairwise.
func (k Exponential) EvalPair(x, y []float64) float64 { return k.EvalDist(pointset.Dist(x, y)) }

// Symmetric implements Pairwise; radial kernels are symmetric.
func (Exponential) Symmetric() bool { return true }

// Name implements Kernel.
func (Exponential) Name() string { return "exp" }

// Gaussian is the kernel exp(-r²/Scale). The paper's Fig 9 uses Scale = 0.1.
type Gaussian struct {
	Scale float64
}

// EvalDist implements Kernel.
func (g Gaussian) EvalDist(r float64) float64 {
	s := g.Scale
	if s == 0 {
		s = 0.1
	}
	return math.Exp(-r * r / s)
}

// EvalPair implements Pairwise.
func (g Gaussian) EvalPair(x, y []float64) float64 { return g.EvalDist(pointset.Dist(x, y)) }

// Symmetric implements Pairwise; radial kernels are symmetric.
func (Gaussian) Symmetric() bool { return true }

// Name implements Kernel.
func (Gaussian) Name() string { return "gaussian" }

// Matern32 is the Matérn-3/2 kernel (1 + √3 r/ℓ) exp(-√3 r/ℓ), a common
// Gaussian-process covariance; included as an extension beyond the paper's
// four kernels to exercise kernel generality further.
type Matern32 struct {
	Length float64
}

// EvalDist implements Kernel.
func (m Matern32) EvalDist(r float64) float64 {
	l := m.Length
	if l == 0 {
		l = 1
	}
	a := math.Sqrt(3) * r / l
	if a > 700 {
		// exp(-a) underflows; avoid Inf * 0 = NaN for extreme distances.
		return 0
	}
	return (1 + a) * math.Exp(-a)
}

// EvalPair implements Pairwise.
func (m Matern32) EvalPair(x, y []float64) float64 { return m.EvalDist(pointset.Dist(x, y)) }

// Symmetric implements Pairwise; radial kernels are symmetric.
func (Matern32) Symmetric() bool { return true }

// Name implements Kernel.
func (Matern32) Name() string { return "matern32" }

// Matern52 is the Matérn-5/2 kernel (1 + a + a²/3)·exp(-a) with
// a = √5·r/ℓ, the twice-differentiable sibling of Matern32.
type Matern52 struct {
	Length float64
}

// EvalDist implements Kernel.
func (m Matern52) EvalDist(r float64) float64 {
	l := m.Length
	if l == 0 {
		l = 1
	}
	a := math.Sqrt(5) * r / l
	if a > 700 {
		return 0
	}
	return (1 + a + a*a/3) * math.Exp(-a)
}

// EvalPair implements Pairwise.
func (m Matern52) EvalPair(x, y []float64) float64 { return m.EvalDist(pointset.Dist(x, y)) }

// Symmetric implements Pairwise; radial kernels are symmetric.
func (Matern52) Symmetric() bool { return true }

// Name implements Kernel.
func (Matern52) Name() string { return "matern52" }

// InverseMultiquadric is the kernel 1/√(r² + C²), a smooth-everywhere
// (C > 0) relative of the Coulomb kernel popular in RBF interpolation.
type InverseMultiquadric struct {
	C float64
}

// EvalDist implements Kernel.
func (k InverseMultiquadric) EvalDist(r float64) float64 {
	c := k.C
	if c == 0 {
		c = 1
	}
	return 1 / math.Sqrt(r*r+c*c)
}

// EvalPair implements Pairwise.
func (k InverseMultiquadric) EvalPair(x, y []float64) float64 {
	return k.EvalDist(pointset.Dist(x, y))
}

// Symmetric implements Pairwise; radial kernels are symmetric.
func (InverseMultiquadric) Symmetric() bool { return true }

// Name implements Kernel.
func (InverseMultiquadric) Name() string { return "imq" }

// ThinPlate is the thin-plate spline kernel r²·log r (with the usual
// K(x, x) = 0 continuation). Unlike every other kernel here it is
// sign-changing and grows with distance — a stress test for the
// sign-oblivious parts of the pipeline (sampling, pivoted factorization).
type ThinPlate struct{}

// EvalDist implements Kernel.
func (ThinPlate) EvalDist(r float64) float64 {
	if r == 0 {
		return 0
	}
	return r * r * math.Log(r)
}

// EvalPair implements Pairwise.
func (k ThinPlate) EvalPair(x, y []float64) float64 { return k.EvalDist(pointset.Dist(x, y)) }

// Symmetric implements Pairwise; radial kernels are symmetric.
func (ThinPlate) Symmetric() bool { return true }

// Name implements Kernel.
func (ThinPlate) Name() string { return "thinplate" }

// registry maps harness names to kernel constructors with their standard
// parameters (the paper's settings where it fixes one). registryNames keeps
// the presentation order for help text and error messages.
var (
	registry = map[string]func() Kernel{
		"coulomb":   func() Kernel { return Coulomb{} },
		"coulomb3":  func() Kernel { return CoulombCubed{} },
		"exp":       func() Kernel { return Exponential{} },
		"gaussian":  func() Kernel { return Gaussian{Scale: 0.1} },
		"matern32":  func() Kernel { return Matern32{Length: 1} },
		"matern52":  func() Kernel { return Matern52{Length: 1} },
		"imq":       func() Kernel { return InverseMultiquadric{C: 1} },
		"thinplate": func() Kernel { return ThinPlate{} },
	}
	registryNames = []string{"coulomb", "coulomb3", "exp", "gaussian",
		"matern32", "matern52", "imq", "thinplate"}
)

// Names returns the registered kernel names in presentation order. Command
// flag help derives its kernel list from this, so the binaries stay in sync
// with the registry.
func Names() []string { return append([]string(nil), registryNames...) }

// Named returns the kernel for a harness name. It returns false for unknown
// names.
func Named(name string) (Kernel, bool) {
	mk, ok := registry[name]
	if !ok {
		return nil, false
	}
	return mk(), true
}

// ByName is the error-reporting form of Named shared by the command-line
// frontends: unknown names produce an error that lists every valid kernel.
func ByName(name string) (Kernel, error) {
	k, ok := Named(name)
	if !ok {
		return nil, fmt.Errorf("kernel: unknown kernel %q (valid: %s)",
			name, strings.Join(registryNames, ", "))
	}
	return k, nil
}

// Assemble fills dst (reshaped to len(rows) x len(cols)) with the kernel
// block K(X[rows], Y[cols]). rows and cols index into x and y respectively.
// dst is returned for convenience. Radial kernels take the fused
// distance/evaluation fast paths; general Pairwise kernels use EvalPair.
func Assemble(dst *mat.Dense, pk Pairwise, x *pointset.Points, rows []int, y *pointset.Points, cols []int) *mat.Dense {
	m, n := len(rows), len(cols)
	dst.Reshape(m, n)
	if ba, ok := pk.(BlockAssembler); ok && ba.AssembleBlock(dst, x, rows, y, cols) {
		return dst
	}
	k, radial := pk.(Kernel)
	if !radial {
		assemblePair(dst, pk, x, rows, y, cols)
		return dst
	}
	assembleFused(dst, k, x, rows, y, cols)
	return dst
}

// AssembleSeed is Assemble forced onto the per-entry evaluation paths
// (dimension-specialized EvalDist loops for radial kernels, EvalPair
// otherwise) — the pre-fusion construction path, kept callable for the
// fused-vs-seed equivalence suite and the build bench's seed baseline.
func AssembleSeed(dst *mat.Dense, pk Pairwise, x *pointset.Points, rows []int, y *pointset.Points, cols []int) *mat.Dense {
	m, n := len(rows), len(cols)
	dst.Reshape(m, n)
	if ba, ok := pk.(BlockAssembler); ok && ba.AssembleBlock(dst, x, rows, y, cols) {
		return dst
	}
	k, radial := pk.(Kernel)
	if !radial {
		assemblePair(dst, pk, x, rows, y, cols)
		return dst
	}
	switch x.Dim {
	case 2:
		assemble2(dst, k, x, rows, y, cols)
	case 3:
		assemble3(dst, k, x, rows, y, cols)
	default:
		assembleGeneric(dst, k, x, rows, y, cols)
	}
	return dst
}

// NewBlock allocates and assembles the kernel block K(X[rows], Y[cols]).
func NewBlock(k Pairwise, x *pointset.Points, rows []int, y *pointset.Points, cols []int) *mat.Dense {
	return Assemble(mat.NewDense(0, 0), k, x, rows, y, cols)
}

// NewBlockSeed is NewBlock on the per-entry AssembleSeed path.
func NewBlockSeed(k Pairwise, x *pointset.Points, rows []int, y *pointset.Points, cols []int) *mat.Dense {
	return AssembleSeed(mat.NewDense(0, 0), k, x, rows, y, cols)
}

// assembleFused fills the tile through the fused chunk machinery: one
// distance pass (distChunk, mirroring the per-dimension accumulation of the
// assemble2/assemble3/assembleGeneric loops) and one devirtualized
// evaluation pass (evalChunk) per 64-entry panel of each row, writing
// straight into the destination row. Per the bitwise contracts on those two
// primitives, every entry is bit-identical to the per-entry seed path — only
// the interface-call count and the cache behavior change.
func assembleFused(dst *mat.Dense, k Kernel, x *pointset.Points, rows []int, y *pointset.Points, cols []int) {
	d := x.Dim
	n := len(cols)
	// Nearfield tiles index whole leaf ranges, so cols is usually a
	// consecutive run; the sequential distance pass drops the per-entry
	// column gather and streams the coordinates in order (distChunkSeq is
	// bitwise-identical to distChunk on the same points).
	seq := n > 0
	for t, j := range cols {
		if j != cols[0]+t {
			seq = false
			break
		}
	}
	var r2 [fusedChunk]float64
	for a, i := range rows {
		xi := x.Coords[i*d : i*d+d]
		out := dst.Row(a)
		for b0 := 0; b0 < n; b0 += fusedChunk {
			b1 := min(b0+fusedChunk, n)
			ck := b1 - b0
			if seq {
				distChunkSeq(r2[:ck], xi, y, cols[0]+b0, d)
			} else {
				distChunk(r2[:ck], xi, y, cols[b0:b1], d)
			}
			evalChunk(k, out[b0:b1], r2[:ck])
		}
	}
}

// assemblePair is the generic path for non-radial kernels.
func assemblePair(dst *mat.Dense, k Pairwise, x *pointset.Points, rows []int, y *pointset.Points, cols []int) {
	d := x.Dim
	for a, i := range rows {
		xi := x.Coords[i*d : i*d+d]
		out := dst.Row(a)
		for b, j := range cols {
			out[b] = k.EvalPair(xi, y.Coords[j*d:j*d+d])
		}
	}
}

func assemble3(dst *mat.Dense, k Kernel, x *pointset.Points, rows []int, y *pointset.Points, cols []int) {
	for a, i := range rows {
		xi := x.Coords[i*3 : i*3+3]
		x0, x1, x2 := xi[0], xi[1], xi[2]
		out := dst.Row(a)
		for b, j := range cols {
			yj := y.Coords[j*3 : j*3+3]
			d0 := x0 - yj[0]
			d1 := x1 - yj[1]
			d2 := x2 - yj[2]
			out[b] = k.EvalDist(math.Sqrt(d0*d0 + d1*d1 + d2*d2))
		}
	}
}

func assemble2(dst *mat.Dense, k Kernel, x *pointset.Points, rows []int, y *pointset.Points, cols []int) {
	for a, i := range rows {
		xi := x.Coords[i*2 : i*2+2]
		x0, x1 := xi[0], xi[1]
		out := dst.Row(a)
		for b, j := range cols {
			yj := y.Coords[j*2 : j*2+2]
			d0 := x0 - yj[0]
			d1 := x1 - yj[1]
			out[b] = k.EvalDist(math.Sqrt(d0*d0 + d1*d1))
		}
	}
}

func assembleGeneric(dst *mat.Dense, k Kernel, x *pointset.Points, rows []int, y *pointset.Points, cols []int) {
	d := x.Dim
	for a, i := range rows {
		xi := x.Coords[i*d : i*d+d]
		out := dst.Row(a)
		for b, j := range cols {
			yj := y.Coords[j*d : j*d+d]
			s := 0.0
			for c, v := range xi {
				dd := v - yj[c]
				s += dd * dd
			}
			out[b] = k.EvalDist(math.Sqrt(s))
		}
	}
}

// ApplyBlock computes y[rows] += K(X[rows], X[cols]) * v[cols] directly,
// without materializing the block. y and v are full-length vectors indexed
// by the global point ordering; rows/cols index into x. This is the fully
// streaming alternative to assemble-then-multiply used by the direct
// (dense reference) product. It runs on the same fused chunk machinery as
// BlockVecAdd (per-chunk devirtualized evaluation, dot's 4-accumulator
// grouping per row), gathering v through the column index set.
func ApplyBlock(k Pairwise, x *pointset.Points, rows, cols []int, v, y []float64) {
	rk, radial := k.(Kernel)
	d := x.Dim
	L := len(cols)
	U := L &^ 3
	var r2buf, kbuf, vbuf [fusedChunk]float64
	for _, i := range rows {
		xi := x.Coords[i*d : i*d+d]
		var s0, s1, s2, s3 float64
		for b0 := 0; b0 < U; b0 += fusedChunk {
			b1 := min(b0+fusedChunk, U)
			cc := cols[b0:b1]
			kernelChunk(rk, k, radial, kbuf[:], r2buf[:], xi, x, cc, d)
			for t, j := range cc {
				vbuf[t] = v[j]
			}
			for t := 0; t+4 <= len(cc); t += 4 {
				s0 += kbuf[t] * vbuf[t]
				s1 += kbuf[t+1] * vbuf[t+1]
				s2 += kbuf[t+2] * vbuf[t+2]
				s3 += kbuf[t+3] * vbuf[t+3]
			}
		}
		s := (s0 + s1) + (s2 + s3)
		for b := U; b < L; b++ {
			s += evalOne(rk, k, radial, xi, x, cols[b], d) * v[cols[b]]
		}
		y[i] += s
	}
}

// RowApply computes one exact row of the kernel matrix-vector product:
// it returns Σ_j K(x_i, x_j) v[j] over all points j. Used by the 12-row
// relative-error estimator (paper §IV) and by tests. Like ApplyBlock it
// runs on the fused chunk machinery, with the column set being every point.
func RowApply(k Pairwise, x *pointset.Points, i int, v []float64) float64 {
	rk, radial := k.(Kernel)
	d := x.Dim
	n := x.Len()
	xi := x.Coords[i*d : i*d+d]
	U := n &^ 3
	var r2buf, kbuf [fusedChunk]float64
	var s0, s1, s2, s3 float64
	for b0 := 0; b0 < U; b0 += fusedChunk {
		b1 := min(b0+fusedChunk, U)
		ck := b1 - b0
		if radial {
			distChunkSeq(r2buf[:ck], xi, x, b0, d)
			evalChunk(rk, kbuf[:ck], r2buf[:ck])
		} else {
			for t := 0; t < ck; t++ {
				j := b0 + t
				kbuf[t] = k.EvalPair(xi, x.Coords[j*d:j*d+d])
			}
		}
		vv := v[b0:b1]
		for t := 0; t+4 <= ck; t += 4 {
			s0 += kbuf[t] * vv[t]
			s1 += kbuf[t+1] * vv[t+1]
			s2 += kbuf[t+2] * vv[t+2]
			s3 += kbuf[t+3] * vv[t+3]
		}
	}
	s := (s0 + s1) + (s2 + s3)
	for j := U; j < n; j++ {
		s += evalOne(rk, k, radial, xi, x, j, d) * v[j]
	}
	return s
}
