package kernel

import (
	"fmt"
	"testing"

	"h2ds/internal/mat"
	"h2ds/internal/pointset"
)

// Benchmarks comparing the seed path (Assemble into scratch, then dense
// GEMV) against the fused devirtualized primitives, per kernel. Run with:
//
//	go test ./internal/kernel -bench 'Fused|AssembleMul' -benchmem
const benchTile = 96

func benchSetup(dim int) (*pointset.Points, *pointset.Points, []int, []int, []float64, []float64) {
	x := pointset.Cube(benchTile*2, dim, 31)
	y := pointset.Cube(benchTile*2, dim, 32)
	rows := make([]int, benchTile)
	cols := make([]int, benchTile)
	for i := range rows {
		rows[i] = i * 2
		cols[i] = i*2 + 1
	}
	v := make([]float64, benchTile)
	out := make([]float64, benchTile)
	for i := range v {
		v[i] = float64(i%7) - 3
	}
	return x, y, rows, cols, v, out
}

func BenchmarkAssembleMulVec(b *testing.B) {
	for _, k := range everyKernel() {
		b.Run(fmt.Sprintf("%s/d3", k.Name()), func(b *testing.B) {
			x, y, rows, cols, v, out := benchSetup(3)
			scratch := mat.NewDense(benchTile, benchTile)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Assemble(scratch, k, x, rows, y, cols)
				mat.MulVecAdd(out, scratch, v)
			}
		})
	}
}

func BenchmarkFusedVec(b *testing.B) {
	for _, k := range everyKernel() {
		b.Run(fmt.Sprintf("%s/d3", k.Name()), func(b *testing.B) {
			x, y, rows, cols, v, out := benchSetup(3)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				BlockVecAdd(out, k, x, rows, y, cols, v)
			}
		})
	}
}

func BenchmarkAssembleMulTVec(b *testing.B) {
	for _, k := range everyKernel() {
		b.Run(fmt.Sprintf("%s/d3", k.Name()), func(b *testing.B) {
			x, y, rows, cols, v, out := benchSetup(3)
			scratch := mat.NewDense(benchTile, benchTile)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Assemble(scratch, k, x, rows, y, cols)
				mat.MulTVecAdd(out, scratch, v)
			}
		})
	}
}

func BenchmarkFusedTVec(b *testing.B) {
	for _, k := range everyKernel() {
		b.Run(fmt.Sprintf("%s/d3", k.Name()), func(b *testing.B) {
			x, y, rows, cols, v, out := benchSetup(3)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				BlockTVecAdd(out, k, x, rows, y, cols, v)
			}
		})
	}
}

func BenchmarkAssembleMulBatch(b *testing.B) {
	for _, k := range everyKernel() {
		b.Run(fmt.Sprintf("%s/d3/rhs8", k.Name()), func(b *testing.B) {
			x, y, rows, cols, _, _ := benchSetup(3)
			scratch := mat.NewDense(benchTile, benchTile)
			rhs := mat.NewDense(benchTile, 8)
			out := mat.NewDense(benchTile, 8)
			for i := range rhs.Data {
				rhs.Data[i] = float64(i%5) - 2
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Assemble(scratch, k, x, rows, y, cols)
				mat.MulAddTo(out, scratch, rhs)
			}
		})
	}
}

func BenchmarkFusedBatch(b *testing.B) {
	for _, k := range everyKernel() {
		b.Run(fmt.Sprintf("%s/d3/rhs8", k.Name()), func(b *testing.B) {
			x, y, rows, cols, _, _ := benchSetup(3)
			rhs := mat.NewDense(benchTile, 8)
			out := mat.NewDense(benchTile, 8)
			rowbuf := mat.NewDense(0, 0)
			for i := range rhs.Data {
				rhs.Data[i] = float64(i%5) - 2
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				BlockMulAdd(out, k, x, rows, y, cols, rhs, rowbuf)
			}
		})
	}
}
