package kernel

import (
	"math"
	"math/rand"
	"testing"

	"h2ds/internal/mat"
	"h2ds/internal/pointset"
)

// skewPair is a non-radial Pairwise test kernel: it exercises the
// EvalPair fallback of the fused primitives. It is deliberately
// unsymmetric.
type skewPair struct{}

func (skewPair) EvalPair(x, y []float64) float64 {
	s := 0.0
	for c := range x {
		d := x[c] - 0.9*y[c]
		s += d * d
	}
	return 1 / (1 + s)
}
func (skewPair) Symmetric() bool { return false }
func (skewPair) Name() string    { return "skewpair" }

// fusedKernels is every registered radial kernel plus the pairwise-only
// fallback kernel.
func fusedKernels() []Pairwise {
	ks := make([]Pairwise, 0, len(everyKernel())+1)
	for _, k := range everyKernel() {
		ks = append(ks, k)
	}
	return append(ks, skewPair{})
}

// fusedShapes covers the unroll/tail/chunk boundaries: tiny blocks, shapes
// straddling the 4-wide dot unroll, and shapes straddling the 64-entry
// fused chunk.
var fusedShapes = []struct{ rows, cols int }{
	{1, 1}, {2, 3}, {3, 5}, {4, 4}, {5, 2}, {7, 9}, {17, 33},
	{30, 64}, {31, 65}, {64, 63}, {100, 100},
}

func randIdx(rng *rand.Rand, n, count int) []int {
	idx := make([]int, count)
	for i := range idx {
		idx[i] = rng.Intn(n)
	}
	return idx
}

// withZeros returns a copy of v with a deterministic pattern of zeros
// injected: a run of four (hits the all-zero quad path), alternating zeros
// (hits every axpyPair case), and a zero tail element.
func withZeros(v []float64) []float64 {
	w := append([]float64(nil), v...)
	for i := 0; i < len(w) && i < 4; i++ {
		w[i] = 0
	}
	for i := 5; i < len(w); i += 3 {
		w[i] = 0
	}
	if len(w) > 0 {
		w[len(w)-1] = 0
	}
	return w
}

func bitsEqual(t *testing.T, tag string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d want %d", tag, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: element %d = %v (%#x) want %v (%#x)",
				tag, i, got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
		}
	}
}

// TestBlockVecAddBitwise pins the fused row-dot path against the seed
// assemble-then-MulVecAdd path, digit for digit, for every kernel, the 2-D,
// 3-D, and generic distance loops, and shapes straddling every unroll
// boundary.
func TestBlockVecAddBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, d := range []int{2, 3, 5} {
		x := pointset.Cube(150, d, int64(d))
		y := pointset.Cube(130, d, int64(d+77))
		for _, k := range fusedKernels() {
			for _, sh := range fusedShapes {
				rows := randIdx(rng, x.Len(), sh.rows)
				cols := randIdx(rng, y.Len(), sh.cols)
				v := make([]float64, sh.cols)
				for i := range v {
					v[i] = rng.NormFloat64()
				}
				out := make([]float64, sh.rows)
				want := make([]float64, sh.rows)
				for i := range out {
					out[i] = rng.NormFloat64()
					want[i] = out[i]
				}
				tile := NewBlock(k, x, rows, y, cols)
				mat.MulVecAdd(want, tile, v)
				BlockVecAdd(out, k, x, rows, y, cols, v)
				bitsEqual(t, k.Name(), out, want)
			}
		}
	}
}

// TestBlockTVecAddBitwise pins the fused transpose path against
// assemble-then-MulTVecAdd, including the zero-multiplier skip structure.
func TestBlockTVecAddBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, d := range []int{2, 3, 5} {
		x := pointset.Cube(150, d, int64(d))
		y := pointset.Cube(130, d, int64(d+78))
		for _, k := range fusedKernels() {
			for _, sh := range fusedShapes {
				rows := randIdx(rng, x.Len(), sh.rows)
				cols := randIdx(rng, y.Len(), sh.cols)
				v := make([]float64, sh.rows)
				for i := range v {
					v[i] = rng.NormFloat64()
				}
				for _, vv := range [][]float64{v, withZeros(v)} {
					out := make([]float64, sh.cols)
					want := make([]float64, sh.cols)
					for i := range out {
						out[i] = rng.NormFloat64()
						want[i] = out[i]
					}
					tile := NewBlock(k, x, rows, y, cols)
					mat.MulTVecAdd(want, tile, vv)
					BlockTVecAdd(out, k, x, rows, y, cols, vv)
					bitsEqual(t, k.Name(), out, want)
				}
			}
		}
	}
}

// TestBlockMulAddBitwise pins the fused batch path (row-panel staging)
// against assemble-then-MulAddTo for several right-hand-side widths.
func TestBlockMulAddBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	rowbuf := mat.NewDense(0, 0)
	for _, d := range []int{2, 3, 5} {
		x := pointset.Cube(150, d, int64(d))
		y := pointset.Cube(130, d, int64(d+79))
		for _, k := range fusedKernels() {
			for _, sh := range fusedShapes {
				for _, nrhs := range []int{1, 3, 5} {
					rows := randIdx(rng, x.Len(), sh.rows)
					cols := randIdx(rng, y.Len(), sh.cols)
					b := mat.NewDense(sh.cols, nrhs)
					for i := range b.Data {
						b.Data[i] = rng.NormFloat64()
					}
					out := mat.NewDense(sh.rows, nrhs)
					want := mat.NewDense(sh.rows, nrhs)
					for i := range out.Data {
						out.Data[i] = rng.NormFloat64()
						want.Data[i] = out.Data[i]
					}
					tile := NewBlock(k, x, rows, y, cols)
					mat.MulAddTo(want, tile, b)
					BlockMulAdd(out, k, x, rows, y, cols, b, rowbuf)
					bitsEqual(t, k.Name(), out.Data, want.Data)
				}
			}
		}
	}
}

// TestApplyBlockBitwiseFused pins the consolidated ApplyBlock against the
// same fused summation order (assemble, gather, MulVecAdd).
func TestApplyBlockBitwiseFused(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, d := range []int{2, 3, 5} {
		x := pointset.Cube(140, d, int64(d+5))
		for _, k := range fusedKernels() {
			rows := randIdx(rng, x.Len(), 23)
			cols := randIdx(rng, x.Len(), 69)
			v := make([]float64, x.Len())
			for i := range v {
				v[i] = rng.NormFloat64()
			}
			got := make([]float64, x.Len())
			want := make([]float64, x.Len())
			ApplyBlock(k, x, rows, cols, v, got)
			tile := NewBlock(k, x, rows, x, cols)
			vc := make([]float64, len(cols))
			for c, j := range cols {
				vc[c] = v[j]
			}
			prod := make([]float64, len(rows))
			mat.MulVecAdd(prod, tile, vc)
			for r, i := range rows {
				want[i] += prod[r]
			}
			bitsEqual(t, k.Name(), got, want)
		}
	}
}

// TestRowApplyBitwiseFused pins RowApply against BlockVecAdd over the full
// index range: one code path, same results.
func TestRowApplyBitwiseFused(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for _, d := range []int{2, 3, 5} {
		for _, n := range []int{1, 3, 65, 131} {
			x := pointset.Cube(n, d, int64(10*d+n))
			all := make([]int, n)
			for i := range all {
				all[i] = i
			}
			v := make([]float64, n)
			for i := range v {
				v[i] = rng.NormFloat64()
			}
			for _, k := range fusedKernels() {
				for _, i := range []int{0, n / 2, n - 1} {
					want := make([]float64, 1)
					BlockVecAdd(want, k, x, []int{i}, x, all, v)
					got := RowApply(k, x, i, v)
					if math.Float64bits(got) != math.Float64bits(want[0]) {
						t.Fatalf("%s d=%d n=%d row %d: RowApply %v want %v", k.Name(), d, n, i, got, want[0])
					}
				}
			}
		}
	}
}
