// Fused evaluate-and-apply primitives: the on-the-fly matvec path without
// the assemble-then-multiply round trip.
//
// The seed on-the-fly path materializes each coupling/nearfield tile into a
// per-worker scratch buffer (Assemble) and then runs a dense GEMV over it —
// every kernel value makes a trip through memory, and every entry pays an
// EvalDist interface call that the compiler cannot inline, which serializes
// the sqrt/divide pipeline around the call. The primitives here fuse the two
// passes and devirtualize the kernel: a type switch on the concrete kernel
// (hoisted out of the inner loop to chunk granularity) selects a call-free
// evaluation loop, and the kernel values for a chunk of at most fusedChunk
// entries live in a stack buffer that never leaves L1. Only a panel of the
// tile ever exists — for the vector paths a 64-entry chunk, for the batch
// path one tile row — instead of the full rows x cols block.
//
// Bitwise contract: every primitive reproduces the exact per-element
// operation sequence of kernel.Assemble followed by the matching internal/mat
// product (MulVecAdd, MulTVecAdd, MulAddTo), including mat's 4-accumulator
// dot grouping, its sequential tails, and MulTVecAdd's per-row zero skips.
// The equivalence suites in this package and internal/core pin this digit
// for digit.

package kernel

import (
	"math"

	"h2ds/internal/mat"
	"h2ds/internal/pointset"
)

// fusedChunk is the panel width of the fused evaluation loops: kernel values
// are produced into stack buffers of this many entries. 64 entries = 512
// bytes per buffer, small enough that the distance, evaluation, and
// accumulation passes all stay in L1, and a multiple of 4 so chunking never
// splits dot's accumulator lanes.
const fusedChunk = 64

// distChunk fills r2[t] with the squared distance between the point at xi
// and y's point cols[t], mirroring the per-dimension accumulation order of
// assemble2/assemble3/assembleGeneric exactly.
func distChunk(r2 []float64, xi []float64, y *pointset.Points, cols []int, d int) {
	coords := y.Coords
	switch d {
	case 2:
		x0, x1 := xi[0], xi[1]
		for t, j := range cols {
			yj := coords[j*2 : j*2+2]
			d0 := x0 - yj[0]
			d1 := x1 - yj[1]
			r2[t] = d0*d0 + d1*d1
		}
	case 3:
		x0, x1, x2 := xi[0], xi[1], xi[2]
		for t, j := range cols {
			yj := coords[j*3 : j*3+3]
			d0 := x0 - yj[0]
			d1 := x1 - yj[1]
			d2 := x2 - yj[2]
			r2[t] = d0*d0 + d1*d1 + d2*d2
		}
	default:
		for t, j := range cols {
			yj := coords[j*d : j*d+d]
			s := 0.0
			for c, v := range xi {
				dd := v - yj[c]
				s += dd * dd
			}
			r2[t] = s
		}
	}
}

// distChunkSeq is distChunk for the contiguous index range [j0, j0+len(r2)),
// used by RowApply where the column set is every point.
func distChunkSeq(r2 []float64, xi []float64, y *pointset.Points, j0, d int) {
	coords := y.Coords
	switch d {
	case 2:
		x0, x1 := xi[0], xi[1]
		for t := range r2 {
			yj := coords[(j0+t)*2 : (j0+t)*2+2]
			d0 := x0 - yj[0]
			d1 := x1 - yj[1]
			r2[t] = d0*d0 + d1*d1
		}
	case 3:
		x0, x1, x2 := xi[0], xi[1], xi[2]
		for t := range r2 {
			yj := coords[(j0+t)*3 : (j0+t)*3+3]
			d0 := x0 - yj[0]
			d1 := x1 - yj[1]
			d2 := x2 - yj[2]
			r2[t] = d0*d0 + d1*d1 + d2*d2
		}
	default:
		for t := range r2 {
			yj := coords[(j0+t)*d : (j0+t)*d+d]
			s := 0.0
			for c, v := range xi {
				dd := v - yj[c]
				s += dd * dd
			}
			r2[t] = s
		}
	}
}

// evalChunk fills dst[t] = K(sqrt(r2[t])) with the per-entry interface call
// devirtualized: the type switch runs once per chunk and each case is a
// call-free loop whose body is the concrete EvalDist inlined by hand (same
// operations in the same order, so the values are bitwise-identical to the
// interface path). Kernels outside the switch fall back to the interface
// call per entry, which is the seed behavior.
func evalChunk(k Kernel, dst, r2 []float64) {
	dst = dst[:len(r2)]
	switch kk := k.(type) {
	case Coulomb:
		// mat.RecipSqrtChunk is the vector-width form of
		//   r := math.Sqrt(v); dst[t] = 0 if r == 0 else 1/r
		// (VSQRTPD/VDIVPD are correctly rounded, so it stays bitwise-equal
		// to the scalar loop).
		mat.RecipSqrtChunk(dst, r2)
	case CoulombCubed:
		mat.RecipCubeChunk(dst, r2)
	case Exponential:
		for t, v := range r2 {
			dst[t] = math.Exp(-math.Sqrt(v))
		}
	case Gaussian:
		s := kk.Scale
		if s == 0 {
			s = 0.1
		}
		for t, v := range r2 {
			r := math.Sqrt(v)
			dst[t] = math.Exp(-r * r / s)
		}
	case Matern32:
		l := kk.Length
		if l == 0 {
			l = 1
		}
		sq3 := math.Sqrt(3)
		for t, v := range r2 {
			a := sq3 * math.Sqrt(v) / l
			if a > 700 {
				dst[t] = 0
				continue
			}
			dst[t] = (1 + a) * math.Exp(-a)
		}
	case Matern52:
		l := kk.Length
		if l == 0 {
			l = 1
		}
		sq5 := math.Sqrt(5)
		for t, v := range r2 {
			a := sq5 * math.Sqrt(v) / l
			if a > 700 {
				dst[t] = 0
				continue
			}
			dst[t] = (1 + a + a*a/3) * math.Exp(-a)
		}
	case InverseMultiquadric:
		c := kk.C
		if c == 0 {
			c = 1
		}
		for t, v := range r2 {
			r := math.Sqrt(v)
			dst[t] = 1 / math.Sqrt(r*r+c*c)
		}
	case ThinPlate:
		for t, v := range r2 {
			r := math.Sqrt(v)
			if r == 0 {
				dst[t] = 0
				continue
			}
			dst[t] = r * r * math.Log(r)
		}
	default:
		for t, v := range r2 {
			dst[t] = k.EvalDist(math.Sqrt(v))
		}
	}
}

// pairChunk fills dst[t] = K(xi, y[cols[t]]) for general (non-radial)
// Pairwise kernels — the fused counterpart of assemblePair's inner loop.
func pairChunk(k Pairwise, dst []float64, xi []float64, y *pointset.Points, cols []int, d int) {
	for t, j := range cols {
		dst[t] = k.EvalPair(xi, y.Coords[j*d:j*d+d])
	}
}

// kernelChunk fills dst with kernel values between xi and y[cols], choosing
// the radial fused path or the pairwise fallback. r2 is chunk scratch.
func kernelChunk(rk Kernel, pk Pairwise, radial bool, dst, r2 []float64, xi []float64, y *pointset.Points, cols []int, d int) {
	if radial {
		distChunk(r2[:len(cols)], xi, y, cols, d)
		evalChunk(rk, dst, r2[:len(cols)])
		return
	}
	pairChunk(pk, dst[:len(cols)], xi, y, cols, d)
}

// evalOne returns the single kernel value K(xi, y[j]) with the same distance
// accumulation as the chunk paths. Only the <=3 per-row tail entries of the
// fused dot go through here, so the interface call is irrelevant.
func evalOne(rk Kernel, pk Pairwise, radial bool, xi []float64, y *pointset.Points, j, d int) float64 {
	yj := y.Coords[j*d : j*d+d]
	if !radial {
		return pk.EvalPair(xi, yj)
	}
	switch d {
	case 2:
		d0 := xi[0] - yj[0]
		d1 := xi[1] - yj[1]
		return rk.EvalDist(math.Sqrt(d0*d0 + d1*d1))
	case 3:
		d0 := xi[0] - yj[0]
		d1 := xi[1] - yj[1]
		d2 := xi[2] - yj[2]
		return rk.EvalDist(math.Sqrt(d0*d0 + d1*d1 + d2*d2))
	default:
		s := 0.0
		for c, v := range xi {
			dd := v - yj[c]
			s += dd * dd
		}
		return rk.EvalDist(math.Sqrt(s))
	}
}

// BlockVecAdd computes out[a] += Σ_b K(x[rows[a]], y[cols[b]]) * v[b] — the
// fused form of Assemble + mat.MulVecAdd, bitwise-identical to it. out is
// indexed by row position (len(rows)), v by column position (len(cols)).
func BlockVecAdd(out []float64, pk Pairwise, x *pointset.Points, rows []int, y *pointset.Points, cols []int, v []float64) {
	blockVecAdd(out, pk, x, rows, y, cols, v, false)
}

// BlockVecAddFMA is BlockVecAdd with fused multiply-adds (one rounding per
// multiply-add instead of two) — the Config.FastMath accumulation, NOT
// bitwise-compatible with the default path.
func BlockVecAddFMA(out []float64, pk Pairwise, x *pointset.Points, rows []int, y *pointset.Points, cols []int, v []float64) {
	blockVecAdd(out, pk, x, rows, y, cols, v, true)
}

func blockVecAdd(out []float64, pk Pairwise, x *pointset.Points, rows []int, y *pointset.Points, cols []int, v []float64, fma bool) {
	rk, radial := pk.(Kernel)
	d := x.Dim
	L := len(cols)
	U := L &^ 3 // end of dot's unrolled region; [U, L) is the sequential tail
	var r2buf, kbuf [fusedChunk]float64
	for a, i := range rows {
		xi := x.Coords[i*d : i*d+d]
		// acc's four lanes are dot's accumulators s0..s3; chunk lengths
		// inside [0, U) are multiples of 4, so the lane mapping never slips.
		var acc [4]float64
		for b0 := 0; b0 < U; b0 += fusedChunk {
			b1 := min(b0+fusedChunk, U)
			kernelChunk(rk, pk, radial, kbuf[:], r2buf[:], xi, y, cols[b0:b1], d)
			vv := v[b0:b1]
			if fma {
				mat.DotAcc4FMA(kbuf[:len(vv)], vv, &acc)
			} else {
				mat.DotAcc4(kbuf[:len(vv)], vv, &acc)
			}
		}
		s := (acc[0] + acc[1]) + (acc[2] + acc[3])
		for b := U; b < L; b++ {
			if fma {
				s = math.FMA(evalOne(rk, pk, radial, xi, y, cols[b], d), v[b], s)
			} else {
				s += evalOne(rk, pk, radial, xi, y, cols[b], d) * v[b]
			}
		}
		out[a] += s
	}
}

// BlockTVecAdd computes out[b] += Σ_a K(x[rows[a]], y[cols[b]]) * v[a] — the
// fused form of Assemble + mat.MulTVecAdd, bitwise-identical to it,
// including the per-row zero skips (rows whose multiplier is zero are not
// evaluated at all, exactly as MulTVecAdd never touches them). out is
// indexed by column position, v by row position.
func BlockTVecAdd(out []float64, pk Pairwise, x *pointset.Points, rows []int, y *pointset.Points, cols []int, v []float64) {
	blockTVecAdd(out, pk, x, rows, y, cols, v, false)
}

// BlockTVecAddFMA is BlockTVecAdd with fused multiply-adds — the
// Config.FastMath accumulation, NOT bitwise-compatible with the default path.
func BlockTVecAddFMA(out []float64, pk Pairwise, x *pointset.Points, rows []int, y *pointset.Points, cols []int, v []float64) {
	blockTVecAdd(out, pk, x, rows, y, cols, v, true)
}

func blockTVecAdd(out []float64, pk Pairwise, x *pointset.Points, rows []int, y *pointset.Points, cols []int, v []float64, fma bool) {
	rk, radial := pk.(Kernel)
	d := x.Dim
	R := len(rows)
	var r2buf, k0, k1, k2, k3 [fusedChunk]float64
	xrow := func(r int) []float64 {
		i := rows[r]
		return x.Coords[i*d : i*d+d]
	}
	// pair applies rows r and r+1 with multipliers x0, x1 under axpyPair's
	// zero-skip cases; single applies one row under axpy. The accumulation
	// loops dispatch through mat's chunk helpers (AVX when available).
	single := func(r int, xv float64) {
		xi := xrow(r)
		for b0 := 0; b0 < len(cols); b0 += fusedChunk {
			b1 := min(b0+fusedChunk, len(cols))
			kernelChunk(rk, pk, radial, k0[:], r2buf[:], xi, y, cols[b0:b1], d)
			oo := out[b0:b1]
			if fma {
				mat.AxpyChunkFMA(oo, xv, k0[:len(oo)])
			} else {
				mat.AxpyChunk(oo, xv, k0[:len(oo)])
			}
		}
	}
	pair := func(r int, x0, x1 float64) {
		switch {
		case x0 == 0 && x1 == 0:
		case x0 == 0:
			single(r+1, x1)
		case x1 == 0:
			single(r, x0)
		default:
			xi0, xi1 := xrow(r), xrow(r+1)
			for b0 := 0; b0 < len(cols); b0 += fusedChunk {
				b1 := min(b0+fusedChunk, len(cols))
				cc := cols[b0:b1]
				kernelChunk(rk, pk, radial, k0[:], r2buf[:], xi0, y, cc, d)
				kernelChunk(rk, pk, radial, k1[:], r2buf[:], xi1, y, cc, d)
				oo := out[b0:b1]
				if fma {
					mat.Axpy2ChunkFMA(oo, x0, k0[:len(oo)], x1, k1[:len(oo)])
				} else {
					mat.Axpy2Chunk(oo, x0, k0[:len(oo)], x1, k1[:len(oo)])
				}
			}
		}
	}
	r := 0
	for ; r+4 <= R; r += 4 {
		x0, x1, x2, x3 := v[r], v[r+1], v[r+2], v[r+3]
		if x0 != 0 && x1 != 0 && x2 != 0 && x3 != 0 {
			xi0, xi1, xi2, xi3 := xrow(r), xrow(r+1), xrow(r+2), xrow(r+3)
			for b0 := 0; b0 < len(cols); b0 += fusedChunk {
				b1 := min(b0+fusedChunk, len(cols))
				cc := cols[b0:b1]
				kernelChunk(rk, pk, radial, k0[:], r2buf[:], xi0, y, cc, d)
				kernelChunk(rk, pk, radial, k1[:], r2buf[:], xi1, y, cc, d)
				kernelChunk(rk, pk, radial, k2[:], r2buf[:], xi2, y, cc, d)
				kernelChunk(rk, pk, radial, k3[:], r2buf[:], xi3, y, cc, d)
				oo := out[b0:b1]
				if fma {
					mat.Axpy4ChunkFMA(oo, x0, k0[:len(oo)], x1, k1[:len(oo)], x2, k2[:len(oo)], x3, k3[:len(oo)])
				} else {
					mat.Axpy4Chunk(oo, x0, k0[:len(oo)], x1, k1[:len(oo)], x2, k2[:len(oo)], x3, k3[:len(oo)])
				}
			}
			continue
		}
		pair(r, x0, x1)
		pair(r+2, x2, x3)
	}
	for ; r+2 <= R; r += 2 {
		pair(r, v[r], v[r+1])
	}
	if r < R && v[r] != 0 {
		single(r, v[r])
	}
}

// BlockMulAdd computes C += K(x[rows], y[cols]) * B for a block of
// right-hand sides — the fused form of Assemble + mat.MulAddTo,
// bitwise-identical to it. Instead of the full rows x cols tile, only one
// tile row at a time is materialized into rowbuf (caller-owned scratch,
// reshaped here) and reused across every column of B, so the working set is
// one row panel regardless of tile size. C is len(rows) x B.Cols and B is
// len(cols) x B.Cols.
func BlockMulAdd(c *mat.Dense, pk Pairwise, x *pointset.Points, rows []int, y *pointset.Points, cols []int, b *mat.Dense, rowbuf *mat.Dense) {
	blockMulAdd(c, pk, x, rows, y, cols, b, rowbuf, false)
}

// BlockMulAddFMA is BlockMulAdd with fused multiply-adds — the
// Config.FastMath accumulation, NOT bitwise-compatible with the default path.
func BlockMulAddFMA(c *mat.Dense, pk Pairwise, x *pointset.Points, rows []int, y *pointset.Points, cols []int, b *mat.Dense, rowbuf *mat.Dense) {
	blockMulAdd(c, pk, x, rows, y, cols, b, rowbuf, true)
}

func blockMulAdd(c *mat.Dense, pk Pairwise, x *pointset.Points, rows []int, y *pointset.Points, cols []int, b *mat.Dense, rowbuf *mat.Dense, fma bool) {
	rk, radial := pk.(Kernel)
	d := x.Dim
	n := b.Cols
	rowbuf.Reshape(1, len(cols))
	row := rowbuf.Data
	var r2buf [fusedChunk]float64
	for a, i := range rows {
		xi := x.Coords[i*d : i*d+d]
		for b0 := 0; b0 < len(cols); b0 += fusedChunk {
			b1 := min(b0+fusedChunk, len(cols))
			kernelChunk(rk, pk, radial, row[b0:b1], r2buf[:], xi, y, cols[b0:b1], d)
		}
		crow := c.Row(a)
		if fma {
			for j := 0; j < n; j++ {
				crow[j] += mat.DotStrideFMA(row, b.Data, j, n)
			}
		} else {
			for j := 0; j < n; j++ {
				crow[j] += mat.DotStride(row, b.Data, j, n)
			}
		}
	}
}
