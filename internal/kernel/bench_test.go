package kernel

import (
	"math/rand"
	"testing"

	"h2ds/internal/mat"
	"h2ds/internal/pointset"
)

// Benchmarks for the tile-assembly substrate (the paper's §III-C "SIMD
// kernel evaluation" analogue): one 200x200 Coulomb tile is the unit of
// work the on-the-fly matvec repeats per block.

func benchIdx(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

func BenchmarkAssembleCoulomb3D(b *testing.B) {
	pts := pointset.Cube(400, 3, 1)
	rows := benchIdx(200)
	cols := benchIdx(400)[200:]
	dst := mat.NewDense(0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Assemble(dst, Coulomb{}, pts, rows, pts, cols)
	}
}

func BenchmarkAssembleGaussian5D(b *testing.B) {
	pts := pointset.Cube(400, 5, 2)
	rows := benchIdx(200)
	cols := benchIdx(400)[200:]
	dst := mat.NewDense(0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Assemble(dst, Gaussian{Scale: 0.1}, pts, rows, pts, cols)
	}
}

func BenchmarkApplyBlockStreaming(b *testing.B) {
	pts := pointset.Cube(400, 3, 3)
	rows := benchIdx(200)
	cols := benchIdx(400)[200:]
	rng := rand.New(rand.NewSource(4))
	v := make([]float64, 400)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	y := make([]float64, 400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ApplyBlock(Coulomb{}, pts, rows, cols, v, y)
	}
}
