package kernel

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"h2ds/internal/mat"
	"h2ds/internal/pointset"
)

// allKernels lists the radially decaying kernels (used by decay/positivity
// tests).
func allKernels() []Kernel {
	return []Kernel{Coulomb{}, CoulombCubed{}, Exponential{}, Gaussian{Scale: 0.1}, Matern32{Length: 1}, Matern52{Length: 1}, InverseMultiquadric{C: 1}}
}

// everyKernel adds the non-monotone thin-plate spline for tests that only
// need symmetry/assembly semantics.
func everyKernel() []Kernel {
	return append(allKernels(), ThinPlate{})
}

func TestKernelValues(t *testing.T) {
	cases := []struct {
		k    Kernel
		r    float64
		want float64
	}{
		{Coulomb{}, 2, 0.5},
		{Coulomb{}, 0, 0},
		{CoulombCubed{}, 2, 0.125},
		{CoulombCubed{}, 0, 0},
		{Exponential{}, 0, 1},
		{Exponential{}, 1, math.Exp(-1)},
		{Gaussian{Scale: 0.1}, 0, 1},
		{Gaussian{Scale: 0.1}, 1, math.Exp(-10)},
		{Gaussian{}, 1, math.Exp(-10)}, // zero Scale defaults to 0.1
		{Matern32{Length: 1}, 0, 1},
		{Matern32{}, 0, 1},
		{Matern52{Length: 1}, 0, 1},
		{Matern52{}, 0, 1},
		{InverseMultiquadric{C: 2}, 0, 0.5},
		{InverseMultiquadric{}, 0, 1}, // zero C defaults to 1
		{ThinPlate{}, 0, 0},
		{ThinPlate{}, 1, 0},
		{ThinPlate{}, math.E, math.E * math.E},
	}
	for _, c := range cases {
		if got := c.k.EvalDist(c.r); math.Abs(got-c.want) > 1e-14 {
			t.Errorf("%s(%g) = %g want %g", c.k.Name(), c.r, got, c.want)
		}
	}
}

func TestKernelsMonotoneDecay(t *testing.T) {
	// All included kernels are radially non-increasing for r > 0.
	for _, k := range allKernels() {
		prev := k.EvalDist(0.01)
		for r := 0.02; r < 5; r += 0.13 {
			v := k.EvalDist(r)
			if v > prev+1e-15 {
				t.Fatalf("%s not decaying at r=%g", k.Name(), r)
			}
			prev = v
		}
	}
}

func TestEvalMatchesDist(t *testing.T) {
	x := []float64{0, 0, 0}
	y := []float64{3, 4, 0}
	if got := Eval(Coulomb{}, x, y); math.Abs(got-0.2) > 1e-15 {
		t.Fatalf("Eval = %g want 0.2", got)
	}
}

func TestNamed(t *testing.T) {
	for _, name := range []string{"coulomb", "coulomb3", "exp", "gaussian", "matern32", "matern52", "imq", "thinplate"} {
		k, ok := Named(name)
		if !ok || k.Name() != name {
			t.Fatalf("Named(%q) -> %v %v", name, k, ok)
		}
	}
	if _, ok := Named("nope"); ok {
		t.Fatal("unknown kernel accepted")
	}
}

func TestByNameAndNames(t *testing.T) {
	names := Names()
	if len(names) == 0 {
		t.Fatal("empty registry")
	}
	for _, name := range names {
		k, err := ByName(name)
		if err != nil || k.Name() != name {
			t.Fatalf("ByName(%q) -> %v, %v", name, k, err)
		}
	}
	_, err := ByName("nope")
	if err == nil {
		t.Fatal("unknown kernel accepted")
	}
	for _, name := range names {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not list valid kernel %q", err, name)
		}
	}
	// Names returns a copy: mutating it must not corrupt the registry.
	names[0] = "mutated"
	if got := Names()[0]; got == "mutated" {
		t.Fatal("Names exposed internal storage")
	}
}

func TestAssembleAgainstEval(t *testing.T) {
	for _, d := range []int{2, 3, 4} { // exercises the 2-D, 3-D, and generic paths
		x := pointset.Cube(12, d, int64(d))
		y := pointset.Cube(9, d, int64(d+10))
		rows := []int{0, 5, 11, 3}
		cols := []int{8, 0, 2}
		for _, k := range everyKernel() {
			b := NewBlock(k, x, rows, y, cols)
			if b.Rows != 4 || b.Cols != 3 {
				t.Fatalf("d=%d %s: block shape %dx%d", d, k.Name(), b.Rows, b.Cols)
			}
			for a, i := range rows {
				for c, j := range cols {
					want := Eval(k, x.At(i), y.At(j))
					if math.Abs(b.At(a, c)-want) > 1e-14 {
						t.Fatalf("d=%d %s: block (%d,%d) = %g want %g", d, k.Name(), a, c, b.At(a, c), want)
					}
				}
			}
		}
	}
}

func TestAssembleReusesScratch(t *testing.T) {
	x := pointset.Cube(20, 3, 1)
	dst := mat.NewDense(0, 0)
	Assemble(dst, Coulomb{}, x, []int{0, 1, 2, 3, 4}, x, []int{5, 6, 7})
	d0 := &dst.Data[0]
	Assemble(dst, Coulomb{}, x, []int{0, 1}, x, []int{5, 6})
	if &dst.Data[0] != d0 {
		t.Fatal("Assemble should reuse scratch storage when it fits")
	}
}

func TestAssembleSymmetry(t *testing.T) {
	x := pointset.Sphere(30, 2)
	idxA := []int{1, 4, 9}
	idxB := []int{20, 7}
	for _, k := range everyKernel() {
		ab := NewBlock(k, x, idxA, x, idxB)
		ba := NewBlock(k, x, idxB, x, idxA)
		if !ab.Equal(ba.T(), 0) {
			t.Fatalf("%s: K(A,B) != K(B,A)ᵀ", k.Name())
		}
	}
}

func TestApplyBlockMatchesAssembled(t *testing.T) {
	x := pointset.Cube(40, 3, 3)
	rows := []int{0, 3, 17, 39}
	cols := []int{5, 6, 8, 22, 30}
	rng := rand.New(rand.NewSource(4))
	v := make([]float64, 40)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	for _, k := range everyKernel() {
		y1 := make([]float64, 40)
		ApplyBlock(k, x, rows, cols, v, y1)
		// Reference: assemble then multiply.
		b := NewBlock(k, x, rows, x, cols)
		vc := make([]float64, len(cols))
		for c, j := range cols {
			vc[c] = v[j]
		}
		prod := mat.MulVec(b, vc)
		for r, i := range rows {
			if math.Abs(y1[i]-prod[r]) > 1e-12 {
				t.Fatalf("%s: ApplyBlock row %d = %g want %g", k.Name(), i, y1[i], prod[r])
			}
		}
	}
}

func TestRowApplyMatchesFullProduct(t *testing.T) {
	x := pointset.Cube(25, 2, 6)
	rng := rand.New(rand.NewSource(7))
	v := make([]float64, 25)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	all := make([]int, 25)
	for i := range all {
		all[i] = i
	}
	k := Exponential{}
	a := NewBlock(k, x, all, x, all)
	want := mat.MulVec(a, v)
	for _, i := range []int{0, 7, 24} {
		got := RowApply(k, x, i, v)
		if math.Abs(got-want[i]) > 1e-12 {
			t.Fatalf("RowApply(%d) = %g want %g", i, got, want[i])
		}
	}
}

func TestKernelPositivityProperty(t *testing.T) {
	// All these kernels are non-negative everywhere.
	f := func(r float64) bool {
		r = math.Abs(r)
		for _, k := range allKernels() {
			if v := k.EvalDist(r); v < 0 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
