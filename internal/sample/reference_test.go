package sample

import (
	"math/rand"
	"testing"

	"h2ds/internal/pointset"
)

// TestAnchorNetReferenceIdentical: the tuned nearest-candidate scan and the
// pre-acceleration reference scan must select byte-identical sample sets —
// the contract that lets SeedConstruction builds share skeletons, caches,
// and certificates with accelerated ones.
func TestAnchorNetReferenceIdentical(t *testing.T) {
	ref := Reference(AnchorNet{})
	if ref.Name() != "anchornet" || Key(ref) != Key(AnchorNet{}) {
		t.Fatalf("reference sampler identity diverged: name %q key %q", ref.Name(), Key(ref))
	}
	for _, dim := range []int{1, 2, 3, 5} {
		for _, n := range []int{10, 100, 700} {
			pts := pointset.New(n, dim)
			rng := rand.New(rand.NewSource(int64(dim*1000 + n)))
			for i := range pts.Coords {
				pts.Coords[i] = rng.NormFloat64()
			}
			// Include a coincident pair so duplicate-selection ties exercise
			// the strict-improvement rule.
			if n > 1 {
				copy(pts.At(1), pts.At(0))
			}
			cand := allIdx(n)
			for _, m := range []int{1, 5, n / 2, n} {
				if m < 1 {
					continue
				}
				got := AnchorNet{}.Sample(pts, cand, m)
				want := ref.Sample(pts, cand, m)
				if len(got) != len(want) {
					t.Fatalf("dim %d n %d m %d: %d vs %d selections", dim, n, m, len(got), len(want))
				}
				for k := range got {
					if got[k] != want[k] {
						t.Fatalf("dim %d n %d m %d: selection %d differs: %d vs %d",
							dim, n, m, k, got[k], want[k])
					}
				}
			}
		}
	}
}

// TestAnchorNetGridIdentical stresses the cell-grid search against the
// reference scan on geometries that exercise its edge cases: tight clusters
// (many shells crossed, duplicate selections), a collapsed axis (planar
// points, degenerate cell extents), a coordinate grid (massed distance
// ties), and sets large enough for multi-shell early termination.
func TestAnchorNetGridIdentical(t *testing.T) {
	ref := Reference(AnchorNet{})
	gen := map[string]func(n int) *pointset.Points{
		"clusters": func(n int) *pointset.Points {
			pts := pointset.New(n, 3)
			rng := rand.New(rand.NewSource(int64(n)))
			for i := 0; i < n; i++ {
				c := float64(i % 5)
				p := pts.At(i)
				for j := range p {
					p[j] = 10*c + 0.01*rng.NormFloat64()
				}
			}
			return pts
		},
		"planar": func(n int) *pointset.Points {
			pts := pointset.New(n, 3)
			rng := rand.New(rand.NewSource(int64(n) + 1))
			for i := 0; i < n; i++ {
				p := pts.At(i)
				p[0], p[1], p[2] = rng.Float64(), rng.Float64(), 4.5
			}
			return pts
		},
		"lattice": func(n int) *pointset.Points {
			pts := pointset.New(n, 3)
			for i := 0; i < n; i++ {
				p := pts.At(i)
				p[0], p[1], p[2] = float64(i%10), float64((i/10)%10), float64(i/100)
			}
			return pts
		},
	}
	for name, g := range gen {
		for _, n := range []int{200, 1000, 5000} {
			pts := g(n)
			cand := allIdx(n)
			for _, m := range []int{16, 120, n / 3} {
				got := AnchorNet{}.Sample(pts, cand, m)
				want := ref.Sample(pts, cand, m)
				if len(got) != len(want) {
					t.Fatalf("%s n %d m %d: %d vs %d selections", name, n, m, len(got), len(want))
				}
				for k := range got {
					if got[k] != want[k] {
						t.Fatalf("%s n %d m %d: selection %d differs: %d vs %d",
							name, n, m, k, got[k], want[k])
					}
				}
			}
		}
	}
}

// TestReferencePassThrough: non-anchornet samplers have no separate
// reference implementation and pass through unchanged.
func TestReferencePassThrough(t *testing.T) {
	s := Reference(FarthestPoint{})
	if _, ok := s.(FarthestPoint); !ok {
		t.Fatalf("FarthestPoint should pass through Reference, got %T", s)
	}
}
