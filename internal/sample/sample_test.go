package sample

import (
	"testing"

	"h2ds/internal/pointset"
	"h2ds/internal/tree"
)

func allIdx(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

func allSamplers() []Sampler {
	return []Sampler{AnchorNet{}, FarthestPoint{}, Random{Seed: 1}}
}

func checkSubsetNoDup(t *testing.T, name string, cand, got []int, m int) {
	t.Helper()
	inCand := make(map[int]bool, len(cand))
	for _, c := range cand {
		inCand[c] = true
	}
	seen := make(map[int]bool, len(got))
	for _, g := range got {
		if !inCand[g] {
			t.Fatalf("%s: selected %d not in candidates", name, g)
		}
		if seen[g] {
			t.Fatalf("%s: duplicate selection %d", name, g)
		}
		seen[g] = true
	}
	if len(got) > m {
		t.Fatalf("%s: %d selections exceed budget %d", name, len(got), m)
	}
}

func TestSamplersBasicContract(t *testing.T) {
	pts := pointset.Cube(200, 3, 1)
	cand := allIdx(200)
	for _, s := range allSamplers() {
		got := s.Sample(pts, cand, 20)
		checkSubsetNoDup(t, s.Name(), cand, got, 20)
		if len(got) < 15 {
			t.Fatalf("%s: only %d of 20 requested samples from 200 spread candidates", s.Name(), len(got))
		}
	}
}

func TestSamplersSmallCandidateSetPassthrough(t *testing.T) {
	pts := pointset.Cube(10, 2, 2)
	cand := []int{3, 7, 9}
	for _, s := range allSamplers() {
		got := s.Sample(pts, cand, 5)
		if len(got) != 3 {
			t.Fatalf("%s: want passthrough of 3 candidates, got %d", s.Name(), len(got))
		}
		checkSubsetNoDup(t, s.Name(), cand, got, 5)
	}
}

func TestSamplersDeterministic(t *testing.T) {
	pts := pointset.Sphere(300, 3)
	cand := allIdx(300)
	for _, s := range allSamplers() {
		a := s.Sample(pts, cand, 25)
		b := s.Sample(pts, cand, 25)
		if len(a) != len(b) {
			t.Fatalf("%s: nondeterministic length", s.Name())
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: nondeterministic selection", s.Name())
			}
		}
	}
}

func TestSamplersCoverage(t *testing.T) {
	// Geometric samplers must spread over the box: with candidates split
	// between two distant clusters, both clusters must be represented.
	pts := pointset.New(0, 2)
	for i := 0; i < 50; i++ {
		pts.Append([]float64{float64(i%7) * 0.01, float64(i%5) * 0.01})
	}
	for i := 0; i < 50; i++ {
		pts.Append([]float64{10 + float64(i%7)*0.01, 10 + float64(i%5)*0.01})
	}
	for _, s := range []Sampler{AnchorNet{}, FarthestPoint{}} {
		got := s.Sample(pts, allIdx(100), 10)
		lo, hi := 0, 0
		for _, g := range got {
			if g < 50 {
				lo++
			} else {
				hi++
			}
		}
		if lo == 0 || hi == 0 {
			t.Fatalf("%s: failed to cover both clusters (lo=%d hi=%d)", s.Name(), lo, hi)
		}
	}
}

func TestAnchorNetDuplicatePointsBounded(t *testing.T) {
	// Identical candidates: the sampler must terminate and return one point.
	pts := pointset.New(0, 2)
	for i := 0; i < 40; i++ {
		pts.Append([]float64{1, 1})
	}
	got := AnchorNet{}.Sample(pts, allIdx(40), 8)
	if len(got) != 1 {
		t.Fatalf("identical candidates should collapse to 1 sample, got %d", len(got))
	}
	gotF := FarthestPoint{}.Sample(pts, allIdx(40), 8)
	if len(gotF) != 1 {
		t.Fatalf("fps on identical candidates: got %d", len(gotF))
	}
}

func TestNamed(t *testing.T) {
	for _, n := range []string{"anchornet", "fps", "random"} {
		s, ok := Named(n)
		if !ok || s.Name() != n {
			t.Fatalf("Named(%q)", n)
		}
	}
	if _, ok := Named("bogus"); ok {
		t.Fatal("unknown sampler accepted")
	}
}

func TestHierarchyStructure(t *testing.T) {
	pts := pointset.Cube(600, 3, 9)
	tr := tree.New(pts, tree.Config{LeafSize: 30})
	h := Run(tr, AnchorNet{}, 16, 2)
	if len(h.XStar) != len(tr.Nodes) || len(h.YStar) != len(tr.Nodes) {
		t.Fatal("hierarchy arrays sized wrong")
	}
	for id := range tr.Nodes {
		nd := &tr.Nodes[id]
		if len(h.XStar[id]) > 16 || len(h.YStar[id]) > 16 {
			t.Fatalf("node %d exceeds budget: |X*|=%d |Y*|=%d", id, len(h.XStar[id]), len(h.YStar[id]))
		}
		// X* must be points owned by the node.
		for _, p := range h.XStar[id] {
			if p < nd.Start || p >= nd.End {
				t.Fatalf("node %d X* point %d outside range [%d,%d)", id, p, nd.Start, nd.End)
			}
		}
		if nd.Size() > 0 && len(h.XStar[id]) == 0 {
			t.Fatalf("node %d has points but empty X*", id)
		}
		// Y* must be well-separated-ish: no Y* point may belong to the node
		// itself (farfield only).
		for _, p := range h.YStar[id] {
			if p >= nd.Start && p < nd.End {
				t.Fatalf("node %d Y* contains own point %d", id, p)
			}
		}
	}
	// Root has no farfield.
	if len(h.YStar[tr.Root()]) != 0 {
		t.Fatal("root Y* must be empty")
	}
	// Some node must have a non-empty Y*.
	any := false
	for id := range tr.Nodes {
		if len(h.YStar[id]) > 0 {
			any = true
			break
		}
	}
	if !any {
		t.Fatal("no node received farfield samples")
	}
	if h.Bytes() <= 0 {
		t.Fatal("Bytes must be positive")
	}
}

func TestHierarchyYStarInheritsAncestors(t *testing.T) {
	// A leaf's Y* candidate pool includes the parent's Y*; verify that some
	// leaf Y* point lies outside the union of its own interaction-list
	// nodes (i.e. it was inherited from an ancestor's farfield).
	pts := pointset.Cube(800, 3, 10)
	tr := tree.New(pts, tree.Config{LeafSize: 25})
	h := Run(tr, AnchorNet{}, 12, 1)
	inherited := false
	for _, leaf := range tr.Leaves {
		nd := &tr.Nodes[leaf]
		inIL := func(p int) bool {
			for _, j := range nd.Interaction {
				jn := &tr.Nodes[j]
				if p >= jn.Start && p < jn.End {
					return true
				}
			}
			return false
		}
		for _, p := range h.YStar[leaf] {
			if !inIL(p) {
				inherited = true
				break
			}
		}
		if inherited {
			break
		}
	}
	if !inherited {
		t.Fatal("no leaf inherited ancestor farfield samples; top-down sweep broken")
	}
}

func TestHierarchyWorkerIndependence(t *testing.T) {
	pts := pointset.Dino(500, 11)
	tr := tree.New(pts, tree.Config{LeafSize: 20})
	a := Run(tr, AnchorNet{}, 10, 1)
	b := Run(tr, AnchorNet{}, 10, 4)
	for id := range tr.Nodes {
		if len(a.XStar[id]) != len(b.XStar[id]) || len(a.YStar[id]) != len(b.YStar[id]) {
			t.Fatalf("node %d: sample sets depend on worker count", id)
		}
		for k := range a.XStar[id] {
			if a.XStar[id][k] != b.XStar[id][k] {
				t.Fatalf("node %d: X* differs across worker counts", id)
			}
		}
		for k := range a.YStar[id] {
			if a.YStar[id][k] != b.YStar[id][k] {
				t.Fatalf("node %d: Y* differs across worker counts", id)
			}
		}
	}
}

func TestHaltonProperties(t *testing.T) {
	// Halton values lie in [0,1) and early base-2 values hit known points.
	want := []float64{0.5, 0.25, 0.75, 0.125}
	for i, w := range want {
		if got := halton(i+1, 2); got != w {
			t.Fatalf("halton(%d,2)=%g want %g", i+1, got, w)
		}
	}
	for i := 1; i < 200; i++ {
		for _, b := range []int{2, 3, 5} {
			v := halton(i, b)
			if v < 0 || v >= 1 {
				t.Fatalf("halton(%d,%d)=%g out of [0,1)", i, b, v)
			}
		}
	}
}
