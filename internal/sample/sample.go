// Package sample implements the data-driven sampling machinery of the
// paper: point-subset samplers (the anchor-net Nyström sampler of ref [25],
// plus farthest-point and uniform-random baselines for ablation) and the
// hierarchical sampling sweep of Algorithm 1 that produces the farfield
// surrogate sets Y*_i for every tree node in O(n) total work.
//
// Sampling operates on point indices only and never evaluates the kernel —
// the property that lets one hierarchical sampling be amortized across many
// kernels (paper §VI-A).
package sample

import (
	"math"
	"math/rand"

	"h2ds/internal/par"
	"h2ds/internal/pointset"
	"h2ds/internal/tree"
)

// Sampler selects a representative subset of at most m points from a
// candidate set. cand holds indices into pts; the result is a subset of
// cand (ordering chosen by the sampler, duplicates removed).
type Sampler interface {
	Sample(pts *pointset.Points, cand []int, m int) []int
	Name() string
}

// AnchorNet is the paper's sampler (§III-D): it lays a low-discrepancy
// lattice (Halton sequence) over the bounding box of the candidate set and
// keeps, for each lattice anchor, the nearest candidate point. The lattice
// is dimension independent, which is what makes the data-driven method
// viable beyond three dimensions.
type AnchorNet struct{}

// Name implements Sampler.
func (AnchorNet) Name() string { return "anchornet" }

// halton returns the i-th element (1-based internally) of the van der
// Corput sequence in the given base.
func halton(i, base int) float64 {
	f := 1.0
	r := 0.0
	for i > 0 {
		f /= float64(base)
		r += f * float64(i%base)
		i /= base
	}
	return r
}

// haltonBases are the first primes, one per dimension.
var haltonBases = []int{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43}

// Sample implements Sampler.
func (AnchorNet) Sample(pts *pointset.Points, cand []int, m int) []int {
	if len(cand) <= m {
		return append([]int(nil), cand...)
	}
	d := pts.Dim
	box := pointset.NewBBox(pts, cand)
	widths := make([]float64, d)
	for j := 0; j < d; j++ {
		widths[j] = box.Max[j] - box.Min[j]
	}
	anchor := make([]float64, d)
	chosen := make([]int, 0, m)
	taken := make(map[int]bool, m)
	for a := 1; len(chosen) < m; a++ {
		for j := 0; j < d; j++ {
			base := haltonBases[j%len(haltonBases)]
			anchor[j] = box.Min[j] + widths[j]*halton(a, base)
		}
		// Nearest candidate to this anchor.
		best, bestD := -1, math.Inf(1)
		for _, i := range cand {
			if dd := pointset.Dist2(anchor, pts.At(i)); dd < bestD {
				best, bestD = i, dd
			}
		}
		if !taken[best] {
			taken[best] = true
			chosen = append(chosen, best)
		}
		// Candidates can be exhausted by duplicates faster than anchors; the
		// a > 4m guard bounds the scan when many anchors collapse onto the
		// same few points (e.g. tight clusters).
		if a > 4*m {
			break
		}
	}
	return chosen
}

// FarthestPoint is the classic farthest-point (k-center) sampler: start
// from the candidate nearest the box center, then greedily add the point
// maximizing the minimum distance to the selected set.
type FarthestPoint struct{}

// Name implements Sampler.
func (FarthestPoint) Name() string { return "fps" }

// Sample implements Sampler.
func (FarthestPoint) Sample(pts *pointset.Points, cand []int, m int) []int {
	if len(cand) <= m {
		return append([]int(nil), cand...)
	}
	box := pointset.NewBBox(pts, cand)
	center := box.Center()
	first, bestD := 0, math.Inf(1)
	for k, i := range cand {
		if dd := pointset.Dist2(center, pts.At(i)); dd < bestD {
			first, bestD = k, dd
		}
	}
	chosen := make([]int, 0, m)
	chosen = append(chosen, cand[first])
	minD := make([]float64, len(cand))
	for k, i := range cand {
		minD[k] = pointset.Dist2(pts.At(cand[first]), pts.At(i))
	}
	for len(chosen) < m {
		far, farD := -1, -1.0
		for k, dd := range minD {
			if dd > farD {
				far, farD = k, dd
			}
		}
		if farD <= 0 {
			break // all remaining candidates coincide with selections
		}
		chosen = append(chosen, cand[far])
		for k, i := range cand {
			if dd := pointset.Dist2(pts.At(cand[far]), pts.At(i)); dd < minD[k] {
				minD[k] = dd
			}
		}
	}
	return chosen
}

// Random is the original Nyström baseline: a uniform random subset. The
// seed makes runs reproducible.
type Random struct {
	Seed int64
}

// Name implements Sampler.
func (Random) Name() string { return "random" }

// Sample implements Sampler.
func (r Random) Sample(pts *pointset.Points, cand []int, m int) []int {
	if len(cand) <= m {
		return append([]int(nil), cand...)
	}
	// Derive a per-call seed from the candidate set so different nodes draw
	// different (but reproducible) subsets.
	h := r.Seed
	for _, c := range cand[:min(len(cand), 8)] {
		h = h*1000003 + int64(c)
	}
	rng := rand.New(rand.NewSource(h))
	perm := rng.Perm(len(cand))[:m]
	out := make([]int, m)
	for k, p := range perm {
		out[k] = cand[p]
	}
	return out
}

// Named returns a sampler by harness name ("anchornet", "fps", "random").
func Named(name string) (Sampler, bool) {
	switch name {
	case "anchornet":
		return AnchorNet{}, true
	case "fps":
		return FarthestPoint{}, true
	case "random":
		return Random{Seed: 1}, true
	default:
		return nil, false
	}
}

// Hierarchy holds the output of the hierarchical sampling sweep
// (Algorithm 1): for every node i, the self surrogate X*_i and the farfield
// surrogate Y*_i, both as permuted point indices into tr.Points.
type Hierarchy struct {
	XStar [][]int
	YStar [][]int
}

// Run executes Algorithm 1 on the tree: a bottom-to-top sweep building the
// self surrogates X*_i and a top-to-bottom sweep building the farfield
// surrogates Y*_i from interaction-list surrogates plus the parent's
// inherited Y*. Nodes on a level are processed in parallel.
//
// budget is the per-node sample size m (the paper's O(1) node cost).
func Run(tr *tree.Tree, s Sampler, budget, workers int) *Hierarchy {
	n := len(tr.Nodes)
	h := &Hierarchy{XStar: make([][]int, n), YStar: make([][]int, n)}

	// Bottom-to-top: leaves sample their own points; parents sample the
	// union of their children's samples.
	for l := tr.Depth() - 1; l >= 0; l-- {
		level := tr.Levels[l]
		par.For(workers, len(level), func(k int) {
			id := level[k]
			nd := &tr.Nodes[id]
			var cand []int
			if nd.IsLeaf {
				cand = make([]int, nd.Size())
				for p := 0; p < nd.Size(); p++ {
					cand[p] = nd.Start + p
				}
			} else {
				for _, c := range nd.Children {
					cand = append(cand, h.XStar[c]...)
				}
			}
			h.XStar[id] = s.Sample(tr.Points, cand, budget)
		})
	}

	// Top-to-bottom: Y*_i = Sample( ∪_{j ∈ IL(i)} X*_j  ∪  Y*_parent ).
	for l := 0; l < tr.Depth(); l++ {
		level := tr.Levels[l]
		par.For(workers, len(level), func(k int) {
			id := level[k]
			nd := &tr.Nodes[id]
			var cand []int
			for _, j := range nd.Interaction {
				cand = append(cand, h.XStar[j]...)
			}
			if nd.Parent >= 0 {
				cand = append(cand, h.YStar[nd.Parent]...)
			}
			h.YStar[id] = s.Sample(tr.Points, cand, budget)
		})
	}
	return h
}

// Bytes returns the memory footprint of the stored sample index sets.
func (h *Hierarchy) Bytes() int64 {
	var b int64
	for i := range h.XStar {
		b += int64(len(h.XStar[i])+len(h.YStar[i])) * 8
	}
	return b
}
