// Package sample implements the data-driven sampling machinery of the
// paper: point-subset samplers (the anchor-net Nyström sampler of ref [25],
// plus farthest-point and uniform-random baselines for ablation) and the
// hierarchical sampling sweep of Algorithm 1 that produces the farfield
// surrogate sets Y*_i for every tree node in O(n) total work.
//
// Sampling operates on point indices only and never evaluates the kernel —
// the property that lets one hierarchical sampling be amortized across many
// kernels (paper §VI-A).
package sample

import (
	"fmt"
	"math"
	"math/rand"

	"h2ds/internal/par"
	"h2ds/internal/pointset"
	"h2ds/internal/tree"
)

// Sampler selects a representative subset of at most m points from a
// candidate set. cand holds indices into pts; the result is a subset of
// cand (ordering chosen by the sampler, duplicates removed).
type Sampler interface {
	Sample(pts *pointset.Points, cand []int, m int) []int
	Name() string
}

// AnchorNet is the paper's sampler (§III-D): it lays a low-discrepancy
// lattice (Halton sequence) over the bounding box of the candidate set and
// keeps, for each lattice anchor, the nearest candidate point. The lattice
// is dimension independent, which is what makes the data-driven method
// viable beyond three dimensions.
type AnchorNet struct{}

// Name implements Sampler.
func (AnchorNet) Name() string { return "anchornet" }

// halton returns the i-th element (1-based internally) of the van der
// Corput sequence in the given base.
func halton(i, base int) float64 {
	f := 1.0
	r := 0.0
	for i > 0 {
		f /= float64(base)
		r += f * float64(i%base)
		i /= base
	}
	return r
}

// haltonBases are the first primes, one per dimension.
var haltonBases = []int{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43}

// Sample implements Sampler.
func (AnchorNet) Sample(pts *pointset.Points, cand []int, m int) []int {
	return anchorNetSample(pts, cand, m, newGridNearest)
}

// nearestSearch answers nearest-candidate queries for one fixed candidate
// set, returning the winner's position in cand (so callers can key per-point
// state off a dense position index); a searchFactory builds one per Sample
// call so per-set structures (the cell grid) are amortized over every anchor
// of that call.
type nearestSearch func(anchor []float64) int

type searchFactory func(pts *pointset.Points, cand []int, box pointset.BBox) nearestSearch

// anchorNetSample is the anchor sweep shared by the tuned and reference
// nearest-candidate searches: both pick bitwise-identical points, so they
// are interchangeable mid-hierarchy.
func anchorNetSample(pts *pointset.Points, cand []int, m int, factory searchFactory) []int {
	if len(cand) <= m {
		return append([]int(nil), cand...)
	}
	d := pts.Dim
	box := pointset.NewBBox(pts, cand)
	widths := make([]float64, d)
	for j := 0; j < d; j++ {
		widths[j] = box.Max[j] - box.Min[j]
	}
	nearest := factory(pts, cand, box)
	anchor := make([]float64, d)
	chosen := make([]int, 0, m)
	// Every search variant resolves distance ties to the smallest candidate
	// position, so positions map one-to-one onto selectable points and a
	// dense position-keyed slice replaces a point-index map.
	taken := make([]bool, len(cand))
	for a := 1; len(chosen) < m; a++ {
		for j := 0; j < d; j++ {
			base := haltonBases[j%len(haltonBases)]
			anchor[j] = box.Min[j] + widths[j]*halton(a, base)
		}
		best := nearest(anchor)
		if !taken[best] {
			taken[best] = true
			chosen = append(chosen, cand[best])
		}
		// Candidates can be exhausted by duplicates faster than anchors; the
		// a > 4m guard bounds the scan when many anchors collapse onto the
		// same few points (e.g. tight clusters).
		if a > 4*m {
			break
		}
	}
	return chosen
}

// nearestTo scans the candidate coordinates directly for the candidate
// position closest to anchor, with the common dimensions unrolled. Each
// squared distance is accumulated coordinate-ascending exactly like
// pointset.Dist2 and ties break on the first strict improvement, so the
// selected position is bitwise-identical to nearestRef. It is the
// small-candidate-set fallback of the cell-grid search.
func nearestTo(pts *pointset.Points, cand []int, anchor []float64) int {
	best, bestD := -1, math.Inf(1)
	co := pts.Coords
	switch pts.Dim {
	case 2:
		ax, ay := anchor[0], anchor[1]
		for pos, i := range cand {
			p := co[i*2 : i*2+2 : i*2+2]
			dx, dy := ax-p[0], ay-p[1]
			if dd := dx*dx + dy*dy; dd < bestD {
				best, bestD = pos, dd
			}
		}
	case 3:
		ax, ay, az := anchor[0], anchor[1], anchor[2]
		for pos, i := range cand {
			p := co[i*3 : i*3+3 : i*3+3]
			dx, dy, dz := ax-p[0], ay-p[1], az-p[2]
			if dd := dx*dx + dy*dy + dz*dz; dd < bestD {
				best, bestD = pos, dd
			}
		}
	default:
		d := pts.Dim
		for pos, i := range cand {
			p := co[i*d : i*d+d : i*d+d]
			var dd float64
			for j, a := range anchor {
				dj := a - p[j]
				dd += dj * dj
			}
			if dd < bestD {
				best, bestD = pos, dd
			}
		}
	}
	return best
}

// nearestRef is the pre-acceleration scan (Dist2 over At views), retained as
// the SeedConstruction A/B baseline for construction benchmarks. Like every
// other search it returns the winner's position in cand.
func nearestRef(pts *pointset.Points, cand []int, anchor []float64) int {
	best, bestD := -1, math.Inf(1)
	for pos, i := range cand {
		if dd := pointset.Dist2(anchor, pts.At(i)); dd < bestD {
			best, bestD = pos, dd
		}
	}
	return best
}

// gridMinCand is the candidate-set size below which the cell grid costs more
// to build than the linear scans it replaces.
const gridMinCand = 128

// gridMaxCells bounds the flattened cell count so degenerate aspect ratios
// cannot balloon the bucket arrays.
const gridMaxCells = 1 << 16

// newGridNearest is the tuned search factory: large candidate sets get a
// uniform cell grid queried by expanding Chebyshev shells; small or fully
// degenerate (zero-extent) sets fall back to the linear nearestTo scan. The
// selected candidate is always bitwise-identical to the linear scan's (see
// candGrid.query).
func newGridNearest(pts *pointset.Points, cand []int, box pointset.BBox) nearestSearch {
	if len(cand) >= gridMinCand {
		if g := newCandGrid(pts, cand, box); g != nil {
			return g.query
		}
	}
	return func(anchor []float64) int { return nearestTo(pts, cand, anchor) }
}

// candGrid buckets one candidate set into a uniform grid over its bounding
// box for exact nearest-candidate queries.
type candGrid struct {
	pts     *pointset.Points
	cand    []int
	min     []float64 // bbox lower corner
	inv     []float64 // cells[j] / width[j] (0 on collapsed axes)
	cells   []int     // cells per axis (1 on collapsed axes)
	minEdge float64   // smallest edge among axes with >= 2 cells
	start   []int32   // CSR offsets per flattened cell
	items   []int32   // positions into cand, cell-major, cand order within a cell
	// query scratch (Sample calls are single-goroutine; parallelism in the
	// hierarchy sweep is across nodes, each with its own grid).
	c, lo, hi, idx []int
}

// newCandGrid returns nil when every axis is collapsed (all candidates
// coincide), in which case a grid cannot beat the linear scan anyway.
func newCandGrid(pts *pointset.Points, cand []int, box pointset.BBox) *candGrid {
	d := pts.Dim
	// Aim for about two candidates per cell on the non-degenerate axes,
	// splitting the cell budget evenly among them.
	live := 0
	for j := 0; j < d; j++ {
		if box.Max[j] > box.Min[j] {
			live++
		}
	}
	if live == 0 {
		return nil
	}
	perAxis := int(math.Pow(float64(len(cand))/2, 1/float64(live)))
	if perAxis < 2 {
		perAxis = 2
	}
	g := &candGrid{
		pts: pts, cand: cand,
		min: box.Min, inv: make([]float64, d), cells: make([]int, d),
		minEdge: math.Inf(1),
		c:       make([]int, d), lo: make([]int, d), hi: make([]int, d), idx: make([]int, d),
	}
	total := 1
	for j := 0; j < d; j++ {
		w := box.Max[j] - box.Min[j]
		if w <= 0 || total*perAxis > gridMaxCells {
			g.cells[j] = 1
			continue
		}
		g.cells[j] = perAxis
		g.inv[j] = float64(perAxis) / w
		if edge := w / float64(perAxis); edge < g.minEdge {
			g.minEdge = edge
		}
		total *= perAxis
	}
	if total == 1 {
		return nil
	}
	// Counting sort into cell buckets, preserving cand order within a cell —
	// the order the tie rule (first strict improvement) is defined over.
	g.start = make([]int32, total+1)
	g.items = make([]int32, len(cand))
	cells := make([]int32, len(cand))
	for p, i := range cand {
		cells[p] = int32(g.cellOf(pts.At(i)))
		g.start[cells[p]+1]++
	}
	for c := 1; c <= total; c++ {
		g.start[c] += g.start[c-1]
	}
	next := make([]int32, total)
	copy(next, g.start[:total])
	for p := range cand {
		g.items[next[cells[p]]] = int32(p)
		next[cells[p]]++
	}
	return g
}

// cellOf maps a coordinate to its flattened cell index.
func (g *candGrid) cellOf(x []float64) int {
	cell := 0
	for j, cj := range g.cells {
		k := 0
		if cj > 1 {
			k = int((x[j] - g.min[j]) * g.inv[j])
			if k < 0 {
				k = 0
			} else if k >= cj {
				k = cj - 1
			}
		}
		cell = cell*cj + k
	}
	return cell
}

// query returns the candidate nearest to anchor, bitwise-identical to the
// linear scan: it tracks the lexicographic minimum of (squared distance,
// cand position) — exactly the point the first-strict-improvement linear
// scan ends on — over expanding Chebyshev cell shells, and stops after shell
// t only when bestD < ((t-0.25)·minEdge)². Any unscanned candidate then sits
// at least one whole cell edge away per shell beyond t (minus cell-assignment
// rounding, which the quarter-edge slack dwarfs), so its distance is
// strictly larger and it can neither win nor tie.
func (g *candGrid) query(anchor []float64) int {
	d := len(g.cells)
	maxShell := 0
	for j := 0; j < d; j++ {
		k := 0
		if cj := g.cells[j]; cj > 1 {
			k = int((anchor[j] - g.min[j]) * g.inv[j])
			if k < 0 {
				k = 0
			} else if k >= cj {
				k = cj - 1
			}
			if k > maxShell {
				maxShell = k
			}
			if s := cj - 1 - k; s > maxShell {
				maxShell = s
			}
		}
		g.c[j] = k
	}
	co := g.pts.Coords
	bestPos := -1
	bestD := math.Inf(1)
	// scanRun visits the contiguous flattened cells [first, last]: with the
	// last axis varying fastest, their CSR item ranges are adjacent, so the
	// whole run is one slice of items. The dominant 3-D distance is inlined
	// (this loop sees every scanned candidate).
	var ax, ay, az float64
	if d == 3 {
		ax, ay, az = anchor[0], anchor[1], anchor[2]
	}
	scanRun := func(first, last int) {
		for _, pos32 := range g.items[g.start[first]:g.start[last+1]] {
			pos := int(pos32)
			i := g.cand[pos]
			var dd float64
			switch d {
			case 3:
				q := co[i*3 : i*3+3 : i*3+3]
				dx, dy, dz := ax-q[0], ay-q[1], az-q[2]
				dd = dx*dx + dy*dy + dz*dz
			case 2:
				q := co[i*2 : i*2+2 : i*2+2]
				dx, dy := anchor[0]-q[0], anchor[1]-q[1]
				dd = dx*dx + dy*dy
			default:
				q := co[i*d : i*d+d : i*d+d]
				for j, a := range anchor {
					dj := a - q[j]
					dd += dj * dj
				}
			}
			if dd < bestD || (dd == bestD && pos < bestPos) {
				bestD, bestPos = dd, pos
			}
		}
	}
	for t := 0; t <= maxShell; t++ {
		// Walk the cells at Chebyshev distance exactly t from c within the
		// clipped box [c-t, c+t] (earlier shells were already scanned).
		if d == 3 {
			// The dominant case, walked directly: whenever the outer two
			// axes already realize distance t, the whole inner row of cells
			// qualifies and is scanned as one contiguous run; otherwise only
			// the two inner faces do.
			cx, cy, cz := g.c[0], g.c[1], g.c[2]
			cy2, cz2 := g.cells[1], g.cells[2]
			loz, hiz := max(cz-t, 0), min(cz+t, cz2-1)
			for ix := max(cx-t, 0); ix <= min(cx+t, g.cells[0]-1); ix++ {
				sx := abs(ix - cx)
				for iy := max(cy-t, 0); iy <= min(cy+t, cy2-1); iy++ {
					base := (ix*cy2 + iy) * cz2
					if sy := abs(iy - cy); sx == t || sy == t {
						scanRun(base+loz, base+hiz)
						continue
					}
					if cz-t >= 0 {
						scanRun(base+cz-t, base+cz-t)
					}
					if t > 0 && cz+t < cz2 {
						scanRun(base+cz+t, base+cz+t)
					}
				}
			}
		} else {
			for j := 0; j < d; j++ {
				g.lo[j] = max(g.c[j]-t, 0)
				g.hi[j] = min(g.c[j]+t, g.cells[j]-1)
				g.idx[j] = g.lo[j]
			}
			for {
				cheb, cell := 0, 0
				for j := 0; j < d; j++ {
					if s := abs(g.idx[j] - g.c[j]); s > cheb {
						cheb = s
					}
					cell = cell*g.cells[j] + g.idx[j]
				}
				if cheb == t {
					scanRun(cell, cell)
				}
				j := d - 1
				for ; j >= 0; j-- {
					g.idx[j]++
					if g.idx[j] <= g.hi[j] {
						break
					}
					g.idx[j] = g.lo[j]
				}
				if j < 0 {
					break
				}
			}
		}
		if bestPos >= 0 {
			if b := (float64(t) - 0.25) * g.minEdge; b > 0 && bestD < b*b {
				break
			}
		}
	}
	return bestPos
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Reference pins s to its pre-acceleration scan loops so construction
// benchmarks can measure the seed-era build path like-for-like. Output is
// bitwise-identical to the tuned path; only AnchorNet has a distinct
// reference scan, other samplers pass through unchanged.
func Reference(s Sampler) Sampler {
	if _, ok := s.(AnchorNet); ok {
		return refAnchorNet{}
	}
	return s
}

// refAnchorNet is AnchorNet running the reference nearest-candidate scan.
type refAnchorNet struct{}

// Name implements Sampler.
func (refAnchorNet) Name() string { return AnchorNet{}.Name() }

// Sample implements Sampler.
func (refAnchorNet) Sample(pts *pointset.Points, cand []int, m int) []int {
	return anchorNetSample(pts, cand, m, func(pts *pointset.Points, cand []int, _ pointset.BBox) nearestSearch {
		return func(anchor []float64) int { return nearestRef(pts, cand, anchor) }
	})
}

// FarthestPoint is the classic farthest-point (k-center) sampler: start
// from the candidate nearest the box center, then greedily add the point
// maximizing the minimum distance to the selected set.
type FarthestPoint struct{}

// Name implements Sampler.
func (FarthestPoint) Name() string { return "fps" }

// Sample implements Sampler.
func (FarthestPoint) Sample(pts *pointset.Points, cand []int, m int) []int {
	if len(cand) <= m {
		return append([]int(nil), cand...)
	}
	box := pointset.NewBBox(pts, cand)
	center := box.Center()
	first, bestD := 0, math.Inf(1)
	for k, i := range cand {
		if dd := pointset.Dist2(center, pts.At(i)); dd < bestD {
			first, bestD = k, dd
		}
	}
	chosen := make([]int, 0, m)
	chosen = append(chosen, cand[first])
	minD := make([]float64, len(cand))
	for k, i := range cand {
		minD[k] = pointset.Dist2(pts.At(cand[first]), pts.At(i))
	}
	for len(chosen) < m {
		far, farD := -1, -1.0
		for k, dd := range minD {
			if dd > farD {
				far, farD = k, dd
			}
		}
		if farD <= 0 {
			break // all remaining candidates coincide with selections
		}
		chosen = append(chosen, cand[far])
		for k, i := range cand {
			if dd := pointset.Dist2(pts.At(cand[far]), pts.At(i)); dd < minD[k] {
				minD[k] = dd
			}
		}
	}
	return chosen
}

// Random is the original Nyström baseline: a uniform random subset. The
// seed makes runs reproducible.
type Random struct {
	Seed int64
}

// Name implements Sampler.
func (Random) Name() string { return "random" }

// Sample implements Sampler.
func (r Random) Sample(pts *pointset.Points, cand []int, m int) []int {
	if len(cand) <= m {
		return append([]int(nil), cand...)
	}
	// Derive a per-call seed from the candidate set so different nodes draw
	// different (but reproducible) subsets.
	h := r.Seed
	for _, c := range cand[:min(len(cand), 8)] {
		h = h*1000003 + int64(c)
	}
	rng := rand.New(rand.NewSource(h))
	perm := rng.Perm(len(cand))[:m]
	out := make([]int, m)
	for k, p := range perm {
		out[k] = cand[p]
	}
	return out
}

// Named returns a sampler by harness name ("anchornet", "fps", "random").
func Named(name string) (Sampler, bool) {
	switch name {
	case "anchornet":
		return AnchorNet{}, true
	case "fps":
		return FarthestPoint{}, true
	case "random":
		return Random{Seed: 1}, true
	default:
		return nil, false
	}
}

// Hierarchy holds the output of the hierarchical sampling sweep
// (Algorithm 1): for every node i, the self surrogate X*_i and the farfield
// surrogate Y*_i, both as permuted point indices into tr.Points.
type Hierarchy struct {
	XStar [][]int
	YStar [][]int
}

// Run executes Algorithm 1 on the tree: a bottom-to-top sweep building the
// self surrogates X*_i and a top-to-bottom sweep building the farfield
// surrogates Y*_i from interaction-list surrogates plus the parent's
// inherited Y*. Nodes on a level are processed in parallel.
//
// budget is the per-node sample size m (the paper's O(1) node cost).
func Run(tr *tree.Tree, s Sampler, budget, workers int) *Hierarchy {
	n := len(tr.Nodes)
	h := &Hierarchy{XStar: make([][]int, n), YStar: make([][]int, n)}

	// Bottom-to-top: leaves sample their own points; parents sample the
	// union of their children's samples.
	for l := tr.Depth() - 1; l >= 0; l-- {
		level := tr.Levels[l]
		par.For(workers, len(level), func(k int) {
			id := level[k]
			nd := &tr.Nodes[id]
			var cand []int
			if nd.IsLeaf {
				cand = make([]int, nd.Size())
				for p := 0; p < nd.Size(); p++ {
					cand[p] = nd.Start + p
				}
			} else {
				for _, c := range nd.Children {
					cand = append(cand, h.XStar[c]...)
				}
			}
			h.XStar[id] = s.Sample(tr.Points, cand, budget)
		})
	}

	// Top-to-bottom: Y*_i = Sample( ∪_{j ∈ IL(i)} X*_j  ∪  Y*_parent ).
	for l := 0; l < tr.Depth(); l++ {
		level := tr.Levels[l]
		par.For(workers, len(level), func(k int) {
			id := level[k]
			nd := &tr.Nodes[id]
			var cand []int
			for _, j := range nd.Interaction {
				cand = append(cand, h.XStar[j]...)
			}
			if nd.Parent >= 0 {
				cand = append(cand, h.YStar[nd.Parent]...)
			}
			h.YStar[id] = s.Sample(tr.Points, cand, budget)
		})
	}
	return h
}

// Bytes returns the memory footprint of the stored sample index sets.
func (h *Hierarchy) Bytes() int64 {
	var b int64
	for i := range h.XStar {
		b += int64(len(h.XStar[i])+len(h.YStar[i])) * 8
	}
	return b
}

// Key returns a stable identity string for a sampler — its name plus every
// parameter that changes its output. Construction caches use it (together
// with the point geometry and tree parameters) to decide whether two builds
// would run the identical Algorithm 1 sweep; two samplers with equal keys
// must produce identical Hierarchy output on identical trees and budgets.
func Key(s Sampler) string {
	switch ss := s.(type) {
	case AnchorNet, refAnchorNet: // identical output by construction
		return "anchornet"
	case FarthestPoint:
		return "fps"
	case Random:
		return fmt.Sprintf("random:%d", ss.Seed)
	default:
		return fmt.Sprintf("%T:%+v", s, s)
	}
}
