package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"h2ds/internal/api"
	"h2ds/internal/kernel"
	"h2ds/internal/pointset"
	"h2ds/internal/registry"
)

// testNode is one in-process cluster member: a registry behind the full
// node HTTP surface.
type testNode struct {
	reg *registry.Registry
	srv *httptest.Server
}

func startNode(t *testing.T) *testNode {
	t.Helper()
	reg := registry.New(registry.Config{Workers: 1})
	srv := httptest.NewServer(NodeHandler(reg, 20*time.Second, api.Limits{}))
	t.Cleanup(func() { srv.Close(); reg.Close() })
	return &testNode{reg: reg, srv: srv}
}

// startCluster brings up n nodes and a router over them.
func startCluster(t *testing.T, n, replicas int) ([]*testNode, *Router, *httptest.Server) {
	t.Helper()
	nodes := make([]*testNode, n)
	members := make([]string, n)
	for i := range nodes {
		nodes[i] = startNode(t)
		members[i] = nodes[i].srv.URL
	}
	rt := NewRouter(RouterConfig{
		Members: members, Replicas: replicas,
		Timeout: 30 * time.Second, HealthTTL: 150 * time.Millisecond,
	})
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)
	return nodes, rt, front
}

func postJSON(t *testing.T, url string, v any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	out.ReadFrom(resp.Body)
	return resp, out.Bytes()
}

func testSpec(seed int64) registry.BuildSpec {
	return registry.BuildSpec{Kernel: "coulomb", Dist: "cube", N: 600, Dim: 3,
		Tol: 1e-6, Basis: "dd", Mem: "otf", Leaf: 60, Seed: seed}
}

// waitReplicated polls the route endpoint until want replicas confirm.
func waitReplicated(t *testing.T, front, name string, want int) RouteInfo {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(front + "/cluster/route/" + name)
		if err != nil {
			t.Fatal(err)
		}
		var ri RouteInfo
		err = json.NewDecoder(resp.Body).Decode(&ri)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(ri.Replicated) >= want {
			return ri
		}
		if time.Now().After(deadline) {
			t.Fatalf("replication of %q did not reach %d replicas: %+v", name, want, ri)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func testVec(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// denseApply computes the dense reference product for the coulomb testSpec.
func denseApply(sp registry.BuildSpec, b []float64) []float64 {
	pts, ok := pointset.Named(sp.Dist, sp.N, sp.Dim, sp.Seed)
	if !ok {
		panic("bad dist")
	}
	k := kernel.Coulomb{}
	y := make([]float64, sp.N)
	for i := 0; i < sp.N; i++ {
		var s float64
		for j := 0; j < sp.N; j++ {
			s += kernel.Eval(k, pts.At(i), pts.At(j)) * b[j]
		}
		y[i] = s
	}
	return y
}

func relErr(got, want []float64) float64 {
	var num, den float64
	for i := range want {
		num += (got[i] - want[i]) * (got[i] - want[i])
		den += want[i] * want[i]
	}
	return math.Sqrt(num / den)
}

// applyVia posts one apply through the router, returning y and the node that
// served it.
func applyVia(t *testing.T, front, name string, b []float64) ([]float64, string) {
	t.Helper()
	buf, _ := json.Marshal(api.ApplyRequest{B: b})
	resp, err := http.Post(front+"/matrices/"+name+"/apply", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var msg bytes.Buffer
		msg.ReadFrom(resp.Body)
		t.Fatalf("apply via router: status %d: %s", resp.StatusCode, msg.String())
	}
	var ar api.ApplyResponse
	if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
		t.Fatal(err)
	}
	return ar.Y, resp.Header.Get("X-H2-Node")
}

// TestClusterEndToEnd is the three-node smoke: create through the router
// lands on the ring owner, replicates to one replica, reads rotate across
// both holders and return identical bits, the distributed sharded apply
// matches both the routed apply (bitwise) and the dense reference, and the
// tenant survives one replica disappearing.
func TestClusterEndToEnd(t *testing.T) {
	nodes, _, front := startCluster(t, 3, 2)
	byURL := map[string]*testNode{}
	for _, nd := range nodes {
		byURL[nd.srv.URL] = nd
	}

	const name = "shared"
	spec := testSpec(5)
	resp, body := postJSON(t, front.URL+"/matrices", api.CreateRequest{Name: name, Spec: spec})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("create via router: status %d: %s", resp.StatusCode, body)
	}
	ri := waitReplicated(t, front.URL, name, 1)
	owner, replica := byURL[ri.Owner], byURL[ri.Replicated[0]]
	if owner == nil || replica == nil || owner == replica {
		t.Fatalf("bad placement %+v", ri)
	}

	// The replica node holds a Ready read-only copy, marked as imported.
	inf, ok := replica.reg.Get(name)
	if !ok || inf.State != registry.StateReady {
		t.Fatalf("replica state: %+v", inf)
	}
	if !inf.Spec.Replica {
		t.Fatal("replica instance not marked Replica in its spec")
	}
	if replica.reg.Stats().Installs != 1 {
		t.Fatalf("replica installs = %d, want 1", replica.reg.Stats().Installs)
	}

	// Reads through the router: correct against the dense reference,
	// bitwise-identical regardless of which holder serves, and actually
	// spread over more than one node.
	b := testVec(spec.N, 6)
	want := denseApply(spec, b)
	served := map[string]bool{}
	var first []float64
	for i := 0; i < 6; i++ {
		y, node := applyVia(t, front.URL, name, b)
		served[node] = true
		if e := relErr(y, want); e > 1e-4 {
			t.Fatalf("routed apply rel err %g vs dense reference", e)
		}
		if first == nil {
			first = y
		} else {
			for j := range y {
				if y[j] != first[j] {
					t.Fatalf("apply %d differs bitwise at %d (served by %s)", i, j, node)
				}
			}
		}
	}
	if len(served) < 2 {
		t.Fatalf("reads never rotated: all served by %v", served)
	}

	// Distributed sharded apply: scatter across the holders, gather on the
	// coordinator, bitwise-equal to the plain routed apply.
	buf, _ := json.Marshal(shardApplyRequest{B: b})
	sresp, err := http.Post(front.URL+"/matrices/"+name+"/shardapply", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	if sresp.StatusCode != http.StatusOK {
		var msg bytes.Buffer
		msg.ReadFrom(sresp.Body)
		sresp.Body.Close()
		t.Fatalf("shardapply: status %d: %s", sresp.StatusCode, msg.String())
	}
	var sar api.ApplyResponse
	if err := json.NewDecoder(sresp.Body).Decode(&sar); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	for j := range sar.Y {
		if sar.Y[j] != first[j] {
			t.Fatalf("sharded apply differs bitwise from single-node apply at %d: %g vs %g", j, sar.Y[j], first[j])
		}
	}
	if e := relErr(sar.Y, want); e > 1e-4 {
		t.Fatalf("sharded apply rel err %g vs dense reference", e)
	}

	// Kill the replica: reads must keep succeeding via the owner, with the
	// same bits, within the health TTL.
	replica.srv.Close()
	deadline := time.Now().Add(15 * time.Second)
	for {
		y, node := applyVia(t, front.URL, name, b)
		for j := range y {
			if y[j] != first[j] {
				t.Fatalf("post-failure apply differs bitwise at %d", j)
			}
		}
		if node == ri.Owner {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("reads never failed over to the owner")
		}
		time.Sleep(50 * time.Millisecond)
	}

	// The sharded path degrades too: the dead worker's shards fall back to
	// local recomputation on the coordinator, bits unchanged.
	sresp2, err := http.Post(front.URL+"/matrices/"+name+"/shardapply", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	var sar2 api.ApplyResponse
	if sresp2.StatusCode != http.StatusOK {
		var msg bytes.Buffer
		msg.ReadFrom(sresp2.Body)
		sresp2.Body.Close()
		t.Fatalf("shardapply after replica loss: status %d: %s", sresp2.StatusCode, msg.String())
	}
	if err := json.NewDecoder(sresp2.Body).Decode(&sar2); err != nil {
		t.Fatal(err)
	}
	sresp2.Body.Close()
	for j := range sar2.Y {
		if sar2.Y[j] != first[j] {
			t.Fatalf("degraded sharded apply differs bitwise at %d", j)
		}
	}
}

// TestClusterCorruptTransfer: a replica install whose stream was corrupted
// in transit must be rejected by the CRC footer and leave no instance
// behind.
func TestClusterCorruptTransfer(t *testing.T) {
	nd := startNode(t)

	m, err := registry.DefaultBuild(context.Background(), registry.BuildSpec{
		Kernel: "coulomb", Dist: "cube", N: 400, Dim: 3, Tol: 1e-4,
		Basis: "dd", Mem: "otf", Leaf: 50, Sampler: "anchornet", Seed: 3,
	}, func(string) {})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	stream := buf.Bytes()

	put := func(payload []byte) *http.Response {
		req, err := http.NewRequest(http.MethodPut, nd.srv.URL+"/cluster/replicas/corrupt", bytes.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	// A mid-payload bit flip — silent under every pre-v4 format — is caught.
	corrupt := append([]byte(nil), stream...)
	corrupt[len(corrupt)/2] ^= 0x01
	if resp := put(corrupt); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt stream: status %d, want 400", resp.StatusCode)
	}
	// A truncated transfer (lost tail, no footer) is caught.
	if resp := put(stream[:len(stream)-20]); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("truncated stream accepted")
	}
	if _, ok := nd.reg.Get("corrupt"); ok {
		t.Fatal("corrupt transfer left an instance behind")
	}
	// The pristine stream installs and serves.
	if resp := put(stream); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("pristine stream: status %d, want 204", resp.StatusCode)
	}
	inf, ok := nd.reg.Get("corrupt")
	if !ok || inf.State != registry.StateReady {
		t.Fatalf("pristine install state: %+v", inf)
	}
}

// TestClusterDeleteEverywhere: a routed delete removes the instance from the
// owner and every replica.
func TestClusterDeleteEverywhere(t *testing.T) {
	nodes, _, front := startCluster(t, 3, 2)

	const name = "doomed"
	resp, body := postJSON(t, front.URL+"/matrices", api.CreateRequest{Name: name, Spec: testSpec(11)})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("create: status %d: %s", resp.StatusCode, body)
	}
	waitReplicated(t, front.URL, name, 1)

	req, _ := http.NewRequest(http.MethodDelete, front.URL+"/matrices/"+name, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("routed delete: status %d", dresp.StatusCode)
	}
	for _, nd := range nodes {
		if inf, ok := nd.reg.Get(name); ok && inf.State != registry.StateClosed {
			t.Fatalf("node %s still holds %q in state %v", nd.srv.URL, name, inf.State)
		}
	}
}

// TestClusterMembership: membership changes rebalance the ring and the
// routing debug endpoint reflects the new placement.
func TestClusterMembership(t *testing.T) {
	_, rt, front := startCluster(t, 3, 2)
	if n := rt.ring.Len(); n != 3 {
		t.Fatalf("ring has %d members", n)
	}

	// Ownership before and after adding a member: some names move, and every
	// move targets the new member.
	keys := make([]string, 200)
	for i := range keys {
		keys[i] = fmt.Sprintf("tenant-%03d", i)
	}
	before := map[string]string{}
	for _, k := range keys {
		before[k] = rt.ring.Owner(k)
	}
	added := "http://10.9.9.9:1"
	resp, body := postJSON(t, front.URL+"/cluster/members", memberChange{Add: []string{added}})
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), added) {
		t.Fatalf("member add: status %d: %s", resp.StatusCode, body)
	}
	moved := 0
	for _, k := range keys {
		if o := rt.ring.Owner(k); o != before[k] {
			moved++
			if o != added {
				t.Fatalf("key %s moved between survivors on add", k)
			}
		}
	}
	if moved == 0 {
		t.Fatal("membership add moved nothing")
	}
	resp, _ = postJSON(t, front.URL+"/cluster/members", memberChange{Remove: []string{added}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("member remove: status %d", resp.StatusCode)
	}
	for _, k := range keys {
		if o := rt.ring.Owner(k); o != before[k] {
			t.Fatalf("ownership of %s not restored after remove", k)
		}
	}
}

// TestCreateWorkersInjection checks the router's fleet-wide worker default:
// with RouterConfig.Workers set, a create spec that leaves workers unset is
// forwarded with the router's count, while an explicit count in the spec
// wins over the injected default.
func TestCreateWorkersInjection(t *testing.T) {
	node := startNode(t)
	rt := NewRouter(RouterConfig{
		Members: []string{node.srv.URL}, Replicas: 1,
		Timeout: 30 * time.Second, HealthTTL: 150 * time.Millisecond,
		Workers: 3,
	})
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)

	resp, body := postJSON(t, front.URL+"/matrices", api.CreateRequest{Name: "injected", Spec: testSpec(21)})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("create: status %d: %s", resp.StatusCode, body)
	}
	explicit := testSpec(22)
	explicit.Workers = 2
	resp, body = postJSON(t, front.URL+"/matrices", api.CreateRequest{Name: "explicit", Spec: explicit})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("create: status %d: %s", resp.StatusCode, body)
	}

	waitState := func(name string) registry.Info {
		deadline := time.Now().Add(60 * time.Second)
		for {
			if inf, ok := node.reg.Get(name); ok && inf.State == registry.StateReady {
				return inf
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s never became ready", name)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}
	if inf := waitState("injected"); inf.Spec.Workers != 3 {
		t.Fatalf("injected spec workers = %d, want router default 3", inf.Spec.Workers)
	}
	if inf := waitState("explicit"); inf.Spec.Workers != 2 {
		t.Fatalf("explicit spec workers = %d, want 2 (must beat the router default)", inf.Spec.Workers)
	}
}
