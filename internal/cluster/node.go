package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"h2ds/internal/api"
	"h2ds/internal/core"
	"h2ds/internal/registry"
)

// Node is the per-process cluster peer: the endpoints the router (and other
// nodes) call on an h2serve instance. It owns no membership state — placement
// lives in the router's ring; a node just serves what it holds.
type Node struct {
	reg     *registry.Registry
	timeout time.Duration
	lim     api.Limits
	client  *http.Client
}

// NewNode wraps a registry with the cluster peer endpoints. timeout bounds
// the shard fan-out calls a gather makes to peers (0 = 30s); lim bounds
// request bodies (zero fields take the api defaults).
func NewNode(reg *registry.Registry, timeout time.Duration, lim api.Limits) *Node {
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	return &Node{reg: reg, timeout: timeout, lim: lim.WithDefaults(), client: &http.Client{}}
}

// Mount registers the peer endpoints on mux:
//
//	GET    /cluster/export/{name}   stream the serialized matrix (v4, CRC-tailed)
//	PUT    /cluster/replicas/{name} install a replica from a serialized stream
//	DELETE /cluster/replicas/{name} drop a replica (idempotent)
//	POST   /cluster/shards/apply    one shard's upward+coupling partial
//	POST   /cluster/gather          coordinate a sharded apply across peers
func (n *Node) Mount(mux *http.ServeMux) {
	mux.HandleFunc("GET /cluster/export/{name}", n.exportHandler)
	mux.HandleFunc("PUT /cluster/replicas/{name}", n.installHandler)
	mux.HandleFunc("DELETE /cluster/replicas/{name}", n.dropHandler)
	mux.HandleFunc("POST /cluster/shards/apply", n.shardHandler)
	mux.HandleFunc("POST /cluster/gather", n.gatherHandler)
}

// NodeHandler builds the complete single-node HTTP surface — the
// internal/api matrices endpoints plus the cluster peer endpoints — the
// shape every cluster member serves. cmd/h2serve assembles the same surface
// itself (it adds pprof); this constructor is for h2cluster nodes and tests.
func NodeHandler(reg *registry.Registry, timeout time.Duration, lim api.Limits) http.Handler {
	mux := http.NewServeMux()
	api.MountLimits(mux, reg, timeout, lim)
	NewNode(reg, timeout, lim).Mount(mux)
	return mux
}

// exportHandler streams the named instance's serialized form. The stream is
// the spill-file format: self-describing, version-tagged, CRC-tailed — the
// replication transport is the persistence format.
func (n *Node) exportHandler(w http.ResponseWriter, r *http.Request) {
	m, err := n.reg.MatrixWait(r.Context(), r.PathValue("name"))
	if err != nil {
		api.Error(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	if _, err := m.WriteTo(w); err != nil {
		// Headers are gone; closing the connection mid-stream is the only
		// remaining error signal. The CRC footer guarantees the receiving
		// side rejects the truncated stream.
		return
	}
}

// installHandler rehydrates a serialized stream into a Ready read-only
// instance. The v4 CRC footer is verified during the read, so a corrupted or
// torn transfer is rejected before any instance state changes.
func (n *Node) installHandler(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	m, err := core.ReadAny(http.MaxBytesReader(w, r.Body, n.lim.Upload))
	if err != nil {
		if mbe := (*http.MaxBytesError)(nil); errors.As(err, &mbe) {
			http.Error(w, fmt.Sprintf("cluster: replica stream for %q exceeds %d byte limit", name, mbe.Limit), http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, fmt.Sprintf("cluster: bad replica stream for %q: %v", name, err), http.StatusBadRequest)
		return
	}
	if err := n.reg.Install(name, registry.BuildSpec{Replica: true}, m); err != nil {
		api.Error(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// dropHandler removes a replica. Unknown names answer 204 too: the desired
// state — not holding the instance — already holds.
func (n *Node) dropHandler(w http.ResponseWriter, r *http.Request) {
	err := n.reg.Delete(r.PathValue("name"))
	if err != nil && !errors.Is(err, registry.ErrNotFound) {
		api.Error(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// shardRequest asks one node for one shard's partial. The plan is never
// shipped: every holder of the same build derives an identical ShardPlan
// from (nshards, cut_level), so three integers fully describe the split.
type shardRequest struct {
	Name      string    `json:"name"`
	NShards   int       `json:"nshards"`
	CutLevel  int       `json:"cut_level"`
	Shard     int       `json:"shard"`
	Transpose bool      `json:"transpose,omitempty"`
	B         []float64 `json:"b"`
}

type shardResponse struct {
	Part []float64 `json:"part"`
}

// gatherRequest drives a distributed apply from the coordinating node.
// Peers[s] is the address serving shard s; an empty string (or a peer
// failure) makes the coordinator recompute that shard locally, so a gather
// degrades to a single-node apply rather than failing.
type gatherRequest struct {
	Name      string    `json:"name"`
	NShards   int       `json:"nshards"`
	CutLevel  int       `json:"cut_level"`
	Transpose bool      `json:"transpose,omitempty"`
	B         []float64 `json:"b"`
	Peers     []string  `json:"peers,omitempty"`
}

func (n *Node) shardHandler(w http.ResponseWriter, r *http.Request) {
	var req shardRequest
	if !api.DecodeJSON(w, r, n.lim.JSONBody, &req) {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), n.timeout)
	defer cancel()
	part, err := n.reg.ApplyShard(ctx, req.Name, req.NShards, req.CutLevel, req.Shard, req.B, req.Transpose)
	if err != nil {
		api.Error(w, err)
		return
	}
	api.WriteJSON(w, http.StatusOK, shardResponse{Part: part})
}

// gatherHandler coordinates one sharded product: shard partials are fetched
// from the peers concurrently, failures fall back to local recomputation
// (nil partial), and the merge + downward + nearfield sweeps run here. The
// result is bitwise-equal to a single-node apply of the same vector.
func (n *Node) gatherHandler(w http.ResponseWriter, r *http.Request) {
	var req gatherRequest
	if !api.DecodeJSON(w, r, n.lim.JSONBody, &req) {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), n.timeout)
	defer cancel()

	if req.NShards < 1 {
		req.NShards = 1
	}
	if req.CutLevel <= 0 {
		m, err := n.reg.MatrixWait(ctx, req.Name)
		if err != nil {
			api.Error(w, err)
			return
		}
		req.CutLevel = m.AutoCutLevel(req.NShards)
	}

	parts := make([][]float64, req.NShards)
	var wg sync.WaitGroup
	for s := 0; s < req.NShards && s < len(req.Peers); s++ {
		peer := req.Peers[s]
		if peer == "" {
			continue
		}
		wg.Add(1)
		go func(s int, peer string) {
			defer wg.Done()
			part, err := n.fetchShard(ctx, peer, shardRequest{
				Name: req.Name, NShards: req.NShards, CutLevel: req.CutLevel,
				Shard: s, Transpose: req.Transpose, B: req.B,
			})
			if err != nil {
				return // parts[s] stays nil: recomputed locally by the gather
			}
			parts[s] = part
		}(s, peer)
	}
	wg.Wait()

	y, err := n.reg.ApplyGather(ctx, req.Name, req.NShards, req.CutLevel, req.B, parts, req.Transpose)
	if err != nil {
		api.Error(w, err)
		return
	}
	api.WriteJSON(w, http.StatusOK, api.ApplyResponse{Y: y})
}

// fetchShard requests one shard partial from a peer.
func (n *Node) fetchShard(ctx context.Context, peer string, req shardRequest) ([]float64, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, peer+"/cluster/shards/apply", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := n.client.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: shard %d from %s: status %d", req.Shard, peer, resp.StatusCode)
	}
	var sr shardResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return nil, err
	}
	return sr.Part, nil
}
