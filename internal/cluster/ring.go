// Package cluster turns a fleet of h2serve nodes into one logical matvec
// service: a consistent-hash ring assigns each matrix name an owner node,
// the owner's serialized stream (the same atomic fsynced format as the
// registry's spill files) replicates it to read replicas, and a sharded
// scatter/gather protocol splits one product across the holders of a tenant
// — each shard runs the upward+coupling sweeps on its subtree and the
// coordinator merges the partials bitwise-identically to a single-node
// apply.
//
// Three pieces:
//
//   - Ring: the membership + placement function, shared by router and tests.
//   - Node: the per-node peer endpoints (/cluster/*, /readyz), mounted next
//     to the internal/api surface on every h2serve process.
//   - Router: the client-facing front that proxies /matrices/* to owners,
//     fans reads across replicas with failover, and drives distributed
//     applies.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
)

// DefaultVnodes is the virtual-node count per member. 160 points per member
// keeps the max/min key-share ratio under ~1.3 for small fleets while the
// ring stays a few KB.
const DefaultVnodes = 160

// Ring is a consistent-hash ring over node addresses. Placement is a pure
// function of the member set and vnode count — every process that agrees on
// membership agrees on ownership, with no coordination. All methods are safe
// for concurrent use.
type Ring struct {
	vnodes int

	mu      sync.RWMutex
	members []string // sorted, unique
	points  []ringPoint
}

type ringPoint struct {
	hash   uint64
	member string
}

// NewRing builds a ring with the given virtual-node count (<= 0 uses
// DefaultVnodes) and initial members. Duplicate members are ignored.
func NewRing(vnodes int, members ...string) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	r := &Ring{vnodes: vnodes}
	for _, m := range members {
		r.Add(m)
	}
	return r
}

// hashKey is FNV-64a with a murmur3-style avalanche finalizer. Bare FNV
// disperses sequential names poorly — the last byte is only multiplied by
// the prime once, so "m-0001".."m-0999" land in a handful of clusters and a
// 3-node ring can leave one node empty. The finalizer mixes every input bit
// into every output bit; the whole function is a fixed pure computation, so
// placement stays identical across processes and platforms.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Add inserts a member (idempotent). Only the new member's vnodes join the
// ring, so only keys whose ring segment they capture move — the minimal
// movement property of consistent hashing.
func (r *Ring) Add(member string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	i := sort.SearchStrings(r.members, member)
	if i < len(r.members) && r.members[i] == member {
		return
	}
	r.members = append(r.members, "")
	copy(r.members[i+1:], r.members[i:])
	r.members[i] = member
	for v := 0; v < r.vnodes; v++ {
		r.points = append(r.points, ringPoint{hashKey(member + "#" + strconv.Itoa(v)), member})
	}
	sortPoints(r.points)
}

// Remove deletes a member (idempotent). Keys it owned redistribute to the
// ring successors; no key between two surviving members moves.
func (r *Ring) Remove(member string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	i := sort.SearchStrings(r.members, member)
	if i == len(r.members) || r.members[i] != member {
		return
	}
	r.members = append(r.members[:i], r.members[i+1:]...)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.member != member {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// sortPoints orders by hash, breaking (astronomically unlikely) collisions
// by member name so placement stays deterministic regardless of insertion
// order.
func sortPoints(ps []ringPoint) {
	sort.Slice(ps, func(a, b int) bool {
		if ps[a].hash != ps[b].hash {
			return ps[a].hash < ps[b].hash
		}
		return ps[a].member < ps[b].member
	})
}

// Members returns the current member set, sorted.
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.members...)
}

// Len returns the member count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.members)
}

// Owner returns the member owning key: the first vnode at or clockwise from
// the key's hash. Empty ring returns "".
func (r *Ring) Owner(key string) string {
	o := r.Owners(key, 1)
	if len(o) == 0 {
		return ""
	}
	return o[0]
}

// Owners walks the ring clockwise from the key's hash and returns the first
// n distinct members: the owner first, then the replica set in placement
// order. Fewer than n members returns them all.
func (r *Ring) Owners(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	h := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, p.member)
		}
	}
	return out
}

// String summarizes the ring for debug endpoints.
func (r *Ring) String() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return fmt.Sprintf("ring{%d members, %d vnodes each}", len(r.members), r.vnodes)
}
