package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

func names(k int) []string {
	out := make([]string, k)
	for i := range out {
		out[i] = fmt.Sprintf("matrix-%04d", i)
	}
	return out
}

func nodes(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://10.0.0.%d:8080", i+1)
	}
	return out
}

// TestRingBalance checks the distribution over 1000 names for fleets of
// 3..8 nodes: with DefaultVnodes virtual nodes every member's share must sit
// within a factor of two of fair on both sides — loose enough to be stable
// across hash functions, tight enough to catch a broken vnode loop (which
// puts everything on one member).
func TestRingBalance(t *testing.T) {
	keys := names(1000)
	for n := 3; n <= 8; n++ {
		r := NewRing(0, nodes(n)...)
		counts := make(map[string]int)
		for _, k := range keys {
			counts[r.Owner(k)]++
		}
		if len(counts) != n {
			t.Fatalf("n=%d: only %d members own keys", n, len(counts))
		}
		fair := float64(len(keys)) / float64(n)
		for m, c := range counts {
			if float64(c) < fair/2 || float64(c) > fair*2 {
				t.Errorf("n=%d: member %s owns %d of %d keys (fair %.0f)", n, m, c, len(keys), fair)
			}
		}
	}
}

// TestRingMinimalMovement: adding a member moves keys only TO it (never
// between survivors), roughly its fair share; removing a member moves only
// ITS keys, and every survivor's assignment is untouched.
func TestRingMinimalMovement(t *testing.T) {
	keys := names(1000)
	base := nodes(5)
	r := NewRing(0, base...)
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k] = r.Owner(k)
	}

	added := "http://10.0.0.99:8080"
	r.Add(added)
	moved := 0
	for _, k := range keys {
		o := r.Owner(k)
		if o != before[k] {
			moved++
			if o != added {
				t.Fatalf("key %s moved between survivors: %s -> %s", k, before[k], o)
			}
		}
	}
	// Fair share after the add is 1/6 ≈ 167; demand the movement is in a
	// generous band around it, and in particular far below a full reshuffle.
	if moved == 0 || moved > len(keys)/3 {
		t.Fatalf("add moved %d of %d keys, want (0, %d]", moved, len(keys), len(keys)/3)
	}

	r.Remove(added)
	for _, k := range keys {
		if o := r.Owner(k); o != before[k] {
			t.Fatalf("key %s not restored after remove: %s vs %s", k, o, before[k])
		}
	}

	// Removing an original member: only its keys move.
	victim := base[2]
	r.Remove(victim)
	for _, k := range keys {
		o := r.Owner(k)
		if before[k] == victim {
			if o == victim {
				t.Fatalf("key %s still owned by removed member", k)
			}
		} else if o != before[k] {
			t.Fatalf("key %s moved although its owner survived: %s -> %s", k, before[k], o)
		}
	}
}

// TestRingDeterministicOwnership: placement is a pure function of the member
// SET — insertion order must not matter, and repeated queries agree.
func TestRingDeterministicOwnership(t *testing.T) {
	keys := names(200)
	members := nodes(6)
	a := NewRing(0, members...)
	shuffled := append([]string(nil), members...)
	rand.New(rand.NewSource(42)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	b := NewRing(0, shuffled...)
	for _, k := range keys {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("owner of %s depends on insertion order: %s vs %s", k, a.Owner(k), b.Owner(k))
		}
		ao, bo := a.Owners(k, 3), b.Owners(k, 3)
		for i := range ao {
			if ao[i] != bo[i] {
				t.Fatalf("replica set of %s depends on insertion order", k)
			}
		}
	}
}

// TestRingOwnersDistinct: the replica walk yields distinct members, the
// owner first, and clamps at the member count.
func TestRingOwnersDistinct(t *testing.T) {
	r := NewRing(0, nodes(4)...)
	for _, k := range names(100) {
		owners := r.Owners(k, 3)
		if len(owners) != 3 {
			t.Fatalf("key %s: got %d owners, want 3", k, len(owners))
		}
		if owners[0] != r.Owner(k) {
			t.Fatalf("key %s: Owners[0] %s != Owner %s", k, owners[0], r.Owner(k))
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("key %s: duplicate owner %s", k, o)
			}
			seen[o] = true
		}
		if all := r.Owners(k, 10); len(all) != 4 {
			t.Fatalf("key %s: over-asking returned %d members, want 4", k, len(all))
		}
	}
}

// TestRingEmptyAndSingle covers the degenerate rings.
func TestRingEmptyAndSingle(t *testing.T) {
	r := NewRing(0)
	if o := r.Owner("x"); o != "" {
		t.Fatalf("empty ring owner = %q", o)
	}
	if o := r.Owners("x", 2); o != nil {
		t.Fatalf("empty ring owners = %v", o)
	}
	r.Add("http://a")
	r.Add("http://a") // idempotent
	if r.Len() != 1 {
		t.Fatalf("duplicate add changed membership: %d", r.Len())
	}
	for _, k := range names(10) {
		if o := r.Owner(k); o != "http://a" {
			t.Fatalf("single-member ring owner = %q", o)
		}
	}
	r.Remove("http://never-added") // idempotent no-op
	if r.Len() != 1 {
		t.Fatal("removing a non-member changed membership")
	}
}
