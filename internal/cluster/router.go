package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"h2ds/internal/api"
)

// RouterConfig tunes a Router. Members are node base URLs
// ("http://10.0.0.1:8080"); the zero value of everything else is usable.
type RouterConfig struct {
	// Members is the initial node set. Membership can be changed at runtime
	// via POST /cluster/members.
	Members []string

	// Replicas is the number of nodes holding each matrix, owner included
	// (default 2, clamped to the member count). 1 disables replication.
	Replicas int

	// Vnodes is the virtual-node count per member (default DefaultVnodes).
	Vnodes int

	// Timeout bounds each proxied request (default 60s); kept generous
	// because an apply may wait out a build.
	Timeout time.Duration

	// HealthTTL is how long a readiness probe result is trusted before the
	// next selection re-probes (default 2s). Failed nodes are retried after
	// one TTL, so a vanished replica costs at most one request window.
	HealthTTL time.Duration

	// MaxBody caps JSON request bodies at the router (default 64 MiB) and
	// MaxUpload caps dense-matrix uploads (default 8 GiB); both answer 413
	// over the cap, before anything is proxied to a node.
	MaxBody   int64
	MaxUpload int64

	// Workers, when positive, is injected as the default worker count into
	// create specs that leave workers unset, so one router flag pins the
	// apply parallelism fleet-wide. 0 leaves specs untouched — each node
	// resolves an unset count to its own GOMAXPROCS.
	Workers int
}

// Router is the client-facing front of a cluster: it owns the ring, proxies
// the single-node /matrices wire protocol to owners, fans reads across
// owner+replicas with readiness-checked failover, replicates new builds, and
// coordinates sharded applies. All methods are safe for concurrent use.
type Router struct {
	cfg    RouterConfig
	ring   *Ring
	client *http.Client

	rr atomic.Uint64 // read-rotation counter

	mu     sync.Mutex
	health map[string]healthState
	repl   map[string]map[string]bool // name -> replica addr -> installed
}

type healthState struct {
	ok      bool
	checked time.Time
}

// NewRouter builds a router over the given members.
func NewRouter(cfg RouterConfig) *Router {
	if cfg.Replicas <= 0 {
		cfg.Replicas = 2
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 60 * time.Second
	}
	if cfg.HealthTTL <= 0 {
		cfg.HealthTTL = 2 * time.Second
	}
	lim := api.Limits{JSONBody: cfg.MaxBody, Upload: cfg.MaxUpload}.WithDefaults()
	cfg.MaxBody, cfg.MaxUpload = lim.JSONBody, lim.Upload
	return &Router{
		cfg:    cfg,
		ring:   NewRing(cfg.Vnodes, cfg.Members...),
		client: &http.Client{},
		health: make(map[string]healthState),
		repl:   make(map[string]map[string]bool),
	}
}

// Handler returns the router's HTTP surface:
//
//	POST   /matrices                   create on the owner, then replicate
//	GET    /matrices                   aggregate listing across nodes
//	GET    /matrices/{name}            proxy to a holder
//	POST   /matrices/{name}/data       stream a dense upload to the owner, then replicate
//	POST   /matrices/{name}/apply      read: rotate across owner+replicas
//	POST   /matrices/{name}/shardapply distributed scatter/gather apply
//	DELETE /matrices/{name}            delete on owner and replicas
//	GET    /cluster/route/{name}       placement + replication status
//	GET/POST /cluster/members          view / change membership
//	GET    /healthz                    router liveness
//	GET    /readyz                     per-member readiness fan-out
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /matrices", rt.createHandler)
	mux.HandleFunc("GET /matrices", rt.listHandler)
	mux.HandleFunc("GET /matrices/{name}", rt.getHandler)
	mux.HandleFunc("POST /matrices/{name}/data", rt.uploadHandler)
	mux.HandleFunc("POST /matrices/{name}/apply", rt.applyHandler)
	mux.HandleFunc("POST /matrices/{name}/shardapply", rt.shardApplyHandler)
	mux.HandleFunc("DELETE /matrices/{name}", rt.deleteHandler)
	mux.HandleFunc("GET /cluster/route/{name}", rt.routeHandler)
	mux.HandleFunc("GET /cluster/members", rt.membersHandler)
	mux.HandleFunc("POST /cluster/members", rt.membersChangeHandler)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("GET /readyz", rt.readyzHandler)
	return mux
}

// placement returns the owner-first candidate list for a name.
func (rt *Router) placement(name string) []string {
	return rt.ring.Owners(name, rt.cfg.Replicas)
}

// healthy reports whether addr answered its last readiness probe, probing
// anew when the cached result is older than HealthTTL. Readiness is the
// node's /readyz endpoint — a node that cannot answer it (down, partitioned,
// wedged) is skipped by read selection until a later probe succeeds.
func (rt *Router) healthy(addr string) bool {
	rt.mu.Lock()
	st, seen := rt.health[addr]
	rt.mu.Unlock()
	if seen && time.Since(st.checked) < rt.cfg.HealthTTL {
		return st.ok
	}
	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.HealthTTL)
	defer cancel()
	ok := false
	if req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/readyz", nil); err == nil {
		if resp, err := rt.client.Do(req); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			ok = resp.StatusCode == http.StatusOK
		}
	}
	rt.mu.Lock()
	rt.health[addr] = healthState{ok: ok, checked: time.Now()}
	rt.mu.Unlock()
	return ok
}

// markDown records a request failure so the next selections skip the node
// until the health TTL expires and a probe readmits it.
func (rt *Router) markDown(addr string) {
	rt.mu.Lock()
	rt.health[addr] = healthState{ok: false, checked: time.Now()}
	rt.mu.Unlock()
}

// forward proxies body to addr+path with the router timeout and copies the
// response through. It reports false on transport failure (nothing written
// yet) so the caller can fail over.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, addr, path string, body []byte) bool {
	ctx, cancel := context.WithTimeout(r.Context(), rt.cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, r.Method, addr+path, bytes.NewReader(body))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rt.client.Do(req)
	if err != nil {
		rt.markDown(addr)
		return false
	}
	defer resp.Body.Close()
	w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
	w.Header().Set("X-H2-Node", addr)
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	return true
}

// readBody reads r's body up to limit bytes, answering 413 (over the limit)
// or 400 itself and returning false when it did.
func (rt *Router) readBody(w http.ResponseWriter, r *http.Request, limit int64) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, limit))
	if err != nil {
		if mbe := (*http.MaxBytesError)(nil); errors.As(err, &mbe) {
			http.Error(w, fmt.Sprintf("request body exceeds %d byte limit", mbe.Limit), http.StatusRequestEntityTooLarge)
			return nil, false
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return nil, false
	}
	return body, true
}

// createHandler routes a create to the name's owner, then replicates the
// built matrix to the rest of the placement asynchronously: the 202 mirrors
// the single-node contract (the build itself is async), and
// /cluster/route/{name} reports when replicas are installed.
func (rt *Router) createHandler(w http.ResponseWriter, r *http.Request) {
	body, ok := rt.readBody(w, r, rt.cfg.MaxBody)
	if !ok {
		return
	}
	var req api.CreateRequest
	if err := json.Unmarshal(body, &req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if rt.cfg.Workers > 0 && req.Spec.Workers == 0 {
		req.Spec.Workers = rt.cfg.Workers
		if nb, err := json.Marshal(req); err == nil {
			body = nb
		}
	}
	cands := rt.placement(req.Name)
	if len(cands) == 0 {
		http.Error(w, "cluster: no members", http.StatusServiceUnavailable)
		return
	}
	owner := cands[0]
	rt.mu.Lock()
	rt.repl[req.Name] = make(map[string]bool)
	rt.mu.Unlock()
	if !rt.forward(w, r, owner, "/matrices", body) {
		http.Error(w, fmt.Sprintf("cluster: owner %s unreachable", owner), http.StatusBadGateway)
		return
	}
	if len(cands) > 1 {
		go rt.replicate(req.Name, owner, cands[1:])
	}
}

// uploadHandler streams a dense-matrix upload through to the name's owner.
// Unlike the JSON endpoints the body is never buffered in the router — it can
// be gigabytes — so there is no failover: a transport failure mid-stream
// answers 502 and the client retries. On a 202 from the owner the placement's
// replicas are installed asynchronously from the owner's serialized export,
// exactly as for a kernel create.
func (rt *Router) uploadHandler(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	cands := rt.placement(name)
	if len(cands) == 0 {
		http.Error(w, "cluster: no members", http.StatusServiceUnavailable)
		return
	}
	owner := cands[0]
	rt.mu.Lock()
	rt.repl[name] = make(map[string]bool)
	rt.mu.Unlock()

	ctx, cancel := context.WithTimeout(r.Context(), rt.cfg.Timeout)
	defer cancel()
	url := owner + "/matrices/" + name + "/data"
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, http.MaxBytesReader(w, r.Body, rt.cfg.MaxUpload))
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if r.ContentLength > 0 {
		req.ContentLength = r.ContentLength
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		// A tripped body limit surfaces as the transport error here; that is
		// the client's fault, not the owner's, so only mark the node down for
		// genuine transport failures.
		if mbe := (*http.MaxBytesError)(nil); errors.As(err, &mbe) {
			http.Error(w, fmt.Sprintf("upload exceeds %d byte limit", mbe.Limit), http.StatusRequestEntityTooLarge)
			return
		}
		rt.markDown(owner)
		http.Error(w, fmt.Sprintf("cluster: owner %s unreachable: %v", owner, err), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
	w.Header().Set("X-H2-Node", owner)
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	if resp.StatusCode == http.StatusAccepted && len(cands) > 1 {
		go rt.replicate(name, owner, cands[1:])
	}
}

// replicate waits for the owner's build, then streams the serialized matrix
// to each replica. The transport is the spill-file format — CRC-tailed, so a
// torn transfer is rejected by the receiving node, which simply stays
// without the replica (reads fall back to the owner).
func (rt *Router) replicate(name, owner string, targets []string) {
	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.Timeout)
	defer cancel()
	if !rt.waitReady(ctx, owner, name) {
		return
	}
	for _, tgt := range targets {
		if err := rt.copyInstance(ctx, name, owner, tgt); err != nil {
			continue
		}
		rt.mu.Lock()
		if m := rt.repl[name]; m != nil {
			m[tgt] = true
		}
		rt.mu.Unlock()
	}
}

// waitReady polls the owner until the instance is ready (true) or reaches a
// state that never will be (false).
func (rt *Router) waitReady(ctx context.Context, owner, name string) bool {
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, owner+"/matrices/"+name, nil)
		if err != nil {
			return false
		}
		resp, err := rt.client.Do(req)
		if err != nil {
			return false
		}
		var inf struct {
			State string `json:"state"`
		}
		err = json.NewDecoder(resp.Body).Decode(&inf)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			return false
		}
		switch inf.State {
		case "ready":
			return true
		case "failed", "closed":
			return false
		}
		select {
		case <-ctx.Done():
			return false
		case <-time.After(20 * time.Millisecond):
		}
	}
}

// copyInstance pipes owner's export stream into target's replica install.
func (rt *Router) copyInstance(ctx context.Context, name, owner, target string) error {
	get, err := http.NewRequestWithContext(ctx, http.MethodGet, owner+"/cluster/export/"+name, nil)
	if err != nil {
		return err
	}
	resp, err := rt.client.Do(get)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: export %s from %s: status %d", name, owner, resp.StatusCode)
	}
	put, err := http.NewRequestWithContext(ctx, http.MethodPut, target+"/cluster/replicas/"+name, resp.Body)
	if err != nil {
		return err
	}
	put.Header.Set("Content-Type", "application/octet-stream")
	presp, err := rt.client.Do(put)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, presp.Body)
	presp.Body.Close()
	if presp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("cluster: install %s on %s: status %d", name, target, presp.StatusCode)
	}
	return nil
}

// applyHandler serves a read: candidates rotate across owner+replicas so
// load spreads, unhealthy nodes are skipped via their readiness probes, and
// a transport failure fails over to the next holder — a read survives any
// single node disappearing as long as one holder remains.
func (rt *Router) applyHandler(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	body, ok := rt.readBody(w, r, rt.cfg.MaxBody)
	if !ok {
		return
	}
	cands := rt.placement(name)
	if len(cands) == 0 {
		http.Error(w, "cluster: no members", http.StatusServiceUnavailable)
		return
	}
	start := int(rt.rr.Add(1)) % len(cands)
	var skipped []string
	for i := 0; i < len(cands); i++ {
		addr := cands[(start+i)%len(cands)]
		if !rt.healthy(addr) {
			skipped = append(skipped, addr)
			continue
		}
		if rt.forward(w, r, addr, "/matrices/"+name+"/apply", body) {
			return
		}
	}
	// Last resort: health data may be stale; try the skipped nodes once.
	for _, addr := range skipped {
		if rt.forward(w, r, addr, "/matrices/"+name+"/apply", body) {
			return
		}
	}
	http.Error(w, fmt.Sprintf("cluster: no holder of %q reachable", name), http.StatusBadGateway)
}

// shardApplyRequest is the router-level distributed apply: like apply, plus
// the shard plan knobs. Zero NShards spreads over every holder; zero
// CutLevel lets the coordinator pick the shallowest level wide enough.
type shardApplyRequest struct {
	B         []float64 `json:"b"`
	NShards   int       `json:"nshards,omitempty"`
	CutLevel  int       `json:"cut_level,omitempty"`
	Transpose bool      `json:"transpose,omitempty"`
}

// shardApplyHandler partitions one product across the holders of a name: the
// owner coordinates, replicas compute subtree partials. Shards assigned to
// the coordinator itself are passed as local (empty peer) rather than
// self-HTTP calls.
func (rt *Router) shardApplyHandler(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req shardApplyRequest
	if !api.DecodeJSON(w, r, rt.cfg.MaxBody, &req) {
		return
	}
	cands := rt.placement(name)
	if len(cands) == 0 {
		http.Error(w, "cluster: no members", http.StatusServiceUnavailable)
		return
	}
	if req.NShards <= 0 {
		req.NShards = len(cands)
	}
	// The coordinator is the first healthy holder; the rest serve shards.
	coord := ""
	var workers []string
	for _, addr := range cands {
		if !rt.healthy(addr) {
			continue
		}
		if coord == "" {
			coord = addr
		} else {
			workers = append(workers, addr)
		}
	}
	if coord == "" {
		http.Error(w, fmt.Sprintf("cluster: no holder of %q reachable", name), http.StatusBadGateway)
		return
	}
	peers := make([]string, req.NShards)
	for s := range peers {
		if len(workers) > 0 {
			peers[s] = workers[s%len(workers)]
		} // else "": every shard recomputed locally on the coordinator
	}
	body, err := json.Marshal(gatherRequest{
		Name: name, NShards: req.NShards, CutLevel: req.CutLevel,
		Transpose: req.Transpose, B: req.B, Peers: peers,
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if !rt.forward(w, r, coord, "/cluster/gather", body) {
		http.Error(w, fmt.Sprintf("cluster: coordinator %s unreachable", coord), http.StatusBadGateway)
	}
}

// getHandler proxies an instance lookup to the first reachable holder.
func (rt *Router) getHandler(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	for _, addr := range rt.placement(name) {
		if rt.forward(w, r, addr, "/matrices/"+name, nil) {
			return
		}
	}
	http.Error(w, fmt.Sprintf("cluster: no holder of %q reachable", name), http.StatusBadGateway)
}

// deleteHandler removes an instance everywhere: a delete on the owner, a
// replica drop on the rest of the placement. Partial failures answer 502 so
// the client knows to retry.
func (rt *Router) deleteHandler(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	cands := rt.placement(name)
	if len(cands) == 0 {
		http.Error(w, "cluster: no members", http.StatusServiceUnavailable)
		return
	}
	failed := 0
	for i, addr := range cands {
		path := "/cluster/replicas/" + name
		method := http.MethodDelete
		if i == 0 {
			path = "/matrices/" + name
		}
		ctx, cancel := context.WithTimeout(r.Context(), rt.cfg.Timeout)
		req, err := http.NewRequestWithContext(ctx, method, addr+path, nil)
		if err == nil {
			if resp, derr := rt.client.Do(req); derr == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				// The owner may 404 a name created before a membership change;
				// dropping a replica 404s never (204). Both mean "gone".
				if resp.StatusCode >= 500 {
					failed++
				}
			} else {
				rt.markDown(addr)
				failed++
			}
		} else {
			failed++
		}
		cancel()
	}
	rt.mu.Lock()
	delete(rt.repl, name)
	rt.mu.Unlock()
	if failed > 0 {
		http.Error(w, fmt.Sprintf("cluster: delete %q incomplete on %d node(s)", name, failed), http.StatusBadGateway)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// listHandler aggregates every node's listing.
func (rt *Router) listHandler(w http.ResponseWriter, r *http.Request) {
	type nodeList struct {
		Node      string          `json:"node"`
		Err       string          `json:"err,omitempty"`
		Instances json.RawMessage `json:"instances,omitempty"`
	}
	members := rt.ring.Members()
	out := make([]nodeList, len(members))
	var wg sync.WaitGroup
	for i, addr := range members {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			out[i].Node = addr
			ctx, cancel := context.WithTimeout(r.Context(), rt.cfg.Timeout)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/matrices", nil)
			if err != nil {
				out[i].Err = err.Error()
				return
			}
			resp, err := rt.client.Do(req)
			if err != nil {
				out[i].Err = err.Error()
				return
			}
			defer resp.Body.Close()
			raw, err := io.ReadAll(resp.Body)
			if err != nil {
				out[i].Err = err.Error()
				return
			}
			out[i].Instances = raw
		}(i, addr)
	}
	wg.Wait()
	api.WriteJSON(w, http.StatusOK, struct {
		Nodes []nodeList `json:"nodes"`
	}{out})
}

// RouteInfo is the GET /cluster/route/{name} wire format.
type RouteInfo struct {
	Name       string   `json:"name"`
	Owner      string   `json:"owner"`
	Replicas   []string `json:"replicas"`   // placement after the owner
	Replicated []string `json:"replicated"` // replicas confirmed installed
}

func (rt *Router) routeHandler(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	cands := rt.placement(name)
	ri := RouteInfo{Name: name, Replicas: []string{}, Replicated: []string{}}
	if len(cands) > 0 {
		ri.Owner = cands[0]
		ri.Replicas = cands[1:]
	}
	rt.mu.Lock()
	for addr, ok := range rt.repl[name] {
		if ok {
			ri.Replicated = append(ri.Replicated, addr)
		}
	}
	rt.mu.Unlock()
	sort.Strings(ri.Replicated)
	api.WriteJSON(w, http.StatusOK, ri)
}

// memberChange is the POST /cluster/members wire format. Adds are applied
// before removes; placement shifts immediately (consistent hashing keeps the
// movement minimal), and names whose owner changed re-replicate on their
// next create — already-placed instances keep serving from their old holders
// until then, which reads tolerate via the route's failover.
type memberChange struct {
	Add    []string `json:"add,omitempty"`
	Remove []string `json:"remove,omitempty"`
}

func (rt *Router) membersHandler(w http.ResponseWriter, _ *http.Request) {
	api.WriteJSON(w, http.StatusOK, struct {
		Members []string `json:"members"`
	}{rt.ring.Members()})
}

func (rt *Router) membersChangeHandler(w http.ResponseWriter, r *http.Request) {
	var req memberChange
	if !api.DecodeJSON(w, r, rt.cfg.MaxBody, &req) {
		return
	}
	for _, a := range req.Add {
		rt.ring.Add(a)
	}
	for _, a := range req.Remove {
		rt.ring.Remove(a)
		rt.mu.Lock()
		delete(rt.health, a)
		rt.mu.Unlock()
	}
	api.WriteJSON(w, http.StatusOK, struct {
		Members []string `json:"members"`
	}{rt.ring.Members()})
}

// readyzHandler fans the readiness probe across the fleet.
func (rt *Router) readyzHandler(w http.ResponseWriter, _ *http.Request) {
	members := rt.ring.Members()
	type memberHealth struct {
		Node string `json:"node"`
		OK   bool   `json:"ok"`
	}
	out := make([]memberHealth, len(members))
	var wg sync.WaitGroup
	ok := true
	var okMu sync.Mutex
	for i, addr := range members {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			h := rt.healthy(addr)
			out[i] = memberHealth{Node: addr, OK: h}
			if !h {
				okMu.Lock()
				ok = false
				okMu.Unlock()
			}
		}(i, addr)
	}
	wg.Wait()
	api.WriteJSON(w, http.StatusOK, struct {
		OK      bool           `json:"ok"`
		Members []memberHealth `json:"members"`
	}{ok, out})
}
