package cluster

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"h2ds/internal/api"
	"h2ds/internal/kernel"
	"h2ds/internal/oracle"
	"h2ds/internal/pointset"
	"h2ds/internal/registry"
)

// startDenseCluster brings up nodes whose upload directories live under the
// test's temp space, plus a router with the given body caps.
func startDenseCluster(t *testing.T, n, replicas int, maxUpload int64) ([]*testNode, *httptest.Server) {
	t.Helper()
	nodes := make([]*testNode, n)
	members := make([]string, n)
	for i := range nodes {
		reg := registry.New(registry.Config{Workers: 1})
		srv := httptest.NewServer(NodeHandler(reg, 20*time.Second, api.Limits{DataDir: t.TempDir()}))
		t.Cleanup(func() { srv.Close(); reg.Close() })
		nodes[i] = &testNode{reg: reg, srv: srv}
		members[i] = srv.URL
	}
	rt := NewRouter(RouterConfig{
		Members: members, Replicas: replicas,
		Timeout: 30 * time.Second, HealthTTL: 150 * time.Millisecond,
		MaxUpload: maxUpload,
	})
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)
	return nodes, front
}

// TestRouterDenseUpload routes a raw dense upload through the cluster front:
// the owner builds it geometry-obliviously, replicas install the serialized
// stream, reads rotate across holders with bitwise-identical results, and a
// sharded apply agrees too.
func TestRouterDenseUpload(t *testing.T) {
	const n = 150
	pts := pointset.Cube(n, 3, 61)
	k, err := kernel.ByName("gaussian")
	if err != nil {
		t.Fatal(err)
	}
	data := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			data[i*n+j] = k.EvalPair(pts.At(i), pts.At(j))
		}
	}

	_, front := startDenseCluster(t, 3, 2, 0)
	resp, err := http.Post(front.URL+"/matrices/d/data?sym=1&tol=1e-6&leaf=30",
		"application/octet-stream", bytes.NewReader(oracle.Pack(data)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("upload: %d %s", resp.StatusCode, body)
	}
	waitReplicated(t, front.URL, "d", 1)

	b := testVec(n, 3)
	ref := make([]float64, n)
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < n; j++ {
			s += data[i*n+j] * b[j]
		}
		ref[i] = s
	}

	apply := func(path string, req any) []float64 {
		t.Helper()
		resp, body := postJSON(t, front.URL+path, req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("apply %s: %d %s", path, resp.StatusCode, body)
		}
		var ar api.ApplyResponse
		if err := json.Unmarshal(body, &ar); err != nil {
			t.Fatal(err)
		}
		return ar.Y
	}

	// Reads rotate across owner and replica; every holder serves the same
	// stored blocks, so the rotation is invisible bit for bit.
	first := apply("/matrices/d/apply", api.ApplyRequest{B: b})
	var num, den float64
	for i := range first {
		num += (first[i] - ref[i]) * (first[i] - ref[i])
		den += ref[i] * ref[i]
	}
	if rel := math.Sqrt(num / den); rel > 1e-4 {
		t.Fatalf("routed apply off dense reference by %.3e", rel)
	}
	for round := 0; round < 3; round++ {
		y := apply("/matrices/d/apply", api.ApplyRequest{B: b})
		for i := range y {
			if y[i] != first[i] {
				t.Fatalf("round %d: rotated read differs at %d", round, i)
			}
		}
	}
	// Sharded scatter/gather over the holders matches the plain apply.
	ys := apply("/matrices/d/shardapply", map[string]any{"b": b, "nshards": 2})
	for i := range ys {
		if ys[i] != first[i] {
			t.Fatalf("shardapply differs at %d: %g vs %g", i, ys[i], first[i])
		}
	}
}

// TestRouterUploadTooLarge pins the router-side upload cap: the body is
// rejected with 413 without reaching any node.
func TestRouterUploadTooLarge(t *testing.T) {
	_, front := startDenseCluster(t, 1, 1, 512)
	resp, err := http.Post(front.URL+"/matrices/d/data?sym=1",
		"application/octet-stream", bytes.NewReader(make([]byte, 4096)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized upload through router: %d, want 413", resp.StatusCode)
	}
}
