package registry

import (
	"sync/atomic"
	"time"

	"h2ds/internal/core"
	"h2ds/internal/serve"
)

// counters is the registry's lifecycle instrumentation: pure atomics,
// aggregated into a Stats value on demand.
type counters struct {
	buildsStarted   atomic.Int64
	buildsSucceeded atomic.Int64
	buildsFailed    atomic.Int64
	evictions       atomic.Int64
	rehydrations    atomic.Int64
	swapDrains      atomic.Int64
	downgrades      atomic.Int64
	installs        atomic.Int64
	shutdownSpills  atomic.Int64

	spillCleanupErrors atomic.Int64
}

// Stats is a point-in-time snapshot of the registry's lifecycle counters.
// BuildsFailed includes cancelled and superseded (discarded) builds.
type Stats struct {
	BuildsStarted   int64 `json:"builds_started"`
	BuildsSucceeded int64 `json:"builds_succeeded"`
	BuildsFailed    int64 `json:"builds_failed"`
	Evictions       int64 `json:"evictions"`
	Rehydrations    int64 `json:"rehydrations"`
	SwapDrains      int64 `json:"swap_drains"`
	Downgrades      int64 `json:"downgrades"`      // budget overages resolved by hybrid storage shrink instead of eviction
	Installs        int64 `json:"installs"`        // pre-built matrices installed directly (replica imports)
	ShutdownSpills  int64 `json:"shutdown_spills"` // builds that completed during Close and were persisted as spills

	// SpillCleanupErrors counts spill files that could not be removed when
	// their instance was deleted, rebuilt, or rehydrated. Each one is leaked
	// disk in the spill dir; a growing count means the dir needs operator
	// attention (permissions, immutable files).
	SpillCleanupErrors int64 `json:"spill_cleanup_errors"`

	// Construction-cache counters (default builder only): cumulative
	// geometry-fingerprint hits/misses and currently retained geometries.
	BuildCacheHits    int64 `json:"build_cache_hits"`
	BuildCacheMisses  int64 `json:"build_cache_misses"`
	BuildCacheEntries int   `json:"build_cache_entries"`

	QueueDepth int   `json:"queue_depth"` // builds accepted but not yet started
	Instances  int   `json:"instances"`
	Ready      int   `json:"ready"`
	MemBytes   int64 `json:"mem_bytes"`  // total across Ready instances
	MemBudget  int64 `json:"mem_budget"` // 0 = unlimited

	// States counts instances by lifecycle state name; MemHeadroom is the
	// budget minus the Ready total (-1 when unbudgeted). Both feed the
	// /readyz readiness endpoint, which the cluster router uses for replica
	// selection.
	States      map[string]int `json:"states"`
	MemHeadroom int64          `json:"mem_headroom"`
}

// Stats returns a snapshot of the registry counters.
func (r *Registry) Stats() Stats {
	s := Stats{
		BuildsStarted:      r.st.buildsStarted.Load(),
		BuildsSucceeded:    r.st.buildsSucceeded.Load(),
		BuildsFailed:       r.st.buildsFailed.Load(),
		Evictions:          r.st.evictions.Load(),
		Rehydrations:       r.st.rehydrations.Load(),
		SwapDrains:         r.st.swapDrains.Load(),
		Downgrades:         r.st.downgrades.Load(),
		Installs:           r.st.installs.Load(),
		ShutdownSpills:     r.st.shutdownSpills.Load(),
		SpillCleanupErrors: r.st.spillCleanupErrors.Load(),
		QueueDepth:         len(r.queue),
		MemBudget:          r.cfg.MemBudget,
		States:             make(map[string]int),
	}
	if r.bcache != nil {
		s.BuildCacheHits, s.BuildCacheMisses, s.BuildCacheEntries = r.bcache.Stats()
	}
	r.mu.Lock()
	insts := make([]*instance, 0, len(r.items))
	for _, inst := range r.items {
		insts = append(insts, inst)
	}
	r.mu.Unlock()
	s.Instances = len(insts)
	for _, inst := range insts {
		inst.mu.Lock()
		s.States[inst.state.String()]++
		if inst.state == StateReady {
			s.Ready++
			s.MemBytes += inst.mem
		}
		inst.mu.Unlock()
	}
	s.MemHeadroom = -1
	if s.MemBudget > 0 {
		s.MemHeadroom = s.MemBudget - s.MemBytes
	}
	return s
}

// Info is a snapshot of one instance for listings and state polling.
// Matrix shape fields are present once the instance has (or had) a built
// matrix; Serve carries the live batcher counters while Ready.
type Info struct {
	Name  string    `json:"name"`
	State State     `json:"state"`
	Spec  BuildSpec `json:"spec"`

	Stage          string `json:"stage,omitempty"`            // build progress while a build runs
	BuildElapsedMS int64  `json:"build_elapsed_ms,omitempty"` // since the running build started
	Rebuilding     bool   `json:"rebuilding,omitempty"`       // hot-swap build in progress while Ready
	Error          string `json:"error,omitempty"`            // last build/spill failure

	N        int    `json:"n,omitempty"`
	Dim      int    `json:"dim,omitempty"`
	Kernel   string `json:"kernel,omitempty"`
	Mode     string `json:"mode,omitempty"`
	Basis    string `json:"basis,omitempty"`
	MemBytes int64  `json:"mem_bytes,omitempty"`

	// Error-controlled build reporting (reltol builds only): the requested
	// tolerance, the build-time a-posteriori error estimate, and the achieved
	// per-level rank summary.
	RelTol     float64          `json:"reltol,omitempty"`
	EstRelErr  float64          `json:"est_relerr,omitempty"`
	MaxRank    int              `json:"max_rank,omitempty"`
	LevelRanks []core.LevelRank `json:"level_ranks,omitempty"`

	// Phases is the construction-phase time breakdown of the live build
	// (absent for loaded/rehydrated matrices, which report zero phases). A
	// construction-cache hit shows cache_hit true with sample_ns == 0.
	Phases *core.BuildPhases `json:"phases,omitempty"`

	Spilled bool `json:"spilled,omitempty"` // evicted with a spill file: next Apply rehydrates

	CreatedAt time.Time `json:"created_at"`
	ReadyAt   time.Time `json:"ready_at,omitempty"`
	LastApply time.Time `json:"last_apply,omitempty"`

	Serve *serve.Stats `json:"serve,omitempty"`
}

// info snapshots the instance under its lock.
func (in *instance) info() Info {
	in.mu.Lock()
	defer in.mu.Unlock()
	inf := Info{
		Name:      in.name,
		State:     in.state,
		Spec:      in.spec,
		Stage:     in.stage,
		MemBytes:  in.mem,
		Spilled:   in.spillPath != "",
		CreatedAt: in.createdAt,
		ReadyAt:   in.readyAt,
		LastApply: in.lastApply,
	}
	if in.err != nil {
		inf.Error = in.err.Error()
	}
	if in.building {
		inf.Rebuilding = in.state == StateReady
		if !in.buildStart.IsZero() {
			inf.BuildElapsedMS = time.Since(in.buildStart).Milliseconds()
		}
	}
	if in.cur != nil {
		m := in.cur.b.Matrix()
		inf.N, inf.Dim = m.N, m.Dim
		inf.Kernel = m.Kern.Name()
		inf.Mode = m.Cfg.Mode.String()
		inf.Basis = m.Cfg.Kind.String()
		bs := m.Stats()
		inf.MaxRank = bs.MaxRank
		inf.RelTol = bs.RelTol
		inf.EstRelErr = bs.EstRelErr
		if bs.RelTol > 0 {
			inf.LevelRanks = bs.LevelRanks
		}
		if bs.Phases.TotalNS > 0 {
			ph := bs.Phases
			inf.Phases = &ph
		}
		st := in.cur.b.Stats()
		inf.Serve = &st
	}
	return inf
}
