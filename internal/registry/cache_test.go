package registry

import (
	"math"
	"testing"
	"time"

	"h2ds/internal/core"
	"h2ds/internal/kernel"
	"h2ds/internal/pointset"
	"h2ds/internal/sample"
)

// phasesOf fetches the build-phase breakdown of a Ready instance.
func phasesOf(t *testing.T, r *Registry, name string) *core.BuildPhases {
	t.Helper()
	inf, ok := r.Get(name)
	if !ok {
		t.Fatalf("%s: no info", name)
	}
	if inf.Phases == nil {
		t.Fatalf("%s: no phase breakdown in info", name)
	}
	return inf.Phases
}

// TestConstructionCacheSharedGeometry: two tenants over the identical point
// set (same dist/n/dim/seed and tree/sampling parameters) must share one
// tree+hierarchy — the second build skips Algorithm 1 entirely, observable
// as sample_ns == 0 with cache_hit set.
func TestConstructionCacheSharedGeometry(t *testing.T) {
	r := New(Config{Workers: 1})
	defer r.Close()

	if err := r.Create("tenant-a", tinySpec(3)); err != nil {
		t.Fatal(err)
	}
	if err := r.WaitReady(waitCtx(t), "tenant-a"); err != nil {
		t.Fatal(err)
	}
	pa := phasesOf(t, r, "tenant-a")
	if pa.CacheHit {
		t.Fatalf("first tenant reported a cache hit")
	}
	if pa.SampleNS == 0 {
		t.Fatalf("first tenant sampled nothing (sample_ns == 0)")
	}

	// Same geometry, different kernel: sampling is kernel-independent, so
	// the cache must hit.
	spec := tinySpec(3)
	spec.Kernel = "gaussian"
	if err := r.Create("tenant-b", spec); err != nil {
		t.Fatal(err)
	}
	if err := r.WaitReady(waitCtx(t), "tenant-b"); err != nil {
		t.Fatal(err)
	}
	pb := phasesOf(t, r, "tenant-b")
	if !pb.CacheHit {
		t.Fatalf("second tenant with identical geometry missed the cache")
	}
	if pb.SampleNS != 0 {
		t.Fatalf("cache hit but sample_ns = %d, want 0", pb.SampleNS)
	}
	if hits, _, entries := r.BuildCache().Stats(); hits != 1 || entries != 1 {
		t.Fatalf("cache stats: hits %d entries %d, want 1/1", hits, entries)
	}

	// Different seed = different point cloud: must miss.
	if err := r.Create("tenant-c", tinySpec(4)); err != nil {
		t.Fatal(err)
	}
	if err := r.WaitReady(waitCtx(t), "tenant-c"); err != nil {
		t.Fatal(err)
	}
	if pc := phasesOf(t, r, "tenant-c"); pc.CacheHit {
		t.Fatalf("different geometry hit the cache")
	}

	// The cached-build tenant must still serve correct answers: compare
	// against a direct core.Build of the same spec.
	m, ok := r.Matrix("tenant-b")
	if !ok {
		t.Fatal("tenant-b has no matrix")
	}
	pts, _ := pointset.Named("cube", 500, 3, 3)
	k, _ := kernel.ByName("gaussian")
	ref, err := core.Build(pts, k, core.Config{
		Kind: core.DataDriven, Mode: core.OnTheFly,
		Tol: 1e-4, LeafSize: 50, Sampler: sample.AnchorNet{}, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	b := randVec(m.N, 11)
	got := make([]float64, m.N)
	want := make([]float64, m.N)
	m.ApplyTo(got, b)
	ref.ApplyTo(want, b)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-12*(1+math.Abs(want[i])) {
			t.Fatalf("cached build diverges from direct build at %d: %g vs %g", i, got[i], want[i])
		}
	}
}

// TestConstructionCacheHotSwap: redeclaring a Ready tenant with the same
// geometry (e.g. a tolerance change) must reuse its hierarchy on the
// rebuild.
func TestConstructionCacheHotSwap(t *testing.T) {
	r := New(Config{Workers: 1})
	defer r.Close()

	if err := r.Create("hot", tinySpec(5)); err != nil {
		t.Fatal(err)
	}
	if err := r.WaitReady(waitCtx(t), "hot"); err != nil {
		t.Fatal(err)
	}
	if p := phasesOf(t, r, "hot"); p.CacheHit {
		t.Fatalf("first build reported a cache hit")
	}

	// Hot-swap rebuild: same geometry and sampling parameters, different
	// memory mode. The fingerprint is unchanged, so the rebuild reuses the
	// hierarchy. WaitReady returns immediately (the old version keeps
	// serving), so poll until the swapped-in version appears.
	spec := tinySpec(5)
	spec.Mem = "normal"
	if err := r.Create("hot", spec); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if inf, ok := r.Get("hot"); ok && !inf.Rebuilding && inf.Mode == "normal" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("hot swap did not complete")
		}
		time.Sleep(2 * time.Millisecond)
	}
	p := phasesOf(t, r, "hot")
	if !p.CacheHit {
		t.Fatalf("hot-swap rebuild with unchanged geometry missed the cache")
	}
	if p.SampleNS != 0 {
		t.Fatalf("hot-swap cache hit but sample_ns = %d, want 0", p.SampleNS)
	}
}

// TestConstructionCacheDisabled: CacheEntries < 0 turns the cache off.
func TestConstructionCacheDisabled(t *testing.T) {
	r := New(Config{Workers: 1, CacheEntries: -1})
	defer r.Close()
	if r.BuildCache() != nil {
		t.Fatal("negative CacheEntries should disable the cache")
	}
	if err := r.Create("a", tinySpec(6)); err != nil {
		t.Fatal(err)
	}
	if err := r.WaitReady(waitCtx(t), "a"); err != nil {
		t.Fatal(err)
	}
	if err := r.Create("b", tinySpec(6)); err != nil {
		t.Fatal(err)
	}
	if err := r.WaitReady(waitCtx(t), "b"); err != nil {
		t.Fatal(err)
	}
	if p := phasesOf(t, r, "b"); p.CacheHit {
		t.Fatalf("cache disabled but build reported a hit")
	}
}

// TestConstructionCacheRelTolDistinct: a reltol change alters the derived
// sample budget, so the fingerprint must differ and the rebuild must
// re-sample (stale hierarchies must not leak across tolerance changes).
func TestConstructionCacheRelTolDistinct(t *testing.T) {
	r := New(Config{Workers: 1})
	defer r.Close()

	spec := tinySpec(7)
	spec.Tol = 0
	spec.RelTol = 1e-2
	if err := r.Create("rt", spec); err != nil {
		t.Fatal(err)
	}
	if err := r.WaitReady(waitCtx(t), "rt"); err != nil {
		t.Fatal(err)
	}

	spec.RelTol = 1e-4
	if err := r.Create("rt", spec); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if inf, ok := r.Get("rt"); ok && !inf.Rebuilding && inf.RelTol == 1e-4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("hot swap did not complete")
		}
		time.Sleep(2 * time.Millisecond)
	}
	p := phasesOf(t, r, "rt")
	if p.CacheHit {
		t.Fatalf("tighter reltol (larger sample budget) wrongly hit the cache")
	}
	inf, _ := r.Get("rt")
	if inf.EstRelErr == 0 || inf.EstRelErr > 10*1e-4 {
		t.Fatalf("reltol rebuild certificate %g out of range", inf.EstRelErr)
	}
}
