package registry

import (
	"context"
	"testing"
	"time"

	"h2ds/internal/core"
)

// normalSpec is tinySpec with stored blocks, so the instance has storage to
// shed when the budget tightens.
func normalSpec(seed int64) BuildSpec {
	sp := tinySpec(seed)
	sp.Mem = "normal"
	return sp
}

// TestHybridSpecBuilds checks the "hybrid" memory mode flows through
// BuildSpec validation, DefaultBuild, and Info reporting.
func TestHybridSpecBuilds(t *testing.T) {
	r := New(Config{Workers: 1})
	defer r.Close()
	sp := tinySpec(61)
	sp.Mem = "hybrid"
	sp.StorageBudget = 64 << 10
	if err := r.Create("h", sp); err != nil {
		t.Fatal(err)
	}
	if err := r.WaitReady(waitCtx(t), "h"); err != nil {
		t.Fatal(err)
	}
	m, ok := r.Matrix("h")
	if !ok || m.Cfg.Mode != core.Hybrid || m.Cfg.StorageBudget != sp.StorageBudget {
		t.Fatalf("hybrid build config: ok=%v cfg=%+v", ok, m.Cfg)
	}
	inf, _ := r.Get("h")
	if inf.Mode != "hybrid" {
		t.Fatalf("Info.Mode = %q, want hybrid", inf.Mode)
	}
	b := randVec(m.N, 62)
	if _, err := r.Apply(waitCtx(t), "h", b); err != nil {
		t.Fatal(err)
	}
	if ss := m.SweepStats(); ss.HybridHits+ss.HybridMisses == 0 {
		t.Fatalf("hybrid apply recorded no hit/miss traffic: %+v", ss)
	}
	if sp.StorageBudget = -1; r.Create("bad", sp) == nil {
		t.Fatal("negative storage budget accepted")
	}
}

// TestBudgetDowngradesBeforeEvicting pins the new reclaim order: when the
// memory budget is exceeded, the LRU Normal-mode instance is downgraded to a
// smaller hybrid version — still Ready, still serving the same operator —
// rather than evicted or spilled.
func TestBudgetDowngradesBeforeEvicting(t *testing.T) {
	probe, err := DefaultBuild(context.Background(), normalSpec(71).withDefaults(), func(string) {})
	if err != nil {
		t.Fatal(err)
	}
	mem := probe.Memory()
	// Admit the first instance fully, but leave no room for the second's
	// stored blocks: the overage must be recovered from "first"'s storage.
	budget := probe.Memory().Total() + (mem.Total() - (mem.Coupling+mem.Nearfield)/2)

	r := New(Config{Workers: 1, MemBudget: budget})
	defer r.Close()
	for _, name := range []string{"first", "second"} {
		if err := r.Create(name, normalSpec(71)); err != nil {
			t.Fatal(err)
		}
		if err := r.WaitReady(waitCtx(t), name); err != nil {
			t.Fatal(err)
		}
		// Order the LRU: "first" is applied first, so it is the victim.
		m, _ := r.Matrix(name)
		if _, err := r.Apply(waitCtx(t), name, randVec(m.N, 72)); err != nil {
			t.Fatal(err)
		}
	}

	// The reclaim may take several downgrade passes (the hybrid scratch
	// accounting nudges the footprint), and mid-pass the victim is briefly
	// Evicted-with-unlinked-version; wait for the settled state.
	deadline := time.Now().Add(30 * time.Second)
	var inf Info
	for {
		st := r.Stats()
		inf, _ = r.Get("first")
		if st.Downgrades >= 1 && st.MemBytes <= budget && inf.State == StateReady {
			break
		}
		if st.Evictions > 0 {
			t.Fatalf("evicted instead of downgrading: %+v", st)
		}
		if time.Now().After(deadline) {
			t.Fatalf("budget never enforced via downgrade: stats %+v first %+v", st, inf)
		}
		time.Sleep(time.Millisecond)
	}
	if inf.Mode != "hybrid" {
		t.Fatalf("victim mode = %q, want hybrid", inf.Mode)
	}
	// The downgraded instance still answers with the same operator (shared
	// generators; stored-vs-fused blocks are bitwise-identical per value).
	mFirst, ok := r.Matrix("first")
	if !ok {
		t.Fatal("downgraded matrix unavailable")
	}
	b := randVec(mFirst.N, 73)
	want := probe.Apply(b)
	y, err := r.Apply(waitCtx(t), "first", b)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxRelDiff(want, y); d > 1e-12 {
		t.Fatalf("downgraded result diverges: %g", d)
	}
}
