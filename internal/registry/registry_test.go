package registry

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"h2ds/internal/core"
	"h2ds/internal/serve"
)

// tinySpec is a build spec small enough that a full build takes well under
// a second; seed varies the point cloud between instances.
func tinySpec(seed int64) BuildSpec {
	return BuildSpec{Kernel: "coulomb", Dist: "cube", N: 500, Dim: 3,
		Tol: 1e-4, Basis: "dd", Mem: "otf", Leaf: 50, Seed: seed}
}

func waitCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func randVec(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func maxRelDiff(a, b []float64) float64 {
	if len(a) != len(b) {
		return math.Inf(1)
	}
	d := 0.0
	for i, v := range a {
		if r := math.Abs(b[i]-v) / (1 + math.Abs(v)); r > d {
			d = r
		}
	}
	return d
}

func TestLifecycleBasic(t *testing.T) {
	r := New(Config{Workers: 2})
	defer r.Close()
	if err := r.Create("a", tinySpec(1)); err != nil {
		t.Fatal(err)
	}
	if err := r.WaitReady(waitCtx(t), "a"); err != nil {
		t.Fatal(err)
	}
	m, ok := r.Matrix("a")
	if !ok {
		t.Fatal("no matrix for ready instance")
	}
	b := randVec(m.N, 7)
	ref := m.Apply(b)
	y, err := r.Apply(waitCtx(t), "a", b)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxRelDiff(ref, y); d > 1e-12 {
		t.Fatalf("registry apply diverges from direct apply: %g", d)
	}

	inf, ok := r.Get("a")
	if !ok || inf.State != StateReady || inf.Kernel != "coulomb" || inf.N != m.N {
		t.Fatalf("bad info: %+v", inf)
	}
	if inf.MemBytes <= 0 || inf.Serve == nil || inf.Serve.Served != 1 {
		t.Fatalf("info missing memory/serve stats: %+v", inf)
	}
	if l := r.List(); len(l) != 1 || l[0].Name != "a" {
		t.Fatalf("bad list: %+v", l)
	}
	st := r.Stats()
	if st.BuildsSucceeded != 1 || st.Ready != 1 || st.MemBytes != inf.MemBytes {
		t.Fatalf("bad stats: %+v", st)
	}

	if err := r.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Apply(waitCtx(t), "a", b); !errors.Is(err, ErrNotFound) {
		t.Fatalf("apply after delete: %v, want ErrNotFound", err)
	}
	if err := r.Delete("a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v, want ErrNotFound", err)
	}
}

func TestCreateValidation(t *testing.T) {
	r := New(Config{})
	defer r.Close()
	cases := []struct {
		name string
		spec BuildSpec
	}{
		{"bad/name", tinySpec(1)},
		{"", tinySpec(1)},
		{"x", BuildSpec{Kernel: "nosuch", N: 100}},
		{"x", BuildSpec{Dist: "nosuch", N: 100}},
		{"x", BuildSpec{Sampler: "nosuch", N: 100}},
		{"x", BuildSpec{Basis: "nosuch", N: 100}},
		{"x", BuildSpec{Mem: "nosuch", N: 100}},
		{"x", BuildSpec{N: -5}},
	}
	for _, c := range cases {
		if err := r.Create(c.name, c.spec); err == nil {
			t.Errorf("Create(%q, %+v) accepted", c.name, c.spec)
		}
	}
	if len(r.List()) != 0 {
		t.Fatal("rejected specs left instances behind")
	}
}

// TestBuildPanicLandsFailed injects a panicking build and checks it lands in
// Failed with the error surfaced, while the queue and workers stay live for
// subsequent builds.
func TestBuildPanicLandsFailed(t *testing.T) {
	r := New(Config{Workers: 1, Builder: func(ctx context.Context, sp BuildSpec, setStage func(string)) (*core.Matrix, error) {
		if sp.Path == "panic://kaboom" {
			panic("kaboom")
		}
		return DefaultBuild(ctx, sp, setStage)
	}})
	defer r.Close()

	if err := r.Create("boom", BuildSpec{Path: "panic://kaboom"}); err != nil {
		t.Fatal(err)
	}
	err := r.WaitReady(waitCtx(t), "boom")
	if !errors.Is(err, ErrNotReady) {
		t.Fatalf("WaitReady on panicked build: %v, want ErrNotReady", err)
	}
	inf, ok := r.Get("boom")
	if !ok || inf.State != StateFailed || !strings.Contains(inf.Error, "kaboom") {
		t.Fatalf("panicked build info: %+v", inf)
	}
	if _, aerr := r.Apply(waitCtx(t), "boom", nil); !errors.Is(aerr, ErrNotReady) {
		t.Fatalf("apply on failed instance: %v", aerr)
	}

	// The worker survived the panic: the same queue builds the next spec.
	if err := r.Create("ok", tinySpec(2)); err != nil {
		t.Fatal(err)
	}
	if err := r.WaitReady(waitCtx(t), "ok"); err != nil {
		t.Fatalf("build after panic: %v", err)
	}

	// Redeclaring the failed name rebuilds it.
	if err := r.Create("boom", tinySpec(3)); err != nil {
		t.Fatal(err)
	}
	if err := r.WaitReady(waitCtx(t), "boom"); err != nil {
		t.Fatalf("rebuild of failed name: %v", err)
	}
	if st := r.Stats(); st.BuildsFailed != 1 || st.BuildsSucceeded != 2 {
		t.Fatalf("stats after panic+recovery: %+v", st)
	}
}

// TestAsyncBuildFailure checks an environmental failure (missing load path)
// surfaces asynchronously as Failed, not as a Create error.
func TestAsyncBuildFailure(t *testing.T) {
	r := New(Config{})
	defer r.Close()
	if err := r.Create("gone", BuildSpec{Path: filepath.Join(t.TempDir(), "missing.h2")}); err != nil {
		t.Fatalf("Create must accept a spec with a missing file: %v", err)
	}
	if err := r.WaitReady(waitCtx(t), "gone"); !errors.Is(err, ErrNotReady) {
		t.Fatalf("WaitReady: %v, want ErrNotReady", err)
	}
	if inf, _ := r.Get("gone"); inf.State != StateFailed || inf.Error == "" {
		t.Fatalf("info: %+v", inf)
	}
}

// TestCreateBusyAndQueueFull checks admission control: one outstanding build
// per name, and a bounded queue that fails fast when saturated.
func TestCreateBusyAndQueueFull(t *testing.T) {
	started := make(chan struct{}, 4)
	gate := make(chan struct{})
	var once sync.Once
	release := func() { once.Do(func() { close(gate) }) }
	defer release()
	r := New(Config{Workers: 1, QueueDepth: 1, Builder: func(ctx context.Context, sp BuildSpec, setStage func(string)) (*core.Matrix, error) {
		started <- struct{}{}
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return DefaultBuild(ctx, sp, setStage)
	}})
	defer r.Close()

	if err := r.Create("a", tinySpec(1)); err != nil {
		t.Fatal(err)
	}
	if err := r.Create("a", tinySpec(1)); !errors.Is(err, ErrBusy) {
		t.Fatalf("second create of building name: %v, want ErrBusy", err)
	}
	<-started // the worker holds "a"; its queue slot is free again
	// Worker is stalled on "a"; one more job fits the queue, the next must
	// fail fast.
	if err := r.Create("b", tinySpec(2)); err != nil {
		t.Fatal(err)
	}
	if err := r.Create("c", tinySpec(3)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("create at queue limit: %v, want ErrQueueFull", err)
	}
	release()
	for _, name := range []string{"a", "b"} {
		if err := r.WaitReady(waitCtx(t), name); err != nil {
			t.Fatal(err)
		}
	}
	// "c" was never admitted.
	if _, ok := r.Get("c"); ok {
		t.Fatal("rejected create left an instance")
	}
}

// TestHotSwapZeroDowntime rebuilds a serving name under a client loop:
// no apply may fail, and every result must match either the old or the new
// version's reference product — never a torn mix.
func TestHotSwapZeroDowntime(t *testing.T) {
	r := New(Config{Workers: 2})
	defer r.Close()
	specOld := tinySpec(11)
	specNew := tinySpec(11)
	specNew.Kernel = "gaussian" // same points, observably different operator

	if err := r.Create("hot", specOld); err != nil {
		t.Fatal(err)
	}
	if err := r.WaitReady(waitCtx(t), "hot"); err != nil {
		t.Fatal(err)
	}
	mOld, _ := r.Matrix("hot")
	b := randVec(mOld.N, 21)
	refOld := mOld.Apply(b)
	// The new version's reference, built independently of the registry:
	// core.Build is deterministic for a given spec.
	mRef, err := DefaultBuild(context.Background(), specNew.withDefaults(), func(string) {})
	if err != nil {
		t.Fatal(err)
	}
	refNew := mRef.Apply(b)
	if maxRelDiff(refOld, refNew) < 1e-6 {
		t.Fatal("test is vacuous: old and new references are indistinguishable")
	}

	stop := make(chan struct{})
	var nOld, nNew atomic.Int64
	fail := make(chan string, 1)
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				y, err := r.Apply(waitCtx(t), "hot", b)
				if err != nil {
					select {
					case fail <- fmt.Sprintf("apply failed during hot swap: %v", err):
					default:
					}
					return
				}
				dOld, dNew := maxRelDiff(refOld, y), maxRelDiff(refNew, y)
				switch {
				case dOld < 1e-10:
					nOld.Add(1)
				case dNew < 1e-10:
					nNew.Add(1)
				default:
					select {
					case fail <- fmt.Sprintf("torn result: matches neither version (dOld=%g dNew=%g)", dOld, dNew):
					default:
					}
					return
				}
			}
		}()
	}

	// Wait for the clients to land at least one result on the old version,
	// then rebuild under load and keep them hammering until several
	// post-swap results have been observed.
	deadline := time.Now().Add(60 * time.Second)
	for nOld.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("clients never reached the old version")
		}
		time.Sleep(time.Millisecond)
	}
	if err := r.Create("hot", specNew); err != nil {
		t.Fatal(err)
	}
	for nNew.Load() < 5 {
		select {
		case msg := <-fail:
			close(stop)
			wg.Wait()
			t.Fatal(msg)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("swap never observed by clients: %d old, %d new", nOld.Load(), nNew.Load())
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}
	inf, _ := r.Get("hot")
	if inf.State != StateReady || inf.Kernel != "gaussian" {
		t.Fatalf("post-swap info: %+v", inf)
	}
	if st := r.Stats(); st.SwapDrains != 1 {
		t.Fatalf("swap drains = %d, want 1", st.SwapDrains)
	}
}

// TestFailedSwapKeepsServing checks a failed rebuild of a Ready name leaves
// the old version serving with the error recorded.
func TestFailedSwapKeepsServing(t *testing.T) {
	r := New(Config{Builder: func(ctx context.Context, sp BuildSpec, setStage func(string)) (*core.Matrix, error) {
		if sp.Path == "panic://swap" {
			panic("swap exploded")
		}
		return DefaultBuild(ctx, sp, setStage)
	}})
	defer r.Close()
	if err := r.Create("keep", tinySpec(31)); err != nil {
		t.Fatal(err)
	}
	if err := r.WaitReady(waitCtx(t), "keep"); err != nil {
		t.Fatal(err)
	}
	m, _ := r.Matrix("keep")
	b := randVec(m.N, 32)

	if err := r.Create("keep", BuildSpec{Path: "panic://swap"}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		inf, _ := r.Get("keep")
		if !inf.Rebuilding && inf.Error != "" {
			if inf.State != StateReady {
				t.Fatalf("failed swap must keep serving, state %v", inf.State)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("swap failure never recorded")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := r.Apply(waitCtx(t), "keep", b); err != nil {
		t.Fatalf("apply after failed swap: %v", err)
	}
}

// TestEvictionLRUAndBudget fills the registry past its budget and checks the
// least-recently-applied instance is evicted, the budget holds afterwards,
// and a spilled instance rehydrates transparently on its next Apply.
func TestEvictionLRUAndBudget(t *testing.T) {
	// Budget admits either instance alone but not both (footprints differ
	// slightly by seed, so probe both).
	var memFirst, memSecond int64
	for i, seed := range []int64{41, 43} {
		probe, err := DefaultBuild(context.Background(), tinySpec(seed).withDefaults(), func(string) {})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			memFirst = probe.Memory().Total()
		} else {
			memSecond = probe.Memory().Total()
		}
	}
	budget := memFirst + memSecond - 1

	dir := t.TempDir()
	r := New(Config{Workers: 1, MemBudget: budget, SpillDir: dir})
	defer r.Close()

	if err := r.Create("first", tinySpec(41)); err != nil {
		t.Fatal(err)
	}
	if err := r.WaitReady(waitCtx(t), "first"); err != nil {
		t.Fatal(err)
	}
	mFirst, _ := r.Matrix("first")
	b := randVec(mFirst.N, 42)
	refFirst := mFirst.Apply(b)
	if _, err := r.Apply(waitCtx(t), "first", b); err != nil {
		t.Fatal(err)
	}

	if err := r.Create("second", tinySpec(43)); err != nil {
		t.Fatal(err)
	}
	if err := r.WaitReady(waitCtx(t), "second"); err != nil {
		t.Fatal(err)
	}

	// Eviction runs right after the build completes; poll it in.
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := r.Stats()
		if st.Evictions >= 1 && st.MemBytes <= budget {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("budget never enforced: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	infFirst, _ := r.Get("first")
	infSecond, _ := r.Get("second")
	if infFirst.State != StateEvicted || !infFirst.Spilled {
		t.Fatalf("LRU victim: %+v", infFirst)
	}
	if infSecond.State != StateReady {
		t.Fatalf("newest instance evicted instead: %+v", infSecond)
	}
	if fis, err := os.ReadDir(dir); err != nil || len(fis) != 1 {
		t.Fatalf("spill dir: %v %v", fis, err)
	}

	// Lazy rehydration: the next Apply on the victim reloads it from spill
	// and answers with the exact same operator.
	y, err := r.Apply(waitCtx(t), "first", b)
	if err != nil {
		t.Fatalf("apply on spilled instance: %v", err)
	}
	if d := maxRelDiff(refFirst, y); d > 1e-12 {
		t.Fatalf("rehydrated result diverges: %g", d)
	}
	if st := r.Stats(); st.Rehydrations != 1 {
		t.Fatalf("rehydrations = %d, want 1", st.Rehydrations)
	}
	// Rehydrating "first" pushed the total back over budget: "second" is now
	// the LRU victim.
	deadline = time.Now().Add(30 * time.Second)
	for {
		inf, _ := r.Get("second")
		if inf.State == StateEvicted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("second never evicted after rehydration")
		}
		time.Sleep(time.Millisecond)
	}
	if st := r.Stats(); st.MemBytes > budget {
		t.Fatalf("budget exceeded after rehydration: %+v", st)
	}
}

// TestEvictionWithoutSpillRequiresRecreate covers the spill-less
// configuration: eviction frees the instance and Apply reports it.
func TestEvictionWithoutSpillRequiresRecreate(t *testing.T) {
	// Budget admits either instance alone but not both: different seeds give
	// slightly different footprints, so size it from both probes.
	var mems [2]int64
	for i := range mems {
		probe, err := DefaultBuild(context.Background(), tinySpec(51+int64(i)).withDefaults(), func(string) {})
		if err != nil {
			t.Fatal(err)
		}
		mems[i] = probe.Memory().Total()
	}
	r := New(Config{Workers: 1, MemBudget: mems[0] + mems[1] - 1})
	defer r.Close()
	for i, name := range []string{"a", "b"} {
		if err := r.Create(name, tinySpec(51+int64(i))); err != nil {
			t.Fatal(err)
		}
		if err := r.WaitReady(waitCtx(t), name); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if inf, _ := r.Get("a"); inf.State == StateEvicted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("eviction never happened")
		}
		time.Sleep(time.Millisecond)
	}
	b := randVec(tinySpec(51).N, 52)
	if _, err := r.Apply(waitCtx(t), "a", b); !errors.Is(err, ErrNotReady) {
		t.Fatalf("apply on evicted (no spill): %v, want ErrNotReady", err)
	}
	// Re-creating the evicted name brings it back.
	if err := r.Create("a", tinySpec(51)); err != nil {
		t.Fatal(err)
	}
	if err := r.WaitReady(waitCtx(t), "a"); err != nil {
		t.Fatal(err)
	}
}

// TestDeleteCancelsInFlightBuild deletes a name whose build is running; the
// result must be discarded and the name reusable immediately.
func TestDeleteCancelsInFlightBuild(t *testing.T) {
	started := make(chan struct{}, 8)
	gate := make(chan struct{})
	var once sync.Once
	release := func() { once.Do(func() { close(gate) }) }
	defer release()
	r := New(Config{Workers: 1, Builder: func(ctx context.Context, sp BuildSpec, setStage func(string)) (*core.Matrix, error) {
		started <- struct{}{}
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return DefaultBuild(ctx, sp, setStage)
	}})
	defer r.Close()

	if err := r.Create("doomed", tinySpec(61)); err != nil {
		t.Fatal(err)
	}
	<-started // build is in flight
	if err := r.Delete("doomed"); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Get("doomed"); ok {
		t.Fatal("deleted name still listed")
	}
	// The name is immediately reusable; the cancelled build's result (it
	// unblocks via ctx) must not resurrect or clobber the new instance.
	if err := r.Create("doomed", tinySpec(62)); err != nil {
		t.Fatal(err)
	}
	release()
	if err := r.WaitReady(waitCtx(t), "doomed"); err != nil {
		t.Fatal(err)
	}
	if inf, _ := r.Get("doomed"); inf.Spec.Seed != 62 {
		t.Fatalf("stale build won: %+v", inf.Spec)
	}
}

// TestCloseDrainsAndPersists shuts down a registry with traffic in flight:
// admitted applies drain, queued builds are cancelled without leaking, and
// Ready instances are persisted to the spill dir.
func TestCloseDrainsAndPersists(t *testing.T) {
	dir := t.TempDir()
	r := New(Config{Workers: 1, SpillDir: dir})
	if err := r.Create("live", tinySpec(71)); err != nil {
		t.Fatal(err)
	}
	if err := r.WaitReady(waitCtx(t), "live"); err != nil {
		t.Fatal(err)
	}
	m, _ := r.Matrix("live")
	b := randVec(m.N, 72)
	ref := m.Apply(b)

	// A slow second build occupies the worker so a third stays queued.
	if err := r.Create("queued", tinySpec(73)); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	applyErrs := make([]error, 8)
	applyYs := make([][]float64, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			applyYs[i], applyErrs[i] = r.Apply(context.Background(), "live", b)
		}(i)
	}
	time.Sleep(5 * time.Millisecond)
	r.Close()
	wg.Wait()

	for i, err := range applyErrs {
		if err == nil {
			if d := maxRelDiff(ref, applyYs[i]); d > 1e-12 {
				t.Fatalf("drained apply diverges: %g", d)
			}
		} else if !errors.Is(err, serve.ErrClosed) && !errors.Is(err, ErrClosed) && !errors.Is(err, ErrNotFound) {
			t.Fatalf("apply during shutdown: %v", err)
		}
	}

	// Persistence: the Ready instance was spilled at shutdown.
	spill := filepath.Join(dir, "live.h2spill")
	f, err := os.Open(spill)
	if err != nil {
		t.Fatalf("shutdown did not persist the ready instance: %v", err)
	}
	m2, err := core.ReadAny(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if d := maxRelDiff(ref, m2.Apply(b)); d > 1e-12 {
		t.Fatalf("persisted matrix diverges: %g", d)
	}

	// Everything is rejected after Close; Close stays idempotent.
	if err := r.Create("x", tinySpec(74)); !errors.Is(err, ErrClosed) {
		t.Fatalf("create after close: %v", err)
	}
	if _, err := r.Apply(context.Background(), "live", b); err == nil {
		t.Fatal("apply accepted after close")
	}
	r.Close()
}
