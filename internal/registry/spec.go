package registry

import (
	"context"
	"fmt"
	"math"
	"os"
	"regexp"
	"strings"

	"h2ds/internal/core"
	"h2ds/internal/kernel"
	"h2ds/internal/oracle"
	"h2ds/internal/pointset"
	"h2ds/internal/sample"
)

// BuildSpec describes one matrix instance: either a synthetic build (the
// same knobs as the h2serve/h2info build mode) or a load-from-file source
// (Path, a stream written by core.Matrix.WriteTo). The zero value of every
// build field gets the serving default, so a spec can be as small as
// {"n": 5000}.
type BuildSpec struct {
	Kernel  string  `json:"kernel,omitempty"`  // kernel name (default "coulomb")
	Dist    string  `json:"dist,omitempty"`    // distribution (default "cube")
	N       int     `json:"n,omitempty"`       // points (default 20000)
	Dim     int     `json:"dim,omitempty"`     // dimension, cube only (default 3)
	Tol     float64 `json:"tol,omitempty"`     // target relative accuracy (default 1e-6)
	RelTol  float64 `json:"reltol,omitempty"`  // error-controlled build tolerance (0 = fixed-parameter build)
	Basis   string  `json:"basis,omitempty"`   // "dd" or "interp" (default "dd")
	Mem     string  `json:"mem,omitempty"`     // "normal", "otf", or "hybrid" (default "otf")
	Leaf    int     `json:"leaf,omitempty"`    // leaf size (0 = core default)
	Sampler string  `json:"sampler,omitempty"` // sampler name (default "anchornet")
	Seed    int64   `json:"seed,omitempty"`    // workload seed (default 1)
	Workers int     `json:"workers,omitempty"` // build/matvec workers (0 = GOMAXPROCS)

	// StorageBudget is the hybrid-mode block byte budget (mem "hybrid"
	// only): the best assembly-savings-per-byte blocks are stored up to
	// this many bytes and the rest are evaluated on the fly.
	StorageBudget int64 `json:"storage_budget,omitempty"`

	// Path, when set, loads the matrix from this serialized file instead of
	// building; the kernel is resolved from the stream (core.ReadAny) and
	// every build knob above is ignored.
	Path string `json:"path,omitempty"`

	// Source selects the construction front-end: "" (default) builds from a
	// named kernel on a generated point set; "dense" builds
	// geometry-obliviously from a dense matrix file through the entry
	// oracle (internal/oracle) — no kernel, no coordinates. Dense builds are
	// data-driven and stored-only (mem "normal"), since there is no formula
	// to re-evaluate blocks from at apply time.
	Source string `json:"source,omitempty"`

	// DataPath is the dense source's matrix file: n·n row-major
	// little-endian float64 values, no header (n is inferred from the file
	// size). The upload endpoint writes these files; a spec may also point
	// at one directly.
	DataPath string `json:"data_path,omitempty"`

	// Sym declares the dense matrix symmetric (shared bases, triangular
	// block storage). Trusted, not verified.
	Sym bool `json:"sym,omitempty"`

	// Replica marks an instance installed from another node's serialized
	// stream (Registry.Install) rather than built locally. Purely
	// informational: listings show where an instance came from, and the
	// cluster router treats replicas as read-only.
	Replica bool `json:"replica,omitempty"`
}

// withDefaults resolves zero build fields to the serving defaults.
func (sp BuildSpec) withDefaults() BuildSpec {
	if sp.Path != "" {
		return sp
	}
	if sp.Source == "dense" {
		// Geometry-oblivious build: kernel/dist/n/dim come from the data
		// file, and the memory mode is pinned to the only supported one.
		if sp.Tol == 0 {
			sp.Tol = 1e-6
		}
		if sp.Mem == "" {
			sp.Mem = "normal"
		}
		if sp.Basis == "" {
			sp.Basis = "dd"
		}
		if sp.Sampler == "" {
			sp.Sampler = "anchornet"
		}
		if sp.Seed == 0 {
			sp.Seed = 1
		}
		return sp
	}
	if sp.Kernel == "" {
		sp.Kernel = "coulomb"
	}
	if sp.Dist == "" {
		sp.Dist = "cube"
	}
	if sp.N == 0 {
		sp.N = 20000
	}
	if sp.Dim == 0 {
		sp.Dim = 3
	}
	if sp.Tol == 0 {
		sp.Tol = 1e-6
	}
	if sp.Basis == "" {
		sp.Basis = "dd"
	}
	if sp.Mem == "" {
		sp.Mem = "otf"
	}
	if sp.Sampler == "" {
		sp.Sampler = "anchornet"
	}
	if sp.Seed == 0 {
		sp.Seed = 1
	}
	return sp
}

// validate rejects specs that can never build: unknown enum names and
// non-positive sizes fail at submission time (synchronously, so the HTTP
// layer can answer 400), while environmental failures (missing Path file,
// build errors) surface asynchronously as state Failed.
func (sp BuildSpec) validate() error {
	if sp.Path != "" {
		return nil
	}
	if sp.Source != "" && sp.Source != "dense" {
		return fmt.Errorf("registry: unknown source %q (valid: \"\", dense)", sp.Source)
	}
	if sp.Source == "dense" {
		if sp.DataPath == "" {
			return fmt.Errorf("registry: dense source needs a data_path")
		}
		if sp.Mem != "normal" {
			return fmt.Errorf("registry: dense source is stored-only (mem \"normal\"): mode %q re-evaluates blocks from a kernel the oracle does not have", sp.Mem)
		}
		if sp.Basis != "dd" {
			return fmt.Errorf("registry: dense source requires the data-driven basis, got %q", sp.Basis)
		}
		if _, ok := sample.Named(sp.Sampler); !ok {
			return fmt.Errorf("registry: unknown sampler %q", sp.Sampler)
		}
		if sp.N < 0 {
			return fmt.Errorf("registry: negative n %d", sp.N)
		}
		return sp.validateTols()
	}
	if _, err := kernel.ByName(sp.Kernel); err != nil {
		return err
	}
	if _, ok := pointset.Named(sp.Dist, 1, maxInt(sp.Dim, 1), 1); !ok {
		return fmt.Errorf("registry: unknown distribution %q", sp.Dist)
	}
	if _, ok := sample.Named(sp.Sampler); !ok {
		return fmt.Errorf("registry: unknown sampler %q", sp.Sampler)
	}
	if sp.Basis != "dd" && sp.Basis != "interp" {
		return fmt.Errorf("registry: unknown basis %q (valid: dd, interp)", sp.Basis)
	}
	if sp.Mem != "normal" && sp.Mem != "otf" && sp.Mem != "hybrid" {
		return fmt.Errorf("registry: unknown memory mode %q (valid: normal, otf, hybrid)", sp.Mem)
	}
	if sp.StorageBudget < 0 {
		return fmt.Errorf("registry: negative storage budget %d", sp.StorageBudget)
	}
	if sp.N < 1 {
		return fmt.Errorf("registry: n must be positive, got %d", sp.N)
	}
	return sp.validateTols()
}

// validateTols checks both tolerances are a real number in [0, 1): zero
// means "use the default" (tol) or "disabled" (reltol), and a tolerance of
// 1 or more is meaningless for a relative accuracy target. NaN in
// particular would otherwise slide through every float comparison and build
// a garbage matrix.
func (sp BuildSpec) validateTols() error {
	if v := sp.Tol; math.IsNaN(v) || v < 0 || v >= 1 {
		return fmt.Errorf("registry: tol must be in (0, 1), got %g", v)
	}
	if v := sp.RelTol; math.IsNaN(v) || v < 0 || v >= 1 {
		return fmt.Errorf("registry: reltol must be in (0, 1), got %g", v)
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Builder turns a spec into a matrix. setStage stamps build progress for
// GET /matrices observers ("points", "build", "load"); ctx is the build
// job's context — cancelled by Delete and registry shutdown, and checked by
// the worker at stage boundaries regardless of whether the builder honors
// it. DefaultBuild is used when Config.Builder is nil; embedders override
// it for custom matrix sources or fault injection.
type Builder func(ctx context.Context, sp BuildSpec, setStage func(string)) (*core.Matrix, error)

// DefaultBuild resolves a spec against the kernel/pointset/sampler name
// registries and runs core.Build, loads from sp.Path via core.ReadAny, or —
// for the "dense" source — loads the matrix file into an entry oracle and
// runs the geometry-oblivious core.BuildOracle.
func DefaultBuild(ctx context.Context, sp BuildSpec, setStage func(string)) (*core.Matrix, error) {
	return BuildWithCache(ctx, sp, setStage, nil)
}

// BuildWithCache is DefaultBuild threading an optional construction cache
// into core.Build: tenants whose geometry and tree/sampling parameters
// fingerprint identically (and hot-swap rebuilds of one tenant) reuse the
// spatial tree and Algorithm 1 hierarchy instead of re-running them —
// observable as Phases.CacheHit with sample_ns == 0 in the instance info. A
// registry without an explicit Builder routes every build through its own
// shared cache.
func BuildWithCache(ctx context.Context, sp BuildSpec, setStage func(string), cache *core.BuildCache) (*core.Matrix, error) {
	if sp.Path != "" {
		setStage("load")
		m, err := loadMatrix(sp.Path)
		if err == nil && sp.Workers > 0 {
			// The stream never carries a worker count (it is a host
			// preference, not matrix state), so an explicit spec value
			// applies to the loaded instance the same as to a built one.
			m.Cfg.Workers = sp.Workers
		}
		return m, err
	}
	if sp.Source == "dense" {
		setStage("load-data")
		src, err := oracle.LoadDense(sp.DataPath, sp.Sym)
		if err != nil {
			return nil, err
		}
		if sp.N > 0 && src.N() != sp.N {
			return nil, fmt.Errorf("registry: data file holds a %d×%d matrix, spec says n=%d", src.N(), src.N(), sp.N)
		}
		s, ok := sample.Named(sp.Sampler)
		if !ok {
			return nil, fmt.Errorf("registry: unknown sampler %q", sp.Sampler)
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		setStage("build")
		return core.BuildOracle(src, core.Config{
			Kind: core.DataDriven, Mode: core.Normal,
			Tol: sp.Tol, RelTol: sp.RelTol, LeafSize: sp.Leaf,
			Workers: sp.Workers, Sampler: s, Cache: cache,
		})
	}
	k, err := kernel.ByName(sp.Kernel)
	if err != nil {
		return nil, err
	}
	setStage("points")
	pts, ok := pointset.Named(sp.Dist, sp.N, sp.Dim, sp.Seed)
	if !ok {
		return nil, fmt.Errorf("registry: unknown distribution %q", sp.Dist)
	}
	s, ok := sample.Named(sp.Sampler)
	if !ok {
		return nil, fmt.Errorf("registry: unknown sampler %q", sp.Sampler)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cfg := core.Config{
		Tol: sp.Tol, RelTol: sp.RelTol, LeafSize: sp.Leaf, Workers: sp.Workers, Sampler: s,
		Cache: cache,
	}
	switch sp.Basis {
	case "dd":
		cfg.Kind = core.DataDriven
	case "interp":
		cfg.Kind = core.Interpolation
	default:
		return nil, fmt.Errorf("registry: unknown basis %q", sp.Basis)
	}
	switch sp.Mem {
	case "normal":
		cfg.Mode = core.Normal
	case "otf":
		cfg.Mode = core.OnTheFly
	case "hybrid":
		cfg.Mode = core.Hybrid
		cfg.StorageBudget = sp.StorageBudget
	default:
		return nil, fmt.Errorf("registry: unknown memory mode %q", sp.Mem)
	}
	setStage("build")
	return core.Build(pts, k, cfg)
}

// loadMatrix reads one serialized matrix, resolving the kernel from the
// stream. Shared by the Path source and eviction-spill rehydration.
func loadMatrix(path string) (*core.Matrix, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, err := core.ReadAny(f)
	if err != nil {
		return nil, fmt.Errorf("load %s: %w", path, err)
	}
	return m, nil
}

// nameRE restricts instance names so they embed safely in URL paths and
// spill filenames.
var nameRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$`)

// checkName validates an instance name.
func checkName(name string) error {
	if !nameRE.MatchString(name) || strings.Contains(name, "..") {
		return fmt.Errorf("registry: invalid instance name %q (want [A-Za-z0-9._-], max 64, no leading punctuation)", name)
	}
	return nil
}
