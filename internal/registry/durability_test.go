package registry

import (
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// evictWithSpill builds two instances under a budget that admits only one,
// so the first (LRU) instance is evicted with a spill file, and returns the
// registry and the victim's spill path.
func evictWithSpill(t *testing.T) (*Registry, string) {
	t.Helper()
	var mems [2]int64
	for i := range mems {
		probe, err := DefaultBuild(context.Background(), tinySpec(81+int64(i)).withDefaults(), func(string) {})
		if err != nil {
			t.Fatal(err)
		}
		mems[i] = probe.Memory().Total()
	}
	dir := t.TempDir()
	r := New(Config{Workers: 1, MemBudget: mems[0] + mems[1] - 1, SpillDir: dir})
	t.Cleanup(r.Close)

	for i, name := range []string{"victim", "survivor"} {
		if err := r.Create(name, tinySpec(81+int64(i))); err != nil {
			t.Fatal(err)
		}
		if err := r.WaitReady(waitCtx(t), name); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			// Touch the victim so its lastApply predates the survivor's build.
			if _, err := r.Apply(waitCtx(t), name, randVec(500, 82)); err != nil {
				t.Fatal(err)
			}
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if inf, ok := r.Get("victim"); ok && inf.State == StateEvicted && inf.Spilled {
			break
		}
		if time.Now().After(deadline) {
			inf, _ := r.Get("victim")
			t.Fatalf("victim never evicted with spill: %+v", inf)
		}
		time.Sleep(time.Millisecond)
	}
	return r, filepath.Join(r.cfg.SpillDir, "victim.h2spill")
}

// TestCorruptSpillRehydrationFails truncates an instance's spill file and
// checks the lazy rehydration path fails loudly — Apply errors, the instance
// lands in Failed with the load error recorded — instead of panicking or
// serving garbage.
func TestCorruptSpillRehydrationFails(t *testing.T) {
	r, spill := evictWithSpill(t)

	fi, err := os.Stat(spill)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(spill, fi.Size()/2); err != nil {
		t.Fatal(err)
	}

	if _, err := r.Apply(waitCtx(t), "victim", randVec(500, 83)); err == nil {
		t.Fatal("apply served from a truncated spill file")
	}
	inf, ok := r.Get("victim")
	if !ok || inf.State != StateFailed {
		t.Fatalf("corrupt rehydration state: %+v", inf)
	}
	if inf.Error == "" {
		t.Fatalf("failed rehydration recorded no error: %+v", inf)
	}

	// The instance is recoverable the usual way: redeclaring rebuilds it.
	if err := r.Create("victim", tinySpec(81)); err != nil {
		t.Fatal(err)
	}
	if err := r.WaitReady(waitCtx(t), "victim"); err != nil {
		t.Fatal(err)
	}
}

// TestSpillCleanupErrorCounter makes a spill file unremovable (by swapping
// it for a non-empty directory) and checks Delete logs-and-counts the
// cleanup failure instead of dropping it: Stats.SpillCleanupErrors is the
// operator's signal that the spill dir is leaking.
func TestSpillCleanupErrorCounter(t *testing.T) {
	r, spill := evictWithSpill(t)

	if err := os.Remove(spill); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(spill, "block"), 0o755); err != nil {
		t.Fatal(err)
	}

	if err := r.Delete("victim"); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.SpillCleanupErrors != 1 {
		t.Fatalf("spill_cleanup_errors = %d, want 1", st.SpillCleanupErrors)
	}

	// A clean delete does not move the counter: the survivor has no spill.
	if err := r.Delete("survivor"); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.SpillCleanupErrors != 1 {
		t.Fatalf("spill_cleanup_errors moved on clean delete: %d", st.SpillCleanupErrors)
	}
}

// TestSpecToleranceValidation checks Create rejects NaN and >= 1 tolerances
// synchronously with ErrInvalidSpec (so HTTP layers answer 400, not an
// asynchronous Failed build or a garbage matrix).
func TestSpecToleranceValidation(t *testing.T) {
	r := New(Config{Workers: 1})
	defer r.Close()
	bad := []BuildSpec{
		{N: 100, Tol: math.NaN()},
		{N: 100, Tol: -1e-6},
		{N: 100, Tol: 1},
		{N: 100, Tol: 2.5},
		{N: 100, RelTol: math.NaN()},
		{N: 100, RelTol: -1e-6},
		{N: 100, RelTol: 1},
	}
	for _, sp := range bad {
		if err := r.Create("x", sp); !errors.Is(err, ErrInvalidSpec) {
			t.Fatalf("spec %+v: %v, want ErrInvalidSpec", sp, err)
		}
	}
	if err := r.Create("bad name!", BuildSpec{N: 100}); !errors.Is(err, ErrInvalidSpec) {
		t.Fatalf("invalid name accepted: %v", err)
	}
	if err := r.Create("ok", BuildSpec{N: 100, RelTol: 1e-4}); err != nil {
		t.Fatalf("valid reltol spec rejected: %v", err)
	}
}

// TestRegistryRelTolBuild declares an error-controlled instance and checks
// the reltol metadata flows through to Info: requested tolerance, build-time
// error estimate within 10x of it, and the per-level rank summary.
func TestRegistryRelTolBuild(t *testing.T) {
	r := New(Config{Workers: 1})
	defer r.Close()
	sp := BuildSpec{Kernel: "coulomb", Dist: "cube", N: 800, Dim: 3,
		RelTol: 1e-4, Basis: "dd", Mem: "normal", Leaf: 50, Seed: 9}
	if err := r.Create("ec", sp); err != nil {
		t.Fatal(err)
	}
	if err := r.WaitReady(waitCtx(t), "ec"); err != nil {
		t.Fatal(err)
	}
	inf, ok := r.Get("ec")
	if !ok {
		t.Fatal("instance vanished")
	}
	if inf.RelTol != 1e-4 {
		t.Fatalf("info reltol = %g", inf.RelTol)
	}
	if inf.EstRelErr <= 0 || inf.EstRelErr > 10*inf.RelTol {
		t.Fatalf("info est_relerr = %g outside (0, %g]", inf.EstRelErr, 10*inf.RelTol)
	}
	if inf.MaxRank <= 0 || len(inf.LevelRanks) == 0 {
		t.Fatalf("rank summary missing: max %d, levels %+v", inf.MaxRank, inf.LevelRanks)
	}
}
