package registry

import (
	"context"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"h2ds/internal/kernel"
	"h2ds/internal/oracle"
	"h2ds/internal/pointset"
)

// writeGramFile writes the dense gaussian Gram matrix of n cube points to a
// file in the upload wire format and returns the path plus the raw values.
func writeGramFile(t *testing.T, dir string, n int, seed int64) (string, []float64) {
	t.Helper()
	pts := pointset.Cube(n, 3, seed)
	k, err := kernel.ByName("gaussian")
	if err != nil {
		t.Fatal(err)
	}
	data := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			data[i*n+j] = k.EvalPair(pts.At(i), pts.At(j))
		}
	}
	path := filepath.Join(dir, "gram.h2data")
	if err := os.WriteFile(path, oracle.Pack(data), 0o644); err != nil {
		t.Fatal(err)
	}
	return path, data
}

func TestDenseSourceBuildAndApply(t *testing.T) {
	const n = 300
	dir := t.TempDir()
	path, data := writeGramFile(t, dir, n, 17)

	reg := New(Config{SpillDir: dir})
	defer reg.Close()
	spec := BuildSpec{Source: "dense", DataPath: path, Sym: true, RelTol: 1e-5, Leaf: 40}
	if err := reg.Create("gram", spec); err != nil {
		t.Fatalf("create: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := reg.WaitReady(ctx, "gram"); err != nil {
		t.Fatalf("wait: %v", err)
	}

	inf, ok := reg.Get("gram")
	if !ok {
		t.Fatal("instance missing")
	}
	if inf.Kernel != "" {
		t.Fatalf("dense instance reports kernel %q, want empty", inf.Kernel)
	}
	if inf.N != n {
		t.Fatalf("n=%d want %d", inf.N, n)
	}

	rng := rand.New(rand.NewSource(3))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	y, err := reg.Apply(ctx, "gram", b)
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	var num, den float64
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < n; j++ {
			s += data[i*n+j] * b[j]
		}
		d := y[i] - s
		num += d * d
		den += s * s
	}
	if e := math.Sqrt(num / den); e > 1e-4 {
		t.Fatalf("dense-source apply off reference by %.3e", e)
	}
}

func TestDenseSourceSpecValidation(t *testing.T) {
	reg := New(Config{})
	defer reg.Close()
	cases := []BuildSpec{
		{Source: "graph"}, // unknown source
		{Source: "dense"}, // missing data path
		{Source: "dense", DataPath: "x", Mem: "otf"},         // stored-only
		{Source: "dense", DataPath: "x", Mem: "hybrid"},      // stored-only
		{Source: "dense", DataPath: "x", Basis: "interp"},    // dd only
		{Source: "dense", DataPath: "x", Sampler: "nope"},    // unknown sampler
		{Source: "dense", DataPath: "x", RelTol: math.NaN()}, // NaN reltol
		{Source: "dense", DataPath: "x", Tol: 1.5},           // out-of-range tol
	}
	for i, sp := range cases {
		if err := reg.Create("bad", sp); err == nil {
			t.Errorf("case %d accepted: %+v", i, sp)
		}
	}
}

// TestDenseSourceSpillRoundTrip: a kernel-less matrix written by the
// registry's export path loads back through the Path source (the spill /
// rehydration format) with a bitwise-identical apply.
func TestDenseSourceSpillRoundTrip(t *testing.T) {
	const n = 250
	dir := t.TempDir()
	path, _ := writeGramFile(t, dir, n, 23)

	reg := New(Config{SpillDir: dir})
	defer reg.Close()
	if err := reg.Create("g", BuildSpec{Source: "dense", DataPath: path, Sym: true, Tol: 1e-6, Leaf: 40}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := reg.WaitReady(ctx, "g"); err != nil {
		t.Fatal(err)
	}
	m, ok := reg.Matrix("g")
	if !ok {
		t.Fatal("matrix missing")
	}
	spill := filepath.Join(dir, "saved.h2")
	f, err := os.Create(spill)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if err := reg.Create("g2", BuildSpec{Path: spill}); err != nil {
		t.Fatal(err)
	}
	if err := reg.WaitReady(ctx, "g2"); err != nil {
		t.Fatalf("load-from-path of kernel-less stream: %v", err)
	}
	rng := rand.New(rand.NewSource(5))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	y1, err := reg.Apply(ctx, "g", b)
	if err != nil {
		t.Fatal(err)
	}
	y2, err := reg.Apply(ctx, "g2", b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range y1 {
		if y1[i] != y2[i] {
			t.Fatalf("apply differs at %d: %g vs %g", i, y1[i], y2[i])
		}
	}
}
