package registry

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"h2ds/internal/serve"
)

// TestStressConcurrentLifecycle hammers a small registry from many goroutines
// at once: applies race builds, hot-swap rebuilds, deletions, and
// budget-driven evictions on shared names. Run under -race. Invariants
// checked:
//
//   - Apply never panics and never returns a torn result: every successful
//     result matches the sequential reference of one of the name's versions.
//   - Errors are only the documented ones (not-found, not-ready, busy,
//     queue-full, context, batcher-closed).
//   - After quiescing, the registry's memory total respects the budget and
//     all counters are coherent.
func TestStressConcurrentLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	const (
		names    = 3
		clients  = 8
		mutators = 3
		runFor   = 1500 * time.Millisecond
	)

	// Two specs per name (coulomb vs gaussian on the same point cloud), so
	// hot swaps flip between observably different operators.
	specFor := func(i int, alt bool) BuildSpec {
		sp := tinySpec(int64(100 + i))
		sp.N = 300
		if alt {
			sp.Kernel = "gaussian"
		}
		return sp
	}
	nameFor := func(i int) string { return fmt.Sprintf("m%d", i) }

	// Sequential references for both versions of every name.
	refs := make(map[string][][]float64) // name -> [old, new] reference products
	bs := make(map[string][]float64)
	for i := 0; i < names; i++ {
		n := nameFor(i)
		b := randVec(300, int64(7000+i))
		bs[n] = b
		for _, alt := range []bool{false, true} {
			m, err := DefaultBuild(context.Background(), specFor(i, alt).withDefaults(), func(string) {})
			if err != nil {
				t.Fatal(err)
			}
			refs[n] = append(refs[n], m.Apply(b))
		}
	}

	// Budget sized so roughly two of the three names fit: evictions fire
	// continuously as builds complete.
	probe, err := DefaultBuild(context.Background(), specFor(0, false).withDefaults(), func(string) {})
	if err != nil {
		t.Fatal(err)
	}
	budget := probe.Memory().Total() * 5 / 2

	r := New(Config{
		Workers:    2,
		QueueDepth: 4,
		MemBudget:  budget,
		SpillDir:   t.TempDir(),
	})
	defer r.Close()

	for i := 0; i < names; i++ {
		if err := r.Create(nameFor(i), specFor(i, false)); err != nil {
			t.Fatal(err)
		}
	}

	stop := make(chan struct{})
	var applies, served atomic.Int64
	var wg sync.WaitGroup
	fail := make(chan string, 1)
	failf := func(format string, args ...any) {
		select {
		case fail <- fmt.Sprintf(format, args...):
		default:
		}
	}

	// Clients: apply to random-ish names, verify against both references.
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			i := c % names
			for {
				select {
				case <-stop:
					return
				default:
				}
				n := nameFor(i)
				i = (i + 1) % names
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				y, err := r.Apply(ctx, n, bs[n])
				cancel()
				applies.Add(1)
				if err != nil {
					switch {
					case errors.Is(err, ErrNotFound), errors.Is(err, ErrNotReady),
						errors.Is(err, ErrQueueFull), errors.Is(err, ErrClosed),
						errors.Is(err, serve.ErrClosed),
						errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
						continue
					default:
						failf("undocumented apply error: %v", err)
						return
					}
				}
				served.Add(1)
				d0 := maxRelDiff(refs[n][0], y)
				d1 := maxRelDiff(refs[n][1], y)
				if d0 > 1e-10 && d1 > 1e-10 {
					failf("torn result on %s: d0=%g d1=%g", n, d0, d1)
					return
				}
			}
		}(c)
	}

	// Mutators: rebuild names with alternating kernels (hot swaps when Ready,
	// plain rebuilds when evicted/failed), and occasionally delete+recreate.
	for mIdx := 0; mIdx < mutators; mIdx++ {
		wg.Add(1)
		go func(mIdx int) {
			defer wg.Done()
			alt, k := false, 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				n := nameFor((mIdx + k) % names)
				k++
				alt = !alt
				if mIdx == 0 && k%7 == 0 {
					// Deletion storm on one mutator only, so the other names
					// keep swapping.
					_ = r.Delete(n)
				}
				err := r.Create(n, specFor((mIdx+k-1)%names, alt))
				if err != nil && !errors.Is(err, ErrBusy) && !errors.Is(err, ErrQueueFull) && !errors.Is(err, ErrClosed) {
					failf("undocumented create error: %v", err)
					return
				}
				time.Sleep(2 * time.Millisecond)
			}
		}(mIdx)
	}

	timer := time.NewTimer(runFor)
	select {
	case msg := <-fail:
		close(stop)
		wg.Wait()
		t.Fatal(msg)
	case <-timer.C:
	}
	close(stop)
	wg.Wait()
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}

	// Quiesce: ensure every name converges to Ready (recreate any that were
	// deleted/failed mid-storm), then check the invariants.
	deadline := time.Now().Add(60 * time.Second)
	for i := 0; i < names; i++ {
		n := nameFor(i)
		for {
			if time.Now().After(deadline) {
				inf, _ := r.Get(n)
				t.Fatalf("%s never quiesced: %+v", n, inf)
			}
			err := r.Create(n, specFor(i, false))
			if err == nil || errors.Is(err, ErrBusy) {
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				werr := r.WaitReady(ctx, n)
				cancel()
				if werr == nil {
					break
				}
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	st := r.Stats()
	if st.MemBytes > budget {
		// The last builds may still be ripple-evicting; give it a moment.
		deadline := time.Now().Add(10 * time.Second)
		for st.MemBytes > budget && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
			st = r.Stats()
		}
		if st.MemBytes > budget {
			t.Fatalf("memory budget violated after quiesce: %d > %d", st.MemBytes, budget)
		}
	}
	if st.BuildsStarted < st.BuildsSucceeded+st.BuildsFailed {
		t.Fatalf("counter skew: %+v", st)
	}
	if served.Load() == 0 {
		t.Fatal("stress produced no successful applies")
	}
	t.Logf("stress: %d applies (%d served), stats %+v", applies.Load(), served.Load(), st)
}

// TestStressApplyDuringRepeatedSwaps keeps one name under continuous rebuild
// while clients apply nonstop; stronger variant of the single-swap test.
func TestStressApplyDuringRepeatedSwaps(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	r := New(Config{Workers: 1})
	defer r.Close()
	sp := tinySpec(200)
	sp.N = 300
	alt := sp
	alt.Kernel = "gaussian"

	if err := r.Create("spin", sp); err != nil {
		t.Fatal(err)
	}
	if err := r.WaitReady(waitCtx(t), "spin"); err != nil {
		t.Fatal(err)
	}
	m, _ := r.Matrix("spin")
	b := randVec(m.N, 201)
	ref0 := m.Apply(b)
	mAlt, err := DefaultBuild(context.Background(), alt.withDefaults(), func(string) {})
	if err != nil {
		t.Fatal(err)
	}
	ref1 := mAlt.Apply(b)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	fail := make(chan string, 1)
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				y, err := r.Apply(waitCtx(t), "spin", b)
				if err != nil {
					select {
					case fail <- fmt.Sprintf("apply failed during swap storm: %v", err):
					default:
					}
					return
				}
				if maxRelDiff(ref0, y) > 1e-10 && maxRelDiff(ref1, y) > 1e-10 {
					select {
					case fail <- "torn result during swap storm":
					default:
					}
					return
				}
			}
		}()
	}

	swaps := 0
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		use := sp
		if swaps%2 == 0 {
			use = alt
		}
		if err := r.Create("spin", use); err == nil {
			swaps++
		}
		time.Sleep(time.Millisecond)
	}
	// Let the last swap settle before stopping the clients.
	waitIdle := time.Now().Add(30 * time.Second)
	for {
		inf, _ := r.Get("spin")
		if inf.State == StateReady && !inf.Rebuilding {
			break
		}
		if time.Now().After(waitIdle) {
			t.Fatal("swap storm never settled")
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}
	if swaps < 2 {
		t.Fatalf("only %d swaps exercised", swaps)
	}
	if st := r.Stats(); st.SwapDrains < int64(swaps)-1 {
		t.Fatalf("swap drains %d for %d swaps", st.SwapDrains, swaps)
	}
}
