package registry

import (
	"context"
	"os"
	"testing"

	"h2ds/internal/core"
)

// TestCloseRaceBuildCompletesDuringShutdown pins the Close-vs-build race:
// a build whose result arrives after Close has cancelled it must land
// Evicted-with-spill (the matrix persisted for the next process), never as a
// leaked Ready batcher behind a closed registry. The stall is deterministic:
// the builder parks on its job context, which is cancelled by exactly one
// event — Close — so the build always completes strictly inside the shutdown
// window.
func TestCloseRaceBuildCompletesDuringShutdown(t *testing.T) {
	dir := t.TempDir()

	// The matrix the stalled build will "finish" with, built up front so the
	// builder body does no real work while parked.
	m, err := DefaultBuild(context.Background(), tinySpec(7).withDefaults(), func(string) {})
	if err != nil {
		t.Fatal(err)
	}

	started := make(chan struct{})
	r := New(Config{
		Workers:  1,
		SpillDir: dir,
		Builder: func(ctx context.Context, sp BuildSpec, setStage func(string)) (*core.Matrix, error) {
			setStage("stalled")
			close(started)
			<-ctx.Done() // released only by Close's cancellation
			return m, nil
		},
	})
	if err := r.Create("racer", tinySpec(7)); err != nil {
		t.Fatal(err)
	}
	<-started // the worker is inside the build; Close will race its completion
	r.Close()

	inf, ok := r.Get("racer")
	if !ok {
		t.Fatal("instance vanished at close")
	}
	if inf.State != StateClosed {
		t.Fatalf("state after Close = %v, want closed", inf.State)
	}
	if !inf.Spilled {
		t.Fatalf("build completing during shutdown was not spilled: %+v", inf)
	}
	st := r.Stats()
	if st.ShutdownSpills != 1 {
		t.Fatalf("ShutdownSpills = %d, want 1", st.ShutdownSpills)
	}
	if st.Ready != 0 || st.States["ready"] != 0 {
		t.Fatalf("leaked Ready instance past Close: %+v", st)
	}

	// The spill is a complete, loadable stream: a successor process can adopt
	// it via BuildSpec.Path and serve bitwise-identical products.
	path := dir + "/racer.h2spill"
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("spill file missing: %v", err)
	}
	r2 := New(Config{Workers: 1})
	defer r2.Close()
	if err := r2.Create("revived", BuildSpec{Path: path}); err != nil {
		t.Fatal(err)
	}
	b := randVec(m.N, 8)
	got, err := r2.Apply(waitCtx(t), "revived", b)
	if err != nil {
		t.Fatal(err)
	}
	want := m.Apply(b)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("revived spill differs at %d: %g vs %g", i, got[i], want[i])
		}
	}
}

// TestCloseRaceWithoutSpillDirFailsClean is the counter-case: with no spill
// dir there is nowhere to persist the racing build, so it must settle as a
// plain cancellation — no Ready leak, no spill, no panic.
func TestCloseRaceWithoutSpillDirFailsClean(t *testing.T) {
	m, err := DefaultBuild(context.Background(), tinySpec(9).withDefaults(), func(string) {})
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	r := New(Config{
		Workers: 1,
		Builder: func(ctx context.Context, sp BuildSpec, setStage func(string)) (*core.Matrix, error) {
			close(started)
			<-ctx.Done()
			return m, nil
		},
	})
	if err := r.Create("racer", tinySpec(9)); err != nil {
		t.Fatal(err)
	}
	<-started
	r.Close()

	inf, ok := r.Get("racer")
	if !ok || inf.State != StateClosed {
		t.Fatalf("state after Close = %+v, want closed", inf)
	}
	if inf.Spilled {
		t.Fatal("spill recorded with no spill dir configured")
	}
	st := r.Stats()
	if st.Ready != 0 || st.ShutdownSpills != 0 {
		t.Fatalf("unexpected stats after spill-less close race: %+v", st)
	}
}
