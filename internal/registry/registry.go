// Package registry manages a fleet of named H² matrix instances on top of
// internal/serve — the model-lifecycle layer of the serving stack. Each
// instance is declared by a BuildSpec (synthetic build or load-from-file)
// and moves through an explicit state machine:
//
//	Pending ──▶ Building ──▶ Ready ──▶ Evicted ──▶ (rehydrate: Pending ...)
//	                │          │  ▲
//	                ▼          │  └── hot-swap rebuild (stays Ready)
//	              Failed       ▼
//	                         Closed (deleted / registry shutdown)
//
// Builds run on a bounded async queue drained by a pool of panic-recovered,
// context-cancellable workers that stamp per-stage progress. Ready instances
// own a serve.Batcher and route Apply by name. A global memory budget
// (summing core.Matrix.Memory().Total() across Ready instances) triggers
// LRU eviction by last-apply time; the victim's batcher is drained before
// its memory is released, optionally spilling the generators to disk for
// lazy rehydration on the next Apply. Rebuilding an existing name builds
// the new version in the background and atomically swaps the batcher while
// draining the old one — a zero-downtime reload.
package registry

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"h2ds/internal/core"
	"h2ds/internal/serve"
)

// State is an instance's position in the lifecycle state machine.
type State int

const (
	// StatePending: accepted, waiting for a build worker.
	StatePending State = iota
	// StateBuilding: a worker is constructing or loading the matrix.
	StateBuilding
	// StateReady: serving; owns a live batcher.
	StateReady
	// StateFailed: the build errored or panicked; Err explains why.
	StateFailed
	// StateEvicted: memory budget reclaimed the instance; with a spill file
	// it rehydrates on the next Apply.
	StateEvicted
	// StateClosed: deleted or shut down; terminal.
	StateClosed
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StatePending:
		return "pending"
	case StateBuilding:
		return "building"
	case StateReady:
		return "ready"
	case StateFailed:
		return "failed"
	case StateEvicted:
		return "evicted"
	case StateClosed:
		return "closed"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// MarshalJSON renders the state as its string name.
func (s State) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON parses the string form written by MarshalJSON, so HTTP
// clients can decode Info snapshots back into typed values.
func (s *State) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return err
	}
	for st := StatePending; st <= StateClosed; st++ {
		if st.String() == name {
			*s = st
			return nil
		}
	}
	return fmt.Errorf("registry: unknown state %q", name)
}

var (
	// ErrClosed is returned after Close has been called.
	ErrClosed = errors.New("registry: closed")
	// ErrQueueFull is returned by Create when the build queue is at
	// capacity.
	ErrQueueFull = errors.New("registry: build queue full")
	// ErrBusy is returned by Create while a build for the same name is
	// already queued or running.
	ErrBusy = errors.New("registry: build already in progress")
	// ErrNotFound is returned for names the registry does not hold.
	ErrNotFound = errors.New("registry: no such instance")
	// ErrNotReady is returned by Apply/WaitReady for instances that cannot
	// serve and will not become serveable on their own (failed builds,
	// evictions without a spill file).
	ErrNotReady = errors.New("registry: instance not ready")
	// ErrInvalidSpec wraps synchronous Create rejections — bad names and
	// specs that can never build (unknown enums, out-of-range tolerances) —
	// so HTTP layers can map them to 400 rather than 500.
	ErrInvalidSpec = errors.New("registry: invalid spec")
)

// Config tunes a Registry. The zero value is usable.
type Config struct {
	// Workers is the number of concurrent build workers (default 2).
	Workers int

	// QueueDepth bounds builds that are accepted but not yet started
	// (default 8). At the limit Create fails fast with ErrQueueFull.
	QueueDepth int

	// MemBudget bounds the total Memory().Total() bytes across Ready
	// instances; exceeding it after a build completes evicts
	// least-recently-applied instances until the total fits. 0 disables
	// eviction.
	MemBudget int64

	// SpillDir, when non-empty, receives serialized generators of evicted
	// instances (name.h2spill) so they can rehydrate lazily on the next
	// Apply, and of every Ready instance at Close (persistence across
	// restarts). Empty disables spilling: evicted instances must be
	// re-created explicitly.
	SpillDir string

	// Batch configures each instance's serve.Batcher.
	Batch serve.Config

	// Builder overrides how specs become matrices (default: BuildWithCache
	// through the registry's shared construction cache). Embedders use it
	// for custom matrix sources; tests for fault injection. Setting it
	// bypasses the construction cache.
	Builder Builder

	// CacheEntries sizes the construction cache the default builder shares
	// across this registry's builds: tenants (and hot-swap rebuilds) whose
	// geometry and tree/sampling parameters fingerprint identically reuse
	// the spatial tree and Algorithm 1 hierarchy (core.BuildCache). 0 means
	// core.DefaultBuildCacheEntries; negative disables caching. Ignored
	// when Builder is set.
	CacheEntries int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8
	}
	return c
}

// version is one served generation of an instance: a batcher plus the
// in-flight Apply calls routed at it. Whoever unlinks a version from its
// instance drains it (inflight.Wait, then Close) exactly once.
type version struct {
	b        *serve.Batcher
	inflight sync.WaitGroup
}

// drain waits out Apply calls already routed at this version, then drains
// and closes the batcher.
func (v *version) drain() {
	v.inflight.Wait()
	v.b.Close()
}

// instance is one named entry. Fields below mu are protected by it; change
// is closed and replaced on every state transition (broadcast to waiters).
type instance struct {
	name string

	mu        sync.Mutex
	change    chan struct{}
	state     State
	spec      BuildSpec
	cur       *version // non-nil iff state == Ready
	err       error    // last build/spill failure
	mem       int64    // Memory().Total() of the current version
	spillPath string   // serialized generators of the evicted version
	spilling  bool     // eviction is writing the spill file

	building    bool // a build job is queued or running
	gen         int  // bumped by Delete; stale jobs discard their result
	stage       string
	buildStart  time.Time
	cancelBuild context.CancelFunc

	createdAt time.Time
	readyAt   time.Time
	lastApply time.Time
}

// broadcastLocked wakes every waiter; callers hold inst.mu.
func (in *instance) broadcastLocked() {
	close(in.change)
	in.change = make(chan struct{})
}

// buildJob is one unit of work on the build queue.
type buildJob struct {
	inst      *instance
	spec      BuildSpec
	gen       int
	swap      bool   // rebuild of a Ready instance: keep serving, swap on success
	rehydrate bool   // reload of an evicted instance from its spill file
	loadPath  string // non-empty for rehydration
	ctx       context.Context
	cancel    context.CancelFunc
}

// Registry is the concurrent manager of named matrix instances. All methods
// are safe for concurrent use.
type Registry struct {
	cfg Config

	mu     sync.Mutex
	items  map[string]*instance
	closed bool

	queue   chan *buildJob
	rootCtx context.Context
	cancel  context.CancelFunc
	workers sync.WaitGroup

	closeOnce sync.Once
	closedCh  chan struct{}

	// bcache is the construction cache behind the default builder (nil when
	// a custom Builder is installed or CacheEntries < 0).
	bcache *core.BuildCache

	st counters
}

// BuildCache exposes the registry's shared construction cache (nil when
// disabled or when a custom Builder is installed). Tests and the stats
// endpoint read its hit/miss counters.
func (r *Registry) BuildCache() *core.BuildCache { return r.bcache }

// New starts a registry with the given configuration. Call Close to drain
// every instance and release the build workers.
func New(cfg Config) *Registry {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	r := &Registry{
		cfg:      cfg,
		items:    make(map[string]*instance),
		queue:    make(chan *buildJob, cfg.QueueDepth),
		rootCtx:  ctx,
		cancel:   cancel,
		closedCh: make(chan struct{}),
	}
	if r.cfg.Builder == nil {
		if cfg.CacheEntries >= 0 {
			r.bcache = core.NewBuildCache(cfg.CacheEntries)
		}
		r.cfg.Builder = func(ctx context.Context, sp BuildSpec, setStage func(string)) (*core.Matrix, error) {
			return BuildWithCache(ctx, sp, setStage, r.bcache)
		}
	}
	r.workers.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go r.worker()
	}
	return r
}

// Create declares (or redeclares) the named instance from spec and enqueues
// its build. It returns as soon as the job is accepted; progress is
// observable via Get/List and awaitable via WaitReady. Redeclaring a Ready
// name performs a zero-downtime hot swap: the old version keeps serving
// until the new one is built, then the batcher is swapped atomically and
// the old one drained. Redeclaring a Failed or Evicted name rebuilds it.
func (r *Registry) Create(name string, spec BuildSpec) error {
	if err := checkName(name); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidSpec, err)
	}
	spec = spec.withDefaults()
	if err := spec.validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidSpec, err)
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrClosed
	}
	inst := r.items[name]
	fresh := false
	if inst == nil {
		fresh = true
		inst = &instance{
			name:      name,
			change:    make(chan struct{}),
			state:     StatePending,
			spec:      spec,
			createdAt: time.Now(),
		}
	}

	inst.mu.Lock()
	defer inst.mu.Unlock()
	if inst.building {
		return ErrBusy
	}
	job := &buildJob{inst: inst, spec: spec, gen: inst.gen, swap: inst.state == StateReady}
	job.ctx, job.cancel = context.WithCancel(r.rootCtx)
	select {
	case r.queue <- job:
	default:
		job.cancel()
		return ErrQueueFull
	}
	if fresh {
		r.items[name] = inst
	}
	inst.building = true
	inst.cancelBuild = job.cancel
	inst.spec = spec
	if !job.swap {
		if inst.state != StatePending {
			inst.state = StatePending
			inst.err = nil
			inst.broadcastLocked()
		}
	}
	return nil
}

// enqueueRehydrate schedules an evicted instance's reload from its spill
// file. It re-checks the instance under the registry→instance lock order
// (callers must hold neither lock), so concurrent Applies on the same
// evicted name enqueue exactly one job.
func (r *Registry) enqueueRehydrate(inst *instance) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrClosed
	}
	inst.mu.Lock()
	defer inst.mu.Unlock()
	if inst.building || inst.state != StateEvicted || inst.spillPath == "" {
		return nil // someone else already handled it, or the state moved on
	}
	job := &buildJob{
		inst: inst, spec: inst.spec, gen: inst.gen,
		rehydrate: true, loadPath: inst.spillPath,
	}
	job.ctx, job.cancel = context.WithCancel(r.rootCtx)
	select {
	case r.queue <- job:
	default:
		job.cancel()
		return ErrQueueFull
	}
	inst.building = true
	inst.cancelBuild = job.cancel
	inst.state = StatePending
	inst.broadcastLocked()
	return nil
}

// worker drains the build queue until Close closes it.
func (r *Registry) worker() {
	defer r.workers.Done()
	for job := range r.queue {
		r.runJob(job)
	}
}

// runJob executes one build: stage-stamped, panic-recovered, cancellable at
// stage boundaries via the job context.
func (r *Registry) runJob(job *buildJob) {
	defer job.cancel()
	r.st.buildsStarted.Add(1)
	inst := job.inst

	inst.mu.Lock()
	if inst.gen != job.gen || inst.state == StateClosed {
		inst.mu.Unlock()
		r.finishDiscard(job, nil)
		return
	}
	if !job.swap {
		inst.state = StateBuilding
		inst.broadcastLocked()
	}
	inst.stage = "starting"
	inst.buildStart = time.Now()
	inst.mu.Unlock()

	setStage := func(s string) {
		inst.mu.Lock()
		inst.stage = s
		inst.mu.Unlock()
	}

	if err := job.ctx.Err(); err != nil {
		r.finishFail(job, err)
		return
	}
	m, err := r.execute(job, setStage)
	if err == nil {
		if cerr := job.ctx.Err(); cerr != nil {
			// A cancellation that raced the build's completion: Delete asked
			// for the result to be discarded, but a registry shutdown did not
			// — a finished matrix is exactly what Close persists for Ready
			// instances, so land it Evicted-with-spill instead of throwing
			// the build away (and instead of leaking a Ready batcher past
			// Close, which has already swept the instance table by the time
			// the worker pool is joined).
			if r.rootCtx.Err() != nil && r.finishShutdownSpill(job, m) {
				return
			}
			r.finishFail(job, cerr)
			return
		}
		r.finishReady(job, m)
		return
	}
	r.finishFail(job, err)
}

// finishShutdownSpill persists a build that completed while the registry was
// shutting down: the generators go to the spill dir and the instance lands
// Evicted-with-spill (then Closed by Close's sweep, which preserves the spill
// path), so the work survives to the next process via BuildSpec.Path. It
// reports false — falling back to the plain cancellation path — when there is
// no spill dir, the job is itself a rehydration (its spill file already
// exists), a Delete recycled the name, or the spill write fails.
func (r *Registry) finishShutdownSpill(job *buildJob, m *core.Matrix) bool {
	if r.cfg.SpillDir == "" || job.rehydrate {
		return false
	}
	inst := job.inst
	inst.mu.Lock()
	stale := inst.gen != job.gen
	inst.mu.Unlock()
	if stale {
		return false
	}
	path, err := r.spill(inst.name, m)
	if err != nil {
		return false
	}
	inst.mu.Lock()
	defer inst.mu.Unlock()
	if inst.gen != job.gen {
		r.removeSpill(path)
		return false
	}
	inst.building = false
	inst.cancelBuild = nil
	inst.stage = ""
	inst.err = nil
	inst.state = StateEvicted
	inst.spillPath = path
	inst.broadcastLocked()
	r.st.buildsSucceeded.Add(1)
	r.st.shutdownSpills.Add(1)
	return true
}

// execute runs the builder under panic recovery.
func (r *Registry) execute(job *buildJob, setStage func(string)) (m *core.Matrix, err error) {
	defer func() {
		if p := recover(); p != nil {
			m, err = nil, fmt.Errorf("registry: build panicked: %v", p)
		}
	}()
	if job.rehydrate {
		setStage("rehydrate")
		return loadMatrix(job.loadPath)
	}
	return r.cfg.Builder(job.ctx, job.spec, setStage)
}

// finishFail records a failed build. A failed hot-swap leaves the old
// version serving (state stays Ready) with the error recorded; anything
// else lands in Failed.
func (r *Registry) finishFail(job *buildJob, err error) {
	r.st.buildsFailed.Add(1)
	inst := job.inst
	inst.mu.Lock()
	defer inst.mu.Unlock()
	if inst.gen != job.gen || inst.state == StateClosed {
		return
	}
	inst.building = false
	inst.cancelBuild = nil
	inst.stage = ""
	inst.err = err
	if !(job.swap && inst.state == StateReady) {
		inst.state = StateFailed
	}
	inst.broadcastLocked()
}

// finishDiscard throws away the result of a job that lost a gen race
// (Delete/Create recycled the name while it was queued).
func (r *Registry) finishDiscard(job *buildJob, m *core.Matrix) {
	r.st.buildsFailed.Add(1)
	_ = m // nothing owns resources yet; the batcher is created only in finishReady
}

// finishReady installs a built matrix: a new batcher version is linked in
// atomically, the previous version (hot swap) is drained, waiters are woken,
// and the memory budget is enforced.
func (r *Registry) finishReady(job *buildJob, m *core.Matrix) {
	nv := &version{b: serve.NewBatcher(m, r.cfg.Batch)}
	mem := m.Memory().Total()

	inst := job.inst
	inst.mu.Lock()
	if inst.gen != job.gen || inst.state == StateClosed {
		inst.mu.Unlock()
		nv.b.Close()
		r.finishDiscard(job, m)
		return
	}
	old := inst.cur
	spill := inst.spillPath
	inst.cur = nv
	inst.state = StateReady
	inst.err = nil
	inst.mem = mem
	inst.building = false
	inst.cancelBuild = nil
	inst.stage = ""
	inst.spillPath = ""
	inst.readyAt = time.Now()
	// A fresh version counts as recent use for LRU purposes; otherwise a
	// just-rehydrated instance with a stale lastApply would be the eviction
	// victim again immediately, thrashing spill/reload.
	inst.lastApply = inst.readyAt
	inst.broadcastLocked()
	inst.mu.Unlock()

	r.st.buildsSucceeded.Add(1)
	if job.rehydrate {
		r.st.rehydrations.Add(1)
	}
	if old != nil {
		old.drain()
		r.st.swapDrains.Add(1)
	}
	if spill != "" {
		// The instance is live again (rebuilt or rehydrated); the spill file
		// is untracked from here on, so remove it rather than leak it.
		r.removeSpill(spill)
	}
	r.enforceBudget()
}

// Apply routes y = Â b to the named instance, coalescing with concurrent
// callers through its batcher. Pending/Building instances are awaited
// (bounded by ctx); an Evicted instance with a spill file is rehydrated
// lazily and then served. Failed and spill-less Evicted instances return
// an error wrapping ErrNotReady.
func (r *Registry) Apply(ctx context.Context, name string, b []float64) ([]float64, error) {
	v, err := r.acquireVersion(ctx, name)
	if err != nil {
		return nil, err
	}
	defer v.inflight.Done()
	return v.b.Apply(ctx, b)
}

// ApplyShard computes the scatter half of the distributed apply on the named
// instance: the coupling partials for shard `shard` of an (nshards,
// cutLevel) plan. The plan is re-derived from the local replica — identical
// on every holder of the same build — so the wire protocol carries only the
// three integers.
func (r *Registry) ApplyShard(ctx context.Context, name string, nshards, cutLevel, shard int, b []float64, transpose bool) ([]float64, error) {
	v, err := r.acquireVersion(ctx, name)
	if err != nil {
		return nil, err
	}
	defer v.inflight.Done()
	return v.b.ApplyShard(nshards, cutLevel, shard, b, transpose)
}

// ApplyGather runs the gather half of the distributed apply on the named
// instance, merging the shard partials (nil entries are recomputed locally)
// and finishing the downward and nearfield sweeps. The result is
// bitwise-equal to Apply on the same vector.
func (r *Registry) ApplyGather(ctx context.Context, name string, nshards, cutLevel int, b []float64, parts [][]float64, transpose bool) ([]float64, error) {
	v, err := r.acquireVersion(ctx, name)
	if err != nil {
		return nil, err
	}
	defer v.inflight.Done()
	return v.b.ApplyGather(nshards, cutLevel, b, parts, transpose)
}

// acquireVersion waits until the named instance is Ready and returns its
// current version with the in-flight count held — the caller must release it
// with v.inflight.Done() when the routed call returns. Waiting and lazy
// rehydration follow Apply's documented rules.
func (r *Registry) acquireVersion(ctx context.Context, name string) (*version, error) {
	for {
		r.mu.Lock()
		inst := r.items[name]
		closed := r.closed
		r.mu.Unlock()
		if inst == nil {
			if closed {
				return nil, ErrClosed
			}
			return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
		}

		inst.mu.Lock()
		switch inst.state {
		case StateReady:
			v := inst.cur
			v.inflight.Add(1)
			inst.lastApply = time.Now()
			inst.mu.Unlock()
			return v, nil

		case StatePending, StateBuilding:
			ch := inst.change
			inst.mu.Unlock()
			select {
			case <-ch:
			case <-ctx.Done():
				return nil, ctx.Err()
			}

		case StateEvicted:
			if inst.spilling || inst.building {
				ch := inst.change
				inst.mu.Unlock()
				select {
				case <-ch:
				case <-ctx.Done():
					return nil, ctx.Err()
				}
				continue
			}
			if inst.spillPath == "" {
				err := inst.err
				inst.mu.Unlock()
				if err != nil {
					return nil, fmt.Errorf("%w: %q evicted (spill failed: %v)", ErrNotReady, name, err)
				}
				return nil, fmt.Errorf("%w: %q evicted without spill; re-create it", ErrNotReady, name)
			}
			inst.mu.Unlock()
			// Lazy rehydration: kick off the reload (idempotent under the
			// proper lock order) and loop back to wait for it.
			if err := r.enqueueRehydrate(inst); err != nil {
				return nil, err
			}

		case StateFailed:
			err := inst.err
			inst.mu.Unlock()
			return nil, fmt.Errorf("%w: %q build failed: %v", ErrNotReady, name, err)

		case StateClosed:
			inst.mu.Unlock()
			return nil, fmt.Errorf("%w: %q", ErrNotFound, name)

		default:
			inst.mu.Unlock()
			return nil, fmt.Errorf("registry: %q in unexpected state", name)
		}
	}
}

// WaitReady blocks until the named instance is Ready (nil), reaches a state
// that will not become Ready on its own (error wrapping ErrNotReady), or
// ctx expires.
func (r *Registry) WaitReady(ctx context.Context, name string) error {
	for {
		r.mu.Lock()
		inst := r.items[name]
		r.mu.Unlock()
		if inst == nil {
			return fmt.Errorf("%w: %q", ErrNotFound, name)
		}
		inst.mu.Lock()
		switch inst.state {
		case StateReady:
			inst.mu.Unlock()
			return nil
		case StateFailed:
			err := inst.err
			inst.mu.Unlock()
			return fmt.Errorf("%w: %q build failed: %v", ErrNotReady, name, err)
		case StateEvicted:
			inst.mu.Unlock()
			return fmt.Errorf("%w: %q evicted", ErrNotReady, name)
		case StateClosed:
			inst.mu.Unlock()
			return fmt.Errorf("%w: %q", ErrNotFound, name)
		default:
			ch := inst.change
			inst.mu.Unlock()
			select {
			case <-ch:
			case <-ctx.Done():
				return ctx.Err()
			}
		}
	}
}

// Matrix returns the named instance's current matrix when it is Ready. The
// matrix is immutable; the pointer stays valid even if the instance is
// later evicted or swapped.
func (r *Registry) Matrix(name string) (*core.Matrix, bool) {
	r.mu.Lock()
	inst := r.items[name]
	r.mu.Unlock()
	if inst == nil {
		return nil, false
	}
	inst.mu.Lock()
	defer inst.mu.Unlock()
	if inst.state != StateReady {
		return nil, false
	}
	return inst.cur.b.Matrix(), true
}

// MatrixWait returns the named instance's matrix under Apply's routing
// rules: Pending/Building are awaited (bounded by ctx) and a spilled Evicted
// instance is rehydrated lazily. It exists for callers that drive the
// matrix's workspace pool directly — the cluster's sharded scatter/gather —
// rather than routing vectors through the batcher. The matrix is immutable
// and remains valid even if the instance is evicted or swapped mid-use.
func (r *Registry) MatrixWait(ctx context.Context, name string) (*core.Matrix, error) {
	v, err := r.acquireVersion(ctx, name)
	if err != nil {
		return nil, err
	}
	m := v.b.Matrix()
	v.inflight.Done()
	return m, nil
}

// Install registers a pre-built matrix directly as a Ready instance, without
// going through the build queue — the cluster replication import path: a
// replica node receives the owner's serialized stream, rehydrates it, and
// installs the result as a read-only instance. Installing over an existing
// Ready instance performs the same atomic swap-and-drain as a hot-swap
// rebuild; installing while a build for the name is queued or running fails
// with ErrBusy (the build owns the name until it settles).
func (r *Registry) Install(name string, spec BuildSpec, m *core.Matrix) error {
	if err := checkName(name); err != nil {
		return fmt.Errorf("%w: %v", ErrInvalidSpec, err)
	}
	nv := &version{b: serve.NewBatcher(m, r.cfg.Batch)}

	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		nv.b.Close()
		return ErrClosed
	}
	inst := r.items[name]
	if inst == nil {
		inst = &instance{
			name:      name,
			change:    make(chan struct{}),
			state:     StatePending,
			createdAt: time.Now(),
		}
		r.items[name] = inst
	}
	r.mu.Unlock()

	inst.mu.Lock()
	if inst.building {
		inst.mu.Unlock()
		nv.b.Close()
		return ErrBusy
	}
	old := inst.cur
	spill := inst.spillPath
	inst.cur = nv
	inst.state = StateReady
	inst.spec = spec
	inst.err = nil
	inst.mem = m.Memory().Total()
	inst.spillPath = ""
	inst.readyAt = time.Now()
	inst.lastApply = inst.readyAt
	inst.broadcastLocked()
	inst.mu.Unlock()

	if old != nil {
		old.drain()
		r.st.swapDrains.Add(1)
	}
	if spill != "" {
		r.removeSpill(spill)
	}
	r.st.installs.Add(1)
	r.enforceBudget()
	return nil
}

// Delete removes the named instance: new Applies fail with ErrNotFound, an
// in-flight build is cancelled and its result discarded, the batcher drains
// admitted requests, and any spill file is removed.
func (r *Registry) Delete(name string) error {
	r.mu.Lock()
	inst := r.items[name]
	if inst == nil {
		r.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	delete(r.items, name)
	r.mu.Unlock()

	inst.mu.Lock()
	inst.gen++
	if inst.cancelBuild != nil {
		inst.cancelBuild()
		inst.cancelBuild = nil
	}
	old := inst.cur
	spill := inst.spillPath
	inst.cur = nil
	inst.spillPath = ""
	inst.building = false
	inst.state = StateClosed
	inst.broadcastLocked()
	inst.mu.Unlock()

	if old != nil {
		old.drain()
	}
	if spill != "" {
		r.removeSpill(spill)
	}
	return nil
}

// enforceBudget reclaims memory from least-recently-applied Ready instances
// until the total fits the budget. For each LRU victim it first tries to
// DOWNGRADE: re-derive the matrix in hybrid mode with its block storage
// budget shrunk by the overage (core.Matrix.WithStorageBudget shares every
// generator, so this costs one block-subset re-assembly, not a rebuild) and
// swap the smaller version in, keeping the instance servable. Only when a
// victim has no stored blocks left to shed does it fall back to full
// eviction (with optional spill). Called after every successful build.
func (r *Registry) enforceBudget() {
	if r.cfg.MemBudget <= 0 {
		return
	}
	for {
		victim, old, over := r.pickVictim()
		if victim == nil {
			return
		}
		if r.downgrade(victim, old, over) {
			continue
		}
		r.evict(victim, old)
	}
}

// pickVictim returns the LRU Ready instance to reclaim — already transitioned
// to Evicted with its version unlinked, so no new Apply can route to it and
// a concurrent hot-swap completion cannot hand the same version out again —
// plus the current budget overage, or nil when the budget is satisfied.
// Applies arriving during the reclaim window wait on the change channel
// (spilling is set) and see either the downgraded Ready version or the final
// evicted state.
func (r *Registry) pickVictim() (*instance, *version, int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var total int64
	var victim *instance
	var victimLast time.Time
	for _, inst := range r.items {
		inst.mu.Lock()
		if inst.state == StateReady {
			total += inst.mem
			if victim == nil || inst.lastApply.Before(victimLast) {
				victim, victimLast = inst, inst.lastApply
			}
		}
		inst.mu.Unlock()
	}
	if total <= r.cfg.MemBudget || victim == nil {
		return nil, nil, 0
	}
	victim.mu.Lock()
	old := victim.cur
	victim.cur = nil
	victim.state = StateEvicted
	victim.spilling = true
	victim.mem = 0
	victim.broadcastLocked()
	victim.mu.Unlock()
	return victim, old, total - r.cfg.MemBudget
}

// downgrade tries to shrink the victim's block storage by the overage
// instead of evicting it. It reports true when the victim was handled (the
// smaller hybrid version was installed, or the instance moved on
// concurrently); false leaves the victim untouched for evict. Each pass
// strictly shrinks the stored-block footprint, so repeated passes over the
// same instance terminate at zero stored bytes and fall through to
// eviction.
func (r *Registry) downgrade(inst *instance, old *version, over int64) bool {
	if old == nil {
		return false
	}
	m := old.b.Matrix()
	if m.KernelLess() {
		// Oracle-built: stored-only by contract, and a loaded instance has no
		// kernel to re-assemble a reduced block set from. Evict-and-spill —
		// the spill stream carries the blocks verbatim, so rehydration works.
		return false
	}
	mem := m.Memory()
	stored := mem.Coupling + mem.Nearfield
	if stored == 0 || m.Cfg.Mode == core.OnTheFly {
		return false // nothing left to shed; evict
	}
	newBudget := stored - over
	if newBudget < 0 {
		newBudget = 0
	}
	old.drain()
	dm := m.WithStorageBudget(newBudget)
	nv := &version{b: serve.NewBatcher(dm, r.cfg.Batch)}

	inst.mu.Lock()
	if inst.state != StateEvicted {
		// Deleted or concurrently rebuilt while we were re-assembling; the
		// new owner supersedes this downgrade.
		inst.mu.Unlock()
		nv.b.Close()
		return true
	}
	inst.cur = nv
	inst.state = StateReady
	inst.mem = dm.Memory().Total()
	inst.spilling = false
	inst.err = nil
	// lastApply is deliberately left untouched: the instance stays LRU, so
	// further overage keeps shedding its blocks before touching warmer
	// instances.
	inst.broadcastLocked()
	inst.mu.Unlock()
	r.st.downgrades.Add(1)
	return true
}

// evict drains the victim's unlinked version — in-flight Apply calls and
// admitted requests finish first, so eviction never races a flush — and
// spills its generators when a spill dir is configured.
func (r *Registry) evict(inst *instance, old *version) {
	var spillPath string
	var spillErr error
	if old != nil {
		old.drain()
		if r.cfg.SpillDir != "" {
			spillPath, spillErr = r.spill(inst.name, old.b.Matrix())
		}
	}

	inst.mu.Lock()
	inst.spilling = false
	// Only publish the spill if the instance is still Evicted: a concurrent
	// Delete (Closed) or rebuild (Ready) supersedes this eviction, and its
	// spill file would be stale.
	if inst.state == StateEvicted && spillErr == nil {
		inst.spillPath = spillPath
	} else if spillPath != "" {
		r.removeSpill(spillPath)
	}
	if spillErr != nil {
		inst.err = spillErr
	}
	inst.broadcastLocked()
	inst.mu.Unlock()
	r.st.evictions.Add(1)
}

// spill writes a matrix's generators to the spill dir (temp file + fsync +
// rename + dir fsync, so a concurrent rehydration never sees a partial
// stream and a crash right after eviction cannot leave an empty or
// half-written file behind the final name — the matrix memory is already
// gone at that point, so a torn spill is data loss, not a cache miss).
func (r *Registry) spill(name string, m *core.Matrix) (string, error) {
	if err := os.MkdirAll(r.cfg.SpillDir, 0o755); err != nil {
		return "", err
	}
	final := filepath.Join(r.cfg.SpillDir, name+".h2spill")
	tmp, err := os.CreateTemp(r.cfg.SpillDir, name+".tmp-*")
	if err != nil {
		return "", err
	}
	if _, err := m.WriteTo(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return "", err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return "", err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return "", err
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		os.Remove(tmp.Name())
		return "", err
	}
	if err := syncDir(r.cfg.SpillDir); err != nil {
		return "", err
	}
	return final, nil
}

// syncDir fsyncs a directory so a preceding rename in it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// removeSpill deletes a spill file that is no longer tracked. Failures leak
// disk, not correctness, so they are logged and counted
// (Stats.SpillCleanupErrors) rather than propagated; an already-gone file is
// not an error.
func (r *Registry) removeSpill(path string) {
	if err := os.Remove(path); err != nil && !errors.Is(err, os.ErrNotExist) {
		r.st.spillCleanupErrors.Add(1)
		log.Printf("registry: spill cleanup of %s failed: %v", path, err)
	}
}

// Close shuts the registry down: admissions and creations stop, queued and
// in-flight builds are cancelled (marked Failed) without leaking their
// goroutines, every instance's batcher drains its admitted requests, and —
// when a spill dir is configured — every Ready instance's generators are
// persisted. Idempotent; concurrent calls return after the shutdown
// completes.
func (r *Registry) Close() {
	r.closeOnce.Do(func() {
		r.mu.Lock()
		r.closed = true
		r.mu.Unlock()

		// Cancel builds (workers observe it at stage boundaries), then stop
		// the queue and wait the workers out: no build goroutine outlives
		// Close.
		r.cancel()
		close(r.queue)
		r.workers.Wait()

		r.mu.Lock()
		insts := make([]*instance, 0, len(r.items))
		for _, inst := range r.items {
			insts = append(insts, inst)
		}
		r.mu.Unlock()

		for _, inst := range insts {
			inst.mu.Lock()
			wasReady := inst.state == StateReady
			old := inst.cur
			inst.cur = nil
			inst.building = false
			inst.state = StateClosed
			inst.broadcastLocked()
			inst.mu.Unlock()
			if old != nil {
				old.drain()
				if wasReady && r.cfg.SpillDir != "" {
					if p, err := r.spill(inst.name, old.b.Matrix()); err == nil {
						inst.mu.Lock()
						inst.spillPath = p
						inst.mu.Unlock()
					}
				}
			}
		}
		close(r.closedCh)
	})
	<-r.closedCh
}

// List returns a snapshot of every instance, sorted by name.
func (r *Registry) List() []Info {
	r.mu.Lock()
	insts := make([]*instance, 0, len(r.items))
	for _, inst := range r.items {
		insts = append(insts, inst)
	}
	r.mu.Unlock()
	infos := make([]Info, 0, len(insts))
	for _, inst := range insts {
		infos = append(infos, inst.info())
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}

// Get returns a snapshot of one instance.
func (r *Registry) Get(name string) (Info, bool) {
	r.mu.Lock()
	inst := r.items[name]
	r.mu.Unlock()
	if inst == nil {
		return Info{}, false
	}
	return inst.info(), true
}
