package bench

import (
	"fmt"
	"math"
	"time"

	"h2ds/internal/core"
	"h2ds/internal/kernel"
	"h2ds/internal/mat"
	"h2ds/internal/pointset"
)

// MultiRHS measures the batched multi-RHS product against k sequential
// matvecs on the 3-D Coulomb workload, in both memory modes. The batch path
// visits every coupling and nearfield block — in on-the-fly mode, every
// kernel tile assembly, the dominant cost — once per batch instead of once
// per column, so its advantage grows with k and is largest on-the-fly. The
// maxreldiff column checks the two paths agree to near machine precision.
func MultiRHS(opt Options) error {
	out := opt.out()
	kmax := opt.rhs()
	ns := nSweep(opt.Scale)
	n := ns[len(ns)-1]
	fmt.Fprintf(out, "\n# multi-RHS batch apply: n=%d, 3-D cube, Coulomb, k up to %d\n", n, kmax)

	pts := pointset.Cube(n, 3, opt.seed())
	k := kernel.Coulomb{}
	tb := newTable(out, "batched apply vs sequential",
		"n", "memory", "k", "T_seq_ms", "T_batch_ms", "speedup", "maxreldiff")
	for _, mode := range []core.MemoryMode{core.Normal, core.OnTheFly} {
		cfg := cfgFor(core.DataDriven, mode, 1e-6, n, 3, opt)
		m, err := core.Build(pts, k, cfg)
		if err != nil {
			return err
		}
		ws := m.NewWorkspace()
		for rhs := 1; rhs <= kmax; rhs *= 2 {
			B := mat.NewDense(n, rhs)
			for j := 0; j < rhs; j++ {
				col := randVec(n, opt.seed()+7+int64(j))
				for i := 0; i < n; i++ {
					B.Set(i, j, col[i])
				}
			}
			Yseq := mat.NewDense(n, rhs)
			col := make([]float64, n)
			y := make([]float64, n)
			Ybatch := mat.NewDense(n, rhs)

			// Warm-up both paths, then time.
			m.ApplyToWith(ws, y, col)
			m.ApplyBatchToWith(ws, Ybatch, B)

			reps := opt.reps()
			t0 := time.Now()
			for r := 0; r < reps; r++ {
				for j := 0; j < rhs; j++ {
					for i := 0; i < n; i++ {
						col[i] = B.At(i, j)
					}
					m.ApplyToWith(ws, y, col)
					for i := 0; i < n; i++ {
						Yseq.Set(i, j, y[i])
					}
				}
			}
			tseq := time.Since(t0) / time.Duration(reps)

			t1 := time.Now()
			for r := 0; r < reps; r++ {
				m.ApplyBatchToWith(ws, Ybatch, B)
			}
			tbatch := time.Since(t1) / time.Duration(reps)

			maxRel := 0.0
			for i, v := range Yseq.Data {
				if d := math.Abs(Ybatch.Data[i]-v) / (1 + math.Abs(v)); d > maxRel {
					maxRel = d
				}
			}
			tb.row(
				fmt.Sprintf("%d", n),
				mode.String(),
				fmt.Sprintf("%d", rhs),
				fmt.Sprintf("%.2f", float64(tseq.Microseconds())/1000),
				fmt.Sprintf("%.2f", float64(tbatch.Microseconds())/1000),
				fmt.Sprintf("%.2fx", float64(tseq)/float64(tbatch)),
				fmt.Sprintf("%.1e", maxRel),
			)
		}
	}
	tb.flush()
	return nil
}
