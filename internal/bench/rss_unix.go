//go:build unix

package bench

import "syscall"

// peakRSSKiB reports the process's resident-set high-water mark in KiB via
// getrusage. Linux reports ru_maxrss in KiB already; Darwin reports bytes —
// normalized here so BuildRun rows are comparable across platforms.
func peakRSSKiB() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	kib := int64(ru.Maxrss)
	if kib > 1<<32 {
		// Darwin-style bytes; anything above 4 TiB "KiB" is not a real RSS.
		kib >>= 10
	}
	return kib
}
