package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"h2ds/internal/core"
	"h2ds/internal/par"
	"h2ds/internal/pointset"
)

// RelTolRun is one point of the error-controlled tolerance sweep in
// BENCH_matvec.json: the requested tolerance against the rank, memory,
// apply latency, and error it actually bought.
type RelTolRun struct {
	RelTol        float64 `json:"reltol"`
	N             int     `json:"n"`
	Leaf          int     `json:"leaf"`
	SampleBudget  int     `json:"sample_budget"`
	MaxRank       int     `json:"max_rank"`
	AvgLeafRank   float64 `json:"avg_leaf_rank"`
	MemKiB        float64 `json:"mem_kib"`
	BuildMS       float64 `json:"build_ms"`
	MedianApplyNS int64   `json:"median_apply_ns"`
	EstRelErr     float64 `json:"est_relerr"`      // build-time a-posteriori estimate
	MeasuredErr   float64 `json:"measured_relerr"` // independent 12-row measurement
}

// relTolAxis is the default tolerance sweep, loose to tight.
var relTolAxis = []float64{1e-2, 1e-4, 1e-6, 1e-8}

// relTolN picks the sweep's problem size per scale; the tiny/small size is
// the n=2k case CI's smoke step asserts on.
func relTolN(scale string) int {
	switch scale {
	case "medium":
		return 5000
	case "paper":
		return 20000
	default: // tiny, small
		return 2000
	}
}

// RelTolSweep sweeps the error-controlled build tolerance and records what
// each requested digit costs (rank, memory, build and apply time) and buys
// (measured error). The rows land in the reltol_sweep section of
// BENCH_matvec.json alongside the matvec trajectory.
//
// The sweep is self-asserting — it fails if any measured error exceeds 10x
// the requested tolerance, or if rank or memory shrinks as the tolerance
// tightens — so running it IS the accuracy regression check; CI needs no
// extra parsing.
func RelTolSweep(opt Options) error {
	out := opt.out()
	k, err := opt.kernel()
	if err != nil {
		return err
	}
	axis := relTolAxis
	if opt.RelTol > 0 {
		axis = []float64{opt.RelTol}
	}
	n := relTolN(opt.Scale)
	leaf := leafSizeFor(n)
	workers := par.Resolve(opt.Threads)
	fmt.Fprintf(out, "\n# reltol: error-controlled build sweep (kernel=%s n=%d workers=%d scale=%s)\n",
		k.Name(), n, workers, opt.Scale)
	tb := newTable(out, "requested tolerance vs achieved rank/memory/error",
		"reltol", "m_budget", "maxrank", "avg_leaf_rank", "mem_KiB", "build_ms", "apply_us", "est_err", "meas_err")

	pts := pointset.Cube(n, 3, opt.seed())
	b := randVec(n, opt.seed()+7)
	var runs []RelTolRun
	for _, rt := range axis {
		cfg := core.Config{Kind: core.DataDriven, Mode: core.Normal, RelTol: rt,
			LeafSize: leaf, Workers: opt.Threads, Sampler: opt.sampler()}
		t0 := time.Now()
		m, err := core.Build(pts, k, cfg)
		if err != nil {
			return fmt.Errorf("reltol %g: %w", rt, err)
		}
		build := time.Since(t0)

		ws := m.NewWorkspace()
		y := make([]float64, n)
		m.ApplyToWith(ws, y, b)
		samples := opt.reps()
		if samples < 5 {
			samples = 5
		}
		times := make([]int64, samples)
		for i := range times {
			t1 := time.Now()
			m.ApplyToWith(ws, y, b)
			times[i] = time.Since(t1).Nanoseconds()
		}
		ws.Close()
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })

		st := m.Stats()
		run := RelTolRun{
			RelTol: rt, N: n, Leaf: leaf,
			SampleBudget:  core.RelTolSampleBudget(rt, pts.Dim),
			MaxRank:       st.MaxRank,
			MemKiB:        m.Memory().KiB(),
			BuildMS:       float64(build.Microseconds()) / 1000,
			MedianApplyNS: times[len(times)/2],
			EstRelErr:     st.EstRelErr,
			MeasuredErr:   m.RelErrorVs(b, y, core.DefaultErrorRows, opt.seed()+13),
		}
		if st.Leaves > 0 {
			run.AvgLeafRank = float64(st.SumLeafRank) / float64(st.Leaves)
		}
		runs = append(runs, run)
		tb.row(fmt.Sprintf("%.0e", rt), fmt.Sprintf("%d", run.SampleBudget),
			fmt.Sprintf("%d", run.MaxRank), fmt.Sprintf("%.1f", run.AvgLeafRank),
			fmt.Sprintf("%.1f", run.MemKiB), fmt.Sprintf("%.1f", run.BuildMS),
			fmt.Sprintf("%.1f", float64(run.MedianApplyNS)/1000),
			fmt.Sprintf("%.2e", run.EstRelErr), fmt.Sprintf("%.2e", run.MeasuredErr))
	}
	tb.flush()

	// The error-controlled contract, asserted on the fresh measurements.
	for i, run := range runs {
		if run.MeasuredErr > 10*run.RelTol {
			return fmt.Errorf("reltol %g: measured error %.3e exceeds 10x the requested tolerance", run.RelTol, run.MeasuredErr)
		}
		if run.EstRelErr > 10*run.RelTol {
			return fmt.Errorf("reltol %g: a-posteriori estimate %.3e exceeds 10x the requested tolerance", run.RelTol, run.EstRelErr)
		}
		if i > 0 {
			if run.MaxRank < runs[i-1].MaxRank {
				return fmt.Errorf("reltol %g: max rank %d below the looser tolerance's %d", run.RelTol, run.MaxRank, runs[i-1].MaxRank)
			}
			if run.MemKiB < runs[i-1].MemKiB {
				return fmt.Errorf("reltol %g: memory %.1f KiB below the looser tolerance's %.1f", run.RelTol, run.MemKiB, runs[i-1].MemKiB)
			}
		}
	}

	// Merge into BENCH_matvec.json: the sweep owns the reltol_sweep section,
	// the matvec experiment owns the rest; each preserves the other's rows.
	path := opt.JSONOut
	if path == "" {
		path = "BENCH_matvec.json"
	}
	rep := MatvecReport{Experiment: "matvec", Scale: opt.Scale, Kernel: k.Name(), Workers: workers}
	if buf, err := os.ReadFile(path); err == nil {
		json.Unmarshal(buf, &rep)
	}
	rep.RelTolSweep = runs
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "\nwrote %s (reltol_sweep: %d rows, all within 10x of request)\n", path, len(runs))
	return nil
}
