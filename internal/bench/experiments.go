package bench

import (
	"fmt"
	"math"

	"h2ds/internal/core"
	"h2ds/internal/hmatrix"
	"h2ds/internal/kernel"
	"h2ds/internal/pointset"
	"h2ds/internal/tree"
)

// nSweep returns the point-count sweep for the given scale.
func nSweep(scale string) []int {
	switch scale {
	case "tiny": // undocumented: harness smoke tests
		return []int{1500, 3000}
	case "paper":
		return []int{20000, 40000, 80000, 160000, 320000}
	case "medium":
		return []int{10000, 20000, 40000, 80000}
	default:
		return []int{5000, 10000, 20000}
	}
}

// interpRankCap bounds the tensor rank p^d the harness will attempt for the
// interpolation baseline; beyond it the configuration is reported as
// skipped, mirroring the paper's own capping of interpolation in five
// dimensions ("due to time and memory constraints").
const interpRankCap = 3000

func interpFeasible(tol float64, dim int) (rank int, ok bool) {
	p := corePFromTol(tol)
	r := 1
	for i := 0; i < dim; i++ {
		r *= p
		if r > interpRankCap {
			return r, false
		}
	}
	return r, true
}

// corePFromTol mirrors the interpolation calibration without importing
// internal/interp here.
func corePFromTol(tol float64) int {
	if tol <= 0 {
		tol = 1e-8
	}
	p := int(math.Ceil(-math.Log10(tol))) + 1
	if p < 2 {
		p = 2
	}
	if p > 14 {
		p = 14
	}
	return p
}

// cfgFor assembles the standard experiment configuration. The
// interpolation baseline gets leaves at least as large as its tensor rank
// p^d — blocks smaller than the approximation rank gain nothing from
// compression, and rank-sized leaves are what keeps its normal-mode
// coupling storage within the paper's reported ballpark.
func cfgFor(kind core.BasisKind, mode core.MemoryMode, tol float64, n, dim int, opt Options) core.Config {
	leaf := leafSizeFor(n)
	if kind == core.Interpolation {
		if rank, ok := interpFeasible(tol, dim); ok && rank > leaf {
			leaf = rank
		}
	}
	return core.Config{
		Kind: kind, Mode: mode, Tol: tol,
		LeafSize: leaf, Workers: opt.Threads, Sampler: opt.sampler(),
	}
}

// Fig2 reproduces the rank-comparison heatmap (paper Fig 2): 10,000 points
// in a cube, Coulomb kernel, 1e-7 relative error; interpolation ranks vs
// data-driven ranks, reported per tree level plus the leaf distribution.
func Fig2(opt Options) error {
	out := opt.out()
	fmt.Fprintf(out, "\n# fig2: basis ranks, interpolation vs data-driven (n=10000 cube, coulomb, tol=1e-7)\n")
	pts := pointset.Cube(10000, 3, opt.seed())
	k := kernel.Coulomb{}
	tol := 1e-7
	leaf := leafSizeFor(10000)

	dd, err := core.Build(pts, k, core.Config{Kind: core.DataDriven, Mode: core.OnTheFly,
		Tol: tol, LeafSize: leaf, Workers: opt.Threads, Sampler: opt.sampler()})
	if err != nil {
		return err
	}
	ip, err := core.Build(pts, k, core.Config{Kind: core.Interpolation, Mode: core.OnTheFly,
		Tol: tol, LeafSize: leaf, Workers: opt.Threads})
	if err != nil {
		return err
	}

	t := newTable(out, "per-level basis ranks", "level", "nodes",
		"dd_min", "dd_med", "dd_max", "interp_rank")
	ddRanks := dd.NodeRanks()
	ipRanks := ip.NodeRanks()
	for l, ids := range dd.Tree.Levels {
		var ranks []int
		for _, id := range ids {
			ranks = append(ranks, ddRanks[id])
		}
		minR, maxR := ranks[0], ranks[0]
		for _, r := range ranks {
			if r < minR {
				minR = r
			}
			if r > maxR {
				maxR = r
			}
		}
		ipr := 0
		if l < len(ip.Tree.Levels) && len(ip.Tree.Levels[l]) > 0 {
			ipr = ipRanks[ip.Tree.Levels[l][0]]
		}
		t.row(fmt.Sprintf("%d", l), fmt.Sprintf("%d", len(ids)),
			fmt.Sprintf("%d", minR), fmt.Sprintf("%d", medianInt(ranks)),
			fmt.Sprintf("%d", maxR), fmt.Sprintf("%d", ipr))
	}
	t.flush()

	sd, si := dd.Stats(), ip.Stats()
	fmt.Fprintf(out, "\nleaf-rank totals: data-driven sum=%d (avg %.1f), interpolation sum=%d (rank %d each)\n",
		sd.SumLeafRank, float64(sd.SumLeafRank)/float64(sd.Leaves), si.SumLeafRank, si.MaxRank)
	fmt.Fprintf(out, "coupling blocks: %d, nearfield blocks: %d (red cells in the paper's figure)\n",
		sd.InteractionBlocks, sd.NearBlocks)
	b := randVec(10000, opt.seed()+7)
	fmt.Fprintf(out, "achieved relerr: data-driven %.2e, interpolation %.2e\n",
		dd.EstimateRelError(b, core.DefaultErrorRows, opt.seed()+13),
		ip.EstimateRelError(b, core.DefaultErrorRows, opt.seed()+13))
	return nil
}

// Fig4 reproduces the distribution study (paper Fig 4): T_const, T_mv and
// memory vs n for the cube, sphere and dino distributions, data-driven vs
// interpolation, on-the-fly memory mode, Coulomb kernel, tol ~1e-8.
func Fig4(opt Options) error {
	out := opt.out()
	tol := 1e-8
	fmt.Fprintf(out, "\n# fig4: distributions (coulomb, on-the-fly, tol=%.0e, threads=%d)\n", tol, opt.Threads)
	for _, dist := range []string{"cube", "sphere", "dino"} {
		t := newTable(out, "distribution "+dist, stdCols...)
		for _, n := range nSweep(opt.Scale) {
			pts, _ := pointset.Named(dist, n, 3, opt.seed())
			for _, kind := range []core.BasisKind{core.DataDriven, core.Interpolation} {
				r, err := Measure(pts, kernel.Coulomb{}, cfgFor(kind, core.OnTheFly, tol, n, pts.Dim, opt), opt)
				if err != nil {
					return err
				}
				r.Dist = dist
				t.row(rowFor(r)...)
			}
		}
		t.flush()
	}
	return nil
}

// Fig5 reproduces the dimension study (paper Fig 5): hypercube volumes in
// d = 2..5, on-the-fly mode, tol ~1e-8. Interpolation configurations whose
// tensor rank exceeds the cap are reported as skipped (the paper likewise
// stopped interpolation at 40,000 points in five dimensions).
func Fig5(opt Options) error {
	out := opt.out()
	tol := 1e-8
	fmt.Fprintf(out, "\n# fig5: dimensions 2..5 (coulomb, on-the-fly, tol=%.0e)\n", tol)
	sweep := nSweep(opt.Scale)
	for _, d := range []int{2, 3, 4, 5} {
		t := newTable(out, fmt.Sprintf("dimension d=%d", d), stdCols...)
		for _, n := range sweep {
			pts := pointset.Cube(n, d, opt.seed())
			for _, kind := range []core.BasisKind{core.DataDriven, core.Interpolation} {
				if kind == core.Interpolation {
					if rank, ok := interpFeasible(tol, d); !ok {
						t.row(fmt.Sprintf("%d", n), "interpolation", "on-the-fly",
							"skipped", "skipped", "skipped",
							fmt.Sprintf("rank p^d=%d exceeds cap %d", rank, interpRankCap), "-")
						continue
					}
				}
				r, err := Measure(pts, kernel.Coulomb{}, cfgFor(kind, core.OnTheFly, tol, n, pts.Dim, opt), opt)
				if err != nil {
					return err
				}
				t.row(rowFor(r)...)
			}
		}
		t.flush()
	}
	return nil
}

// Fig6 reproduces the cumulative-effect study (paper Fig 6): the four
// combinations {interpolation, data-driven} x {normal, on-the-fly} on the
// cube distribution as n grows.
func Fig6(opt Options) error {
	out := opt.out()
	tol := 1e-8
	fmt.Fprintf(out, "\n# fig6: cumulative effect of data-driven + on-the-fly (cube 3-D, coulomb, tol=%.0e)\n", tol)
	t := newTable(out, "all four combinations", stdCols...)
	for _, n := range nSweep(opt.Scale) {
		pts := pointset.Cube(n, 3, opt.seed())
		for _, kind := range []core.BasisKind{core.Interpolation, core.DataDriven} {
			for _, mode := range []core.MemoryMode{core.Normal, core.OnTheFly} {
				r, err := Measure(pts, kernel.Coulomb{}, cfgFor(kind, mode, tol, n, pts.Dim, opt), opt)
				if err != nil {
					return err
				}
				t.row(rowFor(r)...)
			}
		}
	}
	t.flush()
	return nil
}

// Table1 reproduces the paper's Table I: the four basis/memory combinations
// at a single large n (320,000 in the paper; scaled down by default).
func Table1(opt Options) error {
	out := opt.out()
	n := 40000
	switch opt.Scale {
	case "tiny":
		n = 4000
	case "medium":
		n = 100000
	case "paper":
		n = 320000
	}
	tol := 1e-8
	fmt.Fprintf(out, "\n# table1: timings and memory at n=%d (cube 3-D, coulomb, tol=%.0e)\n", n, tol)
	pts := pointset.Cube(n, 3, opt.seed())
	t := newTable(out, "Table I", stdCols...)
	for _, kind := range []core.BasisKind{core.Interpolation, core.DataDriven} {
		for _, mode := range []core.MemoryMode{core.Normal, core.OnTheFly} {
			r, err := Measure(pts, kernel.Coulomb{}, cfgFor(kind, mode, tol, n, pts.Dim, opt), opt)
			if err != nil {
				return err
			}
			t.row(rowFor(r)...)
		}
	}
	t.flush()
	return nil
}

// Fig7 reproduces the thread-scaling study (paper Fig 7): both
// constructions in on-the-fly mode across worker counts. On a single-core
// host the sweep still runs (worker count is a software parameter), but no
// speedup can appear; see EXPERIMENTS.md.
func Fig7(opt Options) error {
	out := opt.out()
	n := 30000
	switch opt.Scale {
	case "tiny":
		n = 4000
	case "medium":
		n = 100000
	case "paper":
		n = 1000000
	}
	tol := 1e-8
	fmt.Fprintf(out, "\n# fig7: thread scaling at n=%d (cube 3-D, coulomb, on-the-fly, tol=%.0e)\n", n, tol)
	pts := pointset.Cube(n, 3, opt.seed())
	t := newTable(out, "threads sweep", append([]string{"threads"}, stdCols...)...)
	for _, threads := range []int{1, 2, 4, 8, 14} {
		for _, kind := range []core.BasisKind{core.DataDriven, core.Interpolation} {
			cfg := cfgFor(kind, core.OnTheFly, tol, n, pts.Dim, opt)
			cfg.Workers = threads
			r, err := Measure(pts, kernel.Coulomb{}, cfg, opt)
			if err != nil {
				return err
			}
			t.row(append([]string{fmt.Sprintf("%d", threads)}, rowFor(r)...)...)
		}
	}
	t.flush()
	return nil
}

// Fig8 reproduces the accuracy study (paper Fig 8): both methods in
// on-the-fly mode across target tolerances on a fixed cube workload.
func Fig8(opt Options) error {
	out := opt.out()
	n := 20000
	if opt.Scale == "tiny" {
		n = 4000
	}
	if opt.Scale == "medium" || opt.Scale == "paper" {
		n = 80000
	}
	tols := []float64{1e-2, 1e-4, 1e-6, 1e-8}
	if opt.Scale != "small" && opt.Scale != "" {
		tols = append(tols, 1e-10)
	}
	fmt.Fprintf(out, "\n# fig8: accuracy sweep at n=%d (cube 3-D, coulomb, on-the-fly)\n", n)
	pts := pointset.Cube(n, 3, opt.seed())
	t := newTable(out, "tolerance sweep", append([]string{"tol"}, stdCols...)...)
	for _, tol := range tols {
		for _, kind := range []core.BasisKind{core.DataDriven, core.Interpolation} {
			r, err := Measure(pts, kernel.Coulomb{}, cfgFor(kind, core.OnTheFly, tol, n, pts.Dim, opt), opt)
			if err != nil {
				return err
			}
			t.row(append([]string{fmt.Sprintf("%.0e", tol)}, rowFor(r)...)...)
		}
	}
	t.flush()
	return nil
}

// Fig9 reproduces the kernel-generality study (paper Fig 9): Coulomb,
// cubed Coulomb, exponential and Gaussian kernels, both methods, on-the-fly
// mode.
func Fig9(opt Options) error {
	out := opt.out()
	tol := 1e-8
	fmt.Fprintf(out, "\n# fig9: kernel generality (cube 3-D, on-the-fly, tol=%.0e)\n", tol)
	for _, kname := range []string{"coulomb", "coulomb3", "exp", "gaussian"} {
		k, _ := kernel.Named(kname)
		t := newTable(out, "kernel "+kname, stdCols...)
		for _, n := range nSweep(opt.Scale) {
			pts := pointset.Cube(n, 3, opt.seed())
			for _, kind := range []core.BasisKind{core.DataDriven, core.Interpolation} {
				r, err := Measure(pts, k, cfgFor(kind, core.OnTheFly, tol, n, pts.Dim, opt), opt)
				if err != nil {
					return err
				}
				t.row(rowFor(r)...)
			}
		}
		t.flush()
	}
	return nil
}

// Ablation runs the design-choice studies DESIGN.md calls out: the sampler
// choice inside the data-driven construction, and the nested (H²) vs
// non-nested (H) format at equal tolerance.
func Ablation(opt Options) error {
	out := opt.out()
	n := 20000
	if opt.Scale == "tiny" {
		n = 4000
	}
	if opt.Scale == "medium" || opt.Scale == "paper" {
		n = 80000
	}
	tol := 1e-6
	pts := pointset.Cube(n, 3, opt.seed())
	b := randVec(n, opt.seed()+7)

	fmt.Fprintf(out, "\n# ablation: sampler choice (n=%d, cube 3-D, coulomb, tol=%.0e)\n", n, tol)
	t := newTable(out, "samplers", "sampler", "T_const_ms", "T_mv_ms", "mem_KiB", "relerr", "maxrank", "avg_leaf_rank")
	for _, sname := range []string{"anchornet", "fps", "random"} {
		o2 := opt
		o2.Sampler = sname
		r, err := Measure(pts, kernel.Coulomb{}, core.Config{
			Kind: core.DataDriven, Mode: core.OnTheFly, Tol: tol,
			LeafSize: leafSizeFor(n), Workers: opt.Threads, Sampler: o2.sampler(),
		}, o2)
		if err != nil {
			return err
		}
		t.row(sname, fmt.Sprintf("%.1f", r.TConstMS), fmt.Sprintf("%.2f", r.TMatVecMS),
			fmt.Sprintf("%.1f", r.MemKiB), fmt.Sprintf("%.2e", r.RelErr),
			fmt.Sprintf("%d", r.MaxRank), fmt.Sprintf("%.1f", r.AvgLeafRnk))
	}
	t.flush()

	fmt.Fprintf(out, "\n# ablation: nested (H²) vs non-nested (H) format\n")
	leaf := leafSizeFor(n)
	h2m, err := core.Build(pts, kernel.Coulomb{}, core.Config{
		Kind: core.DataDriven, Mode: core.Normal, Tol: tol, LeafSize: leaf, Workers: opt.Threads})
	if err != nil {
		return err
	}
	hm, err := hmatrix.Build(pts, kernel.Coulomb{}, hmatrix.Config{
		Tol: tol, LeafSize: leaf, Workers: opt.Threads})
	if err != nil {
		return err
	}
	y2 := h2m.Apply(b)
	yh := hm.Apply(b)
	t2 := newTable(out, "formats", "format", "mem_KiB", "relerr_vs_dense", "farfield_blocks")
	hs := hm.ComputeStats()
	t2.row("H2 (nested)", fmt.Sprintf("%.1f", h2m.Memory().KiB()),
		fmt.Sprintf("%.2e", h2m.RelErrorVs(b, y2, core.DefaultErrorRows, opt.seed()+13)),
		fmt.Sprintf("%d", h2m.Stats().InteractionBlocks))
	t2.row("H (non-nested)", fmt.Sprintf("%.1f", float64(hm.Bytes())/1024),
		fmt.Sprintf("%.2e", relErrEstimateH(hm, pts, b, yh, opt)),
		fmt.Sprintf("%d", hs.LowRankBlocks))
	t2.flush()
	return nil
}

// relErrEstimateH reuses the 12-row protocol for the H-matrix baseline.
func relErrEstimateH(hm *hmatrix.Matrix, pts *pointset.Points, b, y []float64, opt Options) float64 {
	// Build a throwaway estimator via a tiny H² wrapper is overkill; do the
	// row sampling directly against the dense kernel rows.
	return estimateRows(pts, hm.Kern, b, y, core.DefaultErrorRows, opt.seed()+13)
}

// estimateRows is the shared 12-row exact-row error estimate in original
// ordering.
func estimateRows(pts *pointset.Points, k kernel.Pairwise, b, y []float64, rows int, seed int64) float64 {
	exact := core.DirectRows(pts, k, b, rows, seed)
	var num, den float64
	for _, e := range exact {
		d := e.Exact - y[e.Row]
		num += d * d
		den += e.Exact * e.Exact
	}
	if den == 0 {
		return 0
	}
	return math.Sqrt(num / den)
}

// treeDepthFor is a tiny helper exposed for tests: depth of the tree the
// harness configurations produce.
func treeDepthFor(n, leaf int) int {
	pts := pointset.Cube(n, 3, 1)
	return tree.New(pts, tree.Config{LeafSize: leaf}).Depth()
}
