// Package bench is the experiment harness: one runner per table and figure
// of the paper's evaluation section (Figs 2, 4–9 and Table I), each printing
// the same rows/series the paper reports — construction time, matvec time,
// deterministic memory, and the 12-row relative-error estimate.
//
// Absolute numbers differ from the paper (different hardware, pure Go), but
// the shapes — who wins, by what factor, where the curves cross — are the
// reproduction target. See EXPERIMENTS.md for recorded runs.
package bench

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"h2ds/internal/core"
	"h2ds/internal/kernel"
	"h2ds/internal/pointset"
	"h2ds/internal/sample"
)

// Options configures a harness run.
type Options struct {
	// Scale selects sweep sizes: "small" (default, minutes on a laptop
	// core), "medium", or "paper" (the paper's problem sizes; hours).
	Scale string
	// Threads is the worker count (0 = GOMAXPROCS).
	Threads int
	// Sampler names the data-driven sampler ("anchornet" default, "fps",
	// "random") — the sampler ablation.
	Sampler string
	// Seed drives point generation and the error estimator.
	Seed int64
	// MatVecReps averages the matvec timing over this many products
	// (0 = 3).
	MatVecReps int
	// RHS is the largest right-hand-side batch width the multi-RHS
	// experiment sweeps (powers of two up to this; 0 = 8).
	RHS int
	// Kernel names the kernel for experiments that take one ("" =
	// "coulomb"); resolved through kernel.ByName.
	Kernel string
	// Conc is the client concurrency for the serve experiment (0 = 32).
	Conc int
	// Window is the batcher flush window for the serve experiment
	// (0 = 500µs).
	Window time.Duration
	// JSONOut is the output path for experiments that emit a
	// machine-readable report ("" = the experiment's default, e.g.
	// BENCH_matvec.json for the matvec experiment).
	JSONOut string
	// RelTol, when positive, requests error-controlled builds: the reltol
	// experiment sweeps only this tolerance instead of its default axis, and
	// the matvec experiment builds its matrices in error-controlled mode.
	RelTol float64
	// MinScale is the w4-over-w1 speedup the matvec scaling sweep must reach
	// on its normal-mode apply (0 = 2.0; negative disables the assert). The
	// wall-clock check only runs on hosts with at least four CPUs; the
	// bitwise cross-worker equality check always runs.
	MinScale float64
	// Out receives the report (nil = io.Discard).
	Out io.Writer
}

func (o Options) out() io.Writer {
	if o.Out == nil {
		return io.Discard
	}
	return o.Out
}

func (o Options) reps() int {
	if o.MatVecReps <= 0 {
		return 3
	}
	return o.MatVecReps
}

func (o Options) rhs() int {
	if o.RHS <= 0 {
		return 8
	}
	return o.RHS
}

func (o Options) kernel() (kernel.Kernel, error) {
	name := o.Kernel
	if name == "" {
		name = "coulomb"
	}
	return kernel.ByName(name)
}

func (o Options) conc() int {
	if o.Conc <= 0 {
		return 32
	}
	return o.Conc
}

func (o Options) window() time.Duration {
	if o.Window <= 0 {
		return 500 * time.Microsecond
	}
	return o.Window
}

func (o Options) minScale() float64 {
	if o.MinScale == 0 {
		return 2.0
	}
	if o.MinScale < 0 {
		return 0
	}
	return o.MinScale
}

func (o Options) sampler() sample.Sampler {
	s, ok := sample.Named(o.Sampler)
	if !ok {
		return sample.AnchorNet{}
	}
	return s
}

func (o Options) seed() int64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

// Experiments lists the runnable experiment ids in paper order.
func Experiments() []string {
	return []string{"fig2", "fig4", "fig5", "fig6", "table1", "fig7", "fig8", "fig9", "ablation", "rhs", "serve", "registry", "matvec", "reltol", "cluster", "oracle", "build"}
}

// Run executes one experiment ("fig2", ..., "table1", "ablation") or "all".
func Run(exp string, opt Options) error {
	switch exp {
	case "fig2":
		return Fig2(opt)
	case "fig4":
		return Fig4(opt)
	case "fig5":
		return Fig5(opt)
	case "fig6":
		return Fig6(opt)
	case "table1":
		return Table1(opt)
	case "fig7":
		return Fig7(opt)
	case "fig8":
		return Fig8(opt)
	case "fig9":
		return Fig9(opt)
	case "ablation":
		return Ablation(opt)
	case "rhs":
		return MultiRHS(opt)
	case "serve":
		return ServeBench(opt)
	case "registry":
		return RegistryBench(opt)
	case "matvec":
		return MatvecJSON(opt)
	case "reltol":
		return RelTolSweep(opt)
	case "cluster":
		return ClusterBench(opt)
	case "oracle":
		return OracleBench(opt)
	case "build":
		return BuildBench(opt)
	case "all":
		for _, e := range Experiments() {
			if err := Run(e, opt); err != nil {
				return fmt.Errorf("%s: %w", e, err)
			}
		}
		return nil
	default:
		return fmt.Errorf("bench: unknown experiment %q (have %s, all)", exp, strings.Join(Experiments(), ", "))
	}
}

// Result is one measured configuration — one row of a table or one point of
// a figure series.
type Result struct {
	N          int
	Dim        int
	Dist       string
	Kernel     string
	Kind       core.BasisKind
	Mode       core.MemoryMode
	Tol        float64
	Threads    int
	TConstMS   float64
	TMatVecMS  float64
	MemKiB     float64
	RelErr     float64
	MaxRank    int
	AvgLeafRnk float64
}

// Measure builds the H² matrix for the given workload and measures
// construction time, averaged matvec time, deterministic memory, and the
// paper's 12-row error estimate.
func Measure(pts *pointset.Points, k kernel.Kernel, cfg core.Config, opt Options) (Result, error) {
	t0 := time.Now()
	m, err := core.Build(pts, k, cfg)
	if err != nil {
		return Result{}, err
	}
	tconst := time.Since(t0)

	b := randVec(pts.Len(), opt.seed()+7)
	// Warm-up product (page in generators) then timed repetitions.
	y := m.Apply(b)
	reps := opt.reps()
	t1 := time.Now()
	for r := 0; r < reps; r++ {
		m.ApplyTo(y, b)
	}
	tmv := time.Since(t1) / time.Duration(reps)

	mem := m.Memory()
	st := m.Stats()
	res := Result{
		N: pts.Len(), Dim: pts.Dim,
		Kernel: k.Name(), Kind: cfg.Kind, Mode: cfg.Mode, Tol: cfg.Tol,
		Threads:   cfg.Workers,
		TConstMS:  float64(tconst.Microseconds()) / 1000,
		TMatVecMS: float64(tmv.Microseconds()) / 1000,
		MemKiB:    mem.KiB(),
		RelErr:    m.RelErrorVs(b, y, core.DefaultErrorRows, opt.seed()+13),
		MaxRank:   st.MaxRank,
	}
	if st.Leaves > 0 {
		res.AvgLeafRnk = float64(st.SumLeafRank) / float64(st.Leaves)
	}
	return res, nil
}

func randVec(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

// table manages aligned report output.
type table struct {
	w *tabwriter.Writer
}

func newTable(out io.Writer, title string, cols ...string) *table {
	fmt.Fprintf(out, "\n## %s\n", title)
	w := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, strings.Join(cols, "\t"))
	return &table{w: w}
}

func (t *table) row(cells ...string) { fmt.Fprintln(t.w, strings.Join(cells, "\t")) }

func (t *table) flush() { t.w.Flush() }

// rowFor renders the standard measurement columns.
func rowFor(r Result) []string {
	return []string{
		fmt.Sprintf("%d", r.N),
		r.Kind.String(),
		r.Mode.String(),
		fmt.Sprintf("%.1f", r.TConstMS),
		fmt.Sprintf("%.2f", r.TMatVecMS),
		fmt.Sprintf("%.1f", r.MemKiB),
		fmt.Sprintf("%.2e", r.RelErr),
		fmt.Sprintf("%d", r.MaxRank),
	}
}

var stdCols = []string{"n", "basis", "memory", "T_const_ms", "T_mv_ms", "mem_KiB", "relerr", "maxrank"}

// leafSizeFor picks a leaf capacity appropriate to the construction: the
// interpolation baseline wants leaves no smaller than its p^d rank
// neighborhood, while the data-driven method prefers smaller leaves. Both
// follow the paper's "order of hundreds" guidance, adapted to problem size
// so small sweeps still produce farfield blocks.
func leafSizeFor(n int) int {
	switch {
	case n <= 2000:
		return 50
	case n <= 20000:
		return 100
	default:
		return 200
	}
}

// medianInt returns the median of a non-empty int slice (copied, sorted).
func medianInt(xs []int) int {
	c := append([]int(nil), xs...)
	sort.Ints(c)
	return c[len(c)/2]
}
