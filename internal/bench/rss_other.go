//go:build !unix

package bench

// peakRSSKiB has no getrusage on this platform; BuildRun rows report 0.
func peakRSSKiB() int64 { return 0 }
