package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"h2ds/internal/core"
	"h2ds/internal/pointset"
	"h2ds/internal/serve"
)

// ServeBench measures the request-batching service against naive
// per-request applies under concurrent offered load: the traffic shape the
// serving subsystem exists for. Closed-loop clients (one outstanding
// request each) hammer one shared matrix; the naive mode calls ApplyTo
// per request, the batched mode goes through a serve.Batcher whose flushes
// visit every coupling/nearfield block once per batch. Reported per mode:
// throughput and p50/p99 request latency, plus machine-readable BENCH JSON
// lines for tracking.
func ServeBench(opt Options) error {
	out := opt.out()
	k, err := opt.kernel()
	if err != nil {
		return err
	}
	n := 20000
	switch opt.Scale {
	case "tiny":
		n = 1500
	case "medium":
		n = 40000
	case "paper":
		n = 80000
	}
	conc := opt.conc()
	window := opt.window()
	perClient := 8
	if opt.Scale == "tiny" {
		perClient = 4
	}

	fmt.Fprintf(out, "\n# serve: request batching under concurrent load (n=%d, 3-D cube, %s, on-the-fly, conc=%d, window=%v)\n",
		n, k.Name(), conc, window)

	pts := pointset.Cube(n, 3, opt.seed())
	m, err := core.Build(pts, k, core.Config{
		Kind: core.DataDriven, Mode: core.OnTheFly, Tol: 1e-6,
		LeafSize: leafSizeFor(n), Workers: opt.Threads, Sampler: opt.sampler(),
	})
	if err != nil {
		return err
	}

	// A few distinct request vectors shared round-robin across clients.
	nv := 8
	if nv > conc {
		nv = conc
	}
	ins := make([][]float64, nv)
	for v := range ins {
		ins[v] = randVec(n, opt.seed()+7+int64(v))
	}

	// Correctness gate: the batched path must agree with the sequential
	// reference to near machine precision before any timing is reported.
	s := serve.NewBatcher(m, serve.Config{
		MaxBatch: conc, FlushWindow: window, QueueLimit: 4 * conc,
	})
	defer s.Close()
	ref := m.Apply(ins[0])
	got, err := s.Apply(context.Background(), ins[0])
	if err != nil {
		return err
	}
	maxRel := 0.0
	for i, v := range ref {
		if d := math.Abs(got[i]-v) / (1 + math.Abs(v)); d > maxRel {
			maxRel = d
		}
	}
	if maxRel > 1e-14 {
		return fmt.Errorf("bench: batched result diverges from sequential apply (maxreldiff %.1e)", maxRel)
	}

	naive := func(v []float64) error {
		y := make([]float64, n)
		m.ApplyTo(y, v)
		return nil
	}
	batched := func(v []float64) error {
		_, err := s.Apply(context.Background(), v)
		return err
	}

	tb := newTable(out, "batched service vs per-request apply",
		"mode", "conc", "requests", "wall_ms", "rps", "p50_ms", "p99_ms")
	type measured struct {
		rps, p50, p99 float64
	}
	results := map[string]measured{}
	for _, mode := range []struct {
		name  string
		apply func([]float64) error
	}{{"per-request", naive}, {"batched", batched}} {
		// Warm-up pass at full concurrency, then the timed run.
		if err := offerLoad(conc, 1, ins, mode.apply, nil); err != nil {
			return err
		}
		var lats []time.Duration
		t0 := time.Now()
		if err := offerLoad(conc, perClient, ins, mode.apply, &lats); err != nil {
			return err
		}
		wall := time.Since(t0)
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		total := len(lats)
		p50 := lats[total/2]
		p99 := lats[(total*99)/100]
		r := measured{
			rps: float64(total) / wall.Seconds(),
			p50: float64(p50.Microseconds()) / 1000,
			p99: float64(p99.Microseconds()) / 1000,
		}
		results[mode.name] = r
		tb.row(mode.name, fmt.Sprintf("%d", conc), fmt.Sprintf("%d", total),
			fmt.Sprintf("%.1f", float64(wall.Microseconds())/1000),
			fmt.Sprintf("%.1f", r.rps),
			fmt.Sprintf("%.2f", r.p50), fmt.Sprintf("%.2f", r.p99))
	}
	tb.flush()

	speedup := results["batched"].rps / results["per-request"].rps
	st := s.Stats()
	fmt.Fprintf(out, "\nthroughput speedup %.2fx; batcher: %d batches, occupancy mean %.1f p99 %d, queue wait p99 %dµs, maxreldiff %.1e\n",
		speedup, st.Batches, st.BatchOccupancy.Mean, st.BatchOccupancy.P99, st.QueueWaitUS.P99, maxRel)

	for _, name := range []string{"per-request", "batched"} {
		r := results[name]
		line := struct {
			Exp        string  `json:"exp"`
			N          int     `json:"n"`
			Kernel     string  `json:"kernel"`
			Conc       int     `json:"conc"`
			WindowUS   int64   `json:"window_us"`
			Mode       string  `json:"mode"`
			RPS        float64 `json:"rps"`
			P50MS      float64 `json:"p50_ms"`
			P99MS      float64 `json:"p99_ms"`
			Speedup    float64 `json:"speedup,omitempty"`
			MaxRelDiff float64 `json:"maxreldiff"`
		}{
			Exp: "serve", N: n, Kernel: k.Name(), Conc: conc,
			WindowUS: window.Microseconds(), Mode: name,
			RPS: r.rps, P50MS: r.p50, P99MS: r.p99, MaxRelDiff: maxRel,
		}
		if name == "batched" {
			line.Speedup = speedup
		}
		js, err := json.Marshal(line)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "BENCH %s\n", js)
	}
	return nil
}

// offerLoad runs conc closed-loop clients, each issuing perClient requests
// round-robin over the input vectors. When lats is non-nil, per-request
// latencies are appended to it. The first request error aborts the run.
func offerLoad(conc, perClient int, ins [][]float64, apply func([]float64) error, lats *[]time.Duration) error {
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		first error
	)
	for c := 0; c < conc; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			local := make([]time.Duration, 0, perClient)
			for r := 0; r < perClient; r++ {
				b := ins[(c+r)%len(ins)]
				t0 := time.Now()
				if err := apply(b); err != nil {
					mu.Lock()
					if first == nil {
						first = err
					}
					mu.Unlock()
					return
				}
				local = append(local, time.Since(t0))
			}
			if lats != nil {
				mu.Lock()
				*lats = append(*lats, local...)
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	return first
}
