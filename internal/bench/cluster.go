package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"time"

	"h2ds/internal/api"
	"h2ds/internal/cluster"
	"h2ds/internal/par"
	"h2ds/internal/registry"
	"h2ds/internal/serve"
)

// ClusterRun is one measured routing path in the cluster experiment.
type ClusterRun struct {
	N        int    `json:"n"`
	Nodes    int    `json:"nodes"`
	Replicas int    `json:"replicas"`
	Path     string `json:"path"` // direct-apply, routed-apply, sharded-apply

	MedianNS     int64   `json:"median_ns"`
	P99NS        int64   `json:"p99_ns"`
	ThroughputRS float64 `json:"throughput_rps"` // under Conc concurrent clients
}

// clusterN picks the tenant size for the scale.
func clusterN(scale string) int {
	switch scale {
	case "tiny":
		return 2000
	case "medium":
		return 20000
	case "paper":
		return 40000
	default: // small
		return 8000
	}
}

// ClusterBench measures the multi-node serving stack end to end: three
// in-process nodes behind a router, one replicated tenant, and three routing
// paths — a direct single-node apply (the no-cluster baseline), the routed
// apply rotating over owner+replica, and the sharded scatter/gather apply.
// Every HTTP hop is real (httptest listeners on loopback), so the deltas
// are the routing/replication/scatter overheads, not simulations. Results
// land in the cluster section of BENCH_matvec.json.
func ClusterBench(opt Options) error {
	out := opt.out()
	k, err := opt.kernel()
	if err != nil {
		return err
	}
	n := clusterN(opt.Scale)
	workers := par.Resolve(opt.Threads)
	const nodesN, replicas = 3, 2
	fmt.Fprintf(out, "\n# cluster: routed apply across %d nodes (kernel=%s n=%d workers=%d conc=%d)\n",
		nodesN, k.Name(), n, workers, opt.conc())

	// Three nodes + router, all in-process.
	regs := make([]*registry.Registry, nodesN)
	members := make([]string, nodesN)
	srvs := make([]*httptest.Server, nodesN)
	for i := range regs {
		regs[i] = registry.New(registry.Config{Workers: 1, Batch: serve.Config{Flushers: 2}})
		srvs[i] = httptest.NewServer(cluster.NodeHandler(regs[i], 60*time.Second, api.Limits{}))
		members[i] = srvs[i].URL
		defer regs[i].Close()
		defer srvs[i].Close()
	}
	rt := cluster.NewRouter(cluster.RouterConfig{Members: members, Replicas: replicas, Timeout: 120 * time.Second})
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	const name = "bench"
	spec := registry.BuildSpec{
		Kernel: k.Name(), Dist: "cube", N: n, Dim: 3, Tol: 1e-6,
		Mem: "otf", Leaf: leafSizeFor(n), Seed: opt.seed(), Workers: opt.Threads,
		Sampler: func() string {
			if opt.Sampler != "" {
				return opt.Sampler
			}
			return "anchornet"
		}(),
	}
	body, _ := json.Marshal(api.CreateRequest{Name: name, Spec: spec})
	resp, err := http.Post(front.URL+"/matrices", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("cluster bench: create status %d", resp.StatusCode)
	}
	owner, err := waitReplicated(front.URL, name, replicas-1, 10*time.Minute)
	if err != nil {
		return err
	}

	b := randVec(n, opt.seed()+7)
	applyBody, _ := json.Marshal(api.ApplyRequest{B: b})
	shardBody, _ := json.Marshal(struct {
		B       []float64 `json:"b"`
		NShards int       `json:"nshards"`
	}{b, replicas})

	paths := []struct {
		label string
		url   string
		body  []byte
	}{
		{"direct-apply", owner + "/matrices/" + name + "/apply", applyBody},
		{"routed-apply", front.URL + "/matrices/" + name + "/apply", applyBody},
		{"sharded-apply", front.URL + "/matrices/" + name + "/shardapply", shardBody},
	}

	tb := newTable(out, "routing-path latency and throughput",
		"path", "median_ms", "p99_ms", "rps")
	runs := make([]ClusterRun, 0, len(paths))
	for _, p := range paths {
		run, err := measureClusterPath(p.url, p.body, opt)
		if err != nil {
			return fmt.Errorf("cluster bench: %s: %w", p.label, err)
		}
		run.N, run.Nodes, run.Replicas, run.Path = n, nodesN, replicas, p.label
		runs = append(runs, run)
		tb.row(p.label,
			fmt.Sprintf("%.2f", float64(run.MedianNS)/1e6),
			fmt.Sprintf("%.2f", float64(run.P99NS)/1e6),
			fmt.Sprintf("%.1f", run.ThroughputRS))
	}
	tb.flush()

	path := opt.JSONOut
	if path == "" {
		path = "BENCH_matvec.json"
	}
	rep := MatvecReport{Experiment: "matvec", Scale: opt.Scale, Kernel: k.Name(), Workers: workers}
	if buf, err := os.ReadFile(path); err == nil {
		json.Unmarshal(buf, &rep)
	}
	rep.Cluster = runs
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "\nwrote %s\n", path)
	return nil
}

// waitReplicated polls the router until the named instance has the wanted
// replica count installed, returning the owner URL.
func waitReplicated(front, name string, want int, timeout time.Duration) (string, error) {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(front + "/cluster/route/" + name)
		if err != nil {
			return "", err
		}
		var ri cluster.RouteInfo
		err = json.NewDecoder(resp.Body).Decode(&ri)
		resp.Body.Close()
		if err != nil {
			return "", err
		}
		if len(ri.Replicated) >= want {
			return ri.Owner, nil
		}
		if time.Now().After(deadline) {
			return "", fmt.Errorf("replication of %q timed out: %d of %d replicas", name, len(ri.Replicated), want)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// measureClusterPath fires opt.conc() concurrent clients, each issuing reps
// sequential requests at the path, and reports the latency distribution and
// aggregate throughput.
func measureClusterPath(url string, body []byte, opt Options) (ClusterRun, error) {
	// Warm-up: pages generators, settles batcher workspaces and connections.
	if err := postOnce(url, body); err != nil {
		return ClusterRun{}, err
	}
	conc := opt.conc()
	reps := opt.reps()
	lat := make([][]int64, conc)
	var firstErr error
	var errMu sync.Mutex
	var wg sync.WaitGroup
	t0 := time.Now()
	for c := 0; c < conc; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			lat[c] = make([]int64, 0, reps)
			for i := 0; i < reps; i++ {
				r0 := time.Now()
				if err := postOnce(url, body); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
				lat[c] = append(lat[c], time.Since(r0).Nanoseconds())
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(t0)
	if firstErr != nil {
		return ClusterRun{}, firstErr
	}
	var all []int64
	for _, ls := range lat {
		all = append(all, ls...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return ClusterRun{
		MedianNS:     all[len(all)/2],
		P99NS:        all[len(all)*99/100],
		ThroughputRS: float64(len(all)) / wall.Seconds(),
	}, nil
}

func postOnce(url string, body []byte) error {
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var ar api.ApplyResponse
	if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	if len(ar.Y) == 0 {
		return fmt.Errorf("empty product")
	}
	return nil
}
