package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRelTolSweepSmoke runs the error-controlled sweep end to end at tiny
// scale: the runner's own assertions (error within 10x of request, monotone
// rank/memory) must hold, and the JSON merge must coexist with a matvec
// report in the same file.
func TestRelTolSweepSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	path := filepath.Join(t.TempDir(), "report.json")

	// Seed the file with a matvec section the sweep must preserve.
	seed := MatvecReport{Experiment: "matvec", Scale: "tiny", Kernel: "coulomb", Workers: 2,
		Runs: []MatvecRun{{N: 1500, Leaf: 25, Mode: "normal"}}}
	buf, err := json.Marshal(seed)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	opt := tinyOpt(&out)
	opt.JSONOut = path
	if err := RelTolSweep(opt); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"error-controlled build sweep", "1e-02", "1e-08", "within 10x"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("reltol output missing %q:\n%s", want, out.String())
		}
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep MatvecReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 1 || rep.Runs[0].N != 1500 {
		t.Fatalf("sweep clobbered the matvec section: %+v", rep.Runs)
	}
	if len(rep.RelTolSweep) != len(relTolAxis) {
		t.Fatalf("reltol_sweep rows = %d, want %d", len(rep.RelTolSweep), len(relTolAxis))
	}
	for i, run := range rep.RelTolSweep {
		if run.MeasuredErr > 10*run.RelTol || run.EstRelErr > 10*run.RelTol {
			t.Fatalf("row %d violates the 10x contract: %+v", i, run)
		}
		if i > 0 && run.MaxRank < rep.RelTolSweep[i-1].MaxRank {
			t.Fatalf("rank not monotone at row %d: %+v", i, rep.RelTolSweep)
		}
	}

	// A single-point sweep honors Options.RelTol.
	out.Reset()
	opt.RelTol = 1e-3
	if err := RelTolSweep(opt); err != nil {
		t.Fatal(err)
	}
	raw, _ = os.ReadFile(path)
	rep = MatvecReport{}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.RelTolSweep) != 1 || rep.RelTolSweep[0].RelTol != 1e-3 {
		t.Fatalf("single-point sweep: %+v", rep.RelTolSweep)
	}
}
