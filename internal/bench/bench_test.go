package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"h2ds/internal/core"
	"h2ds/internal/kernel"
	"h2ds/internal/pointset"
)

// tinyOpt returns options small enough for unit tests.
func tinyOpt(buf *bytes.Buffer) Options {
	return Options{Scale: "tiny", Threads: 2, Seed: 1, MatVecReps: 1, Conc: 4, Out: buf}
}

func TestMeasureProducesSaneNumbers(t *testing.T) {
	pts := pointset.Cube(3000, 3, 1)
	r, err := Measure(pts, kernel.Coulomb{}, core.Config{
		Kind: core.DataDriven, Mode: core.OnTheFly, Tol: 1e-6, LeafSize: 60, Workers: 2,
	}, Options{Seed: 1, MatVecReps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.N != 3000 || r.Dim != 3 || r.Kernel != "coulomb" {
		t.Fatalf("identity fields wrong: %+v", r)
	}
	if r.TConstMS <= 0 || r.TMatVecMS <= 0 || r.MemKiB <= 0 {
		t.Fatalf("timings/memory not measured: %+v", r)
	}
	if r.RelErr > 1e-4 || r.MaxRank == 0 {
		t.Fatalf("accuracy fields wrong: %+v", r)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := Run("fig99", Options{}); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

func TestExperimentsList(t *testing.T) {
	ids := Experiments()
	if len(ids) != 17 {
		t.Fatalf("experiment list changed unexpectedly: %v", ids)
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate experiment id %s", id)
		}
		seen[id] = true
	}
}

func TestFig2Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var buf bytes.Buffer
	if err := Fig2(tinyOpt(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"per-level basis ranks", "dd_med", "interp_rank", "achieved relerr"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig2 output missing %q:\n%s", want, out)
		}
	}
}

func TestInterpFeasible(t *testing.T) {
	if _, ok := interpFeasible(1e-8, 3); !ok {
		t.Fatal("3-D at 1e-8 must be feasible")
	}
	if rank, ok := interpFeasible(1e-8, 5); ok {
		t.Fatalf("5-D at 1e-8 should exceed the cap (rank %d)", rank)
	}
	if corePFromTol(1e-8) <= corePFromTol(1e-2) {
		t.Fatal("p must grow with accuracy")
	}
}

func TestLeafSizeForMonotone(t *testing.T) {
	if leafSizeFor(1000) > leafSizeFor(10000) || leafSizeFor(10000) > leafSizeFor(100000) {
		t.Fatal("leaf size must not shrink with n")
	}
}

func TestMedianInt(t *testing.T) {
	if medianInt([]int{5, 1, 9}) != 5 {
		t.Fatal("median of 3")
	}
	if medianInt([]int{2}) != 2 {
		t.Fatal("median of 1")
	}
	in := []int{3, 1, 2}
	medianInt(in)
	if in[0] != 3 {
		t.Fatal("median must not mutate input")
	}
}

func TestTreeDepthForGrows(t *testing.T) {
	if treeDepthFor(500, 50) >= treeDepthFor(50000, 50) {
		t.Fatal("depth must grow with n")
	}
}

func TestEstimateRowsZeroOnExact(t *testing.T) {
	pts := pointset.Cube(300, 3, 2)
	b := randVec(300, 3)
	y := core.DirectApply(pts, kernel.Coulomb{}, b, 0)
	if e := estimateRows(pts, kernel.Coulomb{}, b, y, 12, 5); e > 1e-14 {
		t.Fatalf("estimate on exact product should be ~0, got %g", e)
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.reps() != 3 {
		t.Fatal("default reps")
	}
	if o.seed() != 1 {
		t.Fatal("default seed")
	}
	if o.sampler().Name() != "anchornet" {
		t.Fatal("default sampler")
	}
	if o.rhs() != 8 {
		t.Fatal("default rhs")
	}
	if k, err := o.kernel(); err != nil || k.Name() != "coulomb" {
		t.Fatalf("default kernel: %v, %v", k, err)
	}
	if o.conc() != 32 {
		t.Fatal("default conc")
	}
	if o.window() != 500*time.Microsecond {
		t.Fatal("default window")
	}
	if _, err := (Options{Kernel: "nope"}).kernel(); err == nil {
		t.Fatal("unknown kernel accepted")
	}
	if o.out() == nil {
		t.Fatal("default out")
	}
	o2 := Options{Sampler: "fps", Seed: 9, MatVecReps: 5}
	if o2.sampler().Name() != "fps" || o2.seed() != 9 || o2.reps() != 5 {
		t.Fatal("explicit options ignored")
	}
}

// TestRunnersSmoke drives every remaining experiment runner end to end at
// the tiny test scale and sanity-checks the report structure.
func TestRunnersSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, tc := range []struct {
		exp  string
		want []string
	}{
		{"fig4", []string{"distribution cube", "distribution sphere", "distribution dino", "data-driven", "interpolation"}},
		{"fig5", []string{"dimension d=2", "dimension d=5", "skipped", "exceeds cap"}},
		{"fig6", []string{"all four combinations", "normal", "on-the-fly"}},
		{"table1", []string{"Table I", "interpolation", "data-driven"}},
		{"fig7", []string{"threads sweep", "14"}},
		{"fig8", []string{"tolerance sweep", "1e-02", "1e-08"}},
		{"fig9", []string{"kernel coulomb", "kernel coulomb3", "kernel exp", "kernel gaussian"}},
		{"rhs", []string{"multi-RHS batch apply", "batched apply vs sequential", "on-the-fly", "speedup"}},
		{"serve", []string{"request batching under concurrent load", "per-request", "batched",
			`BENCH {"exp":"serve"`, `"speedup"`}},
	} {
		var buf bytes.Buffer
		opt := tinyOpt(&buf)
		if err := Run(tc.exp, opt); err != nil {
			t.Fatalf("%s: %v", tc.exp, err)
		}
		out := buf.String()
		for _, w := range tc.want {
			if !strings.Contains(out, w) {
				t.Fatalf("%s output missing %q:\n%s", tc.exp, w, out)
			}
		}
	}
}

// TestAblationSmoke exercises the sampler + format ablation end to end on a
// reduced problem by invoking the runner directly.
func TestAblationSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var buf bytes.Buffer
	opt := tinyOpt(&buf)
	if err := Ablation(opt); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"anchornet", "fps", "random", "H2 (nested)", "H (non-nested)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ablation output missing %q", want)
		}
	}
}
