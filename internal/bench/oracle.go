package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"time"

	"h2ds/internal/core"
	"h2ds/internal/kernel"
	"h2ds/internal/oracle"
	"h2ds/internal/par"
	"h2ds/internal/pointset"
)

// OracleRun is one row of the geometry-oblivious construction comparison in
// BENCH_matvec.json: the same Gram matrix built through the coordinate
// kernel path ("kernel") and through the dense entry oracle ("oracle" — no
// coordinates, no formula), with build cost, apply latency, memory, the
// error certificate, and the measured error against the dense reference.
type OracleRun struct {
	Path          string  `json:"path"` // "kernel" or "oracle"
	N             int     `json:"n"`
	Leaf          int     `json:"leaf"`
	BuildMS       float64 `json:"build_ms"`
	MedianApplyNS int64   `json:"median_apply_ns"`
	MemKiB        float64 `json:"mem_kib"`
	EstRelErr     float64 `json:"est_relerr"`      // build-time a-posteriori certificate
	MeasuredErr   float64 `json:"measured_relerr"` // apply vs the dense reference, one random vector
	AgreeErr      float64 `json:"agree_relerr"`    // oracle vs kernel apply ("oracle" rows only)
}

// oracleN picks the comparison's problem size per scale. The matrix is
// materialized densely (n² float64), so the sizes stay modest.
func oracleN(scale string) int {
	switch scale {
	case "medium":
		return 2000
	case "paper":
		return 4000
	default: // tiny, small
		return 600
	}
}

// OracleBench builds one Gram matrix twice — from coordinates through the
// kernel, and geometry-obliviously through the dense entry oracle — and
// reports what dropping the coordinates costs: the oracle pays an O(n)
// entry-sampled embedding plus block reads against a stored matrix, the
// kernel path evaluates its formula. The rows land in the oracle section of
// BENCH_matvec.json.
//
// Self-asserting: both paths' error certificates and measured errors must
// land under 10x the requested tolerance and the two applies must agree to
// 20x of it, so running the experiment IS the cross-validation check.
//
// The Gram matrix is always gaussian, ignoring the harness-wide -kernel
// (whose default is coulomb): the entry-sampled embedding derives distances
// from K_ii + K_jj − 2K_ij, which needs a genuine positive-definite
// diagonal — coulomb's zero-diagonal convention makes those pseudo-distances
// collapse and the geometry-oblivious path lose its geometry.
func OracleBench(opt Options) error {
	out := opt.out()
	const (
		reltol = 1e-6
		kname  = "gaussian"
	)
	k, err := kernel.ByName(kname)
	if err != nil {
		return err
	}
	n := oracleN(opt.Scale)
	leaf := leafSizeFor(n)
	workers := par.Resolve(opt.Threads)

	fmt.Fprintf(out, "oracle: geometry-oblivious construction, kernel=%s n=%d leaf=%d reltol=%.0e workers=%d\n\n",
		kname, n, leaf, reltol, workers)

	pts := pointset.Cube(n, 3, opt.seed())
	data := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			data[i*n+j] = k.EvalPair(pts.At(i), pts.At(j))
		}
	}
	src, err := oracle.NewDense(n, data, true)
	if err != nil {
		return err
	}
	b := randVec(n, opt.seed()+3)
	ref := make([]float64, n)
	for i := 0; i < n; i++ {
		row := data[i*n : (i+1)*n]
		var s float64
		for j, v := range row {
			s += v * b[j]
		}
		ref[i] = s
	}

	cfg := core.Config{Kind: core.DataDriven, Mode: core.Normal,
		RelTol: reltol, LeafSize: leaf, Workers: opt.Threads, Sampler: opt.sampler()}

	measure := func(path string, build func() (*core.Matrix, error)) (OracleRun, []float64, error) {
		t0 := time.Now()
		m, err := build()
		if err != nil {
			return OracleRun{}, nil, fmt.Errorf("%s build: %w", path, err)
		}
		buildMS := float64(time.Since(t0).Microseconds()) / 1000

		ws := m.NewWorkspace()
		y := make([]float64, n)
		m.ApplyToWith(ws, y, b) // warm-up
		times := make([]time.Duration, 0, opt.reps())
		for r := 0; r < opt.reps(); r++ {
			t1 := time.Now()
			m.ApplyToWith(ws, y, b)
			times = append(times, time.Since(t1))
		}
		ws.Close()
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })

		var num, den float64
		for i := range y {
			num += (y[i] - ref[i]) * (y[i] - ref[i])
			den += ref[i] * ref[i]
		}
		run := OracleRun{
			Path: path, N: n, Leaf: leaf,
			BuildMS:       buildMS,
			MedianApplyNS: times[len(times)/2].Nanoseconds(),
			MemKiB:        m.Memory().KiB(),
			EstRelErr:     m.Stats().EstRelErr,
			MeasuredErr:   math.Sqrt(num / den),
		}
		return run, y, nil
	}

	kernelRun, yk, err := measure("kernel", func() (*core.Matrix, error) { return core.Build(pts, k, cfg) })
	if err != nil {
		return err
	}
	oracleRun, yo, err := measure("oracle", func() (*core.Matrix, error) { return core.BuildOracle(src, cfg) })
	if err != nil {
		return err
	}
	var num, den float64
	for i := range yo {
		num += (yo[i] - yk[i]) * (yo[i] - yk[i])
		den += yk[i] * yk[i]
	}
	oracleRun.AgreeErr = math.Sqrt(num / den)
	runs := []OracleRun{kernelRun, oracleRun}

	tb := newTable(out, "construction path comparison",
		"path", "build ms", "apply µs", "mem KiB", "est err", "measured err", "agree")
	for _, r := range runs {
		agree := "-"
		if r.Path == "oracle" {
			agree = fmt.Sprintf("%.2e", r.AgreeErr)
		}
		tb.row(r.Path, fmt.Sprintf("%.1f", r.BuildMS),
			fmt.Sprintf("%.1f", float64(r.MedianApplyNS)/1000),
			fmt.Sprintf("%.1f", r.MemKiB),
			fmt.Sprintf("%.2e", r.EstRelErr), fmt.Sprintf("%.2e", r.MeasuredErr), agree)
	}
	tb.flush()

	// The cross-validation contract, asserted on the fresh measurements.
	for _, r := range runs {
		if r.EstRelErr > 10*reltol {
			return fmt.Errorf("oracle bench: %s certificate %.3e exceeds 10x reltol %g", r.Path, r.EstRelErr, reltol)
		}
		if r.MeasuredErr > 10*reltol {
			return fmt.Errorf("oracle bench: %s measured error %.3e exceeds 10x reltol %g", r.Path, r.MeasuredErr, reltol)
		}
	}
	if oracleRun.AgreeErr > 20*reltol {
		return fmt.Errorf("oracle bench: paths disagree by %.3e (limit %g)", oracleRun.AgreeErr, 20*reltol)
	}

	// Merge into BENCH_matvec.json: this experiment owns the oracle section,
	// every other experiment's rows are preserved.
	path := opt.JSONOut
	if path == "" {
		path = "BENCH_matvec.json"
	}
	rep := MatvecReport{Experiment: "matvec", Scale: opt.Scale, Kernel: k.Name(), Workers: workers}
	if buf, err := os.ReadFile(path); err == nil {
		json.Unmarshal(buf, &rep)
	}
	rep.Oracle = runs
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "\nwrote %s (oracle section)\n", path)
	return nil
}
