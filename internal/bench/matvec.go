package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"testing"
	"time"

	"h2ds/internal/core"
	"h2ds/internal/par"
	"h2ds/internal/pointset"
)

// MatvecRun is one measured matvec configuration in the machine-readable
// perf-trajectory report. Times are medians over repeated single applies;
// allocs are the allocator's view of one steady-state ApplyToWith.
type MatvecRun struct {
	N               int     `json:"n"`
	Leaf            int     `json:"leaf"`
	Depth           int     `json:"depth"`
	Mode            string  `json:"mode"`
	MedianApplyNS   int64   `json:"median_apply_ns"`
	AllocsPerOp     float64 `json:"allocs_per_op"`
	BlockStoreBytes int64   `json:"block_store_bytes"`
	MemKiB          float64 `json:"mem_kib"`
	RelErr          float64 `json:"relerr"`
}

// MatvecReport is the top-level BENCH_matvec.json document. It exists so the
// matvec hot path's trajectory (latency, allocs, block-store footprint) is
// comparable across commits without parsing the human-readable tables.
type MatvecReport struct {
	Experiment string      `json:"experiment"`
	Scale      string      `json:"scale"`
	Kernel     string      `json:"kernel"`
	Workers    int         `json:"workers"`
	Runs       []MatvecRun `json:"runs"`

	// RelTolSweep is the error-controlled build sweep (the reltol
	// experiment): requested tolerance vs achieved rank, memory, and
	// measured error. Owned by RelTolSweep; MatvecJSON preserves it.
	RelTolSweep []RelTolRun `json:"reltol_sweep,omitempty"`

	// Cluster is the multi-node routed-apply trajectory (the cluster
	// experiment): latency and throughput through the router, sharded
	// scatter/gather, and the direct single-node baseline. Owned by
	// ClusterBench; MatvecJSON preserves it.
	Cluster []ClusterRun `json:"cluster,omitempty"`

	// Oracle is the geometry-oblivious construction comparison (the oracle
	// experiment): the same Gram matrix built through the coordinate/kernel
	// path and through the dense entry oracle, side by side. Owned by
	// OracleBench; MatvecJSON preserves it.
	Oracle []OracleRun `json:"oracle,omitempty"`

	// Build is the construction-time trajectory (the build experiment):
	// median build time and peak RSS across problem sizes and worker counts,
	// with the seed-era construction path (unblocked CPQR, per-entry
	// assembly) as the single-worker baseline. Owned by BuildBench;
	// MatvecJSON preserves it.
	Build []BuildRun `json:"build,omitempty"`
}

// matvecCases returns the (n, leaf) grid for the given scale. The small-n
// deep-tree case (small leaves force many levels) is the configuration where
// per-level runtime overhead, not flops, dominates the apply.
func matvecCases(scale string) [][2]int {
	switch scale {
	case "tiny":
		return [][2]int{{1500, 25}, {3000, 50}}
	case "medium":
		return [][2]int{{5000, 25}, {20000, 100}, {40000, 100}}
	case "paper":
		return [][2]int{{5000, 25}, {20000, 100}, {80000, 200}, {160000, 200}}
	default: // small
		return [][2]int{{5000, 25}, {20000, 100}}
	}
}

// MatvecJSON measures the steady-state apply across the scale's (n, leaf)
// grid in both memory modes and writes BENCH_matvec.json (path overridable
// with -json), printing the same rows as an aligned table. The JSON file is
// the cross-PR perf record: CI uploads it as an artifact on every run.
func MatvecJSON(opt Options) error {
	out := opt.out()
	k, err := opt.kernel()
	if err != nil {
		return err
	}
	workers := par.Resolve(opt.Threads)
	fmt.Fprintf(out, "\n# matvec: steady-state apply trajectory (kernel=%s workers=%d scale=%s)\n",
		k.Name(), workers, opt.Scale)
	tb := newTable(out, "median apply latency and allocs",
		"n", "leaf", "depth", "mode", "apply_us", "allocs/op", "blockstore_KiB", "relerr")

	rep := MatvecReport{Experiment: "matvec", Scale: opt.Scale, Kernel: k.Name(), Workers: workers}
	for _, c := range matvecCases(opt.Scale) {
		n, leaf := c[0], c[1]
		pts := pointset.Cube(n, 3, opt.seed())
		b := randVec(n, opt.seed()+7)
		measure := func(m *core.Matrix, label string) {
			ws := m.NewWorkspace()
			y := make([]float64, n)
			m.ApplyToWith(ws, y, b) // warm-up: grows scratch, pages generators

			samples := opt.reps()
			if samples < 5 {
				samples = 5
			}
			times := make([]int64, samples)
			for i := range times {
				t0 := time.Now()
				m.ApplyToWith(ws, y, b)
				times[i] = time.Since(t0).Nanoseconds()
			}
			sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
			median := times[len(times)/2]

			allocs := testing.AllocsPerRun(5, func() { m.ApplyToWith(ws, y, b) })
			mem := m.Memory()
			run := MatvecRun{
				N: n, Leaf: leaf, Depth: m.Tree.Depth(), Mode: label,
				MedianApplyNS: median, AllocsPerOp: allocs,
				BlockStoreBytes: mem.Coupling + mem.Nearfield,
				MemKiB:          mem.KiB(),
				RelErr:          m.RelErrorVs(b, y, core.DefaultErrorRows, opt.seed()+13),
			}
			rep.Runs = append(rep.Runs, run)
			tb.row(fmt.Sprintf("%d", n), fmt.Sprintf("%d", leaf), fmt.Sprintf("%d", run.Depth),
				run.Mode, fmt.Sprintf("%.1f", float64(median)/1000),
				fmt.Sprintf("%.1f", allocs),
				fmt.Sprintf("%.1f", float64(run.BlockStoreBytes)/1024),
				fmt.Sprintf("%.2e", run.RelErr))
		}

		cfg := core.Config{Kind: core.DataDriven, Mode: core.Normal, Tol: 1e-6, RelTol: opt.RelTol,
			LeafSize: leaf, Workers: opt.Threads, Sampler: opt.sampler()}
		norm, err := core.Build(pts, k, cfg)
		if err != nil {
			return err
		}
		measure(norm, core.Normal.String())
		// The hybrid budget sweep derives views from the Normal build (shared
		// generators, only the selected blocks re-stored), so the fraction axis
		// costs a fraction of a rebuild per point. The fraction scales the
		// Normal build's actual stored-block footprint.
		full := norm.Memory().Coupling + norm.Memory().Nearfield
		for _, fracPct := range []int64{25, 50, 75} {
			h := norm.WithStorageBudget(full * fracPct / 100)
			measure(h, fmt.Sprintf("hybrid-%d", fracPct))
		}

		cfg.Mode = core.OnTheFly
		otf, err := core.Build(pts, k, cfg)
		if err != nil {
			return err
		}
		measure(otf, core.OnTheFly.String())
	}
	tb.flush()

	path := opt.JSONOut
	if path == "" {
		path = "BENCH_matvec.json"
	}
	// Carry over the other experiments' sections from a previous run of the
	// same file; this experiment only owns the matvec rows.
	if buf, err := os.ReadFile(path); err == nil {
		var old MatvecReport
		if json.Unmarshal(buf, &old) == nil {
			rep.RelTolSweep = old.RelTolSweep
			rep.Cluster = old.Cluster
			rep.Oracle = old.Oracle
			rep.Build = old.Build
		}
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "\nwrote %s\n", path)
	return nil
}
