package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"h2ds/internal/core"
	"h2ds/internal/kernel"
	"h2ds/internal/mat"
	"h2ds/internal/par"
	"h2ds/internal/pointset"
)

// MatvecRun is one measured matvec configuration in the machine-readable
// perf-trajectory report. Times are medians over repeated single applies;
// allocs are the allocator's view of one steady-state ApplyToWith.
type MatvecRun struct {
	N               int     `json:"n"`
	Leaf            int     `json:"leaf"`
	Depth           int     `json:"depth"`
	Mode            string  `json:"mode"`
	Workers         int     `json:"workers"`
	MedianApplyNS   int64   `json:"median_apply_ns"`
	AllocsPerOp     float64 `json:"allocs_per_op"`
	BlockStoreBytes int64   `json:"block_store_bytes"`
	MemKiB          float64 `json:"mem_kib"`
	RelErr          float64 `json:"relerr"`
}

// ScalingRun is one point of the multi-worker scaling sweep: the largest
// case of the scale, re-applied at each worker count through the barrier-free
// scheduler, with the speedup normalized to the single-worker median.
type ScalingRun struct {
	N             int     `json:"n"`
	Leaf          int     `json:"leaf"`
	Mode          string  `json:"mode"`
	Workers       int     `json:"workers"`
	MedianApplyNS int64   `json:"median_apply_ns"`
	Speedup       float64 `json:"speedup"`
}

// TileRun is one per-kernel fused-tile micro-benchmark row: BlockVecAdd on a
// square tile with the AVX dispatch on versus forced off. Speedup is
// scalar/simd, > 1 meaning the vector path wins.
type TileRun struct {
	Kernel   string  `json:"kernel"`
	Tile     int     `json:"tile"`
	ScalarNS int64   `json:"scalar_ns"`
	SIMDNS   int64   `json:"simd_ns"`
	Speedup  float64 `json:"speedup"`
}

// MatvecReport is the top-level BENCH_matvec.json document. It exists so the
// matvec hot path's trajectory (latency, allocs, block-store footprint) is
// comparable across commits without parsing the human-readable tables.
type MatvecReport struct {
	Experiment string      `json:"experiment"`
	Scale      string      `json:"scale"`
	Kernel     string      `json:"kernel"`
	Workers    int         `json:"workers"`
	Runs       []MatvecRun `json:"runs"`

	// Scaling is the multi-worker strong-scaling sweep over the scheduler
	// (workers 1/2/4/8 on the largest case, per memory mode), and Tiles the
	// per-kernel SIMD-vs-scalar fused-tile micro-bench. Both are owned by the
	// matvec experiment and rewritten on every run.
	Scaling []ScalingRun `json:"scaling,omitempty"`
	Tiles   []TileRun    `json:"tiles,omitempty"`

	// RelTolSweep is the error-controlled build sweep (the reltol
	// experiment): requested tolerance vs achieved rank, memory, and
	// measured error. Owned by RelTolSweep; MatvecJSON preserves it.
	RelTolSweep []RelTolRun `json:"reltol_sweep,omitempty"`

	// Cluster is the multi-node routed-apply trajectory (the cluster
	// experiment): latency and throughput through the router, sharded
	// scatter/gather, and the direct single-node baseline. Owned by
	// ClusterBench; MatvecJSON preserves it.
	Cluster []ClusterRun `json:"cluster,omitempty"`

	// Oracle is the geometry-oblivious construction comparison (the oracle
	// experiment): the same Gram matrix built through the coordinate/kernel
	// path and through the dense entry oracle, side by side. Owned by
	// OracleBench; MatvecJSON preserves it.
	Oracle []OracleRun `json:"oracle,omitempty"`

	// Build is the construction-time trajectory (the build experiment):
	// median build time and peak RSS across problem sizes and worker counts,
	// with the seed-era construction path (unblocked CPQR, per-entry
	// assembly) as the single-worker baseline. Owned by BuildBench;
	// MatvecJSON preserves it.
	Build []BuildRun `json:"build,omitempty"`
}

// matvecCases returns the (n, leaf) grid for the given scale. The small-n
// deep-tree case (small leaves force many levels) is the configuration where
// per-level runtime overhead, not flops, dominates the apply.
func matvecCases(scale string) [][2]int {
	switch scale {
	case "tiny":
		return [][2]int{{1500, 25}, {3000, 50}}
	case "medium":
		return [][2]int{{5000, 25}, {20000, 100}, {40000, 100}}
	case "paper":
		return [][2]int{{5000, 25}, {20000, 100}, {80000, 200}, {160000, 200}}
	default: // small
		return [][2]int{{5000, 25}, {20000, 100}}
	}
}

// MatvecJSON measures the steady-state apply across the scale's (n, leaf)
// grid in both memory modes and writes BENCH_matvec.json (path overridable
// with -json), printing the same rows as an aligned table. The JSON file is
// the cross-PR perf record: CI uploads it as an artifact on every run.
func MatvecJSON(opt Options) error {
	out := opt.out()
	k, err := opt.kernel()
	if err != nil {
		return err
	}
	workers := par.Resolve(opt.Threads)
	fmt.Fprintf(out, "\n# matvec: steady-state apply trajectory (kernel=%s workers=%d scale=%s)\n",
		k.Name(), workers, opt.Scale)
	tb := newTable(out, "median apply latency and allocs",
		"n", "leaf", "depth", "mode", "apply_us", "allocs/op", "blockstore_KiB", "relerr")

	rep := MatvecReport{Experiment: "matvec", Scale: opt.Scale, Kernel: k.Name(), Workers: workers}
	for _, c := range matvecCases(opt.Scale) {
		n, leaf := c[0], c[1]
		pts := pointset.Cube(n, 3, opt.seed())
		b := randVec(n, opt.seed()+7)
		measure := func(m *core.Matrix, label string) {
			ws := m.NewWorkspace()
			y := make([]float64, n)
			m.ApplyToWith(ws, y, b) // warm-up: grows scratch, pages generators

			samples := opt.reps()
			if samples < 5 {
				samples = 5
			}
			times := make([]int64, samples)
			for i := range times {
				t0 := time.Now()
				m.ApplyToWith(ws, y, b)
				times[i] = time.Since(t0).Nanoseconds()
			}
			sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
			median := times[len(times)/2]

			allocs := testing.AllocsPerRun(5, func() { m.ApplyToWith(ws, y, b) })
			mem := m.Memory()
			run := MatvecRun{
				N: n, Leaf: leaf, Depth: m.Tree.Depth(), Mode: label, Workers: workers,
				MedianApplyNS: median, AllocsPerOp: allocs,
				BlockStoreBytes: mem.Coupling + mem.Nearfield,
				MemKiB:          mem.KiB(),
				RelErr:          m.RelErrorVs(b, y, core.DefaultErrorRows, opt.seed()+13),
			}
			rep.Runs = append(rep.Runs, run)
			tb.row(fmt.Sprintf("%d", n), fmt.Sprintf("%d", leaf), fmt.Sprintf("%d", run.Depth),
				run.Mode, fmt.Sprintf("%.1f", float64(median)/1000),
				fmt.Sprintf("%.1f", allocs),
				fmt.Sprintf("%.1f", float64(run.BlockStoreBytes)/1024),
				fmt.Sprintf("%.2e", run.RelErr))
		}

		cfg := core.Config{Kind: core.DataDriven, Mode: core.Normal, Tol: 1e-6, RelTol: opt.RelTol,
			LeafSize: leaf, Workers: opt.Threads, Sampler: opt.sampler()}
		norm, err := core.Build(pts, k, cfg)
		if err != nil {
			return err
		}
		measure(norm, core.Normal.String())
		// The hybrid budget sweep derives views from the Normal build (shared
		// generators, only the selected blocks re-stored), so the fraction axis
		// costs a fraction of a rebuild per point. The fraction scales the
		// Normal build's actual stored-block footprint.
		full := norm.Memory().Coupling + norm.Memory().Nearfield
		for _, fracPct := range []int64{25, 50, 75} {
			h := norm.WithStorageBudget(full * fracPct / 100)
			measure(h, fmt.Sprintf("hybrid-%d", fracPct))
		}

		cfg.Mode = core.OnTheFly
		otf, err := core.Build(pts, k, cfg)
		if err != nil {
			return err
		}
		measure(otf, core.OnTheFly.String())
	}
	tb.flush()

	if err := matvecScaling(opt, k, &rep); err != nil {
		return err
	}
	matvecTiles(opt, &rep)

	path := opt.JSONOut
	if path == "" {
		path = "BENCH_matvec.json"
	}
	// Carry over the other experiments' sections from a previous run of the
	// same file; this experiment only owns the matvec rows.
	if buf, err := os.ReadFile(path); err == nil {
		var old MatvecReport
		if json.Unmarshal(buf, &old) == nil {
			rep.RelTolSweep = old.RelTolSweep
			rep.Cluster = old.Cluster
			rep.Oracle = old.Oracle
			rep.Build = old.Build
		}
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "\nwrote %s\n", path)
	return nil
}

// matvecScaling measures the strong-scaling profile of the barrier-free
// scheduler: the scale's largest (n, leaf) case applied at workers 1/2/4/8 in
// each memory mode. Every worker count must reproduce the single-worker
// result bitwise (the scheduler's core contract — checked unconditionally);
// on hosts with at least four CPUs the sweep additionally self-asserts that
// four workers beat one by Options.MinScale on the normal-mode apply.
func matvecScaling(opt Options, k kernel.Kernel, rep *MatvecReport) error {
	out := opt.out()
	cases := matvecCases(opt.Scale)
	n, leaf := cases[len(cases)-1][0], cases[len(cases)-1][1]
	pts := pointset.Cube(n, 3, opt.seed())
	b := randVec(n, opt.seed()+7)

	cfg := core.Config{Kind: core.DataDriven, Mode: core.Normal, Tol: 1e-6, RelTol: opt.RelTol,
		LeafSize: leaf, Workers: 1, Sampler: opt.sampler()}
	norm, err := core.Build(pts, k, cfg)
	if err != nil {
		return err
	}
	full := norm.Memory().Coupling + norm.Memory().Nearfield
	cfg.Mode = core.OnTheFly
	otf, err := core.Build(pts, k, cfg)
	if err != nil {
		return err
	}
	mats := []struct {
		m     *core.Matrix
		label string
	}{
		{norm, core.Normal.String()},
		{norm.WithStorageBudget(full / 2), "hybrid-50"},
		{otf, core.OnTheFly.String()},
	}

	fmt.Fprintf(out, "\n# matvec scaling: workers sweep on n=%d leaf=%d (scheduler path)\n", n, leaf)
	tb := newTable(out, "strong scaling, median apply", "mode", "workers", "apply_us", "speedup")
	var normW1, normW4 int64
	for _, mc := range mats {
		var ref []float64
		var w1 int64
		for _, w := range []int{1, 2, 4, 8} {
			mc.m.Cfg.Workers = w
			ws := mc.m.NewWorkspace()
			y := make([]float64, n)
			mc.m.ApplyToWith(ws, y, b) // warm-up: grows scratch, spins up the pool

			samples := opt.reps()
			if samples < 5 {
				samples = 5
			}
			times := make([]int64, samples)
			for i := range times {
				t0 := time.Now()
				mc.m.ApplyToWith(ws, y, b)
				times[i] = time.Since(t0).Nanoseconds()
			}
			ws.Close()
			sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
			median := times[len(times)/2]

			if w == 1 {
				w1 = median
				ref = append([]float64(nil), y...)
			} else {
				for i := range y {
					if y[i] != ref[i] {
						return fmt.Errorf("matvec scaling: %s w=%d result differs bitwise from w=1 at index %d", mc.label, w, i)
					}
				}
			}
			sp := float64(w1) / float64(median)
			rep.Scaling = append(rep.Scaling, ScalingRun{
				N: n, Leaf: leaf, Mode: mc.label, Workers: w, MedianApplyNS: median, Speedup: sp})
			tb.row(mc.label, fmt.Sprintf("%d", w),
				fmt.Sprintf("%.1f", float64(median)/1000), fmt.Sprintf("%.2f", sp))
			if mc.label == core.Normal.String() {
				switch w {
				case 1:
					normW1 = median
				case 4:
					normW4 = median
				}
			}
		}
	}
	tb.flush()

	minScale := opt.minScale()
	if minScale <= 0 {
		return nil
	}
	if runtime.NumCPU() < 4 {
		fmt.Fprintf(out, "\nscaling assert skipped: host has %d CPUs, need >= 4 for the w4/w1 wall-clock check (bitwise equality across worker counts was still enforced)\n", runtime.NumCPU())
		return nil
	}
	got := float64(normW1) / float64(normW4)
	if got < minScale {
		return fmt.Errorf("matvec scaling: normal-mode w4 speedup %.2fx below required %.2fx (w1=%v w4=%v)",
			got, minScale, time.Duration(normW1), time.Duration(normW4))
	}
	fmt.Fprintf(out, "\nscaling assert: normal-mode w4 speedup %.2fx >= required %.2fx\n", got, minScale)
	return nil
}

// matvecTiles micro-benchmarks the fused BlockVecAdd tile per registered
// kernel with the AVX dispatch forced off versus on. Skipped (with a note)
// when the host has no AVX — the speedup column would be noise.
func matvecTiles(opt Options, rep *MatvecReport) {
	out := opt.out()
	if !mat.SIMDAvailable() {
		fmt.Fprintf(out, "\n# matvec tiles: skipped (no AVX on this host)\n")
		return
	}
	const tile = 192
	x := pointset.Cube(tile, 3, opt.seed()+101)
	yp := pointset.Cube(tile, 3, opt.seed()+102)
	rows := make([]int, tile)
	cols := make([]int, tile)
	for i := range rows {
		rows[i], cols[i] = i, i
	}
	v := randVec(tile, opt.seed()+103)
	acc := make([]float64, tile)

	timeOne := func(k kernel.Kernel) int64 {
		const inner = 8
		samples := opt.reps()
		if samples < 5 {
			samples = 5
		}
		times := make([]int64, samples)
		for s := range times {
			t0 := time.Now()
			for i := 0; i < inner; i++ {
				kernel.BlockVecAdd(acc, k, x, rows, yp, cols, v)
			}
			times[s] = time.Since(t0).Nanoseconds() / inner
		}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		return times[len(times)/2]
	}

	tb := newTable(out, fmt.Sprintf("fused tile micro-bench (BlockVecAdd %dx%d, median per call)", tile, tile),
		"kernel", "scalar_us", "simd_us", "speedup")
	defer mat.SetSIMD(true)
	for _, name := range kernel.Names() {
		k, err := kernel.ByName(name)
		if err != nil {
			continue
		}
		kernel.BlockVecAdd(acc, k, x, rows, yp, cols, v) // warm-up
		mat.SetSIMD(false)
		scalar := timeOne(k)
		mat.SetSIMD(true)
		simd := timeOne(k)
		sp := float64(scalar) / float64(simd)
		rep.Tiles = append(rep.Tiles, TileRun{
			Kernel: name, Tile: tile, ScalarNS: scalar, SIMDNS: simd, Speedup: sp})
		tb.row(name, fmt.Sprintf("%.2f", float64(scalar)/1000),
			fmt.Sprintf("%.2f", float64(simd)/1000), fmt.Sprintf("%.2f", sp))
	}
	tb.flush()
}
