package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"h2ds/internal/registry"
)

// RegistryBench measures the multi-tenant registry's build pipeline and its
// zero-downtime hot swap. Part one submits a fleet of build specs through
// the bounded async queue at several worker-pool widths and reports wall
// time to all-Ready (the build-queue scaling the registry exists for). Part
// two keeps closed-loop clients applying against one instance while it is
// rebuilt in the background, reporting request latency with and without a
// swap in flight — the zero-downtime claim, measured. Errors during the
// swap window abort the benchmark.
func RegistryBench(opt Options) error {
	out := opt.out()
	k, err := opt.kernel()
	if err != nil {
		return err
	}
	n, fleet := 2000, 8
	switch opt.Scale {
	case "tiny":
		n, fleet = 800, 4
	case "medium":
		n, fleet = 8000, 8
	case "paper":
		n, fleet = 20000, 12
	}

	fmt.Fprintf(out, "\n# registry: async build queue and hot-swap (n=%d per instance, fleet=%d, %s, on-the-fly)\n",
		n, fleet, k.Name())

	specFor := func(i int) registry.BuildSpec {
		return registry.BuildSpec{
			Kernel: k.Name(), Dist: "cube", N: n, Dim: 3, Tol: 1e-6,
			Basis: "dd", Mem: "otf", Leaf: leafSizeFor(n),
			Sampler: samplerName(opt), Seed: opt.seed() + int64(i),
			Workers: opt.Threads,
		}
	}

	// Part 1: build-queue throughput vs worker-pool width.
	tb := newTable(out, "build queue: fleet wall time vs workers",
		"workers", "fleet", "wall_ms", "builds_per_s")
	type qrow struct {
		workers int
		wallMS  float64
		rate    float64
	}
	var qrows []qrow
	for _, workers := range []int{1, 2, 4} {
		r := registry.New(registry.Config{Workers: workers, QueueDepth: fleet})
		t0 := time.Now()
		for i := 0; i < fleet; i++ {
			if err := r.Create(fmt.Sprintf("b%d", i), specFor(i)); err != nil {
				r.Close()
				return err
			}
		}
		for i := 0; i < fleet; i++ {
			if err := r.WaitReady(context.Background(), fmt.Sprintf("b%d", i)); err != nil {
				r.Close()
				return err
			}
		}
		wall := time.Since(t0)
		r.Close()
		row := qrow{
			workers: workers,
			wallMS:  float64(wall.Microseconds()) / 1000,
			rate:    float64(fleet) / wall.Seconds(),
		}
		qrows = append(qrows, row)
		tb.row(fmt.Sprintf("%d", workers), fmt.Sprintf("%d", fleet),
			fmt.Sprintf("%.1f", row.wallMS), fmt.Sprintf("%.2f", row.rate))
	}
	tb.flush()

	// Part 2: apply latency through a hot swap. Closed-loop clients hammer
	// one instance; mid-run the same name is rebuilt. Latencies are split
	// into steady-state and swap-window populations.
	conc := opt.conc()
	if conc > 16 {
		conc = 16 // latency benchmark, not a throughput soak
	}
	r := registry.New(registry.Config{Workers: 2})
	defer r.Close()
	if err := r.Create("hot", specFor(0)); err != nil {
		return err
	}
	if err := r.WaitReady(context.Background(), "hot"); err != nil {
		return err
	}
	b := randVec(n, opt.seed()+77)

	type sample struct {
		start time.Time
		dur   time.Duration
	}
	var (
		mu       sync.Mutex
		samples  []sample
		firstErr error
	)
	stop := make(chan struct{})
	swapActive := func() bool {
		inf, ok := r.Get("hot")
		return ok && inf.Rebuilding
	}
	var wg sync.WaitGroup
	for c := 0; c < conc; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				t0 := time.Now()
				_, err := r.Apply(context.Background(), "hot", b)
				d := time.Since(t0)
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = err
				}
				samples = append(samples, sample{t0, d})
				mu.Unlock()
			}
		}()
	}

	// Steady-state warm-up, then trigger the rebuild and wait it out.
	time.Sleep(200 * time.Millisecond)
	tSwap := time.Now()
	if err := r.Create("hot", specFor(1)); err != nil {
		close(stop)
		wg.Wait()
		return err
	}
	for swapActive() {
		time.Sleep(time.Millisecond)
	}
	swapWall := time.Since(tSwap)
	tSwapEnd := time.Now()
	time.Sleep(100 * time.Millisecond) // post-swap steady state
	close(stop)
	wg.Wait()
	if firstErr != nil {
		return fmt.Errorf("bench: apply failed during hot swap: %w", firstErr)
	}

	// Split samples by overlap with the rebuild window: any request in
	// flight while the swap was in progress is a swap-window sample.
	var steady, swapping []time.Duration
	for _, s := range samples {
		if s.start.Before(tSwapEnd) && s.start.Add(s.dur).After(tSwap) {
			swapping = append(swapping, s.dur)
		} else {
			steady = append(steady, s.dur)
		}
	}

	pct := func(lats []time.Duration, q float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		return float64(lats[int(float64(len(lats)-1)*q)].Microseconds()) / 1000
	}
	tb = newTable(out, "apply latency across a hot swap (zero errors required)",
		"phase", "requests", "p50_ms", "p99_ms")
	tb.row("steady", fmt.Sprintf("%d", len(steady)),
		fmt.Sprintf("%.2f", pct(steady, 0.5)), fmt.Sprintf("%.2f", pct(steady, 0.99)))
	tb.row("swap-window", fmt.Sprintf("%d", len(swapping)),
		fmt.Sprintf("%.2f", pct(swapping, 0.5)), fmt.Sprintf("%.2f", pct(swapping, 0.99)))
	tb.flush()
	st := r.Stats()
	fmt.Fprintf(out, "\nswap completed in %v under load; registry: %d builds, %d swap drains, 0 apply errors\n",
		swapWall.Round(time.Millisecond), st.BuildsSucceeded, st.SwapDrains)

	for _, row := range qrows {
		line := struct {
			Exp      string  `json:"exp"`
			Part     string  `json:"part"`
			N        int     `json:"n"`
			Kernel   string  `json:"kernel"`
			Workers  int     `json:"workers"`
			Fleet    int     `json:"fleet"`
			WallMS   float64 `json:"wall_ms"`
			BuildsPS float64 `json:"builds_per_s"`
		}{"registry", "build-queue", n, k.Name(), row.workers, fleet, row.wallMS, row.rate}
		js, err := json.Marshal(line)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "BENCH %s\n", js)
	}
	line := struct {
		Exp         string  `json:"exp"`
		Part        string  `json:"part"`
		N           int     `json:"n"`
		Kernel      string  `json:"kernel"`
		Conc        int     `json:"conc"`
		SwapWallMS  float64 `json:"swap_wall_ms"`
		SteadyP99MS float64 `json:"steady_p99_ms"`
		SwapP99MS   float64 `json:"swap_p99_ms"`
		Errors      int     `json:"errors"`
	}{"registry", "hot-swap", n, k.Name(), conc,
		float64(swapWall.Microseconds()) / 1000, pct(steady, 0.99), pct(swapping, 0.99), 0}
	js, err := json.Marshal(line)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "BENCH %s\n", js)
	return nil
}

// samplerName resolves the Options sampler to its registry-spec name.
func samplerName(opt Options) string {
	if opt.Sampler == "" {
		return "anchornet"
	}
	return opt.Sampler
}
