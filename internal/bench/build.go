package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"h2ds/internal/core"
	"h2ds/internal/par"
	"h2ds/internal/pointset"
)

// BuildRun is one measured construction configuration in the build section of
// BENCH_matvec.json. Mode distinguishes the current build path ("blocked":
// blocked CPQR + fused panel assembly) from the pre-acceleration baseline
// ("seed": unblocked CPQR, per-entry assembly, via core.Config.
// SeedConstruction); the blocked/seed pair at workers=1 is the cross-PR
// build-speed record. Build time is the median over Samples full builds;
// PeakRSSKiB is the process high-water mark after the row's builds (ru_maxrss
// is monotone over the process lifetime, so rows only ever raise it).
type BuildRun struct {
	N             int     `json:"n"`
	Leaf          int     `json:"leaf"`
	Workers       int     `json:"workers"`
	Mode          string  `json:"mode"`
	RelTol        float64 `json:"reltol"`
	Samples       int     `json:"samples"`
	MedianBuildNS int64   `json:"median_build_ns"`
	PeakRSSKiB    int64   `json:"peak_rss_kib"`
	EstRelErr     float64 `json:"est_relerr"`
	RelErr        float64 `json:"relerr"`
}

// buildCases picks the construction sweep sizes per scale. Every scale that
// CI or the acceptance run uses keeps n=20000 reachable: the paper-scale
// improvement target is measured there.
func buildCases(scale string) []int {
	switch scale {
	case "tiny":
		return []int{2000}
	case "medium":
		return []int{5000, 20000, 40000}
	case "paper":
		return []int{20000, 80000}
	default: // small
		return []int{5000, 20000}
	}
}

// buildWorkerSweep is the worker axis: 1 (the like-for-like baseline
// comparison point) up to the resolved thread count, powers of two between.
func buildWorkerSweep(resolved int) []int {
	ws := []int{1}
	for w := 2; w < resolved; w *= 2 {
		ws = append(ws, w)
	}
	if resolved > 1 {
		ws = append(ws, resolved)
	}
	return ws
}

// BuildBench measures wall-clock construction time across problem sizes and
// worker counts in error-controlled mode, comparing the current build path
// against the seed-era one (unblocked CPQR, per-entry assembly) at one
// worker. Rows land in the build section of BENCH_matvec.json next to the
// apply trajectory.
//
// Self-asserting: every build's a-posteriori certificate must come in at or
// under the requested tolerance, so running the experiment (CI runs it at
// -scale tiny, n=2000) is itself a correctness check on the accelerated
// construction path.
func BuildBench(opt Options) error {
	out := opt.out()
	k, err := opt.kernel()
	if err != nil {
		return err
	}
	reltol := opt.RelTol
	if reltol <= 0 {
		reltol = 1e-6
	}
	resolved := par.Resolve(opt.Threads)
	samples := opt.reps()
	if samples < 3 {
		samples = 3
	}
	fmt.Fprintf(out, "\n# build: construction-time trajectory (kernel=%s reltol=%.0e scale=%s samples=%d)\n",
		k.Name(), reltol, opt.Scale, samples)
	tb := newTable(out, "median build time and peak RSS",
		"n", "leaf", "workers", "mode", "build_ms", "peak_rss_MiB", "est err", "relerr")

	var runs []BuildRun
	measure := func(n, leaf, workers int, mode string, cfg core.Config) error {
		pts := pointset.Cube(n, 3, opt.seed())
		times := make([]int64, samples)
		var m *core.Matrix
		for s := range times {
			t0 := time.Now()
			mm, err := core.Build(pts, k, cfg)
			if err != nil {
				return fmt.Errorf("build n=%d %s: %w", n, mode, err)
			}
			times[s] = time.Since(t0).Nanoseconds()
			m = mm
		}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })

		b := randVec(n, opt.seed()+7)
		y := m.Apply(b)
		run := BuildRun{
			N: n, Leaf: leaf, Workers: workers, Mode: mode, RelTol: reltol,
			Samples:       samples,
			MedianBuildNS: times[len(times)/2],
			PeakRSSKiB:    peakRSSKiB(),
			EstRelErr:     m.Stats().EstRelErr,
			RelErr:        m.RelErrorVs(b, y, core.DefaultErrorRows, opt.seed()+13),
		}
		if run.EstRelErr > reltol {
			return fmt.Errorf("build bench: n=%d %s certificate %.3e exceeds requested reltol %g",
				n, mode, run.EstRelErr, reltol)
		}
		runs = append(runs, run)
		tb.row(fmt.Sprintf("%d", n), fmt.Sprintf("%d", leaf), fmt.Sprintf("%d", workers), mode,
			fmt.Sprintf("%.1f", float64(run.MedianBuildNS)/1e6),
			fmt.Sprintf("%.1f", float64(run.PeakRSSKiB)/1024),
			fmt.Sprintf("%.2e", run.EstRelErr), fmt.Sprintf("%.2e", run.RelErr))
		return nil
	}

	for _, n := range buildCases(opt.Scale) {
		leaf := leafSizeFor(n)
		// Normal mode: stored-block assembly is part of the build (and of the
		// acceleration), and the certificate apply reads stored blocks instead
		// of re-evaluating the kernel, so the rows measure construction, not
		// the apply path.
		base := core.Config{Kind: core.DataDriven, Mode: core.Normal, RelTol: reltol,
			LeafSize: leaf, Sampler: opt.sampler()}

		// Seed-era baseline, one worker: the denominator of the speedup record.
		seedCfg := base
		seedCfg.Workers = 1
		seedCfg.SeedConstruction = true
		if err := measure(n, leaf, 1, "seed", seedCfg); err != nil {
			return err
		}
		for _, w := range buildWorkerSweep(resolved) {
			cfg := base
			cfg.Workers = w
			if err := measure(n, leaf, w, "blocked", cfg); err != nil {
				return err
			}
		}
	}
	tb.flush()

	// Report the headline single-worker speedup per n.
	for _, n := range buildCases(opt.Scale) {
		var seedNS, blockedNS int64
		for _, r := range runs {
			if r.N == n && r.Workers == 1 {
				switch r.Mode {
				case "seed":
					seedNS = r.MedianBuildNS
				case "blocked":
					blockedNS = r.MedianBuildNS
				}
			}
		}
		if seedNS > 0 && blockedNS > 0 {
			fmt.Fprintf(out, "\nn=%d single-worker build: seed %.1f ms, blocked %.1f ms (%.2fx)\n",
				n, float64(seedNS)/1e6, float64(blockedNS)/1e6, float64(seedNS)/float64(blockedNS))
		}
	}

	// Merge into BENCH_matvec.json: this experiment owns the build section,
	// every other experiment's rows are preserved.
	path := opt.JSONOut
	if path == "" {
		path = "BENCH_matvec.json"
	}
	rep := MatvecReport{Experiment: "matvec", Scale: opt.Scale, Kernel: k.Name(), Workers: resolved}
	if buf, err := os.ReadFile(path); err == nil {
		json.Unmarshal(buf, &rep)
	}
	rep.Build = runs
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "\nwrote %s (build section)\n", path)
	return nil
}
