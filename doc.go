// Package h2ds is a from-scratch Go reproduction of "Accelerating Parallel
// Hierarchical Matrix-Vector Products via Data-Driven Sampling" (Erlandson,
// Cai, Xi, Chow — IPDPS 2020): H² hierarchical kernel matrices with nested
// bases built by hierarchical anchor-net sampling + interpolative
// decomposition, a tensor-grid Chebyshev interpolation baseline, and an
// on-the-fly memory mode that regenerates coupling and nearfield blocks
// from indices at matvec time.
//
// The implementation lives under internal/ (see DESIGN.md for the module
// map); runnable entry points are cmd/h2bench (regenerates every table and
// figure of the paper's evaluation), cmd/h2info (one-configuration
// inspector), and the programs under examples/. The benchmarks in
// bench_test.go are testing.B twins of the harness experiments.
package h2ds
