package h2ds

// Cross-module integration tests: the iterative solvers driving H² and H
// operators, exactly the many-matvecs-per-construction workload the paper's
// normal memory mode targets (§I-A, §VI-B).

import (
	"math"
	"testing"

	"h2ds/internal/core"
	"h2ds/internal/hmatrix"
	"h2ds/internal/kernel"
	"h2ds/internal/pointset"
	"h2ds/internal/solver"
)

func TestCGOnH2Operator(t *testing.T) {
	// Solve (K + σI) x = b with the Gaussian kernel (SPD) through the H²
	// operator and verify against the exact dense operator.
	n := 2000
	pts := pointset.Cube(n, 3, 1)
	k := kernel.Gaussian{Scale: 0.5}
	m, err := core.Build(pts, k, core.Config{Kind: core.DataDriven, Mode: core.Normal, Tol: 1e-8, LeafSize: 80})
	if err != nil {
		t.Fatal(err)
	}
	sigma := 0.5
	b := benchVec(n, 2)
	res := solver.CG(solver.Shifted{Op: m, Sigma: sigma}, b, 1e-9, 600)
	if !res.Converged {
		t.Fatalf("CG did not converge: residual %g after %d iters", res.Residual, res.Iterations)
	}
	// Exact-operator residual.
	ax := core.DirectApply(pts, k, res.X, 0)
	var num, den float64
	for i := range ax {
		r := b[i] - (ax[i] + sigma*res.X[i])
		num += r * r
		den += b[i] * b[i]
	}
	if rel := math.Sqrt(num / den); rel > 1e-6 {
		t.Fatalf("exact residual %g", rel)
	}
}

func TestGMRESOnOTFOperator(t *testing.T) {
	// Second-kind system (I + cK) x = g through the on-the-fly operator.
	n := 2500
	pts := pointset.Annulus(n, 0.5, 1, 3)
	k := kernel.Exponential{}
	m, err := core.Build(pts, k, core.Config{Kind: core.DataDriven, Mode: core.OnTheFly, Tol: 1e-8, LeafSize: 80})
	if err != nil {
		t.Fatal(err)
	}
	c := 1.0 / float64(n)
	op := solver.Func(func(y, x []float64) {
		m.ApplyTo(y, x)
		for i := range y {
			y[i] = x[i] + c*y[i]
		}
	})
	g := benchVec(n, 4)
	res := solver.GMRES(op, g, 30, 1e-10, 500)
	if !res.Converged {
		t.Fatalf("GMRES did not converge: residual %g", res.Residual)
	}
	// Verify with exact rows.
	rows := core.DirectRows(pts, k, res.X, 12, 5)
	var num, den float64
	for _, r := range rows {
		exact := res.X[r.Row] + c*r.Exact
		d := exact - g[r.Row]
		num += d * d
		den += g[r.Row] * g[r.Row]
	}
	if rel := math.Sqrt(num / den); rel > 1e-7 {
		t.Fatalf("exact-row residual %g", rel)
	}
}

func TestH2AndHAgree(t *testing.T) {
	// The two hierarchical formats approximate the same matrix; at equal
	// tolerance their products must agree with each other far more tightly
	// than with a coarse approximation.
	n := 3000
	pts := pointset.Cube(n, 3, 6)
	b := benchVec(n, 7)
	tol := 1e-8
	h2, err := core.Build(pts, kernel.Coulomb{}, core.Config{Kind: core.DataDriven, Mode: core.OnTheFly, Tol: tol, LeafSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	hm, err := hmatrix.Build(pts, kernel.Coulomb{}, hmatrix.Config{Tol: tol, LeafSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	y2 := h2.Apply(b)
	yh := hm.Apply(b)
	var num, den float64
	for i := range y2 {
		d := y2[i] - yh[i]
		num += d * d
		den += y2[i] * y2[i]
	}
	if rel := math.Sqrt(num / den); rel > 1e-5 {
		t.Fatalf("formats disagree: %g", rel)
	}
}

func TestSamplingAmortizationSpeedsRebuilds(t *testing.T) {
	// Rebuilding for a second kernel with ReuseTree/ReuseHierarchy must
	// skip the tree and sampling phases entirely.
	pts := pointset.Cube(4000, 3, 8)
	first, err := core.Build(pts, kernel.Coulomb{}, core.Config{Kind: core.DataDriven, Mode: core.OnTheFly, Tol: 1e-7, LeafSize: 80})
	if err != nil {
		t.Fatal(err)
	}
	second, err := core.Build(pts, kernel.Exponential{}, core.Config{
		Kind: core.DataDriven, Mode: core.OnTheFly, Tol: 1e-7, LeafSize: 80,
		ReuseTree: first.Tree, ReuseHierarchy: first.Hierarchy(),
	})
	if err != nil {
		t.Fatal(err)
	}
	st := second.Stats()
	if st.SampleTime > first.Stats().SampleTime/10 {
		t.Fatalf("reused sampling should be ~free, took %v vs fresh %v", st.SampleTime, first.Stats().SampleTime)
	}
	b := benchVec(4000, 9)
	y := second.Apply(b)
	if e := second.RelErrorVs(b, y, 12, 10); e > 1e-5 {
		t.Fatalf("amortized build inaccurate: %g", e)
	}
}
