// Command h2cluster fronts a fleet of h2serve nodes as one logical matvec
// service. It owns the consistent-hash ring mapping matrix names to owner
// nodes, proxies the single-node /matrices wire protocol to the right
// holder, replicates new builds to read replicas over the serialized
// spill-file format, fans reads across owner+replicas with
// readiness-checked failover, and coordinates sharded scatter/gather
// applies that split one product across the holders of a tenant.
//
// Every h2serve process is already a capable cluster node (it mounts the
// /cluster/* peer endpoints); h2cluster adds only the routing layer:
//
//	h2serve -addr :8081 &     h2serve -addr :8082 &     h2serve -addr :8083 &
//	h2cluster -addr :8080 -members http://localhost:8081,http://localhost:8082,http://localhost:8083
//
//	curl -s localhost:8080/matrices -d '{"name":"g","spec":{"kernel":"gaussian","n":5000}}'
//	curl -s localhost:8080/cluster/route/g          # owner, replicas, replication status
//	curl -s localhost:8080/matrices/g/apply -d '{"b": [...]}'
//	curl -s localhost:8080/matrices/g/shardapply -d '{"b": [...], "nshards": 2}'
//	curl -s --data-binary @gram.f64 'localhost:8080/matrices/d/data?sym=1&reltol=1e-6'
//	                                                # dense upload, streamed to the owner
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"h2ds/internal/cluster"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "h2cluster: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	members := flag.String("members", "", "comma-separated node base URLs (e.g. http://10.0.0.1:8081,...)")
	replicas := flag.Int("replicas", 2, "nodes holding each matrix, owner included (1 = no replication)")
	vnodes := flag.Int("vnodes", cluster.DefaultVnodes, "virtual nodes per member on the hash ring")
	timeout := flag.Duration("timeout", 60*time.Second, "per proxied request deadline")
	healthTTL := flag.Duration("healthttl", 2*time.Second, "readiness probe cache lifetime")
	maxBodyMB := flag.Int64("maxbody", 0, "JSON request body cap in MiB, answered with 413 over the cap (0 = 64)")
	maxUploadMB := flag.Int64("maxupload", 0, "dense-upload body cap in MiB for POST /matrices/{name}/data (0 = 8192)")
	workers := flag.Int("workers", 0, "default apply worker count injected into create specs that leave workers unset (0 = each node uses its GOMAXPROCS)")
	flag.Parse()

	var mlist []string
	for _, m := range strings.Split(*members, ",") {
		if m = strings.TrimSpace(m); m != "" {
			mlist = append(mlist, strings.TrimRight(m, "/"))
		}
	}
	if len(mlist) == 0 {
		return fmt.Errorf("no members: pass -members with at least one node URL")
	}

	rt := cluster.NewRouter(cluster.RouterConfig{
		Members:   mlist,
		Replicas:  *replicas,
		Vnodes:    *vnodes,
		Timeout:   *timeout,
		HealthTTL: *healthTTL,
		MaxBody:   *maxBodyMB << 20,
		MaxUpload: *maxUploadMB << 20,
		Workers:   *workers,
	})
	srv := &http.Server{Addr: *addr, Handler: rt.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Printf("h2cluster: routing %d members on %s (replicas=%d vnodes=%d)\n",
		len(mlist), *addr, *replicas, *vnodes)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	fmt.Println("h2cluster: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return srv.Shutdown(shutCtx)
}
