// Command h2bench regenerates the paper's tables and figures.
//
// Usage:
//
//	h2bench -exp fig4                 # one experiment
//	h2bench -exp all -scale small     # the full evaluation, laptop scale
//	h2bench -exp table1 -scale paper  # the paper's problem sizes
//
// Experiments: fig2, fig4, fig5, fig6, table1, fig7, fig8, fig9, ablation,
// rhs (multi-RHS batch apply; sweep width with -rhs), serve (request
// batching under concurrent load; tune with -conc and -window), registry
// (build queue + hot swap), matvec (steady-state apply latency/allocs with
// a machine-readable JSON report; path via -json), reltol (error-controlled
// build sweep; self-asserting), cluster (multi-node routed applies), oracle
// (geometry-oblivious dense-oracle build vs the kernel path;
// self-asserting cross-validation), build (construction-time trajectory:
// blocked vs seed-era build path across worker counts; self-asserting).
// Output is a plain-text report with one aligned table per panel; see
// EXPERIMENTS.md for how each maps onto the paper.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"h2ds/internal/bench"
	"h2ds/internal/kernel"
)

func main() {
	exp := flag.String("exp", "", "experiment id: "+strings.Join(bench.Experiments(), ", ")+", or all")
	scale := flag.String("scale", "small", "sweep scale: small, medium, paper")
	threads := flag.Int("threads", 0, "worker count (0 = GOMAXPROCS)")
	sampler := flag.String("sampler", "anchornet", "data-driven sampler: anchornet, fps, random")
	seed := flag.Int64("seed", 1, "workload seed")
	reps := flag.Int("reps", 3, "matvec repetitions per timing")
	rhs := flag.Int("rhs", 8, "largest batch width for the multi-RHS sweep (rhs experiment)")
	kern := flag.String("kernel", "coulomb", "kernel for single-kernel experiments: "+strings.Join(kernel.Names(), ", "))
	conc := flag.Int("conc", 32, "client concurrency (serve experiment)")
	window := flag.Duration("window", 500*time.Microsecond, "batcher flush window (serve experiment)")
	jsonOut := flag.String("json", "", "output path for machine-readable reports (matvec experiment; \"\" = BENCH_matvec.json)")
	reltol := flag.Float64("reltol", 0, "error-controlled build tolerance for single-build experiments (0 = fixed-parameter builds)")
	minScale := flag.Float64("minscale", 2.0, "required w4/w1 speedup for the matvec scaling assert (negative disables; auto-skipped on hosts with < 4 CPUs)")
	flag.Parse()

	if _, err := kernel.ByName(*kern); err != nil {
		fmt.Fprintf(os.Stderr, "h2bench: %v\n", err)
		os.Exit(2)
	}

	if *exp == "" {
		fmt.Fprintln(os.Stderr, "h2bench: -exp is required")
		flag.Usage()
		os.Exit(2)
	}
	opt := bench.Options{
		Scale:      *scale,
		Threads:    *threads,
		Sampler:    *sampler,
		Seed:       *seed,
		MatVecReps: *reps,
		RHS:        *rhs,
		Kernel:     *kern,
		Conc:       *conc,
		Window:     *window,
		JSONOut:    *jsonOut,
		RelTol:     *reltol,
		MinScale:   *minScale,
		Out:        os.Stdout,
	}
	if err := bench.Run(*exp, opt); err != nil {
		fmt.Fprintf(os.Stderr, "h2bench: %v\n", err)
		os.Exit(1)
	}
}
