// Command h2info builds one H² configuration and prints its construction
// summary: tree shape, per-component memory, rank profile, timings, and the
// 12-row error estimate. Useful for tuning LeafSize / Tol / SampleBudget on
// a new workload.
//
// Usage:
//
//	h2info -n 40000 -dist cube -kernel coulomb -tol 1e-8 -basis dd -mem otf
//	h2info -load matrix.h2    # print a serialized matrix's summary instead
//
// -load handles kernel-less streams (matrices built from a dense upload
// through the entry oracle): the kernel prints as "(none)" and the sampled-
// row error check — which needs a kernel to evaluate reference rows — is
// skipped.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"h2ds/internal/core"
	"h2ds/internal/kernel"
	"h2ds/internal/pointset"
	"h2ds/internal/sample"
)

func main() {
	n := flag.Int("n", 20000, "number of points")
	dim := flag.Int("dim", 3, "dimension (cube distribution only)")
	dist := flag.String("dist", "cube", "distribution: cube, sphere, dino, ball, mixture")
	kern := flag.String("kernel", "coulomb", "kernel: "+strings.Join(kernel.Names(), ", "))
	tol := flag.Float64("tol", 1e-8, "target relative accuracy")
	reltol := flag.Float64("reltol", 0, "error-controlled build: derive ranks and sample sizes from this tolerance and report the a-posteriori estimate plus per-level ranks (0 = fixed-parameter build via -tol)")
	basis := flag.String("basis", "dd", "construction: dd (data-driven) or interp")
	mem := flag.String("mem", "otf", "memory mode: normal or otf")
	leaf := flag.Int("leaf", 0, "leaf size (0 = default)")
	eta := flag.Float64("eta", 0, "admissibility parameter (0 = 0.7)")
	threads := flag.Int("threads", 0, "worker count (0 = GOMAXPROCS)")
	samplerName := flag.String("sampler", "anchornet", "sampler: anchornet, fps, random")
	budget := flag.Int("budget", 0, "sample budget per node (0 = derived)")
	seed := flag.Int64("seed", 1, "workload seed")
	load := flag.String("load", "", "serialized matrix to summarize (skips the build; other knobs ignored)")
	flag.Parse()

	if *load != "" {
		if err := printLoaded(*load, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "h2info: %v\n", err)
			os.Exit(1)
		}
		return
	}

	pts, ok := pointset.Named(*dist, *n, *dim, *seed)
	if !ok {
		fmt.Fprintf(os.Stderr, "h2info: unknown distribution %q\n", *dist)
		os.Exit(2)
	}
	k, err := kernel.ByName(*kern)
	if err != nil {
		fmt.Fprintf(os.Stderr, "h2info: %v\n", err)
		os.Exit(2)
	}
	s, ok := sample.Named(*samplerName)
	if !ok {
		fmt.Fprintf(os.Stderr, "h2info: unknown sampler %q\n", *samplerName)
		os.Exit(2)
	}
	cfg := core.Config{
		Tol: *tol, RelTol: *reltol, LeafSize: *leaf, Eta: *eta, Workers: *threads,
		Sampler: s, SampleBudget: *budget,
	}
	switch *basis {
	case "dd":
		cfg.Kind = core.DataDriven
	case "interp":
		cfg.Kind = core.Interpolation
	default:
		fmt.Fprintf(os.Stderr, "h2info: unknown basis %q\n", *basis)
		os.Exit(2)
	}
	switch *mem {
	case "normal":
		cfg.Mode = core.Normal
	case "otf":
		cfg.Mode = core.OnTheFly
	default:
		fmt.Fprintf(os.Stderr, "h2info: unknown memory mode %q\n", *mem)
		os.Exit(2)
	}

	m, err := core.Build(pts, k, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "h2info: %v\n", err)
		os.Exit(1)
	}
	st := m.Stats()
	fmt.Printf("h2ds matrix: n=%d dim=%d dist=%s kernel=%s basis=%v memory=%v tol=%.0e\n",
		*n, pts.Dim, *dist, k.Name(), cfg.Kind, cfg.Mode, *tol)
	fmt.Printf("tree: %d nodes, %d leaves, depth %d\n", st.Nodes, st.Leaves, st.Depth)
	fmt.Printf("blocks: %d coupling, %d nearfield\n", st.InteractionBlocks, st.NearBlocks)
	fmt.Printf("ranks: max %d, leaf total %d (avg %.1f)\n",
		st.MaxRank, st.SumLeafRank, float64(st.SumLeafRank)/float64(st.Leaves))
	fmt.Printf("build: total %v (tree %v, sampling %v, basis %v, coupling %v)\n",
		st.Total, st.TreeTime, st.SampleTime, st.BasisTime, st.CouplingTime)
	if ph := st.Phases; ph.TotalNS > 0 {
		// Assembly/ID/transfer are summed across workers, so they can exceed
		// the wall-clock basis time above.
		suffix := ""
		if ph.CacheHit {
			suffix = " [construction-cache hit: sampling reused]"
		}
		fmt.Printf("phases (cpu): assembly %v, leaf ID %v, transfer %v%s\n",
			time.Duration(ph.AssemblyNS), time.Duration(ph.IDNS), time.Duration(ph.TransferNS), suffix)
	}
	fmt.Printf("memory: %v\n", m.Memory())
	if st.RelTol > 0 {
		fmt.Printf("error-controlled: reltol=%.0e, a-posteriori estimate %.3e\n", st.RelTol, st.EstRelErr)
		for _, lr := range st.LevelRanks {
			fmt.Printf("  level %d: %d nodes, rank min %d / avg %.1f / max %d\n",
				lr.Level, lr.Nodes, lr.MinRank, lr.AvgRank, lr.MaxRank)
		}
	}

	rng := rand.New(rand.NewSource(*seed + 7))
	b := make([]float64, *n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	fmt.Printf("relative error (12 sampled rows): %.3e\n",
		m.EstimateRelError(b, core.DefaultErrorRows, *seed+13))
}

// printLoaded summarizes a serialized matrix, including kernel-less streams
// written by dense-upload builds.
func printLoaded(path string, seed int64) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	m, err := core.ReadAny(f)
	if err != nil {
		return fmt.Errorf("load %s: %w", path, err)
	}
	kname := m.Kern.Name()
	if kname == "" {
		kname = "(none)"
	}
	st := m.Stats()
	fmt.Printf("h2ds matrix (loaded from %s): n=%d dim=%d kernel=%s basis=%v memory=%v\n",
		path, m.N, m.Dim, kname, m.Cfg.Kind, m.Cfg.Mode)
	fmt.Printf("tree: %d nodes, %d leaves, depth %d\n", st.Nodes, st.Leaves, st.Depth)
	fmt.Printf("blocks: %d coupling, %d nearfield\n", st.InteractionBlocks, st.NearBlocks)
	fmt.Printf("ranks: max %d, leaf total %d\n", st.MaxRank, st.SumLeafRank)
	fmt.Printf("memory: %v\n", m.Memory())
	if st.RelTol > 0 {
		fmt.Printf("error-controlled: reltol=%.0e, a-posteriori estimate %.3e\n", st.RelTol, st.EstRelErr)
	}
	if !m.HasKernel() {
		fmt.Println("relative error check: skipped (no kernel in stream; entries came from an oracle)")
		return nil
	}
	rng := rand.New(rand.NewSource(seed + 7))
	b := make([]float64, m.N)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	fmt.Printf("relative error (12 sampled rows): %.3e\n",
		m.EstimateRelError(b, core.DefaultErrorRows, seed+13))
	return nil
}
