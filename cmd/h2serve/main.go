// Command h2serve exposes one H² matrix as an HTTP matvec service. At
// startup it either builds the matrix from a synthetic workload (the same
// knobs as h2info) or loads a serialized one (-load, written by
// core.Matrix.WriteTo), then serves concurrent products through an
// internal/serve.Batcher so independent requests coalesce into batched
// applies.
//
// Endpoints:
//
//	POST /apply    {"b": [...]} -> {"y": [...]}; per-request deadline via
//	               -timeout, 503 on queue-full backpressure
//	GET  /stats    batcher counters/histograms plus matrix shape, as JSON
//	GET  /healthz  liveness probe
//
// SIGINT/SIGTERM shut down gracefully: the listener stops, in-flight and
// queued requests drain through the batcher, then the process exits.
//
// Usage:
//
//	h2serve -n 20000 -kernel coulomb -mem otf -addr :8080
//	h2serve -load matrix.h2 -kernel coulomb
//	curl -s localhost:8080/apply -d '{"b": [0.1, 0.2, ...]}'
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"h2ds/internal/core"
	"h2ds/internal/kernel"
	"h2ds/internal/pointset"
	"h2ds/internal/sample"
	"h2ds/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "h2serve: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	load := flag.String("load", "", "serialized matrix to serve (from core.Matrix.WriteTo); skips the build")
	save := flag.String("save", "", "write the built matrix to this path before serving")

	n := flag.Int("n", 20000, "number of points (build mode)")
	dim := flag.Int("dim", 3, "dimension (cube distribution only)")
	dist := flag.String("dist", "cube", "distribution: cube, sphere, dino, ball, mixture")
	kern := flag.String("kernel", "coulomb", "kernel: "+strings.Join(kernel.Names(), ", "))
	tol := flag.Float64("tol", 1e-6, "target relative accuracy")
	basis := flag.String("basis", "dd", "construction: dd (data-driven) or interp")
	mem := flag.String("mem", "otf", "memory mode: normal or otf")
	leaf := flag.Int("leaf", 0, "leaf size (0 = default)")
	threads := flag.Int("threads", 0, "worker count (0 = GOMAXPROCS)")
	samplerName := flag.String("sampler", "anchornet", "sampler: anchornet, fps, random")
	seed := flag.Int64("seed", 1, "workload seed")

	maxBatch := flag.Int("maxbatch", 16, "flush a batch at this many pending requests")
	window := flag.Duration("window", 500*time.Microsecond, "flush a partial batch this long after its first request")
	queue := flag.Int("queue", 0, "queue limit (0 = 4x maxbatch)")
	block := flag.Bool("block", false, "block at queue limit instead of failing fast with 503")
	flushers := flag.Int("flushers", 2, "concurrent flush workers")
	timeout := flag.Duration("timeout", 5*time.Second, "per-request deadline for /apply (0 = none)")
	flag.Parse()

	k, err := kernel.ByName(*kern)
	if err != nil {
		return err
	}

	var m *core.Matrix
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			return err
		}
		m, err = core.Read(f, k)
		f.Close()
		if err != nil {
			return fmt.Errorf("load %s: %w", *load, err)
		}
		fmt.Printf("h2serve: loaded %s: n=%d dim=%d kernel=%s mode=%v\n",
			*load, m.N, m.Dim, k.Name(), m.Cfg.Mode)
	} else {
		pts, ok := pointset.Named(*dist, *n, *dim, *seed)
		if !ok {
			return fmt.Errorf("unknown distribution %q", *dist)
		}
		s, ok := sample.Named(*samplerName)
		if !ok {
			return fmt.Errorf("unknown sampler %q", *samplerName)
		}
		cfg := core.Config{Tol: *tol, LeafSize: *leaf, Workers: *threads, Sampler: s}
		switch *basis {
		case "dd":
			cfg.Kind = core.DataDriven
		case "interp":
			cfg.Kind = core.Interpolation
		default:
			return fmt.Errorf("unknown basis %q", *basis)
		}
		switch *mem {
		case "normal":
			cfg.Mode = core.Normal
		case "otf":
			cfg.Mode = core.OnTheFly
		default:
			return fmt.Errorf("unknown memory mode %q", *mem)
		}
		t0 := time.Now()
		m, err = core.Build(pts, k, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("h2serve: built n=%d dim=%d dist=%s kernel=%s mode=%v in %v\n",
			*n, pts.Dim, *dist, k.Name(), cfg.Mode, time.Since(t0).Round(time.Millisecond))
		if *save != "" {
			f, err := os.Create(*save)
			if err != nil {
				return err
			}
			if _, err := m.WriteTo(f); err != nil {
				f.Close()
				return fmt.Errorf("save %s: %w", *save, err)
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("h2serve: wrote %s\n", *save)
		}
	}

	b := serve.NewBatcher(m, serve.Config{
		MaxBatch:    *maxBatch,
		FlushWindow: *window,
		QueueLimit:  *queue,
		Block:       *block,
		Flushers:    *flushers,
	})

	mux := http.NewServeMux()
	mux.HandleFunc("/apply", applyHandler(b, *timeout))
	mux.HandleFunc("/stats", statsHandler(b, k.Name()))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	srv := &http.Server{Addr: *addr, Handler: mux}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Printf("h2serve: listening on %s (maxbatch=%d window=%v queue=%d block=%v flushers=%d)\n",
		*addr, *maxBatch, *window, *queue, *block, *flushers)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		b.Close()
		return err
	case <-ctx.Done():
	}
	fmt.Println("h2serve: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err = srv.Shutdown(shutCtx)
	b.Close() // drains every admitted request
	st := b.Stats()
	fmt.Printf("h2serve: served %d requests in %d batches (mean occupancy %.1f)\n",
		st.Served, st.Batches, st.BatchOccupancy.Mean)
	return err
}

// applyRequest and applyResponse are the /apply wire format.
type applyRequest struct {
	B []float64 `json:"b"`
}

type applyResponse struct {
	Y []float64 `json:"y"`
}

func applyHandler(b *serve.Batcher, timeout time.Duration) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var req applyRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
			return
		}
		ctx := r.Context()
		if timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, timeout)
			defer cancel()
		}
		y, err := b.Apply(ctx, req.B)
		switch {
		case err == nil:
		case errors.Is(err, serve.ErrQueueFull) || errors.Is(err, serve.ErrClosed):
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		case errors.Is(err, context.DeadlineExceeded):
			http.Error(w, err.Error(), http.StatusGatewayTimeout)
			return
		case errors.Is(err, context.Canceled):
			// Client went away; nothing useful to write.
			return
		default:
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(applyResponse{Y: y})
	}
}

func statsHandler(b *serve.Batcher, kernelName string) http.HandlerFunc {
	type matrixInfo struct {
		N      int    `json:"n"`
		Dim    int    `json:"dim"`
		Kernel string `json:"kernel"`
		Mode   string `json:"mode"`
		Basis  string `json:"basis"`
	}
	return func(w http.ResponseWriter, r *http.Request) {
		m := b.Matrix()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct {
			Matrix matrixInfo  `json:"matrix"`
			Serve  serve.Stats `json:"serve"`
		}{
			Matrix: matrixInfo{
				N: m.N, Dim: m.Dim, Kernel: kernelName,
				Mode: m.Cfg.Mode.String(), Basis: m.Cfg.Kind.String(),
			},
			Serve: b.Stats(),
		})
	}
}
