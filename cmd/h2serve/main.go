// Command h2serve exposes a fleet of H² matrices as an HTTP matvec service.
// At startup it builds (or loads with -load) a "default" instance from the
// same knobs as h2info, then serves concurrent products through per-instance
// request batchers (internal/serve) managed by a multi-tenant registry
// (internal/registry): named instances, async build queue, zero-downtime
// hot-swap rebuilds, and an optional global memory budget with LRU eviction
// and disk spill.
//
// Endpoints:
//
//	POST   /matrices              {"name": "x", "spec": {"n": 5000, ...}}
//	                              create or hot-swap-rebuild an instance (202)
//	GET    /matrices              instances with state, progress, counters
//	GET    /matrices/{name}       one instance
//	POST   /matrices/{name}/apply {"b": [...]} -> {"y": [...]}
//	DELETE /matrices/{name}       remove an instance
//	POST   /apply                 alias for /matrices/default/apply
//	GET    /stats                 default-instance shape + registry counters
//	GET    /healthz               liveness probe
//
// Apply requests carry a per-request deadline (-timeout) and answer 503 on
// queue-full backpressure. SIGINT/SIGTERM shut down gracefully: the listener
// stops, every instance's batcher drains its admitted requests, in-flight
// builds are cancelled, and — with -spill set — Ready instances are
// persisted for the next start.
//
// Usage:
//
//	h2serve -n 20000 -kernel coulomb -mem otf -addr :8080
//	h2serve -n 20000 -mem hybrid -storage 64    # cap stored blocks at 64 MiB
//	h2serve -load matrix.h2
//	curl -s localhost:8080/apply -d '{"b": [0.1, 0.2, ...]}'
//	curl -s localhost:8080/matrices -d '{"name":"g","spec":{"kernel":"gaussian","n":5000}}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"h2ds/internal/api"
	"h2ds/internal/kernel"
	"h2ds/internal/registry"
	"h2ds/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "h2serve: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	load := flag.String("load", "", "serialized matrix to serve as \"default\" (kernel resolved from the stream); skips the build")
	save := flag.String("save", "", "write the built default matrix to this path before serving")

	n := flag.Int("n", 20000, "number of points (build mode)")
	dim := flag.Int("dim", 3, "dimension (cube distribution only)")
	dist := flag.String("dist", "cube", "distribution: cube, sphere, dino, ball, mixture")
	kern := flag.String("kernel", "coulomb", "kernel: "+strings.Join(kernel.Names(), ", ")+"; with -load, checked against the stream")
	tol := flag.Float64("tol", 1e-6, "target relative accuracy")
	reltol := flag.Float64("reltol", 0, "error-controlled build: derive ranks and sample sizes from this tolerance and report an a-posteriori error estimate (0 = fixed-parameter build via -tol)")
	basis := flag.String("basis", "dd", "construction: dd (data-driven) or interp")
	mem := flag.String("mem", "otf", "memory mode: normal, otf, or hybrid")
	storageMB := flag.Int64("storage", 0, "hybrid stored-block budget in MiB (-mem hybrid): the best assembly-cost-per-byte blocks are stored, the rest evaluated on the fly")
	leaf := flag.Int("leaf", 0, "leaf size (0 = default)")
	threads := flag.Int("threads", 0, "worker count (0 = GOMAXPROCS)")
	samplerName := flag.String("sampler", "anchornet", "sampler: anchornet, fps, random")
	seed := flag.Int64("seed", 1, "workload seed")

	maxBatch := flag.Int("maxbatch", 16, "flush a batch at this many pending requests")
	window := flag.Duration("window", 500*time.Microsecond, "flush a partial batch this long after its first request")
	queue := flag.Int("queue", 0, "queue limit (0 = 4x maxbatch)")
	block := flag.Bool("block", false, "block at queue limit instead of failing fast with 503")
	flushers := flag.Int("flushers", 2, "concurrent flush workers")
	timeout := flag.Duration("timeout", 5*time.Second, "per-request deadline for apply endpoints (0 = none)")

	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/ on the service address")
	buildCache := flag.Int("buildcache", 0, "construction-cache entries shared across tenant builds: same-geometry tenants and hot-swap rebuilds reuse the tree + sampling hierarchy (0 = default, negative = disable)")
	builders := flag.Int("builders", 2, "concurrent build workers for POST /matrices")
	buildQueue := flag.Int("buildqueue", 8, "accepted-but-not-started build limit")
	budgetMB := flag.Int64("membudget", 0, "total matrix memory budget in MiB across ready instances (0 = unlimited); exceeding it evicts the least-recently-applied instance")
	spill := flag.String("spill", "", "directory for evicted instances' generators; evicted instances rehydrate lazily on their next apply, and ready instances persist here at shutdown")
	maxBodyMB := flag.Int64("maxbody", 0, "JSON request body cap in MiB, answered with 413 over the cap (0 = 64)")
	maxUploadMB := flag.Int64("maxupload", 0, "dense-upload body cap in MiB for POST /matrices/{name}/data (0 = 8192)")
	flag.Parse()

	// The default instance's spec, straight from the flags.
	spec := registry.BuildSpec{
		Kernel: *kern, Dist: *dist, N: *n, Dim: *dim, Tol: *tol, RelTol: *reltol,
		Basis: *basis, Mem: *mem, Leaf: *leaf, Sampler: *samplerName,
		Seed: *seed, Workers: *threads, StorageBudget: *storageMB << 20,
	}
	if *load != "" {
		// The stream records its kernel; -kernel is only an override check,
		// applied below once the matrix is loaded. The worker count is a
		// host preference the stream never carries, so -threads still
		// applies to the loaded instance.
		spec = registry.BuildSpec{Path: *load, Workers: *threads}
	}

	reg := registry.New(registry.Config{
		Workers:      *builders,
		QueueDepth:   *buildQueue,
		MemBudget:    *budgetMB << 20,
		SpillDir:     *spill,
		CacheEntries: *buildCache,
		Batch: serve.Config{
			MaxBatch:    *maxBatch,
			FlushWindow: *window,
			QueueLimit:  *queue,
			Block:       *block,
			Flushers:    *flushers,
		},
	})
	defer reg.Close()

	t0 := time.Now()
	if err := reg.Create(DefaultInstance, spec); err != nil {
		return err
	}
	if err := reg.WaitReady(context.Background(), DefaultInstance); err != nil {
		return err
	}
	m, ok := reg.Matrix(DefaultInstance)
	if !ok {
		return errors.New("default instance vanished during startup")
	}
	if *load != "" {
		kernelFlagSet := false
		flag.Visit(func(f *flag.Flag) { kernelFlagSet = kernelFlagSet || f.Name == "kernel" })
		if kernelFlagSet && m.Kern.Name() != *kern {
			return fmt.Errorf("%s was built with kernel %q, but -kernel %q was requested", *load, m.Kern.Name(), *kern)
		}
		kname := m.Kern.Name()
		if kname == "" {
			kname = "(none)" // kernel-less stream from a dense-upload build
		}
		fmt.Printf("h2serve: loaded %s: n=%d dim=%d kernel=%s mode=%v\n",
			*load, m.N, m.Dim, kname, m.Cfg.Mode)
	} else {
		fmt.Printf("h2serve: built n=%d dim=%d dist=%s kernel=%s mode=%v in %v\n",
			m.N, m.Dim, *dist, m.Kern.Name(), m.Cfg.Mode, time.Since(t0).Round(time.Millisecond))
		if *save != "" {
			f, err := os.Create(*save)
			if err != nil {
				return err
			}
			if _, err := m.WriteTo(f); err != nil {
				f.Close()
				return fmt.Errorf("save %s: %w", *save, err)
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("h2serve: wrote %s\n", *save)
		}
	}

	// Dense uploads land next to the spill files when a spill directory is
	// configured (one durable volume); otherwise the api default (temp dir).
	lim := api.Limits{JSONBody: *maxBodyMB << 20, Upload: *maxUploadMB << 20, DataDir: *spill}
	srv := &http.Server{Addr: *addr, Handler: newServer(reg, *timeout, lim, *pprofOn)}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Printf("h2serve: listening on %s (maxbatch=%d window=%v queue=%d block=%v flushers=%d builders=%d membudget=%dMiB)\n",
		*addr, *maxBatch, *window, *queue, *block, *flushers, *builders, *budgetMB)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		reg.Close()
		return err
	case <-ctx.Done():
	}
	fmt.Println("h2serve: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err := srv.Shutdown(shutCtx)
	// Drain every instance's batcher, cancel in-flight builds, persist Ready
	// instances when -spill is set.
	reg.Close()
	st := reg.Stats()
	fmt.Printf("h2serve: %d builds (%d ok, %d failed), %d evictions, %d swap drains\n",
		st.BuildsStarted, st.BuildsSucceeded, st.BuildsFailed, st.Evictions, st.SwapDrains)
	return err
}
