package main

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"h2ds/internal/api"
	"h2ds/internal/kernel"
	"h2ds/internal/oracle"
	"h2ds/internal/pointset"
	"h2ds/internal/registry"
)

// TestE2EDenseUpload drives the geometry-oblivious path over real HTTP: a
// raw dense SPD matrix is uploaded with no coordinates and no kernel name,
// built through the entry oracle, applied against the direct dense
// reference, then replicated to a second server over the cluster transport
// with a bitwise-identical apply.
func TestE2EDenseUpload(t *testing.T) {
	const (
		n      = 300
		reltol = 1e-6
	)
	pts := pointset.Cube(n, 3, 77)
	k, err := kernel.ByName("gaussian")
	if err != nil {
		t.Fatal(err)
	}
	data := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			data[i*n+j] = k.EvalPair(pts.At(i), pts.At(j))
		}
	}

	reg := registry.New(registry.Config{Workers: 2})
	defer reg.Close()
	ts := httptest.NewServer(newServer(reg, 10*time.Second, api.Limits{DataDir: t.TempDir()}, false))
	defer ts.Close()
	client := ts.Client()

	// Upload: raw little-endian row-major float64, knobs in the query string.
	resp, err := client.Post(ts.URL+"/matrices/g/data?sym=1&reltol=1e-6&leaf=40",
		"application/octet-stream", bytes.NewReader(oracle.Pack(data)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("upload: %d %s", resp.StatusCode, body)
	}

	// Poll until Ready; a dense instance reports no kernel.
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := client.Get(ts.URL + "/matrices/g")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var inf registry.Info
		if err := json.Unmarshal(body, &inf); err != nil {
			t.Fatalf("get body: %v (%s)", err, body)
		}
		if inf.State.String() == "ready" {
			if inf.N != n || inf.Kernel != "" {
				t.Fatalf("ready info: n=%d kernel=%q", inf.N, inf.Kernel)
			}
			break
		}
		if inf.State.String() == "failed" {
			t.Fatalf("build failed: %s", inf.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("never ready: %s", body)
		}
		time.Sleep(5 * time.Millisecond)
	}

	rng := rand.New(rand.NewSource(13))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	apply := func(c *http.Client, url string) []float64 {
		t.Helper()
		buf, _ := json.Marshal(applyRequest{B: b})
		resp, err := c.Post(url+"/matrices/g/apply", "application/json", bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("apply: %d %s", resp.StatusCode, body)
		}
		var ar applyResponse
		if err := json.Unmarshal(body, &ar); err != nil {
			t.Fatal(err)
		}
		return ar.Y
	}
	y := apply(client, ts.URL)

	var num, den float64
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < n; j++ {
			s += data[i*n+j] * b[j]
		}
		num += (y[i] - s) * (y[i] - s)
		den += s * s
	}
	if rel := math.Sqrt(num / den); rel > 10*reltol {
		t.Fatalf("uploaded-matrix apply off dense reference by %.3e (reltol %g)", rel, reltol)
	}

	// Replicate to a second server over the cluster transport: the export
	// stream carries the stored blocks verbatim, so the replica's apply is
	// bitwise identical.
	reg2 := registry.New(registry.Config{Workers: 1})
	defer reg2.Close()
	ts2 := httptest.NewServer(newServer(reg2, 10*time.Second, api.Limits{DataDir: t.TempDir()}, false))
	defer ts2.Close()

	eresp, err := client.Get(ts.URL + "/cluster/export/g")
	if err != nil {
		t.Fatal(err)
	}
	stream, _ := io.ReadAll(eresp.Body)
	eresp.Body.Close()
	if eresp.StatusCode != http.StatusOK {
		t.Fatalf("export: %d", eresp.StatusCode)
	}
	preq, err := http.NewRequest(http.MethodPut, ts2.URL+"/cluster/replicas/g", bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	presp, err := ts2.Client().Do(preq)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, presp.Body)
	presp.Body.Close()
	if presp.StatusCode != http.StatusNoContent {
		t.Fatalf("install: %d", presp.StatusCode)
	}
	y2 := apply(ts2.Client(), ts2.URL)
	for i := range y {
		if y[i] != y2[i] {
			t.Fatalf("replica apply differs at %d: %g vs %g", i, y[i], y2[i])
		}
	}
}

// TestE2EBodyLimit413 pins the request-size guardrails: JSON and upload
// bodies over their caps answer 413 without reaching the registry, and a
// size that passes the cap but is not a square matrix answers 400.
func TestE2EBodyLimit413(t *testing.T) {
	reg := registry.New(registry.Config{Workers: 1})
	defer reg.Close()
	lim := api.Limits{JSONBody: 256, Upload: 1024, DataDir: t.TempDir()}
	ts := httptest.NewServer(newServer(reg, 5*time.Second, lim, false))
	defer ts.Close()
	client := ts.Client()

	post := func(path, ctype string, body []byte) int {
		t.Helper()
		resp, err := client.Post(ts.URL+path, ctype, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	// Oversized create JSON.
	big := []byte(`{"name":"x","spec":{"kernel":"` + strings.Repeat("a", 300) + `"}}`)
	if code := post("/matrices", "application/json", big); code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized create: %d, want 413", code)
	}
	// Oversized apply JSON (the default alias shares the cap).
	bigApply, _ := json.Marshal(applyRequest{B: make([]float64, 200)})
	if code := post("/apply", "application/json", bigApply); code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized apply: %d, want 413", code)
	}
	// Oversized dense upload.
	if code := post("/matrices/x/data", "application/octet-stream", make([]byte, 2048)); code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized upload: %d, want 413", code)
	}
	// In-cap upload whose byte count is not 8·n²: rejected before any build.
	if code := post("/matrices/x/data", "application/octet-stream", make([]byte, 24)); code != http.StatusBadRequest {
		t.Errorf("non-square upload: %d, want 400", code)
	}
	// Under-cap requests still work.
	small, _ := json.Marshal(createRequest{Name: "ok", Spec: registry.BuildSpec{N: 64, Leaf: 16}})
	if code := post("/matrices", "application/json", small); code != http.StatusAccepted {
		t.Errorf("in-cap create: %d, want 202", code)
	}
}
