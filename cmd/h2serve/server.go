package main

import (
	"net/http"
	"net/http/pprof"
	"time"

	"h2ds/internal/api"
	"h2ds/internal/cluster"
	"h2ds/internal/registry"
)

// DefaultInstance aliases the registry name served by the bare /apply and
// /stats endpoints.
const DefaultInstance = api.DefaultInstance

// Wire-format aliases; the canonical definitions live in internal/api so the
// cluster router speaks the same protocol.
type (
	createRequest = api.CreateRequest
	applyRequest  = api.ApplyRequest
	applyResponse = api.ApplyResponse
)

// newServer builds the HTTP surface over a registry: the internal/api
// matrices endpoints, the cluster peer endpoints (/cluster/*, so any h2serve
// process can act as a cluster node), and optionally pprof. timeout bounds
// each apply request (0 = none, beyond the client's own context); lim bounds
// request bodies and places dense uploads.
func newServer(reg *registry.Registry, timeout time.Duration, lim api.Limits, enablePprof bool) http.Handler {
	mux := http.NewServeMux()
	api.MountLimits(mux, reg, timeout, lim)
	cluster.NewNode(reg, timeout, lim).Mount(mux)
	if enablePprof {
		// Mounted explicitly: the blank net/http/pprof import only registers
		// on http.DefaultServeMux, which this server does not use.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}
