package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"time"

	"h2ds/internal/core"
	"h2ds/internal/registry"
	"h2ds/internal/serve"
)

// DefaultInstance is the registry name the bare /apply and /stats endpoints
// alias, preserving the single-matrix wire protocol of earlier h2serve
// versions.
const DefaultInstance = "default"

// newServer builds the HTTP surface over a registry. timeout bounds each
// apply request (0 = none, beyond the client's own context).
//
//	POST   /matrices              create or rebuild (hot-swap) an instance
//	GET    /matrices              list instances with state and counters
//	GET    /matrices/{name}       one instance
//	POST   /matrices/{name}/apply y = A b through the instance's batcher
//	DELETE /matrices/{name}       remove an instance
//	POST   /apply                 alias: apply on "default"
//	GET    /stats                 alias: "default" shape + registry counters
//	GET    /healthz               liveness
//	/debug/pprof/*                CPU/heap/etc profiles (only with -pprof)
func newServer(reg *registry.Registry, timeout time.Duration, enablePprof bool) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /matrices", createHandler(reg))
	mux.HandleFunc("GET /matrices", listHandler(reg))
	mux.HandleFunc("GET /matrices/{name}", getHandler(reg))
	mux.HandleFunc("POST /matrices/{name}/apply", func(w http.ResponseWriter, r *http.Request) {
		applyTo(reg, r.PathValue("name"), timeout, w, r)
	})
	mux.HandleFunc("DELETE /matrices/{name}", deleteHandler(reg))
	mux.HandleFunc("POST /apply", func(w http.ResponseWriter, r *http.Request) {
		applyTo(reg, DefaultInstance, timeout, w, r)
	})
	mux.HandleFunc("GET /stats", statsHandler(reg))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	if enablePprof {
		// Mounted explicitly: the blank net/http/pprof import only registers
		// on http.DefaultServeMux, which this server does not use.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// createRequest is the POST /matrices wire format: a name plus the same
// build knobs as the command line, or a path to load from.
type createRequest struct {
	Name string             `json:"name"`
	Spec registry.BuildSpec `json:"spec"`
}

// applyRequest and applyResponse are the apply wire format.
type applyRequest struct {
	B []float64 `json:"b"`
}

type applyResponse struct {
	Y []float64 `json:"y"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// registryError maps registry sentinel errors onto HTTP statuses.
func registryError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, registry.ErrInvalidSpec):
		// Synchronous spec rejection (bad name, NaN/out-of-range tolerance,
		// unknown enum): the body carries the specific validation failure.
		http.Error(w, err.Error(), http.StatusBadRequest)
	case errors.Is(err, registry.ErrNotFound):
		http.Error(w, err.Error(), http.StatusNotFound)
	case errors.Is(err, registry.ErrBusy):
		http.Error(w, err.Error(), http.StatusConflict)
	case errors.Is(err, registry.ErrQueueFull),
		errors.Is(err, registry.ErrClosed),
		errors.Is(err, serve.ErrQueueFull),
		errors.Is(err, serve.ErrClosed):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.Is(err, registry.ErrNotReady):
		// Failed build or spill-less eviction: the client must fix the spec
		// or re-create, so a conflict rather than a retryable 503.
		http.Error(w, err.Error(), http.StatusConflict)
	case errors.Is(err, context.DeadlineExceeded):
		http.Error(w, err.Error(), http.StatusGatewayTimeout)
	default:
		http.Error(w, err.Error(), http.StatusBadRequest)
	}
}

func createHandler(reg *registry.Registry) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req createRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
			return
		}
		if err := reg.Create(req.Name, req.Spec); err != nil {
			registryError(w, err)
			return
		}
		inf, _ := reg.Get(req.Name)
		writeJSON(w, http.StatusAccepted, inf)
	}
}

func listHandler(reg *registry.Registry) http.HandlerFunc {
	return func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, struct {
			Instances []registry.Info `json:"instances"`
			Registry  registry.Stats  `json:"registry"`
		}{reg.List(), reg.Stats()})
	}
}

func getHandler(reg *registry.Registry) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		inf, ok := reg.Get(r.PathValue("name"))
		if !ok {
			http.Error(w, "no such instance", http.StatusNotFound)
			return
		}
		writeJSON(w, http.StatusOK, inf)
	}
}

func deleteHandler(reg *registry.Registry) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if err := reg.Delete(r.PathValue("name")); err != nil {
			registryError(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	}
}

// applyTo serves one product through the named instance. The registry waits
// out Pending/Building states (bounded by the request deadline), so a client
// may POST right after creating an instance and block until it serves.
func applyTo(reg *registry.Registry, name string, timeout time.Duration, w http.ResponseWriter, r *http.Request) {
	var req applyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	ctx := r.Context()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	y, err := reg.Apply(ctx, name, req.B)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			return // client went away; nothing useful to write
		}
		registryError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, applyResponse{Y: y})
}

// statsHandler reports the default instance's matrix shape, serve counters
// (kernel and shape read from the instance's own matrix, so a hot-swap is
// reflected immediately), the cumulative per-sweep stage timings of its
// matvecs, and the registry counters.
func statsHandler(reg *registry.Registry) http.HandlerFunc {
	type matrixInfo struct {
		N      int    `json:"n"`
		Dim    int    `json:"dim"`
		Kernel string `json:"kernel"`
		Mode   string `json:"mode"`
		Basis  string `json:"basis"`

		// Error-controlled build reporting (reltol builds only).
		RelTol     float64          `json:"reltol,omitempty"`
		EstRelErr  float64          `json:"est_relerr,omitempty"`
		MaxRank    int              `json:"max_rank,omitempty"`
		LevelRanks []core.LevelRank `json:"level_ranks,omitempty"`
	}
	return func(w http.ResponseWriter, _ *http.Request) {
		out := struct {
			Matrix   *matrixInfo      `json:"matrix,omitempty"`
			Serve    *serve.Stats     `json:"serve,omitempty"`
			Sweeps   *core.SweepStats `json:"sweeps,omitempty"`
			Registry registry.Stats   `json:"registry"`
		}{Registry: reg.Stats()}
		if inf, ok := reg.Get(DefaultInstance); ok && inf.Serve != nil {
			out.Matrix = &matrixInfo{
				N: inf.N, Dim: inf.Dim, Kernel: inf.Kernel,
				Mode: inf.Mode, Basis: inf.Basis,
				RelTol: inf.RelTol, EstRelErr: inf.EstRelErr,
				MaxRank: inf.MaxRank, LevelRanks: inf.LevelRanks,
			}
			out.Serve = inf.Serve
			if m, ok := reg.Matrix(DefaultInstance); ok {
				sw := m.SweepStats()
				out.Sweeps = &sw
			}
		}
		writeJSON(w, http.StatusOK, out)
	}
}
