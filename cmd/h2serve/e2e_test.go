package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"h2ds/internal/api"
	"h2ds/internal/core"
	"h2ds/internal/kernel"
	"h2ds/internal/pointset"
	"h2ds/internal/registry"
	"h2ds/internal/serve"
)

// TestE2ESmoke drives the full serving stack over real HTTP: create an
// instance, poll it Ready, apply, check the product against the exact dense
// reference, exercise the default-instance aliases and lifecycle endpoints,
// and delete.
func TestE2ESmoke(t *testing.T) {
	const (
		n    = 500
		dim  = 3
		seed = 9
		tol  = 1e-6
	)
	reg := registry.New(registry.Config{Workers: 2})
	defer reg.Close()
	ts := httptest.NewServer(newServer(reg, 10*time.Second, api.Limits{}, true))
	defer ts.Close()
	client := ts.Client()

	post := func(path string, body any) (*http.Response, []byte) {
		t.Helper()
		buf, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.Post(ts.URL+path, "application/json", bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		out, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, out
	}
	get := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := client.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		out, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, out
	}

	// Health first.
	if resp, _ := get("/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	// Create an instance over HTTP.
	spec := registry.BuildSpec{Kernel: "coulomb", Dist: "cube", N: n, Dim: dim,
		Tol: tol, Basis: "dd", Mem: "otf", Leaf: 50, Seed: seed}
	resp, body := post("/matrices", createRequest{Name: "default", Spec: spec})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("create: %d %s", resp.StatusCode, body)
	}

	// Poll GET /matrices/{name} until Ready.
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, body := get("/matrices/default")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("get: %d %s", resp.StatusCode, body)
		}
		var inf registry.Info
		if err := json.Unmarshal(body, &inf); err != nil {
			t.Fatalf("get body: %v (%s)", err, body)
		}
		if inf.State.String() == "ready" {
			if inf.N != n || inf.Kernel != "coulomb" {
				t.Fatalf("ready info: %+v", inf)
			}
			break
		}
		if inf.State.String() == "failed" {
			t.Fatalf("build failed: %s", inf.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("never ready: %s", body)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Apply through the named route and through the default alias; both must
	// agree with the exact dense product within the build tolerance.
	rng := rand.New(rand.NewSource(31))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	k, err := kernel.ByName("coulomb")
	if err != nil {
		t.Fatal(err)
	}
	pts, _ := pointset.Named("cube", n, dim, seed)
	exact := make([]float64, n)
	var norm float64
	for i := range exact {
		exact[i] = kernel.RowApply(k, pts, i, b)
		norm += exact[i] * exact[i]
	}
	norm = math.Sqrt(norm)

	checkApply := func(path string) {
		t.Helper()
		resp, body := post(path, applyRequest{B: b})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("apply %s: %d %s", path, resp.StatusCode, body)
		}
		var ar applyResponse
		if err := json.Unmarshal(body, &ar); err != nil {
			t.Fatal(err)
		}
		if len(ar.Y) != n {
			t.Fatalf("apply %s: got %d entries, want %d", path, len(ar.Y), n)
		}
		var diff float64
		for i, v := range ar.Y {
			diff += (v - exact[i]) * (v - exact[i])
		}
		if rel := math.Sqrt(diff) / norm; rel > 100*tol {
			t.Fatalf("apply %s: relative error %g vs dense reference (tol %g)", path, rel, tol)
		}
	}
	checkApply("/matrices/default/apply")
	checkApply("/apply")

	// /stats reports the default instance's shape from its own matrix plus
	// registry counters.
	{
		resp, body := get("/stats")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("stats: %d", resp.StatusCode)
		}
		var st struct {
			Matrix struct {
				N       int    `json:"n"`
				Kernel  string `json:"kernel"`
				Workers int    `json:"workers"`
			} `json:"matrix"`
			Serve    serve.Stats    `json:"serve"`
			Registry registry.Stats `json:"registry"`
		}
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatalf("stats body: %v (%s)", err, body)
		}
		if st.Matrix.N != n || st.Matrix.Kernel != "coulomb" {
			t.Fatalf("stats matrix: %+v", st.Matrix)
		}
		if st.Matrix.Workers <= 0 {
			t.Fatalf("stats workers not reported: %+v", st.Matrix)
		}
		if st.Serve.Served != 2 {
			t.Fatalf("stats served = %d, want 2", st.Serve.Served)
		}
		if st.Registry.BuildsSucceeded != 1 || st.Registry.Ready != 1 {
			t.Fatalf("stats registry: %+v", st.Registry)
		}
	}

	// Listing shows exactly our instance.
	{
		resp, body := get("/matrices")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("list: %d", resp.StatusCode)
		}
		var l struct {
			Instances []registry.Info `json:"instances"`
		}
		if err := json.Unmarshal(body, &l); err != nil {
			t.Fatal(err)
		}
		if len(l.Instances) != 1 || l.Instances[0].Name != "default" {
			t.Fatalf("list: %s", body)
		}
	}

	// Error paths: bad spec is a 400, duplicate concurrent build a 409,
	// missing instance a 404.
	if resp, _ := post("/matrices", createRequest{Name: "bad", Spec: registry.BuildSpec{Kernel: "nosuch"}}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec: %d", resp.StatusCode)
	}
	if resp, _ := post("/matrices/nosuch/apply", applyRequest{B: b}); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("apply on missing: %d", resp.StatusCode)
	}
	if resp, _ := get("/matrices/nosuch"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("get missing: %d", resp.StatusCode)
	}

	// Delete, then the default alias 404s.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/matrices/default", nil)
	dresp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: %d", dresp.StatusCode)
	}
	if resp, _ := post("/apply", applyRequest{B: b}); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("apply after delete: %d", resp.StatusCode)
	}
}

// TestE2EFailedBuildSurfaced checks a build that fails asynchronously is
// reported through GET /matrices/{name} and does not wedge the server.
func TestE2EFailedBuildSurfaced(t *testing.T) {
	reg := registry.New(registry.Config{Workers: 1, Builder: func(ctx context.Context, sp registry.BuildSpec, setStage func(string)) (*core.Matrix, error) {
		if sp.Path == "panic://http" {
			panic("http kaboom")
		}
		return registry.DefaultBuild(ctx, sp, setStage)
	}})
	defer reg.Close()
	ts := httptest.NewServer(newServer(reg, 10*time.Second, api.Limits{}, true))
	defer ts.Close()

	buf, _ := json.Marshal(createRequest{Name: "boom", Spec: registry.BuildSpec{Path: "panic://http"}})
	resp, err := ts.Client().Post(ts.URL+"/matrices", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("create: %d", resp.StatusCode)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := ts.Client().Get(ts.URL + "/matrices/boom")
		if err != nil {
			t.Fatal(err)
		}
		var inf registry.Info
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err := json.Unmarshal(body, &inf); err != nil {
			t.Fatalf("%v (%s)", err, body)
		}
		if inf.State.String() == "failed" {
			if inf.Error == "" {
				t.Fatalf("failed without error: %s", body)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("failure never surfaced: %s", body)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// The worker pool is still alive: a good build on the same server works.
	buf, _ = json.Marshal(createRequest{Name: "ok", Spec: registry.BuildSpec{N: 300, Tol: 1e-4, Leaf: 50}})
	resp, err = ts.Client().Post(ts.URL+"/matrices", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("create after panic: %d", resp.StatusCode)
	}
	// Apply blocks through Pending/Building and answers once Ready.
	b := make([]float64, 300)
	for i := range b {
		b[i] = float64(i%7) - 3
	}
	buf, _ = json.Marshal(applyRequest{B: b})
	resp, err = ts.Client().Post(ts.URL+"/matrices/ok/apply", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("apply while building: %d %s", resp.StatusCode, body)
	}
	var ar applyResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	if len(ar.Y) != 300 {
		t.Fatalf("apply returned %d entries", len(ar.Y))
	}
}

// TestUnmarshalStateRoundTrip pins the State JSON encoding the HTTP clients
// poll against.
func TestUnmarshalStateRoundTrip(t *testing.T) {
	for _, s := range []registry.State{0, 1, 2, 3, 4, 5} {
		buf, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		want := fmt.Sprintf("%q", s.String())
		if string(buf) != want {
			t.Fatalf("state %d marshals to %s, want %s", s, buf, want)
		}
	}
}

// TestE2EInvalidSpecRejected checks spec validation surfaces as a 400 with
// the specific failure in the body — not a 500, and not an asynchronous
// Failed build the client would have to poll for.
func TestE2EInvalidSpecRejected(t *testing.T) {
	reg := registry.New(registry.Config{Workers: 1})
	defer reg.Close()
	ts := httptest.NewServer(newServer(reg, 5*time.Second, api.Limits{}, false))
	defer ts.Close()

	post := func(body string) (*http.Response, string) {
		t.Helper()
		resp, err := ts.Client().Post(ts.URL+"/matrices", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		out, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, string(out)
	}

	cases := []struct {
		body    string
		mention string
	}{
		{`{"name":"x","spec":{"n":100,"tol":1.5}}`, "tol"},
		{`{"name":"x","spec":{"n":100,"tol":-1e-6}}`, "tol"},
		{`{"name":"x","spec":{"n":100,"reltol":2}}`, "reltol"},
		{`{"name":"x","spec":{"n":100,"reltol":-0.5}}`, "reltol"},
		{`{"name":"bad name!","spec":{"n":100}}`, "name"},
		{`{"name":"x","spec":{"n":100,"kernel":"nope"}}`, "nope"},
	}
	for _, c := range cases {
		resp, body := post(c.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("POST %s: status %d (%s), want 400", c.body, resp.StatusCode, body)
		}
		if !strings.Contains(body, c.mention) {
			t.Fatalf("POST %s: body %q does not mention %q", c.body, body, c.mention)
		}
	}
	// Nothing was created by any of the rejected specs.
	if len(reg.List()) != 0 {
		t.Fatalf("rejected specs left instances behind: %+v", reg.List())
	}
}

// TestE2ERelTolReporting creates an error-controlled instance over HTTP and
// checks the reltol metadata flows out of both /matrices/{name} and /stats.
func TestE2ERelTolReporting(t *testing.T) {
	reg := registry.New(registry.Config{Workers: 1})
	defer reg.Close()
	ts := httptest.NewServer(newServer(reg, 10*time.Second, api.Limits{}, false))
	defer ts.Close()

	body := `{"name":"default","spec":{"n":800,"dim":3,"reltol":1e-4,"mem":"normal","leaf":50,"seed":3}}`
	resp, err := ts.Client().Post(ts.URL+"/matrices", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("create: %d", resp.StatusCode)
	}
	if err := reg.WaitReady(context.Background(), "default"); err != nil {
		t.Fatal(err)
	}

	var inf registry.Info
	resp, err = ts.Client().Get(ts.URL + "/matrices/default")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err := json.Unmarshal(raw, &inf); err != nil {
		t.Fatalf("info body: %v (%s)", err, raw)
	}
	if inf.RelTol != 1e-4 || inf.EstRelErr <= 0 || inf.EstRelErr > 10*inf.RelTol {
		t.Fatalf("info reltol reporting: reltol=%g est=%g", inf.RelTol, inf.EstRelErr)
	}
	if inf.MaxRank <= 0 || len(inf.LevelRanks) == 0 {
		t.Fatalf("info rank reporting: %+v", inf)
	}

	resp, err = ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var stats struct {
		Matrix struct {
			RelTol     float64          `json:"reltol"`
			EstRelErr  float64          `json:"est_relerr"`
			MaxRank    int              `json:"max_rank"`
			LevelRanks []core.LevelRank `json:"level_ranks"`
		} `json:"matrix"`
	}
	if err := json.Unmarshal(raw, &stats); err != nil {
		t.Fatalf("stats body: %v (%s)", err, raw)
	}
	if stats.Matrix.RelTol != 1e-4 || stats.Matrix.EstRelErr <= 0 {
		t.Fatalf("/stats reltol reporting: %+v (%s)", stats.Matrix, raw)
	}
	if stats.Matrix.MaxRank <= 0 || len(stats.Matrix.LevelRanks) == 0 {
		t.Fatalf("/stats rank reporting: %+v", stats.Matrix)
	}
}
