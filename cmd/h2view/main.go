// Command h2view renders the paper's Fig 2 as text: the leaf-by-leaf block
// structure of the H² matrix with per-block basis ranks — interpolation in
// the lower triangle, data-driven in the upper triangle, nearfield blocks
// marked "**" (the red cells of the figure).
//
// Usage:
//
//	h2view -n 2000 -tol 1e-7 -dist cube
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"h2ds/internal/core"
	"h2ds/internal/kernel"
	"h2ds/internal/pointset"
)

// coveringRank finds the block that represents the (la, lb) leaf pair in
// the hierarchical partition and returns the row-side basis rank, or -1 for
// a nearfield pair.
func coveringRank(m *core.Matrix, ancestors [][]int, la, lb int) int {
	t := m.Tree
	if la == lb {
		return -1
	}
	for _, j := range t.Nodes[la].Near {
		if j == lb {
			return -1
		}
	}
	inIL := func(i, j int) bool {
		for _, v := range t.Nodes[i].Interaction {
			if v == j {
				return true
			}
		}
		return false
	}
	for _, ai := range ancestors[la] {
		for _, aj := range ancestors[lb] {
			if inIL(ai, aj) {
				return m.Rank(ai)
			}
		}
	}
	return -2 // covered only through a deeper or unexpected path
}

func main() {
	n := flag.Int("n", 2000, "number of points")
	dist := flag.String("dist", "cube", "distribution: cube, sphere, dino")
	kern := flag.String("kernel", "coulomb", "kernel: "+strings.Join(kernel.Names(), ", "))
	tol := flag.Float64("tol", 1e-7, "target relative accuracy (the paper's Fig 2 uses 1e-7)")
	reltol := flag.Float64("reltol", 0, "error-controlled build: ranks fall out of this tolerance instead of the fixed parameters (0 = use -tol)")
	leaf := flag.Int("leaf", 100, "leaf size")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()

	pts, ok := pointset.Named(*dist, *n, 3, *seed)
	if !ok {
		fmt.Fprintf(os.Stderr, "h2view: unknown distribution %q\n", *dist)
		os.Exit(2)
	}
	k, err := kernel.ByName(*kern)
	if err != nil {
		fmt.Fprintf(os.Stderr, "h2view: %v\n", err)
		os.Exit(2)
	}
	dd, err := core.Build(pts, k, core.Config{Kind: core.DataDriven, Mode: core.OnTheFly, Tol: *tol, RelTol: *reltol, LeafSize: *leaf})
	if err != nil {
		fmt.Fprintln(os.Stderr, "h2view:", err)
		os.Exit(1)
	}
	ip, err := core.Build(pts, k, core.Config{Kind: core.Interpolation, Mode: core.OnTheFly, Tol: *tol, RelTol: *reltol,
		LeafSize: *leaf, ReuseTree: dd.Tree})
	if err != nil {
		fmt.Fprintln(os.Stderr, "h2view:", err)
		os.Exit(1)
	}

	t := dd.Tree
	leaves := t.Leaves
	if len(leaves) > 48 {
		fmt.Fprintf(os.Stderr, "h2view: %d leaves is too wide to render; lower -n or raise -leaf\n", len(leaves))
		os.Exit(2)
	}
	// Ancestor chains (leaf included), root last.
	anc := make([][]int, len(t.Nodes))
	for _, l := range leaves {
		for v := l; v != -1; v = t.Nodes[v].Parent {
			anc[l] = append(anc[l], v)
		}
	}

	fmt.Printf("block ranks over %d leaves (n=%d %s, %s, tol=%.0e)\n", len(leaves), *n, *dist, k.Name(), *tol)
	fmt.Printf("lower triangle: interpolation (rank %d everywhere) — upper triangle: data-driven\n", ip.Stats().MaxRank)
	fmt.Printf("'**' nearfield (dense, the figure's red cells), '..' diagonal\n\n")
	for a, la := range leaves {
		for b, lb := range leaves {
			switch {
			case a == b:
				fmt.Printf("  .. ")
			default:
				m := dd
				if a > b { // lower triangle: interpolation
					m = ip
				}
				r := coveringRank(m, anc, la, lb)
				switch {
				case r == -1:
					fmt.Printf("  ** ")
				case r < 0:
					fmt.Printf("  ?? ")
				default:
					fmt.Printf("%4d ", r)
				}
			}
		}
		fmt.Println()
	}
	sd := dd.Stats()
	fmt.Printf("\ndata-driven: max rank %d, avg leaf rank %.1f — interpolation rank: %d\n",
		sd.MaxRank, float64(sd.SumLeafRank)/float64(sd.Leaves), ip.Stats().MaxRank)
}
