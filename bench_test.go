package h2ds

// testing.B twins of the paper's evaluation: one benchmark family per table
// and figure (see DESIGN.md §3 for the index). The authoritative
// regeneration path is `go run ./cmd/h2bench -exp <id>`; these benches give
// `go test -bench` visibility into the same code paths at reduced problem
// sizes, with memory reported via b.ReportMetric (KiB, deterministic
// accounting) alongside the allocator view from -benchmem.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"h2ds/internal/core"
	"h2ds/internal/hmatrix"
	"h2ds/internal/kernel"
	"h2ds/internal/mat"
	"h2ds/internal/pointset"
	"h2ds/internal/sample"
)

const (
	benchN   = 8000
	benchTol = 1e-8
)

func benchVec(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func benchConfig(kind core.BasisKind, mode core.MemoryMode, tol float64) core.Config {
	leaf := 100
	if kind == core.Interpolation {
		// Rank-sized leaves for the interpolation baseline (3-D): blocks
		// below the tensor rank p^3 gain nothing from compression.
		p := int(math.Ceil(-math.Log10(tol))) + 1
		if rank := p * p * p; rank > leaf {
			leaf = rank
		}
	}
	return core.Config{Kind: kind, Mode: mode, Tol: tol, LeafSize: leaf}
}

// benchConstruct times Build for the workload.
func benchConstruct(b *testing.B, pts *pointset.Points, k kernel.Kernel, cfg core.Config) {
	b.Helper()
	var mem float64
	for i := 0; i < b.N; i++ {
		m, err := core.Build(pts, k, cfg)
		if err != nil {
			b.Fatal(err)
		}
		mem = m.Memory().KiB()
	}
	b.ReportMetric(mem, "KiB")
}

// benchMatVec builds once and times ApplyTo.
func benchMatVec(b *testing.B, pts *pointset.Points, k kernel.Kernel, cfg core.Config) {
	b.Helper()
	m, err := core.Build(pts, k, cfg)
	if err != nil {
		b.Fatal(err)
	}
	x := benchVec(pts.Len(), 7)
	y := make([]float64, pts.Len())
	m.ApplyTo(y, x) // warm-up
	b.ReportMetric(m.Memory().KiB(), "KiB")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ApplyTo(y, x)
	}
}

// BenchmarkApply measures the steady-state matvec through the three entry
// points: an explicit caller-owned workspace (ApplyToWith), the pooled
// ApplyTo that existing callers hit, and the batched multi-RHS product.
// The serial workspace cases must report 0 allocs/op — the parallel sweeps
// spawn goroutines, so only Workers=1 exercises the allocation-free path
// end to end.
func BenchmarkApply(b *testing.B) {
	pts := pointset.Cube(benchN, 3, 1)
	for _, mode := range []core.MemoryMode{core.Normal, core.OnTheFly} {
		cfg := benchConfig(core.DataDriven, mode, benchTol)
		cfg.Workers = 1
		m, err := core.Build(pts, kernel.Coulomb{}, cfg)
		if err != nil {
			b.Fatal(err)
		}
		x := benchVec(benchN, 7)
		y := make([]float64, benchN)
		b.Run(fmt.Sprintf("workspace/serial/%s", mode), func(b *testing.B) {
			ws := m.NewWorkspace()
			m.ApplyToWith(ws, y, x) // warm-up: grows the on-the-fly scratch tile
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.ApplyToWith(ws, y, x)
			}
		})
		b.Run(fmt.Sprintf("pooled/serial/%s", mode), func(b *testing.B) {
			m.ApplyTo(y, x)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.ApplyTo(y, x)
			}
		})
	}
	cfg := benchConfig(core.DataDriven, core.OnTheFly, benchTol)
	m, err := core.Build(pts, kernel.Coulomb{}, cfg)
	if err != nil {
		b.Fatal(err)
	}
	x := benchVec(benchN, 7)
	y := make([]float64, benchN)
	b.Run("workspace/parallel/on-the-fly", func(b *testing.B) {
		ws := m.NewWorkspace()
		m.ApplyToWith(ws, y, x)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.ApplyToWith(ws, y, x)
		}
	})
}

// BenchmarkMultiRHS pits the batched k-RHS product against k sequential
// matvecs on a 20,000-point cube in on-the-fly mode, where each kernel tile
// is assembled once per batch instead of once per column. One op = the full
// k-column product.
func BenchmarkMultiRHS(b *testing.B) {
	const n, k = 20000, 8
	pts := pointset.Cube(n, 3, 1)
	m, err := core.Build(pts, kernel.Coulomb{}, benchConfig(core.DataDriven, core.OnTheFly, 1e-6))
	if err != nil {
		b.Fatal(err)
	}
	B := mat.NewDense(n, k)
	for j := 0; j < k; j++ {
		col := benchVec(n, int64(7+j))
		for i := 0; i < n; i++ {
			B.Set(i, j, col[i])
		}
	}
	b.Run(fmt.Sprintf("sequential/k%d", k), func(b *testing.B) {
		ws := m.NewWorkspace()
		col := make([]float64, n)
		y := make([]float64, n)
		m.ApplyToWith(ws, y, col)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < k; j++ {
				for r := 0; r < n; r++ {
					col[r] = B.At(r, j)
				}
				m.ApplyToWith(ws, y, col)
			}
		}
	})
	b.Run(fmt.Sprintf("batch/k%d", k), func(b *testing.B) {
		ws := m.NewWorkspace()
		Y := mat.NewDense(n, k)
		m.ApplyBatchToWith(ws, Y, B)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.ApplyBatchToWith(ws, Y, B)
		}
	})
}

// BenchmarkFig2Ranks regenerates the Fig 2 rank comparison: both
// constructions at 1e-7 on the 10,000-point cube; rank totals are reported
// as metrics.
func BenchmarkFig2Ranks(b *testing.B) {
	pts := pointset.Cube(10000, 3, 1)
	for _, kind := range []core.BasisKind{core.DataDriven, core.Interpolation} {
		b.Run(kind.String(), func(b *testing.B) {
			var maxRank, sumLeaf int
			for i := 0; i < b.N; i++ {
				m, err := core.Build(pts, kernel.Coulomb{}, benchConfig(kind, core.OnTheFly, 1e-7))
				if err != nil {
					b.Fatal(err)
				}
				maxRank = m.Stats().MaxRank
				sumLeaf = m.Stats().SumLeafRank
			}
			b.ReportMetric(float64(maxRank), "maxrank")
			b.ReportMetric(float64(sumLeaf), "leafranksum")
		})
	}
}

// BenchmarkFig4 covers the distribution study: construction and matvec for
// cube/sphere/dino under both constructions, on-the-fly mode.
func BenchmarkFig4(b *testing.B) {
	for _, dist := range []string{"cube", "sphere", "dino"} {
		pts, _ := pointset.Named(dist, benchN, 3, 1)
		for _, kind := range []core.BasisKind{core.DataDriven, core.Interpolation} {
			cfg := benchConfig(kind, core.OnTheFly, benchTol)
			b.Run(fmt.Sprintf("construct/%s/%s", dist, kind), func(b *testing.B) {
				benchConstruct(b, pts, kernel.Coulomb{}, cfg)
			})
			b.Run(fmt.Sprintf("matvec/%s/%s", dist, kind), func(b *testing.B) {
				benchMatVec(b, pts, kernel.Coulomb{}, cfg)
			})
		}
	}
}

// BenchmarkFig5 covers the dimension study (data-driven through d=5;
// interpolation only where its p^d rank is feasible, as in the paper).
func BenchmarkFig5(b *testing.B) {
	for _, d := range []int{2, 3, 4, 5} {
		pts := pointset.Cube(benchN, d, 1)
		b.Run(fmt.Sprintf("matvec/d%d/data-driven", d), func(b *testing.B) {
			benchMatVec(b, pts, kernel.Coulomb{}, benchConfig(core.DataDriven, core.OnTheFly, benchTol))
		})
		if d <= 3 {
			b.Run(fmt.Sprintf("matvec/d%d/interpolation", d), func(b *testing.B) {
				benchMatVec(b, pts, kernel.Coulomb{}, benchConfig(core.Interpolation, core.OnTheFly, benchTol))
			})
		}
	}
}

// BenchmarkFig6 and BenchmarkTable1 cover the four basis x memory
// combinations on the cube workload (Table I is the same grid at one large
// n; h2bench runs the full size).
func BenchmarkFig6(b *testing.B) {
	pts := pointset.Cube(benchN, 3, 1)
	for _, kind := range []core.BasisKind{core.Interpolation, core.DataDriven} {
		for _, mode := range []core.MemoryMode{core.Normal, core.OnTheFly} {
			cfg := benchConfig(kind, mode, benchTol)
			b.Run(fmt.Sprintf("construct/%s/%s", kind, mode), func(b *testing.B) {
				benchConstruct(b, pts, kernel.Coulomb{}, cfg)
			})
			b.Run(fmt.Sprintf("matvec/%s/%s", kind, mode), func(b *testing.B) {
				benchMatVec(b, pts, kernel.Coulomb{}, cfg)
			})
		}
	}
}

// BenchmarkTable1 is the Table I grid at the bench problem size.
func BenchmarkTable1(b *testing.B) {
	pts := pointset.Cube(benchN, 3, 1)
	for _, kind := range []core.BasisKind{core.Interpolation, core.DataDriven} {
		for _, mode := range []core.MemoryMode{core.Normal, core.OnTheFly} {
			b.Run(fmt.Sprintf("%s/%s", kind, mode), func(b *testing.B) {
				benchMatVec(b, pts, kernel.Coulomb{}, benchConfig(kind, mode, benchTol))
			})
		}
	}
}

// BenchmarkFig7 covers thread scaling of the matvec (hardware-limited on a
// single-core host; the worker parameter still exercises the scheduling).
func BenchmarkFig7(b *testing.B) {
	pts := pointset.Cube(benchN, 3, 1)
	for _, threads := range []int{1, 2, 4, 8} {
		cfg := benchConfig(core.DataDriven, core.OnTheFly, benchTol)
		cfg.Workers = threads
		b.Run(fmt.Sprintf("matvec/threads%d", threads), func(b *testing.B) {
			benchMatVec(b, pts, kernel.Coulomb{}, cfg)
		})
	}
}

// BenchmarkFig8 covers the accuracy sweep.
func BenchmarkFig8(b *testing.B) {
	pts := pointset.Cube(benchN, 3, 1)
	for _, tol := range []float64{1e-2, 1e-4, 1e-6, 1e-8} {
		for _, kind := range []core.BasisKind{core.DataDriven, core.Interpolation} {
			b.Run(fmt.Sprintf("matvec/tol%.0e/%s", tol, kind), func(b *testing.B) {
				benchMatVec(b, pts, kernel.Coulomb{}, benchConfig(kind, core.OnTheFly, tol))
			})
		}
	}
}

// BenchmarkFig9 covers kernel generality (data-driven; interpolation's
// kernel independence is already exercised by Fig 4/6/8).
func BenchmarkFig9(b *testing.B) {
	pts := pointset.Cube(benchN, 3, 1)
	for _, kname := range []string{"coulomb", "coulomb3", "exp", "gaussian"} {
		k, _ := kernel.Named(kname)
		b.Run("matvec/"+kname, func(b *testing.B) {
			benchMatVec(b, pts, k, benchConfig(core.DataDriven, core.OnTheFly, benchTol))
		})
	}
}

// BenchmarkAblationSampler compares the three samplers inside the
// data-driven construction.
func BenchmarkAblationSampler(b *testing.B) {
	pts := pointset.Cube(benchN, 3, 1)
	for _, sname := range []string{"anchornet", "fps", "random"} {
		s, _ := sample.Named(sname)
		cfg := benchConfig(core.DataDriven, core.OnTheFly, 1e-6)
		cfg.Sampler = s
		b.Run("construct/"+sname, func(b *testing.B) {
			benchConstruct(b, pts, kernel.Coulomb{}, cfg)
		})
	}
}

// BenchmarkAblationFormat compares the nested H² format against the
// non-nested H baseline at equal tolerance.
func BenchmarkAblationFormat(b *testing.B) {
	pts := pointset.Cube(benchN, 3, 1)
	b.Run("matvec/h2", func(b *testing.B) {
		benchMatVec(b, pts, kernel.Coulomb{}, benchConfig(core.DataDriven, core.Normal, 1e-6))
	})
	b.Run("matvec/h", func(b *testing.B) {
		m, err := hmatrix.Build(pts, kernel.Coulomb{}, hmatrix.Config{Tol: 1e-6, LeafSize: 100})
		if err != nil {
			b.Fatal(err)
		}
		x := benchVec(benchN, 7)
		y := make([]float64, benchN)
		m.ApplyTo(y, x)
		b.ReportMetric(float64(m.Bytes())/1024, "KiB")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.ApplyTo(y, x)
		}
	})
}
