module h2ds

go 1.22
