// Bie2d: a boundary-integral-style dense system — the classical
// hierarchical-matrix application (Rokhlin 1985; paper §I-B1). A
// second-kind integral equation is discretized on 12,000 points of a 2-D
// annulus with the exponential kernel:
//
//	(I + c·K) x = g
//
// and solved with restarted GMRES, where every inner iteration applies the
// H² matrix in on-the-fly mode. The solution is verified by applying the
// operator exactly (direct summation) on sampled rows.
//
//	go run ./examples/bie2d
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"h2ds/internal/core"
	"h2ds/internal/kernel"
	"h2ds/internal/pointset"
	"h2ds/internal/solver"
)

func main() {
	const n = 12000
	const c = 1.0 / n // quadrature-like scaling keeps the system second-kind
	pts := pointset.Annulus(n, 0.5, 1.0, 1)
	k := kernel.Exponential{}

	t0 := time.Now()
	m, err := core.Build(pts, k, core.Config{Kind: core.DataDriven, Mode: core.OnTheFly, Tol: 1e-8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("H² operator built in %v (%.2f MiB on-the-fly)\n", time.Since(t0), m.Memory().KiB()/1024)

	// Right-hand side: a smooth boundary density.
	g := make([]float64, n)
	for i := 0; i < n; i++ {
		x := pts.At(i)
		g[i] = math.Cos(3*math.Atan2(x[1], x[0])) + 0.5
	}

	op := solver.Func(func(y, x []float64) {
		m.ApplyTo(y, x)
		for i := range y {
			y[i] = x[i] + c*y[i]
		}
	})
	t1 := time.Now()
	res := solver.GMRES(op, g, 30, 1e-10, 2000)
	fmt.Printf("GMRES: %d iterations in %v, converged=%v, relative residual %.2e\n",
		res.Iterations, time.Since(t1), res.Converged, res.Residual)

	// Verify against the exact operator on sampled rows.
	rng := rand.New(rand.NewSource(4))
	var num, den float64
	for t := 0; t < 12; t++ {
		i := rng.Intn(n)
		exact := res.X[i] + c*kernel.RowApply(k, pts, i, res.X)
		d := exact - g[i]
		num += d * d
		den += g[i] * g[i]
	}
	fmt.Printf("exact-operator residual on 12 sampled rows: %.2e\n", math.Sqrt(num/den))
}
