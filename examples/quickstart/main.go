// Quickstart: build an H² approximation of a Coulomb kernel matrix over
// 20,000 random points, multiply it by a vector, and check the accuracy and
// memory against the paper's headline claims.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"h2ds/internal/core"
	"h2ds/internal/kernel"
	"h2ds/internal/pointset"
)

func main() {
	const n = 20000
	pts := pointset.Cube(n, 3, 1)
	k := kernel.Coulomb{}

	// Data-driven construction, on-the-fly memory mode, ~1e-8 accuracy —
	// the paper's recommended configuration.
	cfg := core.Config{
		Kind: core.DataDriven,
		Mode: core.OnTheFly,
		Tol:  1e-8,
	}
	t0 := time.Now()
	m, err := core.Build(pts, k, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built H² matrix for n=%d in %v\n", n, time.Since(t0))
	st := m.Stats()
	fmt.Printf("tree: %d nodes (%d leaves, depth %d); max basis rank %d\n",
		st.Nodes, st.Leaves, st.Depth, st.MaxRank)

	b := make([]float64, n)
	rng := rand.New(rand.NewSource(2))
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	t1 := time.Now()
	y := m.Apply(b)
	fmt.Printf("matvec in %v\n", time.Since(t1))

	relErr := m.RelErrorVs(b, y, core.DefaultErrorRows, 3)
	fmt.Printf("relative error (12 sampled rows vs exact): %.3e\n", relErr)

	mem := m.Memory()
	denseGiB := float64(n) * float64(n) * 8 / (1 << 30)
	fmt.Printf("memory: %.2f MiB H² on-the-fly vs %.2f GiB dense\n",
		mem.KiB()/1024, denseGiB)
	fmt.Printf("breakdown: %v\n", mem)
}
